// PRESENT-80 key recovery via persistent fault analysis: the block-cipher
// generality claim of the paper's title.  A nibble-level S-box fault leaks
// the last round key through missing values of the inverse permutation
// layer; the 80-bit master key follows from a 2^16 schedule inversion
// resolved against one clean known pair.
package main

import (
	"bytes"
	"fmt"
	"log"

	"explframe/internal/cipher/present"
	"explframe/internal/fault/pfa"
	"explframe/internal/stats"
)

func main() {
	rng := stats.NewRNG(5)

	key := make([]byte, 10)
	rng.Bytes(key)
	ks, err := present.Expand(key)
	if err != nil {
		log.Fatal(err)
	}

	table := present.SBox()
	const faultedEntry = 0x9
	yStar := table[faultedEntry]
	table[faultedEntry] ^= 0x1
	fmt.Printf("fault: S[%#x]: %#x -> %#x\n", faultedEntry, yStar, table[faultedEntry])

	// One clean known pair, captured before the fault landed.
	clean := present.SBox()
	cleanPT := rng.Uint64()
	cleanCT := present.Encrypt(ks, &clean, cleanPT)

	collector := pfa.NewPresentCollector()
	for n := 1; ; n++ {
		collector.Observe(present.Encrypt(ks, &table, rng.Uint64()))
		if n%20 != 0 {
			continue
		}
		fmt.Printf("n=%4d  residual K32 entropy %5.1f bits\n", n, collector.ResidualEntropy())
		got, err := collector.RecoverMasterKnownFault(yStar, cleanPT, cleanCT)
		if err != nil {
			continue
		}
		fmt.Printf("\nrecovered 80-bit master key after %d ciphertexts: %x\n", n, got)
		if !bytes.Equal(got, key) {
			log.Fatalf("mismatch: victim key was %x", key)
		}
		fmt.Println("matches the victim key.")
		return
	}
}
