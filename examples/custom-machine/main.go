// Command custom-machine walks through the machine-profile API: it
// registers a bespoke DRAM module, runs the same declarative attack
// scenario on a built-in profile and on the custom one, and shows the
// inline-machine form that needs no registration at all.
//
// Run with: go run ./examples/custom-machine
package main

import (
	"context"
	"fmt"
	"log"

	"explframe/internal/dram"
	"explframe/internal/machine"
	"explframe/internal/scenario"
)

func main() {
	// 1. Declare a machine: a 64 MiB module with the Intel-style XOR-folded
	// bank function and fairly vulnerable cells.  New fills in the kernel
	// parameters (2 CPUs, Linux pcp sizing); options override the rest.
	custom := machine.New("demo-64m",
		machine.WithDescription("64 MiB XOR-folded demo module"),
		machine.WithGeometry(dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 8, Rows: 2048, RowBytes: 4096}),
		machine.WithMapper(dram.MapperXORFold),
		machine.WithFaultModel(dram.FaultModel{
			WeakCellDensity: 1e-4,
			BaseThreshold:   2000,
			ThresholdSpread: 0.5,
			NeighbourWeight: 0.25,
			RefreshInterval: 1 << 20,
			FlipReliability: 0.98,
		}),
		machine.WithAttackSizing(4500, 8<<20, 12000),
	)
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. Register it; from here on "demo-64m" works everywhere a profile
	// name does — scenario specs, `explframe run -machine demo-64m` (if
	// this registration ran in that process), experiment grids.
	machine.Register(custom)
	fmt.Printf("registered %q (hash %016x), registry now: %v\n\n",
		custom.Name, custom.Hash(), machine.Names())

	// 3. Run the identical scenario on two machines: only the profile
	// differs, so any change in the outcome is the hardware's doing.
	for _, profile := range []scenario.Profile{"fast", "demo-64m"} {
		spec := scenario.New(scenario.WithProfile(profile), scenario.WithTrials(3), scenario.WithSeed(11))
		res, err := scenario.Run(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		st := res.AttackStats()
		fmt.Printf("%-10s key recovered %d/%d, steering %.2f\n",
			profile, st.Key.Successes, st.Key.Trials, st.Steer.Rate())
	}

	// 4. The inline form: a spec file can embed the machine directly (see
	// README "Machine profiles") — WithMachine is the in-code equivalent
	// and needs no registration.
	inline := scenario.New(scenario.WithMachine(custom), scenario.WithTrials(1), scenario.WithSeed(11))
	fmt.Printf("\ninline scenario name: %s\n", inline.Name())
	data, err := inline.EncodeJSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inline scenario JSON (pasteable into a campaign file):\n%s", data)
}
