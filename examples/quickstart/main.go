// Quickstart: run the complete ExplFrame attack with default settings and
// print the outcome.  This is the five-line introduction to the library —
// build the attack, run it, read the report.
package main

import (
	"fmt"
	"log"

	"explframe/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Seed = 42

	attack, err := core.NewAttack(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := attack.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("phase reached:   %s\n", report.Phase)
	fmt.Printf("steering hit:    %v\n", report.SteeringHit)
	fmt.Printf("fault injected:  %v\n", report.FaultInjected)
	fmt.Printf("key recovered:   %v\n", report.KeyRecovered)
	if report.KeyRecovered {
		fmt.Printf("victim key:      %x\n", cfg.VictimKey)
		fmt.Printf("recovered key:   %x\n", report.RecoveredKey)
		fmt.Printf("ciphertexts:     %d\n", report.CiphertextsUsed)
	} else {
		fmt.Printf("failure reason:  %s\n", report.FailReason)
	}
}
