// Differential fault analysis of the LILLIPUT-style SPN, walking the
// precise-to-random fault-model ladder end to end through the registry:
// pick a victim from internal/cipher/registry, a fault model from
// internal/fault, and the registered analyzer from internal/fault/dfa does
// the rest.  Contrast with examples/lilliput-key-recovery, the persistent
// route: DFA needs only a couple of dozen correct/faulty pairs, but every
// pair requires a transient fault placed in round 29 at the modelled
// precision — timing control ExplFrame's Rowhammer channel does not offer,
// which is exactly the comparison tables E9 and E17 quantify.
package main

import (
	"bytes"
	"fmt"
	"log"

	"explframe/internal/cipher/registry"
	"explframe/internal/fault/dfa"
	"explframe/internal/stats"
)

func main() {
	const victim = "lilliput-80"
	c := registry.MustGet(victim)
	analyzer := dfa.MustGet(victim)
	rng := stats.NewRNG(7)

	key := make([]byte, c.KeyBytes())
	rng.Bytes(key)
	inst, err := c.New(key)
	if err != nil {
		log.Fatal(err)
	}
	table := c.SBox()

	// Walk the analyzer's ladder, strongest rung first.  Each rung is a
	// declarative fault model; the same loop runs them all.
	for _, m := range analyzer.Ladder() {
		var pairs []dfa.Pair
		pt := make([]byte, c.BlockSize())
		for n := 1; n <= 48; n++ {
			// Collect one correct/faulty pair: same plaintext, one transient
			// fault drawn from the model and injected at the analyzer's
			// default round (round 29, the last-but-one).
			rng.Bytes(pt)
			p, err := dfa.CollectPair(c, inst, table, pt, m, rng)
			if err != nil {
				log.Fatal(err)
			}
			pairs = append(pairs, p)

			// Re-analyse after every pair; stop at a unique key.
			res, err := analyzer.Analyze(pairs, m)
			if err != nil {
				log.Fatal(err)
			}
			if res.Unique {
				fmt.Printf("%-20s unique master key after %2d pairs, correct: %v\n",
					m.Name(), n, bytes.Equal(res.Master, key))
				break
			}
			if n == 48 {
				fmt.Printf("%-20s budget exhausted, %.1f key-space bits left\n", m.Name(), res.KeySpaceBits)
			}
		}
	}
}
