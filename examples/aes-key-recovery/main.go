// AES key recovery via persistent fault analysis: the offline half of the
// ExplFrame attack, runnable standalone.  A victim encrypts with an S-box
// carrying a single Rowhammer-style bit flip; the analyst recovers the full
// AES-128 master key from ciphertexts alone and the known flip location.
package main

import (
	"bytes"
	"fmt"
	"log"

	"explframe/internal/cipher/aes"
	"explframe/internal/fault/pfa"
	"explframe/internal/stats"
)

func main() {
	rng := stats.NewRNG(2024)

	// The victim's secret key and its faulted S-box: ExplFrame's templating
	// step told the attacker that bit 5 of table entry 0xB7 flips.
	key := make([]byte, 16)
	rng.Bytes(key)
	ks, err := aes.Expand(key)
	if err != nil {
		log.Fatal(err)
	}
	table := aes.SBox()
	const faultedEntry = 0xB7
	const faultedBit = 5
	yStar := table[faultedEntry] // the S-box output that will vanish
	table[faultedEntry] ^= 1 << faultedBit
	fmt.Printf("fault: S[%#02x]: %#02x -> %#02x\n", faultedEntry, yStar, table[faultedEntry])

	// The attacker passively observes ciphertexts of unknown plaintexts.
	collector := pfa.NewAESCollector()
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	for n := 1; ; n++ {
		rng.Bytes(pt)
		aes.EncryptBlock(ks, &table, ct, pt)
		if err := collector.Observe(ct); err != nil {
			log.Fatal(err)
		}
		if n%250 != 0 {
			continue
		}
		fmt.Printf("n=%5d  residual key entropy %6.1f bits\n", n, collector.ResidualEntropy())
		master, err := collector.RecoverMasterKnownFault(yStar)
		if err != nil {
			continue
		}
		fmt.Printf("\nrecovered master key after %d ciphertexts: %x\n", n, master)
		if !bytes.Equal(master[:], key) {
			log.Fatalf("mismatch: victim key was %x", key)
		}
		fmt.Println("matches the victim key.")
		return
	}
}
