// Scenario campaign walkthrough: declare a grid of attack scenarios as
// first-class scenario.Spec values, fan them out through scenario.Campaign
// with live progress events and Ctrl-C cancellation, and print the headline
// success per scenario — the declarative version of the hand-assembled
// loops in examples/defence-evaluation.
//
// The same specs serialize to JSON (shown at the end), so the identical
// grid can be saved to a file and replayed with
//
//	explframe sweep -scenario campaign.json
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"explframe/internal/harness"
	"explframe/internal/scenario"
)

func main() {
	// One base scenario: the fast profile (small vulnerable module, ~1 s
	// per trial), four trials per row.
	base := scenario.New(
		scenario.WithProfile(scenario.ProfileFast),
		scenario.WithSeed(3),
		scenario.WithTrials(4),
	)

	// The grid: defence axis × (implicitly) everything base fixes.  Each
	// row is base plus the options that make it different — no config
	// mutation, no copy-paste.
	camp := scenario.Campaign{Name: "defence-grid", Specs: []scenario.Spec{
		base.With(scenario.WithLabel("no defence")),
		base.With(scenario.WithLabel("TRR"), scenario.WithTRR(4, 300)),
		base.With(scenario.WithLabel("TRR + many-sided bypass"),
			scenario.WithTRR(4, 300), scenario.WithManySided(8)),
		base.With(scenario.WithLabel("ECC SEC-DED"), scenario.WithECC()),
	}}
	if err := camp.Validate(); err != nil {
		log.Fatal(err)
	}

	// Ctrl-C cancels the campaign mid-flight: running attacks abort
	// between phases and unstarted scenarios never launch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	results, err := camp.Run(ctx,
		scenario.WithTrialOptions(harness.WithWorkers(4)),
		scenario.WithProgress(func(e scenario.Event) {
			if !e.Done {
				fmt.Printf("[%d/%d] %s...\n", e.Index+1, e.Total, e.Spec.Title())
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	for _, res := range results {
		st := res.AttackStats()
		fmt.Printf("%-28s -> key recovered %d/%d (steer %.2f, fault %.2f)\n",
			res.Spec.Title(), st.Key.Successes, st.Key.Trials, st.Steer.Rate(), st.Fault.Rate())
	}

	// The grid is data: the first row's canonical identity and JSON form.
	spec := camp.Specs[0]
	fmt.Printf("\ncanonical name: %s (hash %016x)\n", spec.Name(), spec.Hash())
	data, err := spec.EncodeJSON()
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}
