// Key recovery against the registry's third victim, the LILLIPUT-style
// SPN — entirely through the cipher-agnostic interfaces.  Where the
// aes-key-recovery and present-key-recovery examples call their cipher
// packages directly, this one touches nothing but internal/cipher/registry
// and the generic pfa.Collector: the code below would work unchanged for
// any registered cipher name, which is the point of the registry — adding a
// victim is one package plus one Register call, and every analysis tool
// follows for free.
package main

import (
	"bytes"
	"fmt"
	"log"

	"explframe/internal/cipher/registry"
	"explframe/internal/fault/pfa"
	"explframe/internal/stats"
)

func main() {
	const victim = "lilliput-80" // try "present-80" or "aes-128": nothing below changes
	c := registry.MustGet(victim)
	rng := stats.NewRNG(5)

	key := make([]byte, c.KeyBytes())
	rng.Bytes(key)
	inst, err := c.New(key)
	if err != nil {
		log.Fatal(err)
	}

	// One clean known pair, captured before the fault landed; it resolves
	// the 16 key-register bits the last round key does not expose.
	cleanPT := make([]byte, c.BlockSize())
	rng.Bytes(cleanPT)
	cleanCT := make([]byte, c.BlockSize())
	inst.Encrypt(c.SBox(), cleanCT, cleanPT)

	// A single-bit fault in the table, as one Rowhammer flip produces.
	table := c.SBox()
	const faultedEntry = 0x9
	yStar := table[faultedEntry]
	table[faultedEntry] ^= 0x1
	fmt.Printf("%s victim, fault: S[%#x]: %#x -> %#x\n", c.Name(), faultedEntry, yStar, table[faultedEntry])

	collector := pfa.NewCollector(c)
	pt := make([]byte, c.BlockSize())
	ct := make([]byte, c.BlockSize())
	for n := 1; ; n++ {
		rng.Bytes(pt)
		inst.Encrypt(table, ct, pt)
		if err := collector.Observe(ct); err != nil {
			log.Fatal(err)
		}
		if n%20 != 0 {
			continue
		}
		fmt.Printf("n=%4d  residual last-round-key entropy %5.1f bits\n", n, collector.ResidualEntropy())
		got, err := collector.RecoverMasterKnownFault(yStar, cleanPT, cleanCT)
		if err != nil {
			continue
		}
		fmt.Printf("\nrecovered %d-bit master key after %d ciphertexts: %x\n", c.KeyBytes()*8, n, got)
		if !bytes.Equal(got, key) {
			log.Fatalf("mismatch: victim key was %x", key)
		}
		fmt.Println("matches the victim key.")
		return
	}
}
