// Rowhammer templating: the attack's reconnaissance phase.  The attacker
// maps a buffer, finds which of its own bits can be flipped by hammering,
// verifies reproducibility, and shows the aggressor rows it would reuse
// after planting the page under a victim.
package main

import (
	"fmt"
	"log"

	"explframe/internal/dram"
	"explframe/internal/kernel"
	"explframe/internal/rowhammer"
)

func main() {
	cfg := kernel.DefaultConfig()
	cfg.Seed = 7
	cfg.FaultModel = dram.FaultModel{
		WeakCellDensity: 1e-4, // a weak module, the attack's favourable case
		BaseThreshold:   4000,
		ThresholdSpread: 1.0,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 21,
		FlipReliability: 0.98,
	}
	m, err := kernel.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := m.Spawn("attacker", 0)
	if err != nil {
		log.Fatal(err)
	}

	const bufLen = 8 << 20
	base, err := attacker.Mmap(bufLen)
	if err != nil {
		log.Fatal(err)
	}
	if err := attacker.Touch(base, bufLen); err != nil {
		log.Fatal(err)
	}

	engine := rowhammer.New(rowhammer.Config{
		Mode:            rowhammer.DoubleSided,
		PairHammerCount: 9000,
		MaxFlips:        10, // stop after ten sites; one good page is enough
	}, m, attacker)

	fmt.Printf("templating %d MiB with double-sided hammering...\n", bufLen>>20)
	flips, err := engine.Template(base, bufLen)
	if err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("scanned %d rows with %d activations, found %d flip sites\n\n",
		st.RowsScanned, st.Activations, len(flips))

	for i, f := range flips {
		pattern := rowhammer.PatternOnes
		direction := "1->0"
		if f.From == 0 {
			pattern = rowhammer.PatternZeros
			direction = "0->1"
		}
		m.DRAM().Refresh()
		again, err := engine.Reproduce(f, pattern)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("site %d: page %#x offset %d bit %d (%s), aggressor rows %d±1 in bank %d, reproduces: %v\n",
			i, uint64(f.PageVA), f.ByteInPage, f.Bit, direction, f.Agg.VictimRow, f.Agg.Bank, again)
	}
	if len(flips) == 0 {
		fmt.Println("no flips found — try a higher density or budget")
	}
}
