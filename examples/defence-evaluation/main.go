// Defence evaluation: run the same end-to-end attack against an
// undefended module, a TRR-protected module (with and without the
// many-sided bypass), and ECC memory — the quantitative version of the
// paper's closing defence discussion.
package main

import (
	"fmt"
	"log"

	"explframe/internal/core"
	"explframe/internal/dram"
	"explframe/internal/rowhammer"
)

func main() {
	type scenario struct {
		name string
		mod  func(*core.Config)
	}
	scenarios := []scenario{
		{"no defence", func(c *core.Config) {}},
		{"TRR (tracker 4, threshold 300)", func(c *core.Config) {
			c.Machine.FaultModel.TRR = dram.TRRConfig{Enabled: true, TrackerSize: 4, Threshold: 300}
		}},
		{"TRR + many-sided bypass (8 decoys)", func(c *core.Config) {
			c.Machine.FaultModel.TRR = dram.TRRConfig{Enabled: true, TrackerSize: 4, Threshold: 300}
			c.Hammer.Mode = rowhammer.ManySided
			c.Hammer.Decoys = 8
		}},
		{"ECC SEC-DED", func(c *core.Config) {
			c.Machine.FaultModel.ECC = dram.ECCSecDed
		}},
	}

	for _, sc := range scenarios {
		cfg := core.DefaultConfig()
		cfg.Seed = 3
		// Small module so each run takes seconds.
		cfg.Machine.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
		cfg.Machine.FaultModel.WeakCellDensity = 2e-4
		cfg.Machine.FaultModel.BaseThreshold = 1500
		cfg.Machine.FaultModel.ThresholdSpread = 0.5
		cfg.Hammer.PairHammerCount = 3200
		cfg.AttackerMemory = 8 << 20
		sc.mod(&cfg)

		attack, err := core.NewAttack(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := attack.Run()
		if err != nil {
			log.Fatal(err)
		}
		outcome := "KEY RECOVERED"
		if !rep.Success() {
			outcome = fmt.Sprintf("stopped at %s (%s)", rep.Phase, rep.FailReason)
		}
		fmt.Printf("%-38s -> %s\n", sc.name, outcome)
	}
}
