// Allocator steering: the Section V exploit mechanics in isolation, shown
// directly against the kernel API — no Rowhammer, no crypto, just the
// per-CPU page frame cache handing an attacker-chosen frame to the victim.
//
// The demo walks the exact sequence of the paper: the attacker maps and
// touches a buffer, unmaps one page, stays active, and the victim's next
// small allocation on the same CPU receives precisely that frame; the same
// sequence is then repeated with the three conditions the paper says break
// the attack (cross-CPU victim, sleeping attacker, noisy neighbour).
package main

import (
	"fmt"
	"log"

	"explframe/internal/kernel"
	"explframe/internal/mm"
	"explframe/internal/stats"
	"explframe/internal/trace"
	"explframe/internal/vm"
)

func main() {
	fmt.Println("-- same CPU, attacker active (the attack) --")
	demo(func(m *kernel.Machine, planted mm.PFN, attacker *kernel.Process) (*kernel.Process, error) {
		return m.Spawn("victim", 0)
	}, false)

	fmt.Println("\n-- victim on the other CPU (defeats the attack) --")
	demo(func(m *kernel.Machine, planted mm.PFN, attacker *kernel.Process) (*kernel.Process, error) {
		return m.Spawn("victim", 1)
	}, false)

	fmt.Println("\n-- attacker sleeps before the victim arrives (defeats the attack) --")
	demo(func(m *kernel.Machine, planted mm.PFN, attacker *kernel.Process) (*kernel.Process, error) {
		attacker.Sleep() // the CPU idles; the kernel drains its page frame cache
		return m.Spawn("victim", 0)
	}, false)

	fmt.Println("\n-- noisy neighbour churns between plant and steer --")
	demo(func(m *kernel.Machine, planted mm.PFN, attacker *kernel.Process) (*kernel.Process, error) {
		noise, err := trace.SpawnNoise(m, 0, 2, stats.NewRNG(7))
		if err != nil {
			return nil, err
		}
		if err := noise.Churn(200); err != nil {
			return nil, err
		}
		return m.Spawn("victim", 0)
	}, true)
}

// demo runs one plant-and-steer sequence; spawnVictim injects the scenario
// twist between planting and the victim's arrival.
func demo(spawnVictim func(*kernel.Machine, mm.PFN, *kernel.Process) (*kernel.Process, error), noisy bool) {
	m, err := kernel.NewMachine(kernel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := m.Spawn("attacker", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Attacker: map, touch ("the program must store some data into the
	// allocated pages"), pick a page, release it.
	const pages = 64
	base, err := attacker.Mmap(pages * vm.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	if err := attacker.Touch(base, pages*vm.PageSize); err != nil {
		log.Fatal(err)
	}
	target := base + 17*vm.PageSize
	pa, _ := attacker.Translate(target)
	planted := mm.PFNOf(pa)
	if err := attacker.Munmap(target, vm.PageSize); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacker released PFN %d into CPU0's page frame cache\n", planted)

	victim, err := spawnVictim(m, planted, attacker)
	if err != nil {
		log.Fatal(err)
	}
	vbase, err := victim.Mmap(vm.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	if err := victim.Store(vbase, 0xAA); err != nil {
		log.Fatal(err)
	}
	vpa, _ := victim.Translate(vbase)
	got := mm.PFNOf(vpa)
	fmt.Printf("victim's first page got PFN %d -> steering %v\n", got, got == planted)
	if noisy && got != planted {
		fmt.Println("(the noise consumed or buried the planted frame)")
	}
}
