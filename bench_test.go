// Benchmarks: one per experiment table (E1..E12, see DESIGN.md) plus
// microbenchmarks of the substrate primitives.  The experiment benches run
// one trial per iteration and report the experiment's headline metric via
// b.ReportMetric; the full tables regenerate with cmd/benchtab.
package explframe_test

import (
	"testing"

	"explframe/internal/cipher/aes"
	"explframe/internal/cipher/present"
	"explframe/internal/cipher/registry"
	"explframe/internal/core"
	"explframe/internal/dram"
	"explframe/internal/fault"
	"explframe/internal/fault/dfa"
	"explframe/internal/fault/pfa"
	"explframe/internal/kernel"
	"explframe/internal/machine"
	"explframe/internal/mm"
	"explframe/internal/rowhammer"
	"explframe/internal/stats"
	"explframe/internal/vm"
)

// --- experiment benches -------------------------------------------------

// BenchmarkE1Buddy measures one alloc/free churn step on the buddy
// allocator (table E1).
func BenchmarkE1Buddy(b *testing.B) {
	pm, err := mm.New(mm.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	type blk struct {
		p     mm.PFN
		order int
	}
	var live []blk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rng.Bool(0.55) || len(live) == 0 {
			order := rng.Intn(6)
			if p, err := pm.AllocPages(0, order); err == nil {
				live = append(live, blk{p, order})
			}
		} else {
			j := rng.Intn(len(live))
			if err := pm.FreePages(0, live[j].p, live[j].order); err != nil {
				b.Fatal(err)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
}

// BenchmarkE2SelfReuse runs one self-reuse trial per iteration and reports
// the reuse fraction for a small request (table E2).
func BenchmarkE2SelfReuse(b *testing.B) {
	sum := 0.0
	for i := 0; i < b.N; i++ {
		frac, err := core.SelfReuseTrial(uint64(i), kernel.Config{}, 4, 4)
		if err != nil {
			b.Fatal(err)
		}
		sum += frac
	}
	b.ReportMetric(sum/float64(b.N), "reuse_frac")
}

// BenchmarkE3Steering runs one same-CPU steering trial per iteration and
// reports the hit rate (table E3).
func BenchmarkE3Steering(b *testing.B) {
	hits := 0
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultSteeringConfig()
		cfg.Seed = uint64(i)
		res, err := core.RunSteeringTrial(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.FirstPageHit {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "steer_rate")
}

// hammerBench builds a machine and a resident attacker buffer for the
// hammer benches.
func hammerBench(b *testing.B, density float64) (*kernel.Machine, *kernel.Process, vm.VirtAddr, uint64) {
	b.Helper()
	cfg := kernel.DefaultConfig()
	cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
	cfg.FaultModel = dram.FaultModel{
		WeakCellDensity: density,
		BaseThreshold:   4000,
		ThresholdSpread: 1.0,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 21,
		FlipReliability: 0.98,
	}
	m, err := kernel.NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p, err := m.Spawn("attacker", 0)
	if err != nil {
		b.Fatal(err)
	}
	const length = 4 << 20
	base, err := p.Mmap(length)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Touch(base, length); err != nil {
		b.Fatal(err)
	}
	return m, p, base, length
}

// BenchmarkE4HammerOnset measures one double-sided hammer run at the E4
// operating point (figure E4).
func BenchmarkE4HammerOnset(b *testing.B) {
	m, p, base, length := hammerBench(b, 8e-5)
	eng := rowhammer.New(rowhammer.Config{Mode: rowhammer.DoubleSided, PairHammerCount: 6000}, m, p)
	agg, err := eng.FindAggressors(base+64*vm.PageSize, base, length)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.HammerDefault(agg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(eng.Stats().Activations)/float64(b.N), "activations/op")
}

// BenchmarkE5Repro measures one re-hammer reproduction of a templated flip
// (table E5).
func BenchmarkE5Repro(b *testing.B) {
	m, p, base, length := hammerBench(b, 2e-4)
	eng := rowhammer.New(rowhammer.Config{Mode: rowhammer.DoubleSided, PairHammerCount: 10000, MaxFlips: 1}, m, p)
	flips, err := eng.Template(base, length)
	if err != nil || len(flips) == 0 {
		b.Fatalf("no flip to reproduce: %v", err)
	}
	f := flips[0]
	pattern := rowhammer.PatternOnes
	if f.From == 0 {
		pattern = rowhammer.PatternZeros
	}
	ok := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DRAM().Refresh()
		re, err := eng.Reproduce(f, pattern)
		if err != nil {
			b.Fatal(err)
		}
		if re {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "repro_rate")
}

// attackBenchConfig mirrors experiments.attackConfig.
func attackBenchConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Machine.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
	cfg.Machine.FaultModel = dram.FaultModel{
		WeakCellDensity: 2e-4,
		BaseThreshold:   1500,
		ThresholdSpread: 0.5,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 20,
		FlipReliability: 0.98,
	}
	cfg.Hammer = rowhammer.Config{Mode: rowhammer.DoubleSided, PairHammerCount: 3200}
	cfg.AttackerMemory = 8 << 20
	cfg.Ciphertexts = 12000
	return cfg
}

// BenchmarkE6EndToEnd runs one full attack per iteration and reports the
// success rate and ciphertext cost (table E6).  The flip reliability is
// pinned to 1 so the bench measures pipeline cost deterministically; the
// stochastic success statistics are E6's table, not this metric.
func BenchmarkE6EndToEnd(b *testing.B) {
	wins, cts := 0, 0
	for i := 0; i < b.N; i++ {
		cfg := attackBenchConfig(uint64(i) + 1)
		cfg.Machine.FaultModel.FlipReliability = 1
		atk, err := core.NewAttack(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Success() {
			wins++
			cts += rep.CiphertextsUsed
		}
	}
	b.ReportMetric(float64(wins)/float64(b.N), "success_rate")
	if wins > 0 {
		b.ReportMetric(float64(cts)/float64(wins), "ciphertexts")
	}
}

// BenchmarkE7PFA measures one complete known-fault PFA key recovery on
// AES-128 (figure E7).
func BenchmarkE7PFA(b *testing.B) {
	rng := stats.NewRNG(9)
	key := make([]byte, 16)
	rng.Bytes(key)
	ks, _ := aes.Expand(key)
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		faulty := aes.SBox()
		v := rng.Intn(256)
		yStar := faulty[v]
		faulty[v] ^= 1 << uint(rng.Intn(8))
		col := pfa.NewAESCollector()
		pt := make([]byte, 16)
		ct := make([]byte, 16)
		for n := 1; ; n++ {
			rng.Bytes(pt)
			aes.EncryptBlock(ks, &faulty, ct, pt)
			col.Observe(ct)
			if n%256 == 0 {
				if _, err := col.RecoverLastRoundKeyKnownFault(yStar); err == nil {
					total += n
					break
				}
			}
		}
	}
	b.ReportMetric(float64(total)/float64(b.N), "ciphertexts")
}

// BenchmarkE8Baselines runs one random-spray baseline trial per iteration
// (table E8).
func BenchmarkE8Baselines(b *testing.B) {
	hits := 0
	for i := 0; i < b.N; i++ {
		ac := attackBenchConfig(uint64(i) + 1)
		bc := core.DefaultBaselineConfig(core.RandomSpray)
		bc.Seed = ac.Seed
		bc.Machine = ac.Machine
		bc.Hammer = ac.Hammer
		bc.AttackerMemory = ac.AttackerMemory
		res, err := core.RunBaselineTrial(bc)
		if err != nil {
			b.Fatal(err)
		}
		if res.TableCorrupted {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "corrupt_rate")
}

// BenchmarkE9DFAvsPFA measures one DFA recovery from 8 fault pairs (table
// E9's transient-fault row), through the registered AES analyzer.
func BenchmarkE9DFAvsPFA(b *testing.B) {
	rng := stats.NewRNG(3)
	c := registry.MustGet("aes-128")
	a := dfa.MustGet("aes-128")
	key := make([]byte, 16)
	rng.Bytes(key)
	inst, err := c.New(key)
	if err != nil {
		b.Fatal(err)
	}
	table := c.SBox()
	unique := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var pairs []dfa.Pair
		pt := make([]byte, 16)
		for fb := 0; fb < 4; fb++ {
			m := fault.New(fault.PreciseByte, fault.WithPosition(fb))
			for n := 0; n < 2; n++ {
				rng.Bytes(pt)
				p, err := dfa.CollectPair(c, inst, table, pt, m, rng)
				if err != nil {
					b.Fatal(err)
				}
				pairs = append(pairs, p)
			}
		}
		res, err := a.Analyze(pairs, fault.New(fault.PreciseByte))
		if err == nil && res.Unique {
			unique++
		}
	}
	b.ReportMetric(float64(unique)/float64(b.N), "unique_rate")
}

// BenchmarkE10Present measures one PRESENT-80 PFA recovery including the
// 2^16 key-schedule completion (table E10).
func BenchmarkE10Present(b *testing.B) {
	rng := stats.NewRNG(4)
	key := make([]byte, 10)
	rng.Bytes(key)
	ks, _ := present.Expand(key)
	clean := present.SBox()
	cleanPT := rng.Uint64()
	cleanCT := present.Encrypt(ks, &clean, cleanPT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		faulty := present.SBox()
		v := rng.Intn(16)
		yStar := faulty[v]
		faulty[v] ^= byte(1 << uint(rng.Intn(4)))
		col := pfa.NewPresentCollector()
		for n := 1; ; n++ {
			col.Observe(present.Encrypt(ks, &faulty, rng.Uint64()))
			if n%64 == 0 {
				if _, err := col.RecoverMasterKnownFault(yStar, cleanPT, cleanCT); err == nil {
					break
				}
			}
		}
	}
}

// BenchmarkE11ActiveWait contrasts active- and sleeping-attacker steering
// (table E11): the metric is the sleeping-attacker hit rate (expected 0).
func BenchmarkE11ActiveWait(b *testing.B) {
	hits := 0
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultSteeringConfig()
		cfg.Seed = uint64(i)
		cfg.AttackerSleeps = true
		res, err := core.RunSteeringTrial(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.FirstPageHit {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "sleep_steer_rate")
}

// BenchmarkE12Zones measures one full allocation-pressure sweep (table E12).
func BenchmarkE12Zones(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := mm.DefaultConfig()
		cfg.TotalBytes = 64 << 20
		pm, err := mm.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := pm.AllocPages(0, 0); err != nil {
				break
			}
		}
		if pm.Stats(mm.ZoneDMA).Fallbacks == 0 {
			b.Fatal("no fallback observed")
		}
	}
}

// BenchmarkE13Defences measures a TRR-protected double-sided hammer run:
// the defence's cost is extra refreshes, the attack's cost is total loss of
// flips (table E13).  The metric is the flip count, expected 0.
func BenchmarkE13Defences(b *testing.B) {
	cfg := kernel.DefaultConfig()
	cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
	cfg.FaultModel = dram.FaultModel{
		WeakCellDensity: 2e-4,
		BaseThreshold:   1500,
		ThresholdSpread: 0.5,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 21,
		FlipReliability: 1,
		TRR:             dram.TRRConfig{Enabled: true, TrackerSize: 4, Threshold: 300},
	}
	m, err := kernel.NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := m.Spawn("attacker", 0)
	const length = 2 << 20
	base, _ := p.Mmap(length)
	if err := p.Touch(base, length); err != nil {
		b.Fatal(err)
	}
	eng := rowhammer.New(rowhammer.Config{Mode: rowhammer.DoubleSided, PairHammerCount: 3200}, m, p)
	agg, err := eng.FindAggressors(base+64*vm.PageSize, base, length)
	if err != nil {
		b.Fatal(err)
	}
	before := m.DRAM().Stats().BitFlips
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.HammerDefault(agg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.DRAM().Stats().BitFlips-before), "flips_total")
	b.ReportMetric(float64(m.DRAM().Stats().TRRRefreshes)/float64(b.N), "trr_refreshes/op")
}

// BenchmarkE14PCPPolicy runs one FIFO-ablated steering trial per iteration
// (table E14); the hit rate is expected to be 0.
func BenchmarkE14PCPPolicy(b *testing.B) {
	hits := 0
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultSteeringConfig()
		cfg.Seed = uint64(i)
		cfg.Machine.PCPFIFO = true
		res, err := core.RunSteeringTrial(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.FirstPageHit {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "fifo_steer_rate")
}

// --- substrate microbenches ----------------------------------------------

func BenchmarkAESEncryptBlock(b *testing.B) {
	ks, _ := aes.Expand(make([]byte, 16))
	sb := aes.SBox()
	src := make([]byte, 16)
	dst := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aes.EncryptBlock(ks, &sb, dst, src)
	}
}

func BenchmarkPresentEncryptBlock(b *testing.B) {
	ks, _ := present.Expand(make([]byte, 10))
	sb := present.SBox()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		present.Encrypt(ks, &sb, uint64(i))
	}
}

func BenchmarkBuddyAllocFreeOrder3(b *testing.B) {
	pm, _ := mm.New(mm.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pm.AllocPages(0, 3)
		if err != nil {
			b.Fatal(err)
		}
		if err := pm.FreePages(0, p, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCPAllocFree(b *testing.B) {
	pm, _ := mm.New(mm.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pm.AllocPages(0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := pm.FreePages(0, p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDRAMActivate(b *testing.B) {
	dev, _ := dram.NewDevice(dram.DefaultGeometry(), dram.DefaultFaultModel(), 1)
	m := dev.Mapper()
	a := m.ToDRAM(0)
	p1 := m.SameBankRow(a, 100, 0)
	p2 := m.SameBankRow(a, 200, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.ActivateRow(p1)
		dev.ActivateRow(p2)
	}
}

func BenchmarkPageTableMapUnmap(b *testing.B) {
	pt := vm.NewPageTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := vm.VirtAddr(uint64(i%1024) * vm.PageSize)
		if err := pt.Map(va, mm.PFN(i), true); err != nil {
			b.Fatal(err)
		}
		pt.Unmap(va)
	}
}

func BenchmarkProcessLoad(b *testing.B) {
	m, _ := kernel.NewMachine(kernel.DefaultConfig())
	p, _ := m.Spawn("bench", 0)
	base, _ := p.Mmap(64 * vm.PageSize)
	p.Touch(base, 64*vm.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Load(base + vm.VirtAddr(i%(64*vm.PageSize))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseDeviceConstruction measures NewDevice for an 8 GiB
// geometry with the default weak-cell population: the sparse backing store
// makes this proportional to the weak-cell count (plus one int32 per row),
// not the capacity.  allocs/op and B/op are the headline numbers; the
// asserted ceiling lives in machine.TestLargeDeviceConstructionIsSparse.
func BenchmarkSparseDeviceConstruction(b *testing.B) {
	g := dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 16, Rows: 1 << 16, RowBytes: 8192}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dram.NewDevice(g, dram.DefaultFaultModel(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHammerLoopSteadyState measures the post-warm-up hammer loop on
// the default machine with allocation reporting — the zero-alloc contract
// `benchtab -check-trajectory` enforces in CI.
func BenchmarkHammerLoopSteadyState(b *testing.B) {
	p, vas, err := machine.NewHammerBench(machine.MustGet("default"), 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.HammerLoop(vas, 1<<21); err != nil { // past one refresh window
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := p.HammerLoop(vas, b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHammerLoopPerMachine times the translation-cached hammer loop on
// every registered machine profile — the in-tree counterpart of the
// BENCH_machines.json snapshot benchtab emits (interface-dispatched mapper,
// TRR sampling and geometry differences all land in this number).
func BenchmarkHammerLoopPerMachine(b *testing.B) {
	for _, name := range machine.Names() {
		b.Run(name, func(b *testing.B) {
			p, vas, err := machine.NewHammerBench(machine.MustGet(name), 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := p.HammerLoop(vas, b.N); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(vas)), "activations/op")
		})
	}
}

// BenchmarkPrimeProbe measures one steady-state Prime+Probe measurement
// window (prime, victim encryption, probe) over the same deterministic
// workload benchtab's trajectory probe rows are measured with
// (machine.NewProbeBench), with allocation reporting — the zero-alloc probe
// contract `benchtab -check-trajectory` enforces in CI.
func BenchmarkPrimeProbe(b *testing.B) {
	atk, err := machine.NewProbeBench("prime-probe")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ { // past the one-time fills and accumulator growth
		atk.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atk.Step()
	}
}

// BenchmarkEncryptBatchPerCipher times every registered cipher's encrypt
// core through the scalar path and through the full-width batch (bitsliced)
// path, over the same deterministic workload benchtab's trajectory rows are
// measured with (machine.NewCipherCoreBench), so benchmark and snapshot
// cannot drift.  ns/op divided by lanes is the trajectory's ns/encryption.
func BenchmarkEncryptBatchPerCipher(b *testing.B) {
	for _, name := range registry.Names() {
		c, ok := registry.Get(name)
		if !ok {
			b.Fatalf("cipher %q vanished from the registry", name)
		}
		inst, table, dst, src, err := machine.NewCipherCoreBench(c)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/scalar", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				registry.ScalarEncryptBatch(inst, table, dst, src)
			}
			b.ReportMetric(float64(len(src)), "encryptions/op")
		})
		b.Run(name+"/bitsliced", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst.EncryptBatch(table, dst, src)
			}
			b.ReportMetric(float64(len(src)), "encryptions/op")
		})
	}
}
