package lilliput

import "testing"

// FuzzEncryptDecrypt checks decrypt(encrypt(p)) == p for arbitrary keys and
// blocks, that the key schedule inversion used by the fault attack matches
// the forward schedule, and that the byte-slice form agrees with the uint64
// form.  Run with: go test -fuzz=FuzzEncryptDecrypt ./internal/cipher/lilliput
func FuzzEncryptDecrypt(f *testing.F) {
	f.Add(make([]byte, KeyBytes), uint64(0))
	f.Add([]byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF, 0x01, 0x23}, uint64(0x0011223344556677))
	f.Fuzz(func(t *testing.T, key []byte, pt uint64) {
		if len(key) != KeyBytes {
			if _, err := Expand(key); err == nil {
				t.Fatalf("Expand accepted a %d-byte key", len(key))
			}
			return
		}
		ks, err := Expand(key)
		if err != nil {
			t.Fatal(err)
		}
		sb, isb := SBox(), InvSBox()
		ct := Encrypt(ks, &sb, pt)
		if back := Decrypt(ks, &isb, ct); back != pt {
			t.Fatalf("round trip: key %x pt %016x -> ct %016x -> %016x", key, pt, ct, back)
		}
		src := make([]byte, BlockSize)
		putU64(src, pt)
		dst := make([]byte, BlockSize)
		EncryptBlock(ks, &sb, dst, src)
		if getU64(dst) != ct {
			t.Fatalf("byte form diverges from uint64 form: %x vs %016x", dst, ct)
		}
		// The schedule must invert step by step: walking the final register
		// state backwards recovers the master key (the property master-key
		// recovery brute-forces over the hidden low bits).
		h, l := loadKey(key)
		for r := 1; r <= Rounds; r++ {
			h, l = update(h, l, r)
		}
		for r := Rounds; r >= 1; r-- {
			h, l = invUpdate(h, l, r)
		}
		if back := storeKey(h, l); string(back) != string(key) {
			t.Fatalf("schedule inversion: %x -> %x", key, back)
		}
	})
}
