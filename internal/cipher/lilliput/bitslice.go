package lilliput

import "explframe/internal/cipher/bitslice"

// engine is the bitsliced 64-lane core, wired once to the LILLIPUT-style
// S-box and pLayer; the circuit and permutation are key-independent, so
// the engine is shared by every Schedule.
var engine = bitslice.NewSPN64(Rounds, sbox, func(i int) int { return 13 * i & 63 })

// EncryptBlocksBitsliced enciphers up to bitslice.Lanes blocks in parallel,
// one bit-plane per uint64, bit-for-bit equivalent to EncryptBlock on every
// lane — faulted tables included, via S-box-circuit patching.
func EncryptBlocksBitsliced(ks *Schedule, sb *[16]byte, dst, src [][]byte) {
	engine.EncryptBatch(ks.rk[:], sb[:], dst, src)
}

// EncryptBlocksWithFaultBitsliced enciphers like EncryptBlocksBitsliced but
// XORs masks[i] (big-endian, as in EncryptWithFault's delta) into lane i's
// state at the entry of the given 1-based round.
func EncryptBlocksWithFaultBitsliced(ks *Schedule, sb *[16]byte, dst, src [][]byte, round int, masks [][]byte) {
	if round < 1 || round > Rounds {
		panic("lilliput: fault round out of range")
	}
	engine.EncryptWithFaultBatch(ks.rk[:], sb[:], dst, src, round, masks)
}
