package lilliput

import (
	"testing"

	"explframe/internal/stats"
)

// FuzzBitslicedVsScalar pins the bitsliced core to the scalar path: for a
// fuzz-chosen key, batch size, faulted table and fault round, every lane of
// EncryptBlocksBitsliced and EncryptBlocksWithFaultBitsliced must equal the
// corresponding scalar encryption byte for byte.
func FuzzBitslicedVsScalar(f *testing.F) {
	f.Add(uint64(0), byte(64), byte(0), byte(1))
	f.Add(uint64(0xdeadbeefcafef00d), byte(17), byte(2), byte(20))
	f.Add(uint64(42), byte(1), byte(3), byte(30))
	f.Fuzz(func(t *testing.T, seed uint64, lanes, faults, round byte) {
		rng := stats.NewRNG(seed)
		key := make([]byte, KeyBytes)
		rng.Bytes(key)
		ks, err := Expand(key)
		if err != nil {
			t.Fatal(err)
		}
		sb := SBox()
		for i := 0; i < int(faults%4); i++ {
			sb[rng.Intn(16)] ^= byte(rng.Intn(255) + 1)
		}
		n := int(lanes)%64 + 1
		r := int(round)%Rounds + 1
		src := make([][]byte, n)
		dst := make([][]byte, n)
		masks := make([][]byte, n)
		for i := range src {
			src[i] = make([]byte, BlockSize)
			rng.Bytes(src[i])
			dst[i] = make([]byte, BlockSize)
			masks[i] = make([]byte, BlockSize)
			rng.Bytes(masks[i])
		}
		EncryptBlocksBitsliced(ks, &sb, dst, src)
		for i := range src {
			if want := Encrypt(ks, &sb, getU64(src[i])); getU64(dst[i]) != want {
				t.Fatalf("lane %d/%d: bitsliced %016x, scalar %016x", i, n, getU64(dst[i]), want)
			}
		}
		EncryptBlocksWithFaultBitsliced(ks, &sb, dst, src, r, masks)
		for i := range src {
			want := EncryptWithFault(ks, &sb, getU64(src[i]), r, getU64(masks[i]))
			if getU64(dst[i]) != want {
				t.Fatalf("fault lane %d/%d round %d: bitsliced %016x, scalar %016x", i, n, r, getU64(dst[i]), want)
			}
		}
	})
}
