package lilliput

import (
	"bytes"
	"testing"

	"explframe/internal/stats"
)

func corruptTable(rng *stats.RNG, faults int) [16]byte {
	sb := SBox()
	for k := 0; k < faults; k++ {
		sb[rng.Intn(16)] ^= byte(1 + rng.Intn(255)) // may also hit stored bits above the nibble
	}
	return sb
}

func makeBatch(rng *stats.RNG, n int) (dst, src [][]byte) {
	dst = make([][]byte, n)
	src = make([][]byte, n)
	for i := 0; i < n; i++ {
		dst[i] = make([]byte, BlockSize)
		src[i] = make([]byte, BlockSize)
		rng.Bytes(src[i])
	}
	return dst, src
}

func TestEncryptBlocksBitslicedMatchesScalar(t *testing.T) {
	rng := stats.NewRNG(0x111a7)
	for trial := 0; trial < 30; trial++ {
		key := make([]byte, KeyBytes)
		rng.Bytes(key)
		ks, err := Expand(key)
		if err != nil {
			t.Fatal(err)
		}
		sb := corruptTable(rng, trial%4)
		for _, n := range []int{1, 7, 64} {
			dst, src := makeBatch(rng, n)
			EncryptBlocksBitsliced(ks, &sb, dst, src)
			want := make([]byte, BlockSize)
			for i := 0; i < n; i++ {
				EncryptBlock(ks, &sb, want, src[i])
				if !bytes.Equal(dst[i], want) {
					t.Fatalf("trial %d n=%d lane %d: bitsliced %x != scalar %x", trial, n, i, dst[i], want)
				}
			}
		}
	}
}

func TestEncryptBlocksWithFaultBitslicedMatchesScalar(t *testing.T) {
	rng := stats.NewRNG(0x2fa57)
	key := make([]byte, KeyBytes)
	rng.Bytes(key)
	ks, err := Expand(key)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= Rounds; round++ {
		sb := corruptTable(rng, round%3)
		n := 1 + rng.Intn(64)
		dst, src := makeBatch(rng, n)
		masks := make([][]byte, n)
		for i := range masks {
			masks[i] = make([]byte, BlockSize)
			rng.Bytes(masks[i])
		}
		EncryptBlocksWithFaultBitsliced(ks, &sb, dst, src, round, masks)
		want := make([]byte, BlockSize)
		for i := 0; i < n; i++ {
			putU64(want, EncryptWithFault(ks, &sb, getU64(src[i]), round, getU64(masks[i])))
			if !bytes.Equal(dst[i], want) {
				t.Fatalf("round %d lane %d: bitsliced %x != scalar %x", round, i, dst[i], want)
			}
		}
	}
}
