// Package lilliput implements a LILLIPUT-style lightweight SPN — 64-bit
// block, 80-bit key, the LILLIPUT 4-bit S-box (Berger et al., IEEE TC 2016)
// — as the registry's third victim cipher.  "From Precise to Random: A
// Systematic DFA of LILLIPUT" shows ExplFrame-class fault machinery carries
// to such ciphers; this package provides a same-shaped target whose table
// lives in corruptible victim memory.
//
// This is not the LILLIPUT specification (which is an extended generalised
// Feistel with a tweakey schedule): it is a PRESENT-shaped
// substitution-permutation network in the LILLIPUT style, chosen so the
// last round keeps the ct = P(S(x)) ^ K form that persistent fault
// analysis inverts.  Test vectors are pinned in this repository rather than
// taken from a published spec.
//
// Structure, with the 64-bit state in a uint64 (bit 0 least significant):
//
//   - 30 rounds of AddRoundKey, a 16-nibble S-box layer, and a bit
//     permutation moving bit i to bit 13*i mod 64 (13 is invertible mod 64
//     with inverse 5, and the four bits of one nibble scatter into four
//     distinct nibbles — the same diffusion idiom as PRESENT's pLayer).
//   - A final whitening key (round key 31).
//   - An 80-bit key register held as two 40-bit halves; each schedule step
//     rotates the register left by 23 bits, passes the top two nibbles
//     through the S-box, and XORs the round counter into the low bits.
//     Every step is invertible, which the fault attack's master-key
//     recovery exploits.
package lilliput

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// BlockSize is the block size in bytes.
const BlockSize = 8

// Rounds is the number of substitution-permutation rounds; 31 round keys
// are consumed (K1..K30 in rounds, K31 as the final whitening key).
const Rounds = 30

// KeyBytes is the master key length in bytes (80 bits).
const KeyBytes = 10

// sbox is the LILLIPUT 4-bit S-box.
var sbox = [16]byte{0x4, 0x8, 0x7, 0x1, 0x9, 0x3, 0x2, 0xE, 0xD, 0xC, 0x6, 0xF, 0x0, 0xB, 0x5, 0xA}

var invSbox [16]byte

func init() {
	for i, v := range sbox {
		invSbox[v] = byte(i)
	}
}

// SBox returns a fresh copy of the S-box; victims store it in simulated
// memory where a Rowhammer flip can corrupt it.  Entries are 4-bit values
// stored one per byte.
func SBox() [16]byte { return sbox }

// InvSBox returns a fresh copy of the inverse S-box.
func InvSBox() [16]byte { return invSbox }

// PLayer applies the bit permutation: bit i of the input moves to bit
// position 13*i mod 64.
func PLayer(x uint64) uint64 {
	var out uint64
	for i := 0; i < 64; i++ {
		out |= ((x >> uint(i)) & 1) << uint(13*i&63)
	}
	return out
}

// InvPLayer inverts PLayer (the inverse multiplier of 13 mod 64 is 5).
func InvPLayer(x uint64) uint64 {
	var out uint64
	for i := 0; i < 64; i++ {
		out |= ((x >> uint(i)) & 1) << uint(5*i&63)
	}
	return out
}

// sboxLayer substitutes all 16 nibbles through the table.  Table entries
// are masked to 4 bits so an out-of-range corrupted entry behaves like the
// hardware it models (only the low nibble reaches the datapath).
func sboxLayer(x uint64, sb *[16]byte) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		n := (x >> uint(4*i)) & 0xF
		out |= uint64(sb[n]&0xF) << uint(4*i)
	}
	return out
}

// Schedule holds the 31 round keys.
type Schedule struct {
	rk [Rounds + 1]uint64
}

// RoundKey returns round key i, 1-based (1..31).
func (s *Schedule) RoundKey(i int) uint64 { return s.rk[i-1] }

// ErrKeySize reports an unsupported key length.
var ErrKeySize = errors.New("lilliput: key must be 10 bytes (80 bits)")

const mask40 = (1 << 40) - 1

// rotl23 rotates the 80-bit register (h: bits 79..40, l: bits 39..0) left
// by 23 — the only rotation the schedule uses.
func rotl23(h, l uint64) (uint64, uint64) {
	return (h<<23 | l>>17) & mask40, (l<<23 | h>>17) & mask40
}

// rotr23 inverts rotl23.
func rotr23(h, l uint64) (uint64, uint64) {
	return (h>>23 | l<<17) & mask40, (l>>23 | h<<17) & mask40
}

// update advances the key register by one schedule step for round counter r.
func update(h, l uint64, r int) (uint64, uint64) {
	h, l = rotl23(h, l)
	h = h&^uint64(0xFF<<32) | uint64(sbox[h>>36])<<36 | uint64(sbox[(h>>32)&0xF])<<32
	l ^= uint64(r)
	return h, l
}

// invUpdate inverts update for round counter r.
func invUpdate(h, l uint64, r int) (uint64, uint64) {
	l ^= uint64(r)
	h = h&^uint64(0xFF<<32) | uint64(invSbox[h>>36])<<36 | uint64(invSbox[(h>>32)&0xF])<<32
	return rotr23(h, l)
}

// loadKey splits a 10-byte big-endian key (key[0] holds bits 79..72) into
// the two 40-bit register halves.
func loadKey(key []byte) (h, l uint64) {
	for i := 0; i < 5; i++ {
		h = h<<8 | uint64(key[i])
		l = l<<8 | uint64(key[5+i])
	}
	return h, l
}

// storeKey is the inverse of loadKey.
func storeKey(h, l uint64) []byte {
	key := make([]byte, KeyBytes)
	for i := 4; i >= 0; i-- {
		key[i] = byte(h)
		key[5+i] = byte(l)
		h >>= 8
		l >>= 8
	}
	return key
}

// Expand derives the 31 round keys from a 10-byte master key.  Round key r
// is the top 64 bits of the register before schedule step r.
func Expand(key []byte) (*Schedule, error) {
	if len(key) != KeyBytes {
		return nil, fmt.Errorf("%w: got %d bytes", ErrKeySize, len(key))
	}
	h, l := loadKey(key)
	s := &Schedule{}
	for r := 1; r <= Rounds+1; r++ {
		s.rk[r-1] = h<<24 | l>>16
		if r == Rounds+1 {
			break
		}
		h, l = update(h, l, r)
	}
	return s, nil
}

// Encrypt enciphers one 64-bit block with the given round keys and S-box.
func Encrypt(ks *Schedule, sb *[16]byte, block uint64) uint64 {
	st := block
	for r := 1; r <= Rounds; r++ {
		st ^= ks.RoundKey(r)
		st = sboxLayer(st, sb)
		st = PLayer(st)
	}
	return st ^ ks.RoundKey(Rounds+1)
}

// EncryptWithFault enciphers like Encrypt but XORs delta into the state at
// the entry of the given round (1-based; before that round's AddRoundKey).
// This is the transient fault model differential fault analysis assumes;
// the round-29 setting scatters one faulted nibble into four distinct
// nibbles of the final S-box layer, which is what the DFA ladder exploits.
func EncryptWithFault(ks *Schedule, sb *[16]byte, block uint64, round int, delta uint64) uint64 {
	if round < 1 || round > Rounds {
		panic("lilliput: fault round out of range")
	}
	st := block
	for r := 1; r <= Rounds; r++ {
		if r == round {
			st ^= delta
		}
		st ^= ks.RoundKey(r)
		st = sboxLayer(st, sb)
		st = PLayer(st)
	}
	return st ^ ks.RoundKey(Rounds+1)
}

// Decrypt deciphers one block using the inverse S-box.
func Decrypt(ks *Schedule, isb *[16]byte, block uint64) uint64 {
	st := block ^ ks.RoundKey(Rounds+1)
	for r := Rounds; r >= 1; r-- {
		st = InvPLayer(st)
		st = sboxLayer(st, isb)
		st ^= ks.RoundKey(r)
	}
	return st
}

// EncryptBlock is the byte-slice form of Encrypt (big-endian blocks).
func EncryptBlock(ks *Schedule, sb *[16]byte, dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("lilliput: short block")
	}
	putU64(dst, Encrypt(ks, sb, getU64(src)))
}

// DecryptBlock is the byte-slice form of Decrypt.
func DecryptBlock(ks *Schedule, isb *[16]byte, dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("lilliput: short block")
	}
	putU64(dst, Decrypt(ks, isb, getU64(src)))
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putU64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// RecoverMasterFromLastRound inverts the key schedule given the final round
// key K31 and a known plaintext/ciphertext pair to resolve the 16 register
// bits K31 does not expose.  It brute-forces those 16 bits (2^16 schedule
// inversions, parallelised across CPUs) and returns the 10-byte master key.
func RecoverMasterFromLastRound(k31 uint64, plaintext, ciphertext uint64) ([]byte, bool) {
	sb := SBox()
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	results := make(chan []byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for guess := w; guess < 1<<16; guess += workers {
				h := k31 >> 24
				l := (k31&0xFFFFFF)<<16 | uint64(guess)
				for r := Rounds; r >= 1; r-- {
					h, l = invUpdate(h, l, r)
				}
				key := storeKey(h, l)
				ks, _ := Expand(key)
				if Encrypt(ks, &sb, plaintext) == ciphertext {
					select {
					case results <- key:
					default:
					}
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	key, ok := <-results
	return key, ok
}
