package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS-197 Appendix C known-answer tests for all three key sizes.
func TestKnownAnswerFIPS197(t *testing.T) {
	cases := []struct {
		key, pt, ct string
	}{
		{
			"000102030405060708090a0b0c0d0e0f",
			"00112233445566778899aabbccddeeff",
			"69c4e0d86a7b0430d8cdb78070b4c55a",
		},
		{
			"000102030405060708090a0b0c0d0e0f1011121314151617",
			"00112233445566778899aabbccddeeff",
			"dda97ca4864cdfe06eaf70a0ec0d7191",
		},
		{
			"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
			"00112233445566778899aabbccddeeff",
			"8ea2b7ca516745bfeafc49904b496089",
		},
	}
	for _, tc := range cases {
		key, pt, want := unhex(t, tc.key), unhex(t, tc.pt), unhex(t, tc.ct)
		ks, err := Expand(key)
		if err != nil {
			t.Fatal(err)
		}
		sb := SBox()
		got := make([]byte, 16)
		EncryptBlock(ks, &sb, got, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("key %s: got %x want %x", tc.key, got, want)
		}
		isb := InvSBox()
		back := make([]byte, 16)
		DecryptBlock(ks, &isb, back, got)
		if !bytes.Equal(back, pt) {
			t.Fatalf("key %s: decrypt got %x want %x", tc.key, back, pt)
		}
		// Same vector through the bitsliced core, replicated across a full
		// 64-lane batch and as a batch of one.
		for _, n := range []int{1, 64} {
			src := make([][]byte, n)
			dst := make([][]byte, n)
			for i := range src {
				src[i] = pt
				dst[i] = make([]byte, 16)
			}
			EncryptBlocksBitsliced(ks, &sb, dst, src)
			for i := range dst {
				if !bytes.Equal(dst[i], want) {
					t.Fatalf("key %s bitsliced lane %d/%d: got %x want %x", tc.key, i, n, dst[i], want)
				}
			}
		}
	}
}

// FIPS-197 Appendix B vector exercises a different key/plaintext pair.
func TestKnownAnswerAppendixB(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	want := unhex(t, "3925841d02dc09fbdc118597196a0b32")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
}

func TestExpandRejectsBadKeys(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 31, 33} {
		if _, err := Expand(make([]byte, n)); err == nil {
			t.Fatalf("key size %d accepted", n)
		}
	}
	if _, err := NewCipher(make([]byte, 5)); err == nil {
		t.Fatal("NewCipher accepted bad key")
	}
}

func TestCipherBlockSize(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	if c.BlockSize() != 16 {
		t.Fatal("block size")
	}
}

// Property: decrypt(encrypt(p)) == p for random keys and blocks.
func TestEncryptDecryptRoundTrip(t *testing.T) {
	sb, isb := SBox(), InvSBox()
	f := func(key [16]byte, pt [16]byte) bool {
		ks, err := Expand(key[:])
		if err != nil {
			return false
		}
		var ct, back [16]byte
		EncryptBlock(ks, &sb, ct[:], pt[:])
		DecryptBlock(ks, &isb, back[:], ct[:])
		return back == pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The S-box must be a bijection and match its inverse.
func TestSBoxBijective(t *testing.T) {
	sb, isb := SBox(), InvSBox()
	seen := map[byte]bool{}
	for i := 0; i < 256; i++ {
		v := sb[i]
		if seen[v] {
			t.Fatalf("S-box value %#x repeated", v)
		}
		seen[v] = true
		if isb[v] != byte(i) {
			t.Fatalf("invSbox[sbox[%#x]] = %#x", i, isb[v])
		}
	}
}

// ShiftRows index tables must be inverse permutations of each other.
func TestShiftTablesInverse(t *testing.T) {
	for i := 0; i < 16; i++ {
		if invShift[shift[i]] != i {
			t.Fatalf("invShift[shift[%d]] = %d", i, invShift[shift[i]])
		}
		if ShiftRowsIndex(i) != shift[i] {
			t.Fatal("ShiftRowsIndex disagrees with table")
		}
	}
}

// Key schedule inversion: expanding a key and inverting from its last round
// key must return the master key.
func TestRecoverMasterFromLastRound(t *testing.T) {
	f := func(key [16]byte) bool {
		ks, err := Expand(key[:])
		if err != nil {
			return false
		}
		got := RecoverMasterFromLastRound(ks.RoundKey(10))
		return got == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A corrupted S-box entry must change ciphertexts (when the entry is used)
// and must follow the PFA structure: the original output value y* = S[v*]
// disappears from the final-round S-box image.
func TestFaultedSBoxChangesOutput(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	ks, _ := Expand(key)
	clean := SBox()
	faulty := SBox()
	faulty[0x12] ^= 0x40 // single-bit fault, as a Rowhammer flip produces

	pt := unhex(t, "00112233445566778899aabbccddeeff")
	var cClean, cFaulty [16]byte
	EncryptBlock(ks, &clean, cClean[:], pt)
	EncryptBlock(ks, &faulty, cFaulty[:], pt)
	if cClean == cFaulty {
		t.Fatal("fault did not propagate (improbable for a full encryption)")
	}

	// Decrypting the faulty ciphertext with the clean schedule must fail to
	// return the plaintext: the fault is persistent, not a key fault.
	isb := InvSBox()
	var back [16]byte
	DecryptBlock(ks, &isb, back[:], cFaulty[:])
	if bytes.Equal(back[:], pt) {
		t.Fatal("faulty ciphertext decrypted cleanly")
	}
}

// Last-round structure: ciphertext byte i equals sbox[state[shift[i]]] ^
// k10[i].  PFA's missing-value analysis relies on exactly this; verify it by
// recomputing the last round manually.
func TestLastRoundStructure(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	ks, _ := Expand(key)
	sb := SBox()

	// Run the cipher up to the start of the last round by hand.
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	var st [16]byte
	copy(st[:], pt)
	addRoundKey(&st, &ks.rk[0])
	for r := 1; r < ks.rounds; r++ {
		subShift(&st, &sb)
		for c := 0; c < 4; c++ {
			mixColumn(st[4*c : 4*c+4])
		}
		addRoundKey(&st, &ks.rk[r])
	}
	pre := st // state entering the final round

	var ct [16]byte
	EncryptBlock(ks, &sb, ct[:], pt)
	k10 := ks.RoundKey(10)
	for i := 0; i < 16; i++ {
		if ct[i] != sb[pre[shift[i]]]^k10[i] {
			t.Fatalf("byte %d: last-round structure violated", i)
		}
	}
}

func TestRoundKeyAccessors(t *testing.T) {
	ks, _ := Expand(make([]byte, 16))
	if ks.Rounds() != 10 {
		t.Fatalf("rounds = %d", ks.Rounds())
	}
	rk0 := ks.RoundKey(0)
	if rk0 != [16]byte{} {
		t.Fatal("whitening key of all-zero key must be zero")
	}
	ks24, _ := Expand(make([]byte, 24))
	if ks24.Rounds() != 12 {
		t.Fatal("AES-192 rounds")
	}
	ks32, _ := Expand(make([]byte, 32))
	if ks32.Rounds() != 14 {
		t.Fatal("AES-256 rounds")
	}
}

func TestShortBlockPanics(t *testing.T) {
	ks, _ := Expand(make([]byte, 16))
	sb := SBox()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short block")
		}
	}()
	EncryptBlock(ks, &sb, make([]byte, 16), make([]byte, 7))
}
