package aes

import "explframe/internal/cipher/bitslice"

// This file is the bitsliced 64-lane AES core: the 128-bit state of 64
// independent blocks is held as 128 uint64 bit-planes (plane 8*i+j is bit
// j of state byte i, lane b at bit b), SubBytes runs the Boyar–Peralta
// 113-gate S-box circuit once per byte position, ShiftRows is a free
// relabelling of plane groups, and MixColumns uses the t = a0^a1^a2^a3
// xtime identity.  Faulted tables are preserved exactly by patching the
// canonical circuit: for each table entry that deviates, an equality mask
// over the input planes selects the lanes reading that entry and XORs the
// deviation into their output planes.

// aesPatch is one faulted S-box entry for the bitsliced core.
type aesPatch struct{ in, delta byte }

// diffTable lists where sb deviates from the canonical S-box.
func diffTable(sb *[256]byte) []aesPatch {
	var ps []aesPatch
	for e := 0; e < 256; e++ {
		if d := sb[e] ^ sbox[e]; d != 0 {
			ps = append(ps, aesPatch{in: byte(e), delta: d})
		}
	}
	return ps
}

// EncryptBlocksBitsliced encrypts up to bitslice.Lanes 16-byte blocks in
// parallel with the given schedule and (possibly corrupted) S-box table,
// bit-for-bit equivalent to EncryptBlock on every lane.
func EncryptBlocksBitsliced(ks *Schedule, sb *[256]byte, dst, src [][]byte) {
	encryptBitsliced(ks, sb, dst, src, 0, nil)
}

// EncryptBlocksWithFaultBitsliced encrypts like EncryptBlocksBitsliced but
// XORs the 16-byte masks[i] into lane i's state at the entry of the given
// 1-based round, matching EncryptBlockWithFault lane for lane.
func EncryptBlocksWithFaultBitsliced(ks *Schedule, sb *[256]byte, dst, src [][]byte, round int, masks [][]byte) {
	if round < 1 || round > ks.rounds {
		panic("aes: fault round out of range")
	}
	encryptBitsliced(ks, sb, dst, src, round, masks)
}

// encryptBitsliced is the common batch body; faultRound 0 means no
// transient fault.
func encryptBitsliced(ks *Schedule, sb *[256]byte, dst, src [][]byte, faultRound int, masks [][]byte) {
	n := len(src)
	if n > bitslice.Lanes {
		panic("aes: batch wider than 64 lanes")
	}
	if len(dst) != n {
		panic("aes: batch dst/src length mismatch")
	}
	var st [128]uint64
	loadPlanes(&st, src, n)

	var fp [128]uint64
	if faultRound != 0 {
		if len(masks) != n {
			panic("aes: batch masks length mismatch")
		}
		loadPlanes(&fp, masks, n)
	}

	patches := diffTable(sb)
	addRoundKeyPlanes(&st, &ks.rk[0])
	for r := 1; r < ks.rounds; r++ {
		if r == faultRound {
			xorPlanes(&st, &fp)
		}
		subShiftPlanes(&st, patches)
		mixColumnsPlanes(&st)
		addRoundKeyPlanes(&st, &ks.rk[r])
	}
	if faultRound == ks.rounds {
		xorPlanes(&st, &fp)
	}
	subShiftPlanes(&st, patches)
	addRoundKeyPlanes(&st, &ks.rk[ks.rounds])

	storePlanes(&st, dst, n)
}

// loadPlanes converts n 16-byte blocks into 128 bit-planes: the low and
// high 8 bytes each form a 64x64 bit matrix transposed in place.
func loadPlanes(st *[128]uint64, blocks [][]byte, n int) {
	lo := (*[64]uint64)(st[0:64])
	hi := (*[64]uint64)(st[64:128])
	for b := 0; b < n; b++ {
		blk := blocks[b]
		if len(blk) < BlockSize {
			panic("aes: short block")
		}
		var l, h uint64
		for i := 7; i >= 0; i-- {
			l = l<<8 | uint64(blk[i])
			h = h<<8 | uint64(blk[8+i])
		}
		lo[b], hi[b] = l, h
	}
	bitslice.Transpose64(lo)
	bitslice.Transpose64(hi)
}

// storePlanes is the inverse of loadPlanes.
func storePlanes(st *[128]uint64, blocks [][]byte, n int) {
	lo := (*[64]uint64)(st[0:64])
	hi := (*[64]uint64)(st[64:128])
	bitslice.Transpose64(lo)
	bitslice.Transpose64(hi)
	for b := 0; b < n; b++ {
		blk := blocks[b]
		if len(blk) < BlockSize {
			panic("aes: short block")
		}
		l, h := lo[b], hi[b]
		for i := 0; i < 8; i++ {
			blk[i] = byte(l)
			blk[8+i] = byte(h)
			l >>= 8
			h >>= 8
		}
	}
}

// addRoundKeyPlanes XORs the broadcast of each round-key bit into its
// plane.
func addRoundKeyPlanes(st *[128]uint64, rk *[16]byte) {
	for i := 0; i < 16; i++ {
		k := rk[i]
		for j := 0; j < 8; j++ {
			st[8*i+j] ^= -(uint64(k) >> uint(j) & 1)
		}
	}
}

// xorPlanes folds the transient-fault planes into the state.
func xorPlanes(st, fp *[128]uint64) {
	for p := range st {
		st[p] ^= fp[p]
	}
}

// subShiftPlanes applies SubBytes then ShiftRows in one pass, as the
// scalar subShift does: output byte i's planes come from the circuit run
// on input byte shift[i]'s planes.  Patches replay the table's faulted
// entries on top of the canonical circuit.
func subShiftPlanes(st *[128]uint64, patches []aesPatch) {
	var out [128]uint64
	for i := 0; i < 16; i++ {
		q := (*[8]uint64)(st[8*shift[i] : 8*shift[i]+8])
		o := (*[8]uint64)(out[8*i : 8*i+8])
		if len(patches) == 0 {
			*o = *q
			sboxCircuit(o)
			continue
		}
		in := *q
		*o = in
		sboxCircuit(o)
		for _, p := range patches {
			eq := ^uint64(0)
			for j := 0; j < 8; j++ {
				// XNOR with the broadcast of bit j of the faulted index:
				// keeps only lanes whose input byte equals p.in.
				eq &= in[j] ^ ^(-(uint64(p.in) >> uint(j) & 1))
			}
			for j := 0; j < 8; j++ {
				if p.delta>>uint(j)&1 != 0 {
					o[j] ^= eq
				}
			}
		}
	}
	*st = out
}

// mixColumnsPlanes applies MixColumns to each column's four byte groups
// using c_i = a_i ^ t ^ xtime(a_i ^ a_{i+1}) with t = a0^a1^a2^a3; xtime
// on planes is a shift of the bit indices with the 0x1b feedback taps.
func mixColumnsPlanes(st *[128]uint64) {
	for c := 0; c < 4; c++ {
		base := 32 * c
		var a [4][8]uint64
		var t [8]uint64
		for i := 0; i < 4; i++ {
			copy(a[i][:], st[base+8*i:base+8*i+8])
		}
		for j := 0; j < 8; j++ {
			t[j] = a[0][j] ^ a[1][j] ^ a[2][j] ^ a[3][j]
		}
		for i := 0; i < 4; i++ {
			var x [8]uint64
			ni := (i + 1) & 3
			for j := 0; j < 8; j++ {
				x[j] = a[i][j] ^ a[ni][j]
			}
			// xtime(x): bit k of the product is x[k-1] plus the 0x1b
			// feedback of x[7] into bits 0, 1, 3 and 4.
			o := st[base+8*i : base+8*i+8]
			o[0] = a[i][0] ^ t[0] ^ x[7]
			o[1] = a[i][1] ^ t[1] ^ x[0] ^ x[7]
			o[2] = a[i][2] ^ t[2] ^ x[1]
			o[3] = a[i][3] ^ t[3] ^ x[2] ^ x[7]
			o[4] = a[i][4] ^ t[4] ^ x[3] ^ x[7]
			o[5] = a[i][5] ^ t[5] ^ x[4]
			o[6] = a[i][6] ^ t[6] ^ x[5]
			o[7] = a[i][7] ^ t[7] ^ x[6]
		}
	}
}

// sboxCircuit runs the Boyar–Peralta 113-gate AES S-box circuit over the
// eight bit-planes of one byte position, q[0] the least-significant-bit
// plane.  The gate list follows the canonical constant-time AES
// formulation (as in BearSSL's aes_ct); TestSboxCircuitExhaustive pins it
// to the generated table on all 256 inputs.
func sboxCircuit(q *[8]uint64) {
	x0, x1, x2, x3, x4, x5, x6, x7 := q[7], q[6], q[5], q[4], q[3], q[2], q[1], q[0]
	// Top linear transformation.
	y14 := x3 ^ x5
	y13 := x0 ^ x6
	y9 := x0 ^ x3
	y8 := x0 ^ x5
	t0 := x1 ^ x2
	y1 := t0 ^ x7
	y4 := y1 ^ x3
	y12 := y13 ^ y14
	y2 := y1 ^ x0
	y5 := y1 ^ x6
	y3 := y5 ^ y8
	t1 := x4 ^ y12
	y15 := t1 ^ x5
	y20 := t1 ^ x1
	y6 := y15 ^ x7
	y10 := y15 ^ t0
	y11 := y20 ^ y9
	y7 := x7 ^ y11
	y17 := y10 ^ y11
	y19 := y10 ^ y8
	y16 := t0 ^ y11
	y21 := y13 ^ y16
	y18 := x0 ^ y16
	// Non-linear section.
	t2 := y12 & y15
	t3 := y3 & y6
	t4 := t3 ^ t2
	t5 := y4 & x7
	t6 := t5 ^ t2
	t7 := y13 & y16
	t8 := y5 & y1
	t9 := t8 ^ t7
	t10 := y2 & y7
	t11 := t10 ^ t7
	t12 := y9 & y11
	t13 := y14 & y17
	t14 := t13 ^ t12
	t15 := y8 & y10
	t16 := t15 ^ t12
	t17 := t4 ^ t14
	t18 := t6 ^ t16
	t19 := t9 ^ t14
	t20 := t11 ^ t16
	t21 := t17 ^ y20
	t22 := t18 ^ y19
	t23 := t19 ^ y21
	t24 := t20 ^ y18
	t25 := t21 ^ t22
	t26 := t21 & t23
	t27 := t24 ^ t26
	t28 := t25 & t27
	t29 := t28 ^ t22
	t30 := t23 ^ t24
	t31 := t22 ^ t26
	t32 := t31 & t30
	t33 := t32 ^ t24
	t34 := t23 ^ t33
	t35 := t27 ^ t33
	t36 := t24 & t35
	t37 := t36 ^ t34
	t38 := t27 ^ t36
	t39 := t29 & t38
	t40 := t25 ^ t39
	t41 := t40 ^ t37
	t42 := t29 ^ t33
	t43 := t29 ^ t40
	t44 := t33 ^ t37
	t45 := t42 ^ t41
	z0 := t44 & y15
	z1 := t37 & y6
	z2 := t33 & x7
	z3 := t43 & y16
	z4 := t40 & y1
	z5 := t29 & y7
	z6 := t42 & y11
	z7 := t45 & y17
	z8 := t41 & y10
	z9 := t44 & y12
	z10 := t37 & y3
	z11 := t33 & y4
	z12 := t43 & y13
	z13 := t40 & y5
	z14 := t29 & y2
	z15 := t42 & y9
	z16 := t45 & y14
	z17 := t41 & y8
	// Bottom linear transformation.
	t46 := z15 ^ z16
	t47 := z10 ^ z11
	t48 := z5 ^ z13
	t49 := z9 ^ z10
	t50 := z2 ^ z12
	t51 := z2 ^ z5
	t52 := z7 ^ z8
	t53 := z0 ^ z3
	t54 := z6 ^ z7
	t55 := z16 ^ z17
	t56 := z12 ^ t48
	t57 := t50 ^ t53
	t58 := z4 ^ t46
	t59 := z3 ^ t54
	t60 := t46 ^ t57
	t61 := z14 ^ t57
	t62 := t52 ^ t58
	t63 := t49 ^ t58
	t64 := z4 ^ t59
	t65 := t61 ^ t62
	t66 := z1 ^ t63
	s0 := t59 ^ t63
	s6 := t56 ^ ^t62
	s7 := t48 ^ ^t60
	t67 := t64 ^ t65
	s3 := t53 ^ t66
	s4 := t51 ^ t66
	s5 := t47 ^ t65
	s1 := t64 ^ ^s3
	s2 := t55 ^ ^t67
	q[7], q[6], q[5], q[4], q[3], q[2], q[1], q[0] = s0, s1, s2, s3, s4, s5, s6, s7
}
