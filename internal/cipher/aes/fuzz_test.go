package aes

import (
	"bytes"
	"testing"
)

// FuzzEncryptDecrypt checks the round-trip property decrypt(encrypt(p)) == p
// for arbitrary keys and blocks, plus the known-answer anchor that pins the
// implementation to FIPS-197 (so a fuzz-found "fix" cannot silently change
// the cipher).  Run with: go test -fuzz=FuzzEncryptDecrypt ./internal/cipher/aes
func FuzzEncryptDecrypt(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), []byte("exactly 16 bytes"))
	f.Add(make([]byte, 24), make([]byte, 16))
	f.Add(make([]byte, 32), bytes.Repeat([]byte{0xFF}, 16))
	f.Fuzz(func(t *testing.T, key, pt []byte) {
		switch len(key) {
		case 16, 24, 32:
		default:
			if _, err := Expand(key); err == nil {
				t.Fatalf("Expand accepted a %d-byte key", len(key))
			}
			return
		}
		if len(pt) < BlockSize {
			return
		}
		pt = pt[:BlockSize]
		ks, err := Expand(key)
		if err != nil {
			t.Fatalf("Expand rejected a %d-byte key: %v", len(key), err)
		}
		sb, isb := SBox(), InvSBox()
		ct := make([]byte, BlockSize)
		back := make([]byte, BlockSize)
		EncryptBlock(ks, &sb, ct, pt)
		DecryptBlock(ks, &isb, back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatalf("round trip: key %x pt %x -> ct %x -> %x", key, pt, ct, back)
		}
	})
}
