package aes

import (
	"bytes"
	"testing"

	"explframe/internal/stats"
)

// FuzzBitslicedVsScalar pins the bitsliced core to the scalar path: for a
// fuzz-chosen key, batch size, faulted table and fault round, every lane of
// EncryptBlocksBitsliced and EncryptBlocksWithFaultBitsliced must equal the
// corresponding scalar encryption byte for byte.
func FuzzBitslicedVsScalar(f *testing.F) {
	f.Add(uint64(0), byte(64), byte(0), byte(1))
	f.Add(uint64(0xdeadbeefcafef00d), byte(17), byte(2), byte(7))
	f.Add(uint64(42), byte(1), byte(3), byte(10))
	f.Fuzz(func(t *testing.T, seed uint64, lanes, faults, round byte) {
		rng := stats.NewRNG(seed)
		key := make([]byte, 16)
		rng.Bytes(key)
		ks, err := Expand(key)
		if err != nil {
			t.Fatal(err)
		}
		sb := SBox()
		for i := 0; i < int(faults%4); i++ {
			sb[rng.Intn(256)] ^= byte(rng.Intn(255) + 1)
		}
		n := int(lanes)%64 + 1
		r := int(round)%ks.Rounds() + 1
		src := make([][]byte, n)
		dst := make([][]byte, n)
		masks := make([][]byte, n)
		for i := range src {
			src[i] = make([]byte, BlockSize)
			rng.Bytes(src[i])
			dst[i] = make([]byte, BlockSize)
			masks[i] = make([]byte, BlockSize)
			rng.Bytes(masks[i])
		}
		EncryptBlocksBitsliced(ks, &sb, dst, src)
		want := make([]byte, BlockSize)
		for i := range src {
			EncryptBlock(ks, &sb, want, src[i])
			if !bytes.Equal(dst[i], want) {
				t.Fatalf("lane %d/%d: bitsliced %x, scalar %x", i, n, dst[i], want)
			}
		}
		EncryptBlocksWithFaultBitsliced(ks, &sb, dst, src, r, masks)
		for i := range src {
			var m [16]byte
			copy(m[:], masks[i])
			EncryptBlockWithFault(ks, &sb, want, src[i], r, &m)
			if !bytes.Equal(dst[i], want) {
				t.Fatalf("fault lane %d/%d round %d: bitsliced %x, scalar %x", i, n, r, dst[i], want)
			}
		}
	})
}
