// Package aes implements AES-128/192/256 from first principles with an
// explicitly faultable SubBytes table.
//
// The ExplFrame victim keeps its S-box in ordinary memory; a Rowhammer bit
// flip in that page turns every subsequent encryption into a persistently
// faulty one (Zhang et al., TCHES 2018 — the paper's reference [12]).  To
// model that, EncryptBlock takes the S-box as an argument: the victim
// re-reads the table from its (simulated) memory for each encryption, so a
// flipped table byte corrupts all later ciphertexts without touching the
// implementation.
//
// The byte-oriented implementation follows FIPS-197 directly; it favours
// auditability over speed, which is the right trade for a fault-analysis
// testbed (the fault maths reference individual S-box lookups).
package aes

import (
	"errors"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// sbox and invSbox are generated in init from the GF(2^8) inverse and the
// affine transform, then spot-checked; generating rather than transcribing
// removes a whole class of table typos.
var (
	sbox    [256]byte
	invSbox [256]byte
)

// gfMul multiplies two elements of GF(2^8) modulo the AES polynomial x^8 +
// x^4 + x^3 + x + 1.
func gfMul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// gfInv returns the multiplicative inverse in GF(2^8), with gfInv(0) = 0.
func gfInv(a byte) byte {
	if a == 0 {
		return 0
	}
	// Brute force is fine at init time and obviously correct.
	for x := 1; x < 256; x++ {
		if gfMul(a, byte(x)) == 1 {
			return byte(x)
		}
	}
	panic("aes: GF(2^8) element without inverse")
}

func init() {
	for i := 0; i < 256; i++ {
		inv := gfInv(byte(i))
		// Affine transform: b ^ rot1(b) ^ rot2(b) ^ rot3(b) ^ rot4(b) ^ 0x63.
		b := inv
		x := inv
		for r := 0; r < 4; r++ {
			x = x<<1 | x>>7
			b ^= x
		}
		b ^= 0x63
		sbox[i] = b
		invSbox[b] = byte(i)
	}
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed || invSbox[0x63] != 0x00 {
		panic("aes: S-box generation failed self-check")
	}
}

// SBox returns a fresh copy of the canonical S-box; callers that want a
// faultable table place this copy in simulated memory and corrupt it there.
func SBox() [256]byte { return sbox }

// InvSBox returns a fresh copy of the inverse S-box.
func InvSBox() [256]byte { return invSbox }

// Schedule holds expanded round keys, one 16-byte round key per round.
type Schedule struct {
	rounds int // 10, 12 or 14
	rk     [][16]byte
}

// Rounds returns the number of rounds (10 for AES-128).
func (s *Schedule) Rounds() int { return s.rounds }

// RoundKey returns a copy of round key r (0 = whitening key).
func (s *Schedule) RoundKey(r int) [16]byte { return s.rk[r] }

// ErrKeySize reports an unsupported key length.
var ErrKeySize = errors.New("aes: key must be 16, 24 or 32 bytes")

// rcon are the round constants for key expansion.
var rcon = [...]byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8}

// Expand performs the FIPS-197 key expansion using the canonical S-box.
// Fault analyses assume the schedule was computed before the fault landed
// (round keys live in registers/cache once derived), so expansion never uses
// a faultable table.
func Expand(key []byte) (*Schedule, error) {
	nk := len(key) / 4
	switch len(key) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("%w: got %d", ErrKeySize, len(key))
	}
	rounds := nk + 6
	nw := 4 * (rounds + 1)
	w := make([][4]byte, nw)
	for i := 0; i < nk; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	for i := nk; i < nw; i++ {
		t := w[i-1]
		if i%nk == 0 {
			// RotWord + SubWord + Rcon.
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon[i/nk-1]
		} else if nk > 6 && i%nk == 4 {
			t = [4]byte{sbox[t[0]], sbox[t[1]], sbox[t[2]], sbox[t[3]]}
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-nk][j] ^ t[j]
		}
	}
	s := &Schedule{rounds: rounds, rk: make([][16]byte, rounds+1)}
	for r := 0; r <= rounds; r++ {
		for c := 0; c < 4; c++ {
			copy(s.rk[r][4*c:4*c+4], w[4*r+c][:])
		}
	}
	return s, nil
}

// shift is the ShiftRows source table for a column-major state (index =
// 4*col + row, as in FIPS-197): output byte i comes from input byte
// shift[i], i.e. out[4c+r] = in[4((c+r)%4)+r].
var shift = [16]int{0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11}

// invShift is the InvShiftRows source table: out[4c+r] = in[4((c-r)%4)+r].
var invShift = [16]int{0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3}

// ShiftRowsIndex returns where ciphertext byte i takes its input from under
// the final-round ShiftRows; fault analyses need this mapping to associate
// ciphertext byte positions with S-box lookups.
func ShiftRowsIndex(i int) int { return shift[i] }

// xtime multiplies by x in GF(2^8).
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// mixColumn transforms one 4-byte column in place.
func mixColumn(c []byte) {
	a0, a1, a2, a3 := c[0], c[1], c[2], c[3]
	c[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
	c[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
	c[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
	c[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
}

// invMixColumn inverts mixColumn.
func invMixColumn(c []byte) {
	a0, a1, a2, a3 := c[0], c[1], c[2], c[3]
	c[0] = gfMul(a0, 0x0e) ^ gfMul(a1, 0x0b) ^ gfMul(a2, 0x0d) ^ gfMul(a3, 0x09)
	c[1] = gfMul(a0, 0x09) ^ gfMul(a1, 0x0e) ^ gfMul(a2, 0x0b) ^ gfMul(a3, 0x0d)
	c[2] = gfMul(a0, 0x0d) ^ gfMul(a1, 0x09) ^ gfMul(a2, 0x0e) ^ gfMul(a3, 0x0b)
	c[3] = gfMul(a0, 0x0b) ^ gfMul(a1, 0x0d) ^ gfMul(a2, 0x09) ^ gfMul(a3, 0x0e)
}

// EncryptBlock encrypts one 16-byte block with the given schedule and S-box
// table.  dst and src may overlap.  It panics if dst or src are short, like
// crypto/cipher.Block implementations.
func EncryptBlock(ks *Schedule, sb *[256]byte, dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	var st [16]byte
	copy(st[:], src[:16])
	addRoundKey(&st, &ks.rk[0])
	for r := 1; r < ks.rounds; r++ {
		subShift(&st, sb)
		for c := 0; c < 4; c++ {
			mixColumn(st[4*c : 4*c+4])
		}
		addRoundKey(&st, &ks.rk[r])
	}
	subShift(&st, sb)
	addRoundKey(&st, &ks.rk[ks.rounds])
	copy(dst[:16], st[:])
}

// subShift applies SubBytes then ShiftRows in one pass.
func subShift(st *[16]byte, sb *[256]byte) {
	var out [16]byte
	for i := 0; i < 16; i++ {
		out[i] = sb[st[shift[i]]]
	}
	*st = out
}

func addRoundKey(st *[16]byte, rk *[16]byte) {
	for i := range st {
		st[i] ^= rk[i]
	}
}

// DecryptBlock decrypts one block using the inverse S-box table.
func DecryptBlock(ks *Schedule, isb *[256]byte, dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	var st [16]byte
	copy(st[:], src[:16])
	addRoundKey(&st, &ks.rk[ks.rounds])
	for r := ks.rounds - 1; r >= 1; r-- {
		invShiftSub(&st, isb)
		addRoundKey(&st, &ks.rk[r])
		for c := 0; c < 4; c++ {
			invMixColumn(st[4*c : 4*c+4])
		}
	}
	invShiftSub(&st, isb)
	addRoundKey(&st, &ks.rk[0])
	copy(dst[:16], st[:])
}

// invShiftSub applies InvShiftRows then InvSubBytes.
func invShiftSub(st *[16]byte, isb *[256]byte) {
	var out [16]byte
	for i := 0; i < 16; i++ {
		out[i] = isb[st[invShift[i]]]
	}
	*st = out
}

// InvShiftRowsIndex returns the ciphertext byte position that the state
// byte at index s (entering the final-round SubBytes) ends up in.  It is
// the inverse of ShiftRowsIndex and is used by differential fault analysis
// to group ciphertext bytes by MixColumns column.
func InvShiftRowsIndex(s int) int { return invShift[s] }

// EncryptBlockWithFault encrypts like EncryptBlock but XORs the 16-byte
// mask into the state at the entry of the given round (1-based; round r
// means after round r-1's AddRoundKey, before round r's SubBytes).  This is
// the transient fault model classical DFA assumes — any single-byte mask at
// round 9 is the Piret–Quisquater setting; contrast with the persistent
// table fault the ExplFrame attack produces.
func EncryptBlockWithFault(ks *Schedule, sb *[256]byte, dst, src []byte, round int, mask *[16]byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	if round < 1 || round > ks.rounds {
		panic("aes: fault round out of range")
	}
	var st [16]byte
	copy(st[:], src[:16])
	addRoundKey(&st, &ks.rk[0])
	for r := 1; r < ks.rounds; r++ {
		if r == round {
			addRoundKey(&st, mask)
		}
		subShift(&st, sb)
		for c := 0; c < 4; c++ {
			mixColumn(st[4*c : 4*c+4])
		}
		addRoundKey(&st, &ks.rk[r])
	}
	if round == ks.rounds {
		addRoundKey(&st, mask)
	}
	subShift(&st, sb)
	addRoundKey(&st, &ks.rk[ks.rounds])
	copy(dst[:16], st[:])
}

// Cipher bundles a schedule with table pointers, satisfying the shape of
// crypto/cipher.Block for convenience in examples.
type Cipher struct {
	ks  *Schedule
	sb  [256]byte
	isb [256]byte
}

// NewCipher builds a Cipher with the canonical tables.
func NewCipher(key []byte) (*Cipher, error) {
	ks, err := Expand(key)
	if err != nil {
		return nil, err
	}
	return &Cipher{ks: ks, sb: sbox, isb: invSbox}, nil
}

// BlockSize returns the AES block size.
func (c *Cipher) BlockSize() int { return BlockSize }

// Encrypt encrypts one block.
func (c *Cipher) Encrypt(dst, src []byte) { EncryptBlock(c.ks, &c.sb, dst, src) }

// Decrypt decrypts one block.
func (c *Cipher) Decrypt(dst, src []byte) { DecryptBlock(c.ks, &c.isb, dst, src) }

// RecoverMasterFromLastRound inverts the AES-128 key schedule: given the
// round-10 key it returns the master key.  Fault attacks (PFA, DFA) recover
// the last round key; this completes them.
func RecoverMasterFromLastRound(k10 [16]byte) [16]byte {
	// Words 40..43 of the expansion, column major.
	var w [44][4]byte
	for c := 0; c < 4; c++ {
		copy(w[40+c][:], k10[4*c:4*c+4])
	}
	for i := 43; i >= 4; i-- {
		t := w[i-1]
		if i%4 == 0 {
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon[i/4-1]
		}
		for j := 0; j < 4; j++ {
			w[i-4][j] = w[i][j] ^ t[j]
		}
	}
	var key [16]byte
	for c := 0; c < 4; c++ {
		copy(key[4*c:4*c+4], w[c][:])
	}
	return key
}
