package aes

import (
	"bytes"
	"testing"

	"explframe/internal/stats"
)

// TestSboxCircuitExhaustive pins the Boyar–Peralta gate list to the
// generated table on all 256 inputs, one input per plane pattern.
func TestSboxCircuitExhaustive(t *testing.T) {
	for base := 0; base < 256; base += 64 {
		var q [8]uint64
		for lane := 0; lane < 64; lane++ {
			x := byte(base + lane)
			for j := 0; j < 8; j++ {
				q[j] |= uint64(x>>uint(j)&1) << uint(lane)
			}
		}
		sboxCircuit(&q)
		for lane := 0; lane < 64; lane++ {
			x := byte(base + lane)
			var got byte
			for j := 0; j < 8; j++ {
				got |= byte(q[j]>>uint(lane)&1) << uint(j)
			}
			if got != sbox[x] {
				t.Fatalf("circuit S[%#02x] = %#02x, want %#02x", x, got, sbox[x])
			}
		}
	}
}

// corruptTable returns a copy of the canonical S-box with faults random
// single-bit (or wider) corruptions at the given number of entries.
func corruptTable(rng *stats.RNG, faults int) [256]byte {
	sb := SBox()
	for k := 0; k < faults; k++ {
		sb[rng.Intn(256)] ^= byte(1 + rng.Intn(255))
	}
	return sb
}

func makeBatch(rng *stats.RNG, n int) (dst, src [][]byte) {
	dst = make([][]byte, n)
	src = make([][]byte, n)
	for i := 0; i < n; i++ {
		dst[i] = make([]byte, BlockSize)
		src[i] = make([]byte, BlockSize)
		rng.Bytes(src[i])
	}
	return dst, src
}

func TestEncryptBlocksBitslicedMatchesScalar(t *testing.T) {
	rng := stats.NewRNG(0xae5b5)
	for trial := 0; trial < 30; trial++ {
		key := make([]byte, 16)
		rng.Bytes(key)
		ks, err := Expand(key)
		if err != nil {
			t.Fatal(err)
		}
		sb := corruptTable(rng, trial%4) // 0, 1, 2, 3 faulted entries
		for _, n := range []int{1, 5, 64} {
			dst, src := makeBatch(rng, n)
			EncryptBlocksBitsliced(ks, &sb, dst, src)
			want := make([]byte, BlockSize)
			for i := 0; i < n; i++ {
				EncryptBlock(ks, &sb, want, src[i])
				if !bytes.Equal(dst[i], want) {
					t.Fatalf("trial %d n=%d lane %d: bitsliced %x != scalar %x", trial, n, i, dst[i], want)
				}
			}
		}
	}
}

func TestEncryptBlocksWithFaultBitslicedMatchesScalar(t *testing.T) {
	rng := stats.NewRNG(0xfa17a)
	key := make([]byte, 16)
	rng.Bytes(key)
	ks, err := Expand(key)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= ks.Rounds(); round++ {
		sb := corruptTable(rng, round%3)
		n := 1 + rng.Intn(64)
		dst, src := makeBatch(rng, n)
		masks := make([][]byte, n)
		for i := range masks {
			masks[i] = make([]byte, BlockSize)
			rng.Bytes(masks[i])
		}
		EncryptBlocksWithFaultBitsliced(ks, &sb, dst, src, round, masks)
		want := make([]byte, BlockSize)
		for i := 0; i < n; i++ {
			var m [16]byte
			copy(m[:], masks[i])
			EncryptBlockWithFault(ks, &sb, want, src[i], round, &m)
			if !bytes.Equal(dst[i], want) {
				t.Fatalf("round %d lane %d: bitsliced %x != scalar %x", round, i, dst[i], want)
			}
		}
	}
}
