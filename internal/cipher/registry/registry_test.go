package registry

import (
	"bytes"
	"testing"

	"explframe/internal/stats"
)

func TestNamesAndAliases(t *testing.T) {
	want := []string{"aes-128", "lilliput-80", "present-80"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range []string{"aes", "AES-128", "present", "Present-80", "lilliput", "LILLIPUT-80"} {
		if _, ok := Get(name); !ok {
			t.Fatalf("Get(%q) missed", name)
		}
	}
	if _, ok := Get("des"); ok {
		t.Fatal("Get accepted an unregistered cipher")
	}
	if MustGet("aes").Name() != "aes-128" {
		t.Fatal("alias did not resolve to the canonical cipher")
	}
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustGet("rot13")
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate registration")
		}
	}()
	Register(aes128{})
}

// Every registered cipher must satisfy the structural contract the fault
// machinery assumes: coherent metadata, a bijective S-box over its
// entry-bit alphabet, working key schedules, and a correct encrypt/decrypt
// pair through the faultable-table path.
func TestCipherContract(t *testing.T) {
	for _, name := range Names() {
		c := MustGet(name)
		t.Run(name, func(t *testing.T) {
			if c.BlockSize() <= 0 || c.KeyBytes() <= 0 || c.Rounds() <= 0 {
				t.Fatalf("degenerate metadata: %+v", c)
			}
			sb := c.SBox()
			if len(sb) != c.TableLen() {
				t.Fatalf("SBox len %d != TableLen %d", len(sb), c.TableLen())
			}
			if Cells(c)*c.EntryBits() != c.BlockSize()*8 {
				t.Fatalf("cells %d x %d bits do not tile a %d-byte block", Cells(c), c.EntryBits(), c.BlockSize())
			}
			mask := byte(1<<uint(c.EntryBits()) - 1)
			seen := map[byte]bool{}
			for _, v := range sb {
				if v&mask != v {
					t.Fatalf("S-box entry %#x exceeds %d bits", v, c.EntryBits())
				}
				if seen[v] {
					t.Fatalf("S-box value %#x repeated", v)
				}
				seen[v] = true
			}

			if _, err := c.New(make([]byte, c.KeyBytes()+1)); err == nil {
				t.Fatal("oversized key accepted")
			}
			rng := stats.NewRNG(99)
			key := make([]byte, c.KeyBytes())
			rng.Bytes(key)
			inst, err := c.New(key)
			if err != nil {
				t.Fatal(err)
			}
			pt := make([]byte, c.BlockSize())
			rng.Bytes(pt)
			ct := make([]byte, c.BlockSize())
			inst.Encrypt(sb, ct, pt)
			if bytes.Equal(ct, pt) {
				t.Fatal("encryption is the identity (implausible)")
			}
			back := make([]byte, c.BlockSize())
			inst.Decrypt(back, ct)
			if !bytes.Equal(back, pt) {
				t.Fatalf("decrypt(encrypt(pt)) = %x, want %x", back, pt)
			}
		})
	}
}

// AssembleLastRoundKey must invert the cell extraction: pushing arbitrary
// cells through Assemble and re-extracting them is the identity.
func TestLastRoundCellAssembleInverse(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, name := range Names() {
		c := MustGet(name)
		mask := byte(1<<uint(c.EntryBits()) - 1)
		for trial := 0; trial < 50; trial++ {
			cells := make([]byte, Cells(c))
			for i := range cells {
				cells[i] = byte(rng.Intn(256)) & mask
			}
			key := c.AssembleLastRoundKey(cells)
			if len(key) != c.BlockSize() {
				t.Fatalf("%s: last-round key %d bytes, want %d", name, len(key), c.BlockSize())
			}
			round := make([]byte, Cells(c))
			c.LastRoundCells(round, key)
			if !bytes.Equal(round, cells) {
				t.Fatalf("%s: cells %x -> key %x -> cells %x", name, cells, key, round)
			}
		}
	}
}

// The full PFA contract, exercised through nothing but the interface: under
// a single-entry table fault, the value missing from every LastRoundCells
// position is yStar ^ k_i; assembling those key cells and completing with
// RecoverMaster must return the master key.  This is the property that lets
// internal/fault/pfa attack any registered cipher without cipher-specific
// code.
func TestPFAHookContract(t *testing.T) {
	for _, name := range Names() {
		c := MustGet(name)
		t.Run(name, func(t *testing.T) {
			rng := stats.NewRNG(11)
			key := make([]byte, c.KeyBytes())
			rng.Bytes(key)
			inst, err := c.New(key)
			if err != nil {
				t.Fatal(err)
			}

			clean := c.SBox()
			cleanPT := make([]byte, c.BlockSize())
			rng.Bytes(cleanPT)
			cleanCT := make([]byte, c.BlockSize())
			inst.Encrypt(clean, cleanCT, cleanPT)

			faulty := c.SBox()
			v := rng.Intn(c.TableLen())
			yStar := faulty[v]
			faulty[v] ^= byte(1 << uint(rng.Intn(c.EntryBits())))

			cells := Cells(c)
			vals := 1 << uint(c.EntryBits())
			seen := make([][]bool, cells)
			for i := range seen {
				seen[i] = make([]bool, vals)
			}
			pt := make([]byte, c.BlockSize())
			ct := make([]byte, c.BlockSize())
			cellBuf := make([]byte, cells)
			for n := 0; n < 40*c.TableLen(); n++ {
				rng.Bytes(pt)
				inst.Encrypt(faulty, ct, pt)
				c.LastRoundCells(cellBuf, ct)
				for i, cell := range cellBuf {
					seen[i][cell] = true
				}
			}

			keyCells := make([]byte, cells)
			for i := range seen {
				missing := -1
				for val, s := range seen[i] {
					if !s {
						if missing >= 0 {
							t.Fatalf("cell %d still has %d+ missing values", i, 2)
						}
						missing = val
					}
				}
				if missing < 0 {
					t.Fatalf("cell %d has no missing value under a fault", i)
				}
				keyCells[i] = byte(missing) ^ yStar
			}
			master, ok := c.RecoverMaster(c.AssembleLastRoundKey(keyCells), cleanPT, cleanCT)
			if !ok {
				t.Fatal("RecoverMaster failed")
			}
			if !bytes.Equal(master, key) {
				t.Fatalf("recovered %x want %x", master, key)
			}
		})
	}
}
