package registry_test

import (
	"fmt"

	"explframe/internal/cipher/registry"
)

// ExampleNames tours the victim-cipher registry the way cmd/explframe and
// experiment E15 consume it: every registered cipher exposes the S-box
// geometry the persistent-fault pipeline needs, so new victims plug in
// without touching the analysis code (see examples/present-key-recovery
// and examples/lilliput-key-recovery for full attacks).
func ExampleNames() {
	for _, name := range registry.Names() {
		c := registry.MustGet(name)
		fmt.Printf("%s: %d-byte block, %d-byte key, %dx%d-bit table, %d PFA cells\n",
			name, c.BlockSize(), c.KeyBytes(), c.TableLen(), c.EntryBits(), registry.Cells(c))
	}
	// Output:
	// aes-128: 16-byte block, 16-byte key, 256x8-bit table, 16 PFA cells
	// lilliput-80: 8-byte block, 10-byte key, 16x4-bit table, 16 PFA cells
	// present-80: 8-byte block, 10-byte key, 16x4-bit table, 16 PFA cells
}
