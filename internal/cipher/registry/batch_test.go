package registry

import (
	"bytes"
	"testing"

	"explframe/internal/stats"
)

// newKeyed returns a keyed instance of the cipher with a random key.
func newKeyed(t *testing.T, c Cipher, rng *stats.RNG) Instance {
	t.Helper()
	key := make([]byte, c.KeyBytes())
	rng.Bytes(key)
	inst, err := c.New(key)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// faultedTable corrupts the given number of random entries of a fresh
// canonical table.
func faultedTable(c Cipher, rng *stats.RNG, faults int) []byte {
	table := c.SBox()
	for k := 0; k < faults; k++ {
		table[rng.Intn(c.TableLen())] ^= byte(1 + rng.Intn(255))
	}
	return table
}

func randBatch(c Cipher, rng *stats.RNG, n int) (dst, src [][]byte) {
	dst = make([][]byte, n)
	src = make([][]byte, n)
	for i := 0; i < n; i++ {
		dst[i] = make([]byte, c.BlockSize())
		src[i] = make([]byte, c.BlockSize())
		rng.Bytes(src[i])
	}
	return dst, src
}

// TestEncryptBatchMatchesScalar is the batch API's core property over
// every registered cipher: EncryptBatch equals a loop of Encrypt lane for
// lane — at a batch of one, at non-multiple-of-lane remainders, across
// multiple full lanes, and with 0, 1 and many faulted table entries.
func TestEncryptBatchMatchesScalar(t *testing.T) {
	rng := stats.NewRNG(0xba7c4)
	sizes := []int{1, 2, BatchLanes - 1, BatchLanes, BatchLanes + 1, 2*BatchLanes + 17}
	for _, name := range Names() {
		c := MustGet(name)
		inst := newKeyed(t, c, rng)
		for _, faults := range []int{0, 1, 5} {
			table := faultedTable(c, rng, faults)
			for _, n := range sizes {
				dst, src := randBatch(c, rng, n)
				inst.EncryptBatch(table, dst, src)
				want := make([]byte, c.BlockSize())
				for i := 0; i < n; i++ {
					inst.Encrypt(table, want, src[i])
					if !bytes.Equal(dst[i], want) {
						t.Fatalf("%s faults=%d n=%d lane %d: batch %x != scalar %x",
							name, faults, n, i, dst[i], want)
					}
				}
			}
		}
	}
}

// TestEncryptWithFaultBatchMatchesScalar checks the transient-fault batch
// path against the scalar EncryptWithFault at every round, with per-lane
// masks.
func TestEncryptWithFaultBatchMatchesScalar(t *testing.T) {
	rng := stats.NewRNG(0xfab47)
	for _, name := range Names() {
		c := MustGet(name)
		inst := newKeyed(t, c, rng)
		table := faultedTable(c, rng, 1)
		for _, round := range []int{1, c.Rounds() / 2, c.Rounds()} {
			n := BatchLanes + 9 // one bitsliced chunk plus a scalar remainder
			dst, src := randBatch(c, rng, n)
			masks := make([][]byte, n)
			for i := range masks {
				masks[i] = make([]byte, c.BlockSize())
				rng.Bytes(masks[i])
			}
			inst.EncryptWithFaultBatch(table, dst, src, round, masks)
			want := make([]byte, c.BlockSize())
			for i := 0; i < n; i++ {
				inst.EncryptWithFault(table, want, src[i], round, masks[i])
				if !bytes.Equal(dst[i], want) {
					t.Fatalf("%s round %d lane %d: batch %x != scalar %x", name, round, i, dst[i], want)
				}
			}
		}
	}
}

// TestEncryptBatchLanePermutation: shuffling the input lanes shuffles the
// output lanes identically — no cross-lane leakage in the bitsliced cores.
func TestEncryptBatchLanePermutation(t *testing.T) {
	rng := stats.NewRNG(0x9e2a1)
	for _, name := range Names() {
		c := MustGet(name)
		inst := newKeyed(t, c, rng)
		table := faultedTable(c, rng, 2)
		n := BatchLanes
		dst, src := randBatch(c, rng, n)
		inst.EncryptBatch(table, dst, src)

		perm := rng.Perm(n)
		dst2 := make([][]byte, n)
		src2 := make([][]byte, n)
		for i, p := range perm {
			src2[i] = src[p]
			dst2[i] = make([]byte, c.BlockSize())
		}
		inst.EncryptBatch(table, dst2, src2)
		for i, p := range perm {
			if !bytes.Equal(dst2[i], dst[p]) {
				t.Fatalf("%s: permuted lane %d (orig %d) diverged", name, i, p)
			}
		}
	}
}

// TestScalarOnlySwitch: forcing the scalar path must be output-invariant,
// which is the property the experiment-level golden-invariance test leans
// on.
func TestScalarOnlySwitch(t *testing.T) {
	rng := stats.NewRNG(0x5ca1a)
	for _, name := range Names() {
		c := MustGet(name)
		inst := newKeyed(t, c, rng)
		table := faultedTable(c, rng, 1)
		n := BatchLanes + 3
		dst, src := randBatch(c, rng, n)
		inst.EncryptBatch(table, dst, src)

		prev := SetScalarOnly(true)
		if prev {
			t.Fatal("bitsliced cores were already disabled entering the test")
		}
		if !ScalarOnly() {
			t.Fatal("SetScalarOnly(true) did not stick")
		}
		forced := make([][]byte, n)
		for i := range forced {
			forced[i] = make([]byte, c.BlockSize())
		}
		inst.EncryptBatch(table, forced, src)
		SetScalarOnly(false)

		for i := range src {
			if !bytes.Equal(forced[i], dst[i]) {
				t.Fatalf("%s lane %d: scalar-forced batch diverged", name, i)
			}
		}
	}
}

// TestScalarBatchHelpers: the fallback helpers are themselves equivalent
// to the per-block methods, so an external cipher can satisfy the grown
// Instance interface by delegation.
func TestScalarBatchHelpers(t *testing.T) {
	rng := stats.NewRNG(0x0c01d)
	c := MustGet("present-80")
	inst := newKeyed(t, c, rng)
	table := faultedTable(c, rng, 1)
	n := 11
	dst, src := randBatch(c, rng, n)
	ScalarEncryptBatch(inst, table, dst, src)
	want := make([]byte, c.BlockSize())
	for i := 0; i < n; i++ {
		inst.Encrypt(table, want, src[i])
		if !bytes.Equal(dst[i], want) {
			t.Fatalf("ScalarEncryptBatch lane %d diverged", i)
		}
	}
	masks := make([][]byte, n)
	for i := range masks {
		masks[i] = make([]byte, c.BlockSize())
		rng.Bytes(masks[i])
	}
	ScalarEncryptWithFaultBatch(inst, table, dst, src, 3, masks)
	for i := 0; i < n; i++ {
		inst.EncryptWithFault(table, want, src[i], 3, masks[i])
		if !bytes.Equal(dst[i], want) {
			t.Fatalf("ScalarEncryptWithFaultBatch lane %d diverged", i)
		}
	}
}

// TestEncryptBatchLengthMismatchPanics pins the argument contract.
func TestEncryptBatchLengthMismatchPanics(t *testing.T) {
	rng := stats.NewRNG(0xdead1)
	c := MustGet("aes-128")
	inst := newKeyed(t, c, rng)
	table := c.SBox()
	_, src := randBatch(c, rng, 4)
	dst, _ := randBatch(c, rng, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("EncryptBatch accepted mismatched dst/src lengths")
			}
		}()
		inst.EncryptBatch(table, dst, src)
	}()
}
