package registry

import (
	"bytes"

	"explframe/internal/cipher/aes"
	"explframe/internal/cipher/bitslice"
	"explframe/internal/cipher/lilliput"
	"explframe/internal/cipher/present"
)

// The built-in victims.  Each adapter translates one cipher package's
// native API onto the Cipher interface; registering a new victim means
// writing its package and one more Register call here.
func init() {
	Register(aes128{}, "aes")
	Register(present80{}, "present")
	Register(lilliput80{}, "lilliput")
}

// getU64/putU64 convert the 64-bit ciphers' big-endian block form.
func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putU64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// --- AES-128 -------------------------------------------------------------

type aes128 struct{}

func (aes128) Name() string     { return "aes-128" }
func (aes128) BlockSize() int   { return aes.BlockSize }
func (aes128) KeyBytes() int    { return 16 }
func (aes128) Rounds() int      { return 10 }
func (aes128) TableLen() int    { return 256 }
func (aes128) EntryBits() int   { return 8 }
func (aes128) RecoverCost() int { return 1 }

func (aes128) SBox() []byte {
	sb := aes.SBox()
	return sb[:]
}

func (aes128) New(key []byte) (Instance, error) {
	ks, err := aes.Expand(key)
	if err != nil {
		return nil, err
	}
	return &aesInstance{ks: ks}, nil
}

// LastRoundCells: AES's final-round ShiftRows only permutes which S-box
// lookup feeds which byte; ciphertext byte i already equals
// S[state[shift(i)]] ^ k10[i], so the cells are the ciphertext bytes.
func (aes128) LastRoundCells(cells, ct []byte) {
	copy(cells, ct[:aes.BlockSize])
}

func (aes128) AssembleLastRoundKey(cells []byte) []byte {
	return append([]byte(nil), cells[:aes.BlockSize]...)
}

func (aes128) RecoverMaster(lastRoundKey, plaintext, ciphertext []byte) ([]byte, bool) {
	var k10 [16]byte
	copy(k10[:], lastRoundKey)
	m := aes.RecoverMasterFromLastRound(k10)
	if plaintext != nil {
		ks, err := aes.Expand(m[:])
		if err != nil {
			return nil, false
		}
		sb := aes.SBox()
		var buf [16]byte
		aes.EncryptBlock(ks, &sb, buf[:], plaintext)
		if !bytes.Equal(buf[:], ciphertext) {
			return nil, false
		}
	}
	return m[:], true
}

type aesInstance struct{ ks *aes.Schedule }

func (in *aesInstance) Encrypt(table, dst, src []byte) {
	var sb [256]byte
	copy(sb[:], table)
	aes.EncryptBlock(in.ks, &sb, dst, src)
}

func (in *aesInstance) Decrypt(dst, src []byte) {
	isb := aes.InvSBox()
	aes.DecryptBlock(in.ks, &isb, dst, src)
}

func (in *aesInstance) EncryptWithFault(table, dst, src []byte, round int, mask []byte) {
	var sb [256]byte
	copy(sb[:], table)
	var m [16]byte
	copy(m[:], mask)
	aes.EncryptBlockWithFault(in.ks, &sb, dst, src, round, &m)
}

func (in *aesInstance) EncryptBatch(table []byte, dst, src [][]byte) {
	if len(dst) != len(src) {
		panic("registry: batch dst/src length mismatch")
	}
	var sb [256]byte
	copy(sb[:], table)
	n := 0
	if !ScalarOnly() {
		for ; n+bitslice.Lanes <= len(src); n += bitslice.Lanes {
			aes.EncryptBlocksBitsliced(in.ks, &sb, dst[n:n+bitslice.Lanes], src[n:n+bitslice.Lanes])
		}
	}
	for ; n < len(src); n++ {
		aes.EncryptBlock(in.ks, &sb, dst[n], src[n])
	}
}

func (in *aesInstance) EncryptWithFaultBatch(table []byte, dst, src [][]byte, round int, masks [][]byte) {
	if len(dst) != len(src) || len(masks) != len(src) {
		panic("registry: batch dst/src/masks length mismatch")
	}
	var sb [256]byte
	copy(sb[:], table)
	n := 0
	if !ScalarOnly() {
		for ; n+bitslice.Lanes <= len(src); n += bitslice.Lanes {
			aes.EncryptBlocksWithFaultBitsliced(in.ks, &sb,
				dst[n:n+bitslice.Lanes], src[n:n+bitslice.Lanes], round, masks[n:n+bitslice.Lanes])
		}
	}
	var m [16]byte
	for ; n < len(src); n++ {
		copy(m[:], masks[n])
		aes.EncryptBlockWithFault(in.ks, &sb, dst[n], src[n], round, &m)
	}
}

// --- PRESENT-80 ----------------------------------------------------------

type present80 struct{}

func (present80) Name() string     { return "present-80" }
func (present80) BlockSize() int   { return present.BlockSize }
func (present80) KeyBytes() int    { return 10 }
func (present80) Rounds() int      { return present.Rounds }
func (present80) TableLen() int    { return 16 }
func (present80) EntryBits() int   { return 4 }
func (present80) RecoverCost() int { return 1 << 16 }

func (present80) SBox() []byte {
	sb := present.SBox()
	return sb[:]
}

func (present80) New(key []byte) (Instance, error) {
	ks, err := present.Expand(key)
	if err != nil {
		return nil, err
	}
	return &presentInstance{ks: ks}, nil
}

// LastRoundCells: the final round computes ct = pLayer(S(x)) ^ K32, so
// nibble i of invPLayer(ct) equals S(x_i) ^ invPLayer(K32) nibble i.
func (present80) LastRoundCells(cells, ct []byte) {
	u := present.InvPLayer(getU64(ct))
	for i := 0; i < 16; i++ {
		cells[i] = byte((u >> uint(4*i)) & 0xF)
	}
}

func (present80) AssembleLastRoundKey(cells []byte) []byte {
	var kPrime uint64
	for i, c := range cells[:16] {
		kPrime |= uint64(c&0xF) << uint(4*i)
	}
	out := make([]byte, 8)
	putU64(out, present.PLayer(kPrime))
	return out
}

func (present80) RecoverMaster(lastRoundKey, plaintext, ciphertext []byte) ([]byte, bool) {
	if plaintext == nil {
		return nil, false // the 16 hidden register bits need a known pair
	}
	return present.RecoverMasterFromLastRound(getU64(lastRoundKey), getU64(plaintext), getU64(ciphertext))
}

type presentInstance struct{ ks *present.Schedule }

func (in *presentInstance) Encrypt(table, dst, src []byte) {
	var sb [16]byte
	copy(sb[:], table)
	present.EncryptBlock(in.ks, &sb, dst, src)
}

func (in *presentInstance) Decrypt(dst, src []byte) {
	isb := present.InvSBox()
	present.DecryptBlock(in.ks, &isb, dst, src)
}

func (in *presentInstance) EncryptWithFault(table, dst, src []byte, round int, mask []byte) {
	var sb [16]byte
	copy(sb[:], table)
	putU64(dst, present.EncryptWithFault(in.ks, &sb, getU64(src), round, getU64(mask)))
}

func (in *presentInstance) EncryptBatch(table []byte, dst, src [][]byte) {
	if len(dst) != len(src) {
		panic("registry: batch dst/src length mismatch")
	}
	var sb [16]byte
	copy(sb[:], table)
	n := 0
	if !ScalarOnly() {
		for ; n+bitslice.Lanes <= len(src); n += bitslice.Lanes {
			present.EncryptBlocksBitsliced(in.ks, &sb, dst[n:n+bitslice.Lanes], src[n:n+bitslice.Lanes])
		}
	}
	for ; n < len(src); n++ {
		present.EncryptBlock(in.ks, &sb, dst[n], src[n])
	}
}

func (in *presentInstance) EncryptWithFaultBatch(table []byte, dst, src [][]byte, round int, masks [][]byte) {
	if len(dst) != len(src) || len(masks) != len(src) {
		panic("registry: batch dst/src/masks length mismatch")
	}
	var sb [16]byte
	copy(sb[:], table)
	n := 0
	if !ScalarOnly() {
		for ; n+bitslice.Lanes <= len(src); n += bitslice.Lanes {
			present.EncryptBlocksWithFaultBitsliced(in.ks, &sb,
				dst[n:n+bitslice.Lanes], src[n:n+bitslice.Lanes], round, masks[n:n+bitslice.Lanes])
		}
	}
	for ; n < len(src); n++ {
		putU64(dst[n], present.EncryptWithFault(in.ks, &sb, getU64(src[n]), round, getU64(masks[n])))
	}
}

// --- LILLIPUT-style 80-bit SPN -------------------------------------------

type lilliput80 struct{}

func (lilliput80) Name() string     { return "lilliput-80" }
func (lilliput80) BlockSize() int   { return lilliput.BlockSize }
func (lilliput80) KeyBytes() int    { return lilliput.KeyBytes }
func (lilliput80) Rounds() int      { return lilliput.Rounds }
func (lilliput80) TableLen() int    { return 16 }
func (lilliput80) EntryBits() int   { return 4 }
func (lilliput80) RecoverCost() int { return 1 << 16 }

func (lilliput80) SBox() []byte {
	sb := lilliput.SBox()
	return sb[:]
}

func (lilliput80) New(key []byte) (Instance, error) {
	ks, err := lilliput.Expand(key)
	if err != nil {
		return nil, err
	}
	return &lilliputInstance{ks: ks}, nil
}

func (lilliput80) LastRoundCells(cells, ct []byte) {
	u := lilliput.InvPLayer(getU64(ct))
	for i := 0; i < 16; i++ {
		cells[i] = byte((u >> uint(4*i)) & 0xF)
	}
}

func (lilliput80) AssembleLastRoundKey(cells []byte) []byte {
	var kPrime uint64
	for i, c := range cells[:16] {
		kPrime |= uint64(c&0xF) << uint(4*i)
	}
	out := make([]byte, 8)
	putU64(out, lilliput.PLayer(kPrime))
	return out
}

func (lilliput80) RecoverMaster(lastRoundKey, plaintext, ciphertext []byte) ([]byte, bool) {
	if plaintext == nil {
		return nil, false
	}
	return lilliput.RecoverMasterFromLastRound(getU64(lastRoundKey), getU64(plaintext), getU64(ciphertext))
}

type lilliputInstance struct{ ks *lilliput.Schedule }

func (in *lilliputInstance) Encrypt(table, dst, src []byte) {
	var sb [16]byte
	copy(sb[:], table)
	lilliput.EncryptBlock(in.ks, &sb, dst, src)
}

func (in *lilliputInstance) Decrypt(dst, src []byte) {
	isb := lilliput.InvSBox()
	lilliput.DecryptBlock(in.ks, &isb, dst, src)
}

func (in *lilliputInstance) EncryptWithFault(table, dst, src []byte, round int, mask []byte) {
	var sb [16]byte
	copy(sb[:], table)
	putU64(dst, lilliput.EncryptWithFault(in.ks, &sb, getU64(src), round, getU64(mask)))
}

func (in *lilliputInstance) EncryptBatch(table []byte, dst, src [][]byte) {
	if len(dst) != len(src) {
		panic("registry: batch dst/src length mismatch")
	}
	var sb [16]byte
	copy(sb[:], table)
	n := 0
	if !ScalarOnly() {
		for ; n+bitslice.Lanes <= len(src); n += bitslice.Lanes {
			lilliput.EncryptBlocksBitsliced(in.ks, &sb, dst[n:n+bitslice.Lanes], src[n:n+bitslice.Lanes])
		}
	}
	for ; n < len(src); n++ {
		lilliput.EncryptBlock(in.ks, &sb, dst[n], src[n])
	}
}

func (in *lilliputInstance) EncryptWithFaultBatch(table []byte, dst, src [][]byte, round int, masks [][]byte) {
	if len(dst) != len(src) || len(masks) != len(src) {
		panic("registry: batch dst/src/masks length mismatch")
	}
	var sb [16]byte
	copy(sb[:], table)
	n := 0
	if !ScalarOnly() {
		for ; n+bitslice.Lanes <= len(src); n += bitslice.Lanes {
			lilliput.EncryptBlocksWithFaultBitsliced(in.ks, &sb,
				dst[n:n+bitslice.Lanes], src[n:n+bitslice.Lanes], round, masks[n:n+bitslice.Lanes])
		}
	}
	for ; n < len(src); n++ {
		putU64(dst[n], lilliput.EncryptWithFault(in.ks, &sb, getU64(src[n]), round, getU64(masks[n])))
	}
}
