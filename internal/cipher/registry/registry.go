// Package registry is the pluggable victim-cipher registry: it defines the
// Cipher interface the fault machinery runs over — key schedule, round
// count, encrypt-with-faultable-table, and the S-box metadata persistent
// fault analysis needs — and a name-keyed registration table.
//
// The ExplFrame attack (and its PFA analysis) only assumes an SPN whose
// final round computes ct = L(S(x)) ^ K for a public table S held in
// corruptible memory and an invertible GF(2)-linear layer L.  Everything
// cipher-specific funnels through this interface, so adding a victim
// cipher is one package plus one Register call (see builtin.go), not a
// cross-cutting rewrite of trace/core/pfa/experiments.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Cipher describes one registered victim block cipher.
//
// The S-box metadata (TableLen, EntryBits, SBox) models the table exactly
// as it sits in victim memory: TableLen bytes, one entry per byte, of which
// only the low EntryBits reach the datapath.  A Rowhammer flip in any
// stored bit is a legal fault; flips above EntryBits are harmless, which
// the attack's usable-flip predicate checks generically.
type Cipher interface {
	// Name is the canonical registered name, e.g. "aes-128".
	Name() string
	// BlockSize is the block size in bytes.
	BlockSize() int
	// KeyBytes is the master key length in bytes.
	KeyBytes() int
	// Rounds is the number of cipher rounds.
	Rounds() int

	// TableLen is the number of S-box entries stored in victim memory
	// (one byte each).
	TableLen() int
	// EntryBits is the number of bits of each entry that reach the
	// datapath (8 for AES, 4 for the nibble ciphers).
	EntryBits() int
	// SBox returns a fresh copy of the canonical table.
	SBox() []byte

	// New returns a keyed instance (the key schedule is computed once; fault
	// analyses assume it predates the fault).
	New(key []byte) (Instance, error)

	// LastRoundCells inverts the cipher's final linear layer into cells
	// (which must hold Cells(c) bytes): cell i equals S(x_i) ^ k_i, where
	// k_i is cell i of the derived last-round key.  This is the structure
	// PFA's missing-value analysis needs; cells are EntryBits wide, one per
	// byte.  The destination form keeps the per-ciphertext hot path
	// allocation-free.
	LastRoundCells(cells, ct []byte)
	// AssembleLastRoundKey maps recovered key cells back to the last-round
	// key in its byte form (the inverse of what LastRoundCells does to K).
	AssembleLastRoundKey(cells []byte) []byte
	// RecoverMaster completes an attack from the recovered last-round key.
	// plaintext/ciphertext are one clean known pair used to resolve key
	// schedules that the last round key does not fully determine (and to
	// verify the result when it does); a nil pair skips verification where
	// the schedule inverts uniquely.
	RecoverMaster(lastRoundKey, plaintext, ciphertext []byte) ([]byte, bool)
	// RecoverCost is the approximate number of schedule inversions one
	// RecoverMaster call performs (1 for AES-128's unique inversion, 2^16
	// for the 80-bit ciphers' brute-forced register remainder).  The
	// multi-fault search uses it to budget candidate enumeration.
	RecoverCost() int
}

// Instance is a keyed cipher instance whose encryptions read the S-box from
// a caller-provided table — the victim re-reads its (simulated, corruptible)
// memory on every block, which is what makes a DRAM fault persistent.
type Instance interface {
	// Encrypt enciphers one block using the given table (TableLen bytes,
	// possibly corrupted).  dst and src must be at least BlockSize bytes.
	Encrypt(table, dst, src []byte)
	// Decrypt deciphers one block using the canonical inverse table.
	Decrypt(dst, src []byte)
	// EncryptWithFault enciphers like Encrypt but XORs the BlockSize-byte
	// mask into the cipher state at the entry of the 1-based round — the
	// transient fault differential fault analysis assumes, as opposed to
	// the persistent table fault the Encrypt table argument models.  It
	// panics if round is outside [1, Rounds].
	EncryptWithFault(table, dst, src []byte, round int, mask []byte)
	// EncryptBatch enciphers len(src) independent blocks with the same
	// table, writing ciphertext i to dst[i] (len(dst) must equal
	// len(src); every block must be at least BlockSize bytes).  The
	// contract is strict per-lane equivalence with Encrypt — faulted
	// tables included — so consumers may batch freely; the built-in
	// ciphers route full BatchLanes-wide chunks through a bitsliced core
	// and the remainder through the scalar path, and ScalarEncryptBatch
	// is the all-scalar fallback for ciphers without one.
	EncryptBatch(table []byte, dst, src [][]byte)
	// EncryptWithFaultBatch enciphers like EncryptBatch but XORs
	// masks[i] (BlockSize bytes) into block i's state at the entry of
	// the 1-based round, lane-for-lane equivalent to EncryptWithFault.
	// It panics if round is outside [1, Rounds].
	EncryptWithFaultBatch(table []byte, dst, src [][]byte, round int, masks [][]byte)
}

// BatchLanes is the lane width of the built-in bitsliced cores: batches
// are processed in chunks of this many blocks, with any remainder taking
// the scalar path.  Consumers sizing their batches as multiples of
// BatchLanes get the full speedup; any other size is merely slower, never
// wrong.
const BatchLanes = 64

// scalarOnly, when set, routes every EncryptBatch/EncryptWithFaultBatch
// call of the built-in ciphers through the scalar per-block path.
var scalarOnly atomic.Bool

// SetScalarOnly forces (true) or re-enables (false) the bitsliced batch
// cores globally, returning the previous setting.  The batch API's
// equivalence contract makes the switch unobservable except in speed; it
// exists so the golden-invariance tests can diff experiment tables with
// the cores on and off.
func SetScalarOnly(v bool) bool { return scalarOnly.Swap(v) }

// ScalarOnly reports whether the bitsliced batch cores are disabled.
func ScalarOnly() bool { return scalarOnly.Load() }

// ScalarEncryptBatch implements Instance.EncryptBatch by looping the
// scalar Encrypt — the fallback for Instances without a bitsliced core.
func ScalarEncryptBatch(in Instance, table []byte, dst, src [][]byte) {
	if len(dst) != len(src) {
		panic("registry: batch dst/src length mismatch")
	}
	for i := range src {
		in.Encrypt(table, dst[i], src[i])
	}
}

// ScalarEncryptWithFaultBatch implements Instance.EncryptWithFaultBatch by
// looping the scalar EncryptWithFault.
func ScalarEncryptWithFaultBatch(in Instance, table []byte, dst, src [][]byte, round int, masks [][]byte) {
	if len(dst) != len(src) || len(masks) != len(src) {
		panic("registry: batch dst/src/masks length mismatch")
	}
	for i := range src {
		in.EncryptWithFault(table, dst[i], src[i], round, masks[i])
	}
}

// Cells returns the number of PFA cell positions per block: one per S-box
// lookup in the final round.
func Cells(c Cipher) int { return c.BlockSize() * 8 / c.EntryBits() }

var (
	mu      sync.RWMutex
	ciphers = map[string]Cipher{}
	aliases = map[string]string{}
)

// Register adds a cipher under its canonical Name plus any aliases.  It
// panics on duplicates — registration conflicts are programming errors.
func Register(c Cipher, names ...string) {
	mu.Lock()
	defer mu.Unlock()
	key := strings.ToLower(c.Name())
	if _, dup := ciphers[key]; dup {
		panic(fmt.Sprintf("registry: cipher %q registered twice", c.Name()))
	}
	if _, dup := aliases[key]; dup {
		// Get resolves aliases first, so a canonical name shadowed by an
		// existing alias would be unreachable — reject it loudly.
		panic(fmt.Sprintf("registry: cipher name %q already taken as an alias", c.Name()))
	}
	ciphers[key] = c
	for _, a := range names {
		a = strings.ToLower(a)
		if _, dup := aliases[a]; dup || ciphers[a] != nil {
			panic(fmt.Sprintf("registry: alias %q already taken", a))
		}
		aliases[a] = key
	}
}

// Get looks a cipher up by canonical name or alias, case-insensitively.
func Get(name string) (Cipher, bool) {
	mu.RLock()
	defer mu.RUnlock()
	key := strings.ToLower(name)
	if canon, ok := aliases[key]; ok {
		key = canon
	}
	c, ok := ciphers[key]
	return c, ok
}

// MustGet is Get for registered-by-construction names; it panics on a miss.
func MustGet(name string) Cipher {
	c, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("registry: unknown cipher %q", name))
	}
	return c
}

// Names returns the canonical names of every registered cipher, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(ciphers))
	for n := range ciphers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
