package present

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Known-answer tests from the PRESENT paper (CHES 2007, Table 2).
func TestKnownAnswer80(t *testing.T) {
	cases := []struct {
		key string
		pt  uint64
		ct  uint64
	}{
		{"00000000000000000000", 0x0000000000000000, 0x5579C1387B228445},
		{"FFFFFFFFFFFFFFFFFFFF", 0x0000000000000000, 0xE72C46C0F5945049},
		{"00000000000000000000", 0xFFFFFFFFFFFFFFFF, 0xA112FFC72F68417B},
		{"FFFFFFFFFFFFFFFFFFFF", 0xFFFFFFFFFFFFFFFF, 0x3333DCD3213210D2},
	}
	sb := SBox()
	isb := InvSBox()
	for _, tc := range cases {
		key, err := hex.DecodeString(tc.key)
		if err != nil {
			t.Fatal(err)
		}
		ks, err := Expand(key)
		if err != nil {
			t.Fatal(err)
		}
		if got := Encrypt(ks, &sb, tc.pt); got != tc.ct {
			t.Fatalf("key %s pt %016x: got %016x want %016x", tc.key, tc.pt, got, tc.ct)
		}
		if got := Decrypt(ks, &isb, tc.ct); got != tc.pt {
			t.Fatalf("key %s ct %016x: decrypt got %016x want %016x", tc.key, tc.ct, got, tc.pt)
		}
		// Same vector through the bitsliced core, replicated across a full
		// 64-lane batch and as a batch of one.
		for _, n := range []int{1, 64} {
			src := make([][]byte, n)
			dst := make([][]byte, n)
			for i := range src {
				src[i] = make([]byte, BlockSize)
				putU64(src[i], tc.pt)
				dst[i] = make([]byte, BlockSize)
			}
			EncryptBlocksBitsliced(ks, &sb, dst, src)
			for i := range dst {
				if got := getU64(dst[i]); got != tc.ct {
					t.Fatalf("key %s bitsliced lane %d/%d: got %016x want %016x", tc.key, i, n, got, tc.ct)
				}
			}
		}
	}
}

func TestExpandRejectsBadKeys(t *testing.T) {
	for _, n := range []int{0, 9, 11, 15, 17} {
		if _, err := Expand(make([]byte, n)); err == nil {
			t.Fatalf("key size %d accepted", n)
		}
	}
}

func TestExpand128Works(t *testing.T) {
	ks, err := Expand(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if ks.KeySize() != 128 {
		t.Fatalf("KeySize = %d", ks.KeySize())
	}
	sb, isb := SBox(), InvSBox()
	ct := Encrypt(ks, &sb, 0x0123456789abcdef)
	if Decrypt(ks, &isb, ct) != 0x0123456789abcdef {
		t.Fatal("128-bit round trip failed")
	}
}

func TestPLayerInverse(t *testing.T) {
	f := func(x uint64) bool {
		return InvPLayer(PLayer(x)) == x && PLayer(InvPLayer(x)) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPLayerSpec(t *testing.T) {
	// Bit i must move to 16*i mod 63 (63 fixed).
	for i := 0; i < 64; i++ {
		want := uint(i * 16 % 63)
		if i == 63 {
			want = 63
		}
		got := PLayer(uint64(1) << uint(i))
		if got != uint64(1)<<want {
			t.Fatalf("bit %d moved to %064b", i, got)
		}
	}
}

func TestSBoxBijective(t *testing.T) {
	sb, isb := SBox(), InvSBox()
	seen := map[byte]bool{}
	for i, v := range sb {
		if v > 0xF {
			t.Fatalf("S-box entry %d out of range: %#x", i, v)
		}
		if seen[v] {
			t.Fatalf("S-box value %#x repeated", v)
		}
		seen[v] = true
		if isb[v] != byte(i) {
			t.Fatalf("inverse mismatch at %d", i)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sb, isb := SBox(), InvSBox()
	f := func(key [10]byte, pt uint64) bool {
		ks, err := Expand(key[:])
		if err != nil {
			return false
		}
		return Decrypt(ks, &isb, Encrypt(ks, &sb, pt)) == pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockForms(t *testing.T) {
	key, _ := hex.DecodeString("00000000000000000000")
	ks, _ := Expand(key)
	sb, isb := SBox(), InvSBox()
	src := make([]byte, 8)
	dst := make([]byte, 8)
	EncryptBlock(ks, &sb, dst, src)
	want, _ := hex.DecodeString("5579C1387B228445")
	if !bytes.Equal(dst, want) {
		t.Fatalf("EncryptBlock = %x", dst)
	}
	back := make([]byte, 8)
	DecryptBlock(ks, &isb, back, dst)
	if !bytes.Equal(back, src) {
		t.Fatal("DecryptBlock round trip failed")
	}
}

func TestShortBlockPanics(t *testing.T) {
	ks, _ := Expand(make([]byte, 10))
	sb := SBox()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short block")
		}
	}()
	EncryptBlock(ks, &sb, make([]byte, 8), make([]byte, 3))
}

// A single-bit fault in a used S-box entry must corrupt ciphertexts.
func TestFaultedSBoxChangesOutput(t *testing.T) {
	ks, _ := Expand(make([]byte, 10))
	clean := SBox()
	faulty := SBox()
	faulty[3] ^= 0x1
	var differs bool
	for pt := uint64(0); pt < 64; pt++ {
		if Encrypt(ks, &clean, pt) != Encrypt(ks, &faulty, pt) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("fault never propagated")
	}
	// A fault confined to the unused high nibble bits must be harmless.
	masked := SBox()
	masked[3] ^= 0x80
	for pt := uint64(0); pt < 64; pt++ {
		if Encrypt(ks, &clean, pt) != Encrypt(ks, &masked, pt) {
			t.Fatal("high-nibble fault affected the datapath")
		}
	}
}

// Key schedule inversion via the last round key plus a known pair.
func TestRecoverMasterFromLastRound(t *testing.T) {
	key, _ := hex.DecodeString("0123456789abcdef0123")
	ks, _ := Expand(key)
	sb := SBox()
	pt := uint64(0x0011223344556677)
	ct := Encrypt(ks, &sb, pt)

	got, ok := RecoverMasterFromLastRound(ks.RoundKey(32), pt, ct)
	if !ok {
		t.Fatal("recovery failed")
	}
	if !bytes.Equal(got, key) {
		t.Fatalf("recovered %x want %x", got, key)
	}
}

// The last-round structure PFA relies on: InvPLayer(c ^ K32) equals the
// S-box layer output of the final round.
func TestLastRoundStructure(t *testing.T) {
	key, _ := hex.DecodeString("0123456789abcdef0123")
	ks, _ := Expand(key)
	sb := SBox()
	pt := uint64(0xdeadbeefcafef00d)

	// Recompute the state entering round 31's S-box layer.
	st := pt
	for r := 1; r <= Rounds-1; r++ {
		st ^= ks.RoundKey(r)
		st = sboxLayer(st, &sb)
		st = PLayer(st)
	}
	st ^= ks.RoundKey(Rounds)
	sOut := sboxLayer(st, &sb)

	ct := Encrypt(ks, &sb, pt)
	if InvPLayer(ct^ks.RoundKey(32)) != sOut {
		t.Fatal("last-round structure violated")
	}
}
