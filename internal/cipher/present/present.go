// Package present implements the PRESENT lightweight block cipher
// (Bogdanov et al., CHES 2007) with a faultable S-box table, as the second
// target for the paper's "fault analysis of block ciphers": persistent
// fault analysis works on any SPN whose S-box lives in corruptible memory.
//
// The implementation keeps the 64-bit state in a uint64 with bit 0 as the
// least significant bit, the convention of the specification.
package present

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// BlockSize is the PRESENT block size in bytes.
const BlockSize = 8

// Rounds is the number of substitution-permutation rounds; 32 round keys
// are consumed (K1..K31 in rounds, K32 as the final whitening key).
const Rounds = 31

// sbox is the 4-bit PRESENT S-box.
var sbox = [16]byte{0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2}

var invSbox [16]byte

func init() {
	for i, v := range sbox {
		invSbox[v] = byte(i)
	}
}

// SBox returns a fresh copy of the S-box; victims store it in simulated
// memory where a Rowhammer flip can corrupt it.  Entries are 4-bit values
// stored one per byte.
func SBox() [16]byte { return sbox }

// InvSBox returns a fresh copy of the inverse S-box.
func InvSBox() [16]byte { return invSbox }

// PLayer applies the PRESENT bit permutation: bit i of the input moves to
// bit position 16*i mod 63 (bit 63 fixed).
func PLayer(x uint64) uint64 {
	var out uint64
	for i := 0; i < 63; i++ {
		out |= ((x >> uint(i)) & 1) << uint(i*16%63)
	}
	out |= x & (1 << 63)
	return out
}

// InvPLayer inverts PLayer.
func InvPLayer(x uint64) uint64 {
	var out uint64
	for i := 0; i < 63; i++ {
		out |= ((x >> uint(i*16%63)) & 1) << uint(i)
	}
	out |= x & (1 << 63)
	return out
}

// sboxLayer substitutes all 16 nibbles through the table.  Table entries
// are masked to 4 bits so an out-of-range corrupted entry behaves like the
// hardware it models (only the low nibble reaches the datapath).
func sboxLayer(x uint64, sb *[16]byte) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		n := (x >> uint(4*i)) & 0xF
		out |= uint64(sb[n]&0xF) << uint(4*i)
	}
	return out
}

// Schedule holds the 32 round keys.
type Schedule struct {
	rk      [Rounds + 1]uint64
	keySize int // 80 or 128
}

// RoundKey returns round key i, 1-based as in the specification (1..32).
func (s *Schedule) RoundKey(i int) uint64 { return s.rk[i-1] }

// KeySize returns the master key size in bits.
func (s *Schedule) KeySize() int { return s.keySize }

// ErrKeySize reports an unsupported key length.
var ErrKeySize = errors.New("present: key must be 10 (80-bit) or 16 (128-bit) bytes")

// Expand derives the round keys from a 10-byte (PRESENT-80) or 16-byte
// (PRESENT-128) master key, big-endian (key[0] holds bits 79..72 for the
// 80-bit variant).
func Expand(key []byte) (*Schedule, error) {
	switch len(key) {
	case 10:
		return expand80(key), nil
	case 16:
		return expand128(key), nil
	default:
		return nil, fmt.Errorf("%w: got %d bytes", ErrKeySize, len(key))
	}
}

// expand80 runs the 80-bit key schedule: the register is k79..k0, the round
// key is the top 64 bits, and the update is a 61-bit left rotation, S-box on
// the top nibble, and the round counter XORed into bits 19..15.
func expand80(key []byte) *Schedule {
	hi := uint64(0) // k79..k16
	lo := uint64(0) // k15..k0
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(key[i])
	}
	lo = uint64(key[8])<<8 | uint64(key[9])

	s := &Schedule{keySize: 80}
	for r := 1; r <= Rounds+1; r++ {
		s.rk[r-1] = hi
		if r == Rounds+1 {
			break
		}
		hi, lo = rotate80(hi, lo, 61)
		top := byte(hi >> 60)
		hi = hi&^(0xF<<60) | uint64(sbox[top])<<60
		// Round counter into bits 19..15: bits 19..16 live in hi's low
		// nibble, bit 15 is lo's top bit.
		ctr := uint64(r)
		hi ^= ctr >> 1
		lo ^= (ctr & 1) << 15
	}
	return s
}

// rotate80 rotates the 80-bit register (hi: top 64 bits, lo: bottom 16)
// left by 61 bits — the only rotation the schedule uses.  A left rotation
// by 61 is a right rotation by 19: the low 19 bits wrap to the top.
func rotate80(hi, lo uint64, n uint) (uint64, uint64) {
	if n != 61 {
		panic("present: only the 61-bit schedule rotation is supported")
	}
	wrapped := (hi&0x7)<<16 | lo // low 19 bits of the register
	newLo := (hi >> 3) & 0xFFFF
	newHi := hi>>19 | wrapped<<45
	return newHi, newLo
}

// invRotate80 rotates right by 61 bits (left by 19): the top 19 bits wrap
// to the bottom.
func invRotate80(hi, lo uint64, n uint) (uint64, uint64) {
	if n != 61 {
		panic("present: only the 61-bit schedule rotation is supported")
	}
	newLo := (hi >> 45) & 0xFFFF
	newHi := lo<<3 | hi<<19 | hi>>61
	return newHi, newLo
}

// expand128 runs the 128-bit key schedule: 61-bit rotation, S-box on the
// top two nibbles, counter XORed into bits 66..62.
func expand128(key []byte) *Schedule {
	hi := uint64(0) // k127..k64
	lo := uint64(0) // k63..k0
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(key[i])
		lo = lo<<8 | uint64(key[i+8])
	}
	s := &Schedule{keySize: 128}
	for r := 1; r <= Rounds+1; r++ {
		s.rk[r-1] = hi
		if r == Rounds+1 {
			break
		}
		// Rotate the 128-bit register left by 61.
		nhi := hi<<61 | lo>>3
		nlo := lo<<61 | hi>>3
		hi, lo = nhi, nlo
		hi = hi&^(0xF<<60) | uint64(sbox[byte(hi>>60)])<<60
		hi = hi&^(0xF<<56) | uint64(sbox[byte(hi>>56)&0xF])<<56
		ctr := uint64(r)
		// Bits 66..62: bits 66..64 are hi's low 3 bits, 63..62 lo's top 2.
		hi ^= ctr >> 2
		lo ^= (ctr & 3) << 62
	}
	return s
}

// Encrypt enciphers one 64-bit block with the given round keys and S-box.
func Encrypt(ks *Schedule, sb *[16]byte, block uint64) uint64 {
	st := block
	for r := 1; r <= Rounds; r++ {
		st ^= ks.RoundKey(r)
		st = sboxLayer(st, sb)
		st = PLayer(st)
	}
	return st ^ ks.RoundKey(Rounds+1)
}

// EncryptWithFault enciphers like Encrypt but XORs delta into the state at
// the entry of the given round (1-based; before that round's AddRoundKey) —
// the transient fault model differential fault analysis assumes.
func EncryptWithFault(ks *Schedule, sb *[16]byte, block uint64, round int, delta uint64) uint64 {
	if round < 1 || round > Rounds {
		panic("present: fault round out of range")
	}
	st := block
	for r := 1; r <= Rounds; r++ {
		if r == round {
			st ^= delta
		}
		st ^= ks.RoundKey(r)
		st = sboxLayer(st, sb)
		st = PLayer(st)
	}
	return st ^ ks.RoundKey(Rounds+1)
}

// Decrypt deciphers one block using the inverse S-box.
func Decrypt(ks *Schedule, isb *[16]byte, block uint64) uint64 {
	st := block ^ ks.RoundKey(Rounds+1)
	for r := Rounds; r >= 1; r-- {
		st = InvPLayer(st)
		st = sboxLayer(st, isb)
		st ^= ks.RoundKey(r)
	}
	return st
}

// EncryptBlock is the byte-slice form of Encrypt (big-endian blocks).
func EncryptBlock(ks *Schedule, sb *[16]byte, dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("present: short block")
	}
	putU64(dst, Encrypt(ks, sb, getU64(src)))
}

// DecryptBlock is the byte-slice form of Decrypt.
func DecryptBlock(ks *Schedule, isb *[16]byte, dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("present: short block")
	}
	putU64(dst, Decrypt(ks, isb, getU64(src)))
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putU64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// RecoverMasterFromLastRound inverts the PRESENT-80 key schedule given the
// final round key K32 and a known plaintext/ciphertext pair to resolve the
// 16 register bits K32 does not expose.  It brute-forces those 16 bits
// (2^16 schedule inversions, parallelised across CPUs) and returns the
// 10-byte master key.
func RecoverMasterFromLastRound(k32 uint64, plaintext, ciphertext uint64) ([]byte, bool) {
	sb := SBox()
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	results := make(chan []byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for guess := w; guess < 1<<16; guess += workers {
				hi, lo := k32, uint64(guess)
				// Invert the 31 schedule updates, counters 31..1.
				for r := Rounds; r >= 1; r-- {
					ctr := uint64(r)
					hi ^= ctr >> 1
					lo ^= (ctr & 1) << 15
					top := byte(hi >> 60)
					hi = hi&^(uint64(0xF)<<60) | uint64(invSbox[top])<<60
					hi, lo = invRotate80(hi, lo, 61)
				}
				key := make([]byte, 10)
				for i := 0; i < 8; i++ {
					key[i] = byte(hi >> uint(8*(7-i)))
				}
				key[8] = byte(lo >> 8)
				key[9] = byte(lo)
				ks, _ := Expand(key)
				if Encrypt(ks, &sb, plaintext) == ciphertext {
					select {
					case results <- key:
					default:
					}
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	key, ok := <-results
	return key, ok
}
