package present

import "testing"

// FuzzEncryptDecrypt checks decrypt(encrypt(p)) == p for arbitrary keys and
// blocks across both key sizes, in both the uint64 and byte-slice forms.
// Run with: go test -fuzz=FuzzEncryptDecrypt ./internal/cipher/present
func FuzzEncryptDecrypt(f *testing.F) {
	f.Add(make([]byte, 10), uint64(0))
	f.Add([]byte("0123456789abcdef"), uint64(0xFFFFFFFFFFFFFFFF))
	f.Add([]byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef, 0x01, 0x23}, uint64(0xdeadbeefcafef00d))
	f.Fuzz(func(t *testing.T, key []byte, pt uint64) {
		switch len(key) {
		case 10, 16:
		default:
			if _, err := Expand(key); err == nil {
				t.Fatalf("Expand accepted a %d-byte key", len(key))
			}
			return
		}
		ks, err := Expand(key)
		if err != nil {
			t.Fatalf("Expand rejected a %d-byte key: %v", len(key), err)
		}
		sb, isb := SBox(), InvSBox()
		ct := Encrypt(ks, &sb, pt)
		if back := Decrypt(ks, &isb, ct); back != pt {
			t.Fatalf("round trip: key %x pt %016x -> ct %016x -> %016x", key, pt, ct, back)
		}
		src := make([]byte, BlockSize)
		putU64(src, pt)
		dst := make([]byte, BlockSize)
		EncryptBlock(ks, &sb, dst, src)
		if getU64(dst) != ct {
			t.Fatalf("byte form diverges from uint64 form: %x vs %016x", dst, ct)
		}
	})
}
