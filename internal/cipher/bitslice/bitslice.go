// Package bitslice holds the shared machinery of the bitsliced cipher
// cores: the 64x64 bit-matrix transpose that moves blocks between lane and
// bit-plane form, an ANF-synthesised 4-bit S-box circuit, and a generic
// 64-lane engine for the repo's 64-bit substitution-permutation ciphers
// (PRESENT and the LILLIPUT-style SPN).  The AES core reuses the transpose
// and the faulted-entry patch idiom but carries its own 128-plane circuit
// in internal/cipher/aes.
//
// Representation: plane p is a uint64 holding bit p of up to 64 independent
// blocks, with lane b (block b) at bit b of every plane.  Encrypting a
// batch then costs one pass of the cipher's boolean circuit over the
// planes, amortising each gate across all lanes.
//
// Faulted tables survive bitslicing by patching the canonical S-box
// circuit: for each table entry e whose stored value differs from the
// canonical S[e], an equality mask over the *input* planes selects exactly
// the lanes whose nibble/byte equals e, and (table[e] ^ S[e]) & mask is
// XORed into the output planes.  A fault-free table produces no patches
// and costs nothing.
package bitslice

// Lanes is the batch width of the bitsliced cores: one uint64 bit-plane
// carries one bit of 64 independent blocks.
const Lanes = 64

// Transpose64 transposes the 64x64 bit matrix in place, with bit 0 as
// column 0: after the call, bit j of a[i] is the old bit i of a[j].
// Loading block b's 64-bit state into a[b] and transposing therefore
// leaves plane p in a[p] with lane b at bit b — and the transform is an
// involution, so the same call converts planes back to blocks.
func Transpose64(a *[64]uint64) {
	m := uint64(0xFFFFFFFF00000000)
	for j := uint(32); j != 0; {
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			t := (a[k] ^ (a[k|int(j)] << j)) & m
			a[k] ^= t
			a[k|int(j)] ^= t >> j
		}
		j >>= 1
		m ^= m >> j
	}
}

// Sbox4 is a bitsliced 4-bit S-box circuit synthesised from its lookup
// table via the Moebius transform: each output bit is the XOR of AND
// monomials over the four input planes, with the monomial set read off the
// algebraic normal form.  Synthesising from the table at construction time
// makes the circuit correct for any 4-bit S-box by derivation, not by
// transcription.
type Sbox4 struct {
	// anf[o] has bit u set when monomial u (the AND of the input planes
	// selected by u's bits) contributes to output bit o.
	anf [4]uint16
}

// NewSbox4 derives the circuit for the given table; entries are masked to
// their low 4 bits, matching the scalar nibble ciphers' datapath.
func NewSbox4(table *[16]byte) Sbox4 {
	var s Sbox4
	for o := 0; o < 4; o++ {
		var f uint16
		for x := 0; x < 16; x++ {
			f |= uint16((table[x]>>uint(o))&1) << uint(x)
		}
		// Moebius transform: bit u of f becomes the coefficient of
		// monomial u.
		f ^= (f & 0x5555) << 1
		f ^= (f & 0x3333) << 2
		f ^= (f & 0x0F0F) << 4
		f ^= (f & 0x00FF) << 8
		s.anf[o] = f
	}
	return s
}

// Apply substitutes the four input planes through the circuit in place:
// q[i] holds the plane of input bit i on entry and of output bit i on
// return.
func (s Sbox4) Apply(q *[4]uint64) {
	// All 16 monomial planes, built with 11 ANDs by extending each subset
	// one variable at a time.
	var m [16]uint64
	m[0] = ^uint64(0)
	m[1] = q[0]
	m[2] = q[1]
	m[3] = q[0] & q[1]
	m[4] = q[2]
	m[5] = q[0] & q[2]
	m[6] = q[1] & q[2]
	m[7] = m[3] & q[2]
	m[8] = q[3]
	m[9] = q[0] & q[3]
	m[10] = q[1] & q[3]
	m[11] = m[3] & q[3]
	m[12] = q[2] & q[3]
	m[13] = m[5] & q[3]
	m[14] = m[6] & q[3]
	m[15] = m[7] & q[3]
	var out [4]uint64
	for o := 0; o < 4; o++ {
		a := s.anf[o]
		var v uint64
		for u := 0; a != 0; u++ {
			if a&1 != 0 {
				v ^= m[u]
			}
			a >>= 1
		}
		out[o] = v
	}
	*q = out
}

// Patch4 is one faulted 4-bit table entry: lanes whose S-box input equals
// In get Delta XORed into their substituted output.
type Patch4 struct {
	// In is the faulted table index (0..15).
	In byte
	// Delta is (table[In] ^ canonical[In]) masked to the 4-bit datapath.
	Delta byte
}

// DiffTable4 lists the entries where table deviates from the canonical
// S-box on the 4-bit datapath.  Corruption confined to stored bits above
// the low nibble yields no patch, exactly as it is invisible to the scalar
// path's &0xF.
func DiffTable4(table []byte, canon *[16]byte) []Patch4 {
	var ps []Patch4
	for e := 0; e < 16; e++ {
		if d := (table[e] ^ canon[e]) & 0xF; d != 0 {
			ps = append(ps, Patch4{In: byte(e), Delta: d})
		}
	}
	return ps
}

// SPN64 is the shared bitsliced engine for 64-bit SPNs of the
// PRESENT/LILLIPUT shape: Rounds iterations of AddRoundKey, a 16-nibble
// S-box layer and a bit permutation, closed by a whitening key.  The
// engine is built once per cipher (the circuit and permutation are
// key-independent); every batch call takes the round keys and the possibly
// corrupted table.
type SPN64 struct {
	// Rounds is the number of substitution-permutation rounds; Rounds+1
	// round keys are consumed.
	Rounds int
	// Perm is the bit permutation: output bit Perm[i] takes input bit i.
	Perm [64]byte
	// Canon is the canonical S-box, entries masked to 4 bits.
	Canon [16]byte
	// Circuit is the bitsliced canonical S-box.
	Circuit Sbox4
}

// NewSPN64 builds the engine for a cipher with the given round count,
// canonical S-box and bit permutation (bit i moves to perm(i)).
func NewSPN64(rounds int, sbox [16]byte, perm func(int) int) *SPN64 {
	e := &SPN64{Rounds: rounds}
	for i := range sbox {
		e.Canon[i] = sbox[i] & 0xF
	}
	e.Circuit = NewSbox4(&e.Canon)
	for i := 0; i < 64; i++ {
		e.Perm[i] = byte(perm(i))
	}
	return e
}

// EncryptBatch enciphers len(src) <= Lanes independent blocks (big-endian
// 8-byte each) with the given round keys (rk[r-1] is round r's key,
// rk[Rounds] the whitening key) and table, writing ciphertext i to dst[i].
// It is bit-for-bit equivalent to the cipher's scalar path on every lane,
// faulted tables included.
func (e *SPN64) EncryptBatch(rk []uint64, table []byte, dst, src [][]byte) {
	e.encrypt(rk, table, dst, src, 0, nil)
}

// EncryptWithFaultBatch enciphers like EncryptBatch but XORs masks[i] (a
// big-endian 8-byte transient-fault delta) into lane i's state at the
// entry of the 1-based round, matching the scalar EncryptWithFault
// semantics lane for lane.
func (e *SPN64) EncryptWithFaultBatch(rk []uint64, table []byte, dst, src [][]byte, round int, masks [][]byte) {
	if round < 1 || round > e.Rounds {
		panic("bitslice: fault round out of range")
	}
	e.encrypt(rk, table, dst, src, round, masks)
}

// encrypt is the common batch body; faultRound 0 means no transient fault.
func (e *SPN64) encrypt(rk []uint64, table []byte, dst, src [][]byte, faultRound int, masks [][]byte) {
	n := len(src)
	if n > Lanes {
		panic("bitslice: batch wider than 64 lanes")
	}
	if len(dst) != n {
		panic("bitslice: batch dst/src length mismatch")
	}
	var st [64]uint64
	for b := 0; b < n; b++ {
		st[b] = beU64(src[b])
	}
	Transpose64(&st)

	var fd [64]uint64
	if faultRound != 0 {
		if len(masks) != n {
			panic("bitslice: batch masks length mismatch")
		}
		for b := 0; b < n; b++ {
			fd[b] = beU64(masks[b])
		}
		Transpose64(&fd)
	}

	patches := DiffTable4(table, &e.Canon)
	for r := 1; r <= e.Rounds; r++ {
		if r == faultRound {
			for p := 0; p < 64; p++ {
				st[p] ^= fd[p]
			}
		}
		key := rk[r-1]
		for p := 0; p < 64; p++ {
			st[p] ^= -(key >> uint(p) & 1)
		}
		e.sboxLayer(&st, patches)
		var out [64]uint64
		for p := 0; p < 64; p++ {
			out[e.Perm[p]] = st[p]
		}
		st = out
	}
	key := rk[e.Rounds]
	for p := 0; p < 64; p++ {
		st[p] ^= -(key >> uint(p) & 1)
	}

	Transpose64(&st)
	for b := 0; b < n; b++ {
		putBEU64(dst[b], st[b])
	}
}

// sboxLayer substitutes all 16 nibble groups through the patched circuit.
func (e *SPN64) sboxLayer(st *[64]uint64, patches []Patch4) {
	for nib := 0; nib < 16; nib++ {
		q := (*[4]uint64)(st[4*nib : 4*nib+4])
		if len(patches) == 0 {
			e.Circuit.Apply(q)
			continue
		}
		in := *q
		e.Circuit.Apply(q)
		for _, p := range patches {
			eq := ^uint64(0)
			for i := 0; i < 4; i++ {
				// XNOR with the broadcast of bit i of the faulted index:
				// keeps only lanes whose input nibble equals p.In.
				eq &= in[i] ^ ^(-(uint64(p.In) >> uint(i) & 1))
			}
			for o := 0; o < 4; o++ {
				if p.Delta>>uint(o)&1 != 0 {
					q[o] ^= eq
				}
			}
		}
	}
}

// beU64 reads a big-endian 8-byte block, the 64-bit ciphers' wire form.
func beU64(b []byte) uint64 {
	if len(b) < 8 {
		panic("bitslice: short block")
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// putBEU64 writes a big-endian 8-byte block.
func putBEU64(b []byte, v uint64) {
	if len(b) < 8 {
		panic("bitslice: short block")
	}
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}
