package bitslice

import (
	"testing"

	"explframe/internal/stats"
)

// naiveTranspose is the obviously correct reference: bit j of out[i] is
// bit i of in[j].
func naiveTranspose(in *[64]uint64) [64]uint64 {
	var out [64]uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			out[i] |= (in[j] >> uint(i) & 1) << uint(j)
		}
	}
	return out
}

func TestTranspose64MatchesNaive(t *testing.T) {
	rng := stats.NewRNG(0x7157a)
	for trial := 0; trial < 50; trial++ {
		var a [64]uint64
		for i := range a {
			a[i] = rng.Uint64()
		}
		want := naiveTranspose(&a)
		got := a
		Transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose mismatch", trial)
		}
		// Involution: transposing twice restores the input.
		Transpose64(&got)
		if got != a {
			t.Fatalf("trial %d: transpose is not an involution", trial)
		}
	}
}

func TestSbox4MatchesTableLookup(t *testing.T) {
	rng := stats.NewRNG(0x5b0c4)
	for trial := 0; trial < 100; trial++ {
		var table [16]byte
		for i := range table {
			table[i] = byte(rng.Intn(256)) // entries may carry junk above bit 3
		}
		circ := NewSbox4(&table)

		// One lane per possible input value plus 48 random lanes.
		var lanes [64]byte
		for b := 0; b < 16; b++ {
			lanes[b] = byte(b)
		}
		for b := 16; b < 64; b++ {
			lanes[b] = byte(rng.Intn(16))
		}
		var q [4]uint64
		for b, x := range lanes {
			for i := 0; i < 4; i++ {
				q[i] |= uint64(x>>uint(i)&1) << uint(b)
			}
		}
		circ.Apply(&q)
		for b, x := range lanes {
			var got byte
			for i := 0; i < 4; i++ {
				got |= byte(q[i]>>uint(b)&1) << uint(i)
			}
			if want := table[x] & 0xF; got != want {
				t.Fatalf("trial %d lane %d: S[%#x] = %#x, want %#x", trial, b, x, got, want)
			}
		}
	}
}

func TestDiffTable4(t *testing.T) {
	canon := [16]byte{0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2}
	table := make([]byte, 16)
	copy(table, canon[:])
	if ps := DiffTable4(table, &canon); len(ps) != 0 {
		t.Fatalf("clean table produced %d patches", len(ps))
	}
	// A flip above the 4-bit datapath is invisible.
	table[3] ^= 0x10
	if ps := DiffTable4(table, &canon); len(ps) != 0 {
		t.Fatalf("datapath-invisible flip produced %d patches", len(ps))
	}
	// Two real faults.
	table[3] ^= 0x01
	table[9] ^= 0x0C
	ps := DiffTable4(table, &canon)
	if len(ps) != 2 || ps[0] != (Patch4{In: 3, Delta: 0x01}) || ps[1] != (Patch4{In: 9, Delta: 0x0C}) {
		t.Fatalf("patches = %+v", ps)
	}
}
