package experiments

import (
	"context"
	"fmt"

	"explframe/internal/core"
	"explframe/internal/harness"
	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/stats"
)

// E13Defences evaluates the attack against the hardware mitigations the
// Rowhammer literature proposes: TRR (with and without the many-sided
// bypass) and SEC-DED ECC.  This is the defence discussion the paper's
// conclusion points at, made quantitative — each row one declarative
// scenario on the fast profile.
func E13Defences(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "defences: TRR, many-sided bypass, ECC",
		Claim: "extension: which deployed mitigations actually stop the ExplFrame pipeline, and at what cost",
		Columns: []report.Column{
			{Name: "defence"}, {Name: "hammer_mode"},
			{Name: "fault_in_table", Unit: "fraction"}, {Name: "notes"},
		},
	}
	const trials = 8

	rows := []struct {
		name, mode, note string
		opts             []scenario.Option
	}{
		{"none", "double-sided", "the paper's DDR3 setting", nil},
		{"TRR(track=4,thr=300)", "double-sided", "neighbour refresh outruns disturbance",
			[]scenario.Option{scenario.WithTRR(4, 300)}},
		{"TRR(track=4,thr=300)", "many-sided", "8 decoys thrash the tracker (TRRespass)",
			[]scenario.Option{scenario.WithTRR(4, 300), scenario.WithManySided(8)}},
		{"ECC SEC-DED", "double-sided", "single-bit table faults corrected on read",
			[]scenario.Option{scenario.WithECC()}},
	}
	camp := scenario.Campaign{Name: "E13"}
	for si, row := range rows {
		spec := scenario.New(scenario.WithProfile(scenario.ProfileFast),
			scenario.WithSeed(stats.DeriveSeed(seed, label(13, uint64(si)))),
			scenario.WithTrials(trials), scenario.WithLabel(row.name)).With(row.opts...)
		camp.Specs = append(camp.Specs, spec)
	}
	results, err := camp.Run(context.Background(), scenario.WithTrialOptions(opts...))
	if err != nil {
		return nil, err
	}
	for ri, res := range results {
		st := res.AttackStats()
		t.AddRow(report.Str(rows[ri].name), report.Str(rows[ri].mode), f2(st.Fault.Rate()), report.Str(rows[ri].note))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d end-to-end trials per row; success = fault observed in the victim's table", trials),
		"TRR stops double-sided but not many-sided; ECC corrects the single-bit faults this attack plants")
	t.Expect(report.Expectation{
		Metric: "TRR stops double-sided hammering outright",
		Row:    1, Col: 2,
		Paper: 0.0, Tol: 0.0,
		PaperText: "neighbour refresh outruns disturbance", Source: "TRR literature",
	})
	t.Expect(report.Expectation{
		Metric: "SEC-DED ECC corrects the planted single-bit faults",
		Row:    3, Col: 2,
		Paper: 0.0, Tol: 0.1,
		PaperText: "single-bit faults corrected on read", Source: "ECC literature",
	})
	return t, nil
}

// E14PCPPolicy is the allocator ablation: the steering primitive relies on
// the page frame cache being LIFO.  Switching it to FIFO (and keeping
// everything else identical) shows how much of the attack is that one
// policy choice.
func E14PCPPolicy(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "ablation: page frame cache service policy (LIFO vs FIFO)",
		Claim: "extension: Section V's steering exists because the cache returns the most recently freed frame first",
		Columns: []report.Column{
			{Name: "policy"}, {Name: "victim_pages", Unit: "pages"},
			{Name: "first_page_hit", Unit: "fraction"}, {Name: "planted_reused_anywhere", Unit: "fraction"},
		},
	}
	const trials = 25

	cell := 0
	for _, fifo := range []bool{false, true} {
		for _, pages := range []int{1, 4, 16} {
			cfg := core.DefaultSteeringConfig()
			cfg.Machine = smallMachine(seed)
			cfg.Machine.PCPFIFO = fifo
			cfg.Seed = stats.DeriveSeed(seed, label(14, uint64(cell)))
			cfg.VictimRequestPages = pages
			cell++
			results, err := core.RunSteeringTrials(cfg, trials, opts...)
			if err != nil {
				return nil, err
			}
			var first stats.Proportion
			var anywhere stats.Summary
			for _, res := range results {
				first.Observe(res.FirstPageHit)
				anywhere.Observe(float64(res.PlantedReused))
			}
			policy := "LIFO (Linux)"
			if fifo {
				policy = "FIFO (ablated)"
			}
			t.AddRow(
				report.Str(policy), report.Int(pages), f3(first.Rate()), f3(anywhere.Mean()),
			)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per row", trials),
		"FIFO destroys first-page targeting; the frame can still surface somewhere in large requests, which is not exploitable for a 1-page table")
	t.Expect(report.Expectation{
		Metric: "LIFO cache hands the hottest frame to a 1-page victim",
		Row:    0, Col: 2,
		Paper: 1.0, Tol: 0.05,
		PaperText: "\"probability of almost 1\" under Linux's LIFO pcp", Source: "Sec. V",
	})
	return t, nil
}
