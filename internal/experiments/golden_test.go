package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"explframe/internal/report"
)

var update = flag.Bool("update", false, "regenerate the golden experiment tables under testdata/golden")

// goldenSeed pins the committed tables.  The determinism contract (one
// seed → one table at any worker count, see README) is what makes these
// snapshots machine-independent: any byte of drift in a rendered table is a
// real change to the regenerated paper numbers, not scheduling noise.
const goldenSeed = 1

// shortGolden lists the experiments cheap enough to verify under -short;
// the heavyweight sweeps are still pinned and checked in full runs.
var shortGolden = map[string]bool{
	"E1": true, "E2": true, "E7": true, "E10": true, "E12": true, "E15": true,
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

// TestGoldenTables locks every experiment's seed-1 Render() output to the
// committed snapshot, so refactors of the substrate, the harness or the
// cipher registry cannot silently drift the paper's numbers.  Regenerate
// deliberately with:
//
//	go test ./internal/experiments -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			if testing.Short() && !shortGolden[r.ID] {
				t.Skip("heavyweight table; verified in full (non -short) runs")
			}
			tb, err := r.Run(goldenSeed)
			if err != nil {
				t.Fatal(err)
			}
			if tb.ID != r.ID {
				t.Fatalf("runner %s returned table id %q", r.ID, tb.ID)
			}
			got := tb.Render()
			path := goldenPath(r.ID)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden table (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from its golden table:\n%s", r.ID, renderDiff(string(want), got))
			}
		})
	}
}

// TestGoldenMarkdown pins one experiment's Markdown rendering (table,
// units, notes, expectation badges) the same way the text goldens pin the
// numbers, so renderer changes to the results book are deliberate.
// Regenerate with -update.
func TestGoldenMarkdown(t *testing.T) {
	tb, err := E2SelfReuse(goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := report.Markdown(tb)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "E2.md")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden markdown (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("E2 markdown drifted:\n%s", renderDiff(string(want), got))
	}
}

// Every experiment — including the -short-skipped heavy ones — must have a
// committed snapshot, so a newly added experiment cannot land unpinned.
func TestGoldenTablesComplete(t *testing.T) {
	for _, r := range All() {
		if _, err := os.Stat(goldenPath(r.ID)); err != nil {
			t.Errorf("%s has no golden table (run TestGoldenTables with -update): %v", r.ID, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"E2.md": true} // TestGoldenMarkdown's fixture
	for _, r := range All() {
		known[r.ID+".txt"] = true
	}
	for _, e := range entries {
		if !known[e.Name()] {
			t.Errorf("stale golden file %s matches no registered experiment", e.Name())
		}
	}
}

// renderDiff shows the first diverging line with context, which localises a
// drifted number much faster than two full table dumps.
func renderDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first diff at line %d:\n  golden: %q\n  got:    %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d vs got %d\n--- golden ---\n%s--- got ---\n%s",
		len(wl), len(gl), want, got)
}
