package experiments

import (
	"runtime"
	"testing"

	"explframe/internal/harness"
)

// One seed must produce byte-identical rendered tables no matter how many
// workers the harness runs — the determinism contract that makes the
// regenerated fault statistics comparable across machines and runs (and
// that makes the golden tables under testdata/golden machine-independent).
// The experiments chosen here cover the trial kinds the harness drives:
// allocator self-reuse (E2), steering sweeps (E14), crypto-only PFA trials
// (E10) and the registry-wide PFA campaign (E15).  The PFA trials batch
// their faulty encryptions through the bitsliced cores in 64-lane chunks,
// so this also pins the batched trial execution to one canonical stream
// regardless of how trials land on workers.  Worker counts are per-call
// options, so this test mutates no process state and cannot perturb (or be
// perturbed by) tests running in parallel.
func TestTablesWorkerCountInvariant(t *testing.T) {
	runners := map[string]func(uint64, ...harness.Option) (*Table, error){
		"E2":  E2SelfReuse,
		"E10": E10PFAPresent,
		"E14": E14PCPPolicy,
		"E15": E15PFAAllCiphers,
	}
	if testing.Short() {
		runners = map[string]func(uint64, ...harness.Option) (*Table, error){"E10": E10PFAPresent}
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for name, run := range runners {
		var ref string
		for _, workers := range workerCounts {
			tb, err := run(7, harness.WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s at %d workers: %v", name, workers, err)
			}
			out := tb.Render()
			if ref == "" {
				ref = out
				continue
			}
			if out != ref {
				t.Fatalf("%s table diverges at %d workers:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
					name, workers, ref, workers, out)
			}
		}
	}
}

// The heavyweight campaign-backed experiments must also be worker-invariant:
// E6 runs full attack pipelines through the scenario campaign layer, E16
// does the same across every registered machine profile, and E17 drives the
// DFA fault-model ladder over every registered analyzer (its trials collect
// a whole pair budget in one batched dfa.CollectPairs call), and E18 runs
// the cache-probe technique grid over both machine mappers.  E16's, E17's
// and E18's trial streams key on the machine/cipher/model/technique *names*
// (via Spec hashes), so the invariance also holds against registry growth:
// a newly registered machine, analyzer, ladder rung or probe technique adds
// rows without re-randomizing the existing rows.
func TestAttackTableWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full end-to-end sweep")
	}
	for _, exp := range []struct {
		id  string
		run func(uint64, ...harness.Option) (*Table, error)
	}{
		{"E6", E6EndToEnd},
		{"E16", E16Machines},
		{"E17", E17DFALadder},
		{"E18", E18CacheProbe},
	} {
		var ref string
		for _, workers := range []int{1, runtime.NumCPU()} {
			tb, err := exp.run(3, harness.WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s at %d workers: %v", exp.id, workers, err)
			}
			if ref == "" {
				ref = tb.Render()
			} else if tb.Render() != ref {
				t.Fatalf("%s table diverges at %d workers", exp.id, workers)
			}
		}
	}
}
