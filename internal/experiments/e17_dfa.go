package experiments

import (
	"context"
	"fmt"

	"explframe/internal/fault/dfa"
	"explframe/internal/harness"
	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/stats"
)

// e17Budgets are the correct/faulty pair budgets each ladder rung is scored
// at: a starved budget that exposes the precision ordering as surviving
// key-space bits, and a generous one that shows every rung still converging
// to the full key.
var e17Budgets = []int{4, 40}

// E17DFALadder walks the precise-to-random fault-model ladder of every
// registered DFA analyzer: for each cipher and each rung, DFA-kind
// scenarios collect correct/faulty pairs under the declarative fault model
// and re-analyse after every pair, reporting how much last-round-key space
// survives a starved pair budget and how many pairs a generous budget needs
// for full recovery.  This is the DFA side of the paper's comparison
// (Section VII): a transient-fault attack that keeps its data complexity
// tiny only while the fault stays precisely placed and precisely timed —
// the control Rowhammer does not offer — whereas the persistent route (E15)
// asks only for one bit flipped anywhere in the S-box table.
func E17DFALadder(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "DFA fault-model ladder (precision vs surviving key space, per registered analyzer)",
		Claim: "Sec VII: DFA's few-ciphertext advantage exists only under precise fault control; as the model degrades toward random, budgets stretch or key space survives",
		Columns: []report.Column{
			{Name: "cipher"}, {Name: "fault_model"}, {Name: "budget", Unit: "pairs"},
			{Name: "recovered_frac", Unit: "fraction"}, {Name: "master_ok_frac", Unit: "fraction"},
			{Name: "pairs_p50", Unit: "pairs"}, {Name: "keyspace_bits", Unit: "bits"},
		},
	}
	const trials = 6

	// Row order and seed derivation key on (cipher, model, budget) names, not
	// slice indices: adding a rung or a budget must not re-randomize the
	// existing rows' trial streams (the E15 convention).
	type rowKey struct {
		cipher, model string
		budget        int
	}
	var keys []rowKey
	camp := scenario.Campaign{Name: "E17"}
	for _, name := range dfa.Names() {
		a := dfa.MustGet(name)
		for _, m := range a.Ladder() {
			for _, budget := range e17Budgets {
				keys = append(keys, rowKey{name, m.Name(), budget})
				camp.Specs = append(camp.Specs, scenario.New(
					scenario.WithCipher(name), scenario.WithFaultModel(m),
					scenario.WithBudget(budget), scenario.WithTrials(trials),
					scenario.WithSeed(stats.DeriveSeed(stats.DeriveSeed(seed, label(17, 0)),
						fnv1a(fmt.Sprintf("%s/%s/b%d", name, m.Name(), budget))))))
			}
		}
	}
	results, err := camp.Run(context.Background(), scenario.WithTrialOptions(opts...))
	if err != nil {
		return nil, err
	}

	for i, res := range results {
		k := keys[i]
		st := res.DFAStats()
		p50 := report.Dash()
		if st.Pairs.N() > 0 {
			p50 = report.Float(st.Pairs.Quantile(0.5), 0)
		}
		ri := len(t.Rows)
		t.AddRow(
			report.Str(k.cipher),
			report.Str(k.model),
			report.Int(k.budget),
			f2(st.Recovered.Rate()),
			f2(st.MasterOK.Rate()),
			p50,
			report.Float(st.KeySpaceBits.Mean(), 1),
		)
		// Every rung of every ladder must reach the full master key once the
		// pair budget is generous — the ladder degrades cost, not soundness.
		if k.budget == 40 {
			t.Expect(report.Expectation{
				Metric: fmt.Sprintf("%s/%s: generous budget recovers the master key", k.cipher, k.model),
				Row:    ri, Col: 4,
				Paper: 1.0, Tol: 0.05,
				PaperText: "systematic DFA recovers the key under every rung", Source: "PAPERS.md (LILLIPUT DFA ladder)",
			})
		}
	}
	// The classical anchor: Piret–Quisquater needs ~8 random-column faults
	// (two per MixColumns column) for AES-128.
	for ri, row := range t.Rows {
		if row[0].Text == "aes-128" && row[1].Text == "precise-byte@any" && row[2].Text == "40" && row[5].Numeric() {
			t.Expect(report.Expectation{
				Metric: "aes-128/precise-byte: median pairs to unique key",
				Row:    ri, Col: 5,
				Paper: 8, Tol: 6,
				PaperText: "~2 faulty ciphertexts per column (8 total)", Source: "Piret-Quisquater CHES 2003",
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per row; each trial re-analyses after every collected pair and stops at a unique key", trials),
		"keyspace_bits is log2 of the surviving last-round-key space when the trial stops (0 = unique)",
		"on aes-128 the starved-budget key space grows down the ladder: a vaguer model admits more fault hypotheses per pair",
		"on lilliput-80 data complexity is not monotone in precision: wider faults constrain more nibbles per pair, so the vague rungs converge in fewer pairs — what degrades down the ladder is fault placement, not data",
		"AES rows keep Piret-Quisquater semantics (no residual-space enumeration); LILLIPUT rows finish spaces of <=16 candidates by enumeration against a known plaintext")
	return t, nil
}
