package experiments

import (
	"bytes"
	"fmt"

	"explframe/internal/cipher/aes"
	"explframe/internal/cipher/present"
	"explframe/internal/cipher/registry"
	"explframe/internal/fault"
	"explframe/internal/fault/dfa"
	"explframe/internal/fault/pfa"
	"explframe/internal/harness"
	"explframe/internal/report"
	"explframe/internal/stats"
)

// E7PFAAES reproduces the persistent-fault-analysis data-complexity curve
// for AES-128: residual key entropy and recovery rate vs ciphertext count.
func E7PFAAES(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "PFA on AES-128: key entropy vs faulty ciphertexts",
		Claim: "Conclusion/[12]: persistent faults \"exploited offline to eventually extract key information\"; TCHES 2018 reports ~2000 ciphertexts for AES",
		Columns: []report.Column{
			{Name: "ciphertexts", Unit: "count"}, {Name: "avg_entropy_bits", Unit: "bits"},
			{Name: "recovered_frac", Unit: "fraction"}, {Name: "positions_determined", Unit: "of 16"},
		},
	}
	const trials = 32
	checkpoints := []int{250, 500, 1000, 1500, 2000, 2500, 3000, 4000, 6000}

	type trial struct {
		entropy     []float64
		positions   []int
		recoveredAt int
	}
	results, err := harness.RunTrials(stats.DeriveSeed(seed, label(7, 0)), trials, func(_ int, rng *stats.RNG) (trial, error) {
		out := trial{
			entropy:     make([]float64, len(checkpoints)),
			positions:   make([]int, len(checkpoints)),
			recoveredAt: -1,
		}
		key := make([]byte, 16)
		rng.Bytes(key)
		ks, err := aes.Expand(key)
		if err != nil {
			return out, err
		}
		faulty := aes.SBox()
		vStar := rng.Intn(256)
		yStar := faulty[vStar]
		faulty[vStar] ^= 1 << uint(rng.Intn(8))

		col := pfa.NewAESCollector()
		pt := make([]byte, 16)
		ct := make([]byte, 16)
		next := 0
		for n := 1; n <= checkpoints[len(checkpoints)-1]; n++ {
			rng.Bytes(pt)
			aes.EncryptBlock(ks, &faulty, ct, pt)
			if err := col.Observe(ct); err != nil {
				return out, err
			}
			if out.recoveredAt < 0 {
				if _, err := col.RecoverLastRoundKeyKnownFault(yStar); err == nil {
					out.recoveredAt = n
				}
			}
			if next < len(checkpoints) && n == checkpoints[next] {
				out.entropy[next] = col.ResidualEntropy()
				for i := 0; i < 16; i++ {
					if len(col.Missing(i)) == 1 {
						out.positions[next]++
					}
				}
				next++
			}
		}
		return out, nil
	}, opts...)
	if err != nil {
		return nil, err
	}

	entropy := make([]float64, len(checkpoints))
	recovered := make([]int, len(checkpoints))
	positions := make([]float64, len(checkpoints))
	var toRecover stats.Summary
	for _, tr := range results {
		if tr.recoveredAt > 0 {
			toRecover.Observe(float64(tr.recoveredAt))
		}
		for i := range checkpoints {
			entropy[i] += tr.entropy[i]
			positions[i] += float64(tr.positions[i])
			if tr.recoveredAt > 0 && tr.recoveredAt <= checkpoints[i] {
				recovered[i]++
			}
		}
	}
	for i, n := range checkpoints {
		t.AddRow(
			report.Int(n),
			f2(entropy[i]/trials),
			f2(float64(recovered[i])/trials),
			f2(positions[i]/trials),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials, random keys, random single-bit S-box faults, known-fault recovery", trials),
		fmt.Sprintf("ciphertexts to full recovery: mean=%.0f p50=%.0f max=%.0f", toRecover.Mean(), toRecover.Quantile(0.5), toRecover.Max()),
		"shape matches TCHES 2018: coupon-collector convergence, full key around 2-3k ciphertexts")
	t.Expect(report.Expectation{
		Metric: "mean ciphertexts to full AES-128 key recovery",
		Row:    -1, Col: -1, Direct: toRecover.Mean(),
		Paper: 2000, Tol: 250,
		PaperText: "~2000 faulty ciphertexts", Source: "[12] TCHES 2018",
	})
	t.Expect(report.Expectation{
		Metric: "all trials recover the key by the final checkpoint",
		Row:    len(checkpoints) - 1, Col: 2,
		Paper: 1.0, Tol: 0.0,
		PaperText: "the key is \"eventually\" extracted", Source: "Conclusion",
	})
	return t, nil
}

// E9DFAvsPFA contrasts the classical transient-fault attack with the
// persistent-fault route ExplFrame enables.
func E9DFAvsPFA(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "DFA (transient, Piret-Quisquater) vs PFA (persistent)",
		Claim: "context for [12]: DFA needs few pairs but a precisely placed transient fault; PFA needs one persistent flip and only ciphertexts",
		Columns: []report.Column{
			{Name: "attack"}, {Name: "fault_model"}, {Name: "data"},
			{Name: "unique_key_frac", Unit: "fraction"}, {Name: "requirements"},
		},
	}
	const trials = 16

	// DFA: unique-key probability vs pairs per column, through the generic
	// analyzer registry.  Each table row runs its trials on the harness
	// under its own derived seed domain.  The pinned-position precise-byte
	// models reproduce the historical per-pair draws (one plaintext, one
	// non-zero delta) byte for byte.
	dfaCipher := registry.MustGet("aes-128")
	dfaAnalyzer := dfa.MustGet("aes-128")
	for ri, perColumn := range []int{1, 2} {
		pc := perColumn
		unique, err := harness.Proportion(stats.DeriveSeed(seed, label(9, uint64(ri))), trials,
			func(_ int, rng *stats.RNG) (bool, error) {
				key := make([]byte, 16)
				rng.Bytes(key)
				inst, err := dfaCipher.New(key)
				if err != nil {
					return false, err
				}
				table := dfaCipher.SBox()
				var pairs []dfa.Pair
				pt := make([]byte, 16)
				for fb := 0; fb < 4; fb++ {
					m := fault.New(fault.PreciseByte, fault.WithPosition(fb))
					for n := 0; n < pc; n++ {
						rng.Bytes(pt)
						p, err := dfa.CollectPair(dfaCipher, inst, table, pt, m, rng)
						if err != nil {
							return false, err
						}
						pairs = append(pairs, p)
					}
				}
				res, err := dfaAnalyzer.Analyze(pairs, fault.New(fault.PreciseByte))
				if err != nil {
					return false, err
				}
				return res.Unique && bytes.Equal(res.Master, key), nil
			}, opts...)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			report.Str("DFA"), report.Str("transient, round-9 byte"), report.Strf("%d pairs", perColumn*4),
			f2(unique.Rate()), report.Str("fault timing + location control"),
		)
	}

	// PFA: recovery probability vs ciphertext budget.
	for ri, budget := range []int{1000, 2500} {
		n := budget
		okP, err := harness.Proportion(stats.DeriveSeed(seed, label(9, uint64(8+ri))), trials,
			func(_ int, rng *stats.RNG) (bool, error) {
				key := make([]byte, 16)
				rng.Bytes(key)
				ks, _ := aes.Expand(key)
				faulty := aes.SBox()
				v := rng.Intn(256)
				yStar := faulty[v]
				faulty[v] ^= 1 << uint(rng.Intn(8))
				col := pfa.NewAESCollector()
				pt := make([]byte, 16)
				ct := make([]byte, 16)
				for k := 0; k < n; k++ {
					rng.Bytes(pt)
					aes.EncryptBlock(ks, &faulty, ct, pt)
					col.Observe(ct)
				}
				_, err := col.RecoverLastRoundKeyKnownFault(yStar)
				return err == nil, nil
			}, opts...)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			report.Str("PFA"), report.Str("persistent, one S-box bit"), report.Strf("%d ciphertexts", budget),
			f2(okP.Rate()), report.Str("one Rowhammer flip, ciphertext-only"),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per row", trials),
		"DFA's fault model is out of reach for Rowhammer (no timing control); PFA's is exactly what ExplFrame plants")
	t.Expect(report.Expectation{
		Metric: "DFA uniqueness with two faulty pairs per column",
		Row:    1, Col: 3,
		Paper: 1.0, Tol: 0.06,
		PaperText: "two pairs per column determine the key", Source: "Piret-Quisquater 2003",
	})
	t.Expect(report.Expectation{
		Metric: "PFA recovery rate at a 2500-ciphertext budget",
		Row:    3, Col: 3,
		Paper: 1.0, Tol: 0.1,
		PaperText: "~2000 ciphertexts suffice on average", Source: "[12] TCHES 2018",
	})
	return t, nil
}

// E10PFAPresent is the PRESENT-80 counterpart of E7, showing the attack
// generalises across block ciphers (the paper's title says "Block Ciphers").
func E10PFAPresent(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "PFA on PRESENT-80: key entropy vs faulty ciphertexts",
		Claim: "title: fault analysis of block cipherS — the persistent-fault route carries over to PRESENT",
		Columns: []report.Column{
			{Name: "ciphertexts", Unit: "count"}, {Name: "avg_entropy_bits", Unit: "bits"},
			{Name: "recovered_frac", Unit: "fraction"},
		},
	}
	const trials = 32
	checkpoints := []int{10, 25, 50, 75, 100, 150, 250, 400}

	type trial struct {
		entropy     []float64
		recoveredAt int
	}
	results, err := harness.RunTrials(stats.DeriveSeed(seed, label(10, 0)), trials, func(_ int, rng *stats.RNG) (trial, error) {
		out := trial{entropy: make([]float64, len(checkpoints)), recoveredAt: -1}
		key := make([]byte, 10)
		rng.Bytes(key)
		ks, err := present.Expand(key)
		if err != nil {
			return out, err
		}
		faulty := present.SBox()
		v := rng.Intn(16)
		yStar := faulty[v]
		faulty[v] ^= byte(1 << uint(rng.Intn(4)))

		col := pfa.NewPresentCollector()
		next := 0
		for n := 1; n <= checkpoints[len(checkpoints)-1]; n++ {
			col.Observe(present.Encrypt(ks, &faulty, rng.Uint64()))
			if out.recoveredAt < 0 {
				if _, err := col.RecoverLastRoundKeyKnownFault(yStar); err == nil {
					out.recoveredAt = n
				}
			}
			if next < len(checkpoints) && n == checkpoints[next] {
				out.entropy[next] = col.ResidualEntropy()
				next++
			}
		}
		return out, nil
	}, opts...)
	if err != nil {
		return nil, err
	}

	entropy := make([]float64, len(checkpoints))
	recovered := make([]int, len(checkpoints))
	var toRecover stats.Summary
	for _, tr := range results {
		if tr.recoveredAt > 0 {
			toRecover.Observe(float64(tr.recoveredAt))
		}
		for i := range checkpoints {
			entropy[i] += tr.entropy[i]
			if tr.recoveredAt > 0 && tr.recoveredAt <= checkpoints[i] {
				recovered[i]++
			}
		}
	}
	for i, n := range checkpoints {
		t.AddRow(
			report.Int(n), f2(entropy[i]/trials), f2(float64(recovered[i])/trials),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials; K32 recovery via missing nibbles of invPLayer(c); master key needs +2^16 schedule inversions", trials),
		"4-bit S-box converges ~40x faster than AES's 8-bit table (coupon collector over 16 vs 256 values)")
	t.Expect(report.Expectation{
		Metric: "all trials recover PRESENT-80 within 400 ciphertexts",
		Row:    len(checkpoints) - 1, Col: 2,
		Paper: 1.0, Tol: 0.0,
		PaperText: "the attack generalises to other block ciphers", Source: "title/Conclusion",
	})
	return t, nil
}
