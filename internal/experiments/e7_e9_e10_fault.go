package experiments

import (
	"errors"
	"fmt"

	"explframe/internal/cipher/aes"
	"explframe/internal/cipher/present"
	"explframe/internal/fault/dfa"
	"explframe/internal/fault/pfa"
	"explframe/internal/stats"
)

// E7PFAAES reproduces the persistent-fault-analysis data-complexity curve
// for AES-128: residual key entropy and recovery rate vs ciphertext count.
func E7PFAAES(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "PFA on AES-128: key entropy vs faulty ciphertexts",
		Claim:   "Conclusion/[12]: persistent faults \"exploited offline to eventually extract key information\"; TCHES 2018 reports ~2000 ciphertexts for AES",
		Headers: []string{"ciphertexts", "avg_entropy_bits", "recovered_frac", "positions_determined"},
	}
	const trials = 12
	checkpoints := []int{250, 500, 1000, 1500, 2000, 2500, 3000, 4000, 6000}

	entropy := make([]float64, len(checkpoints))
	recovered := make([]int, len(checkpoints))
	positions := make([]float64, len(checkpoints))
	var toRecover stats.Summary

	for tr := 0; tr < trials; tr++ {
		rng := stats.NewRNG(seed + uint64(tr)*911)
		key := make([]byte, 16)
		rng.Bytes(key)
		ks, err := aes.Expand(key)
		if err != nil {
			return nil, err
		}
		faulty := aes.SBox()
		vStar := rng.Intn(256)
		yStar := faulty[vStar]
		faulty[vStar] ^= 1 << uint(rng.Intn(8))

		col := pfa.NewAESCollector()
		pt := make([]byte, 16)
		ct := make([]byte, 16)
		next := 0
		recoveredAt := -1
		for n := 1; n <= checkpoints[len(checkpoints)-1]; n++ {
			rng.Bytes(pt)
			aes.EncryptBlock(ks, &faulty, ct, pt)
			if err := col.Observe(ct); err != nil {
				return nil, err
			}
			if recoveredAt < 0 {
				if _, err := col.RecoverLastRoundKeyKnownFault(yStar); err == nil {
					recoveredAt = n
					toRecover.Observe(float64(n))
				}
			}
			if next < len(checkpoints) && n == checkpoints[next] {
				entropy[next] += col.ResidualEntropy()
				det := 0
				for i := 0; i < 16; i++ {
					if len(col.Missing(i)) == 1 {
						det++
					}
				}
				positions[next] += float64(det)
				if recoveredAt > 0 && recoveredAt <= n {
					recovered[next]++
				}
				next++
			}
		}
	}
	for i, n := range checkpoints {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			f2(entropy[i] / trials),
			f2(float64(recovered[i]) / trials),
			f2(positions[i] / trials),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials, random keys, random single-bit S-box faults, known-fault recovery", trials),
		fmt.Sprintf("ciphertexts to full recovery: mean=%.0f p50=%.0f max=%.0f", toRecover.Mean(), toRecover.Quantile(0.5), toRecover.Max()),
		"shape matches TCHES 2018: coupon-collector convergence, full key around 2-3k ciphertexts")
	return t, nil
}

// E9DFAvsPFA contrasts the classical transient-fault attack with the
// persistent-fault route ExplFrame enables.
func E9DFAvsPFA(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "DFA (transient, Piret-Quisquater) vs PFA (persistent)",
		Claim:   "context for [12]: DFA needs few pairs but a precisely placed transient fault; PFA needs one persistent flip and only ciphertexts",
		Headers: []string{"attack", "fault_model", "data", "unique_key_frac", "requirements"},
	}
	const trials = 10
	rngRoot := stats.NewRNG(seed)

	// DFA: unique-key probability vs pairs per column.
	for _, perColumn := range []int{1, 2} {
		var unique stats.Proportion
		for tr := 0; tr < trials; tr++ {
			rng := rngRoot.Split()
			key := make([]byte, 16)
			rng.Bytes(key)
			ks, err := aes.Expand(key)
			if err != nil {
				return nil, err
			}
			sb := aes.SBox()
			var pairs []dfa.Pair
			pt := make([]byte, 16)
			for fb := 0; fb < 4; fb++ {
				for n := 0; n < perColumn; n++ {
					rng.Bytes(pt)
					pairs = append(pairs, dfa.CollectPair(ks, &sb, pt, fb, byte(rng.Intn(255)+1)))
				}
			}
			res, err := dfa.Recover(pairs)
			ok := err == nil && res.Unique && res.K10 == ks.RoundKey(10)
			if err != nil && !errors.Is(err, dfa.ErrNeedMorePairs) {
				return nil, err
			}
			unique.Observe(ok)
		}
		t.Rows = append(t.Rows, []string{
			"DFA", "transient, round-9 byte", fmt.Sprintf("%d pairs", perColumn*4),
			f2(unique.Rate()), "fault timing + location control",
		})
	}

	// PFA: recovery probability vs ciphertext budget.
	for _, budget := range []int{1000, 2500} {
		var okP stats.Proportion
		for tr := 0; tr < trials; tr++ {
			rng := rngRoot.Split()
			key := make([]byte, 16)
			rng.Bytes(key)
			ks, _ := aes.Expand(key)
			faulty := aes.SBox()
			v := rng.Intn(256)
			yStar := faulty[v]
			faulty[v] ^= 1 << uint(rng.Intn(8))
			col := pfa.NewAESCollector()
			pt := make([]byte, 16)
			ct := make([]byte, 16)
			for n := 0; n < budget; n++ {
				rng.Bytes(pt)
				aes.EncryptBlock(ks, &faulty, ct, pt)
				col.Observe(ct)
			}
			_, err := col.RecoverLastRoundKeyKnownFault(yStar)
			okP.Observe(err == nil)
		}
		t.Rows = append(t.Rows, []string{
			"PFA", "persistent, one S-box bit", fmt.Sprintf("%d ciphertexts", budget),
			f2(okP.Rate()), "one Rowhammer flip, ciphertext-only",
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per row", trials),
		"DFA's fault model is out of reach for Rowhammer (no timing control); PFA's is exactly what ExplFrame plants")
	return t, nil
}

// E10PFAPresent is the PRESENT-80 counterpart of E7, showing the attack
// generalises across block ciphers (the paper's title says "Block Ciphers").
func E10PFAPresent(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "PFA on PRESENT-80: key entropy vs faulty ciphertexts",
		Claim:   "title: fault analysis of block cipherS — the persistent-fault route carries over to PRESENT",
		Headers: []string{"ciphertexts", "avg_entropy_bits", "recovered_frac"},
	}
	const trials = 12
	checkpoints := []int{10, 25, 50, 75, 100, 150, 250, 400}

	entropy := make([]float64, len(checkpoints))
	recovered := make([]int, len(checkpoints))
	var toRecover stats.Summary

	for tr := 0; tr < trials; tr++ {
		rng := stats.NewRNG(seed + uint64(tr)*601)
		key := make([]byte, 10)
		rng.Bytes(key)
		ks, err := present.Expand(key)
		if err != nil {
			return nil, err
		}
		faulty := present.SBox()
		v := rng.Intn(16)
		yStar := faulty[v]
		faulty[v] ^= byte(1 << uint(rng.Intn(4)))

		col := pfa.NewPresentCollector()
		next := 0
		recoveredAt := -1
		for n := 1; n <= checkpoints[len(checkpoints)-1]; n++ {
			col.Observe(present.Encrypt(ks, &faulty, rng.Uint64()))
			if recoveredAt < 0 {
				if _, err := col.RecoverLastRoundKeyKnownFault(yStar); err == nil {
					recoveredAt = n
					toRecover.Observe(float64(n))
				}
			}
			if next < len(checkpoints) && n == checkpoints[next] {
				entropy[next] += col.ResidualEntropy()
				if recoveredAt > 0 && recoveredAt <= n {
					recovered[next]++
				}
				next++
			}
		}
	}
	for i, n := range checkpoints {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), f2(entropy[i] / trials), f2(float64(recovered[i]) / trials),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials; K32 recovery via missing nibbles of invPLayer(c); master key needs +2^16 schedule inversions", trials),
		"4-bit S-box converges ~40x faster than AES's 8-bit table (coupon collector over 16 vs 256 values)")
	return t, nil
}
