package experiments

import (
	"fmt"

	"explframe/internal/core"
	"explframe/internal/dram"
	"explframe/internal/report"
	"explframe/internal/rowhammer"
	"explframe/internal/stats"
)

// attackConfig builds the end-to-end configuration used by E6/E8: a small,
// vulnerable module so each trial stays around a second.
func attackConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Machine.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
	cfg.Machine.FaultModel = dram.FaultModel{
		WeakCellDensity: 2e-4,
		BaseThreshold:   1500,
		ThresholdSpread: 0.5,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 20,
		FlipReliability: 0.98,
	}
	cfg.Hammer = rowhammer.Config{Mode: rowhammer.DoubleSided, PairHammerCount: 3200}
	cfg.AttackerMemory = 8 << 20
	cfg.Ciphertexts = 12000
	return cfg
}

// E6EndToEnd runs the full pipeline across scenarios and reports per-phase
// and end-to-end success rates.
func E6EndToEnd(seed uint64) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "end-to-end ExplFrame attack (template→plant→steer→re-hammer→PFA)",
		Claim: "Sec. VI: targeted Rowhammer on a single victim page without special privilege, exploited via persistent faults [12]",
		Columns: []report.Column{
			{Name: "scenario"}, {Name: "site_found", Unit: "fraction"},
			{Name: "steering", Unit: "fraction"}, {Name: "fault", Unit: "fraction"},
			{Name: "key_recovered", Unit: "fraction"}, {Name: "avg_ciphertexts", Unit: "ciphertexts"},
		},
	}
	const trials = 10

	type scenario struct {
		name string
		mod  func(*core.Config)
	}
	scenarios := []scenario{
		{"baseline (same CPU, quiet)", func(c *core.Config) {}},
		{"noise (2 procs, 150 ops)", func(c *core.Config) { c.NoiseProcs = 2; c.NoiseOps = 150 }},
		{"cross-CPU victim", func(c *core.Config) { c.VictimCPU = 1 }},
		{"sleeping attacker", func(c *core.Config) { c.AttackerSleeps = true }},
	}
	for si, sc := range scenarios {
		cfg := attackConfig(stats.DeriveSeed(seed, label(6, uint64(si))))
		sc.mod(&cfg)
		reports, err := core.RunAttackTrials(cfg, trials, nil)
		if err != nil {
			return nil, err
		}
		var site, steer, fault, key stats.Proportion
		var cts stats.Summary
		for _, rep := range reports {
			site.Observe(rep.SiteFound)
			steer.Observe(rep.SteeringHit)
			fault.Observe(rep.FaultInjected)
			key.Observe(rep.Success())
			if rep.Success() {
				cts.Observe(float64(rep.CiphertextsUsed))
			}
		}
		avg := report.Dash()
		if cts.N() > 0 {
			avg = report.Float(cts.Mean(), 0)
		}
		t.AddRow(
			report.Str(sc.name), f2(site.Rate()), f2(steer.Rate()), f2(fault.Rate()), f2(key.Rate()), avg,
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per scenario; 8 MiB attacker buffer on a 32 MiB module, AES-128 victim", trials),
		"steering requires a shared CPU and an active attacker, matching Sections V-VI")
	t.Expect(report.Expectation{
		Metric: "baseline end-to-end key recovery (same CPU, quiet)",
		Row:    0, Col: 4,
		Paper: 0.95, Tol: 0.05,
		PaperText: ">95% success steering the attack page", Source: "Sec. VII",
	})
	t.Expect(report.Expectation{
		Metric: "cross-CPU victim defeats the attack",
		Row:    2, Col: 4,
		Paper: 0.0, Tol: 0.0,
		PaperText: "per-CPU page frame cache is not shared", Source: "Sec. V",
	})
	t.Expect(report.Expectation{
		Metric: "ciphertexts for PFA key recovery (baseline scenario)",
		Row:    0, Col: 5,
		Paper: 2000, Tol: 600,
		PaperText: "~2000 faulty ciphertexts for AES", Source: "[12] TCHES 2018",
	})
	return t, nil
}

// E8Baselines compares ExplFrame against the prior-work models: blind
// spraying and pagemap-assisted targeting (Section VI's motivation).
func E8Baselines(seed uint64) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "attack model comparison: spray vs pagemap vs ExplFrame",
		Claim: "Sec. VI: prior attacks either target a large address space or need pagemap (CAP_SYS_ADMIN); ExplFrame targets a single page unprivileged",
		Columns: []report.Column{
			{Name: "attack"}, {Name: "privilege"},
			{Name: "fault_in_table", Unit: "fraction"}, {Name: "notes"},
		},
	}
	const trials = 12

	// All three rows share one base seed: trial k of every attack model then
	// draws the same per-trial stream, hence the same machine and weak-cell
	// layout — a paired comparison of the attacks, not of the layouts.
	ac := attackConfig(stats.DeriveSeed(seed, label(8, 0)))

	// Baselines.
	for _, kind := range []core.BaselineKind{core.RandomSpray, core.PagemapTargeted} {
		bc := core.DefaultBaselineConfig(kind)
		bc.Seed = ac.Seed
		bc.Machine = ac.Machine
		bc.Hammer = ac.Hammer
		bc.AttackerMemory = ac.AttackerMemory
		results, err := core.RunBaselineTrials(bc, trials)
		if err != nil {
			return nil, err
		}
		var hit stats.Proportion
		neighbours := 0
		for _, res := range results {
			hit.Observe(res.TableCorrupted)
			if res.NeighboursOwned {
				neighbours++
			}
		}
		priv := "none"
		if kind == core.PagemapTargeted {
			priv = "CAP_SYS_ADMIN"
		}
		t.AddRow(
			report.Str(kind.String()), report.Str(priv), f2(hit.Rate()),
			report.Strf("owned neighbour rows in %d/%d trials", neighbours, trials),
		)
	}

	// ExplFrame, success criterion aligned with the baselines (fault
	// reaches the victim table).
	var hit stats.Proportion
	reports, err := core.RunAttackTrials(ac, trials, nil)
	if err != nil {
		return nil, err
	}
	for _, rep := range reports {
		hit.Observe(rep.FaultInjected)
	}
	t.AddRow(
		report.Str("ExplFrame"), report.Str("none"), f2(hit.Rate()),
		report.Str("templating + page frame cache steering"),
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per attack; success = a fault lands in the victim's S-box table", trials),
		"spray/pagemap depend on the victim frame happening to hold a usable weak cell; ExplFrame chooses the frame")
	t.Expect(report.Expectation{
		Metric: "untargeted spraying rarely faults the one victim page",
		Row:    0, Col: 2,
		Paper: 0.0, Tol: 0.1,
		PaperText: "prior attacks target \"a large address space\"", Source: "Sec. VI",
	})
	t.Expect(report.Expectation{
		Metric: "ExplFrame faults the chosen page without privilege",
		Row:    2, Col: 2,
		Paper: 0.95, Tol: 0.05,
		PaperText: ">95% attack-page success", Source: "Sec. VII",
	})
	return t, nil
}
