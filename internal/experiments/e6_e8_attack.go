package experiments

import (
	"context"
	"fmt"

	"explframe/internal/harness"
	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/stats"
)

// E6 and E8 are scenario-shaped: each table row is one declarative
// scenario.Spec on the fast profile (the small, vulnerable module that
// keeps end-to-end trials around a second), executed through
// scenario.Campaign so the drivers share the exact pipeline cmd/explframe
// exposes to spec files.

// E6EndToEnd runs the full pipeline across scenarios and reports per-phase
// and end-to-end success rates.
func E6EndToEnd(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "end-to-end ExplFrame attack (template→plant→steer→re-hammer→PFA)",
		Claim: "Sec. VI: targeted Rowhammer on a single victim page without special privilege, exploited via persistent faults [12]",
		Columns: []report.Column{
			{Name: "scenario"}, {Name: "site_found", Unit: "fraction"},
			{Name: "steering", Unit: "fraction"}, {Name: "fault", Unit: "fraction"},
			{Name: "key_recovered", Unit: "fraction"}, {Name: "avg_ciphertexts", Unit: "ciphertexts"},
		},
	}
	const trials = 10

	base := scenario.New(scenario.WithProfile(scenario.ProfileFast), scenario.WithTrials(trials))
	variants := [][]scenario.Option{
		{scenario.WithLabel("baseline (same CPU, quiet)")},
		{scenario.WithLabel("noise (2 procs, 150 ops)"), scenario.WithNoise(2, 150)},
		{scenario.WithLabel("cross-CPU victim"), scenario.WithCrossCPU()},
		{scenario.WithLabel("sleeping attacker"), scenario.WithSleepingAttacker()},
	}
	camp := scenario.Campaign{Name: "E6"}
	for si, v := range variants {
		spec := base.With(v...).With(scenario.WithSeed(stats.DeriveSeed(seed, label(6, uint64(si)))))
		camp.Specs = append(camp.Specs, spec)
	}
	results, err := camp.Run(context.Background(), scenario.WithTrialOptions(opts...))
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		st := res.AttackStats()
		avg := report.Dash()
		if st.Ciphertexts.N() > 0 {
			avg = report.Float(st.Ciphertexts.Mean(), 0)
		}
		t.AddRow(
			report.Str(res.Spec.Label), f2(st.Site.Rate()), f2(st.Steer.Rate()),
			f2(st.Fault.Rate()), f2(st.Key.Rate()), avg,
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per scenario; 8 MiB attacker buffer on a 32 MiB module, AES-128 victim", trials),
		"steering requires a shared CPU and an active attacker, matching Sections V-VI")
	t.Expect(report.Expectation{
		Metric: "baseline end-to-end key recovery (same CPU, quiet)",
		Row:    0, Col: 4,
		Paper: 0.95, Tol: 0.05,
		PaperText: ">95% success steering the attack page", Source: "Sec. VII",
	})
	t.Expect(report.Expectation{
		Metric: "cross-CPU victim defeats the attack",
		Row:    2, Col: 4,
		Paper: 0.0, Tol: 0.0,
		PaperText: "per-CPU page frame cache is not shared", Source: "Sec. V",
	})
	t.Expect(report.Expectation{
		Metric: "ciphertexts for PFA key recovery (baseline scenario)",
		Row:    0, Col: 5,
		Paper: 2000, Tol: 600,
		PaperText: "~2000 faulty ciphertexts for AES", Source: "[12] TCHES 2018",
	})
	return t, nil
}

// E8Baselines compares ExplFrame against the prior-work models: blind
// spraying and pagemap-assisted targeting (Section VI's motivation).
func E8Baselines(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "attack model comparison: spray vs pagemap vs ExplFrame",
		Claim: "Sec. VI: prior attacks either target a large address space or need pagemap (CAP_SYS_ADMIN); ExplFrame targets a single page unprivileged",
		Columns: []report.Column{
			{Name: "attack"}, {Name: "privilege"},
			{Name: "fault_in_table", Unit: "fraction"}, {Name: "notes"},
		},
	}
	const trials = 12

	// All three rows share one base seed: trial k of every attack model then
	// draws the same per-trial stream, hence the same machine and weak-cell
	// layout — a paired comparison of the attacks, not of the layouts.
	base := scenario.New(scenario.WithProfile(scenario.ProfileFast),
		scenario.WithSeed(stats.DeriveSeed(seed, label(8, 0))), scenario.WithTrials(trials))
	camp := scenario.Campaign{Name: "E8", Specs: []scenario.Spec{
		base.With(scenario.WithBaseline("random-spray")),
		base.With(scenario.WithBaseline("pagemap-targeted")),
		base.With(scenario.WithLabel("ExplFrame")),
	}}
	results, err := camp.Run(context.Background(), scenario.WithTrialOptions(opts...))
	if err != nil {
		return nil, err
	}

	for _, res := range results[:2] {
		st := res.BaselineStats()
		priv := "none"
		if res.Spec.BaselineModel == "pagemap-targeted" {
			priv = "CAP_SYS_ADMIN"
		}
		t.AddRow(
			report.Str(res.Spec.BaselineModel), report.Str(priv), f2(st.Corrupted.Rate()),
			report.Strf("owned neighbour rows in %d/%d trials", st.NeighboursOwned, trials),
		)
	}

	// ExplFrame, success criterion aligned with the baselines (fault
	// reaches the victim table).
	st := results[2].AttackStats()
	t.AddRow(
		report.Str("ExplFrame"), report.Str("none"), f2(st.Fault.Rate()),
		report.Str("templating + page frame cache steering"),
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per attack; success = a fault lands in the victim's S-box table", trials),
		"spray/pagemap depend on the victim frame happening to hold a usable weak cell; ExplFrame chooses the frame")
	t.Expect(report.Expectation{
		Metric: "untargeted spraying rarely faults the one victim page",
		Row:    0, Col: 2,
		Paper: 0.0, Tol: 0.1,
		PaperText: "prior attacks target \"a large address space\"", Source: "Sec. VI",
	})
	t.Expect(report.Expectation{
		Metric: "ExplFrame faults the chosen page without privilege",
		Row:    2, Col: 2,
		Paper: 0.95, Tol: 0.05,
		PaperText: ">95% attack-page success", Source: "Sec. VII",
	})
	return t, nil
}
