package experiments

import (
	"fmt"

	"explframe/internal/core"
	"explframe/internal/dram"
	"explframe/internal/rowhammer"
	"explframe/internal/stats"
)

// attackConfig builds the end-to-end configuration used by E6/E8: a small,
// vulnerable module so each trial stays around a second.
func attackConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Machine.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
	cfg.Machine.FaultModel = dram.FaultModel{
		WeakCellDensity: 2e-4,
		BaseThreshold:   1500,
		ThresholdSpread: 0.5,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 20,
		FlipReliability: 0.98,
	}
	cfg.Hammer = rowhammer.Config{Mode: rowhammer.DoubleSided, PairHammerCount: 3200}
	cfg.AttackerMemory = 8 << 20
	cfg.Ciphertexts = 12000
	return cfg
}

// E6EndToEnd runs the full pipeline across scenarios and reports per-phase
// and end-to-end success rates.
func E6EndToEnd(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "end-to-end ExplFrame attack (template→plant→steer→re-hammer→PFA)",
		Claim:   "Sec. VI: targeted Rowhammer on a single victim page without special privilege, exploited via persistent faults [12]",
		Headers: []string{"scenario", "site_found", "steering", "fault", "key_recovered", "avg_ciphertexts"},
	}
	const trials = 10

	type scenario struct {
		name string
		mod  func(*core.Config)
	}
	scenarios := []scenario{
		{"baseline (same CPU, quiet)", func(c *core.Config) {}},
		{"noise (2 procs, 150 ops)", func(c *core.Config) { c.NoiseProcs = 2; c.NoiseOps = 150 }},
		{"cross-CPU victim", func(c *core.Config) { c.VictimCPU = 1 }},
		{"sleeping attacker", func(c *core.Config) { c.AttackerSleeps = true }},
	}
	for si, sc := range scenarios {
		cfg := attackConfig(stats.DeriveSeed(seed, label(6, uint64(si))))
		sc.mod(&cfg)
		reports, err := core.RunAttackTrials(cfg, trials, nil)
		if err != nil {
			return nil, err
		}
		var site, steer, fault, key stats.Proportion
		var cts stats.Summary
		for _, rep := range reports {
			site.Observe(rep.SiteFound)
			steer.Observe(rep.SteeringHit)
			fault.Observe(rep.FaultInjected)
			key.Observe(rep.Success())
			if rep.Success() {
				cts.Observe(float64(rep.CiphertextsUsed))
			}
		}
		avg := "-"
		if cts.N() > 0 {
			avg = fmt.Sprintf("%.0f", cts.Mean())
		}
		t.Rows = append(t.Rows, []string{
			sc.name, f2(site.Rate()), f2(steer.Rate()), f2(fault.Rate()), f2(key.Rate()), avg,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per scenario; 8 MiB attacker buffer on a 32 MiB module, AES-128 victim", trials),
		"steering requires a shared CPU and an active attacker, matching Sections V-VI")
	return t, nil
}

// E8Baselines compares ExplFrame against the prior-work models: blind
// spraying and pagemap-assisted targeting (Section VI's motivation).
func E8Baselines(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "attack model comparison: spray vs pagemap vs ExplFrame",
		Claim:   "Sec. VI: prior attacks either target a large address space or need pagemap (CAP_SYS_ADMIN); ExplFrame targets a single page unprivileged",
		Headers: []string{"attack", "privilege", "fault_in_table", "notes"},
	}
	const trials = 12

	// All three rows share one base seed: trial k of every attack model then
	// draws the same per-trial stream, hence the same machine and weak-cell
	// layout — a paired comparison of the attacks, not of the layouts.
	ac := attackConfig(stats.DeriveSeed(seed, label(8, 0)))

	// Baselines.
	for _, kind := range []core.BaselineKind{core.RandomSpray, core.PagemapTargeted} {
		bc := core.DefaultBaselineConfig(kind)
		bc.Seed = ac.Seed
		bc.Machine = ac.Machine
		bc.Hammer = ac.Hammer
		bc.AttackerMemory = ac.AttackerMemory
		results, err := core.RunBaselineTrials(bc, trials)
		if err != nil {
			return nil, err
		}
		var hit stats.Proportion
		neighbours := 0
		for _, res := range results {
			hit.Observe(res.TableCorrupted)
			if res.NeighboursOwned {
				neighbours++
			}
		}
		priv := "none"
		if kind == core.PagemapTargeted {
			priv = "CAP_SYS_ADMIN"
		}
		t.Rows = append(t.Rows, []string{
			kind.String(), priv, f2(hit.Rate()),
			fmt.Sprintf("owned neighbour rows in %d/%d trials", neighbours, trials),
		})
	}

	// ExplFrame, success criterion aligned with the baselines (fault
	// reaches the victim table).
	var hit stats.Proportion
	reports, err := core.RunAttackTrials(ac, trials, nil)
	if err != nil {
		return nil, err
	}
	for _, rep := range reports {
		hit.Observe(rep.FaultInjected)
	}
	t.Rows = append(t.Rows, []string{
		"ExplFrame", "none", f2(hit.Rate()),
		"templating + page frame cache steering",
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per attack; success = a fault lands in the victim's S-box table", trials),
		"spray/pagemap depend on the victim frame happening to hold a usable weak cell; ExplFrame chooses the frame")
	return t, nil
}
