package experiments

import (
	"fmt"

	"explframe/internal/dram"
	"explframe/internal/harness"
	"explframe/internal/kernel"
	"explframe/internal/mm"
	"explframe/internal/report"
	"explframe/internal/stats"
	"explframe/internal/vm"
)

// smallMachine returns a 64 MiB machine configuration that keeps per-trial
// construction cheap in sweeps.
func smallMachine(seed uint64) kernel.Config {
	cfg := kernel.DefaultConfig()
	cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 8, Rows: 1024, RowBytes: 8192}
	cfg.Seed = seed
	return cfg
}

// E1Buddy exercises the buddy allocator under a churn workload and reports
// split/coalesce activity and external fragmentation over time (Fig. 1's
// mechanism in motion).
func E1Buddy(seed uint64, _ ...harness.Option) (*Table, error) {
	cfg := mm.DefaultConfig()
	cfg.TotalBytes = 64 << 20
	pm, err := mm.New(cfg)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)

	t := &Table{
		ID:    "E1",
		Title: "buddy allocator: splits, coalesces, fragmentation under churn",
		Claim: "Sec. IV: blocks split in powers of two and coalesce with free buddies on release",
		Columns: []report.Column{
			{Name: "ops"}, {Name: "live_blocks"}, {Name: "free_pages", Unit: "pages"},
			{Name: "splits"}, {Name: "coalesces"}, {Name: "frag@order8", Unit: "fraction"},
			{Name: "largest_order"},
		},
	}

	type block struct {
		p     mm.PFN
		order int
	}
	var live []block
	const totalOps = 30000
	for op := 1; op <= totalOps; op++ {
		if rng.Bool(0.55) || len(live) == 0 {
			order := rng.Intn(6)
			p, err := pm.AllocPages(0, order)
			if err == nil {
				live = append(live, block{p, order})
			}
		} else {
			i := rng.Intn(len(live))
			if err := pm.FreePages(0, live[i].p, live[i].order); err != nil {
				return nil, err
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%5000 == 0 {
			if err := pm.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("invariant violated at op %d: %v", op, err)
			}
			st := pm.Stats(mm.ZoneDMA32)
			t.AddRow(
				report.Int(op),
				report.Int(len(live)),
				report.Uint(pm.FreePagesInZone(mm.ZoneDMA32)),
				report.Uint(st.Splits),
				report.Uint(st.Coalesces),
				f3(pm.ExternalFragmentation(mm.ZoneDMA32, 8)),
				report.Int(pm.LargestFreeOrder(mm.ZoneDMA32)),
			)
		}
	}
	t.Notes = append(t.Notes,
		"orders 0-5 uniformly, 55% alloc bias; invariants checked every 5000 ops",
		"fragmentation rises under churn while coalescing keeps the largest order available")
	t.Expect(report.Qualitative(
		"buddy blocks split in powers of two and coalesce with free buddies",
		"mechanism claim, no reported figure", "Sec. IV"))
	return t, nil
}

// E2SelfReuse measures the probability that a process gets its own recently
// freed frames back as a function of request size (Section V's
// "probability of almost 1" claim) for three pcp batch sizes.
func E2SelfReuse(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "page frame cache self-reuse probability vs request size",
		Claim: "Sec. V: \"with a probability of almost 1, if the process requests for a few pages, the recently deallocated page frames will be reallocated\"",
		Columns: []report.Column{
			{Name: "request_pages", Unit: "pages"},
			{Name: "reuse(batch=16)", Unit: "fraction"},
			{Name: "reuse(batch=31)", Unit: "fraction"},
			{Name: "reuse(batch=64)", Unit: "fraction"},
		},
	}
	requests := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	batches := []int{16, 31, 64}
	const trials = 8
	const freed = 8

	cell := 0
	for _, req := range requests {
		row := []report.Cell{report.Int(req)}
		for _, batch := range batches {
			request, pcpBatch := req, batch
			fracs, err := harness.RunTrials(stats.DeriveSeed(seed, label(2, uint64(cell))), trials,
				func(_ int, rng *stats.RNG) (float64, error) {
					mc := smallMachine(rng.Uint64())
					mc.PCPBatch = pcpBatch
					mc.PCPHigh = pcpBatch * 6
					return selfReuse(mc, freed, request)
				}, opts...)
			if err != nil {
				return nil, err
			}
			cell++
			sum := 0.0
			for _, frac := range fracs {
				sum += frac
			}
			row = append(row, f3(sum/trials))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d freed pages, %d trials per cell; reuse = freed frames reallocated to the same process", freed, trials),
		"reuse stays ~1.0 for small requests and holds while the cache (plus batch refills) covers the request")
	t.Expect(report.Expectation{
		Metric: "self-reuse probability, 1-page request (batch=31, the Linux default)",
		Row:    0, Col: 2,
		Paper: 1.0, Tol: 0.01,
		PaperText: "\"probability of almost 1\"", Source: "Sec. V",
	})
	return t, nil
}

// selfReuse is the core of E2, shared with core.SelfReuseTrial but local so
// the experiment controls the machine configuration precisely.
func selfReuse(mc kernel.Config, freed, request int) (float64, error) {
	m, err := kernel.NewMachine(mc)
	if err != nil {
		return 0, err
	}
	p, err := m.Spawn("self", 0)
	if err != nil {
		return 0, err
	}
	work := freed + 16
	base, err := p.Mmap(uint64(work) * vm.PageSize)
	if err != nil {
		return 0, err
	}
	if err := p.Touch(base, uint64(work)*vm.PageSize); err != nil {
		return 0, err
	}
	released := make(map[mm.PFN]bool, freed)
	for i := 0; i < freed; i++ {
		va := base + vm.VirtAddr(i)*vm.PageSize
		pa, _ := p.Translate(va)
		released[mm.PFNOf(pa)] = true
		if err := p.Munmap(va, vm.PageSize); err != nil {
			return 0, err
		}
	}
	nbase, err := p.Mmap(uint64(request) * vm.PageSize)
	if err != nil {
		return 0, err
	}
	got := 0
	for i := 0; i < request; i++ {
		va := nbase + vm.VirtAddr(i)*vm.PageSize
		if err := p.Store(va, 1); err != nil {
			return 0, err
		}
		pa, _ := p.Translate(va)
		if released[mm.PFNOf(pa)] {
			got++
		}
	}
	denom := freed
	if request < freed {
		denom = request
	}
	return float64(got) / float64(denom), nil
}
