package experiments

import (
	"context"
	"fmt"

	"explframe/internal/core"
	"explframe/internal/harness"
	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/stats"
)

// steeringRate runs trials of one steering configuration on the parallel
// harness and returns the first-page-hit proportion.  The per-trial seeds
// derive from base.Seed, so a row's statistics are fixed by its seed alone.
func steeringRate(base core.SteeringConfig, seed uint64, trials int, opts ...harness.Option) (stats.Proportion, error) {
	base.Seed = seed
	var p stats.Proportion
	results, err := core.RunSteeringTrials(base, trials, opts...)
	if err != nil {
		return p, err
	}
	for _, res := range results {
		p.Observe(res.FirstPageHit)
	}
	return p, nil
}

// E3Steering sweeps the steering success rate over victim request size,
// noise level and CPU placement — the heart of Section V.
func E3Steering(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "attacker→victim frame steering success rate",
		Claim: "Sec. V: \"the page frame that was unmapped by the adversarial process gets allocated to the victim process\" (same CPU, small request)",
		Columns: []report.Column{
			{Name: "victim_pages", Unit: "pages"}, {Name: "noise_ops", Unit: "ops"},
			{Name: "cpus"}, {Name: "success", Unit: "fraction"}, {Name: "ci95"},
		},
	}
	const trials = 40

	type case_ struct {
		pages    int
		noiseOps int
		cross    bool
	}
	cases := []case_{
		{1, 0, false}, {4, 0, false}, {16, 0, false}, {64, 0, false},
		{4, 50, false}, {4, 150, false}, {4, 400, false},
		{4, 0, true}, {16, 150, true},
	}
	for ci, c := range cases {
		cfg := core.DefaultSteeringConfig()
		cfg.Machine = smallMachine(seed)
		cfg.VictimRequestPages = c.pages
		if c.noiseOps > 0 {
			cfg.NoiseProcs = 2
			cfg.NoiseOps = c.noiseOps
		}
		cpus := "same"
		if c.cross {
			cfg.VictimCPU = 1
			cpus = "cross"
		}
		p, err := steeringRate(cfg, stats.DeriveSeed(seed, label(3, uint64(ci))), trials, opts...)
		if err != nil {
			return nil, err
		}
		lo, hi := p.WilsonCI(1.96)
		t.AddRow(
			report.Int(c.pages), report.Int(c.noiseOps), report.Str(cpus),
			f3(p.Rate()), report.Strf("[%.3f,%.3f]", lo, hi),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per row; success = victim's first-touched page received the hottest released frame", trials),
		"same-CPU/quiet steering is near deterministic; noise and cross-CPU placement defeat it")
	t.Expect(report.Expectation{
		Metric: "steering success, quiet same-CPU, 1-page victim",
		Row:    0, Col: 3,
		Paper: 0.95, Tol: 0.05,
		PaperText: ">95% success for the attack page", Source: "Sec. VII",
	})
	t.Expect(report.Expectation{
		Metric: "steering success, cross-CPU victim",
		Row:    7, Col: 3,
		Paper: 0.0, Tol: 0.05,
		PaperText: "defeated: per-CPU cache is not shared", Source: "Sec. V",
	})
	return t, nil
}

// E11ActiveWait isolates Section V's requirement that the attacker "must
// remain active rather than going into inactive state (sleeping)" — four
// declarative steering scenarios run as one campaign.
func E11ActiveWait(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "steering success: active vs sleeping attacker",
		Claim: "Sec. V: \"the adversarial process must remain active ... since in that case the entire process state information including page frame cache will be swapped out\"",
		Columns: []report.Column{
			{Name: "attacker_state"}, {Name: "cpu_company"},
			{Name: "drain_on_idle"}, {Name: "success", Unit: "fraction"},
		},
	}
	const trials = 40

	cases := []struct {
		sleeps  bool
		company bool
		drain   bool
	}{
		{false, false, true},
		{true, false, true},
		{true, true, true},
		{true, false, false},
	}
	camp := scenario.Campaign{Name: "E11"}
	for ci, c := range cases {
		spec := scenario.New(scenario.WithKind(scenario.Steering), scenario.WithTrials(trials),
			scenario.WithSeed(stats.DeriveSeed(seed, label(11, uint64(ci)))))
		if c.sleeps {
			spec = spec.With(scenario.WithSleepingAttacker())
		}
		// A busy peer process keeps the CPU from idling, which is equivalent
		// (from the allocator's point of view) to disabling the idle drain
		// while the attacker itself sleeps.
		if c.company || !c.drain {
			spec = spec.With(scenario.WithNoIdleDrain())
		}
		camp.Specs = append(camp.Specs, spec)
	}
	results, err := camp.Run(context.Background(), scenario.WithTrialOptions(opts...))
	if err != nil {
		return nil, err
	}
	for ci, res := range results {
		c := cases[ci]
		state := "active"
		if c.sleeps {
			state = "sleeping"
		}
		company := "alone"
		if c.company {
			company = "busy peer"
		}
		st := res.SteeringStats()
		t.AddRow(report.Str(state), report.Str(company), report.Strf("%v", c.drain), f3(st.FirstPage.Rate()))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per row", trials),
		"a sleeping attacker only survives if another runnable process keeps the CPU from idling (or drain-on-idle is off)")
	t.Expect(report.Expectation{
		Metric: "steering success with an active attacker",
		Row:    0, Col: 3,
		Paper: 1.0, Tol: 0.05,
		PaperText: "the attack requires an active adversary", Source: "Sec. V",
	})
	t.Expect(report.Expectation{
		Metric: "steering success once the attacker sleeps (cache drained)",
		Row:    1, Col: 3,
		Paper: 0.0, Tol: 0.05,
		PaperText: "\"page frame cache will be swapped out\"", Source: "Sec. V",
	})
	return t, nil
}
