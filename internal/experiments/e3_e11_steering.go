package experiments

import (
	"fmt"

	"explframe/internal/core"
	"explframe/internal/stats"
)

// steeringRate runs trials of one steering configuration on the parallel
// harness and returns the first-page-hit proportion.  The per-trial seeds
// derive from base.Seed, so a row's statistics are fixed by its seed alone.
func steeringRate(base core.SteeringConfig, seed uint64, trials int) (stats.Proportion, error) {
	base.Seed = seed
	var p stats.Proportion
	results, err := core.RunSteeringTrials(base, trials)
	if err != nil {
		return p, err
	}
	for _, res := range results {
		p.Observe(res.FirstPageHit)
	}
	return p, nil
}

// E3Steering sweeps the steering success rate over victim request size,
// noise level and CPU placement — the heart of Section V.
func E3Steering(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "attacker→victim frame steering success rate",
		Claim:   "Sec. V: \"the page frame that was unmapped by the adversarial process gets allocated to the victim process\" (same CPU, small request)",
		Headers: []string{"victim_pages", "noise_ops", "cpus", "success", "ci95"},
	}
	const trials = 40

	type case_ struct {
		pages    int
		noiseOps int
		cross    bool
	}
	cases := []case_{
		{1, 0, false}, {4, 0, false}, {16, 0, false}, {64, 0, false},
		{4, 50, false}, {4, 150, false}, {4, 400, false},
		{4, 0, true}, {16, 150, true},
	}
	for ci, c := range cases {
		cfg := core.DefaultSteeringConfig()
		cfg.Machine = smallMachine(seed)
		cfg.VictimRequestPages = c.pages
		if c.noiseOps > 0 {
			cfg.NoiseProcs = 2
			cfg.NoiseOps = c.noiseOps
		}
		cpus := "same"
		if c.cross {
			cfg.VictimCPU = 1
			cpus = "cross"
		}
		p, err := steeringRate(cfg, stats.DeriveSeed(seed, label(3, uint64(ci))), trials)
		if err != nil {
			return nil, err
		}
		lo, hi := p.WilsonCI(1.96)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c.pages), fmt.Sprint(c.noiseOps), cpus,
			f3(p.Rate()), fmt.Sprintf("[%s,%s]", f3(lo), f3(hi)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per row; success = victim's first-touched page received the hottest released frame", trials),
		"same-CPU/quiet steering is near deterministic; noise and cross-CPU placement defeat it")
	return t, nil
}

// E11ActiveWait isolates Section V's requirement that the attacker "must
// remain active rather than going into inactive state (sleeping)".
func E11ActiveWait(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "steering success: active vs sleeping attacker",
		Claim:   "Sec. V: \"the adversarial process must remain active ... since in that case the entire process state information including page frame cache will be swapped out\"",
		Headers: []string{"attacker_state", "cpu_company", "drain_on_idle", "success"},
	}
	const trials = 40

	type case_ struct {
		sleeps  bool
		company bool
		drain   bool
	}
	cases := []case_{
		{false, false, true},
		{true, false, true},
		{true, true, true},
		{true, false, false},
	}
	for ci, c := range cases {
		cfg := core.DefaultSteeringConfig()
		cfg.Machine = smallMachine(seed)
		cfg.Machine.DrainOnIdle = c.drain
		cfg.AttackerSleeps = c.sleeps
		if c.company {
			// A busy peer process keeps the CPU from idling, which is
			// equivalent (from the allocator's point of view) to disabling
			// the idle drain while the attacker itself sleeps.
			cfg.Machine.DrainOnIdle = false
		}
		p, err := steeringRate(cfg, stats.DeriveSeed(seed, label(11, uint64(ci))), trials)
		if err != nil {
			return nil, err
		}
		state := "active"
		if c.sleeps {
			state = "sleeping"
		}
		company := "alone"
		if c.company {
			company = "busy peer"
		}
		t.Rows = append(t.Rows, []string{state, company, fmt.Sprint(c.drain), f3(p.Rate())})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per row", trials),
		"a sleeping attacker only survives if another runnable process keeps the CPU from idling (or drain-on-idle is off)")
	return t, nil
}
