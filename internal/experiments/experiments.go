// Package experiments contains one driver per experiment in the
// reconstructed evaluation (E1–E15).  Each driver returns a Table that
// cmd/benchtab renders and bench_test.go wraps in testing.B benchmarks, so
// the paper's tables and figures regenerate from a single code path; the
// golden tests under testdata/golden pin every table's seed-1 output.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated experiment table/figure series.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E3").
	ID string
	// Title is a short experiment name.
	Title string
	// Claim quotes or paraphrases the paper sentence the experiment tests.
	Claim string
	// Headers and Rows hold the tabular series.
	Headers []string
	Rows    [][]string
	// Notes carries caveats (trial counts, seeds, model parameters).
	Notes []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "   note: %s\n", n)
	}
	return sb.String()
}

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(seed uint64) (*Table, error)
}

// All returns every experiment in order.
func All() []Runner {
	return []Runner{
		{"E1", "buddy allocator behaviour", E1Buddy},
		{"E2", "page frame cache self-reuse", E2SelfReuse},
		{"E3", "attacker-to-victim steering", E3Steering},
		{"E4", "rowhammer flip onset", E4HammerOnset},
		{"E5", "flip reproducibility", E5Reproducibility},
		{"E6", "end-to-end attack", E6EndToEnd},
		{"E7", "PFA on AES-128", E7PFAAES},
		{"E8", "baseline comparison", E8Baselines},
		{"E9", "DFA vs PFA", E9DFAvsPFA},
		{"E10", "PFA on PRESENT-80", E10PFAPresent},
		{"E11", "active vs sleeping attacker", E11ActiveWait},
		{"E12", "zone fallback under pressure", E12Zones},
		{"E13", "defences: TRR, many-sided, ECC", E13Defences},
		{"E14", "ablation: pcp LIFO vs FIFO", E14PCPPolicy},
		{"E15", "PFA across the cipher registry", E15PFAAllCiphers},
	}
}

// f2 formats a float with two decimals, f3 with three.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// label namespaces a stats.DeriveSeed label to one experiment: every
// experiment derives its sub-seeds as DeriveSeed(seed, label(exp, i)), so
// two experiments sharing a root seed can never share per-trial RNG streams
// (E6's baseline scenario must not re-run E13's "no defence" trials).
func label(exp, i uint64) uint64 { return exp<<16 | i }
