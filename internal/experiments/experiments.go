// Package experiments contains one driver per experiment in the
// reconstructed evaluation (E1–E18).  Each driver returns a typed
// report.Table (cells carry kinds and numeric values, columns carry units,
// expectations carry the paper's reported numbers) that cmd/benchtab and
// cmd/report render and bench_test.go wraps in testing.B benchmarks, so the
// paper's tables and figures regenerate from a single code path; the golden
// tests under testdata/golden pin every table's seed-1 text rendering.
package experiments

import (
	"explframe/internal/harness"
	"explframe/internal/report"
)

// Table is the typed experiment table; drivers build it with report's cell
// constructors and annotate it with paper expectations.
type Table = report.Table

// Runner is one experiment entry point.  Drivers accept execution options
// (harness.WithWorkers, harness.WithContext) and forward them to every
// trial pool they spin up; the options never influence the statistics, so
// one seed renders one table at any parallelism.
type Runner struct {
	ID   string
	Name string
	Run  func(seed uint64, opts ...harness.Option) (*Table, error)
}

// All returns every experiment in order.
func All() []Runner {
	return []Runner{
		{"E1", "buddy allocator behaviour", E1Buddy},
		{"E2", "page frame cache self-reuse", E2SelfReuse},
		{"E3", "attacker-to-victim steering", E3Steering},
		{"E4", "rowhammer flip onset", E4HammerOnset},
		{"E5", "flip reproducibility", E5Reproducibility},
		{"E6", "end-to-end attack", E6EndToEnd},
		{"E7", "PFA on AES-128", E7PFAAES},
		{"E8", "baseline comparison", E8Baselines},
		{"E9", "DFA vs PFA", E9DFAvsPFA},
		{"E10", "PFA on PRESENT-80", E10PFAPresent},
		{"E11", "active vs sleeping attacker", E11ActiveWait},
		{"E12", "zone fallback under pressure", E12Zones},
		{"E13", "defences: TRR, many-sided, ECC", E13Defences},
		{"E14", "ablation: pcp LIFO vs FIFO", E14PCPPolicy},
		{"E15", "PFA across the cipher registry", E15PFAAllCiphers},
		{"E16", "attack vs machine profile", E16Machines},
		{"E17", "DFA fault-model ladder", E17DFALadder},
		{"E18", "cache-probe techniques", E18CacheProbe},
	}
}

// f2 builds a two-decimal float cell, f3 a three-decimal one.
func f2(v float64) report.Cell { return report.Float(v, 2) }
func f3(v float64) report.Cell { return report.Float(v, 3) }

// label namespaces a stats.DeriveSeed label to one experiment: every
// experiment derives its sub-seeds as DeriveSeed(seed, label(exp, i)), so
// two experiments sharing a root seed can never share per-trial RNG streams
// (E6's baseline scenario must not re-run E13's "no defence" trials).
func label(exp, i uint64) uint64 { return exp<<16 | i }
