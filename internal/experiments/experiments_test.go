package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"explframe/internal/report"
)

// parseF parses a float cell from its canonical text and cross-checks the
// typed value riding along with it (the text is what the goldens pin, the
// value is what expectations score — they must agree to rounding).
func parseF(t *testing.T, c report.Cell) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(c.Text, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", c.Text, err)
	}
	if !c.Numeric() {
		t.Fatalf("cell %q parses as a float but is typed %v", c.Text, c.Kind)
	}
	if math.Abs(v-c.Value) > 0.51*cellQuantum(c.Text) {
		t.Fatalf("cell text %q disagrees with typed value %v", c.Text, c.Value)
	}
	return v
}

// cellQuantum returns the resolution of a formatted decimal ("0.075" -> 1e-3).
func cellQuantum(s string) float64 {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return 1
	}
	return math.Pow(10, -float64(len(s)-dot-1))
}

// All() must return every experiment exactly once, in order: IDs are
// "E1".."E18" with no gaps, duplicates or shuffles, and each runner is
// complete.  (The golden tests additionally assert each returned table
// carries its runner's ID.)
func TestAllRegistered(t *testing.T) {
	runners := All()
	if len(runners) != 18 {
		t.Fatalf("expected 18 experiments, got %d", len(runners))
	}
	seen := map[string]bool{}
	for i, r := range runners {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if want := fmt.Sprintf("E%d", i+1); r.ID != want {
			t.Fatalf("runner %d has id %s, want %s (IDs must be ordered)", i, r.ID, want)
		}
		if r.Run == nil || r.Name == "" {
			t.Fatalf("incomplete runner %+v", r)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID: "EX", Title: "demo", Claim: "c",
		Columns: report.Cols("a", "bb"),
		Rows: [][]report.Cell{
			{report.Int(1), report.Int(2)},
			{report.Int(333), report.Int(4)},
		},
		Notes: []string{"n"},
	}
	out := tb.Render()
	for _, want := range []string{"EX", "demo", "a", "bb", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// E1: fragmentation must stay in [0,1]; splits and coalesces must be
// monotone counters.
func TestE1Shape(t *testing.T) {
	tb, err := E1Buddy(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	var prevSplits, prevCoal float64
	for _, row := range tb.Rows {
		frag := parseF(t, row[5])
		if frag < 0 || frag > 1 {
			t.Fatalf("fragmentation %f out of range", frag)
		}
		s, c := parseF(t, row[3]), parseF(t, row[4])
		if s < prevSplits || c < prevCoal {
			t.Fatal("split/coalesce counters decreased")
		}
		prevSplits, prevCoal = s, c
	}
}

// E2: self-reuse must be ~1 for requests <= freed and non-increasing-ish
// beyond the cache's reach.
func TestE2Shape(t *testing.T) {
	tb, err := E2SelfReuse(1)
	if err != nil {
		t.Fatal(err)
	}
	first := parseF(t, tb.Rows[0][1])
	if first < 0.99 {
		t.Fatalf("1-page reuse = %f, want ~1", first)
	}
	// The largest request must not beat the smallest.
	last := parseF(t, tb.Rows[len(tb.Rows)-1][1])
	if last > first {
		t.Fatalf("reuse grew with request size: %f -> %f", first, last)
	}
}

// E3: quiet same-CPU steering must dominate cross-CPU (which must be ~0).
func TestE3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("9x40-trial steering sweep")
	}
	tb, err := E3Steering(1)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, row := range tb.Rows {
		key := row[0].Text + "/" + row[1].Text + "/" + row[2].Text
		rates[key] = parseF(t, row[3])
	}
	if rates["4/0/same"] < 0.8 {
		t.Fatalf("quiet same-CPU steering = %f, want > 0.8", rates["4/0/same"])
	}
	if rates["4/0/cross"] > 0.1 {
		t.Fatalf("cross-CPU steering = %f, want ~0", rates["4/0/cross"])
	}
	if rates["4/400/same"] > rates["4/0/same"] {
		t.Fatal("heavy noise did not degrade steering")
	}
}

// E7: entropy decreases with ciphertexts; recovery reaches 1 at the end.
func TestE7Shape(t *testing.T) {
	tb, err := E7PFAAES(1)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e9
	for _, row := range tb.Rows {
		e := parseF(t, row[1])
		if e > prev+1e-9 {
			t.Fatalf("entropy increased: %f -> %f", prev, e)
		}
		prev = e
	}
	last := tb.Rows[len(tb.Rows)-1]
	if parseF(t, last[1]) != 0 || parseF(t, last[2]) != 1 {
		t.Fatalf("final checkpoint not fully recovered: %v", last)
	}
}

// E10: PRESENT converges far faster than AES.
func TestE10Shape(t *testing.T) {
	tb, err := E10PFAPresent(1)
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	if parseF(t, last[1]) != 0 || parseF(t, last[2]) != 1 {
		t.Fatalf("PRESENT not recovered by 400 ciphertexts: %v", last)
	}
}

// E12: DMA fallbacks appear only after DMA32 drains; watermark reserve holds.
func TestE12Shape(t *testing.T) {
	tb, err := E12Zones(1)
	if err != nil {
		t.Fatal(err)
	}
	sawFallback := false
	for _, row := range tb.Rows {
		dma32Free := parseF(t, row[1])
		fallbacks := parseF(t, row[3])
		if fallbacks > 0 {
			sawFallback = true
			if dma32Free > 200 {
				t.Fatalf("DMA fallback while DMA32 still has %v free pages", dma32Free)
			}
		}
	}
	if !sawFallback {
		t.Fatal("pressure sweep never reached the DMA fallback")
	}
	last := tb.Rows[len(tb.Rows)-1]
	if parseF(t, last[1]) < 1 || parseF(t, last[2]) < 1 {
		t.Fatal("watermark reserve violated")
	}
}
