package experiments

import "testing"

// Every experiment table must carry the metadata DESIGN.md promises: an ID,
// a claim tying it to the paper, columns, rows, at least one note with the
// trial parameters, and at least one paper expectation for the results
// book.  E1/E2/E12 run fast enough to verify live; the heavyweight
// experiments are exercised by their Shape tests and benchtab.
func TestTableMetadataComplete(t *testing.T) {
	fast := []Runner{}
	for _, r := range All() {
		switch r.ID {
		case "E1", "E2", "E12":
			fast = append(fast, r)
		}
	}
	if len(fast) != 3 {
		t.Fatalf("fast experiment set incomplete: %d", len(fast))
	}
	for _, r := range fast {
		tb, err := r.Run(1)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if tb.ID != r.ID {
			t.Errorf("%s: table carries id %q", r.ID, tb.ID)
		}
		if tb.Title == "" || tb.Claim == "" {
			t.Errorf("%s: missing title or claim", r.ID)
		}
		if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
		if err := tb.Validate(); err != nil {
			t.Errorf("%s: %v", r.ID, err)
		}
		if len(tb.Notes) == 0 {
			t.Errorf("%s: no notes", r.ID)
		}
		if len(tb.Expectations) == 0 {
			t.Errorf("%s: no paper expectations", r.ID)
		}
		if _, err := tb.Score(); err != nil {
			t.Errorf("%s: scoring expectations: %v", r.ID, err)
		}
	}
}
