package experiments

import "testing"

// Every experiment table must carry the metadata DESIGN.md promises: an ID,
// a claim tying it to the paper, headers, rows, and at least one note with
// the trial parameters.  E1/E2/E12 run fast enough to verify live; the
// heavyweight experiments are exercised by their Shape tests and benchtab.
func TestTableMetadataComplete(t *testing.T) {
	fast := []Runner{}
	for _, r := range All() {
		switch r.ID {
		case "E1", "E2", "E12":
			fast = append(fast, r)
		}
	}
	if len(fast) != 3 {
		t.Fatalf("fast experiment set incomplete: %d", len(fast))
	}
	for _, r := range fast {
		tb, err := r.Run(1)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if tb.ID != r.ID {
			t.Errorf("%s: table carries id %q", r.ID, tb.ID)
		}
		if tb.Title == "" || tb.Claim == "" {
			t.Errorf("%s: missing title or claim", r.ID)
		}
		if len(tb.Headers) == 0 || len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
		for ri, row := range tb.Rows {
			if len(row) != len(tb.Headers) {
				t.Errorf("%s row %d: %d cells for %d headers", r.ID, ri, len(row), len(tb.Headers))
			}
		}
		if len(tb.Notes) == 0 {
			t.Errorf("%s: no notes", r.ID)
		}
	}
}
