package experiments

import (
	"context"
	"fmt"

	"explframe/internal/cipher/registry"
	"explframe/internal/harness"
	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/stats"
)

// E15PFAAllCiphers runs the persistent-fault key-recovery attack over every
// cipher in the registry with one generic analysis loop — the paper title's
// "block cipherS" generality made concrete and regression-testable.  Each
// row is one PFA-kind scenario.Spec: random keys, one random single-bit
// S-box fault per trial, recovery via the cipher-agnostic collector, and
// master-key completion (schedule inversion, plus one clean known pair
// where the schedule needs it) verified against the true key.
func E15PFAAllCiphers(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "PFA across the cipher registry (one generic collector, every victim)",
		Claim: "title: fault analysis of block cipherS — the persistent-fault pipeline runs on any registered SPN via its S-box/round metadata alone",
		Columns: []report.Column{
			{Name: "cipher"}, {Name: "table"}, {Name: "cells"},
			{Name: "recovered_frac", Unit: "fraction"}, {Name: "master_ok_frac", Unit: "fraction"},
			{Name: "cts_mean", Unit: "ciphertexts"}, {Name: "cts_p50", Unit: "ciphertexts"},
			{Name: "cts_max", Unit: "ciphertexts"},
		},
	}
	const trials = 16

	// The per-cipher seed domain keys on the cipher *name*, not its index
	// in the sorted registry: registering a new cipher must add a row
	// without re-randomizing the existing rows' trial streams (and their
	// golden numbers).
	camp := scenario.Campaign{Name: "E15"}
	for _, name := range registry.Names() {
		camp.Specs = append(camp.Specs, scenario.New(
			scenario.WithKind(scenario.PFA), scenario.WithCipher(name), scenario.WithTrials(trials),
			scenario.WithSeed(stats.DeriveSeed(stats.DeriveSeed(seed, label(15, 0)), fnv1a(name)))))
	}
	results, err := camp.Run(context.Background(), scenario.WithTrialOptions(opts...))
	if err != nil {
		return nil, err
	}

	for _, res := range results {
		name := res.Spec.Cipher
		c := registry.MustGet(name)
		st := res.PFAStats()
		mean, p50, max := report.Dash(), report.Dash(), report.Dash()
		if st.Ciphertexts.N() > 0 {
			mean = report.Float(st.Ciphertexts.Mean(), 0)
			p50 = report.Float(st.Ciphertexts.Quantile(0.5), 0)
			max = report.Float(st.Ciphertexts.Max(), 0)
		}
		ri := len(t.Rows)
		t.AddRow(
			report.Str(name),
			report.Strf("%dx%db", c.TableLen(), c.EntryBits()),
			report.Int(registry.Cells(c)),
			f2(st.Recovered.Rate()),
			f2(st.MasterOK.Rate()),
			mean, p50, max,
		)
		t.Expect(report.Expectation{
			Metric: fmt.Sprintf("%s: every trial recovers the master key", name),
			Row:    ri, Col: 4,
			Paper: 1.0, Tol: 0.05,
			PaperText: "fault analysis of block cipherS", Source: "title",
		})
	}
	// The AES data-complexity anchor only scores when at least one AES
	// trial recovered (the cts_mean cell is "-" otherwise).
	for ri, row := range t.Rows {
		if row[0].Text == "aes-128" && row[5].Numeric() {
			t.Expect(report.Expectation{
				Metric: "aes-128: mean ciphertexts to last-round key",
				Row:    ri, Col: 5,
				Paper: 2000, Tol: 250,
				PaperText: "~2000 faulty ciphertexts", Source: "[12] TCHES 2018",
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per cipher, random keys, random single-bit faults, known-fault recovery, budget 25x alphabet", trials),
		"one pfa.Collector drives every row: LastRoundCells/AssembleLastRoundKey/RecoverMaster come from the registry",
		"4-bit tables converge ~40x faster than AES's 8-bit table (coupon collector over 16 vs 256 values)")
	return t, nil
}

// fnv1a hashes a registry name to a stable 64-bit seed label; experiment
// drivers key per-name trial streams on it (E15 ciphers, E16 machines).
func fnv1a(s string) uint64 { return stats.FNV64(s) }
