package experiments

import (
	"testing"

	"explframe/internal/cipher/registry"
	"explframe/internal/harness"
)

// The bitsliced batch cores must be a pure performance substitution: forcing
// every registry batch down the scalar fallback has to reproduce
// byte-identical experiment tables.  E10 exercises the PFA route (collector
// observations batched through trace.Victim and the scenario trial loop);
// E17 exercises the DFA route (pairs batched through dfa.CollectPairs with
// transient fault masks).  Together with the per-cipher differential
// fuzzers, this pins the whole consumer chain, not just the cores.
func TestBitsliceScalarInvariance(t *testing.T) {
	runners := map[string]func(uint64, ...harness.Option) (*Table, error){
		"E10": E10PFAPresent,
		"E17": E17DFALadder,
	}
	if testing.Short() {
		delete(runners, "E17")
	}
	for name, run := range runners {
		bitsliced, err := run(7)
		if err != nil {
			t.Fatalf("%s bitsliced: %v", name, err)
		}
		prev := registry.SetScalarOnly(true)
		scalar, err := run(7)
		registry.SetScalarOnly(prev)
		if err != nil {
			t.Fatalf("%s scalar-forced: %v", name, err)
		}
		if bitsliced.Render() != scalar.Render() {
			t.Fatalf("%s table differs with bitslicing disabled:\n--- bitsliced ---\n%s--- scalar ---\n%s",
				name, bitsliced.Render(), scalar.Render())
		}
	}
}
