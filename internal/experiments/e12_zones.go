package experiments

import (
	"fmt"

	"explframe/internal/harness"
	"explframe/internal/mm"
	"explframe/internal/report"
)

// E12Zones sweeps allocation pressure and reports how the zonelist fallback
// distributes requests across zones as the preferred zone drains.
func E12Zones(seed uint64, _ ...harness.Option) (*Table, error) {
	cfg := mm.DefaultConfig()
	cfg.TotalBytes = 64 << 20
	cfg.MinWatermarkPages = 64
	pm, err := mm.New(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E12",
		Title: "zonelist fallback under allocation pressure",
		Claim: "Sec. IV: \"the allocation function will try to get the page frames from other zones in order as maintained in zonelist\"",
		Columns: []report.Column{
			{Name: "allocated_pages", Unit: "pages"}, {Name: "dma32_free", Unit: "pages"},
			{Name: "dma_free", Unit: "pages"}, {Name: "dma_fallbacks"}, {Name: "failed_watermark"},
		},
	}

	step := 2048
	total := 0
	for {
		served := 0
		for i := 0; i < step; i++ {
			if _, err := pm.AllocPages(0, 0); err != nil {
				break
			}
			served++
			total++
		}
		dma := pm.Stats(mm.ZoneDMA)
		dma32 := pm.Stats(mm.ZoneDMA32)
		t.AddRow(
			report.Int(total),
			report.Uint(pm.FreePagesInZone(mm.ZoneDMA32)),
			report.Uint(pm.FreePagesInZone(mm.ZoneDMA)),
			report.Uint(dma.Fallbacks),
			report.Uint(dma.FailedAllo+dma32.FailedAllo),
		)
		if served < step {
			break
		}
	}
	if err := pm.CheckInvariants(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"order-0 pressure on a 64 MiB machine (DMA32 preferred); DMA serves only after DMA32 hits its watermark",
		"both zones stop above their minimum watermark reserve",
		fmt.Sprintf("seed %d unused: the sweep is deterministic", seed))
	t.Expect(report.Qualitative(
		"allocations fall back across zones in zonelist order once the preferred zone drains",
		"mechanism claim, no reported figure", "Sec. IV"))
	return t, nil
}
