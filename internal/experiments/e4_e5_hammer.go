package experiments

import (
	"fmt"

	"explframe/internal/dram"
	"explframe/internal/harness"
	"explframe/internal/kernel"
	"explframe/internal/report"
	"explframe/internal/rowhammer"
	"explframe/internal/stats"
)

// hammerMachine builds a machine with a dense weak-cell population and a
// scaled-down activation threshold for hammer characterisation.
func hammerMachine(seed uint64, density float64) (kernel.Config, error) {
	cfg := kernel.DefaultConfig()
	cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
	cfg.FaultModel = dram.FaultModel{
		WeakCellDensity: density,
		BaseThreshold:   4000,
		ThresholdSpread: 1.5,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 21,
		FlipReliability: 0.98,
	}
	cfg.Seed = seed
	return cfg, nil
}

// E4HammerOnset measures templated flips as a function of the hammer budget
// for single- and double-sided strategies (Kim et al.'s onset curves, the
// basis of the paper's Section VI threat).
func E4HammerOnset(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "bit flips vs hammer count, single- vs double-sided",
		Claim: "Sec. I/VI: repeated row activation induces flips in adjacent rows; nothing flips below the onset threshold",
		Columns: []report.Column{
			{Name: "pairs_per_row", Unit: "activations"}, {Name: "flips_double", Unit: "flips"},
			{Name: "flips_single", Unit: "flips"}, {Name: "rows_scanned", Unit: "rows"},
		},
	}
	const region = 6 << 20
	budgets := []int{1000, 2000, 3000, 4500, 6000, 9000, 13000}
	// Every (budget, mode) cell characterises the same device — the machine
	// seed is fixed so the curves share one weak-cell layout — which makes
	// the cells independent of each other and safe to run on the harness.
	type cell struct {
		dFlips, sFlips int
		rows           uint64
	}
	cells, err := harness.RunTrials(seed, len(budgets), func(bi int, _ *stats.RNG) (cell, error) {
		var c cell
		for i, mode := range []rowhammer.Mode{rowhammer.DoubleSided, rowhammer.SingleSided} {
			mc, err := hammerMachine(seed, 8e-5)
			if err != nil {
				return c, err
			}
			m, err := kernel.NewMachine(mc)
			if err != nil {
				return c, err
			}
			proc, err := m.Spawn("attacker", 0)
			if err != nil {
				return c, err
			}
			base, err := proc.Mmap(region)
			if err != nil {
				return c, err
			}
			if err := proc.Touch(base, region); err != nil {
				return c, err
			}
			eng := rowhammer.New(rowhammer.Config{Mode: mode, PairHammerCount: budgets[bi]}, m, proc)
			flips, err := eng.Template(base, region)
			if err != nil {
				return c, err
			}
			if i == 0 {
				c.dFlips = len(flips)
				c.rows = eng.Stats().RowsScanned
			} else {
				c.sFlips = len(flips)
			}
		}
		return c, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	for bi, c := range cells {
		t.AddRow(report.Int(budgets[bi]), report.Int(c.dFlips), report.Int(c.sFlips), report.Uint(c.rows))
	}
	t.Notes = append(t.Notes,
		"6 MiB region, weak-cell density 8e-5, base threshold 4000 activations/window",
		"no flips below the onset; double-sided dominates single-sided at equal budgets (2x disturbance per pair)")
	t.Expect(report.Qualitative(
		"onset curve: flips appear only past an activation threshold, double-sided first",
		"Kim et al. onset shape, no absolute counts comparable across modules", "Sec. I/VI"))
	return t, nil
}

// E5Reproducibility re-hammers templated flip sites and reports how often
// the same bit flips again (Section VI: "high probability of getting bit
// flips in the same location").
func E5Reproducibility(seed uint64, _ ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "per-site flip reproducibility over repeated hammer runs",
		Claim: "Sec. VI: \"there is a high probability of getting bit flips in the same location when conducting Rowhammer on the same virtual address space\"",
		Columns: []report.Column{
			{Name: "site"}, {Name: "page_offset", Unit: "bytes"}, {Name: "bit"},
			{Name: "polarity"}, {Name: "reproduced/runs"},
		},
	}
	mc, err := hammerMachine(seed, 8e-5)
	if err != nil {
		return nil, err
	}
	m, err := kernel.NewMachine(mc)
	if err != nil {
		return nil, err
	}
	proc, err := m.Spawn("attacker", 0)
	if err != nil {
		return nil, err
	}
	const region = 4 << 20
	base, err := proc.Mmap(region)
	if err != nil {
		return nil, err
	}
	if err := proc.Touch(base, region); err != nil {
		return nil, err
	}
	eng := rowhammer.New(rowhammer.Config{Mode: rowhammer.DoubleSided, PairHammerCount: 10000, MaxFlips: 6}, m, proc)
	flips, err := eng.Template(base, region)
	if err != nil {
		return nil, err
	}
	if len(flips) == 0 {
		return nil, fmt.Errorf("E5: no flips templated")
	}
	const runs = 10
	total, hit := 0, 0
	for si, f := range flips {
		if si >= 6 {
			break
		}
		pattern := rowhammer.PatternOnes
		if f.From == 0 {
			pattern = rowhammer.PatternZeros
		}
		ok := 0
		for r := 0; r < runs; r++ {
			m.DRAM().Refresh() // separate windows, as real time spacing would
			re, err := eng.Reproduce(f, pattern)
			if err != nil {
				return nil, err
			}
			if re {
				ok++
			}
		}
		polarity := "1->0"
		if f.From == 0 {
			polarity = "0->1"
		}
		t.AddRow(
			report.Int(si), report.Int(f.ByteInPage), report.Int(int(f.Bit)), report.Str(polarity),
			report.Frac(ok, runs),
		)
		total += runs
		hit += ok
	}
	t.AddRow(report.Str("ALL"), report.Dash(), report.Dash(), report.Dash(),
		report.Strf("%d/%d (%.2f)", hit, total, float64(hit)/float64(total)))
	t.Notes = append(t.Notes,
		"each site re-armed (pattern rewrite) and re-hammered with the original aggressors",
		"reproducibility tracks the model's FlipReliability=0.98 per window")
	t.Expect(report.Expectation{
		Metric: "overall per-site reproduction rate",
		Row:    -1, Col: -1, Direct: float64(hit) / float64(total),
		Paper: 0.98, Tol: 0.02,
		PaperText: "\"high probability\" (model FlipReliability 0.98)", Source: "Sec. VI",
	})
	return t, nil
}
