package experiments

import (
	"context"
	"fmt"

	"explframe/internal/cache"
	"explframe/internal/harness"
	"explframe/internal/machine"
	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/stats"
)

// e18Budgets are the measurement budgets each probe technique is scored at:
// a starved budget that separates the techniques by temporal resolution,
// and a generous one at which every line-granular technique converges.
var e18Budgets = []int{512, 8192}

// e18Machines are the machine profiles the probe grid runs on — the two
// mappers (linear and XOR-folded) exercise both slice-hash families.
var e18Machines = []string{"default", "ddr4"}

// e18Noise is the background-interference probability every row runs under.
const e18Noise = 0.05

// E18CacheProbe scores every cache-probe technique against the AES T-table
// victim across both machine mappers and two measurement budgets: recovered
// first-round key nibbles, full-key rate, and bytes of information
// extracted per attack.  This is the cache-timing flank of the paper's
// threat model (Section II): the page frame cache steers the attacker onto
// the victim's frames, and the same physical co-location that enables
// Rowhammer gives an LLC attacker eviction-set congruence — Prime+Probe
// needs an order of magnitude more encryptions than Evict+Reload because it
// only sees a whole encryption's footprint per measurement, while
// Evict+Reload samples the targeted line at round granularity.  The
// page-cache channel is the contrast: a binary activity oracle that leaks
// bulk bytes but (at page granularity) essentially no key material.
func E18CacheProbe(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E18",
		Title: "cache-probe techniques vs measurement budget (AES T-tables, both mappers)",
		Claim: "Sec II threat model: physical co-location feeds cache-timing channels; round-granular Evict+Reload converges ~8x before Prime+Probe, and page-granular probing leaks bytes but no key nibbles",
		Columns: []report.Column{
			{Name: "technique"}, {Name: "machine"}, {Name: "mapper"},
			{Name: "budget", Unit: "measurements"},
			{Name: "nibbles", Unit: "of 16"}, {Name: "full_key_frac", Unit: "fraction"},
			{Name: "bytes_leaked", Unit: "bytes"}, {Name: "bit_err", Unit: "fraction"},
		},
	}
	const trials = 4

	// Row order and seed derivation key on (technique, machine, budget)
	// NAMES, not slice indices: adding a technique or a budget must not
	// re-randomize the existing rows' trial streams (the E15 convention).
	type rowKey struct {
		tech, mach string
		budget     int
	}
	var keys []rowKey
	camp := scenario.Campaign{Name: "E18"}
	for _, tech := range cache.Techniques() {
		for _, mach := range e18Machines {
			for _, budget := range e18Budgets {
				keys = append(keys, rowKey{tech, mach, budget})
				camp.Specs = append(camp.Specs, scenario.New(
					scenario.WithProfile(scenario.Profile(mach)), scenario.WithProbe(tech),
					scenario.WithProbeNoise(e18Noise), scenario.WithBudget(budget),
					scenario.WithTrials(trials),
					scenario.WithSeed(stats.DeriveSeed(stats.DeriveSeed(seed, label(18, 0)),
						fnv1a(fmt.Sprintf("%s/%s/b%d", tech, mach, budget))))))
			}
		}
	}
	results, err := camp.Run(context.Background(), scenario.WithTrialOptions(opts...))
	if err != nil {
		return nil, err
	}

	for i, res := range results {
		k := keys[i]
		st := res.CacheProbeStats()
		bitErr := report.Dash()
		if st.BitErrorRate.N() > 0 {
			bitErr = f3(st.BitErrorRate.Mean())
		}
		ri := len(t.Rows)
		t.AddRow(
			report.Str(k.tech),
			report.Str(k.mach),
			report.Str(machine.MustGet(k.mach).MapperName()),
			report.Int(k.budget),
			report.Float(st.Nibbles.Mean(), 1),
			f2(st.FullKey.Rate()),
			report.Float(st.BytesLeaked.Mean(), 1),
			bitErr,
		)
		switch {
		case k.tech == cache.TechEvictReload:
			// Round-granular reloads converge even at the starved budget,
			// on either mapper's slice hash.
			t.Expect(report.Expectation{
				Metric: fmt.Sprintf("evict-reload/%s/b%d: full first-round key", k.mach, k.budget),
				Row:    ri, Col: 5,
				Paper: 1.0, Tol: 0.05,
				PaperText: "a few hundred round-resolved reloads suffice for the AES first round",
				Source:    "PAPERS.md (Flush+Reload on AES T-tables)",
			})
		case k.tech == cache.TechPrimeProbe && k.budget == 8192:
			// Whole-encryption footprints need ~10x the measurements but
			// still recover the full key once the budget is generous.
			t.Expect(report.Expectation{
				Metric: fmt.Sprintf("prime-probe/%s/b%d: full first-round key", k.mach, k.budget),
				Row:    ri, Col: 5,
				Paper: 1.0, Tol: 0.05,
				PaperText: "thousands of encryptions recover the first-round key via Prime+Probe",
				Source:    "PAPERS.md (Osvik-Shamir-Tromer synchronous attacks)",
			})
		case k.tech == cache.TechPageCache:
			// Page granularity: every T-table access hits the same page, so
			// key-nibble recovery stays at chance while the activity channel
			// still moves bulk bytes.
			t.Expect(report.Expectation{
				Metric: fmt.Sprintf("page-cache/%s/b%d: nibbles stay at chance", k.mach, k.budget),
				Row:    ri, Col: 4,
				Paper: 1.0, Tol: 1.5,
				PaperText: "page-granular probing cannot resolve intra-page T-table indices",
				Source:    "PAPERS.md (page-cache side channels)",
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per row, noise %g per probe window; eviction sets inherit the machine's LLC associativity", trials, e18Noise),
		"nibbles is the mean correctly recovered first-round key nibbles (the high nibble of each of 16 key bytes)",
		"bytes_leaked is recovered key bits / 8 for the line-granular techniques, and binary-channel capacity times the window budget for page-cache",
		"bit_err is the page-cache activity channel's observed flip rate (dash for the line-granular techniques)",
		"the ddr4 rows run the XOR-folded slice hash; matching recovery on both mappers is the CacheView bijectivity argument made empirical")
	return t, nil
}
