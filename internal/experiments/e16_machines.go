package experiments

import (
	"context"
	"fmt"

	"explframe/internal/harness"
	"explframe/internal/machine"
	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/stats"
)

// E16Machines runs the full AES-128 attack across every registered machine
// profile — the machine axis opened by internal/machine made measurable.
// Each row is one Attack-kind scenario.Spec whose only variation is the
// machine name, executed through scenario.Campaign, so the table proves the
// profiles are selectable end-to-end and that the hardware actually moves
// the attack statistics: activation cost to the first usable flip
// (time-to-first-fault), steering odds and end-to-end key recovery all
// shift with geometry, mapper and mitigation.
func E16Machines(seed uint64, opts ...harness.Option) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "attack vs machine profile (geometry, address mapper, mitigations)",
		Claim: "Sec. II/V: the attack exploits platform-specific DRAM topology and kernel allocator behaviour — machine details decide attack quality",
		Columns: []report.Column{
			{Name: "machine"}, {Name: "mapper"}, {Name: "size", Unit: "MiB"},
			{Name: "site_found", Unit: "fraction"}, {Name: "steering", Unit: "fraction"},
			{Name: "key_recovered", Unit: "fraction"},
			{Name: "acts_to_site", Unit: "kacts"}, {Name: "avg_ciphertexts", Unit: "ciphertexts"},
		},
	}
	const trials = 5

	// The per-machine seed domain keys on the machine *name*, not its index
	// in the sorted registry: registering a new machine must add a row
	// without re-randomizing the existing rows' trial streams (and their
	// golden numbers) — the same contract E15 makes for ciphers.
	camp := scenario.Campaign{Name: "E16"}
	for _, name := range machine.Names() {
		camp.Specs = append(camp.Specs, scenario.New(
			scenario.WithProfile(scenario.Profile(name)),
			scenario.WithTrials(trials),
			scenario.WithSeed(stats.DeriveSeed(stats.DeriveSeed(seed, label(16, 0)), fnv1a(name)))))
	}
	results, err := camp.Run(context.Background(), scenario.WithTrialOptions(opts...))
	if err != nil {
		return nil, err
	}

	for _, res := range results {
		name := res.Spec.MachineName()
		ms := machine.MustGet(name)
		st := res.AttackStats()
		var toSite stats.Summary
		for _, rep := range res.Attack {
			if rep.SiteFound {
				toSite.Observe(float64(rep.TemplateHammer.Activations) / 1000)
			}
		}
		acts, avg := report.Dash(), report.Dash()
		if toSite.N() > 0 {
			acts = report.Float(toSite.Mean(), 0)
		}
		if st.Ciphertexts.N() > 0 {
			avg = report.Float(st.Ciphertexts.Mean(), 0)
		}
		t.AddRow(
			report.Str(name), report.Str(ms.MapperName()),
			report.Int(int(ms.Geometry.TotalBytes()>>20)),
			f2(st.Site.Rate()), f2(st.Steer.Rate()), f2(st.Key.Rate()),
			acts, avg,
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d AES-128 attack trials per machine; rows keyed by machine name, so new profiles append without drifting these numbers", trials),
		"acts_to_site = hammer activations (thousands) until templating found a usable flip — the time-to-first-fault proxy",
		"trr-hardened blocks double-sided hammering outright; larger/less-vulnerable modules pay in templating activations, not steering odds")
	t.Expect(report.Expectation{
		Metric: "TRR-hardened module defeats double-sided hammering",
		Row:    rowOf(t, "trr-hardened"), Col: 5,
		Paper: 0.0, Tol: 0.0,
		PaperText: "TRR ships in post-DDR3 parts; the paper's testbed is pre-TRR DDR3", Source: "Sec. II",
	})
	t.Expect(report.Expectation{
		Metric: "vulnerable module steers the attack page",
		Row:    rowOf(t, "fast"), Col: 4,
		Paper: 0.95, Tol: 0.05,
		PaperText: ">95% success steering the attack page", Source: "Sec. VII",
	})
	return t, nil
}

// rowOf locates the table row whose first cell names the machine; table
// rows follow registry order, which future registrations may reshuffle.
func rowOf(t *Table, name string) int {
	for i, r := range t.Rows {
		if len(r) > 0 && r[0].Text == name {
			return i
		}
	}
	return -1
}
