// Package service is the campaign-as-a-service layer behind cmd/explframed:
// a long-running HTTP server that accepts the same strict-JSON scenario and
// campaign specs the CLI loads, shards their trials across a bounded worker
// fleet through scenario.Campaign's context-aware fan-out, streams per-trial
// results as JSON lines, and checkpoints every completed (spec-hash,
// trial-index) outcome to an append-only journal.
//
// The journal plus the index-keyed per-trial RNG contract make campaigns
// resumable: a killed or restarted server replays the journal into a
// scenario.Checkpoint, merges the completed trials without recomputing
// them, and produces a byte-identical campaign table to an uninterrupted
// run.  Completed tables are persisted into the typed report store (the
// same JSON shape as docs/results.json), so the results book, bench
// baselines and any future client consume one execution engine.
//
// API surface (all JSON):
//
//	GET  /v1/healthz                   liveness probe
//	POST /v1/campaigns                 submit a campaign or single spec
//	GET  /v1/campaigns                 list campaign statuses
//	GET  /v1/campaigns/{id}            one campaign's status
//	GET  /v1/campaigns/{id}/stream     per-trial results as JSON lines
//	POST /v1/campaigns/{id}/cancel     cancel a running campaign
//	GET  /v1/campaigns/{id}/report     the completed campaign's table
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"

	"explframe/internal/harness"
	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/stats"
)

// Config sizes one Server.
type Config struct {
	// Journal is the append-only checkpoint file path.
	Journal string
	// Store is the directory completed campaign tables are persisted to.
	Store string
	// TrialWorkers bounds each spec's trial pool (0 = GOMAXPROCS).
	TrialWorkers int
	// SpecWorkers bounds how many member specs of one campaign run
	// concurrently (0 = 1: specs run in declaration order).
	SpecWorkers int
	// Log receives operational messages; nil uses the process default.
	Log *log.Logger
}

// CampaignStatus is the wire form of one campaign's state.
type CampaignStatus struct {
	// ID is the deterministic campaign id (resubmitting the same campaign
	// returns the same id).
	ID string `json:"id"`
	// Name is the campaign's declared name.
	Name string `json:"name"`
	// Specs counts member scenarios after dedup.
	Specs int `json:"specs"`
	// TotalTrials sums the member specs' trial counts.
	TotalTrials int `json:"total_trials"`
	// DoneTrials counts completed trials, resumed ones included.
	DoneTrials int `json:"done_trials"`
	// ResumedTrials counts trials merged from the journal instead of
	// recomputed when this server (re)started the campaign.
	ResumedTrials int `json:"resumed_trials"`
	// Status is "running", "done", "cancelled" or "failed".
	Status string `json:"status"`
	// Error carries the failure cause when Status is "failed".
	Error string `json:"error,omitempty"`
}

// StreamLine is one line of a campaign's JSONL stream: a completed trial
// (Trial >= 0, Outcome set), or the terminal status line (Trial -1, Status
// set) that ends the stream.
type StreamLine struct {
	// Campaign is the campaign id.
	Campaign string `json:"campaign"`
	// Spec is the member spec's index within the campaign.
	Spec int `json:"spec"`
	// SpecHash is the spec's canonical hash, in %016x form.
	SpecHash string `json:"spec_hash,omitempty"`
	// Trial is the trial index within the spec (-1 on the terminal line).
	Trial int `json:"trial"`
	// Outcome is the trial's result.
	Outcome *scenario.TrialOutcome `json:"outcome,omitempty"`
	// Status is set on the terminal line: "done", "cancelled" or "failed".
	Status string `json:"status,omitempty"`
	// Error carries the failure cause on a "failed" terminal line.
	Error string `json:"error,omitempty"`
}

// CampaignID derives the deterministic campaign id from the (deduplicated)
// campaign's canonical content: name plus every member spec's canonical
// Name().  Identical submissions map to the same id — the property journal
// resume and idempotent resubmission rest on.
func CampaignID(c scenario.Campaign) string {
	var b strings.Builder
	b.WriteString(c.Name)
	for _, s := range c.Specs {
		b.WriteByte('\n')
		b.WriteString(s.Name())
	}
	return fmt.Sprintf("c-%016x", stats.FNV64(b.String()))
}

// campaignRun is one campaign's live state inside the server.
type campaignRun struct {
	id    string
	camp  scenario.Campaign
	total int

	mu            sync.Mutex
	notify        chan struct{} // closed-and-replaced on every append/finish
	lines         [][]byte      // marshaled StreamLines, replayed + live
	status        string        // running | done | cancelled | failed
	errMsg        string
	done          int // completed trials, resumed included
	resumed       int
	userCancelled bool
	cancel        context.CancelFunc
	table         *report.Table
}

// appendLine adds one marshaled stream line and wakes the stream handlers.
func (cr *campaignRun) appendLine(l StreamLine) {
	data, err := json.Marshal(l)
	if err != nil {
		return // a TrialOutcome always marshals; defensive only
	}
	cr.mu.Lock()
	cr.lines = append(cr.lines, data)
	close(cr.notify)
	cr.notify = make(chan struct{})
	cr.mu.Unlock()
}

// finish moves the run to a terminal status and appends the terminal line.
func (cr *campaignRun) finish(status, errMsg string, table *report.Table) {
	cr.mu.Lock()
	cr.status = status
	cr.errMsg = errMsg
	cr.table = table
	cr.mu.Unlock()
	cr.appendLine(StreamLine{Campaign: cr.id, Spec: -1, Trial: -1, Status: status, Error: errMsg})
}

// snapshot returns the lines from offset on, whether the stream is
// complete once they are consumed, and the channel the next append closes.
func (cr *campaignRun) snapshot(offset int) (lines [][]byte, terminal bool, notify <-chan struct{}) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if offset < len(cr.lines) {
		lines = cr.lines[offset:]
	}
	return lines, cr.status != "running", cr.notify
}

// statusLocked assembles the wire status; callers hold no lock.
func (cr *campaignRun) currentStatus() CampaignStatus {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return CampaignStatus{
		ID: cr.id, Name: cr.camp.Name, Specs: len(cr.camp.Specs),
		TotalTrials: cr.total, DoneTrials: cr.done, ResumedTrials: cr.resumed,
		Status: cr.status, Error: cr.errMsg,
	}
}

// Server executes submitted campaigns and serves their streams, statuses
// and persisted reports.  It implements http.Handler.
type Server struct {
	cfg     Config
	logger  *log.Logger
	journal *Journal
	store   *report.Store
	mux     *http.ServeMux

	baseCtx  context.Context
	stop     context.CancelFunc
	done     chan struct{} // closed by Shutdown; ends open streams
	shutOnce sync.Once
	wg       sync.WaitGroup

	mu    sync.Mutex
	runs  map[string]*campaignRun
	order []string
}

// New opens the journal and store, replays any journaled campaigns —
// unfinished ones resume immediately, with completed trials merged from
// the checkpoint instead of recomputed — and returns the ready-to-serve
// server.
func New(cfg Config) (*Server, error) {
	logger := cfg.Log
	if logger == nil {
		logger = log.Default()
	}
	store, err := report.NewStore(cfg.Store)
	if err != nil {
		return nil, err
	}
	journal, states, err := OpenJournal(cfg.Journal)
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg, logger: logger, journal: journal, store: store,
		baseCtx: ctx, stop: stop, done: make(chan struct{}),
		runs: make(map[string]*campaignRun),
	}
	s.routes()
	for _, st := range states {
		cr := s.register(st.ID, st.Campaign)
		s.replayLines(cr, st)
		switch {
		case st.Done:
			cr.finish("done", "", nil) // table reloads lazily from the store
		case st.Cancelled:
			cr.finish("cancelled", "", nil)
		default:
			s.logger.Printf("resuming campaign %s (%d/%d trials journaled)", st.ID, st.Checkpoint.Trials(), cr.total)
			s.start(cr, st.Checkpoint)
		}
	}
	return s, nil
}

// register creates the in-memory run for a campaign (caller ensures the id
// is new).
func (s *Server) register(id string, camp scenario.Campaign) *campaignRun {
	total := 0
	for _, sp := range camp.Specs {
		total += sp.Trials
	}
	cr := &campaignRun{
		id: id, camp: camp, total: total,
		notify: make(chan struct{}), status: "running",
	}
	s.mu.Lock()
	s.runs[id] = cr
	s.order = append(s.order, id)
	s.mu.Unlock()
	return cr
}

// replayLines regenerates the stream lines of journaled trials in
// deterministic order (spec ascending, trial ascending) so a stream opened
// after a restart sees the full history.
func (s *Server) replayLines(cr *campaignRun, st *CampaignState) {
	seen := make(map[uint64]bool)
	for i, sp := range cr.camp.Specs {
		h := sp.Hash()
		if seen[h] {
			continue
		}
		seen[h] = true
		byTrial := st.Checkpoint[h]
		trials := make([]int, 0, len(byTrial))
		for t := range byTrial {
			trials = append(trials, t)
		}
		sort.Ints(trials)
		for _, t := range trials {
			out := byTrial[t]
			cr.appendLine(StreamLine{
				Campaign: cr.id, Spec: i, SpecHash: fmt.Sprintf("%016x", h),
				Trial: t, Outcome: &out,
			})
		}
		cr.mu.Lock()
		cr.done += len(trials)
		cr.resumed += len(trials)
		cr.mu.Unlock()
	}
}

// start launches the campaign's execution goroutine, resuming from cp.
func (s *Server) start(cr *campaignRun, cp scenario.Checkpoint) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	cr.mu.Lock()
	cr.cancel = cancel
	cr.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		results, err := cr.camp.Run(ctx,
			scenario.WithTrialEvents(),
			scenario.WithCheckpoint(cp),
			scenario.WithSpecWorkers(s.cfg.SpecWorkers),
			scenario.WithTrialOptions(harness.WithWorkers(s.cfg.TrialWorkers)),
			scenario.WithProgress(func(e scenario.Event) {
				if e.Trial < 0 || e.Outcome == nil {
					return
				}
				// Journal first, then stream: a line a client saw is always
				// checkpointed.  A failed append is survivable — the trial
				// is recomputed on resume — but must not go unnoticed.
				if err := s.journal.Trial(cr.id, e.Index, e.SpecHash, e.Trial, *e.Outcome); err != nil {
					s.logger.Printf("campaign %s: %v", cr.id, err)
				}
				cr.mu.Lock()
				cr.done++
				cr.mu.Unlock()
				cr.appendLine(StreamLine{
					Campaign: cr.id, Spec: e.Index, SpecHash: fmt.Sprintf("%016x", e.SpecHash),
					Trial: e.Trial, Outcome: e.Outcome,
				})
			}),
		)
		switch {
		case err == nil:
			table := scenario.CampaignTable(cr.camp.Name, results)
			if err := s.store.Save(cr.id, table); err != nil {
				s.logger.Printf("campaign %s: %v", cr.id, err)
				cr.finish("failed", err.Error(), nil)
				return
			}
			if err := s.journal.Done(cr.id); err != nil {
				s.logger.Printf("campaign %s: %v", cr.id, err)
			}
			cr.finish("done", "", table)
		case errors.Is(err, context.Canceled):
			cr.mu.Lock()
			user := cr.userCancelled
			cr.mu.Unlock()
			if user {
				if err := s.journal.Cancel(cr.id); err != nil {
					s.logger.Printf("campaign %s: %v", cr.id, err)
				}
				cr.finish("cancelled", "", nil)
			}
			// Server shutdown: no terminal marker — the journal stays
			// resumable and the next server picks the campaign back up.
		default:
			cr.finish("failed", err.Error(), nil)
		}
	}()
}

// run looks a campaign up by id.
func (s *Server) run(id string) (*campaignRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cr, ok := s.runs[id]
	return cr, ok
}

// Shutdown gracefully stops the server: in-flight trials are cancelled via
// context (running attacks abort between phases), execution goroutines are
// awaited, open streams are ended, and the journal is flushed and closed —
// the final checkpoint.  Unfinished campaigns keep no terminal marker, so
// a server restarted on the same journal resumes them without recomputing
// any journaled trial.
func (s *Server) Shutdown() error {
	var err error
	s.shutOnce.Do(func() {
		s.stop()
		s.wg.Wait()
		close(s.done)
		err = s.journal.Close()
	})
	return err
}

// routes installs the HTTP surface.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleReport)
	s.mux = mux
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleSubmit accepts a campaign (or single spec) in the same strict JSON
// the CLI loads.  Duplicate specs are removed (the sweep-frontend guard),
// the id is derived from the deduplicated content, and resubmitting an
// already-known campaign returns its current status instead of restarting
// it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	camp, err := scenario.ParseCampaign(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	camp = camp.Dedup()
	if err := camp.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := CampaignID(camp)
	if cr, ok := s.run(id); ok {
		writeJSON(w, http.StatusOK, cr.currentStatus())
		return
	}
	select {
	case <-s.done:
		writeError(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return
	default:
	}
	if err := s.journal.Campaign(id, camp); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	cr := s.register(id, camp)
	s.start(cr, nil)
	writeJSON(w, http.StatusCreated, cr.currentStatus())
}

// handleList returns every campaign's status in submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	statuses := make([]CampaignStatus, 0, len(ids))
	for _, id := range ids {
		if cr, ok := s.run(id); ok {
			statuses = append(statuses, cr.currentStatus())
		}
	}
	writeJSON(w, http.StatusOK, statuses)
}

// handleStatus returns one campaign's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	cr, ok := s.run(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, cr.currentStatus())
}

// handleStream serves the campaign's per-trial results as JSON lines:
// journaled history first, then live results as trials complete, ending
// with one terminal status line.  The stream also ends (without a terminal
// line) when the client disconnects or the server shuts down.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	cr, ok := s.run(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	offset := 0
	for {
		lines, terminal, notify := cr.snapshot(offset)
		for _, l := range lines {
			w.Write(l)
			w.Write([]byte{'\n'})
		}
		offset += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			_, more, _ := cr.snapshot(offset)
			if len(lines) == 0 && more {
				continue // terminal line appended between snapshots
			}
			if offsetCaughtUp(cr, offset) {
				return
			}
			continue
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}

// offsetCaughtUp reports whether the stream handler has written every line.
func offsetCaughtUp(cr *campaignRun, offset int) bool {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return offset >= len(cr.lines)
}

// handleCancel cancels a running campaign; cancelling a finished one is a
// no-op that returns its terminal status.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	cr, ok := s.run(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	cr.mu.Lock()
	cancel := cr.cancel
	if cr.status == "running" {
		cr.userCancelled = true
	}
	cr.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	writeJSON(w, http.StatusOK, cr.currentStatus())
}

// handleReport serves the completed campaign's persisted table (the
// docs/results.json wire shape).  In-memory tables are preferred; after a
// restart the table reloads from the store.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	cr, ok := s.run(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	cr.mu.Lock()
	status := cr.status
	table := cr.table
	cr.mu.Unlock()
	if status != "done" {
		writeError(w, http.StatusConflict, fmt.Errorf("campaign %s is %s, not done", cr.id, status))
		return
	}
	if table == nil {
		loaded, err := s.store.Load(cr.id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		table = loaded
		cr.mu.Lock()
		cr.table = table
		cr.mu.Unlock()
	}
	data, err := report.JSON(table)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}
