package service

import (
	"bytes"
	"context"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"explframe/internal/report"
	"explframe/internal/scenario"
)

// testServer boots a Server over httptest and returns it with a client.
// journal and store name files under dir so restarts can share them.
func testServer(t *testing.T, dir string) (*Server, *Client, func()) {
	t.Helper()
	srv, err := New(Config{
		Journal:      filepath.Join(dir, "journal.jsonl"),
		Store:        filepath.Join(dir, "store"),
		TrialWorkers: 2,
		Log:          log.New(discard{}, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	c := &Client{Base: hs.URL}
	return srv, c, func() {
		hs.Close()
		srv.Shutdown()
	}
}

// discard silences the server's operational log in tests.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// serviceCampaign is the cheap substrate-free fixture the server tests run:
// both registry-driven kinds, 9 trials total.
func serviceCampaign() scenario.Campaign {
	return scenario.Campaign{Name: "service-fixture", Specs: []scenario.Spec{
		scenario.New(scenario.WithKind(scenario.PFA), scenario.WithCipher("present-80"),
			scenario.WithTrials(5), scenario.WithSeed(11)),
		scenario.New(scenario.WithKind(scenario.DFA), scenario.WithTrials(4), scenario.WithSeed(7)),
	}}
}

// totalTrials sums a campaign's trial counts.
func totalTrials(c scenario.Campaign) int {
	n := 0
	for _, s := range c.Specs {
		n += s.Trials
	}
	return n
}

// Submit → stream → status → report: the happy path end to end, including
// idempotent resubmission and the stream's per-trial line count.
func TestServerSubmitStreamReport(t *testing.T) {
	_, c, stop := testServer(t, t.TempDir())
	defer stop()
	ctx := context.Background()
	camp := serviceCampaign()

	st, err := c.Submit(ctx, camp)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != CampaignID(camp) || st.TotalTrials != totalTrials(camp) {
		t.Fatalf("submit status: %+v", st)
	}

	var trialLines []StreamLine
	final, err := c.Stream(ctx, st.ID, func(l StreamLine) error {
		if l.Outcome == nil || l.Trial < 0 {
			t.Errorf("malformed trial line: %+v", l)
		}
		trialLines = append(trialLines, l)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "done" {
		t.Fatalf("terminal line: %+v", final)
	}
	if len(trialLines) != totalTrials(camp) {
		t.Fatalf("stream carried %d trial lines, want %d", len(trialLines), totalTrials(camp))
	}
	for _, l := range trialLines {
		if l.SpecHash != hashString(camp.Specs[l.Spec].Hash()) {
			t.Fatalf("line hash %s does not name spec %d", l.SpecHash, l.Spec)
		}
	}

	// A finished campaign's stream replays in full and terminates at once.
	n := 0
	final, err = c.Stream(ctx, st.ID, func(StreamLine) error { n++; return nil })
	if err != nil || final.Status != "done" || n != totalTrials(camp) {
		t.Fatalf("replayed stream: %d lines, final %+v, err %v", n, final, err)
	}

	// Resubmission is idempotent: same id, no restart, done status.
	st2, err := c.Submit(ctx, camp)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID || st2.Status != "done" || st2.DoneTrials != totalTrials(camp) {
		t.Fatalf("resubmit status: %+v", st2)
	}

	// The report equals the table the scenario layer folds directly.
	got, err := c.Report(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*scenario.Result, 0, len(camp.Specs))
	for _, spec := range camp.Specs {
		res, err := scenario.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	want := scenario.CampaignTable(camp.Name, results)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("served report diverged from direct fold:\n got %+v\nwant %+v", got, want)
	}

	// Listing shows the one campaign; unknown ids 404 cleanly.
	list, err := c.List(ctx)
	if err != nil || len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v, %v", list, err)
	}
	if _, err := c.Status(ctx, "c-nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown id error: %v", err)
	}
}

// hashString formats a spec hash the way stream lines and journals do.
func hashString(h uint64) string {
	b := make([]byte, 0, 16)
	const digits = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, digits[(h>>uint(shift))&0xf])
	}
	return string(b)
}

// The acceptance test: a campaign killed mid-run and restarted against the
// same journal must produce a byte-identical report with zero recomputed
// trials.  The kill is simulated deterministically — the resumed journal is
// the full run's campaign entry plus its first K trial lines, then half of
// the next line (the torn SIGKILL write) — so the assertion holds at any
// scheduling.
func TestServerResumeByteIdentical(t *testing.T) {
	ctx := context.Background()
	camp := serviceCampaign()
	id := CampaignID(camp)
	total := totalTrials(camp)

	// Reference run to completion on server 1.
	dir1 := t.TempDir()
	_, c1, stop1 := testServer(t, dir1)
	if _, err := c1.Submit(ctx, camp); err != nil {
		t.Fatal(err)
	}
	if final, err := c1.Stream(ctx, id, nil); err != nil || final.Status != "done" {
		t.Fatalf("reference run: %+v, %v", final, err)
	}
	refReport, err := c1.ReportBytes(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	stop1()

	refJournal, err := os.ReadFile(filepath.Join(dir1, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(refJournal)), "\n")
	// campaign entry + total trial lines + done marker.
	if len(lines) != total+2 {
		t.Fatalf("reference journal has %d lines, want %d", len(lines), total+2)
	}

	// Craft the killed server's journal: submission + first K trials + a
	// torn final write.
	const k = 4
	dir2 := t.TempDir()
	torn := strings.Join(lines[:1+k], "\n") + "\n" + lines[1+k][:len(lines[1+k])/2]
	if err := os.WriteFile(filepath.Join(dir2, "journal.jsonl"), []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Server 2 resumes the journaled campaign on boot.
	_, c2, stop2 := testServer(t, dir2)
	defer stop2()
	final, err := c2.Stream(ctx, id, nil)
	if err != nil || final.Status != "done" {
		t.Fatalf("resumed run: %+v, %v", final, err)
	}
	st, err := c2.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.ResumedTrials != k || st.DoneTrials != total {
		t.Fatalf("resume accounting: %+v (want %d resumed of %d)", st, k, total)
	}

	// Byte-identical persisted report, via HTTP and via the store file.
	gotReport, err := c2.ReportBytes(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotReport, refReport) {
		t.Fatalf("resumed report differs:\n got %s\nwant %s", gotReport, refReport)
	}
	f1, err := os.ReadFile(filepath.Join(dir1, "store", id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := os.ReadFile(filepath.Join(dir2, "store", id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1, f2) {
		t.Fatal("persisted store files differ between reference and resumed runs")
	}

	// Zero recomputation: the resumed journal holds exactly total trial
	// entries — k inherited plus total-k computed, none duplicated.
	states, _, err := replay(filepath.Join(dir2, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].TrialEntries != total {
		t.Fatalf("resumed journal trial entries = %d, want %d (no recomputation)", states[0].TrialEntries, total)
	}
}

// Graceful shutdown mid-campaign: Shutdown cancels in-flight trials,
// flushes the journal, and a server restarted on the same journal finishes
// the campaign without recomputing any journaled trial, producing the same
// report as an uninterrupted run.
func TestServerGracefulShutdownResume(t *testing.T) {
	ctx := context.Background()
	camp := serviceCampaign()
	id := CampaignID(camp)
	total := totalTrials(camp)
	dir := t.TempDir()

	srv1, c1, stop1 := testServer(t, dir)
	if _, err := c1.Submit(ctx, camp); err != nil {
		t.Fatal(err)
	}
	// Shut down while trials may still be in flight; any interleaving —
	// nothing journaled yet through everything journaled — must resume
	// correctly.
	time.Sleep(10 * time.Millisecond)
	if err := srv1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	stop1()

	srv2, c2, stop2 := testServer(t, dir)
	defer stop2()
	final, err := c2.Stream(ctx, id, nil)
	if err != nil || final.Status != "done" {
		t.Fatalf("resumed campaign: %+v, %v", final, err)
	}

	// No trial computed twice across both server lives.
	if err := srv2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	states, _, err := replay(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].TrialEntries != total {
		t.Fatalf("journal trial entries = %d, want exactly %d", states[0].TrialEntries, total)
	}
	if !states[0].Done {
		t.Fatal("done marker missing after resumed completion")
	}

	// The persisted table equals the direct scenario fold.
	stored, err := os.ReadFile(filepath.Join(dir, "store", id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*scenario.Result, 0, len(camp.Specs))
	for _, spec := range camp.Specs {
		res, err := scenario.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	want, err := report.JSON(scenario.CampaignTable(camp.Name, results))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(stored), bytes.TrimSpace(want)) {
		t.Fatal("resumed table differs from an uninterrupted fold")
	}
}

// Cancelling a running campaign reaches a cancelled terminal status that
// survives a restart, and its report endpoint refuses.
func TestServerCancel(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	srv1, c1, stop1 := testServer(t, dir)
	camp := scenario.Campaign{Name: "cancel-fixture", Specs: []scenario.Spec{
		scenario.New(scenario.WithKind(scenario.PFA), scenario.WithCipher("present-80"),
			scenario.WithTrials(400), scenario.WithSeed(3)),
	}}
	st, err := c1.Submit(ctx, camp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c1.Stream(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "cancelled" && final.Status != "done" {
		t.Fatalf("terminal status after cancel: %+v", final)
	}
	if _, err := c1.Report(ctx, st.ID); (final.Status == "cancelled") == (err == nil) {
		t.Fatalf("report availability inconsistent with status %q: %v", final.Status, err)
	}
	if err := srv1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	stop1()

	// The terminal marker persists: a restarted server neither reruns nor
	// forgets the campaign.
	_, c2, stop2 := testServer(t, dir)
	defer stop2()
	st2, err := c2.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Status != final.Status {
		t.Fatalf("status after restart = %q, want %q", st2.Status, final.Status)
	}
}

// Malformed submissions reject with 400s: broken JSON, unknown fields, and
// invalid specs.
func TestServerRejectsBadSubmissions(t *testing.T) {
	_, c, stop := testServer(t, t.TempDir())
	defer stop()
	ctx := context.Background()
	for _, body := range []string{
		"{not json",
		`{"specs": [{"kind": "pfa", "frobnicate": 1}]}`,
		`{"name": "empty", "specs": []}`,
		`{"kind": "attack", "cipher": "des-56", "trials": 1}`,
	} {
		data, err := c.do(ctx, "POST", "/v1/campaigns", []byte(body))
		if err == nil {
			t.Fatalf("submission %q accepted: %s", body, data)
		}
		if !strings.Contains(err.Error(), "400") {
			t.Fatalf("submission %q: want 400, got %v", body, err)
		}
	}
}
