package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"explframe/internal/scenario"
)

// journalEntry is one line of the append-only campaign journal.  Kind
// selects the arm: "campaign" records a submission (Campaign set), "trial"
// a completed trial (Spec/SpecHash/Trial/Outcome set), "done" and "cancel"
// a campaign's terminal state.  Lines are strict JSON — unknown fields
// reject on replay, the same contract as scenario spec files.
type journalEntry struct {
	Kind     string                 `json:"kind"`
	ID       string                 `json:"id"`
	Campaign *scenario.Campaign     `json:"campaign,omitempty"`
	Spec     int                    `json:"spec,omitempty"`
	SpecHash string                 `json:"spec_hash,omitempty"`
	Trial    int                    `json:"trial,omitempty"`
	Outcome  *scenario.TrialOutcome `json:"outcome,omitempty"`
}

// CampaignState is one campaign reconstructed from a journal replay.
type CampaignState struct {
	// ID is the deterministic campaign id (see CampaignID).
	ID string
	// Campaign is the submitted (deduplicated) campaign.
	Campaign scenario.Campaign
	// Checkpoint holds every journaled trial outcome, keyed by spec hash
	// then trial index — the resume state Campaign.Run merges.
	Checkpoint scenario.Checkpoint
	// TrialEntries counts raw trial lines (before keyed dedup): the
	// zero-recompute assertion compares it against the campaign's total
	// trial count.
	TrialEntries int
	// Done and Cancelled record a replayed terminal marker.
	Done, Cancelled bool
}

// Journal is the append-only checkpoint log behind explframed.  Every
// completed trial is one JSON line written with a single O_APPEND write, so
// a SIGKILL at any instant loses at most the line being written; Replay
// tolerates exactly one truncated trailing line and drops it (that trial is
// simply recomputed on resume).
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) the journal at path for appending
// and replays its existing entries into per-campaign states, returned in
// first-submission order.  A torn final line — the write a SIGKILL
// interrupted — is truncated away before appending resumes, so the next
// entry never glues onto the garbage.
func OpenJournal(path string) (*Journal, []*CampaignState, error) {
	states, validLen, err := replay(path)
	if err != nil {
		return nil, nil, err
	}
	if info, err := os.Stat(path); err == nil && info.Size() > validLen {
		if err := os.Truncate(path, validLen); err != nil {
			return nil, nil, fmt.Errorf("service: journal: dropping torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: journal: %w", err)
	}
	return &Journal{f: f, path: path}, states, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// replay parses the journal file (missing file = empty journal) into
// campaign states, returning alongside them the byte length of the valid
// prefix.  A parse failure on any line but the last is a corrupt journal
// and errors out; a partial final line — the SIGKILL signature — is
// dropped, and validLen excludes it so OpenJournal can truncate it away.
func replay(path string) (states []*CampaignState, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("service: journal: %w", err)
	}
	byID := make(map[string]*CampaignState)
	var order []*CampaignState

	// Split by hand to keep each line's starting offset: the valid prefix
	// length is the torn final line's start.
	type rawLine struct {
		text  []byte
		start int64
	}
	var lines []rawLine
	for pos := 0; pos < len(data); {
		end := bytes.IndexByte(data[pos:], '\n')
		lineEnd := len(data)
		next := len(data)
		if end >= 0 {
			lineEnd = pos + end
			next = lineEnd + 1
		}
		if text := bytes.TrimSpace(data[pos:lineEnd]); len(text) > 0 {
			lines = append(lines, rawLine{text: text, start: int64(pos)})
		}
		pos = next
	}
	validLen = int64(len(data))
	for i, line := range lines {
		var e journalEntry
		dec := json.NewDecoder(bytes.NewReader(line.text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			if i == len(lines)-1 {
				// Truncated final line: the write the kill interrupted.
				validLen = line.start
				break
			}
			return nil, 0, fmt.Errorf("service: journal %s line %d: %w", path, i+1, err)
		}
		switch e.Kind {
		case "campaign":
			if e.Campaign == nil || e.ID == "" {
				return nil, 0, fmt.Errorf("service: journal %s line %d: campaign entry missing id or body", path, i+1)
			}
			if byID[e.ID] == nil {
				st := &CampaignState{ID: e.ID, Campaign: *e.Campaign, Checkpoint: make(scenario.Checkpoint)}
				byID[e.ID] = st
				order = append(order, st)
			}
		case "trial":
			st := byID[e.ID]
			if st == nil {
				return nil, 0, fmt.Errorf("service: journal %s line %d: trial for unknown campaign %q", path, i+1, e.ID)
			}
			if e.Outcome == nil {
				return nil, 0, fmt.Errorf("service: journal %s line %d: trial entry missing outcome", path, i+1)
			}
			var hash uint64
			if _, err := fmt.Sscanf(e.SpecHash, "%016x", &hash); err != nil {
				return nil, 0, fmt.Errorf("service: journal %s line %d: bad spec hash %q", path, i+1, e.SpecHash)
			}
			st.Checkpoint.Add(hash, e.Trial, *e.Outcome)
			st.TrialEntries++
		case "done":
			if st := byID[e.ID]; st != nil {
				st.Done = true
			}
		case "cancel":
			if st := byID[e.ID]; st != nil {
				st.Cancelled = true
			}
		default:
			return nil, 0, fmt.Errorf("service: journal %s line %d: unknown entry kind %q", path, i+1, e.Kind)
		}
	}
	return order, validLen, nil
}

// append marshals e and writes it as one line (a single write syscall, so
// concurrent appenders never interleave and a kill never splits two lines).
func (j *Journal) append(e journalEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	return nil
}

// Campaign records a submission.
func (j *Journal) Campaign(id string, c scenario.Campaign) error {
	return j.append(journalEntry{Kind: "campaign", ID: id, Campaign: &c})
}

// Trial checkpoints one completed trial of campaign id: spec index and
// canonical spec hash identify the scenario, trial the index within it.
func (j *Journal) Trial(id string, spec int, specHash uint64, trial int, out scenario.TrialOutcome) error {
	return j.append(journalEntry{
		Kind: "trial", ID: id, Spec: spec,
		SpecHash: fmt.Sprintf("%016x", specHash), Trial: trial, Outcome: &out,
	})
}

// Done marks campaign id complete (its table is persisted in the store).
func (j *Journal) Done(id string) error {
	return j.append(journalEntry{Kind: "done", ID: id})
}

// Cancel marks campaign id cancelled by the user.
func (j *Journal) Cancel(id string) error {
	return j.append(journalEntry{Kind: "cancel", ID: id})
}

// Close flushes the journal to stable storage and closes it — the final
// checkpoint of a graceful shutdown.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	j.f = nil
	if syncErr != nil {
		return fmt.Errorf("service: journal close: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("service: journal close: %w", closeErr)
	}
	return nil
}
