package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"explframe/internal/report"
	"explframe/internal/scenario"
)

// Client talks to an explframed server.  The zero value is unusable; set
// Base to the server's root URL (e.g. "http://127.0.0.1:8750").
type Client struct {
	// Base is the server's root URL, without a trailing slash.
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

// httpClient returns the configured or default HTTP client.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// url joins the base URL with an endpoint path.
func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

// decodeError turns a non-2xx response into an error carrying the server's
// JSON error body when present.
func decodeError(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("service: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("service: %s", resp.Status)
}

// do issues a request and returns the response body, erroring on non-2xx.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("service: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, decodeError(resp, data)
	}
	return data, nil
}

// Submit posts a campaign and returns its status.  Submission is
// idempotent: resubmitting a campaign the server already knows returns the
// existing run's status instead of restarting it.
func (c *Client) Submit(ctx context.Context, camp scenario.Campaign) (CampaignStatus, error) {
	body, err := camp.EncodeJSON()
	if err != nil {
		return CampaignStatus{}, fmt.Errorf("service: %w", err)
	}
	return c.statusCall(ctx, http.MethodPost, "/v1/campaigns", body)
}

// Status fetches one campaign's status.
func (c *Client) Status(ctx context.Context, id string) (CampaignStatus, error) {
	return c.statusCall(ctx, http.MethodGet, "/v1/campaigns/"+id, nil)
}

// Cancel cancels a running campaign and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (CampaignStatus, error) {
	return c.statusCall(ctx, http.MethodPost, "/v1/campaigns/"+id+"/cancel", nil)
}

// statusCall issues a request whose response body is one CampaignStatus.
func (c *Client) statusCall(ctx context.Context, method, path string, body []byte) (CampaignStatus, error) {
	data, err := c.do(ctx, method, path, body)
	if err != nil {
		return CampaignStatus{}, err
	}
	var st CampaignStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return CampaignStatus{}, fmt.Errorf("service: decoding status: %w", err)
	}
	return st, nil
}

// List fetches every campaign's status in submission order.
func (c *Client) List(ctx context.Context) ([]CampaignStatus, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil)
	if err != nil {
		return nil, err
	}
	var sts []CampaignStatus
	if err := json.Unmarshal(data, &sts); err != nil {
		return nil, fmt.Errorf("service: decoding list: %w", err)
	}
	return sts, nil
}

// ErrStreamEnded reports a stream that closed (server shutdown or network
// loss) before delivering a terminal status line.  The campaign may still
// be running or resumable; callers typically reconnect or re-submit.
var ErrStreamEnded = errors.New("service: stream ended without terminal status")

// Stream consumes a campaign's JSONL stream, calling fn for every
// per-trial line, and returns the terminal line once the campaign reaches
// a terminal status.  A nil fn discards trial lines.  If fn returns an
// error the stream stops and that error is returned.
func (c *Client) Stream(ctx context.Context, id string, fn func(StreamLine) error) (StreamLine, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/campaigns/"+id+"/stream"), nil)
	if err != nil {
		return StreamLine{}, fmt.Errorf("service: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return StreamLine{}, fmt.Errorf("service: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return StreamLine{}, decodeError(resp, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l StreamLine
		if err := json.Unmarshal(line, &l); err != nil {
			return StreamLine{}, fmt.Errorf("service: decoding stream line: %w", err)
		}
		if l.Trial < 0 && l.Status != "" {
			return l, nil
		}
		if fn != nil {
			if err := fn(l); err != nil {
				return StreamLine{}, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return StreamLine{}, fmt.Errorf("service: reading stream: %w", err)
	}
	return StreamLine{}, ErrStreamEnded
}

// Report fetches a completed campaign's persisted table, validated through
// report.FromJSON — the same guarantee the store gives local loads.
func (c *Client) Report(ctx context.Context, id string) (*report.Table, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/report", nil)
	if err != nil {
		return nil, err
	}
	t, err := report.FromJSON(bytes.TrimSpace(data))
	if err != nil {
		return nil, fmt.Errorf("service: decoding report: %w", err)
	}
	return t, nil
}

// ReportBytes fetches the raw persisted table JSON — the byte-identity
// surface resume verification compares.
func (c *Client) ReportBytes(ctx context.Context, id string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/report", nil)
}
