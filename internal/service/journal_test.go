package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"explframe/internal/scenario"
)

// journalCampaign is the cheap two-spec fixture the journal tests record.
func journalCampaign() scenario.Campaign {
	return scenario.Campaign{Name: "journal-fixture", Specs: []scenario.Spec{
		scenario.New(scenario.WithKind(scenario.PFA), scenario.WithCipher("present-80"),
			scenario.WithTrials(3), scenario.WithSeed(11)),
		scenario.New(scenario.WithKind(scenario.Steering), scenario.WithTrials(2), scenario.WithSeed(2)),
	}}
}

// A journal written through the appenders must replay into the same
// campaign state: submission, per-trial checkpoints, terminal markers.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, states, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("fresh journal replayed %d states", len(states))
	}
	camp := journalCampaign()
	id := CampaignID(camp)
	if err := j.Campaign(id, camp); err != nil {
		t.Fatal(err)
	}
	h0 := camp.Specs[0].Hash()
	if err := j.Trial(id, 0, h0, 0, scenario.TrialOutcome{PFA: &scenario.PFATrial{MasterOK: true}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Trial(id, 0, h0, 2, scenario.TrialOutcome{PFA: &scenario.PFATrial{}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, states, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(states) != 1 {
		t.Fatalf("replayed %d states, want 1", len(states))
	}
	st := states[0]
	if st.ID != id || st.Done || st.Cancelled {
		t.Fatalf("state = %+v", st)
	}
	if st.Campaign.Name != camp.Name || len(st.Campaign.Specs) != 2 {
		t.Fatalf("campaign body lost: %+v", st.Campaign)
	}
	if st.TrialEntries != 2 || st.Checkpoint.Trials() != 2 {
		t.Fatalf("checkpoint = %d entries / %d trials", st.TrialEntries, st.Checkpoint.Trials())
	}
	if out, ok := st.Checkpoint[h0][0]; !ok || out.PFA == nil || !out.PFA.MasterOK {
		t.Fatalf("trial 0 outcome lost: %+v", out)
	}
	if err := j2.Done(id); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, states, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if !states[0].Done {
		t.Fatal("done marker lost on replay")
	}
}

// A truncated final line — the SIGKILL signature — is dropped; a corrupt
// line anywhere else is a hard error.
func TestJournalTruncationTolerance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	camp := journalCampaign()
	id := CampaignID(camp)
	if err := j.Campaign(id, camp); err != nil {
		t.Fatal(err)
	}
	if err := j.Trial(id, 0, camp.Specs[0].Hash(), 1, scenario.TrialOutcome{PFA: &scenario.PFATrial{}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(lines))
	}

	// Append half of a trial line: replay drops it and keeps the rest.
	truncated := data
	truncated = append(truncated, []byte(lines[1][:len(lines[1])/2])...)
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, states, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("truncated final line should be tolerated: %v", err)
	}
	j2.Close()
	if len(states) != 1 || states[0].TrialEntries != 1 {
		t.Fatalf("replay after truncation: %+v", states)
	}

	// The same garbage mid-file is corruption, not truncation.
	corrupt := []byte(lines[0] + "\n" + lines[1][:len(lines[1])/2] + "\n" + lines[1] + "\n")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt mid-file line accepted")
	}
}

// Structurally invalid entries — trials for unknown campaigns, missing
// outcomes, bad hashes, unknown kinds — reject on replay.
func TestJournalRejectsInvalidEntries(t *testing.T) {
	for _, tc := range []struct {
		name, line string
	}{
		{"unknown kind", `{"kind":"frobnicate","id":"c-1"}`},
		{"campaign without body", `{"kind":"campaign","id":"c-1"}`},
		{"trial for unknown campaign", `{"kind":"trial","id":"c-missing","spec_hash":"0000000000000001","trial":0,"outcome":{}}`},
		{"unknown field", `{"kind":"done","id":"c-1","extra":true}`},
	} {
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		// A valid trailing line keeps the bad one from being read as a
		// truncated final write.
		content := tc.line + "\n" + `{"kind":"done","id":"c-none"}` + "\n"
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenJournal(path); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// CampaignID is deterministic over content and sensitive to it.
func TestCampaignIDDeterministic(t *testing.T) {
	a := journalCampaign()
	b := journalCampaign()
	if CampaignID(a) != CampaignID(b) {
		t.Fatal("identical campaigns got different ids")
	}
	b.Specs = b.Specs[:1]
	if CampaignID(a) == CampaignID(b) {
		t.Fatal("different campaigns collided")
	}
	if !strings.HasPrefix(CampaignID(a), "c-") || len(CampaignID(a)) != len("c-")+16 {
		t.Fatalf("id shape: %q", CampaignID(a))
	}
}
