package machine

import (
	"fmt"
	"time"

	"explframe/internal/cipher/registry"
	"explframe/internal/stats"
)

// CipherBenchEntry is one cipher-core timing row of a trajectory point:
// nanoseconds per encryption through the per-block scalar path and through
// the batched (bitsliced) path, both over the same deterministic workload.
// The ratio between the two is the regression gate `benchtab
// -check-trajectory` holds the bitsliced cores to.
type CipherBenchEntry struct {
	// Cipher is the cipher's registry name (the lowercase canonical key,
	// as reported by registry.Names).
	Cipher string `json:"cipher"`
	// ScalarNsPerEncryption is the per-block cost of the scalar path.
	ScalarNsPerEncryption float64 `json:"scalar_ns_per_encryption"`
	// BitslicedNsPerEncryption is the per-block cost of the batch path at
	// full lane occupancy.
	BitslicedNsPerEncryption float64 `json:"bitsliced_ns_per_encryption"`
	// Lanes is the batch width the bitsliced figure was measured at.
	Lanes int `json:"lanes"`
}

// NewCipherCoreBench builds the deterministic full-batch workload that both
// MeasureCipherCores and BenchmarkEncryptBatchPerCipher time, so snapshot
// and benchmark cannot drift: a seed-1 keyed instance, the canonical table,
// and registry.BatchLanes random blocks with a matching destination batch.
func NewCipherCoreBench(c registry.Cipher) (inst registry.Instance, table []byte, dst, src [][]byte, err error) {
	rng := stats.NewRNG(1)
	key := make([]byte, c.KeyBytes())
	rng.Bytes(key)
	inst, err = c.New(key)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	bs := c.BlockSize()
	buf := make([]byte, 2*registry.BatchLanes*bs)
	src = make([][]byte, registry.BatchLanes)
	dst = make([][]byte, registry.BatchLanes)
	for i := range src {
		src[i] = buf[i*bs : (i+1)*bs]
		rng.Bytes(src[i])
		dst[i] = buf[(registry.BatchLanes+i)*bs : (registry.BatchLanes+i+1)*bs]
	}
	return inst, c.SBox(), dst, src, nil
}

// cipherTimingBlocks sizes one timing sample: enough blocks to amortise
// timer resolution on the sub-100ns bitsliced cores while keeping the
// slowest scalar core (PRESENT, microseconds per block) within tens of
// milliseconds.
const cipherTimingBlocks = 8192

// MeasureCipherCores times every registered cipher's encrypt core through
// the scalar path and through the full-width batch path, in registry order.
// The figures feed the cipher rows of a trajectory point; like the hammer
// timings they are host-dependent by nature, and it is the scalar-to-
// bitsliced ratio that CI gates on.
func MeasureCipherCores() ([]CipherBenchEntry, error) {
	names := registry.Names()
	out := make([]CipherBenchEntry, 0, len(names))
	for _, name := range names {
		c, ok := registry.Get(name)
		if !ok {
			return nil, fmt.Errorf("machine: cipher %q vanished from the registry", name)
		}
		inst, table, dst, src, err := NewCipherCoreBench(c)
		if err != nil {
			return nil, fmt.Errorf("machine: cipher %q bench setup: %w", name, err)
		}
		batches := cipherTimingBlocks / registry.BatchLanes
		// Warm each path once so one-time setup stays out of the sample.
		registry.ScalarEncryptBatch(inst, table, dst, src)
		start := time.Now()
		for i := 0; i < batches; i++ {
			registry.ScalarEncryptBatch(inst, table, dst, src)
		}
		scalarNs := float64(time.Since(start).Nanoseconds()) / float64(batches*registry.BatchLanes)
		inst.EncryptBatch(table, dst, src)
		start = time.Now()
		for i := 0; i < batches; i++ {
			inst.EncryptBatch(table, dst, src)
		}
		bitslicedNs := float64(time.Since(start).Nanoseconds()) / float64(batches*registry.BatchLanes)
		out = append(out, CipherBenchEntry{
			Cipher:                   name,
			ScalarNsPerEncryption:    scalarNs,
			BitslicedNsPerEncryption: bitslicedNs,
			Lanes:                    registry.BatchLanes,
		})
	}
	return out, nil
}
