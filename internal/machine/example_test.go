package machine_test

import (
	"fmt"

	"explframe/internal/dram"
	"explframe/internal/machine"
)

// ExampleNames shows the built-in machine catalogue every scenario profile
// name resolves against.
func ExampleNames() {
	for _, name := range machine.Names() {
		ms := machine.MustGet(name)
		fmt.Printf("%s: %d MiB, %s mapper\n", name, ms.Geometry.TotalBytes()>>20, ms.MapperName())
	}
	// Output:
	// ddr4: 512 MiB, xor-fold mapper
	// default: 256 MiB, linear mapper
	// fast: 32 MiB, linear mapper
	// server-1g: 1024 MiB, linear mapper
	// trr-hardened: 32 MiB, linear mapper
}

// ExampleSpec_KernelConfig builds an anonymous machine with options and
// lowers it onto the kernel layer — the path every scenario run takes.
func ExampleSpec_KernelConfig() {
	ms := machine.New("",
		machine.WithGeometry(dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 8, Rows: 2048, RowBytes: 4096}),
		machine.WithMapper(dram.MapperXORFold),
		machine.WithCPUs(4),
	)
	fmt.Println("valid:", ms.Validate() == nil)
	fmt.Println("handle:", ms.CanonicalName()[:7]+"...")
	kc := ms.KernelConfig(7)
	fmt.Printf("kernel: %d cpus, %s mapper, seed %d\n", kc.NumCPUs, kc.Mapper, kc.Seed)
	// Output:
	// valid: true
	// handle: custom-...
	// kernel: 4 cpus, xor-fold mapper, seed 7
}
