package machine

import (
	"runtime"
	"testing"

	"explframe/internal/dram"
)

// Steady-state HammerLoop must not allocate on any registered machine —
// the zero-alloc contract behind `benchtab -check-trajectory`.  The race
// detector allocates on its own, so under -race the measurement is only
// reported, not asserted.
func TestHammerLoopSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() && !RaceEnabled {
		// The warm-up hammers a few refresh windows per machine; keep the
		// full sweep out of -short except where CI already pays for -race.
		t.Skip("steady-state warm-up is slow; run without -short")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			allocs, err := HammerLoopSteadyStateAllocs(MustGet(name), 1)
			if err != nil {
				t.Fatal(err)
			}
			if RaceEnabled {
				t.Logf("%s: %.2f allocs/run under -race (not asserted)", name, allocs)
				return
			}
			if allocs != 0 {
				t.Errorf("steady-state HammerLoop allocates %.2f times per call; want 0", allocs)
			}
		})
	}
}

// Constructing a device for a multi-GiB machine must not materialise the
// module: the ISSUE pins < 64 MiB of heap growth for an 8 GiB geometry with
// the default weak-cell population and no writes.
func TestLargeDeviceConstructionIsSparse(t *testing.T) {
	g := dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 16, Rows: 1 << 16, RowBytes: 8192}
	if got := g.TotalBytes(); got != 8<<30 {
		t.Fatalf("geometry is %d bytes, want 8 GiB", got)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	d, err := dram.NewDevice(g, dram.DefaultFaultModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	grew := after.TotalAlloc - before.TotalAlloc
	if limit := uint64(64 << 20); grew >= limit {
		t.Errorf("NewDevice for 8 GiB allocated %d MiB; want < %d MiB", grew>>20, limit>>20)
	}
	if got := d.MaterializedBytes(); got != 0 {
		t.Errorf("untouched device materialised %d bytes of backing store", got)
	}
	// Sanity: the device still behaves like memory.
	pa := d.Size() - 1
	if v := d.ReadNoActivate(pa); v != 0 {
		t.Errorf("untouched byte reads %#x, want 0", v)
	}
	d.WriteNoActivate(pa, 0xA5)
	if v := d.ReadNoActivate(pa); v != 0xA5 {
		t.Errorf("read-back %#x, want 0xA5", v)
	}
}
