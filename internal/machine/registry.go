package machine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	mu       sync.RWMutex
	machines = map[string]Spec{}
)

// Register adds a machine under its Name.  It panics on an empty name,
// an invalid spec or a duplicate — registration conflicts are programming
// errors, exactly as in the cipher registry.
func Register(s Spec) {
	if s.Name == "" {
		panic("machine: cannot register an unnamed spec")
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("machine: registering invalid spec %q: %v", s.Name, err))
	}
	mu.Lock()
	defer mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, dup := machines[key]; dup {
		panic(fmt.Sprintf("machine: %q registered twice", s.Name))
	}
	machines[key] = s
}

// Get looks a machine up by name, case-insensitively.
func Get(name string) (Spec, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := machines[strings.ToLower(name)]
	return s, ok
}

// MustGet is Get for registered-by-construction names; it panics on a miss.
func MustGet(name string) Spec {
	s, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("machine: unknown machine %q", name))
	}
	return s
}

// Names returns the registered name of every machine (original spelling,
// not the lowercased lookup key), sorted case-insensitively.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(machines))
	for _, s := range machines {
		out = append(out, s.Name)
	}
	sort.Slice(out, func(i, j int) bool { return strings.ToLower(out[i]) < strings.ToLower(out[j]) })
	return out
}
