//go:build race

package machine

// RaceEnabled reports whether the binary was built with the race detector,
// whose instrumentation allocates on its own and invalidates the
// steady-state zero-alloc measurement.
const RaceEnabled = true
