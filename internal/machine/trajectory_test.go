package machine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"explframe/internal/cache"
	"explframe/internal/cipher/registry"
)

// sampleEntries fabricates a full registry-covering entry set with valid
// timings, for exercising the trajectory shape checks without timing
// anything.
func sampleEntries() []BenchEntry {
	var entries []BenchEntry
	for _, name := range Names() {
		ms := MustGet(name)
		entries = append(entries, BenchEntry{
			Machine: name, Mapper: ms.MapperName(), MiB: ms.Geometry.TotalBytes() >> 20,
			HammerNsPerActivation: 50, AttackTrialMs: 1000, KeyRecovered: true,
		})
	}
	return entries
}

// sampleCiphers fabricates a registry-covering cipher-core row set with
// valid timings, matching sampleEntries in spirit.
func sampleCiphers() []CipherBenchEntry {
	var rows []CipherBenchEntry
	for _, name := range registry.Names() {
		rows = append(rows, CipherBenchEntry{
			Cipher: name, ScalarNsPerEncryption: 500, BitslicedNsPerEncryption: 50, Lanes: 64,
		})
	}
	return rows
}

// sampleProbes fabricates a technique-covering cache-probe row set with
// valid timings.
func sampleProbes() []ProbeBenchEntry {
	var rows []ProbeBenchEntry
	for _, tech := range cache.Techniques() {
		rows = append(rows, ProbeBenchEntry{Technique: tech, NsPerMeasurement: 2000})
	}
	return rows
}

// The checked-in BENCH_trajectory.json must strictly parse, with its latest
// point covering the registered machine set — the gate behind
// `benchtab -check-trajectory`.
func TestCheckedInTrajectoryParses(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_trajectory.json"))
	if err != nil {
		t.Fatalf("missing bench trajectory (append with `go run ./cmd/benchtab -bench-machines BENCH_machines.json -append-trajectory BENCH_trajectory.json`): %v", err)
	}
	f, err := ParseTrajectoryFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) < 1 {
		t.Fatal("trajectory has no points")
	}
}

// AppendPoint starts a fresh file, appends in order, and the result
// round-trips through the strict parser.
func TestAppendPointGrowsFile(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	data, err := AppendPoint(nil, "test/amd64, 4 cpus", sampleEntries(), sampleCiphers(), sampleProbes(), t0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseTrajectoryFile(data)
	if err != nil {
		t.Fatalf("fresh file does not parse: %v", err)
	}
	if len(f.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(f.Points))
	}
	data, err = AppendPoint(data, "test/amd64, 4 cpus", sampleEntries(), sampleCiphers(), sampleProbes(), t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	f, err = ParseTrajectoryFile(data)
	if err != nil {
		t.Fatalf("extended file does not parse: %v", err)
	}
	if len(f.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(f.Points))
	}
	if f.Points[0].Time != "2026-08-01T12:00:00Z" {
		t.Errorf("history rewritten: first point now at %s", f.Points[0].Time)
	}
}

// Appending is refused when it would reorder or duplicate the tail — the
// file is append-only in time, not just in position.
func TestAppendPointRejectsNonMonotonic(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	data, err := AppendPoint(nil, "h", sampleEntries(), sampleCiphers(), sampleProbes(), t0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range []time.Time{t0, t0.Add(-time.Hour)} {
		if _, err := AppendPoint(data, "h", sampleEntries(), sampleCiphers(), sampleProbes(), ts); err == nil {
			t.Errorf("append at %v accepted; want monotonicity error", ts)
		}
	}
}

// The shape checks reject: wrong schema, empty files, out-of-order points,
// bad timestamps, empty entry sets, non-positive timings, and a latest
// point that misses or duplicates registered machines.
func TestParseTrajectoryFileRejects(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	good, err := AppendPoint(nil, "h", sampleEntries(), sampleCiphers(), sampleProbes(), t0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, doc, want string
	}{
		{"bad schema", `{"schema":99,"note":"","points":[]}`, "schema 99"},
		{"no points", `{"schema":1,"note":"","points":[]}`, "no points"},
		{"unknown field", `{"schema":1,"bogus":1,"points":[]}`, "bogus"},
		{"bad timestamp", strings.Replace(string(good), "2026-08-01T12:00:00Z", "yesterday-ish", 1), "bad timestamp"},
		{"stale machine", strings.Replace(string(good), `"machine": "default"`, `"machine": "retired"`, 1), "not registered"},
		{"zero timing", strings.Replace(string(good), `"hammer_ns_per_activation": 50`, `"hammer_ns_per_activation": 0`, 1), "non-positive"},
		{"stale cipher", strings.Replace(string(good), `"cipher": "aes-128"`, `"cipher": "rc4"`, 1), "not registered"},
		{"zero cipher timing", strings.Replace(string(good), `"bitsliced_ns_per_encryption": 50`, `"bitsliced_ns_per_encryption": 0`, 1), "non-positive"},
		{"zero lanes", strings.Replace(string(good), `"lanes": 64`, `"lanes": 0`, 1), "non-positive lane count"},
		{"stale technique", strings.Replace(string(good), `"technique": "prime-probe"`, `"technique": "flush-reload"`, 1), "not registered"},
		{"zero probe timing", strings.Replace(string(good), `"ns_per_measurement": 2000`, `"ns_per_measurement": 0`, 1), "non-positive"},
	}
	for _, tc := range cases {
		_, err := ParseTrajectoryFile([]byte(tc.doc))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Older points tolerate machines that have since left the registry and
	// may predate the cipher-core and probe rows entirely — append-only
	// history outlives registry changes — while the latest point must cover
	// all the current registries exactly.
	entries := sampleEntries()
	entries[0].Machine = "retired"
	hist := TrajectoryFile{Schema: TrajectorySchema, Note: trajectoryNote,
		Points: []TrajectoryPoint{
			{Time: "2026-07-01T12:00:00Z", Host: "h", Entries: entries},
			{Time: "2026-08-01T12:00:00Z", Host: "h", Entries: sampleEntries(), Ciphers: sampleCiphers(), Probes: sampleProbes()},
		}}
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTrajectoryFile(data); err != nil {
		t.Errorf("retired machine in a historical point rejected: %v", err)
	}
	// The same retired name in the LATEST point is a failure.
	hist.Points[0], hist.Points[1] = hist.Points[1], hist.Points[0]
	hist.Points[0].Time, hist.Points[1].Time = hist.Points[1].Time, hist.Points[0].Time
	data, err = json.MarshalIndent(hist, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTrajectoryFile(data); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Errorf("retired machine in latest point: error %v, want mention of \"not registered\"", err)
	}

	// A latest point with no cipher rows at all is equally a failure — the
	// bitsliced speedup gate has nothing to check without them.  Same for
	// missing probe rows.
	hist = TrajectoryFile{Schema: TrajectorySchema, Note: trajectoryNote,
		Points: []TrajectoryPoint{
			{Time: "2026-07-01T12:00:00Z", Host: "h", Entries: sampleEntries(), Ciphers: sampleCiphers(), Probes: sampleProbes()},
			{Time: "2026-08-01T12:00:00Z", Host: "h", Entries: sampleEntries()},
		}}
	data, err = json.MarshalIndent(hist, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTrajectoryFile(data); err == nil || !strings.Contains(err.Error(), "has no sample") {
		t.Errorf("latest point without cipher rows: error %v, want mention of \"has no sample\"", err)
	}
	hist.Points[1].Ciphers = sampleCiphers()
	data, err = json.MarshalIndent(hist, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTrajectoryFile(data); err == nil || !strings.Contains(err.Error(), "has no sample") {
		t.Errorf("latest point without probe rows: error %v, want mention of \"has no sample\"", err)
	}
}
