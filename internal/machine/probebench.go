package machine

import (
	"fmt"
	"runtime"
	"time"

	"explframe/internal/cache"
	"explframe/internal/cipher/registry"
	"explframe/internal/dram"
	"explframe/internal/stats"
)

// ProbeBenchEntry is one cache-probe timing row of a trajectory point: the
// cost of one probe measurement window (prime/evict, victim encryption,
// probe/reload) on the default machine.  Like the hammer and cipher rows
// the absolute figure is host-dependent; what `benchtab -check-trajectory`
// gates on is the zero-alloc steady-state contract next to it.
type ProbeBenchEntry struct {
	// Technique is the probe technique's registered name (cache.Techniques).
	Technique string `json:"technique"`
	// NsPerMeasurement is the cost of one Attack.Step call.
	NsPerMeasurement float64 `json:"ns_per_measurement"`
}

// NewProbeBench builds the deterministic probe workload MeasureProbeLoops,
// ProbeLoopSteadyStateAllocs and BenchmarkPrimeProbe all share, so snapshot,
// gate and benchmark cannot drift: the default machine's mapper under its
// default slice hash, a seed-1 AES-128 victim, and the technique's default
// probe configuration.
func NewProbeBench(technique string) (*cache.Attack, error) {
	ms := MustGet("default")
	mapper, err := dram.NewNamedMapper(ms.MapperName(), ms.Geometry)
	if err != nil {
		return nil, err
	}
	view, err := cache.NewView(mapper, cache.DefaultGeometry(ms.CPUs), cache.DefaultSliceHash(ms.MapperName()))
	if err != nil {
		return nil, err
	}
	cfg := cache.ProbeConfig{Technique: technique, Budget: 1, Noise: 0.05}
	return cache.NewAttack(view, registry.MustGet("aes-128"), cfg, stats.NewRNG(1))
}

// probeWarmupSteps sizes the warm-up burst: enough measurement windows that
// the LLC sets, the page-cache bitset and every accumulator have reached
// their steady working state.
const probeWarmupSteps = 64

// probeTimingSteps sizes one timing sample — each Step is a full probe
// window (hundreds of simulated memory accesses), so a few thousand keep
// timing all techniques under a second.
const probeTimingSteps = 2048

// probeSteadyStateRuns is how many measured bursts the allocation count is
// averaged over, mirroring the hammer-loop gate.
const probeSteadyStateRuns = 10

// MeasureProbeLoops times one probe measurement window for every registered
// technique, in cache.Techniques order.  The figures feed the probe rows of
// a trajectory point.
func MeasureProbeLoops() ([]ProbeBenchEntry, error) {
	techs := cache.Techniques()
	out := make([]ProbeBenchEntry, 0, len(techs))
	for _, tech := range techs {
		atk, err := NewProbeBench(tech)
		if err != nil {
			return nil, fmt.Errorf("machine: probe %q bench setup: %w", tech, err)
		}
		for i := 0; i < probeWarmupSteps; i++ {
			atk.Step()
		}
		start := time.Now()
		for i := 0; i < probeTimingSteps; i++ {
			atk.Step()
		}
		out = append(out, ProbeBenchEntry{
			Technique:        tech,
			NsPerMeasurement: float64(time.Since(start).Nanoseconds()) / probeTimingSteps,
		})
	}
	return out, nil
}

// ProbeLoopSteadyStateAllocs warms one technique's probe attack past its
// one-time allocations (eviction sets, accumulators) and returns the average
// number of heap allocations per steady-state burst of Step calls.  The
// contract mirrors HammerLoopSteadyStateAllocs: exactly zero, or a
// measurement-budget sweep drowns in garbage-collector work.
//
// Meaningless under the race detector; callers gate on RaceEnabled.
func ProbeLoopSteadyStateAllocs(technique string) (float64, error) {
	atk, err := NewProbeBench(technique)
	if err != nil {
		return 0, err
	}
	for i := 0; i < probeWarmupSteps; i++ {
		atk.Step()
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < probeSteadyStateRuns; i++ {
		for j := 0; j < probeTimingSteps; j++ {
			atk.Step()
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / probeSteadyStateRuns, nil
}
