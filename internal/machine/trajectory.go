package machine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"explframe/internal/cache"
	"explframe/internal/cipher/registry"
)

// TrajectorySchema is the current BENCH_trajectory.json schema version.
const TrajectorySchema = 1

// TrajectoryPoint is one timestamped performance sample: the full set of
// per-machine bench entries measured in a single `benchtab -bench-machines
// -append-trajectory` run.
type TrajectoryPoint struct {
	// Time is the sample time, RFC 3339 in UTC.
	Time string `json:"time"`
	// Host describes the sampling machine (GOOS/GOARCH, CPU count).
	Host string `json:"host"`
	// Entries holds one sample per machine profile registered at the time
	// the point was taken, in the same shape as BENCH_machines.json.
	Entries []BenchEntry `json:"entries"`
	// Ciphers holds one cipher-core timing sample per cipher registered at
	// the time the point was taken (scalar vs bitsliced ns/encryption).
	// Points predating the bitsliced cores omit the field; the latest point
	// must carry it and cover the cipher registry exactly.
	Ciphers []CipherBenchEntry `json:"ciphers,omitempty"`
	// Probes holds one cache-probe timing sample per registered probe
	// technique (ns per measurement window on the default machine).  Points
	// predating the cache layer omit the field; the latest point must carry
	// it and cover cache.Techniques exactly.
	Probes []ProbeBenchEntry `json:"probes,omitempty"`
}

// TrajectoryFile is the append-only performance history: where
// BENCH_machines.json is a single mutable snapshot, the trajectory keeps
// every appended point so regressions show up as a bend in the curve
// rather than silently replacing the baseline.
type TrajectoryFile struct {
	// Schema is TrajectorySchema at emission time.
	Schema int `json:"schema"`
	// Note records how to extend the file.
	Note string `json:"note"`
	// Points is the append-only history, oldest first.
	Points []TrajectoryPoint `json:"points"`
}

// trajectoryNote is written into fresh trajectory files.
const trajectoryNote = "append-only; extend with: go run ./cmd/benchtab -bench-machines BENCH_machines.json -append-trajectory BENCH_trajectory.json"

// ParseTrajectoryFile strictly decodes and shape-checks a trajectory
// document: known schema, at least one point, strictly increasing RFC 3339
// timestamps, and non-empty entries with positive timings throughout.  The
// LATEST point must cover exactly the currently registered machine set AND
// the currently registered cipher set (its cipher-core timing rows) AND the
// registered probe-technique set (its cache-probe rows) — that is the
// regression gate `benchtab -check-trajectory` runs in CI.  Older points
// are historical: they may name machines that have since been renamed or
// removed, or predate the cipher or probe rows entirely (append-only files
// outlive the registry), so only their internal shape is checked.
func ParseTrajectoryFile(data []byte) (TrajectoryFile, error) {
	f, err := parseTrajectoryHistory(data)
	if err != nil {
		return TrajectoryFile{}, err
	}
	var errs []error
	last := f.Points[len(f.Points)-1]
	if err := checkCoversRegistry(last); err != nil {
		errs = append(errs, err)
	}
	if err := checkCoversCipherRegistry(last); err != nil {
		errs = append(errs, err)
	}
	if err := checkCoversProbeTechniques(last); err != nil {
		errs = append(errs, err)
	}
	if err := errors.Join(errs...); err != nil {
		return TrajectoryFile{}, fmt.Errorf("machine: trajectory file invalid: latest point: %w", err)
	}
	return f, nil
}

// parseTrajectoryHistory decodes and shape-checks everything except the
// latest-point registry coverage — the parse AppendPoint needs, since the
// point it is about to add becomes the latest.
func parseTrajectoryHistory(data []byte) (TrajectoryFile, error) {
	var f TrajectoryFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return TrajectoryFile{}, fmt.Errorf("machine: decode trajectory file: %w", err)
	}
	var errs []error
	if f.Schema != TrajectorySchema {
		errs = append(errs, fmt.Errorf("schema %d, want %d", f.Schema, TrajectorySchema))
	}
	if len(f.Points) == 0 {
		errs = append(errs, errors.New("no points"))
	}
	var prev time.Time
	for i, p := range f.Points {
		ts, err := time.Parse(time.RFC3339, p.Time)
		if err != nil {
			errs = append(errs, fmt.Errorf("point %d: bad timestamp %q: %v", i, p.Time, err))
		} else {
			if i > 0 && !ts.After(prev) {
				errs = append(errs, fmt.Errorf("point %d: timestamp %q not after point %d (%q) — the file is append-only",
					i, p.Time, i-1, f.Points[i-1].Time))
			}
			prev = ts
		}
		if len(p.Entries) == 0 {
			errs = append(errs, fmt.Errorf("point %d: no entries", i))
		}
		for j, e := range p.Entries {
			if e.Machine == "" {
				errs = append(errs, fmt.Errorf("point %d entry %d: empty machine name", i, j))
			}
			if e.HammerNsPerActivation <= 0 || e.AttackTrialMs <= 0 {
				errs = append(errs, fmt.Errorf("point %d entry %d (%s): non-positive timings (%g ns/act, %g ms)",
					i, j, e.Machine, e.HammerNsPerActivation, e.AttackTrialMs))
			}
		}
		for j, e := range p.Ciphers {
			if e.Cipher == "" {
				errs = append(errs, fmt.Errorf("point %d cipher row %d: empty cipher name", i, j))
			}
			if e.ScalarNsPerEncryption <= 0 || e.BitslicedNsPerEncryption <= 0 {
				errs = append(errs, fmt.Errorf("point %d cipher row %d (%s): non-positive timings (%g scalar ns, %g bitsliced ns)",
					i, j, e.Cipher, e.ScalarNsPerEncryption, e.BitslicedNsPerEncryption))
			}
			if e.Lanes <= 0 {
				errs = append(errs, fmt.Errorf("point %d cipher row %d (%s): non-positive lane count %d", i, j, e.Cipher, e.Lanes))
			}
		}
		for j, e := range p.Probes {
			if e.Technique == "" {
				errs = append(errs, fmt.Errorf("point %d probe row %d: empty technique name", i, j))
			}
			if e.NsPerMeasurement <= 0 {
				errs = append(errs, fmt.Errorf("point %d probe row %d (%s): non-positive timing (%g ns/measurement)",
					i, j, e.Technique, e.NsPerMeasurement))
			}
		}
	}
	if err := errors.Join(errs...); err != nil {
		return TrajectoryFile{}, fmt.Errorf("machine: trajectory file invalid: %w", err)
	}
	return f, nil
}

// checkCoversRegistry verifies a point samples exactly the registered
// machine set — no stale names, no missing profiles, no duplicates.
func checkCoversRegistry(p TrajectoryPoint) error {
	var errs []error
	sampled := make(map[string]bool, len(p.Entries))
	for _, e := range p.Entries {
		if sampled[e.Machine] {
			errs = append(errs, fmt.Errorf("machine %q sampled twice", e.Machine))
		}
		sampled[e.Machine] = true
		if _, ok := Get(e.Machine); !ok {
			errs = append(errs, fmt.Errorf("machine %q is not registered", e.Machine))
		}
	}
	for _, name := range Names() {
		if !sampled[name] {
			errs = append(errs, fmt.Errorf("registered machine %q has no sample", name))
		}
	}
	return errors.Join(errs...)
}

// checkCoversCipherRegistry verifies a point's cipher rows sample exactly
// the registered cipher set — no stale names, no missing ciphers, no
// duplicates.  Only the latest point is held to this (older points predate
// the cipher rows or a registry change).
func checkCoversCipherRegistry(p TrajectoryPoint) error {
	var errs []error
	sampled := make(map[string]bool, len(p.Ciphers))
	for _, e := range p.Ciphers {
		if sampled[e.Cipher] {
			errs = append(errs, fmt.Errorf("cipher %q sampled twice", e.Cipher))
		}
		sampled[e.Cipher] = true
		if _, ok := registry.Get(e.Cipher); !ok {
			errs = append(errs, fmt.Errorf("cipher %q is not registered", e.Cipher))
		}
	}
	for _, name := range registry.Names() {
		if !sampled[name] {
			errs = append(errs, fmt.Errorf("registered cipher %q has no sample", name))
		}
	}
	return errors.Join(errs...)
}

// checkCoversProbeTechniques verifies a point's cache-probe rows sample
// exactly the registered probe-technique set — no stale names, no missing
// techniques, no duplicates.  Only the latest point is held to this (older
// points predate the cache layer or a technique change).
func checkCoversProbeTechniques(p TrajectoryPoint) error {
	var errs []error
	sampled := make(map[string]bool, len(p.Probes))
	for _, e := range p.Probes {
		if sampled[e.Technique] {
			errs = append(errs, fmt.Errorf("probe technique %q sampled twice", e.Technique))
		}
		sampled[e.Technique] = true
		if !cache.KnownTechnique(e.Technique) {
			errs = append(errs, fmt.Errorf("probe technique %q is not registered", e.Technique))
		}
	}
	for _, name := range cache.Techniques() {
		if !sampled[name] {
			errs = append(errs, fmt.Errorf("registered probe technique %q has no sample", name))
		}
	}
	return errors.Join(errs...)
}

// AppendPoint extends the trajectory in data (or starts a fresh file when
// data is empty) with one point carrying the given machine bench entries,
// cipher-core timing rows and cache-probe timing rows, stamped now.  The
// existing history is never rewritten: points only grow at the tail, and a
// timestamp at or before the last point is rejected rather than reordered.
func AppendPoint(data []byte, host string, entries []BenchEntry, ciphers []CipherBenchEntry, probes []ProbeBenchEntry, now time.Time) ([]byte, error) {
	f := TrajectoryFile{Schema: TrajectorySchema, Note: trajectoryNote}
	if len(data) > 0 {
		parsed, err := parseTrajectoryHistory(data)
		if err != nil {
			return nil, err
		}
		f = parsed
	}
	if len(entries) == 0 {
		return nil, errors.New("machine: refusing to append a point with no entries")
	}
	p := TrajectoryPoint{Time: now.UTC().Format(time.RFC3339), Host: host, Entries: entries, Ciphers: ciphers, Probes: probes}
	if err := checkCoversRegistry(p); err != nil {
		return nil, fmt.Errorf("machine: new trajectory point: %w", err)
	}
	if err := checkCoversCipherRegistry(p); err != nil {
		return nil, fmt.Errorf("machine: new trajectory point: %w", err)
	}
	if err := checkCoversProbeTechniques(p); err != nil {
		return nil, fmt.Errorf("machine: new trajectory point: %w", err)
	}
	if n := len(f.Points); n > 0 {
		last, err := time.Parse(time.RFC3339, f.Points[n-1].Time)
		if err == nil && !now.UTC().After(last) {
			return nil, fmt.Errorf("machine: new point at %s is not after the last point (%s)",
				p.Time, f.Points[n-1].Time)
		}
	}
	f.Points = append(f.Points, p)
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
