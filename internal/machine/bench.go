package machine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"explframe/internal/kernel"
	"explframe/internal/vm"
)

// BenchSchema is the current BENCH_machines.json schema version; bump it
// when the entry shape changes so stale snapshots fail parsing loudly.
const BenchSchema = 1

// BenchEntry is one machine profile's timing sample in the checked-in
// BENCH_machines.json baseline (emitted by `benchtab -bench-machines`).
type BenchEntry struct {
	// Machine is the registered profile name the sample was taken on.
	Machine string `json:"machine"`
	// Mapper is the profile's address-mapper kind.
	Mapper string `json:"mapper"`
	// MiB is the module capacity.
	MiB uint64 `json:"mib"`
	// HammerNsPerActivation is the measured cost of one HammerLoop
	// activation through the full kernel/DRAM stack.
	HammerNsPerActivation float64 `json:"hammer_ns_per_activation"`
	// AttackTrialMs is the wall time of one seed-1 end-to-end attack trial.
	AttackTrialMs float64 `json:"attack_trial_ms"`
	// KeyRecovered records that trial's outcome, pinning that the timing
	// measured a real attack, not an early bail-out.
	KeyRecovered bool `json:"key_recovered"`
}

// BenchFile is the snapshot document: schema, provenance note and one
// entry per machine profile.  The snapshot is a trajectory anchor, not a
// golden — timings drift with hosts — so only its shape is CI-checked.
type BenchFile struct {
	// Schema is BenchSchema at emission time.
	Schema int `json:"schema"`
	// Note records how to regenerate the file.
	Note string `json:"note"`
	// Host describes the machine the sample was taken on (GOOS/GOARCH and
	// CPU count — enough to judge comparability, no hostnames).
	Host string `json:"host"`
	// Entries holds one sample per registered machine profile.
	Entries []BenchEntry `json:"entries"`
}

// ParseBenchFile strictly decodes and sanity-checks a BENCH_machines.json
// document: known schema, at least one entry, every entry naming a
// registered machine with positive timings.  The CI smoke and the repo's
// parse test both go through here, so the checked-in snapshot can never
// rot silently.
func ParseBenchFile(data []byte) (BenchFile, error) {
	var f BenchFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return BenchFile{}, fmt.Errorf("machine: decode bench file: %w", err)
	}
	var errs []error
	if f.Schema != BenchSchema {
		errs = append(errs, fmt.Errorf("schema %d, want %d", f.Schema, BenchSchema))
	}
	if len(f.Entries) == 0 {
		errs = append(errs, errors.New("no entries"))
	}
	for i, e := range f.Entries {
		if _, ok := Get(e.Machine); !ok {
			errs = append(errs, fmt.Errorf("entry %d: machine %q is not registered", i, e.Machine))
		}
		if e.HammerNsPerActivation <= 0 || e.AttackTrialMs <= 0 {
			errs = append(errs, fmt.Errorf("entry %d (%s): non-positive timings (%g ns/act, %g ms)",
				i, e.Machine, e.HammerNsPerActivation, e.AttackTrialMs))
		}
	}
	if err := errors.Join(errs...); err != nil {
		return BenchFile{}, fmt.Errorf("machine: bench file invalid: %w", err)
	}
	return f, nil
}

// EncodeJSON renders the bench file as indented JSON.
func (f BenchFile) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// HammerBenchPages and HammerBenchStride fix the shared hammer-timing
// workload: a 64-page touched buffer with two aggressor addresses 32
// pages apart.
const (
	// HammerBenchPages is the buffer size of the timing workload.
	HammerBenchPages = 64
	// HammerBenchStride is the page distance between the two hammered
	// addresses.
	HammerBenchStride = 32
)

// NewHammerBench assembles the measurement harness behind both the
// checked-in BENCH_machines.json snapshot (benchtab -bench-machines) and
// BenchmarkHammerLoopPerMachine: one process on the machine with the
// fixed touched buffer, returning the two aggressor addresses to drive
// through HammerLoop.  Sharing the setup keeps the snapshot and the
// in-tree benchmark measuring the same workload.
func NewHammerBench(ms Spec, seed uint64) (*kernel.Process, []vm.VirtAddr, error) {
	m, err := kernel.NewMachine(ms.KernelConfig(seed))
	if err != nil {
		return nil, nil, err
	}
	proc, err := m.Spawn("bench", 0)
	if err != nil {
		return nil, nil, err
	}
	base, err := proc.Mmap(HammerBenchPages * vm.PageSize)
	if err != nil {
		return nil, nil, err
	}
	if err := proc.Touch(base, HammerBenchPages*vm.PageSize); err != nil {
		return nil, nil, err
	}
	vas := []vm.VirtAddr{base, base + vm.VirtAddr(HammerBenchStride*vm.PageSize)}
	return proc, vas, nil
}
