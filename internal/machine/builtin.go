package machine

import "explframe/internal/dram"

// The built-in machine profiles.  "default" and "fast" reproduce, field
// for field, the two machines the scenario layer hardcoded before machines
// became first-class — every E1–E15 golden number is pinned to them, so
// their parameters must never drift.  The other profiles open the machine
// axis: a DDR4-style module with an XOR-folded bank function, a large
// server module with slower cells, and a TRR-hardened part.
func init() {
	Register(New("default",
		WithDescription("256 MiB DDR3-style module in the paper's testbed proportions (the explframe CLI default)"),
		WithFaultModel(dram.FaultModel{
			WeakCellDensity: 1e-5, // vulnerable module, as the attack assumes
			BaseThreshold:   5000, // scaled-down activation threshold
			ThresholdSpread: 1.0,
			NeighbourWeight: 0.25,
			RefreshInterval: 1 << 21,
			FlipReliability: 0.98,
		}),
		WithAttackSizing(11000, 32<<20, 12000), // > 2x max threshold: catches most cells
	))

	Register(New("fast",
		WithDescription("small, highly vulnerable 32 MiB module; end-to-end trials stay ~1 s (E6/E8/E13)"),
		WithGeometry(dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}),
		WithFaultModel(dram.FaultModel{
			WeakCellDensity: 2e-4,
			BaseThreshold:   1500,
			ThresholdSpread: 0.5,
			NeighbourWeight: 0.25,
			RefreshInterval: 1 << 20,
			FlipReliability: 0.98,
		}),
		WithAttackSizing(3200, 8<<20, 12000),
	))

	Register(New("ddr4",
		WithDescription("512 MiB DDR4-style module: 16 banks, XOR-folded bank function, moderately vulnerable cells"),
		WithGeometry(dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 16, Rows: 8192, RowBytes: 4096}),
		WithMapper(dram.MapperXORFold),
		WithFaultModel(dram.FaultModel{
			WeakCellDensity: 1.2e-5,
			BaseThreshold:   7000,
			ThresholdSpread: 1.0,
			NeighbourWeight: 0.2,
			RefreshInterval: 1 << 21,
			FlipReliability: 0.98,
		}),
		WithCPUs(4),
		WithAttackSizing(15000, 32<<20, 12000),
	))

	Register(New("server-1g",
		WithDescription("1 GiB server module: 16 banks x 16 Ki rows, slower cells, deeper watermark reserve"),
		WithGeometry(dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 16, Rows: 16384, RowBytes: 4096}),
		WithFaultModel(dram.FaultModel{
			WeakCellDensity: 1e-5,
			BaseThreshold:   8000,
			ThresholdSpread: 1.0,
			NeighbourWeight: 0.25,
			RefreshInterval: 1 << 22,
			FlipReliability: 0.95,
		}),
		WithCPUs(4),
		WithWatermark(64),
		WithAttackSizing(17000, 32<<20, 12000),
	))

	Register(New("trr-hardened",
		WithDescription("the fast module shipped with an in-DRAM TRR sampler (tracker 8, threshold 250)"),
		WithGeometry(dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}),
		WithFaultModel(dram.FaultModel{
			WeakCellDensity: 2e-4,
			BaseThreshold:   1500,
			ThresholdSpread: 0.5,
			NeighbourWeight: 0.25,
			RefreshInterval: 1 << 20,
			FlipReliability: 0.98,
		}),
		WithTRR(8, 250),
		WithAttackSizing(3200, 8<<20, 12000),
	))
}
