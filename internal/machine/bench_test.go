package machine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The checked-in BENCH_machines.json snapshot at the repository root must
// strictly parse and name only registered machines — the CI smoke behind
// `benchtab -check-bench-machines` runs the same validation.
func TestCheckedInBenchFileParses(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_machines.json"))
	if err != nil {
		t.Fatalf("missing bench baseline (regenerate with `go run ./cmd/benchtab -bench-machines BENCH_machines.json`): %v", err)
	}
	f, err := ParseBenchFile(data)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, e := range f.Entries {
		covered[e.Machine] = true
	}
	for _, name := range Names() {
		if !covered[name] {
			t.Errorf("registered machine %q has no bench entry; regenerate the snapshot", name)
		}
	}
}

// ParseBenchFile must reject malformed documents with every violation
// reported.
func TestParseBenchFileRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"schema":1,"note":"","host":"","entries":[],"extra":1}`,
		"wrong schema":  `{"schema":9,"note":"","host":"","entries":[{"machine":"fast","mapper":"linear","mib":32,"hammer_ns_per_activation":1,"attack_trial_ms":1,"key_recovered":true}]}`,
		"no entries":    `{"schema":1,"note":"","host":"","entries":[]}`,
		"unknown name":  `{"schema":1,"note":"","host":"","entries":[{"machine":"nope","mapper":"linear","mib":32,"hammer_ns_per_activation":1,"attack_trial_ms":1,"key_recovered":true}]}`,
		"bad timings":   `{"schema":1,"note":"","host":"","entries":[{"machine":"fast","mapper":"linear","mib":32,"hammer_ns_per_activation":0,"attack_trial_ms":-1,"key_recovered":true}]}`,
		"not even json": `]`,
	}
	for name, doc := range cases {
		if _, err := ParseBenchFile([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	multi := `{"schema":2,"note":"","host":"","entries":[{"machine":"nope","mapper":"linear","mib":32,"hammer_ns_per_activation":0,"attack_trial_ms":1,"key_recovered":true}]}`
	_, err := ParseBenchFile([]byte(multi))
	if err == nil {
		t.Fatal("multi-violation document accepted")
	}
	for _, want := range []string{"schema", "not registered", "non-positive"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error misses %q: %v", want, err)
		}
	}
}
