// Package machine makes simulated machines first-class values, the way
// internal/cipher/registry did for victims and internal/scenario did for
// scenarios.  A Spec declares one machine — DRAM geometry, address-mapper
// kind, fault model, CPU count, page-frame-cache sizing and the attack
// sizing an end-to-end run on that machine defaults to — as plain
// serializable data with functional options (New, With), joined-field
// validation (Validate), canonical naming and hashing (Name, Hash) and
// strict lossless JSON (EncodeJSON, DecodeSpec).
//
// A name-keyed registry (Register, Get, Names) holds the built-in profiles
// (see builtin.go) plus anything callers add, so scenario.Spec.Profile is
// an open machine name rather than a closed enum: the page-frame-cache
// behaviour the paper exploits and the row-adjacency Rowhammer needs both
// vary with platform details (Page Cache Attacks, the pigeonhole defence
// literature), and this package is where that axis lives.
package machine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"explframe/internal/dram"
	"explframe/internal/kernel"
	"explframe/internal/stats"
)

// AttackSizing carries the end-to-end attack defaults a machine implies:
// how hard a hammer run must push given the module's cell thresholds, how
// much memory the attacker templates, and the ciphertext budget for fault
// analysis.  Scenario lowering starts from these and lets the scenario
// override the knobs it names.
type AttackSizing struct {
	// HammerPairs is the activation-pair budget per hammer run; it must
	// comfortably exceed the module's worst-case cell threshold.
	HammerPairs int `json:"hammer_pairs"`
	// AttackerMemory is the templating buffer size in bytes.
	AttackerMemory uint64 `json:"attacker_memory"`
	// Ciphertexts is the faulty-ciphertext budget for fault analysis.
	Ciphertexts int `json:"ciphertexts"`
}

// Spec declares one machine.  Build Specs with New/With rather than struct
// literals so defaults stay in one place; the zero value is not a valid
// machine.
type Spec struct {
	// Name is the registry handle ("default", "fast", "ddr4", ...).  An
	// inline spec may leave it empty; Name() then derives a stable
	// hash-based handle.
	Name string `json:"name,omitempty"`
	// Description is the one-line catalogue entry list/describe print.
	Description string `json:"description,omitempty"`

	// Geometry is the DRAM topology.
	Geometry dram.Geometry `json:"geometry"`
	// Mapper names the physical-to-DRAM address mapping (see
	// dram.MapperNames); empty means "linear".
	Mapper string `json:"mapper,omitempty"`
	// FaultModel parameterises the module's Rowhammer vulnerability,
	// including any TRR/ECC mitigation shipped with the machine.
	FaultModel dram.FaultModel `json:"fault_model"`

	// CPUs is the processor count; each CPU owns a page frame cache.
	CPUs int `json:"cpus"`
	// PCPBatch and PCPHigh size the per-CPU page frame cache (Linux's
	// ->batch and ->high).
	PCPBatch int `json:"pcp_batch"`
	PCPHigh  int `json:"pcp_high"`
	// MinWatermarkPages is the per-zone allocation reserve.
	MinWatermarkPages uint64 `json:"min_watermark_pages"`

	// Attack is the end-to-end attack sizing this machine defaults to.
	Attack AttackSizing `json:"attack"`
}

// Option mutates a Spec under construction.
type Option func(*Spec)

// New builds a Spec from neutral small-machine defaults — the paper's
// kernel parameters (2 CPUs, Linux pcp 31/186, 32-page watermark), the
// default 256 MiB geometry and fault model, linear mapping — and applies
// opts.
func New(name string, opts ...Option) Spec {
	s := Spec{
		Name:              name,
		Geometry:          dram.DefaultGeometry(),
		Mapper:            dram.MapperLinear,
		FaultModel:        dram.DefaultFaultModel(),
		CPUs:              2,
		PCPBatch:          31,
		PCPHigh:           186,
		MinWatermarkPages: 32,
		Attack:            AttackSizing{HammerPairs: 55000, AttackerMemory: 32 << 20, Ciphertexts: 12000},
	}
	return s.With(opts...)
}

// With returns a copy of s with opts applied.
func (s Spec) With(opts ...Option) Spec {
	for _, opt := range opts {
		opt(&s)
	}
	return s
}

// WithDescription sets the catalogue line.
func WithDescription(d string) Option { return func(s *Spec) { s.Description = d } }

// WithGeometry sets the DRAM topology.
func WithGeometry(g dram.Geometry) Option { return func(s *Spec) { s.Geometry = g } }

// WithMapper selects the address-mapper kind.
func WithMapper(name string) Option { return func(s *Spec) { s.Mapper = name } }

// WithFaultModel sets the Rowhammer vulnerability model.
func WithFaultModel(m dram.FaultModel) Option { return func(s *Spec) { s.FaultModel = m } }

// WithCPUs sets the processor count.
func WithCPUs(n int) Option { return func(s *Spec) { s.CPUs = n } }

// WithPCP sizes the per-CPU page frame cache.
func WithPCP(batch, high int) Option {
	return func(s *Spec) { s.PCPBatch, s.PCPHigh = batch, high }
}

// WithWatermark sets the per-zone allocation reserve in pages.
func WithWatermark(pages uint64) Option { return func(s *Spec) { s.MinWatermarkPages = pages } }

// WithAttackSizing sets the end-to-end attack defaults.
func WithAttackSizing(pairs int, attackerMem uint64, ciphertexts int) Option {
	return func(s *Spec) {
		s.Attack = AttackSizing{HammerPairs: pairs, AttackerMemory: attackerMem, Ciphertexts: ciphertexts}
	}
}

// WithTRR ships the machine with an in-DRAM Target Row Refresh sampler.
func WithTRR(tracker, threshold int) Option {
	return func(s *Spec) {
		s.FaultModel.TRR = dram.TRRConfig{Enabled: true, TrackerSize: tracker, Threshold: threshold}
	}
}

// WithECC ships the machine with SEC-DED correction.
func WithECC() Option { return func(s *Spec) { s.FaultModel.ECC = dram.ECCSecDed } }

// Validate checks every field and returns all violations joined into one
// error, so a machine file with three mistakes reports three mistakes.
func (s Spec) Validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if err := s.Geometry.Validate(); err != nil {
		fail("geometry: %v", err)
	}
	if _, err := dram.NewNamedMapper(s.Mapper, okGeometry(s.Geometry)); err != nil {
		fail("mapper: %v", err)
	}
	fm := s.FaultModel
	if fm.WeakCellDensity < 0 || fm.WeakCellDensity > 1 {
		fail("fault_model.weak_cell_density: %g, want within [0, 1]", fm.WeakCellDensity)
	}
	if fm.BaseThreshold <= 0 {
		fail("fault_model.base_threshold: %d, want >= 1", fm.BaseThreshold)
	}
	if fm.ThresholdSpread < 0 {
		fail("fault_model.threshold_spread: %g, want >= 0", fm.ThresholdSpread)
	}
	if fm.NeighbourWeight < 0 || fm.NeighbourWeight > 1 {
		fail("fault_model.neighbour_weight: %g, want within [0, 1]", fm.NeighbourWeight)
	}
	if fm.RefreshInterval == 0 {
		fail("fault_model.refresh_interval: 0, want >= 1")
	}
	if fm.FlipReliability <= 0 || fm.FlipReliability > 1 {
		fail("fault_model.flip_reliability: %g, want within (0, 1]", fm.FlipReliability)
	}
	if fm.TRR.Enabled && (fm.TRR.TrackerSize <= 0 || fm.TRR.Threshold <= 0) {
		fail("fault_model.trr: enabled needs positive tracker_size and threshold (%d, %d)",
			fm.TRR.TrackerSize, fm.TRR.Threshold)
	}
	if s.CPUs <= 0 {
		fail("cpus: %d, want >= 1", s.CPUs)
	}
	if s.PCPBatch <= 0 || s.PCPHigh < s.PCPBatch {
		fail("pcp: need 0 < pcp_batch (%d) <= pcp_high (%d)", s.PCPBatch, s.PCPHigh)
	}
	if s.Attack.HammerPairs <= 0 {
		fail("attack.hammer_pairs: %d, want >= 1", s.Attack.HammerPairs)
	}
	if s.Attack.AttackerMemory == 0 || s.Attack.AttackerMemory >= s.Geometry.TotalBytes() {
		fail("attack.attacker_memory: %d bytes, want within (0, module size %d)",
			s.Attack.AttackerMemory, s.Geometry.TotalBytes())
	}
	if s.Attack.Ciphertexts <= 0 {
		fail("attack.ciphertexts: %d, want >= 1", s.Attack.Ciphertexts)
	}
	return errors.Join(errs...)
}

// okGeometry substitutes a valid geometry when the spec's own is broken, so
// mapper validation reports the mapper name problem rather than repeating
// the geometry error.
func okGeometry(g dram.Geometry) dram.Geometry {
	if g.Validate() != nil {
		return dram.DefaultGeometry()
	}
	return g
}

// canonical renders every semantic field (Description excluded) into a
// deterministic string — the input to Hash and the derived name of
// anonymous specs.
func (s Spec) canonical() string {
	g, fm := s.Geometry, s.FaultModel
	return fmt.Sprintf("g=%d.%d.%d.%d.%d.%d;map=%s;fm=%g,%d,%g,%g,%d,%g;trr=%v,%d,%d;ecc=%d;cpu=%d;pcp=%d,%d;wm=%d;atk=%d,%d,%d",
		g.Channels, g.DIMMs, g.Ranks, g.Banks, g.Rows, g.RowBytes,
		s.MapperName(),
		fm.WeakCellDensity, fm.BaseThreshold, fm.ThresholdSpread, fm.NeighbourWeight, fm.RefreshInterval, fm.FlipReliability,
		fm.TRR.Enabled, fm.TRR.TrackerSize, fm.TRR.Threshold, fm.ECC,
		s.CPUs, s.PCPBatch, s.PCPHigh, s.MinWatermarkPages,
		s.Attack.HammerPairs, s.Attack.AttackerMemory, s.Attack.Ciphertexts)
}

// Hash returns a 64-bit FNV-1a digest of the canonical encoding — stable
// across processes, usable for dedup and per-machine seed derivation
// (experiment tables key trial streams on it so registering a new machine
// never re-randomizes existing rows).
func (s Spec) Hash() uint64 { return stats.FNV64(s.canonical()) }

// CanonicalName returns the registry handle when the spec has one, and a
// stable "custom-<hash>" handle for anonymous inline specs, so every
// machine has a printable identity.
func (s Spec) CanonicalName() string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("custom-%08x", uint32(s.Hash()))
}

// MapperName resolves the mapper default: the empty field means linear.
func (s Spec) MapperName() string {
	if s.Mapper == "" {
		return dram.MapperLinear
	}
	return s.Mapper
}

// KernelConfig lowers the machine onto the kernel layer's assembly config.
// The seed threads through to weak-cell placement; DrainOnIdle starts true
// (Linux behaviour) and scenario ablations flip it per run.
func (s Spec) KernelConfig(seed uint64) kernel.Config {
	return kernel.Config{
		Geometry:          s.Geometry,
		FaultModel:        s.FaultModel,
		Mapper:            s.Mapper,
		NumCPUs:           s.CPUs,
		PCPBatch:          s.PCPBatch,
		PCPHigh:           s.PCPHigh,
		MinWatermarkPages: s.MinWatermarkPages,
		Seed:              seed,
		DrainOnIdle:       true,
	}
}

// EncodeJSON renders the spec as indented JSON, round-tripping losslessly
// through DecodeSpec.
func (s Spec) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeSpec parses one machine spec from JSON.  Unknown fields are
// rejected so a typoed knob fails loudly instead of silently simulating
// the wrong machine.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("machine: decode spec: %w", err)
	}
	return s, nil
}

// LoadSpec reads one machine spec from a JSON file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("machine: %w", err)
	}
	return DecodeSpec(data)
}
