package machine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"explframe/internal/dram"
)

// Every built-in profile must validate, lower onto a buildable kernel
// config, and carry a usable hammer budget (pairs x 2 activations above
// the worst-case cell threshold, inside one refresh window).
func TestBuiltinsValid(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("want at least 4 built-in machine profiles, have %v", names)
	}
	for _, name := range names {
		ms := MustGet(name)
		if err := ms.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if ms.Description == "" {
			t.Errorf("%s: no description for the catalogue", name)
		}
		kc := ms.KernelConfig(1)
		if kc.NumCPUs != ms.CPUs || kc.Seed != 1 || !kc.DrainOnIdle {
			t.Errorf("%s: KernelConfig lowered wrong: %+v", name, kc)
		}
		worst := float64(ms.FaultModel.BaseThreshold) * (1 + ms.FaultModel.ThresholdSpread)
		if acts := float64(2 * ms.Attack.HammerPairs); acts <= worst {
			t.Errorf("%s: hammer budget %g activations cannot cross the worst threshold %g", name, acts, worst)
		}
		if uint64(2*ms.Attack.HammerPairs) >= ms.FaultModel.RefreshInterval {
			t.Errorf("%s: one hammer run spans a whole refresh window", name)
		}
	}
}

// The registry contract: case-insensitive lookup, misses report false, and
// MustGet panics on unknowns.
func TestRegistryLookup(t *testing.T) {
	if _, ok := Get("DEFAULT"); !ok {
		t.Fatal("lookup is not case-insensitive")
	}
	if _, ok := Get("no-such-machine"); ok {
		t.Fatal("unknown machine resolved")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet did not panic on an unknown machine")
		}
	}()
	MustGet("no-such-machine")
}

// Register must reject duplicates and invalid specs loudly.
func TestRegisterRejects(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() { Register(New("default")) })
	mustPanic("unnamed", func() { Register(New("")) })
	mustPanic("invalid", func() { Register(New("broken", WithCPUs(0))) })
}

// Validate must join every violation into one report.
func TestValidateJoinsErrors(t *testing.T) {
	s := New("bad",
		WithGeometry(dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 3, Rows: 16, RowBytes: 64}),
		WithMapper("warp"),
		WithCPUs(0),
		WithPCP(10, 5),
		WithAttackSizing(0, 0, 0),
	)
	err := s.Validate()
	if err == nil {
		t.Fatal("invalid spec validated")
	}
	for _, want := range []string{"geometry", "mapper", "cpus", "pcp", "hammer_pairs", "attacker_memory", "ciphertexts"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error misses %q:\n%v", want, err)
		}
	}
	fm := dram.DefaultFaultModel()
	fm.FlipReliability = 0
	fm.RefreshInterval = 0
	fm.BaseThreshold = 0
	if err := New("bad-fm", WithFaultModel(fm)).Validate(); err == nil ||
		!strings.Contains(err.Error(), "flip_reliability") ||
		!strings.Contains(err.Error(), "refresh_interval") ||
		!strings.Contains(err.Error(), "base_threshold") {
		t.Errorf("fault-model violations not all reported: %v", err)
	}
	if err := New("bad-trr", WithTRR(0, 0)).Validate(); err == nil ||
		!strings.Contains(err.Error(), "trr") {
		t.Errorf("enabled TRR with zero geometry not rejected: %v", err)
	}
}

// Specs must round-trip losslessly through strict JSON, and unknown fields
// must be rejected.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		ms := MustGet(name)
		data, err := ms.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeSpec(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back != ms {
			t.Fatalf("%s: round trip drifted:\n%+v\n%+v", name, back, ms)
		}
	}
	if _, err := DecodeSpec([]byte(`{"name":"x","geomtry":{}}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
}

// Name/Hash identity: hashes key on semantics (not on Name/Description),
// anonymous specs derive a stable handle, and distinct machines disagree.
func TestNameAndHash(t *testing.T) {
	a := MustGet("fast")
	b := a
	b.Name = ""
	b.Description = "renamed"
	if a.Hash() != b.Hash() {
		t.Fatal("hash depends on name/description")
	}
	if got := b.CanonicalName(); !strings.HasPrefix(got, "custom-") {
		t.Fatalf("anonymous spec handle = %q", got)
	}
	if b.CanonicalName() != b.CanonicalName() {
		t.Fatal("derived handle not stable")
	}
	if MustGet("fast").Hash() == MustGet("ddr4").Hash() {
		t.Fatal("distinct machines share a hash")
	}
	c := a
	c.Mapper = dram.MapperXORFold
	if c.Hash() == a.Hash() {
		t.Fatal("mapper kind does not enter the hash")
	}
}

// A machine with ECC/TRR options must carry them through the fault model
// and the JSON string form ("sec-ded", not an int).
func TestDefenceOptions(t *testing.T) {
	s := New("guarded", WithTRR(4, 300), WithECC())
	if !s.FaultModel.TRR.Enabled || s.FaultModel.TRR.TrackerSize != 4 {
		t.Fatalf("TRR option not applied: %+v", s.FaultModel.TRR)
	}
	if s.FaultModel.ECC != dram.ECCSecDed {
		t.Fatal("ECC option not applied")
	}
	data, err := s.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"ecc": "sec-ded"`) {
		t.Fatalf("ECC mode not serialized by name:\n%s", data)
	}
	back, err := DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatal("defended spec did not round-trip")
	}
}

// LoadSpec must read a spec file and preserve it losslessly.
func TestLoadSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	want := MustGet("ddr4")
	data, err := want.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("LoadSpec drifted:\n%+v\n%+v", got, want)
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

// The bench file must survive its own encode/parse cycle.
func TestBenchFileEncodeRoundTrip(t *testing.T) {
	f := BenchFile{
		Schema: BenchSchema,
		Note:   "test",
		Host:   "test/arch, 1 cpus",
		Entries: []BenchEntry{{
			Machine: "fast", Mapper: "linear", MiB: 32,
			HammerNsPerActivation: 20, AttackTrialMs: 100, KeyRecovered: true,
		}},
	}
	data, err := f.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBenchFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 1 || back.Entries[0] != f.Entries[0] {
		t.Fatalf("round trip drifted: %+v", back)
	}
}
