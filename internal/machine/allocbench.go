package machine

import (
	"fmt"
	"runtime"
)

// This file measures the steady-state allocation behaviour of the hammer
// hot path without importing the testing package, so the same gate runs
// both as a repo test and inside `benchtab -check-trajectory` in CI.
//
// "Steady state" matters: the first hammer bursts legitimately allocate —
// the translated-address scratch buffer, the device's dirty list growing to
// its working size, weak cells materialising backing chunks as they flip.
// The zero-alloc contract is about everything after that: once a process
// has hammered through a couple of refresh windows, further HammerLoop
// calls must not allocate at all, or multi-million-activation templating
// sweeps drown in garbage-collector work.

// steadyStateMeasureActivations is the per-run activation count of the
// measurement phase — big enough to catch a per-round allocation, small
// enough to stay inside one refresh window after warm-up.
const steadyStateMeasureActivations = 4096

// steadyStateRuns is how many measured HammerLoop calls the allocation
// count is averaged over.
const steadyStateRuns = 10

// hammerWarmupActivations sizes the warm-up burst for a fault model: two
// full refresh windows (the dirty list and TRR tracker reach their working
// sizes, and every window-periodic path has executed), plus enough
// activations that even the highest-threshold weak cell reachable through
// the weakest coupling has crossed its threshold and resolved (flipped or
// held), plus slack for the reliability re-roll of held cells.
func hammerWarmupActivations(fm faultModelParams) uint64 {
	maxThr := float64(fm.BaseThreshold) * (1 + fm.ThresholdSpread)
	w := fm.NeighbourWeight
	if w <= 0 || w > 1 {
		w = 1
	}
	return 2*fm.RefreshInterval + uint64(maxThr/w) + 100_000
}

// faultModelParams is the slice of dram.FaultModel the warm-up sizing
// needs; a local mirror keeps the signature independent of field additions.
type faultModelParams struct {
	BaseThreshold   int
	ThresholdSpread float64
	NeighbourWeight float64
	RefreshInterval uint64
}

// HammerLoopSteadyStateAllocs builds the shared hammer-bench workload on
// the machine, warms it past every one-time allocation, and returns the
// average number of heap allocations per steady-state HammerLoop call.
// The zero-alloc contract pinned by BENCH_trajectory.json is that this is
// exactly zero for every registered machine.
//
// The measurement is meaningless under the race detector, which inserts
// its own allocations; callers gate on RaceEnabled.
func HammerLoopSteadyStateAllocs(ms Spec, seed uint64) (float64, error) {
	proc, vas, err := NewHammerBench(ms, seed)
	if err != nil {
		return 0, err
	}
	fm := ms.FaultModel
	warm := hammerWarmupActivations(faultModelParams{
		BaseThreshold:   fm.BaseThreshold,
		ThresholdSpread: fm.ThresholdSpread,
		NeighbourWeight: fm.NeighbourWeight,
		RefreshInterval: fm.RefreshInterval,
	})
	if err := proc.HammerLoop(vas, int(warm)/len(vas)); err != nil {
		return 0, fmt.Errorf("warm-up hammer: %w", err)
	}

	rounds := steadyStateMeasureActivations / len(vas)
	// Serialise with the runtime the way testing.AllocsPerRun does, so a
	// background sysmon or GC goroutine cannot attribute stray mallocs to
	// the measured window.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < steadyStateRuns; i++ {
		if err := proc.HammerLoop(vas, rounds); err != nil {
			return 0, fmt.Errorf("measured hammer: %w", err)
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / steadyStateRuns, nil
}
