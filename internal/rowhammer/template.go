package rowhammer

import (
	"sort"

	"explframe/internal/vm"
)

// Pattern selects the data written to victim rows while templating.  A
// 0xFF pattern exposes 1->0 ("true") cells, 0x00 exposes 0->1 ("anti")
// cells; templating runs both by default.
type Pattern byte

// Standard templating patterns.
const (
	PatternOnes  Pattern = 0xFF
	PatternZeros Pattern = 0x00
)

// Template scans the attacker's own mapping [base, base+length) for
// Rowhammer-vulnerable bits: for every row with both neighbours inside the
// region it writes the test pattern, hammers, and diffs the victim pages.
// It stops early after cfg.MaxFlips sites when that is non-zero.
//
// The region must already be touched (resident); Template does not fault
// pages in, mirroring the attack where the 1 GB buffer is populated first.
func (e *Engine) Template(base vm.VirtAddr, length uint64, patterns ...Pattern) ([]FlipSite, error) {
	if len(patterns) == 0 {
		patterns = []Pattern{PatternOnes, PatternZeros}
	}
	mapper := e.dev.Mapper()
	idx := e.rowIndex(base, length)

	// Gather resident pages per (bank, row) — a row can hold several of the
	// attacker's pages (8 KiB row = 2 pages with the default geometry).
	pagesByRow := make(map[[2]int][]vm.VirtAddr)
	for off := uint64(0); off < length; off += vm.PageSize {
		va := base + vm.VirtAddr(off)
		a, ok := e.rowOf(va)
		if !ok {
			continue
		}
		key := [2]int{mapper.BankGroup(a), a.Row}
		pagesByRow[key] = append(pagesByRow[key], va)
	}

	// Scan rows in a fixed (bank, row) order: map iteration would make the
	// discovered site — and hence the whole attack trace — nondeterministic.
	rowKeys := make([][2]int, 0, len(pagesByRow))
	for key := range pagesByRow {
		rowKeys = append(rowKeys, key)
	}
	sort.Slice(rowKeys, func(i, j int) bool {
		if rowKeys[i][0] != rowKeys[j][0] {
			return rowKeys[i][0] < rowKeys[j][0]
		}
		return rowKeys[i][1] < rowKeys[j][1]
	})

	var flips []FlipSite
	seen := make(map[vm.VirtAddr]map[int]bool) // pageVA -> byte*8+bit found

	record := func(va vm.VirtAddr, pattern Pattern, agg Aggressors) error {
		pageVA := va.PageBase()
		buf := e.probePage()
		if err := e.proc.ReadBytesInto(pageVA, buf); err != nil {
			return err
		}
		for i, b := range buf {
			if Pattern(b) == pattern {
				continue
			}
			diff := b ^ byte(pattern)
			for bit := uint8(0); bit < 8; bit++ {
				if diff&(1<<bit) == 0 {
					continue
				}
				if seen[pageVA] == nil {
					seen[pageVA] = make(map[int]bool)
				}
				k := i*8 + int(bit)
				if seen[pageVA][k] {
					continue
				}
				seen[pageVA][k] = true
				flips = append(flips, FlipSite{
					VA:         pageVA + vm.VirtAddr(i),
					PageVA:     pageVA,
					ByteInPage: i,
					Bit:        bit,
					From:       (byte(pattern) >> bit) & 1,
					Agg:        agg,
				})
				e.st.FlipsFound++
			}
		}
		return nil
	}

	for _, pattern := range patterns {
		fill := e.fillPage(pattern)
		for _, key := range rowKeys {
			pages := pagesByRow[key]
			if e.cfg.MaxFlips > 0 && len(flips) >= e.cfg.MaxFlips {
				return flips, nil
			}
			bg, row := key[0], key[1]
			// Aggressor rows must be resident in the attacker's region;
			// adjacency is the mapper's relation, not index arithmetic.
			up, upOK := e.neighbourPage(idx, bg, row, -1)
			down, downOK := e.neighbourPage(idx, bg, row, +1)
			var agg Aggressors
			switch e.cfg.Mode {
			case DoubleSided, ManySided:
				if !upOK || !downOK {
					continue
				}
				agg = Aggressors{VictimRow: row, Bank: bg, Upper: up, Lower: down, Mode: e.cfg.Mode}
				if e.cfg.Mode == ManySided {
					decoys, ok := e.selectDecoys(idx, bg, row)
					if !ok {
						continue
					}
					agg.Decoys = decoys
				}
			default:
				a, err := e.FindAggressors(pages[0], base, length)
				if err != nil {
					continue
				}
				agg = a
			}

			// Write the pattern into every victim page of the row, then
			// hammer, then diff.  Rewriting also re-arms previously flipped
			// cells, so repeated templating is idempotent.
			for _, pva := range pages {
				if err := e.proc.WriteBytes(pva.PageBase(), fill); err != nil {
					return flips, err
				}
			}
			if err := e.Hammer(agg, e.cfg.PairHammerCount); err != nil {
				return flips, err
			}
			e.st.RowsScanned++
			for _, pva := range pages {
				if err := record(pva, pattern, agg); err != nil {
					return flips, err
				}
			}
		}
	}
	return flips, nil
}

// TemplateUntil scans like Template but stops as soon as a flip satisfying
// accept is found, returning it.  The attacker uses this to search for a
// flip that will land inside the victim's table with corrupting polarity
// without paying for a full-region scan.  found is false if the region is
// exhausted first; all flips seen along the way are returned for reporting.
func (e *Engine) TemplateUntil(base vm.VirtAddr, length uint64, accept func(FlipSite) bool) (FlipSite, []FlipSite, bool, error) {
	// Scan in chunks so early exit saves real work; chunk edges lose a few
	// candidate rows (their aggressors fall outside the chunk), which only
	// costs coverage, never correctness.
	const chunk = 2 << 20
	var all []FlipSite
	for off := uint64(0); off < length; off += chunk {
		sz := uint64(chunk)
		if off+sz > length {
			sz = length - off
		}
		flips, err := e.Template(base+vm.VirtAddr(off), sz)
		if err != nil {
			return FlipSite{}, all, false, err
		}
		all = append(all, flips...)
		for _, f := range flips {
			if accept(f) {
				return f, all, true, nil
			}
		}
	}
	return FlipSite{}, all, false, nil
}

// Reproduce re-hammers the aggressors of a flip site and reports whether the
// same bit flipped again.  The caller is responsible for re-arming the cell
// (writing the page) before calling; Verify in the attack core uses the
// original pattern.  This measures the paper's Section VI claim of "a high
// probability of getting bit flips in the same location".
func (e *Engine) Reproduce(site FlipSite, pattern Pattern) (bool, error) {
	fill := e.fillPage(pattern)
	if err := e.proc.WriteBytes(site.PageVA, fill); err != nil {
		return false, err
	}
	if err := e.Hammer(site.Agg, e.cfg.PairHammerCount); err != nil {
		return false, err
	}
	got, err := e.proc.Load(site.VA)
	if err != nil {
		return false, err
	}
	want := byte(pattern) ^ (1 << site.Bit)
	return got == want, nil
}

// fillPage returns the engine's page-sized fill buffer set to the pattern.
// One buffer serves every write in a templating sweep (the fill used to be
// rebuilt per row, one allocation per scanned row).
func (e *Engine) fillPage(pattern Pattern) []byte {
	if e.fillBuf == nil {
		e.fillBuf = make([]byte, vm.PageSize)
	}
	for i := range e.fillBuf {
		e.fillBuf[i] = byte(pattern)
	}
	return e.fillBuf
}

// probePage returns the engine's page-sized read-back buffer.  Contents are
// overwritten by ReadBytesInto; no clearing needed.
func (e *Engine) probePage() []byte {
	if e.probeBuf == nil {
		e.probeBuf = make([]byte, vm.PageSize)
	}
	return e.probeBuf
}
