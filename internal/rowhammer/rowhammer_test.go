package rowhammer

import (
	"testing"

	"explframe/internal/dram"
	"explframe/internal/kernel"
	"explframe/internal/vm"
)

// testMachine builds a small machine with a dense, low-threshold weak cell
// population so templating tests run quickly.
func testMachine(t *testing.T, density float64, seed uint64) (*kernel.Machine, *kernel.Process) {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 512, RowBytes: 8192}
	cfg.FaultModel = dram.FaultModel{
		WeakCellDensity: density,
		BaseThreshold:   2000,
		ThresholdSpread: 0.5,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 20,
		FlipReliability: 1.0,
	}
	cfg.Seed = seed
	m, err := kernel.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Spawn("attacker", 0)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func testEngine(m *kernel.Machine, p *kernel.Process) *Engine {
	cfg := Config{Mode: DoubleSided, PairHammerCount: 4000}
	return New(cfg, m, p)
}

// mapAndTouch maps length bytes and faults every page in.
func mapAndTouch(t *testing.T, p *kernel.Process, length uint64) vm.VirtAddr {
	t.Helper()
	base, err := p.Mmap(length)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Touch(base, length); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestFindAggressorsDoubleSided(t *testing.T) {
	m, p := testMachine(t, 0, 3)
	e := testEngine(m, p)
	const length = 8 << 20 // 8 MiB: every row of the small part is covered
	base := mapAndTouch(t, p, length)

	target := base + 128*vm.PageSize
	agg, err := e.FindAggressors(target, base, length)
	if err != nil {
		t.Fatal(err)
	}
	mapper := m.DRAM().Mapper()
	ta, _ := p.Translate(target)
	ua, _ := p.Translate(agg.Upper)
	la, _ := p.Translate(agg.Lower)
	td, ud, ld := mapper.ToDRAM(ta), mapper.ToDRAM(ua), mapper.ToDRAM(la)
	if mapper.BankGroup(ud) != mapper.BankGroup(td) || mapper.BankGroup(ld) != mapper.BankGroup(td) {
		t.Fatal("aggressors not in the victim's bank")
	}
	if ud.Row != td.Row-1 || ld.Row != td.Row+1 {
		t.Fatalf("aggressor rows %d/%d around victim %d", ud.Row, ld.Row, td.Row)
	}
}

func TestFindAggressorsSingleSided(t *testing.T) {
	m, p := testMachine(t, 0, 3)
	cfg := Config{Mode: SingleSided, PairHammerCount: 4000}
	e := New(cfg, m, p)
	const length = 8 << 20
	base := mapAndTouch(t, p, length)

	agg, err := e.FindAggressors(base+64*vm.PageSize, base, length)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Mode != SingleSided {
		t.Fatal("mode not preserved")
	}
	mapper := m.DRAM().Mapper()
	ta, _ := p.Translate(base + 64*vm.PageSize)
	ua, _ := p.Translate(agg.Upper)
	fa, _ := p.Translate(agg.Lower)
	td, ud, fd := mapper.ToDRAM(ta), mapper.ToDRAM(ua), mapper.ToDRAM(fa)
	if d := ud.Row - td.Row; d != 1 && d != -1 {
		t.Fatalf("near aggressor at distance %d", d)
	}
	if fd.Row == td.Row || fd.Row == td.Row-1 || fd.Row == td.Row+1 {
		t.Fatalf("far conflict row %d too close to victim %d", fd.Row, td.Row)
	}
	if mapper.BankGroup(fd) != mapper.BankGroup(td) {
		t.Fatal("far row in wrong bank")
	}
}

func TestFindAggressorsErrors(t *testing.T) {
	m, p := testMachine(t, 0, 3)
	e := testEngine(m, p)
	base := mapAndTouch(t, p, 64*vm.PageSize)
	// Unresident target.
	other, _ := p.Mmap(vm.PageSize)
	if _, err := e.FindAggressors(other, base, 64*vm.PageSize); err == nil {
		t.Fatal("unresident target accepted")
	}
}

// Templating a region over a weak-cell-rich device must find flips, each of
// which reproduces on demand.
func TestTemplateFindsAndReproducesFlips(t *testing.T) {
	m, p := testMachine(t, 5e-5, 99) // ~670 weak cells in 16 MiB
	e := testEngine(m, p)
	const length = 4 << 20
	base := mapAndTouch(t, p, length)

	flips, err := e.Template(base, length)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) == 0 {
		t.Fatal("no flips templated at high weak-cell density")
	}
	st := e.Stats()
	if st.RowsScanned == 0 || st.Activations == 0 || st.FlipsFound != uint64(len(flips)) {
		t.Fatalf("stats inconsistent: %+v vs %d flips", st, len(flips))
	}

	// Each flip site must carry a plausible location and reproduce.
	reproduced := 0
	for i, f := range flips {
		if i >= 5 {
			break // bound test time
		}
		if f.ByteInPage < 0 || f.ByteInPage >= vm.PageSize || f.Bit > 7 {
			t.Fatalf("bad flip site: %+v", f)
		}
		pattern := PatternOnes
		if f.From == 0 {
			pattern = PatternZeros
		}
		ok, err := e.Reproduce(f, pattern)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			reproduced++
		}
	}
	if reproduced == 0 {
		t.Fatal("no templated flip reproduced")
	}
}

func TestTemplateMaxFlipsEarlyExit(t *testing.T) {
	m, p := testMachine(t, 5e-5, 99)
	cfg := Config{Mode: DoubleSided, PairHammerCount: 4000, MaxFlips: 1}
	e := New(cfg, m, p)
	const length = 4 << 20
	base := mapAndTouch(t, p, length)
	flips, err := e.Template(base, length)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) == 0 {
		t.Fatal("expected at least one flip")
	}
	full := testEngine(m, p)
	fullFlips, err := full.Template(base, length)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullFlips) < len(flips) {
		t.Fatalf("full scan found fewer flips (%d) than bounded scan (%d)", len(fullFlips), len(flips))
	}
	if e.Stats().RowsScanned >= full.Stats().RowsScanned {
		t.Fatal("early exit did not reduce scanned rows")
	}
}

// A single hammer run below the cell threshold must not flip; the same run
// above it must.  (Templating sweeps can still flip at lower budgets via
// cross-run accumulation inside one refresh window — the many-sided effect —
// so the single-run semantics are tested against a planted cell.)
func TestHammerBelowThresholdNoFlips(t *testing.T) {
	m, p := testMachine(t, 0, 99)
	const length = 4 << 20
	base := mapAndTouch(t, p, length)

	// Plant a weak cell inside one of the attacker's own resident pages.
	target := base + 512*vm.PageSize
	pa, _ := p.Translate(target)
	mapper := m.DRAM().Mapper()
	da := mapper.ToDRAM(pa)
	m.DRAM().PlantWeakCell(dram.WeakCell{
		Bank: mapper.BankGroup(da), Row: da.Row, ByteInRow: da.Col + 7,
		Bit: 4, Threshold: 2000, FlipTo: 0,
	})
	if err := p.Store(target+7, 0xFF); err != nil {
		t.Fatal(err)
	}

	sub := New(Config{Mode: DoubleSided, PairHammerCount: 400}, m, p)
	agg, err := sub.FindAggressors(target, base, length)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.HammerDefault(agg); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Load(target + 7)
	if got != 0xFF {
		t.Fatalf("sub-threshold run flipped the cell: %#x", got)
	}

	m.DRAM().Refresh()
	over := New(Config{Mode: DoubleSided, PairHammerCount: 2500}, m, p)
	if err := over.HammerDefault(agg); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Load(target + 7)
	if got != 0xFF&^(1<<4) {
		t.Fatalf("above-threshold run did not flip: %#x", got)
	}
}

// Without weak cells templating finds nothing (defence baseline: a sound
// DRAM module).
func TestTemplateCleanDevice(t *testing.T) {
	m, p := testMachine(t, 0, 5)
	e := testEngine(m, p)
	const length = 2 << 20
	base := mapAndTouch(t, p, length)
	flips, err := e.Template(base, length)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 0 {
		t.Fatalf("flips on a clean device: %v", flips)
	}
}

func TestModeString(t *testing.T) {
	if SingleSided.String() != "single-sided" || DoubleSided.String() != "double-sided" || ManySided.String() != "many-sided" {
		t.Fatal("mode names")
	}
}

// Many-sided aggressor selection: the double-sided pair plus the requested
// decoys, all in the victim's bank and away from it.
func TestFindAggressorsManySided(t *testing.T) {
	m, p := testMachine(t, 0, 3)
	cfg := Config{Mode: ManySided, PairHammerCount: 1000, Decoys: 6}
	e := New(cfg, m, p)
	const length = 8 << 20
	base := mapAndTouch(t, p, length)

	target := base + 200*vm.PageSize
	agg, err := e.FindAggressors(target, base, length)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Mode != ManySided || len(agg.Decoys) != 6 {
		t.Fatalf("aggressors: mode=%v decoys=%d", agg.Mode, len(agg.Decoys))
	}
	mapper := m.DRAM().Mapper()
	ta, _ := p.Translate(target)
	td := mapper.ToDRAM(ta)
	for _, dva := range agg.Decoys {
		pa, _ := p.Translate(dva)
		da := mapper.ToDRAM(pa)
		if mapper.BankGroup(da) != mapper.BankGroup(td) {
			t.Fatal("decoy in wrong bank")
		}
		if dr := da.Row - td.Row; dr >= -3 && dr <= 3 {
			t.Fatalf("decoy too close to the victim: distance %d", dr)
		}
	}
}

// A many-sided run on a TRR-protected device flips where double-sided
// cannot: the end-to-end TRRespass bypass at the engine level.
func TestManySidedBeatsTRR(t *testing.T) {
	build := func(mode Mode, decoys int) (*kernel.Machine, *kernel.Process, *Engine, vm.VirtAddr) {
		cfg := kernel.DefaultConfig()
		cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 512, RowBytes: 8192}
		cfg.FaultModel = dram.FaultModel{
			WeakCellDensity: 0,
			BaseThreshold:   2000,
			ThresholdSpread: 0,
			NeighbourWeight: 0.25,
			RefreshInterval: 1 << 22,
			FlipReliability: 1.0,
			TRR:             dram.TRRConfig{Enabled: true, TrackerSize: 4, Threshold: 300},
		}
		cfg.Seed = 5
		m, err := kernel.NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := m.Spawn("attacker", 0)
		base := mapAndTouch(t, p, 8<<20)
		e := New(Config{Mode: mode, PairHammerCount: 3000, Decoys: decoys}, m, p)
		return m, p, e, base
	}

	// Plant the same weak cell in both machines at an attacker page.
	plant := func(m *kernel.Machine, p *kernel.Process, base vm.VirtAddr) vm.VirtAddr {
		target := base + 512*vm.PageSize
		pa, _ := p.Translate(target)
		da := m.DRAM().Mapper().ToDRAM(pa)
		m.DRAM().PlantWeakCell(dram.WeakCell{
			Bank: m.DRAM().Mapper().BankGroup(da), Row: da.Row,
			ByteInRow: da.Col, Bit: 2, Threshold: 2000, FlipTo: 0,
		})
		if err := p.Store(target, 0xFF); err != nil {
			t.Fatal(err)
		}
		return target
	}

	// Double-sided: TRR protects.
	m1, p1, e1, base1 := build(DoubleSided, 0)
	t1 := plant(m1, p1, base1)
	agg1, err := e1.FindAggressors(t1, base1, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.HammerDefault(agg1); err != nil {
		t.Fatal(err)
	}
	if got, _ := p1.Load(t1); got != 0xFF {
		t.Fatalf("TRR failed to stop double-sided: %#x", got)
	}

	// Many-sided with 8 decoys (> tracker size 4): flips.
	m2, p2, e2, base2 := build(ManySided, 8)
	t2 := plant(m2, p2, base2)
	agg2, err := e2.FindAggressors(t2, base2, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.HammerDefault(agg2); err != nil {
		t.Fatal(err)
	}
	if got, _ := p2.Load(t2); got != 0xFF&^(1<<2) {
		t.Fatalf("many-sided failed to bypass TRR: %#x (TRR fired %d times)",
			got, m2.DRAM().Stats().TRRRefreshes)
	}
}
