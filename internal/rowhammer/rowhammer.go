// Package rowhammer implements the attacker-side hammering toolkit of the
// paper's Section VI: locating aggressor rows around a victim row, the
// access-and-flush hammer loop, and memory templating — scanning the
// attacker's own allocation for disturbance-vulnerable bits ("after getting
// a bit-flip, she unmaps the corresponding page frame").
//
// Aggressor discovery needs to know which virtual addresses share a DRAM
// bank and which rows are physically adjacent.  A real attacker derives this
// from access-timing side channels (row-conflict latencies, as in the DRAMA
// work the paper builds on); the simulator stands that oracle in with the
// device's address mapper, which yields exactly the information the timing
// channel leaks and nothing more (bank equality and row indices — never
// cell contents or weak-cell locations).
package rowhammer

import (
	"fmt"
	"sort"

	"explframe/internal/dram"
	"explframe/internal/kernel"
	"explframe/internal/vm"
)

// Mode selects the hammering strategy.
type Mode int

// Hammering strategies: single-sided uses one adjacent aggressor row plus a
// far row in the same bank (to force row conflicts); double-sided uses both
// adjacent rows and is roughly twice as effective per access pair;
// many-sided is double-sided plus decoy rows that thrash TRR's aggressor
// tracker (the TRRespass bypass).
const (
	SingleSided Mode = iota
	DoubleSided
	ManySided
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case DoubleSided:
		return "double-sided"
	case ManySided:
		return "many-sided"
	default:
		return "single-sided"
	}
}

// Config tunes the engine.
type Config struct {
	// Mode is the hammering strategy.
	Mode Mode
	// PairHammerCount is the number of activation pairs per hammer run.
	// It must exceed the DRAM's weakest-cell threshold (within a refresh
	// window) for flips to appear.
	PairHammerCount int
	// MaxFlips stops templating after this many distinct flip sites have
	// been found; 0 means scan the entire region.  The ExplFrame attacker
	// only needs one vulnerable page, so early exit is the common case.
	MaxFlips int
	// Decoys is the number of tracker-thrashing rows many-sided hammering
	// adds around the double-sided pair.  It must exceed the TRR tracker
	// size for the bypass to work; ignored by other modes.
	Decoys int
}

// DefaultConfig uses double-sided hammering with a budget comfortably above
// the default fault model's weakest threshold.
func DefaultConfig() Config {
	return Config{
		Mode:            DoubleSided,
		PairHammerCount: 55000,
		MaxFlips:        0,
	}
}

// Aggressors identifies the attacker-mapped addresses used to hammer one
// victim row.
type Aggressors struct {
	VictimRow int           // DRAM row index under attack
	Bank      int           // dense bank-group index
	Upper     vm.VirtAddr   // address in row-1 (or the single aggressor)
	Lower     vm.VirtAddr   // address in row+1 (zero for single-sided)
	Decoys    []vm.VirtAddr // tracker-thrashing rows for many-sided mode
	Mode      Mode
}

// FlipSite records one templated vulnerable bit in the attacker's region.
type FlipSite struct {
	// VA is the attacker virtual address of the flipped byte.
	VA vm.VirtAddr
	// PageVA is the base of the page containing the flip — the page the
	// attacker will unmap to plant the frame.
	PageVA vm.VirtAddr
	// ByteInPage and Bit locate the flip within the page.
	ByteInPage int
	Bit        uint8
	// From is the value the bit held before flipping (1 for a 1->0 cell).
	From uint8
	// Agg are the aggressor addresses that produced the flip; re-hammering
	// them reproduces it.
	Agg Aggressors
}

// Stats counts engine activity.
type Stats struct {
	RowsScanned  uint64
	Pairsentries uint64 // hammer runs executed
	Activations  uint64 // hammer activations issued
	FlipsFound   uint64
}

// Engine drives hammering for one attacker process.
type Engine struct {
	cfg  Config
	proc *kernel.Process
	dev  *dram.Device
	st   Stats

	// Scratch buffers reused across hammer/template/probe calls, so the
	// steady-state attack loop allocates nothing: fillBuf holds the page
	// fill pattern, probeBuf the page read back for diffing, hammerVAs the
	// aggressor set handed to HammerLoop.
	fillBuf   []byte
	probeBuf  []byte
	hammerVAs []vm.VirtAddr
}

// New builds an engine for the process on the given machine.
func New(cfg Config, m *kernel.Machine, proc *kernel.Process) *Engine {
	return &Engine{cfg: cfg, proc: proc, dev: m.DRAM()}
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.st }

// rowOf returns the DRAM coordinates of the frame backing va, or ok=false
// when the page is not resident.
func (e *Engine) rowOf(va vm.VirtAddr) (dram.Addr, bool) {
	pa, ok := e.proc.Translate(va)
	if !ok {
		return dram.Addr{}, false
	}
	return e.dev.Mapper().ToDRAM(pa), true
}

// rowIndex builds a map from (bankGroup, row) to one resident page base per
// row within [base, base+length).
func (e *Engine) rowIndex(base vm.VirtAddr, length uint64) map[[2]int]vm.VirtAddr {
	idx := make(map[[2]int]vm.VirtAddr)
	mapper := e.dev.Mapper()
	for off := uint64(0); off < length; off += vm.PageSize {
		va := base + vm.VirtAddr(off)
		a, ok := e.rowOf(va)
		if !ok {
			continue
		}
		key := [2]int{mapper.BankGroup(a), a.Row}
		if _, dup := idx[key]; !dup {
			idx[key] = va
		}
	}
	return idx
}

// FindAggressors locates attacker-mapped pages adjacent to the row backing
// target, searching [base, base+length) of the attacker's own mapping.
// Double-sided mode requires both neighbours; single-sided needs only one
// plus any other same-bank row for conflicts.
func (e *Engine) FindAggressors(target vm.VirtAddr, base vm.VirtAddr, length uint64) (Aggressors, error) {
	ta, ok := e.rowOf(target)
	if !ok {
		return Aggressors{}, fmt.Errorf("rowhammer: target %#x not resident", uint64(target))
	}
	mapper := e.dev.Mapper()
	bg := mapper.BankGroup(ta)
	idx := e.rowIndex(base, length)
	// Row adjacency comes from the mapper, never from index arithmetic:
	// which row is the electrical neighbour (and whether one exists at the
	// bank edge) is a property of the machine's topology.
	up, upOK := e.neighbourPage(idx, bg, ta.Row, -1)
	down, downOK := e.neighbourPage(idx, bg, ta.Row, +1)
	switch e.cfg.Mode {
	case DoubleSided:
		if !upOK || !downOK {
			return Aggressors{}, fmt.Errorf("rowhammer: no double-sided aggressors for row %d", ta.Row)
		}
		return Aggressors{VictimRow: ta.Row, Bank: bg, Upper: up, Lower: down, Mode: DoubleSided}, nil
	case ManySided:
		if !upOK || !downOK {
			return Aggressors{}, fmt.Errorf("rowhammer: no double-sided aggressors for row %d", ta.Row)
		}
		agg := Aggressors{VictimRow: ta.Row, Bank: bg, Upper: up, Lower: down, Mode: ManySided}
		decoys, ok := e.selectDecoys(idx, bg, ta.Row)
		if !ok {
			return Aggressors{}, fmt.Errorf("rowhammer: fewer than %d decoy rows available in bank %d",
				e.cfg.Decoys, bg)
		}
		agg.Decoys = decoys
		return agg, nil
	default:
		// Single-sided: one adjacent row plus a far conflict row.
		var near vm.VirtAddr
		switch {
		case upOK:
			near = up
		case downOK:
			near = down
		default:
			return Aggressors{}, fmt.Errorf("rowhammer: no adjacent aggressor for row %d", ta.Row)
		}
		// Deterministic far-row choice: the lowest-numbered same-bank row
		// outside the victim's neighbourhood (map order would randomise the
		// activation trace run to run).
		near1, near1OK := mapper.AdjacentRow(ta.Row, -1)
		near2, near2OK := mapper.AdjacentRow(ta.Row, +1)
		farRow := -1
		for key := range idx {
			if key[0] != bg {
				continue
			}
			if key[1] == ta.Row || (near1OK && key[1] == near1) || (near2OK && key[1] == near2) {
				continue
			}
			if farRow < 0 || key[1] < farRow {
				farRow = key[1]
			}
		}
		if farRow < 0 {
			return Aggressors{}, fmt.Errorf("rowhammer: no conflict row in bank %d", bg)
		}
		far := idx[[2]int{bg, farRow}]
		return Aggressors{VictimRow: ta.Row, Bank: bg, Upper: near, Lower: far, Mode: SingleSided}, nil
	}
}

// neighbourPage resolves the attacker-mapped page backing the row at the
// given adjacency distance from row, via the mapper's adjacency relation.
// ok is false when no such row exists (bank edge) or the attacker owns no
// page in it.
func (e *Engine) neighbourPage(idx map[[2]int]vm.VirtAddr, bg, row, delta int) (vm.VirtAddr, bool) {
	r, ok := e.dev.Mapper().AdjacentRow(row, delta)
	if !ok {
		return 0, false
	}
	va, ok := idx[[2]int{bg, r}]
	return va, ok
}

// selectDecoys picks cfg.Decoys tracker-thrashing rows from the index:
// same bank, far enough from the victim row (distance > 3) to contribute no
// disturbance, only TRR tracker pressure.  Selection is by ascending row so
// a given layout always yields the same decoy set (determinism).
func (e *Engine) selectDecoys(idx map[[2]int]vm.VirtAddr, bg, victimRow int) ([]vm.VirtAddr, bool) {
	var rows []int
	for key := range idx {
		if key[0] != bg {
			continue
		}
		if dr := key[1] - victimRow; dr >= -3 && dr <= 3 {
			continue
		}
		rows = append(rows, key[1])
	}
	sort.Ints(rows)
	var decoys []vm.VirtAddr
	for _, r := range rows {
		if len(decoys) >= e.cfg.Decoys {
			break
		}
		decoys = append(decoys, idx[[2]int{bg, r}])
	}
	return decoys, len(decoys) >= e.cfg.Decoys
}

// Hammer executes one hammer run on the aggressor set: n rounds of
// alternating activations (the access-flush-access loop of Kim et al.).
// Many-sided runs interleave the decoy rows into every round, keeping the
// TRR tracker saturated.
func (e *Engine) Hammer(agg Aggressors, n int) error {
	vas := append(e.hammerVAs[:0], agg.Upper, agg.Lower)
	vas = append(vas, agg.Decoys...)
	e.hammerVAs = vas
	if err := e.proc.HammerLoop(vas, n); err != nil {
		return err
	}
	e.st.Pairsentries++
	e.st.Activations += uint64(n * (2 + len(agg.Decoys)))
	return nil
}

// HammerDefault runs Hammer with the configured budget.
func (e *Engine) HammerDefault(agg Aggressors) error {
	return e.Hammer(agg, e.cfg.PairHammerCount)
}
