package rowhammer

import (
	"testing"

	"explframe/internal/vm"
)

// Templating must be a pure function of (machine seed, engine config):
// identical runs discover identical flip sites in identical order.  The
// attack's reproducibility — and EXPERIMENTS.md — depends on this.
func TestTemplateDeterminism(t *testing.T) {
	run := func() []FlipSite {
		m, p := testMachine(t, 5e-5, 99)
		e := testEngine(m, p)
		const length = 2 << 20
		base := mapAndTouch(t, p, length)
		flips, err := e.Template(base, length)
		if err != nil {
			t.Fatal(err)
		}
		return flips
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("flip counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].VA != b[i].VA || a[i].Bit != b[i].Bit || a[i].From != b[i].From ||
			a[i].Agg.VictimRow != b[i].Agg.VictimRow || a[i].Agg.Bank != b[i].Agg.Bank {
			t.Fatalf("flip %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TemplateUntil must stop at the same site every time for the same
// predicate.
func TestTemplateUntilDeterminism(t *testing.T) {
	accept := func(f FlipSite) bool { return f.ByteInPage < 256 }
	run := func() (FlipSite, bool) {
		m, p := testMachine(t, 5e-5, 99)
		e := testEngine(m, p)
		const length = 4 << 20
		base := mapAndTouch(t, p, length)
		site, _, found, err := e.TemplateUntil(base, length, accept)
		if err != nil {
			t.Fatal(err)
		}
		return site, found
	}
	s1, f1 := run()
	s2, f2 := run()
	if f1 != f2 {
		t.Fatalf("found flags diverged: %v vs %v", f1, f2)
	}
	if f1 && (s1.VA != s2.VA || s1.Bit != s2.Bit) {
		t.Fatalf("sites diverged: %+v vs %+v", s1, s2)
	}
	_ = vm.PageSize
}
