package rowhammer_test

import (
	"fmt"

	"explframe/internal/dram"
	"explframe/internal/kernel"
	"explframe/internal/rowhammer"
	"explframe/internal/vm"
)

// ExampleEngine shows the attack's reconnaissance phase (the narrated tour
// is examples/rowhammer-templating): template a buffer for repeatable bit
// flips with double-sided hammering, then re-hammer the first site to
// confirm it reproduces.
func ExampleEngine() {
	cfg := kernel.DefaultConfig()
	cfg.Seed = 7
	cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
	cfg.FaultModel = dram.FaultModel{
		WeakCellDensity: 1e-4, // a weak module, the attack's favourable case
		BaseThreshold:   4000,
		ThresholdSpread: 1.0,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 21,
		FlipReliability: 1.0, // always reproduce, keeping the example output stable
	}
	m, err := kernel.NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	attacker, err := m.Spawn("attacker", 0)
	if err != nil {
		panic(err)
	}

	const bufLen = 4 << 20
	base, err := attacker.Mmap(bufLen)
	if err != nil {
		panic(err)
	}
	if err := attacker.Touch(base, bufLen); err != nil {
		panic(err)
	}

	engine := rowhammer.New(rowhammer.Config{
		Mode:            rowhammer.DoubleSided,
		PairHammerCount: 9000,
		MaxFlips:        3, // stop early; one good page is enough
	}, m, attacker)
	flips, err := engine.Template(base, bufLen)
	if err != nil {
		panic(err)
	}
	fmt.Printf("templated %d flip sites\n", len(flips))

	pattern := rowhammer.PatternOnes
	if flips[0].From == 0 {
		pattern = rowhammer.PatternZeros
	}
	m.DRAM().Refresh() // a fresh refresh window, as real time spacing would give
	again, err := engine.Reproduce(flips[0], pattern)
	if err != nil {
		panic(err)
	}
	fmt.Printf("site 0 reproduces: %v\n", again)
	_ = vm.PageSize
	// Output:
	// templated 4 flip sites
	// site 0 reproduces: true
}
