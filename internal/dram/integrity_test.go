package dram

import (
	"testing"

	"explframe/internal/stats"
)

// Data integrity property: under arbitrary activation storms, only bytes
// containing weak cells may ever deviate from what was written — sound
// cells never corrupt spontaneously.
func TestActivationStormOnlyFlipsWeakCells(t *testing.T) {
	g := Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 256, RowBytes: 2048}
	model := FaultModel{
		WeakCellDensity: 5e-5,
		BaseThreshold:   500,
		ThresholdSpread: 1.0,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 20,
		FlipReliability: 1.0,
	}
	d, err := NewDevice(g, model, 123)
	if err != nil {
		t.Fatal(err)
	}
	// Write a position-dependent pattern everywhere (bypassing activation
	// to keep the storm the only disturbance source).
	size := d.Size()
	for pa := uint64(0); pa < size; pa++ {
		d.WriteNoActivate(pa, byte(pa*7+3))
	}
	// Record where weak cells live.
	weakBytes := map[uint64]bool{}
	for _, wc := range d.WeakCellsInRange(0, size) {
		weakBytes[d.PhysOfWeakCell(wc)] = true
	}

	rng := stats.NewRNG(5)
	for i := 0; i < 300000; i++ {
		d.ActivateRow(uint64(rng.Int63()) % size)
	}

	deviations := 0
	for pa := uint64(0); pa < size; pa++ {
		if d.ReadNoActivate(pa) != byte(pa*7+3) {
			if !weakBytes[pa] {
				t.Fatalf("sound byte %d corrupted", pa)
			}
			deviations++
		}
	}
	if deviations == 0 {
		t.Fatal("storm flipped nothing despite low thresholds (model suspiciously inert)")
	}
	if d.Stats().BitFlips == 0 {
		t.Fatal("flip counter not incremented")
	}
}

// Device behaviour must be a pure function of (geometry, model, seed) and
// the operation sequence.
func TestDeviceDeterminism(t *testing.T) {
	run := func() (DeviceStats, []byte) {
		g := Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 256, RowBytes: 2048}
		model := DefaultFaultModel()
		model.WeakCellDensity = 1e-4
		model.BaseThreshold = 400
		model.FlipReliability = 0.9 // exercises the RNG path too
		d, err := NewDevice(g, model, 99)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(7)
		for pa := uint64(0); pa < d.Size(); pa += 64 {
			d.WriteNoActivate(pa, 0xFF)
		}
		for i := 0; i < 100000; i++ {
			d.ActivateRow(uint64(rng.Int63()) % d.Size())
		}
		sample := make([]byte, 0, 4096)
		for pa := uint64(0); pa < d.Size(); pa += 1024 {
			sample = append(sample, d.ReadNoActivate(pa))
		}
		return d.Stats(), sample
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("data diverged at sample %d", i)
		}
	}
}
