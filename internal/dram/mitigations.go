package dram

import "fmt"

// This file models the two hardware mitigations the Rowhammer literature
// deploys against the paper's attack, so the repository can evaluate the
// defence side (experiment E13):
//
//   - TRR (Target Row Refresh): the device samples aggressor-row
//     activations in a small per-bank tracker and proactively refreshes
//     the neighbours of rows that are hammered past a threshold.  Real
//     samplers have limited capacity, which is why many-sided patterns
//     (TRRespass, Frigo et al. 2020) still flip bits: decoy rows thrash
//     the tracker so the true aggressors never accumulate visible counts.
//
//   - ECC (SEC-DED): single-error-correct/double-error-detect codes over
//     64-bit words.  A single flipped bit per word is corrected on read;
//     two or more observable flips in one word escape correction.

// TRRConfig parameterises the in-DRAM Target Row Refresh sampler.
type TRRConfig struct {
	// Enabled turns the mitigation on.
	Enabled bool `json:"enabled,omitempty"`
	// TrackerSize is the number of rows tracked per bank group (real
	// devices: on the order of 2..32 entries).
	TrackerSize int `json:"tracker_size,omitempty"`
	// Threshold is the tracked activation count that triggers a neighbour
	// refresh.  It must be far below the weak-cell threshold to protect.
	Threshold int `json:"threshold,omitempty"`
}

// ECCMode selects the error-correction model.
type ECCMode int

// ECC modes.
const (
	// ECCNone disables correction (commodity non-ECC DIMMs, the paper's
	// setting).
	ECCNone ECCMode = iota
	// ECCSecDed corrects one observable flip per aligned 64-bit word and
	// lets 2+ flips through (miscorrection is not modelled; multi-bit
	// words count as uncorrectable and are reported raw).
	ECCSecDed
)

// String names the ECC mode the way machine-spec JSON spells it.
func (m ECCMode) String() string {
	if m == ECCSecDed {
		return "sec-ded"
	}
	return "none"
}

// MarshalJSON renders the mode as its string name, keeping machine-spec
// files readable ("sec-ded", not 1).
func (m ECCMode) MarshalJSON() ([]byte, error) {
	return []byte(`"` + m.String() + `"`), nil
}

// UnmarshalJSON parses the string names; unknown names are rejected so a
// typoed spec fails loudly.
func (m *ECCMode) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"none"`, `""`:
		*m = ECCNone
	case `"sec-ded"`:
		*m = ECCSecDed
	default:
		return fmt.Errorf("dram: unknown ecc mode %s (want \"none\" or \"sec-ded\")", data)
	}
	return nil
}

// trrEntry is one tracker slot.
type trrEntry struct {
	row   int
	count int
	used  uint64 // last-use stamp for LRU eviction
}

// trrState is the per-bank-group sampler.
type trrState struct {
	entries []trrEntry
	clock   uint64
}

// initTRR allocates tracker state when the mitigation is enabled.
func (d *Device) initTRR() {
	if !d.model.TRR.Enabled || d.model.TRR.TrackerSize <= 0 {
		return
	}
	d.trr = make([]trrState, d.geom.NumBankGroups())
	for i := range d.trr {
		d.trr[i].entries = make([]trrEntry, 0, d.model.TRR.TrackerSize)
	}
}

// trrObserve feeds one activation of (bg, row) into the sampler and fires a
// neighbour refresh when the tracked count crosses the threshold.
func (d *Device) trrObserve(bg, row int) {
	st := &d.trr[bg]
	st.clock++
	for i := range st.entries {
		if st.entries[i].row == row {
			st.entries[i].count++
			st.entries[i].used = st.clock
			if st.entries[i].count >= d.model.TRR.Threshold {
				d.trrRefreshNeighbours(bg, row)
				st.entries[i].count = 0
			}
			return
		}
	}
	// Not tracked: insert, evicting the least recently used entry when the
	// tracker is full.  Eviction forgets the count — the weakness
	// many-sided patterns exploit.
	if len(st.entries) < cap(st.entries) {
		st.entries = append(st.entries, trrEntry{row: row, count: 1, used: st.clock})
		return
	}
	lru := 0
	for i := range st.entries {
		if st.entries[i].used < st.entries[lru].used {
			lru = i
		}
	}
	st.entries[lru] = trrEntry{row: row, count: 1, used: st.clock}
}

// trrRefreshNeighbours recharges the rows adjacent to the hammered row:
// their disturbance accumulators reset, exactly like a targeted refresh.
func (d *Device) trrRefreshNeighbours(bg, row int) {
	d.stats.TRRRefreshes++
	for dr := -2; dr <= 2; dr++ {
		r := row + dr
		if dr == 0 || r < 0 || r >= d.geom.Rows {
			continue
		}
		si := d.rowIdx[d.rowIndex(bg, r)]
		if si < 0 {
			continue
		}
		d.rowStates[si].disturb = 0
		for _, wc := range d.rowStates[si].cells {
			wc.held = false
		}
		d.recomputeMinThr(si)
	}
}

// eccCorrect applies SEC-DED over the aligned 64-bit word containing pa:
// with exactly one observably flipped bit in the word the read returns the
// corrected byte; with two or more the raw (corrupted) byte is returned and
// the uncorrectable counter increments.
func (d *Device) eccCorrect(pa uint64, raw byte) byte {
	wordBase := pa &^ 7
	a := d.mapper.ToDRAM(wordBase)
	bg := d.mapper.BankGroup(a)
	idx := d.rowIndex(bg, a.Row)
	var flips []*WeakCell
	for _, wc := range d.cellsAt(idx) {
		if wc.corrupted && wc.ByteInRow >= a.Col && wc.ByteInRow < a.Col+8 {
			flips = append(flips, wc)
		}
	}
	switch len(flips) {
	case 0:
		return raw
	case 1:
		d.stats.ECCCorrected++
		wc := flips[0]
		if uint64(wc.ByteInRow-a.Col) == pa-wordBase {
			return raw ^ (1 << wc.Bit) // correct the bit in the requested byte
		}
		return raw // flip sits in another byte of the word
	default:
		d.stats.ECCUncorrectable++
		return raw
	}
}
