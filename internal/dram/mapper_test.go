package dram

import (
	"testing"

	"explframe/internal/stats"
)

// mapperTestGeometries covers the shapes the built-in machine profiles use
// plus a multi-channel/multi-rank part that exercises every bit field.
var mapperTestGeometries = []Geometry{
	DefaultGeometry(),
	{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192},
	{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 16, Rows: 8192, RowBytes: 4096},
	{Channels: 2, DIMMs: 2, Ranks: 2, Banks: 8, Rows: 512, RowBytes: 2048},
}

// Every registered mapper must be a bijection on the address space:
// ToPhys(ToDRAM(pa)) == pa over random in-range addresses, with coordinates
// staying inside the geometry.  This is the interface contract the device
// layer's data integrity stands on.
func TestMapperRoundTrip(t *testing.T) {
	for _, name := range MapperNames() {
		for _, g := range mapperTestGeometries {
			m, err := NewNamedMapper(name, g)
			if err != nil {
				t.Fatalf("NewNamedMapper(%q, %+v): %v", name, g, err)
			}
			rng := stats.NewRNG(42)
			total := g.TotalBytes()
			for i := 0; i < 20000; i++ {
				pa := rng.Uint64() % total
				a := m.ToDRAM(pa)
				if a.Channel >= g.Channels || a.DIMM >= g.DIMMs || a.Rank >= g.Ranks ||
					a.Bank >= g.Banks || a.Row >= g.Rows || a.Col >= g.RowBytes {
					t.Fatalf("%s/%+v: ToDRAM(%#x) = %+v out of geometry", name, g, pa, a)
				}
				if back := m.ToPhys(a); back != pa {
					t.Fatalf("%s/%+v: ToPhys(ToDRAM(%#x)) = %#x", name, g, pa, back)
				}
			}
		}
	}
}

// A sampled contiguous window must map to exactly as many distinct
// coordinates as it has addresses — bijectivity, not merely a right
// inverse.
func TestMapperBijectiveWindow(t *testing.T) {
	const window = 1 << 16
	for _, name := range MapperNames() {
		for _, g := range mapperTestGeometries {
			m, err := NewNamedMapper(name, g)
			if err != nil {
				t.Fatal(err)
			}
			base := g.TotalBytes()/2 - window/2
			seen := make(map[Addr]bool, window)
			for off := uint64(0); off < window; off++ {
				a := m.ToDRAM(base + off)
				if seen[a] {
					t.Fatalf("%s/%+v: coordinate %v hit twice within one window", name, g, a)
				}
				seen[a] = true
			}
		}
	}
}

// AdjacentRow must express physical neighbourhood: symmetric around the
// starting row, identity at distance zero and closed at the bank edges.
func TestMapperAdjacentRow(t *testing.T) {
	for _, name := range MapperNames() {
		m, err := NewNamedMapper(name, DefaultGeometry())
		if err != nil {
			t.Fatal(err)
		}
		rows := m.Geometry().Rows
		if r, ok := m.AdjacentRow(10, 0); !ok || r != 10 {
			t.Fatalf("%s: AdjacentRow(10, 0) = %d, %v", name, r, ok)
		}
		if r, ok := m.AdjacentRow(10, +1); !ok || r != 11 {
			t.Fatalf("%s: AdjacentRow(10, +1) = %d, %v", name, r, ok)
		}
		if r, ok := m.AdjacentRow(11, -1); !ok || r != 10 {
			t.Fatalf("%s: AdjacentRow(11, -1) = %d, %v", name, r, ok)
		}
		if _, ok := m.AdjacentRow(0, -1); ok {
			t.Fatalf("%s: AdjacentRow(0, -1) exists past the bank edge", name)
		}
		if _, ok := m.AdjacentRow(rows-1, +1); ok {
			t.Fatalf("%s: AdjacentRow(last, +1) exists past the bank edge", name)
		}
	}
}

// The XOR-folded mapper must actually differ from the linear one (same
// geometry, different bank for some addresses) while keeping column bits
// lowest — the contract the device's bulk paths rely on.
func TestXORFoldDiffersFromLinear(t *testing.T) {
	g := Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 16, Rows: 8192, RowBytes: 4096}
	lin, err := NewNamedMapper(MapperLinear, g)
	if err != nil {
		t.Fatal(err)
	}
	xf, err := NewNamedMapper(MapperXORFold, g)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	rng := stats.NewRNG(7)
	for i := 0; i < 10000; i++ {
		pa := rng.Uint64() % g.TotalBytes()
		la, xa := lin.ToDRAM(pa), xf.ToDRAM(pa)
		if la.Row != xa.Row || la.Col != xa.Col {
			t.Fatalf("row/col bits must agree between mappers: %#x -> %v vs %v", pa, la, xa)
		}
		if la.Bank != xa.Bank {
			differs = true
		}
		// Column bits lowest: advancing within one row only moves Col.
		if xa.Col+1 < g.RowBytes {
			next := xf.ToDRAM(pa + 1)
			if next.Row != xa.Row || next.Bank != xa.Bank || next.Col != xa.Col+1 {
				t.Fatalf("column bits not lowest: %#x -> %v, +1 -> %v", pa, xa, next)
			}
		}
	}
	if !differs {
		t.Fatal("xor-fold mapper never diverges from the linear bank permutation")
	}
}

// Unknown mapper kinds must be rejected with the known list.
func TestNewNamedMapperUnknown(t *testing.T) {
	if _, err := NewNamedMapper("strided", DefaultGeometry()); err == nil {
		t.Fatal("NewNamedMapper accepted an unknown kind")
	}
	if m, err := NewNamedMapper("", DefaultGeometry()); err != nil || m.Name() != MapperLinear {
		t.Fatalf("empty kind should alias linear, got %v, %v", m, err)
	}
}

// FuzzMapperRoundTrip lets the fuzzer hunt for round-trip violations in
// every registered mapper at once.
func FuzzMapperRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(4095))
	f.Add(uint64(1 << 27))
	g := DefaultGeometry()
	mappers := make([]AddressMapper, 0, len(MapperNames()))
	for _, name := range MapperNames() {
		m, err := NewNamedMapper(name, g)
		if err != nil {
			f.Fatal(err)
		}
		mappers = append(mappers, m)
	}
	f.Fuzz(func(t *testing.T, pa uint64) {
		pa %= g.TotalBytes()
		for _, m := range mappers {
			if back := m.ToPhys(m.ToDRAM(pa)); back != pa {
				t.Fatalf("%s: ToPhys(ToDRAM(%#x)) = %#x", m.Name(), pa, back)
			}
		}
	})
}

// SameBankRow and BankGroup must agree for every mapper: the relocated
// address stays in the same bank group with the requested row and column.
func TestMapperSameBankRow(t *testing.T) {
	for _, name := range MapperNames() {
		m, err := NewNamedMapper(name, DefaultGeometry())
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("Name() = %q, want %q", m.Name(), name)
		}
		a := m.ToDRAM(4096 * 777)
		pa := m.SameBankRow(a, a.Row+1, 5)
		b := m.ToDRAM(pa)
		if m.BankGroup(b) != m.BankGroup(a) {
			t.Fatalf("%s: SameBankRow left the bank group: %v vs %v", name, b, a)
		}
		if b.Row != a.Row+1 || b.Col != 5 {
			t.Fatalf("%s: SameBankRow landed at %v", name, b)
		}
	}
}
