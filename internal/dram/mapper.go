package dram

import (
	"fmt"
	"sort"
)

// AddressMapper converts between flat physical addresses and DRAM
// coordinates.  Real memory controllers implement wildly different layouts
// (DRAMA reverse-engineered XOR bank functions on Intel, linear layouts on
// low-end SoCs), and the attack surface of ExplFrame — which rows are
// adjacent, which addresses collide in a bank — is a function of exactly
// this mapping, so the simulator makes it pluggable.
//
// Implementations must satisfy two contracts the device layer relies on:
//
//   - Bijectivity: ToPhys(ToDRAM(pa)) == pa for every pa within the
//     geometry (TestMapperRoundTrip pins this for every registered mapper).
//   - Column bits lowest: the low log2(RowBytes) bits of a physical address
//     are the column, so a contiguous physical range decomposes into
//     whole-row segments (Device.rearmRange and the bulk read/write paths
//     scan per row, not per byte).
//
// Addr.Row is always the physical row index inside a bank: rows r-1 and
// r+1 are the electrically adjacent neighbours that Rowhammer disturbs.
// Mappers differ in how physical addresses land on (bank, row), never in
// what "adjacent" means; AdjacentRow exposes that adjacency to the
// attacker-side toolkit so row selection needs no raw index arithmetic.
type AddressMapper interface {
	// Name is the registered mapper kind (e.g. "linear", "xor-fold").
	Name() string
	// Geometry returns the geometry the mapper was built for.
	Geometry() Geometry
	// ToDRAM maps a flat physical address to DRAM coordinates.  Addresses
	// beyond the geometry wrap (callers stay in range; the wrap keeps the
	// function total for property tests).
	ToDRAM(pa uint64) Addr
	// ToPhys is the inverse of ToDRAM.
	ToPhys(a Addr) uint64
	// BankGroup returns a dense index identifying the (channel, dimm,
	// rank, bank) tuple of the address; rows within one bank group share a
	// row buffer and disturb each other.
	BankGroup(a Addr) int
	// SameBankRow returns the physical address of (row, col) within the
	// same bank group as the given address — the primitive for locating
	// aggressor rows around a victim row.
	SameBankRow(a Addr, row, col int) uint64
	// AdjacentRow returns the row index at the given signed distance from
	// row, and whether it exists within the bank (false past either edge).
	AdjacentRow(row, delta int) (int, bool)
}

// Mapper kind names accepted by NewNamedMapper (and machine specs).
const (
	// MapperLinear is the classic layout with bank bits XOR-ed against the
	// low row bits only.
	MapperLinear = "linear"
	// MapperXORFold is the Intel-style bank function: bank bits XOR-folded
	// from several row-bit windows.
	MapperXORFold = "xor-fold"
)

// mapperKinds maps kind names onto constructors.  "" aliases linear so
// zero-valued configs keep their historical meaning.
var mapperKinds = map[string]func(Geometry) (AddressMapper, error){
	"":            func(g Geometry) (AddressMapper, error) { return NewMapper(g) },
	MapperLinear:  func(g Geometry) (AddressMapper, error) { return NewMapper(g) },
	MapperXORFold: func(g Geometry) (AddressMapper, error) { return NewXORFoldMapper(g) },
}

// NewNamedMapper builds the mapper kind registered under name for the
// geometry; the empty name selects the linear mapper.
func NewNamedMapper(name string, g Geometry) (AddressMapper, error) {
	ctor, ok := mapperKinds[name]
	if !ok {
		return nil, fmt.Errorf("dram: unknown mapper %q (known: %v)", name, MapperNames())
	}
	return ctor(g)
}

// MapperNames returns the registered mapper kind names, sorted.
func MapperNames() []string {
	out := make([]string, 0, len(mapperKinds)-1)
	for n := range mapperKinds {
		if n != "" {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// bitfields carries the per-dimension widths shared by the built-in
// mappers, all of which use the layout (least to most significant)
//
//	[ col | channel | dimm | rank | bank | row ]
//
// and differ only in the bank permutation function.
type bitfields struct {
	g        Geometry
	colBits  uint
	chBits   uint
	dimmBits uint
	rankBits uint
	bankBits uint
	rowBits  uint
}

func newBitfields(g Geometry) (bitfields, error) {
	if err := g.Validate(); err != nil {
		return bitfields{}, err
	}
	return bitfields{
		g:        g,
		colBits:  log2(g.RowBytes),
		chBits:   log2(g.Channels),
		dimmBits: log2(g.DIMMs),
		rankBits: log2(g.Ranks),
		bankBits: log2(g.Banks),
		rowBits:  log2(g.Rows),
	}, nil
}

// split decomposes pa into coordinates with the raw (unpermuted) bank.
func (b *bitfields) split(pa uint64) (a Addr, bankRaw int) {
	shift := uint(0)
	a.Col = extract(pa, shift, b.colBits)
	shift += b.colBits
	a.Channel = extract(pa, shift, b.chBits)
	shift += b.chBits
	a.DIMM = extract(pa, shift, b.dimmBits)
	shift += b.dimmBits
	a.Rank = extract(pa, shift, b.rankBits)
	shift += b.rankBits
	bankRaw = extract(pa, shift, b.bankBits)
	shift += b.bankBits
	a.Row = extract(pa, shift, b.rowBits)
	return a, bankRaw
}

// join is the inverse of split.
func (b *bitfields) join(a Addr, bankRaw int) uint64 {
	pa := uint64(0)
	shift := uint(0)
	pa |= uint64(a.Col) << shift
	shift += b.colBits
	pa |= uint64(a.Channel) << shift
	shift += b.chBits
	pa |= uint64(a.DIMM) << shift
	shift += b.dimmBits
	pa |= uint64(a.Rank) << shift
	shift += b.rankBits
	pa |= uint64(bankRaw) << shift
	shift += b.bankBits
	pa |= uint64(a.Row) << shift
	return pa
}

// bankGroup returns the dense (channel, dimm, rank, bank) index.
func (b *bitfields) bankGroup(a Addr) int {
	idx := a.Channel
	idx = idx*b.g.DIMMs + a.DIMM
	idx = idx*b.g.Ranks + a.Rank
	idx = idx*b.g.Banks + a.Bank
	return idx
}

// adjacentRow implements physical row adjacency, shared by the built-in
// mappers: the neighbour at a signed distance, bounded by the bank edges.
func (b *bitfields) adjacentRow(row, delta int) (int, bool) {
	r := row + delta
	if r < 0 || r >= b.g.Rows {
		return 0, false
	}
	return r, true
}

// Mapper implements AddressMapper for the layout family every built-in
// kind shares — the bit order above — parameterised by the bank
// permutation: bank = bankRaw XOR fold(row).  Any fold of the row alone
// keeps the mapping bijective (for a fixed row it is an XOR with a
// constant), so new kinds are one constructor plus one fold function.
type Mapper struct {
	bitfields
	name string
	fold func(row int) int
}

// NewMapper builds the linear mapper: bank bits XOR-ed against the low row
// bits only ("bank permutation" or rank/bank hashing, as used by real
// memory controllers and reverse engineered by the DRAMA work).  The XOR
// spreads sequential rows across banks, which is what makes same-bank/
// different-row aggressor pairs non-trivial to find — the property the
// Rowhammer templating step has to work around, so the model keeps it.
func NewMapper(g Geometry) (*Mapper, error) {
	b, err := newBitfields(g)
	if err != nil {
		return nil, err
	}
	mask := g.Banks - 1
	return &Mapper{bitfields: b, name: MapperLinear, fold: func(row int) int {
		return row & mask
	}}, nil
}

// NewXORFoldMapper builds the multi-tap XOR bank function DRAMA recovered
// from Intel memory controllers (and DDR4 bank-group interleaving): the
// bank index is XOR-folded from *several* windows of row bits, not just
// the lowest one.  Compared to the linear mapper, sequential physical rows
// scatter across banks in a longer-period pattern, so the set of physical
// addresses that share a bank — what an attacker must reverse to hammer at
// all — is differently shaped while row adjacency stays physical.
func NewXORFoldMapper(g Geometry) (*Mapper, error) {
	b, err := newBitfields(g)
	if err != nil {
		return nil, err
	}
	mask := g.Banks - 1
	bankBits := b.bankBits
	return &Mapper{bitfields: b, name: MapperXORFold, fold: func(row int) int {
		return (row ^ (row >> bankBits) ^ (row >> (2 * bankBits))) & mask
	}}, nil
}

// Name returns the registered kind the mapper was built as.
func (m *Mapper) Name() string { return m.name }

// Geometry returns the geometry the mapper was built for.
func (m *Mapper) Geometry() Geometry { return m.g }

func extract(pa uint64, shift, bits uint) int {
	return int((pa >> shift) & ((1 << bits) - 1))
}

// ToDRAM maps a flat physical address to DRAM coordinates.
func (m *Mapper) ToDRAM(pa uint64) Addr {
	a, bankRaw := m.split(pa)
	a.Bank = bankRaw ^ m.fold(a.Row)
	return a
}

// ToPhys is the inverse of ToDRAM.
func (m *Mapper) ToPhys(a Addr) uint64 {
	return m.join(a, a.Bank^m.fold(a.Row))
}

// BankGroup returns a dense index identifying the (channel, dimm, rank,
// bank) tuple of the address.
func (m *Mapper) BankGroup(a Addr) int { return m.bankGroup(a) }

// SameBankRow returns the physical address of (row, col) within the same
// bank group as the given address.
func (m *Mapper) SameBankRow(a Addr, row, col int) uint64 {
	n := a
	n.Row = row
	n.Col = col
	return m.ToPhys(n)
}

// AdjacentRow returns the physically adjacent row at the given distance.
func (m *Mapper) AdjacentRow(row, delta int) (int, bool) { return m.adjacentRow(row, delta) }
