package dram

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometryValid(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if got, want := g.TotalBytes(), uint64(256<<20); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
	if got, want := g.NumBankGroups(), 8; got != want {
		t.Fatalf("NumBankGroups = %d, want %d", got, want)
	}
}

func TestGeometryValidateRejectsNonPowerOfTwo(t *testing.T) {
	g := DefaultGeometry()
	g.Rows = 3000
	if err := g.Validate(); err == nil {
		t.Fatal("expected error for non-power-of-two rows")
	}
	g = DefaultGeometry()
	g.Banks = 0
	if err := g.Validate(); err == nil {
		t.Fatal("expected error for zero banks")
	}
	g = DefaultGeometry()
	g.RowBytes = -8
	if err := g.Validate(); err == nil {
		t.Fatal("expected error for negative row bytes")
	}
}

// Round-trip and in-range properties for every registered mapper kind live
// in mapper_test.go (TestMapperRoundTrip); the quick-check below keeps the
// historical linear-mapper coordinate coverage.
func TestMapperCoordinatesInRange(t *testing.T) {
	g := DefaultGeometry()
	m, err := NewMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pa uint64) bool {
		pa %= g.TotalBytes()
		a := m.ToDRAM(pa)
		return a.Channel >= 0 && a.Channel < g.Channels &&
			a.DIMM >= 0 && a.DIMM < g.DIMMs &&
			a.Rank >= 0 && a.Rank < g.Ranks &&
			a.Bank >= 0 && a.Bank < g.Banks &&
			a.Row >= 0 && a.Row < g.Rows &&
			a.Col >= 0 && a.Col < g.RowBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Adjacent physical bytes within a row must stay in the same row: the column
// bits are the lowest bits of the address.
func TestMapperColumnLocality(t *testing.T) {
	g := DefaultGeometry()
	m, _ := NewMapper(g)
	base := uint64(12345) * uint64(g.RowBytes)
	a0 := m.ToDRAM(base)
	for off := 1; off < g.RowBytes; off *= 2 {
		a := m.ToDRAM(base + uint64(off))
		if a.Row != a0.Row || a.Bank != a0.Bank || a.Channel != a0.Channel {
			t.Fatalf("offset %d left the row: %v vs %v", off, a, a0)
		}
	}
}

// The bank permutation must spread consecutive rows across banks: walking the
// row index at a fixed raw address region should not keep the same bank.
func TestMapperBankPermutationSpreads(t *testing.T) {
	g := DefaultGeometry()
	m, _ := NewMapper(g)
	seen := map[int]bool{}
	for row := 0; row < g.Banks; row++ {
		pa := m.ToPhys(Addr{Row: row, Bank: 0})
		back := m.ToDRAM(pa)
		if back.Row != row {
			t.Fatalf("row mismatch: got %d want %d", back.Row, row)
		}
		seen[back.Bank] = true
	}
	if len(seen) != 1 {
		// ToPhys(bank=0) then ToDRAM must return bank 0 — i.e. permutation
		// is consistent, not identity on raw bits.
		t.Fatalf("ToPhys/ToDRAM disagree on bank: %v", seen)
	}
	// Raw sequential row-stride addresses should hit multiple banks.
	rowStride := uint64(g.RowBytes) * uint64(g.Banks) // row increments above bank bits
	_ = rowStride
	banks := map[int]bool{}
	for i := 0; i < g.Banks; i++ {
		pa := uint64(i) * uint64(g.RowBytes) * uint64(g.Banks) * 1 // vary row bits
		banks[m.ToDRAM(pa).Bank] = true
	}
	if len(banks) < 2 {
		t.Fatalf("bank permutation does not spread rows across banks: %v", banks)
	}
}

func TestSameBankRow(t *testing.T) {
	g := DefaultGeometry()
	m, _ := NewMapper(g)
	a := m.ToDRAM(4096 * 777)
	pa := m.SameBankRow(a, a.Row+1, 0)
	b := m.ToDRAM(pa)
	if b.Bank != a.Bank || b.Channel != a.Channel || b.Rank != a.Rank || b.DIMM != a.DIMM {
		t.Fatalf("SameBankRow changed bank group: %v vs %v", b, a)
	}
	if b.Row != a.Row+1 {
		t.Fatalf("SameBankRow row = %d, want %d", b.Row, a.Row+1)
	}
	if b.Col != 0 {
		t.Fatalf("SameBankRow col = %d, want 0", b.Col)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Channel: 1, DIMM: 0, Rank: 1, Bank: 3, Row: 42, Col: 17}
	if got := a.String(); got != "ch1.d0.r1.b3.row42.col17" {
		t.Fatalf("Addr.String() = %q", got)
	}
}
