package dram

import (
	"fmt"
	"math"

	"explframe/internal/stats"
)

// FaultModel parameterises the disturbance (Rowhammer) behaviour of a Device.
// The defaults are calibrated so that flip statistics follow the shapes
// reported for DDR3 by Kim et al. (ISCA 2014): nothing flips below an
// activation threshold inside one refresh window, then the flip count grows
// quickly with the hammer count; weak cells are rare and individually highly
// reproducible.
type FaultModel struct {
	// WeakCellDensity is the probability that any given bit is a weak cell.
	// Kim et al. observe between ~1e-7 and ~1e-4 depending on the module;
	// the default favours the vulnerable end so experiments finish quickly.
	WeakCellDensity float64 `json:"weak_cell_density"`

	// BaseThreshold is the minimum number of adjacent-row activations within
	// one refresh window needed to flip the weakest cell.  Real DDR3 parts
	// show first flips around 139K activations (pre-TRR); the simulator
	// scales this down so a "hammer" is cheap while preserving ordering.
	BaseThreshold int `json:"base_threshold"`

	// ThresholdSpread is the multiplicative range of per-cell thresholds:
	// cell thresholds are distributed in [BaseThreshold, BaseThreshold*(1+Spread)].
	ThresholdSpread float64 `json:"threshold_spread"`

	// NeighbourWeight is the fraction of disturbance contributed to rows at
	// distance two (rows at distance one receive weight 1.0).  Double-sided
	// hammering works because both neighbours at distance one contribute.
	NeighbourWeight float64 `json:"neighbour_weight"`

	// RefreshInterval is the number of row activations (per device,
	// modelling elapsed time) after which a distributed refresh sweep
	// completes and all disturbance accumulators reset.
	RefreshInterval uint64 `json:"refresh_interval"`

	// FlipReliability is the probability that crossing the threshold
	// actually flips the cell in a given window; values below 1 model cells
	// that flip only on some hammer attempts.
	FlipReliability float64 `json:"flip_reliability"`

	// TRR configures the Target Row Refresh mitigation (disabled by
	// default, matching the paper's pre-TRR DDR3 setting).
	TRR TRRConfig `json:"trr,omitempty"`

	// ECC selects the error-correction model (none by default).
	ECC ECCMode `json:"ecc,omitempty"`
}

// DefaultFaultModel returns the calibrated fault model described above.
func DefaultFaultModel() FaultModel {
	return FaultModel{
		WeakCellDensity: 2e-6,
		BaseThreshold:   20000,
		ThresholdSpread: 1.5,
		NeighbourWeight: 0.25,
		RefreshInterval: 2_000_000,
		FlipReliability: 0.98,
	}
}

// WeakCell records one disturbance-vulnerable bit.
type WeakCell struct {
	Bank      int // dense bank-group index
	Row       int
	ByteInRow int
	Bit       uint8 // bit index within the byte, 0..7
	Threshold int   // activations within a refresh window needed to flip
	FlipTo    uint8 // 0 => true cell (1->0), 1 => anti cell (0->1)
	flipped   bool  // discharged in the current arm cycle
	held      bool  // reliability roll failed for this window
	corrupted bool  // the flip changed stored data (observable), for ECC
}

// Flip describes one observed bit flip.
type Flip struct {
	Phys uint64 // physical byte address
	Bit  uint8  // bit index within the byte
	From uint8  // original bit value
}

// rowState is the disturbance state of one row that holds weak cells.
// Rows without weak cells cannot flip and carry no state at all: the
// per-row arrays the hammer loop walks are sized by the weak-cell
// population, not the geometry, so a multi-GiB device stays cheap.
type rowState struct {
	cells []*WeakCell
	// disturb is the accumulated disturbance in the current refresh window.
	disturb float64
	// minThr caches the lowest threshold among cells that can still fire
	// (neither flipped nor held); +Inf when none can.  The hammer loop
	// consults it to skip the per-cell scan for the bulk of activations,
	// which sit below every active threshold.
	minThr float64
}

// Device is a simulated DRAM module: a sparse chunk-granular byte store
// plus per-row disturbance state.  It is not safe for concurrent use; the
// kernel layer serialises access, matching a single memory controller.
type Device struct {
	geom   Geometry
	mapper AddressMapper
	model  FaultModel
	data   *store

	// rowIdx maps the dense (bankGroup, row) index bg*Rows+row to an index
	// into rowStates, or -1 for rows without weak cells.  One int32 per row
	// is the only geometry-proportional cost of the disturbance model; the
	// states themselves are packed into rowStates, sized by the weak-cell
	// population.  The two-level layout keeps the hammer loop's per-
	// activation lookup a pair of array reads — allocation- and hash-free.
	rowIdx    []int32
	rowStates []rowState
	dirty     []int32 // rowStates indices with non-zero disturbance, for cheap refresh
	weakCount int

	// openRow tracks the row buffer per bank group; an access to a
	// different row precharges and activates, which is what disturbs
	// neighbours.
	openRow []int

	rng *stats.RNG

	// trr holds the per-bank-group Target Row Refresh samplers when the
	// mitigation is enabled.
	trr []trrState

	sinceRefresh   uint64
	stats          DeviceStats
	flipLog        []Flip
	flipLogEnabled bool
}

// DeviceStats aggregates activity counters for reporting.
type DeviceStats struct {
	Reads            uint64
	Writes           uint64
	Activations      uint64
	RowHits          uint64
	Refreshes        uint64
	BitFlips         uint64
	TRRRefreshes     uint64
	ECCCorrected     uint64
	ECCUncorrectable uint64
}

// NewDevice builds a device with the given geometry and fault model, placing
// weak cells deterministically from the seed.  The linear address mapper is
// used; NewDeviceWithMapper selects a different one.
func NewDevice(g Geometry, model FaultModel, seed uint64) (*Device, error) {
	m, err := NewMapper(g)
	if err != nil {
		return nil, err
	}
	return NewDeviceWithMapper(m, model, seed)
}

// NewDeviceWithMapper builds a device around an explicit address mapper —
// the machine-profile hook that makes DRAM topology a first-class axis.
// The mapper fixes the geometry; weak-cell placement depends only on
// (geometry, model, seed), so two devices differing in mapper alone hold
// the same weak-cell population at the same (bank, row, byte) coordinates
// and differ purely in which physical addresses reach them.
func NewDeviceWithMapper(m AddressMapper, model FaultModel, seed uint64) (*Device, error) {
	g := m.Geometry()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if model.RefreshInterval == 0 {
		return nil, fmt.Errorf("dram: refresh interval must be positive")
	}
	nRows := g.NumBankGroups() * g.Rows
	d := &Device{
		geom:    g,
		mapper:  m,
		model:   model,
		data:    newStore(g.TotalBytes()),
		rowIdx:  make([]int32, nRows),
		openRow: make([]int, g.NumBankGroups()),
		rng:     stats.NewRNG(seed),
	}
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	for i := range d.rowIdx {
		d.rowIdx[i] = -1
	}
	d.placeWeakCells()
	d.initTRR()
	return d, nil
}

// inf is the sentinel minThr value for rows with no cell able to fire.
var inf = math.Inf(1)

// recomputeMinThr refreshes the cached minimum active threshold of a row
// state after any cell's flipped/held state changed.
func (d *Device) recomputeMinThr(si int32) {
	rs := &d.rowStates[si]
	m := inf
	for _, wc := range rs.cells {
		if wc.flipped || wc.held {
			continue
		}
		if t := float64(wc.Threshold); t < m {
			m = t
		}
	}
	rs.minThr = m
}

// rowIndex returns the dense index of (bankGroup, row).
func (d *Device) rowIndex(bg, row int) int { return bg*d.geom.Rows + row }

// stateFor returns the rowStates index for the dense row index, creating
// the state on first use (weak-cell placement and PlantWeakCell).
func (d *Device) stateFor(idx int) int32 {
	si := d.rowIdx[idx]
	if si < 0 {
		si = int32(len(d.rowStates))
		d.rowStates = append(d.rowStates, rowState{minThr: inf})
		d.rowIdx[idx] = si
	}
	return si
}

// cellsAt returns the weak cells of the dense row index (nil for rows
// without any).
func (d *Device) cellsAt(idx int) []*WeakCell {
	si := d.rowIdx[idx]
	if si < 0 {
		return nil
	}
	return d.rowStates[si].cells
}

// placeWeakCells draws the weak-cell population.  The expected number of weak
// cells is density * totalBits; placement is uniform over (bank, row, byte,
// bit) and thresholds uniform over the configured spread.  Two cells are
// never placed on the same bit: colliding cells would cancel each other's
// data flips while both counted as corrupted, inflating ECC-uncorrectable
// statistics.  A collision moves to the next free bit in row-major order
// (open addressing) instead of consuming extra draws from the generator, so
// the placement stream is identical whether or not any collision occurred:
// every non-colliding cell keeps the position it had before collisions were
// handled at all, and a colliding cell stays adjacent to its twin.
func (d *Device) placeWeakCells() {
	totalBits := float64(d.geom.TotalBytes()) * 8
	expected := totalBits * d.model.WeakCellDensity
	// Deterministic rounding of the expectation: the fractional part
	// becomes one extra cell with matching probability.
	n := int(expected)
	if d.rng.Float64() < expected-float64(n) {
		n++
	}
	if n > 0 {
		d.rowStates = make([]rowState, 0, n)
	}
	banks := d.geom.NumBankGroups()
	totalKeys := uint64(banks) * uint64(d.geom.Rows) * uint64(d.geom.RowBytes) * 8
	occupied := make(map[uint64]struct{}, n)
	for i := 0; i < n; i++ {
		wc := &WeakCell{
			Bank:      d.rng.Intn(banks),
			Row:       d.rng.Intn(d.geom.Rows),
			ByteInRow: d.rng.Intn(d.geom.RowBytes),
			Bit:       uint8(d.rng.Intn(8)),
		}
		key := (uint64(d.rowIndex(wc.Bank, wc.Row))*uint64(d.geom.RowBytes)+uint64(wc.ByteInRow))*8 + uint64(wc.Bit)
		for {
			if _, dup := occupied[key]; !dup {
				occupied[key] = struct{}{}
				break
			}
			key = (key + 1) % totalKeys
			wc.Bit = uint8(key % 8)
			wc.ByteInRow = int(key / 8 % uint64(d.geom.RowBytes))
			ri := int(key / 8 / uint64(d.geom.RowBytes))
			wc.Bank = ri / d.geom.Rows
			wc.Row = ri % d.geom.Rows
		}
		wc.FlipTo = uint8(d.rng.Intn(2))
		spread := 1 + d.rng.Float64()*d.model.ThresholdSpread
		wc.Threshold = int(float64(d.model.BaseThreshold) * spread)
		si := d.stateFor(d.rowIndex(wc.Bank, wc.Row))
		rs := &d.rowStates[si]
		rs.cells = append(rs.cells, wc)
		if t := float64(wc.Threshold); t < rs.minThr {
			rs.minThr = t
		}
		d.weakCount++
	}
}

// PlantWeakCell inserts a specific weak cell; test and characterisation
// hook for deterministic scenarios.
func (d *Device) PlantWeakCell(wc WeakCell) {
	c := wc
	si := d.stateFor(d.rowIndex(c.Bank, c.Row))
	d.rowStates[si].cells = append(d.rowStates[si].cells, &c)
	d.weakCount++
	d.recomputeMinThr(si)
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Mapper returns the address mapper for this device.
func (d *Device) Mapper() AddressMapper { return d.mapper }

// Model returns the fault model in use.
func (d *Device) Model() FaultModel { return d.model }

// Stats returns a copy of the activity counters.
func (d *Device) Stats() DeviceStats { return d.stats }

// WeakCellCount returns the number of weak cells placed in the device.
func (d *Device) WeakCellCount() int { return d.weakCount }

// EnableFlipLog turns on recording of every flip the device produces.
func (d *Device) EnableFlipLog() { d.flipLogEnabled = true }

// DrainFlipLog returns and clears the accumulated flip log.
func (d *Device) DrainFlipLog() []Flip {
	log := d.flipLog
	d.flipLog = nil
	return log
}

// Size returns the capacity in bytes.
func (d *Device) Size() uint64 { return d.data.size }

// MaterializedBytes reports how much backing storage the device has
// actually allocated.  A freshly built multi-GiB device sits near zero;
// the number grows chunk by chunk as distinguishing writes land.
func (d *Device) MaterializedBytes() uint64 { return d.data.materializedBytes() }

// activate opens the row containing a, charging disturbance to neighbours if
// the access is a row conflict (the hammering primitive).
func (d *Device) activate(a Addr) {
	bg := d.mapper.BankGroup(a)
	if d.openRow[bg] == a.Row {
		d.stats.RowHits++
		return
	}
	d.openRow[bg] = a.Row
	d.stats.Activations++
	d.sinceRefresh++

	if d.trr != nil {
		d.trrObserve(bg, a.Row)
	}

	// Disturb neighbours at distance 1 (weight 1.0) and 2 (NeighbourWeight).
	d.addDisturb(bg, a.Row-1, 1.0)
	d.addDisturb(bg, a.Row+1, 1.0)
	if d.model.NeighbourWeight > 0 {
		d.addDisturb(bg, a.Row-2, d.model.NeighbourWeight)
		d.addDisturb(bg, a.Row+2, d.model.NeighbourWeight)
	}

	if d.sinceRefresh >= d.model.RefreshInterval {
		d.Refresh()
	}
}

func (d *Device) addDisturb(bg, row int, w float64) {
	if row < 0 || row >= d.geom.Rows {
		return
	}
	si := d.rowIdx[bg*d.geom.Rows+row]
	if si < 0 {
		// Rows with no weak cells cannot flip; they carry no accumulator at
		// all, which keeps hammering loops cheap.
		return
	}
	rs := &d.rowStates[si]
	if rs.disturb == 0 {
		d.dirty = append(d.dirty, si)
	}
	rs.disturb += w
	acc := rs.disturb
	if acc < rs.minThr {
		// No still-armed cell can cross yet (or none is left armed):
		// skip the per-cell scan, which the hammer loop hits millions of
		// times below the onset.
		return
	}
	changed := false
	for _, wc := range rs.cells {
		if wc.flipped || wc.held {
			continue
		}
		if acc >= float64(wc.Threshold) {
			if d.model.FlipReliability < 1 && !d.rng.Bool(d.model.FlipReliability) {
				// The cell held this window; it gets a fresh chance after
				// the next refresh.
				wc.held = true
				changed = true
				continue
			}
			d.flipCell(bg, row, wc)
			changed = true
		}
	}
	if changed {
		d.recomputeMinThr(si)
	}
}

// flipCell applies a disturbance flip to the backing store.
func (d *Device) flipCell(bg, row int, wc *WeakCell) {
	a := d.addrOfCell(bg, row, wc.ByteInRow)
	phys := d.mapper.ToPhys(a)
	cur := (d.data.load(phys) >> wc.Bit) & 1
	wc.flipped = true
	if cur == wc.FlipTo {
		// The cell already holds its failure polarity; nothing observable
		// flips, but the cell is now discharged until rewritten.
		return
	}
	d.data.xor(phys, 1<<wc.Bit)
	wc.corrupted = true
	d.stats.BitFlips++
	if d.flipLogEnabled {
		d.flipLog = append(d.flipLog, Flip{Phys: phys, Bit: wc.Bit, From: cur})
	}
}

// addrOfCell reconstructs the full Addr of a weak cell's byte.  Bank group
// indices are dense products of (channel, dimm, rank, bank).
func (d *Device) addrOfCell(bg, row, col int) Addr {
	bank := bg % d.geom.Banks
	bg /= d.geom.Banks
	rank := bg % d.geom.Ranks
	bg /= d.geom.Ranks
	dimm := bg % d.geom.DIMMs
	bg /= d.geom.DIMMs
	return Addr{Channel: bg, DIMM: dimm, Rank: rank, Bank: bank, Row: row, Col: col}
}

// Refresh completes a refresh sweep: disturbance accumulators reset and
// cells that held get a fresh window.  Flipped cells stay flipped — refresh
// restores charge to whatever value the cell currently holds, it does not
// correct errors.
func (d *Device) Refresh() {
	for _, si := range d.dirty {
		d.rowStates[si].disturb = 0
		for _, wc := range d.rowStates[si].cells {
			wc.held = false
		}
		d.recomputeMinThr(si)
	}
	d.dirty = d.dirty[:0]
	d.sinceRefresh = 0
	d.stats.Refreshes++
	// The TRR sampler also resets on the refresh sweep, as REF commands do
	// on real devices.
	for i := range d.trr {
		d.trr[i].entries = d.trr[i].entries[:0]
	}
}

// Read returns the byte at physical address pa, activating its row.  With
// ECC enabled, single observable flips in the containing 64-bit word are
// corrected on the fly.
func (d *Device) Read(pa uint64) byte {
	a := d.mapper.ToDRAM(pa)
	d.activate(a)
	d.stats.Reads++
	v := d.data.load(pa)
	if d.model.ECC == ECCSecDed {
		v = d.eccCorrect(pa, v)
	}
	return v
}

// Write stores a byte at physical address pa, activating its row.  Writing a
// cell re-charges it: any flip recorded for that cell is cleared, making the
// cell vulnerable again in a later window (this is what makes templating
// non-destructive and flips reproducible).
func (d *Device) Write(pa uint64, v byte) {
	a := d.mapper.ToDRAM(pa)
	d.activate(a)
	d.stats.Writes++
	d.data.set(pa, v)
	d.rearm(a)
}

// rearm clears the discharged state of weak cells in the written byte.
func (d *Device) rearm(a Addr) {
	si := d.rowIdx[d.rowIndex(d.mapper.BankGroup(a), a.Row)]
	if si < 0 {
		return
	}
	changed := false
	for _, wc := range d.rowStates[si].cells {
		if wc.ByteInRow == a.Col {
			changed = changed || wc.flipped
			wc.flipped = false
			wc.corrupted = false
		}
	}
	if changed {
		d.recomputeMinThr(si)
	}
}

// ReadNoActivate returns the byte at pa without touching the row buffer or
// disturbance model.  The kernel uses it for bulk inspection (e.g. page
// zeroing) where modelling every access would swamp the statistics.  ECC
// correction still applies: the code sits on the datapath, not the timing
// model.
func (d *Device) ReadNoActivate(pa uint64) byte {
	v := d.data.load(pa)
	if d.model.ECC == ECCSecDed {
		v = d.eccCorrect(pa, v)
	}
	return v
}

// WriteNoActivate stores a byte bypassing the activation model, clearing any
// flip record for the cell (same semantics as Write).
func (d *Device) WriteNoActivate(pa uint64, v byte) {
	d.data.set(pa, v)
	a := d.mapper.ToDRAM(pa)
	d.rearm(a)
}

// ReadRangeNoActivate copies [pa, pa+len(out)) into out, bypassing the
// activation model.  With ECC enabled the copy is corrected with the same
// data and counter semantics as per-byte eccCorrect calls over the range,
// but at one weak-cell scan per covered row instead of one per byte.
func (d *Device) ReadRangeNoActivate(pa uint64, out []byte) {
	d.data.read(pa, out)
	if d.model.ECC == ECCSecDed && len(out) > 0 {
		d.eccCorrectRange(pa, out)
	}
}

// eccCorrectRange applies SEC-DED over the copied range.  eccCorrect counts
// one event per byte read from a word holding observable flips; the bulk
// form adds the same totals word by word.
func (d *Device) eccCorrectRange(pa uint64, out []byte) {
	lo, hi := pa, pa+uint64(len(out))
	rowBytes := uint64(d.geom.RowBytes)
	var words map[uint64][]*WeakCell // word base pa -> corrupted cells
	for base := lo &^ (rowBytes - 1); base < hi; base += rowBytes {
		a := d.mapper.ToDRAM(base)
		for _, wc := range d.cellsAt(d.rowIndex(d.mapper.BankGroup(a), a.Row)) {
			if !wc.corrupted {
				continue
			}
			wordBase := base + uint64(wc.ByteInRow&^7)
			if wordBase+8 <= lo || wordBase >= hi {
				continue
			}
			if words == nil {
				words = make(map[uint64][]*WeakCell)
			}
			words[wordBase] = append(words[wordBase], wc)
		}
	}
	for wordBase, cells := range words {
		overlapLo, overlapHi := wordBase, wordBase+8
		if overlapLo < lo {
			overlapLo = lo
		}
		if overlapHi > hi {
			overlapHi = hi
		}
		read := overlapHi - overlapLo
		if len(cells) == 1 {
			d.stats.ECCCorrected += read
			cellPA := wordBase + uint64(cells[0].ByteInRow&7)
			if cellPA >= lo && cellPA < hi {
				out[cellPA-lo] ^= 1 << cells[0].Bit
			}
			continue
		}
		d.stats.ECCUncorrectable += read
	}
}

// WriteRangeNoActivate stores data at [pa, pa+len(data)) bypassing the
// activation model, with the same re-arm semantics as per-byte
// WriteNoActivate but one row scan per covered row instead of one per byte.
func (d *Device) WriteRangeNoActivate(pa uint64, data []byte) {
	d.data.write(pa, data)
	d.rearmRange(pa, pa+uint64(len(data)))
}

// FillNoActivate stores n copies of v at [pa, pa+n), bypassing the
// activation model; the kernel's page zeroing uses it.  Zero fills over
// untouched memory materialise nothing, which is what makes demand-paging
// a multi-GiB mapping near-free.
func (d *Device) FillNoActivate(pa, n uint64, v byte) {
	d.data.fill(pa, n, v)
	d.rearmRange(pa, pa+n)
}

// rearmRange clears the discharged state of weak cells whose byte falls in
// the physical range [lo, hi).  The mapper keeps column bits lowest, so a
// contiguous physical range decomposes into whole-row segments with
// contiguous column spans — one weak-cell scan per row replaces the per-byte
// scan of rearm.
func (d *Device) rearmRange(lo, hi uint64) {
	rowBytes := uint64(d.geom.RowBytes)
	for base := lo &^ (rowBytes - 1); base < hi; base += rowBytes {
		a := d.mapper.ToDRAM(base)
		si := d.rowIdx[d.rowIndex(d.mapper.BankGroup(a), a.Row)]
		if si < 0 {
			continue
		}
		colLo, colHi := 0, int(rowBytes)
		if base < lo {
			colLo = int(lo - base)
		}
		if base+rowBytes > hi {
			colHi = int(hi - base)
		}
		changed := false
		for _, wc := range d.rowStates[si].cells {
			if wc.ByteInRow >= colLo && wc.ByteInRow < colHi {
				changed = changed || wc.flipped
				wc.flipped = false
				wc.corrupted = false
			}
		}
		if changed {
			d.recomputeMinThr(si)
		}
	}
}

// ActivateRow explicitly opens the row containing pa; this is the hammer
// primitive (a read with the result discarded).
func (d *Device) ActivateRow(pa uint64) {
	d.activate(d.mapper.ToDRAM(pa))
}

// ActivateAddr opens the row at pre-resolved DRAM coordinates.  Hammer loops
// translate their aggressor addresses once and then issue millions of
// activations, so skipping the per-access ToDRAM matters.
func (d *Device) ActivateAddr(a Addr) {
	d.activate(a)
}

// WeakCellsInRange reports the weak cells whose physical byte address falls
// in [lo, hi).  Test and characterisation helper; a real attacker cannot
// call this, the Rowhammer templating step discovers the same information.
func (d *Device) WeakCellsInRange(lo, hi uint64) []WeakCell {
	var out []WeakCell
	for idx, si := range d.rowIdx {
		if si < 0 {
			continue
		}
		bg := idx / d.geom.Rows
		row := idx % d.geom.Rows
		for _, wc := range d.rowStates[si].cells {
			pa := d.mapper.ToPhys(d.addrOfCell(bg, row, wc.ByteInRow))
			if pa >= lo && pa < hi {
				out = append(out, *wc)
			}
		}
	}
	return out
}

// PhysOfWeakCell returns the physical byte address of a weak cell.
func (d *Device) PhysOfWeakCell(wc WeakCell) uint64 {
	return d.mapper.ToPhys(d.addrOfCell(wc.Bank, wc.Row, wc.ByteInRow))
}
