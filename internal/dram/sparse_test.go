package dram

import (
	"bytes"
	"testing"

	"explframe/internal/stats"
)

// --- store unit tests ------------------------------------------------------

func TestStoreBasics(t *testing.T) {
	s := newStore(3*storeChunkBytes + 100) // deliberately ragged tail
	if got := s.materializedBytes(); got != 0 {
		t.Fatalf("fresh store materialised %d bytes", got)
	}
	// Reads of untouched memory return zero and materialise nothing.
	if v := s.load(storeChunkBytes + 5); v != 0 {
		t.Fatalf("untouched load = %#x", v)
	}
	buf := []byte{0xDE, 0xAD}
	s.read(2*storeChunkBytes-1, buf)
	if buf[0] != 0 || buf[1] != 0 {
		t.Fatalf("untouched read did not zero the buffer: %v", buf)
	}
	// Zero writes over untouched memory are elided...
	s.set(0, 0)
	s.write(storeChunkBytes, make([]byte, 300))
	s.fill(2*storeChunkBytes, 400, 0)
	if got := s.materializedBytes(); got != 0 {
		t.Fatalf("zero writes materialised %d bytes", got)
	}
	// ...while distinguishing writes materialise exactly one chunk.
	s.set(storeChunkBytes+7, 0x5A)
	if got := s.materializedBytes(); got != storeChunkBytes {
		t.Fatalf("materialised %d bytes, want one chunk (%d)", got, storeChunkBytes)
	}
	if v := s.load(storeChunkBytes + 7); v != 0x5A {
		t.Fatalf("read-back %#x", v)
	}
	// The tail chunk is sized to the store, not the chunk granule.
	s.set(3*storeChunkBytes+99, 1)
	if got := s.materializedBytes(); got != storeChunkBytes+100 {
		t.Fatalf("tail chunk: materialised %d bytes, want %d", got, storeChunkBytes+100)
	}
	if v := s.load(3*storeChunkBytes + 99); v != 1 {
		t.Fatalf("tail read-back %#x", v)
	}
}

func TestStoreCrossChunkRanges(t *testing.T) {
	const size = 4 * storeChunkBytes
	s := newStore(size)
	dense := make([]byte, size)
	rng := stats.NewRNG(11)

	// Random writes/fills mirrored into a plain array, then random reads
	// compared — ranges chosen to straddle chunk boundaries often.
	for i := 0; i < 500; i++ {
		pa := uint64(rng.Intn(size - 1))
		n := uint64(rng.Intn(3*storeChunkBytes)) + 1
		if pa+n > size {
			n = size - pa
		}
		switch rng.Intn(3) {
		case 0:
			data := make([]byte, n)
			rng.Bytes(data)
			if rng.Intn(4) == 0 { // exercise the all-zero elision path too
				for j := range data {
					data[j] = 0
				}
			}
			s.write(pa, data)
			copy(dense[pa:], data)
		case 1:
			v := byte(rng.Intn(4)) // weight zero heavily
			if v > 1 {
				v = 0
			}
			s.fill(pa, n, v)
			for j := uint64(0); j < n; j++ {
				dense[pa+j] = v
			}
		case 2:
			got := make([]byte, n)
			rng.Bytes(got) // dirty the buffer: read must fully overwrite
			s.read(pa, got)
			if !bytes.Equal(got, dense[pa:pa+n]) {
				t.Fatalf("iteration %d: read mismatch at %d+%d", i, pa, n)
			}
		}
	}
	for pa := uint64(0); pa < size; pa++ {
		if s.load(pa) != dense[pa] {
			t.Fatalf("final sweep: byte %d is %#x, want %#x", pa, s.load(pa), dense[pa])
		}
	}
}

// --- sparse vs dense observational equivalence -----------------------------

// equivalenceWorkload drives one device through a randomised mix of reads,
// writes, range ops, hammering and refreshes, returning a digest of every
// observable output (read values, stats, weak cells, flip log).
func equivalenceWorkload(t *testing.T, d *Device, seed uint64) []byte {
	t.Helper()
	rng := stats.NewRNG(seed)
	size := int(d.Size())
	d.EnableFlipLog()
	var log bytes.Buffer

	// A hammer target with its aggressor rows, derived from a planted weak
	// cell so flips actually occur during the workload.
	victim := Addr{Bank: 1, Row: 200, Col: 50}
	bg := d.mapper.BankGroup(victim)
	d.PlantWeakCell(WeakCell{Bank: bg, Row: 200, ByteInRow: 50, Bit: 2, Threshold: 600, FlipTo: 0})
	d.Write(d.mapper.ToPhys(victim), 0xFF)
	up := d.mapper.SameBankRow(victim, victim.Row-1, 0)
	down := d.mapper.SameBankRow(victim, victim.Row+1, 0)

	for i := 0; i < 2000; i++ {
		pa := uint64(rng.Intn(size))
		switch rng.Intn(8) {
		case 0:
			log.WriteByte(d.Read(pa))
		case 1:
			d.Write(pa, byte(rng.Intn(256)))
		case 2:
			log.WriteByte(d.ReadNoActivate(pa))
		case 3:
			n := rng.Intn(9000) + 1
			if int(pa)+n > size {
				n = size - int(pa)
			}
			buf := make([]byte, n)
			rng.Bytes(buf) // read must overwrite stale contents
			d.ReadRangeNoActivate(pa, buf)
			log.Write(buf)
		case 4:
			n := rng.Intn(5000) + 1
			if int(pa)+n > size {
				n = size - int(pa)
			}
			buf := make([]byte, n)
			if rng.Intn(2) == 0 {
				rng.Bytes(buf)
			}
			d.WriteRangeNoActivate(pa, buf)
		case 5:
			n := uint64(rng.Intn(5000) + 1)
			if pa+n > uint64(size) {
				n = uint64(size) - pa
			}
			var v byte
			if rng.Intn(2) == 0 {
				v = byte(rng.Intn(256))
			}
			d.FillNoActivate(pa, n, v)
		case 6:
			for k := 0; k < 300; k++ {
				d.ActivateRow(up)
				d.ActivateRow(down)
			}
		case 7:
			d.Refresh()
		}
	}

	st := d.Stats()
	if err := writeStats(&log, st); err != nil {
		t.Fatal(err)
	}
	for _, f := range d.DrainFlipLog() {
		log.WriteByte(byte(f.Phys))
		log.WriteByte(byte(f.Phys >> 8))
		log.WriteByte(f.Bit)
		log.WriteByte(f.From)
	}
	for _, wc := range d.WeakCellsInRange(0, d.Size()) {
		log.WriteByte(byte(wc.Row))
		log.WriteByte(byte(wc.ByteInRow))
		log.WriteByte(wc.Bit)
	}
	// Full-memory dump: the two devices must agree byte for byte.
	dump := make([]byte, 4096)
	for pa := uint64(0); pa < uint64(size); pa += uint64(len(dump)) {
		d.ReadRangeNoActivate(pa, dump)
		log.Write(dump)
	}
	return log.Bytes()
}

func writeStats(log *bytes.Buffer, st DeviceStats) error {
	for _, v := range []uint64{st.Reads, st.Writes, st.Activations, st.RowHits,
		st.Refreshes, st.BitFlips, st.TRRRefreshes, st.ECCCorrected, st.ECCUncorrectable} {
		for s := 0; s < 64; s += 8 {
			log.WriteByte(byte(v >> s))
		}
	}
	return nil
}

// A sparse device and a fully materialised (dense) device must be
// observationally identical under an arbitrary workload: every read value,
// every counter, every flip.  Run with and without mitigations so the ECC
// range path is covered too.
func TestSparseDenseObservationalEquivalence(t *testing.T) {
	g := Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 512, RowBytes: 4096}
	cases := []struct {
		name string
		mut  func(*FaultModel)
	}{
		{"plain", func(*FaultModel) {}},
		{"ecc", func(m *FaultModel) { m.ECC = ECCSecDed }},
		{"trr", func(m *FaultModel) { m.TRR = TRRConfig{Enabled: true, TrackerSize: 2, Threshold: 150} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model := DefaultFaultModel()
			model.WeakCellDensity = 1e-4
			model.FlipReliability = 1 // keep the device RNG stream workload-independent
			tc.mut(&model)

			build := func(materialize bool) *Device {
				d, err := NewDevice(g, model, 42)
				if err != nil {
					t.Fatal(err)
				}
				if materialize {
					d.data.materializeAll()
					if got, want := d.MaterializedBytes(), d.Size(); got != want {
						t.Fatalf("materializeAll left %d of %d bytes unbacked", got, want)
					}
				}
				return d
			}
			sparse := equivalenceWorkload(t, build(false), 99)
			dense := equivalenceWorkload(t, build(true), 99)
			if !bytes.Equal(sparse, dense) {
				i := 0
				for i < len(sparse) && i < len(dense) && sparse[i] == dense[i] {
					i++
				}
				t.Fatalf("sparse and dense devices diverge (first difference at digest byte %d of %d/%d)",
					i, len(sparse), len(dense))
			}
		})
	}
}

// The bulk read path (ReadRangeNoActivate + eccCorrectRange) must agree
// with the per-byte path on random ranges, including the stats deltas.
func TestReadRangeMatchesPerByte(t *testing.T) {
	g := Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 512, RowBytes: 4096}
	model := DefaultFaultModel()
	model.WeakCellDensity = 0
	model.FlipReliability = 1
	model.ECC = ECCSecDed
	d, err := NewDevice(g, model, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Two corrupted cells: one alone in its word (correctable), two sharing
	// a word elsewhere (uncorrectable).
	plant := func(a Addr, bit uint8, thr int) {
		d.PlantWeakCell(WeakCell{Bank: d.mapper.BankGroup(a), Row: a.Row, ByteInRow: a.Col, Bit: bit, Threshold: thr, FlipTo: 0})
		d.Write(d.mapper.ToPhys(a), 0xFF)
	}
	single := Addr{Bank: 0, Row: 100, Col: 64}
	pair := Addr{Bank: 0, Row: 100, Col: 130}
	plant(single, 3, 500)
	plant(pair, 1, 500)
	plant(Addr{Bank: 0, Row: 100, Col: 133}, 6, 550)
	d.Write(d.mapper.ToPhys(Addr{Bank: 0, Row: 100, Col: 133}), 0xFF)
	for i := 0; i < 700; i++ {
		d.ActivateRow(d.mapper.ToPhys(Addr{Bank: 0, Row: 99, Col: 0}))
		d.ActivateRow(d.mapper.ToPhys(Addr{Bank: 0, Row: 101, Col: 0}))
	}
	if d.Stats().BitFlips < 3 {
		t.Fatalf("setup did not flip all cells: %+v", d.Stats())
	}

	rng := stats.NewRNG(3)
	size := int(d.Size())
	for i := 0; i < 400; i++ {
		pa := uint64(rng.Intn(size))
		n := rng.Intn(2*d.geom.RowBytes) + 1
		if int(pa)+n > size {
			n = size - int(pa)
		}
		bulkStats := d.Stats()
		bulk := make([]byte, n)
		rng.Bytes(bulk)
		d.ReadRangeNoActivate(pa, bulk)
		bulkDelta := d.Stats()

		byteStats := d.Stats()
		perByte := make([]byte, n)
		for j := 0; j < n; j++ {
			perByte[j] = d.ReadNoActivate(pa + uint64(j))
		}
		byteDelta := d.Stats()

		if !bytes.Equal(bulk, perByte) {
			t.Fatalf("range [%d,%d): bulk and per-byte reads differ", pa, pa+uint64(n))
		}
		if gc, gb := bulkDelta.ECCCorrected-bulkStats.ECCCorrected, byteDelta.ECCCorrected-byteStats.ECCCorrected; gc != gb {
			t.Fatalf("range [%d,%d): bulk corrected %d, per-byte %d", pa, pa+uint64(n), gc, gb)
		}
		if gu, gb := bulkDelta.ECCUncorrectable-bulkStats.ECCUncorrectable, byteDelta.ECCUncorrectable-byteStats.ECCUncorrectable; gu != gb {
			t.Fatalf("range [%d,%d): bulk uncorrectable %d, per-byte %d", pa, pa+uint64(n), gu, gb)
		}
	}
}
