// Package dram models a DRAM subsystem at the granularity the ExplFrame
// attack needs: physical addresses map onto channel/DIMM/rank/bank/row/column
// coordinates, banks have open-row (row buffer) semantics, and cells carry a
// disturbance model so that repeated activation of a row — Rowhammer — can
// flip bits in physically adjacent rows.
//
// The paper's testbed is commodity DDR3; this package substitutes a
// parametric simulator whose statistics follow the shapes reported by
// Kim et al. (ISCA 2014): no flips below a per-cell activation threshold
// within one refresh window, a weak-cell population with configurable
// density, and strongly reproducible per-cell behaviour.
package dram

import "fmt"

// Geometry describes the topology of the memory system.  The defaults model
// a single-channel, single-DIMM, single-rank module with 8 banks — a small
// but structurally faithful DDR3 part.
type Geometry struct {
	Channels int // memory channels on the controller
	DIMMs    int // DIMMs per channel
	Ranks    int // ranks per DIMM
	Banks    int // banks per rank
	Rows     int // rows per bank
	RowBytes int // bytes per row (columns * device width)
}

// DefaultGeometry returns a 256 MiB single-rank part: 8 banks x 4096 rows x
// 8 KiB rows.  Small enough for fast simulation, large enough that the buddy
// allocator's zone structure is non-trivial.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels: 1,
		DIMMs:    1,
		Ranks:    1,
		Banks:    8,
		Rows:     4096,
		RowBytes: 8192,
	}
}

// TotalBytes returns the capacity of the described memory system.
func (g Geometry) TotalBytes() uint64 {
	return uint64(g.Channels) * uint64(g.DIMMs) * uint64(g.Ranks) *
		uint64(g.Banks) * uint64(g.Rows) * uint64(g.RowBytes)
}

// NumBankGroups returns the number of globally distinct banks
// (channel x DIMM x rank x bank).
func (g Geometry) NumBankGroups() int {
	return g.Channels * g.DIMMs * g.Ranks * g.Banks
}

// Validate reports whether the geometry is usable: every dimension positive
// and the row size a power of two (required by the address interleaving).
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0, g.DIMMs <= 0, g.Ranks <= 0, g.Banks <= 0, g.Rows <= 0, g.RowBytes <= 0:
		return fmt.Errorf("dram: geometry dimensions must be positive: %+v", g)
	}
	for _, v := range []int{g.Channels, g.DIMMs, g.Ranks, g.Banks, g.Rows, g.RowBytes} {
		if v&(v-1) != 0 {
			return fmt.Errorf("dram: geometry dimensions must be powers of two, got %d", v)
		}
	}
	return nil
}

// Addr identifies one byte in DRAM by its topological coordinates.
type Addr struct {
	Channel int
	DIMM    int
	Rank    int
	Bank    int
	Row     int
	Col     int // byte offset within the row
}

// String renders the address in a compact ch/dimm/rank/bank/row/col form.
func (a Addr) String() string {
	return fmt.Sprintf("ch%d.d%d.r%d.b%d.row%d.col%d", a.Channel, a.DIMM, a.Rank, a.Bank, a.Row, a.Col)
}

// log2 returns floor(log2(v)) for a power-of-two v.
func log2(v int) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Mapper converts between flat physical addresses and DRAM coordinates.
//
// The bit layout, from least significant to most significant, is:
//
//	[ col | channel | dimm | rank | bank^rowlow | row ]
//
// with the bank bits XOR-ed with the low row bits ("bank permutation" or
// rank/bank hashing, as used by real memory controllers and reverse
// engineered by the DRAMA work).  The XOR spreads sequential rows across
// banks, which is what makes same-bank/different-row aggressor pairs
// non-trivial to find — the property the Rowhammer templating step has to
// work around, so the model keeps it.
type Mapper struct {
	g        Geometry
	colBits  uint
	chBits   uint
	dimmBits uint
	rankBits uint
	bankBits uint
	rowBits  uint
}

// NewMapper builds a Mapper for the geometry.  The geometry must be valid.
func NewMapper(g Geometry) (*Mapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Mapper{
		g:        g,
		colBits:  log2(g.RowBytes),
		chBits:   log2(g.Channels),
		dimmBits: log2(g.DIMMs),
		rankBits: log2(g.Ranks),
		bankBits: log2(g.Banks),
		rowBits:  log2(g.Rows),
	}, nil
}

// Geometry returns the geometry the mapper was built for.
func (m *Mapper) Geometry() Geometry { return m.g }

func extract(pa uint64, shift, bits uint) int {
	return int((pa >> shift) & ((1 << bits) - 1))
}

// ToDRAM maps a flat physical address to DRAM coordinates.  Addresses beyond
// the geometry wrap (callers are expected to stay in range; the wrap keeps
// the function total for property tests).
func (m *Mapper) ToDRAM(pa uint64) Addr {
	var a Addr
	shift := uint(0)
	a.Col = extract(pa, shift, m.colBits)
	shift += m.colBits
	a.Channel = extract(pa, shift, m.chBits)
	shift += m.chBits
	a.DIMM = extract(pa, shift, m.dimmBits)
	shift += m.dimmBits
	a.Rank = extract(pa, shift, m.rankBits)
	shift += m.rankBits
	bankRaw := extract(pa, shift, m.bankBits)
	shift += m.bankBits
	a.Row = extract(pa, shift, m.rowBits)
	// Bank permutation: XOR the bank index with the low row bits.
	a.Bank = bankRaw ^ (a.Row & (m.g.Banks - 1))
	return a
}

// ToPhys is the inverse of ToDRAM.
func (m *Mapper) ToPhys(a Addr) uint64 {
	bankRaw := a.Bank ^ (a.Row & (m.g.Banks - 1))
	pa := uint64(0)
	shift := uint(0)
	pa |= uint64(a.Col) << shift
	shift += m.colBits
	pa |= uint64(a.Channel) << shift
	shift += m.chBits
	pa |= uint64(a.DIMM) << shift
	shift += m.dimmBits
	pa |= uint64(a.Rank) << shift
	shift += m.rankBits
	pa |= uint64(bankRaw) << shift
	shift += m.bankBits
	pa |= uint64(a.Row) << shift
	return pa
}

// BankGroup returns a dense index identifying the (channel, dimm, rank, bank)
// tuple of the address; rows within one bank group are physically adjacent.
func (m *Mapper) BankGroup(a Addr) int {
	idx := a.Channel
	idx = idx*m.g.DIMMs + a.DIMM
	idx = idx*m.g.Ranks + a.Rank
	idx = idx*m.g.Banks + a.Bank
	return idx
}

// SameBankRow returns the physical address of (row, col) within the same
// bank group as the given address.  This is the primitive the Rowhammer
// engine uses to locate aggressor rows adjacent to a victim row.
func (m *Mapper) SameBankRow(a Addr, row, col int) uint64 {
	n := a
	n.Row = row
	n.Col = col
	return m.ToPhys(n)
}
