// Package dram models a DRAM subsystem at the granularity the ExplFrame
// attack needs: physical addresses map onto channel/DIMM/rank/bank/row/column
// coordinates, banks have open-row (row buffer) semantics, and cells carry a
// disturbance model so that repeated activation of a row — Rowhammer — can
// flip bits in physically adjacent rows.
//
// The paper's testbed is commodity DDR3; this package substitutes a
// parametric simulator whose statistics follow the shapes reported by
// Kim et al. (ISCA 2014): no flips below a per-cell activation threshold
// within one refresh window, a weak-cell population with configurable
// density, and strongly reproducible per-cell behaviour.
package dram

import "fmt"

// Geometry describes the topology of the memory system.  The defaults model
// a single-channel, single-DIMM, single-rank module with 8 banks — a small
// but structurally faithful DDR3 part.
type Geometry struct {
	Channels int `json:"channels"`  // memory channels on the controller
	DIMMs    int `json:"dimms"`     // DIMMs per channel
	Ranks    int `json:"ranks"`     // ranks per DIMM
	Banks    int `json:"banks"`     // banks per rank
	Rows     int `json:"rows"`      // rows per bank
	RowBytes int `json:"row_bytes"` // bytes per row (columns * device width)
}

// DefaultGeometry returns a 256 MiB single-rank part: 8 banks x 4096 rows x
// 8 KiB rows.  Small enough for fast simulation, large enough that the buddy
// allocator's zone structure is non-trivial.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels: 1,
		DIMMs:    1,
		Ranks:    1,
		Banks:    8,
		Rows:     4096,
		RowBytes: 8192,
	}
}

// TotalBytes returns the capacity of the described memory system.
func (g Geometry) TotalBytes() uint64 {
	return uint64(g.Channels) * uint64(g.DIMMs) * uint64(g.Ranks) *
		uint64(g.Banks) * uint64(g.Rows) * uint64(g.RowBytes)
}

// NumBankGroups returns the number of globally distinct banks
// (channel x DIMM x rank x bank).
func (g Geometry) NumBankGroups() int {
	return g.Channels * g.DIMMs * g.Ranks * g.Banks
}

// Validate reports whether the geometry is usable: every dimension positive
// and the row size a power of two (required by the address interleaving).
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0, g.DIMMs <= 0, g.Ranks <= 0, g.Banks <= 0, g.Rows <= 0, g.RowBytes <= 0:
		return fmt.Errorf("dram: geometry dimensions must be positive: %+v", g)
	}
	for _, v := range []int{g.Channels, g.DIMMs, g.Ranks, g.Banks, g.Rows, g.RowBytes} {
		if v&(v-1) != 0 {
			return fmt.Errorf("dram: geometry dimensions must be powers of two, got %d", v)
		}
	}
	return nil
}

// Addr identifies one byte in DRAM by its topological coordinates.
type Addr struct {
	Channel int
	DIMM    int
	Rank    int
	Bank    int
	Row     int
	Col     int // byte offset within the row
}

// String renders the address in a compact ch/dimm/rank/bank/row/col form.
func (a Addr) String() string {
	return fmt.Sprintf("ch%d.d%d.r%d.b%d.row%d.col%d", a.Channel, a.DIMM, a.Rank, a.Bank, a.Row, a.Col)
}

// log2 returns floor(log2(v)) for a power-of-two v.
func log2(v int) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
