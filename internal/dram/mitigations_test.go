package dram

import "testing"

// trrDevice builds a device with a planted weak cell and TRR enabled.
func trrDevice(t *testing.T, trr TRRConfig, ecc ECCMode) (*Device, Addr, uint64) {
	t.Helper()
	g := Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 8, Rows: 512, RowBytes: 4096}
	model := DefaultFaultModel()
	model.WeakCellDensity = 0
	model.FlipReliability = 1
	model.TRR = trr
	model.ECC = ecc
	d, err := NewDevice(g, model, 7)
	if err != nil {
		t.Fatal(err)
	}
	victim := Addr{Bank: 2, Row: 100, Col: 10}
	d.PlantWeakCell(WeakCell{Bank: d.mapper.BankGroup(victim), Row: 100, ByteInRow: 10, Bit: 3, Threshold: 1000, FlipTo: 0})
	pa := d.mapper.ToPhys(victim)
	d.Write(pa, 0xFF)
	return d, victim, pa
}

// doubleSided hammers rows victim±1 for n pairs.
func doubleSided(d *Device, victim Addr, n int) {
	up := d.mapper.SameBankRow(victim, victim.Row-1, 0)
	down := d.mapper.SameBankRow(victim, victim.Row+1, 0)
	for i := 0; i < n; i++ {
		d.ActivateRow(up)
		d.ActivateRow(down)
	}
}

// TRR with a tracker big enough for both aggressors must protect the cell:
// the neighbour refresh clears disturbance before the threshold is reached.
func TestTRRBlocksDoubleSided(t *testing.T) {
	trr := TRRConfig{Enabled: true, TrackerSize: 8, Threshold: 200}
	d, victim, pa := trrDevice(t, trr, ECCNone)
	doubleSided(d, victim, 3000) // 3x the cell threshold
	if got := d.ReadNoActivate(pa); got != 0xFF {
		t.Fatalf("cell flipped despite TRR: %#x", got)
	}
	if d.Stats().TRRRefreshes == 0 {
		t.Fatal("TRR never fired")
	}
	// Control: without TRR the same hammering flips.
	d2, victim2, pa2 := trrDevice(t, TRRConfig{}, ECCNone)
	doubleSided(d2, victim2, 3000)
	if got := d2.ReadNoActivate(pa2); got != 0xFF&^(1<<3) {
		t.Fatalf("control cell did not flip: %#x", got)
	}
}

// Many-sided access patterns with more rows than the tracker evict the true
// aggressors before they reach the TRR threshold, so the flip lands anyway
// (the TRRespass bypass).
func TestManySidedBypassesTRR(t *testing.T) {
	trr := TRRConfig{Enabled: true, TrackerSize: 4, Threshold: 200}
	d, victim, pa := trrDevice(t, trr, ECCNone)

	up := d.mapper.SameBankRow(victim, victim.Row-1, 0)
	down := d.mapper.SameBankRow(victim, victim.Row+1, 0)
	// 8 decoy rows, far from the victim, same bank.
	var decoys []uint64
	for i := 0; i < 8; i++ {
		decoys = append(decoys, d.mapper.SameBankRow(victim, victim.Row+50+4*i, 0))
	}
	for i := 0; i < 1100; i++ {
		d.ActivateRow(up)
		d.ActivateRow(down)
		for _, dec := range decoys {
			d.ActivateRow(dec)
		}
	}
	if got := d.ReadNoActivate(pa); got != 0xFF&^(1<<3) {
		t.Fatalf("many-sided pattern failed to flip under TRR: %#x (TRR fired %d times)",
			got, d.Stats().TRRRefreshes)
	}
}

// ECC corrects a single observable flip on every read path.
func TestECCCorrectsSingleFlip(t *testing.T) {
	d, victim, pa := trrDevice(t, TRRConfig{}, ECCSecDed)
	doubleSided(d, victim, 1200)
	// The raw array is corrupted...
	if raw := d.data.load(pa); raw != 0xFF&^(1<<3) {
		t.Fatalf("raw cell not flipped: %#x", raw)
	}
	// ...but both read paths return corrected data.
	if got := d.ReadNoActivate(pa); got != 0xFF {
		t.Fatalf("ReadNoActivate not corrected: %#x", got)
	}
	if got := d.Read(pa); got != 0xFF {
		t.Fatalf("Read not corrected: %#x", got)
	}
	if d.Stats().ECCCorrected == 0 {
		t.Fatal("correction not counted")
	}
}

// Two observable flips in the same 64-bit word defeat SEC-DED.
func TestECCDoubleFlipUncorrectable(t *testing.T) {
	g := Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 8, Rows: 512, RowBytes: 4096}
	model := DefaultFaultModel()
	model.WeakCellDensity = 0
	model.FlipReliability = 1
	model.ECC = ECCSecDed
	d, err := NewDevice(g, model, 7)
	if err != nil {
		t.Fatal(err)
	}
	victim := Addr{Bank: 1, Row: 60, Col: 16} // word-aligned
	bg := d.mapper.BankGroup(victim)
	d.PlantWeakCell(WeakCell{Bank: bg, Row: 60, ByteInRow: 16, Bit: 1, Threshold: 800, FlipTo: 0})
	d.PlantWeakCell(WeakCell{Bank: bg, Row: 60, ByteInRow: 19, Bit: 6, Threshold: 900, FlipTo: 0})
	pa := d.mapper.ToPhys(victim)
	for off := uint64(0); off < 8; off++ {
		d.Write(pa+off, 0xFF)
	}
	doubleSided(d, victim, 1000)
	if got := d.ReadNoActivate(pa); got != 0xFF&^(1<<1) {
		t.Fatalf("double flip should be uncorrectable: %#x", got)
	}
	if got := d.ReadNoActivate(pa + 3); got != 0xFF&^(1<<6) {
		t.Fatalf("second flip should be visible: %#x", got)
	}
	if d.Stats().ECCUncorrectable == 0 {
		t.Fatal("uncorrectable not counted")
	}
}

// A flip in another byte of the word must not garble the requested byte
// while ECC considers it correctable.
func TestECCCorrectionIsByteAccurate(t *testing.T) {
	d, victim, pa := trrDevice(t, TRRConfig{}, ECCSecDed)
	doubleSided(d, victim, 1200)
	// Byte pa is flipped and corrected; byte pa+1 is clean and must stay so.
	if got := d.ReadNoActivate(pa + 1); got != 0 {
		t.Fatalf("adjacent byte disturbed by correction: %#x", got)
	}
	_ = victim
}

// Rewriting a corrected cell clears the ECC bookkeeping.
func TestECCRearmOnWrite(t *testing.T) {
	d, victim, pa := trrDevice(t, TRRConfig{}, ECCSecDed)
	doubleSided(d, victim, 1200)
	d.Write(pa, 0xAB)
	if got := d.Read(pa); got != 0xAB {
		t.Fatalf("write-after-flip read back %#x", got)
	}
	before := d.Stats().ECCCorrected
	d.Read(pa)
	if d.Stats().ECCCorrected != before {
		t.Fatal("clean cell still being corrected")
	}
	_ = victim
}

// The TRR sampler resets at refresh, like REF-synchronised samplers.
func TestTRRTrackerResetsOnRefresh(t *testing.T) {
	trr := TRRConfig{Enabled: true, TrackerSize: 8, Threshold: 1 << 30} // never fires
	d, victim, _ := trrDevice(t, trr, ECCNone)
	doubleSided(d, victim, 10)
	bg := d.mapper.BankGroup(victim)
	if len(d.trr[bg].entries) == 0 {
		t.Fatal("tracker empty after hammering")
	}
	d.Refresh()
	if len(d.trr[bg].entries) != 0 {
		t.Fatal("tracker survived refresh")
	}
}
