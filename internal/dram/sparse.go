package dram

// Sparse chunk-granular backing store for Device data.
//
// A Device used to hold its entire capacity as one dense []byte, which made
// NewDevice for a multi-GiB profile cost gigabytes up front even though the
// experiments touch a few megabytes of it.  The store below allocates
// fixed-size segments on first *distinguishing* write: reads of untouched
// memory return the fill pattern (zero — DRAM hands the kernel zeroed
// frames in this simulation) without materialising anything, and writes
// that store the fill pattern into an untouched segment are elided.  The
// observable byte sequence is identical to the dense array for every
// operation order, which is why the E1–E17 goldens are pinned byte-for-byte
// across the switch (see TestSparseDenseObservationalEquivalence).

// storeChunkBytes is the segment granularity: large enough that the chunk
// index of an 8 GiB device stays around a megabyte, small enough that one
// touched page does not materialise a noticeable fraction of a bank.
const storeChunkBytes = 64 << 10

// store is the sparse byte store.  A nil chunk represents storeChunkBytes
// of the fill pattern (zero).
type store struct {
	size   uint64
	chunks [][]byte
}

// newStore builds an empty (all-zero) store of the given capacity.
func newStore(size uint64) *store {
	n := size / storeChunkBytes
	if size%storeChunkBytes != 0 {
		n++
	}
	return &store{size: size, chunks: make([][]byte, n)}
}

// chunkFor materialises and returns the chunk containing pa.
func (s *store) chunkFor(pa uint64) []byte {
	ci := pa / storeChunkBytes
	c := s.chunks[ci]
	if c == nil {
		n := uint64(storeChunkBytes)
		if base := ci * storeChunkBytes; base+n > s.size {
			n = s.size - base
		}
		c = make([]byte, n)
		s.chunks[ci] = c
	}
	return c
}

// load returns the byte at pa.
func (s *store) load(pa uint64) byte {
	c := s.chunks[pa/storeChunkBytes]
	if c == nil {
		return 0
	}
	return c[pa%storeChunkBytes]
}

// set stores v at pa.  Storing the fill pattern into an untouched chunk is
// a no-op, so sweeps of zero writes (page zeroing) stay allocation-free.
func (s *store) set(pa uint64, v byte) {
	if v == 0 && s.chunks[pa/storeChunkBytes] == nil {
		return
	}
	s.chunkFor(pa)[pa%storeChunkBytes] = v
}

// xor flips the masked bits at pa.
func (s *store) xor(pa uint64, mask byte) {
	if mask == 0 {
		return
	}
	s.chunkFor(pa)[pa%storeChunkBytes] ^= mask
}

// read copies [pa, pa+len(out)) into out.  Untouched chunks read as the
// fill pattern: the covered span of out is zeroed explicitly, so callers
// may pass reused buffers.
func (s *store) read(pa uint64, out []byte) {
	for len(out) > 0 {
		ci, off := pa/storeChunkBytes, pa%storeChunkBytes
		n := storeChunkBytes - off
		if n > uint64(len(out)) {
			n = uint64(len(out))
		}
		if c := s.chunks[ci]; c != nil {
			copy(out[:n], c[off:off+n])
		} else {
			seg := out[:n]
			for i := range seg {
				seg[i] = 0
			}
		}
		out = out[n:]
		pa += n
	}
}

// write stores data at [pa, pa+len(data)).  A segment that would write the
// fill pattern into an untouched chunk is elided, so bulk zero fills over
// fresh memory allocate nothing.
func (s *store) write(pa uint64, data []byte) {
	for len(data) > 0 {
		ci, off := pa/storeChunkBytes, pa%storeChunkBytes
		n := storeChunkBytes - off
		if n > uint64(len(data)) {
			n = uint64(len(data))
		}
		seg := data[:n]
		if s.chunks[ci] != nil || !allZero(seg) {
			copy(s.chunkFor(pa)[off:], seg)
		}
		data = data[n:]
		pa += n
	}
}

// fill stores n copies of v at [pa, pa+n).
func (s *store) fill(pa, n uint64, v byte) {
	for n > 0 {
		ci, off := pa/storeChunkBytes, pa%storeChunkBytes
		span := storeChunkBytes - off
		if span > n {
			span = n
		}
		if v != 0 || s.chunks[ci] != nil {
			seg := s.chunkFor(pa)[off : off+span]
			for i := range seg {
				seg[i] = v
			}
		}
		n -= span
		pa += span
	}
}

// materializedBytes reports how much backing memory the store has actually
// allocated — the number NewDevice keeps near-free for untouched profiles.
func (s *store) materializedBytes() uint64 {
	var total uint64
	for _, c := range s.chunks {
		total += uint64(len(c))
	}
	return total
}

// materializeAll forces every chunk into existence, turning the store into
// the dense array it replaced.  Test hook: the sparse/dense equivalence
// property runs identical workloads against a fresh store and a fully
// materialised one.
func (s *store) materializeAll() {
	for ci := range s.chunks {
		s.chunkFor(uint64(ci) * storeChunkBytes)
	}
}

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
