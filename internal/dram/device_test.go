package dram

import (
	"testing"
)

func testDevice(t *testing.T, model FaultModel, seed uint64) *Device {
	t.Helper()
	g := Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 8, Rows: 512, RowBytes: 4096}
	d, err := NewDevice(g, model, seed)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func TestDeviceReadWriteRoundTrip(t *testing.T) {
	d := testDevice(t, DefaultFaultModel(), 1)
	for pa := uint64(0); pa < 4096; pa += 97 {
		d.Write(pa, byte(pa%251))
	}
	for pa := uint64(0); pa < 4096; pa += 97 {
		if got := d.Read(pa); got != byte(pa%251) {
			t.Fatalf("Read(%d) = %d, want %d", pa, got, byte(pa%251))
		}
	}
}

func TestDeviceRowBufferHits(t *testing.T) {
	d := testDevice(t, DefaultFaultModel(), 1)
	d.Read(0)
	before := d.Stats()
	// Same row: col bits are low, so nearby addresses stay in the row.
	d.Read(1)
	d.Read(2)
	after := d.Stats()
	if after.Activations != before.Activations {
		t.Fatalf("same-row accesses caused activations: %d -> %d", before.Activations, after.Activations)
	}
	if after.RowHits != before.RowHits+2 {
		t.Fatalf("expected 2 row hits, got %d", after.RowHits-before.RowHits)
	}
}

func TestDeviceRowConflictActivates(t *testing.T) {
	d := testDevice(t, DefaultFaultModel(), 1)
	m := d.Mapper()
	a := m.ToDRAM(0)
	paSameBankNextRow := m.SameBankRow(a, a.Row+1, 0)
	d.Read(0)
	before := d.Stats().Activations
	d.Read(paSameBankNextRow)
	d.Read(0)
	if got := d.Stats().Activations - before; got != 2 {
		t.Fatalf("row conflicts should activate, got %d activations, want 2", got)
	}
}

// Hammering two rows adjacent to a victim row must flip a planted weak cell
// once the activation count passes its threshold, and must not flip before.
func TestDeviceHammerFlipsPlantedCell(t *testing.T) {
	model := DefaultFaultModel()
	model.WeakCellDensity = 0 // plant manually for a deterministic test
	model.FlipReliability = 1
	d := testDevice(t, model, 7)

	victim := Addr{Bank: 2, Row: 100, Col: 10}
	d.PlantWeakCell(WeakCell{Bank: d.mapper.BankGroup(victim), Row: 100, ByteInRow: 10, Bit: 3, Threshold: 1000, FlipTo: 0})

	victimPA := d.mapper.ToPhys(victim)
	d.Write(victimPA, 0xFF) // bit 3 is 1, the failure polarity flips it to 0

	// Double-sided: alternate rows 99 and 101 in the same bank.
	up := d.mapper.SameBankRow(victim, 99, 0)
	down := d.mapper.SameBankRow(victim, 101, 0)

	for i := 0; i < 499; i++ { // 499 activations per aggressor < threshold
		d.ActivateRow(up)
		d.ActivateRow(down)
	}
	if got := d.ReadNoActivate(victimPA); got != 0xFF {
		t.Fatalf("cell flipped below threshold: %#x", got)
	}
	for i := 0; i < 10; i++ {
		d.ActivateRow(up)
		d.ActivateRow(down)
	}
	if got := d.ReadNoActivate(victimPA); got != 0xFF&^(1<<3) {
		t.Fatalf("cell did not flip above threshold: %#x", got)
	}
	if d.Stats().BitFlips != 1 {
		t.Fatalf("BitFlips = %d, want 1", d.Stats().BitFlips)
	}
}

// A flip must only manifest when the cell holds its vulnerable polarity.
func TestDeviceFlipPolarity(t *testing.T) {
	model := DefaultFaultModel()
	model.WeakCellDensity = 0
	model.FlipReliability = 1
	d := testDevice(t, model, 7)

	victim := Addr{Bank: 1, Row: 50, Col: 5}
	d.PlantWeakCell(WeakCell{Bank: d.mapper.BankGroup(victim), Row: 50, ByteInRow: 5, Bit: 0, Threshold: 100, FlipTo: 0})

	victimPA := d.mapper.ToPhys(victim)
	d.Write(victimPA, 0x00) // bit already 0: a 1->0 cell has nothing to flip

	up := d.mapper.SameBankRow(victim, 49, 0)
	down := d.mapper.SameBankRow(victim, 51, 0)
	for i := 0; i < 200; i++ {
		d.ActivateRow(up)
		d.ActivateRow(down)
	}
	if got := d.ReadNoActivate(victimPA); got != 0 {
		t.Fatalf("0->? flip observed on a 1->0 cell: %#x", got)
	}
	if d.Stats().BitFlips != 0 {
		t.Fatalf("BitFlips = %d, want 0", d.Stats().BitFlips)
	}
}

// Refresh resets disturbance accumulation: hammering split across a refresh
// must not flip, hammering within a window must.
func TestDeviceRefreshResetsDisturbance(t *testing.T) {
	model := DefaultFaultModel()
	model.WeakCellDensity = 0
	model.FlipReliability = 1
	model.RefreshInterval = 1500 // activations per refresh window
	d := testDevice(t, model, 7)

	victim := Addr{Bank: 3, Row: 200, Col: 0}
	d.PlantWeakCell(WeakCell{Bank: d.mapper.BankGroup(victim), Row: 200, ByteInRow: 0, Bit: 7, Threshold: 1000, FlipTo: 0})
	victimPA := d.mapper.ToPhys(victim)
	d.Write(victimPA, 0x80)

	up := d.mapper.SameBankRow(victim, 199, 0)
	down := d.mapper.SameBankRow(victim, 201, 0)
	// Each double-sided pair contributes 2 disturbance units to the victim
	// row.  400 pairs = 800 < threshold 1000; a refresh between two such
	// bursts must prevent the flip even though the total crosses 1000.
	for i := 0; i < 400; i++ {
		d.ActivateRow(up)
		d.ActivateRow(down)
	}
	d.Refresh()
	for i := 0; i < 400; i++ {
		d.ActivateRow(up)
		d.ActivateRow(down)
	}
	if got := d.ReadNoActivate(victimPA); got != 0x80 {
		t.Fatalf("flip across refresh boundary should not happen: %#x", got)
	}
	// Control: the same total inside one window flips.
	d.Refresh()
	for i := 0; i < 600; i++ {
		d.ActivateRow(up)
		d.ActivateRow(down)
	}
	if got := d.ReadNoActivate(victimPA); got != 0 {
		t.Fatalf("flip within one window expected: %#x", got)
	}
}

// Rewriting a flipped cell restores it and re-arms the weak cell.
func TestDeviceRewriteRearmsCell(t *testing.T) {
	model := DefaultFaultModel()
	model.WeakCellDensity = 0
	model.FlipReliability = 1
	d := testDevice(t, model, 7)

	victim := Addr{Bank: 0, Row: 128, Col: 64}
	d.PlantWeakCell(WeakCell{Bank: d.mapper.BankGroup(victim), Row: 128, ByteInRow: 64, Bit: 1, Threshold: 500, FlipTo: 0})
	victimPA := d.mapper.ToPhys(victim)

	hammer := func() {
		up := d.mapper.SameBankRow(victim, 127, 0)
		down := d.mapper.SameBankRow(victim, 129, 0)
		for i := 0; i < 600; i++ {
			d.ActivateRow(up)
			d.ActivateRow(down)
		}
	}

	d.Write(victimPA, 0xFF)
	hammer()
	if got := d.ReadNoActivate(victimPA); got != 0xFF&^(1<<1) {
		t.Fatalf("first hammer did not flip: %#x", got)
	}
	d.Write(victimPA, 0xFF) // rewrite re-arms
	d.Refresh()
	hammer()
	if got := d.ReadNoActivate(victimPA); got != 0xFF&^(1<<1) {
		t.Fatalf("second hammer did not flip after rewrite: %#x", got)
	}
	if d.Stats().BitFlips != 2 {
		t.Fatalf("BitFlips = %d, want 2", d.Stats().BitFlips)
	}
}

func TestDeviceFlipLog(t *testing.T) {
	model := DefaultFaultModel()
	model.WeakCellDensity = 0
	model.FlipReliability = 1
	d := testDevice(t, model, 7)
	d.EnableFlipLog()

	victim := Addr{Bank: 5, Row: 300, Col: 33}
	d.PlantWeakCell(WeakCell{Bank: d.mapper.BankGroup(victim), Row: 300, ByteInRow: 33, Bit: 6, Threshold: 400, FlipTo: 0})
	victimPA := d.mapper.ToPhys(victim)
	d.Write(victimPA, 0xFF)

	up := d.mapper.SameBankRow(victim, 299, 0)
	down := d.mapper.SameBankRow(victim, 301, 0)
	for i := 0; i < 500; i++ {
		d.ActivateRow(up)
		d.ActivateRow(down)
	}
	log := d.DrainFlipLog()
	if len(log) != 1 {
		t.Fatalf("flip log has %d entries, want 1", len(log))
	}
	if log[0].Phys != victimPA || log[0].Bit != 6 || log[0].From != 1 {
		t.Fatalf("unexpected flip record: %+v", log[0])
	}
	if got := d.DrainFlipLog(); len(got) != 0 {
		t.Fatalf("DrainFlipLog did not clear: %d entries", len(got))
	}
}

func TestDeviceWeakCellPlacementDeterministic(t *testing.T) {
	model := DefaultFaultModel()
	model.WeakCellDensity = 1e-5
	d1 := testDevice(t, model, 42)
	d2 := testDevice(t, model, 42)
	if d1.WeakCellCount() != d2.WeakCellCount() {
		t.Fatalf("weak cell counts differ: %d vs %d", d1.WeakCellCount(), d2.WeakCellCount())
	}
	if d1.WeakCellCount() == 0 {
		t.Fatal("expected some weak cells at density 1e-5")
	}
	a := d1.WeakCellsInRange(0, d1.Size())
	b := d2.WeakCellsInRange(0, d2.Size())
	if len(a) != len(b) {
		t.Fatalf("weak cell sets differ in size: %d vs %d", len(a), len(b))
	}
	// Different seed should (at this density) give a different placement.
	d3 := testDevice(t, model, 43)
	c := d3.WeakCellsInRange(0, d3.Size())
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same && len(a) > 0 {
		t.Fatal("different seeds produced identical weak cell placement")
	}
}

func TestDeviceWeakCellsInRange(t *testing.T) {
	model := DefaultFaultModel()
	model.WeakCellDensity = 1e-5
	d := testDevice(t, model, 11)
	all := d.WeakCellsInRange(0, d.Size())
	if len(all) != d.WeakCellCount() {
		t.Fatalf("full-range query returned %d cells, device has %d", len(all), d.WeakCellCount())
	}
	for _, wc := range all {
		pa := d.PhysOfWeakCell(wc)
		if pa >= d.Size() {
			t.Fatalf("weak cell physical address out of range: %d", pa)
		}
		got := d.WeakCellsInRange(pa, pa+1)
		found := false
		for _, g := range got {
			if g == wc {
				found = true
			}
		}
		if !found {
			t.Fatalf("point query at %d missed weak cell %+v", pa, wc)
		}
	}
}

func TestNewDeviceRejectsBadConfig(t *testing.T) {
	g := DefaultGeometry()
	m := DefaultFaultModel()
	m.RefreshInterval = 0
	if _, err := NewDevice(g, m, 1); err == nil {
		t.Fatal("expected error for zero refresh interval")
	}
	bad := g
	bad.Rows = 1000
	if _, err := NewDevice(bad, DefaultFaultModel(), 1); err == nil {
		t.Fatal("expected error for invalid geometry")
	}
}
