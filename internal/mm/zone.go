// Package mm implements the Linux-style physical memory allocator the paper
// exploits: a zoned page frame allocator (Section III/IV of the paper) whose
// zones each contain a binary buddy allocator, fronted by a per-CPU page
// frame cache (pcp lists) for order-0 allocations (Section V).
//
// The exploit surface is entirely algorithmic: recently freed order-0 frames
// sit in a per-CPU LIFO cache and are handed back, most-recent first, to the
// next small allocation on the same CPU — regardless of which process makes
// it.  This package reproduces that mechanism byte for byte; the kernel
// façade in internal/kernel drives it the way mmap/munmap would.
package mm

import (
	"errors"
	"fmt"
)

// PageShift is log2 of the page size; PageSize is the 4 KiB x86-64 base page.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// PFN is a physical page frame number: physical address >> PageShift.
type PFN uint64

// NilPFN is the sentinel for "no frame" in intrusive lists.
const NilPFN = PFN(^uint64(0))

// Phys returns the physical byte address of the first byte of the frame.
func (p PFN) Phys() uint64 { return uint64(p) << PageShift }

// PFNOf returns the frame containing physical address pa.
func PFNOf(pa uint64) PFN { return PFN(pa >> PageShift) }

// ZoneType enumerates the memory zones of a 64-bit machine (Section III).
type ZoneType int

const (
	// ZoneDMA covers the first 16 MiB, reserved for legacy DMA devices.
	ZoneDMA ZoneType = iota
	// ZoneDMA32 covers 16 MiB – 4 GiB, usable for 32-bit DMA and general
	// allocations.
	ZoneDMA32
	// ZoneNormal covers everything above 4 GiB on 64-bit systems.
	ZoneNormal
	numZones
)

// String returns the kernel-style zone name.
func (z ZoneType) String() string {
	switch z {
	case ZoneDMA:
		return "DMA"
	case ZoneDMA32:
		return "DMA32"
	case ZoneNormal:
		return "Normal"
	default:
		return fmt.Sprintf("Zone(%d)", int(z))
	}
}

// zonelist returns the fallback order for a preferred zone, mirroring the
// kernel's build_zonelists: allocation falls back to lower zones only.
func zonelist(pref ZoneType) []ZoneType {
	switch pref {
	case ZoneNormal:
		return []ZoneType{ZoneNormal, ZoneDMA32, ZoneDMA}
	case ZoneDMA32:
		return []ZoneType{ZoneDMA32, ZoneDMA}
	default:
		return []ZoneType{ZoneDMA}
	}
}

// Errors returned by the allocator.
var (
	// ErrNoMemory reports that no zone on the zonelist could satisfy the
	// request above its minimum watermark.
	ErrNoMemory = errors.New("mm: out of memory")
	// ErrBadFree reports an invalid free: wrong order, double free, or a
	// frame the allocator never handed out.
	ErrBadFree = errors.New("mm: invalid free")
)

// frameState tracks where a frame currently lives.
type frameState uint8

const (
	frameInvalid   frameState = iota // outside any zone's managed range
	frameFreeHead                    // head of a free buddy block (order valid)
	frameFreeTail                    // interior page of a free buddy block
	frameAllocated                   // handed out by the buddy allocator
	frameInPCP                       // sitting in a per-CPU page frame cache
)

// frameInfo is the per-frame metadata (struct page, radically slimmed).
type frameInfo struct {
	state frameState
	order uint8 // valid when state == frameFreeHead or frameAllocated
	prev  PFN   // intrusive free-list links, valid when frameFreeHead
	next  PFN
	cpu   int32 // owning CPU when state == frameInPCP
}

// ZoneStats aggregates per-zone allocator activity.
type ZoneStats struct {
	Allocs     uint64 // blocks handed out by the buddy allocator
	Frees      uint64 // blocks returned to the buddy allocator
	Splits     uint64 // block splits performed
	Coalesces  uint64 // buddy merges performed
	PCPHits    uint64 // order-0 allocations served from a pcp list
	PCPMisses  uint64 // order-0 allocations that had to refill from buddy
	PCPRefills uint64 // batch refills pulled from the buddy allocator
	PCPSpills  uint64 // batch spills pushed back on pcp overflow
	Fallbacks  uint64 // allocations served by this zone on behalf of a higher preferred zone
	FailedAllo uint64 // allocation attempts rejected by the watermark
}

// zone is one memory zone: a frame range plus a buddy allocator.
type zone struct {
	ztype    ZoneType
	spanBase PFN // first frame of the zone
	spanEnd  PFN // one past the last frame
	free     uint64
	min      uint64 // minimum watermark in pages

	freeLists []PFN // head PFN per order, NilPFN when empty
	stats     ZoneStats
}

func (z *zone) pages() uint64 { return uint64(z.spanEnd - z.spanBase) }

func (z *zone) contains(p PFN) bool { return p >= z.spanBase && p < z.spanEnd }
