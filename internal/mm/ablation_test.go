package mm

import "testing"

// The FIFO ablation must invert the reuse order: the oldest freed frame
// comes back first, so the attack's "hottest frame to the next allocation"
// property disappears.
func TestPCPFIFOAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalBytes = 64 << 20
	cfg.PCPFIFO = true
	pm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the refill leftovers so the cache holds exactly our frames.
	var warm []PFN
	for i := 0; i < cfg.PCPBatch; i++ {
		p, err := pm.AllocPages(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		warm = append(warm, p)
	}
	a, b, c := warm[0], warm[1], warm[2]
	if err := pm.FreePages(0, a, 0); err != nil {
		t.Fatal(err)
	}
	if err := pm.FreePages(0, b, 0); err != nil {
		t.Fatal(err)
	}
	if err := pm.FreePages(0, c, 0); err != nil {
		t.Fatal(err)
	}
	got1, _ := pm.AllocPages(0, 0)
	got2, _ := pm.AllocPages(0, 0)
	got3, _ := pm.AllocPages(0, 0)
	if got1 != a || got2 != b || got3 != c {
		t.Fatalf("FIFO order wrong: freed [%d %d %d], got [%d %d %d]", a, b, c, got1, got2, got3)
	}
	// Remaining warm frames stay allocated; free them to keep invariants.
	for _, p := range warm[3:] {
		if err := pm.FreePages(0, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []PFN{got1, got2, got3} {
		if err := pm.FreePages(0, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	pm.DrainCPU(0)
	if err := pm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Default policy must remain LIFO.
func TestPCPDefaultIsLIFO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalBytes = 64 << 20
	if cfg.PCPFIFO {
		t.Fatal("default config must not enable the FIFO ablation")
	}
}
