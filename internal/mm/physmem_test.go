package mm

import (
	"errors"
	"testing"

	"explframe/internal/stats"
)

func newTestPM(t *testing.T) *PhysMem {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TotalBytes = 64 << 20 // 64 MiB keeps tests fast
	pm, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return pm
}

func TestNewRejectsBadConfig(t *testing.T) {
	cases := []Config{
		{TotalBytes: 0, NumCPUs: 1, PCPBatch: 1, PCPHigh: 1},
		{TotalBytes: 4097, NumCPUs: 1, PCPBatch: 1, PCPHigh: 1},
		{TotalBytes: 1 << 20, NumCPUs: 0, PCPBatch: 1, PCPHigh: 1},
		{TotalBytes: 1 << 20, NumCPUs: 1, PCPBatch: 0, PCPHigh: 1},
		{TotalBytes: 1 << 20, NumCPUs: 1, PCPBatch: 8, PCPHigh: 4},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestZoneLayout(t *testing.T) {
	pm := newTestPM(t)
	if !pm.HasZone(ZoneDMA) || !pm.HasZone(ZoneDMA32) {
		t.Fatal("expected DMA and DMA32 zones on a 64 MiB machine")
	}
	if pm.HasZone(ZoneNormal) {
		t.Fatal("ZoneNormal must be absent below 4 GiB")
	}
	base, end := pm.ZoneSpan(ZoneDMA)
	if base != 0 || end != PFN((16<<20)/PageSize) {
		t.Fatalf("DMA span [%d,%d)", base, end)
	}
	base, end = pm.ZoneSpan(ZoneDMA32)
	if base != PFN((16<<20)/PageSize) || end != PFN((64<<20)/PageSize) {
		t.Fatalf("DMA32 span [%d,%d)", base, end)
	}
	// All pages accounted free after seeding.
	if got := pm.FreePagesInZone(ZoneDMA) + pm.FreePagesInZone(ZoneDMA32); got != pm.TotalPages() {
		t.Fatalf("free pages %d != total %d", got, pm.TotalPages())
	}
	if err := pm.CheckInvariants(); err != nil {
		t.Fatalf("invariants after seed: %v", err)
	}
}

func TestZoneOf(t *testing.T) {
	pm := newTestPM(t)
	if zt := pm.ZoneOf(0); zt != ZoneDMA {
		t.Fatalf("ZoneOf(0) = %v", zt)
	}
	if zt := pm.ZoneOf(PFN((16 << 20) / PageSize)); zt != ZoneDMA32 {
		t.Fatalf("ZoneOf(first DMA32 frame) = %v", zt)
	}
	if zt := pm.ZoneOf(PFN(1 << 40)); zt != ZoneType(-1) {
		t.Fatalf("ZoneOf(out of range) = %v", zt)
	}
}

func TestAllocFreeRoundTripAllOrders(t *testing.T) {
	pm := newTestPM(t)
	for order := 0; order <= MaxOrder; order++ {
		p, err := pm.AllocPages(0, order)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if err := pm.FreePages(0, p, order); err != nil {
			t.Fatalf("free order %d: %v", order, err)
		}
		if err := pm.CheckInvariants(); err != nil {
			t.Fatalf("invariants after order %d: %v", order, err)
		}
	}
}

// Freeing a pair of buddies must coalesce back to the original block; the
// full zone must return to its seeded maximal-order state after all frees.
func TestBuddyCoalescing(t *testing.T) {
	pm := newTestPM(t)
	before := pm.FreeBlocksByOrder(ZoneDMA32)

	var blocks []PFN
	for i := 0; i < 8; i++ {
		p, err := pm.AllocPages(0, 3) // 8-page blocks
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, p)
	}
	splits := pm.Stats(ZoneDMA32).Splits
	if splits == 0 {
		t.Fatal("expected splits when carving order-3 blocks from maximal blocks")
	}
	for _, p := range blocks {
		if err := pm.FreePages(0, p, 3); err != nil {
			t.Fatal(err)
		}
	}
	if pm.Stats(ZoneDMA32).Coalesces == 0 {
		t.Fatal("expected coalesces when freeing buddy blocks")
	}
	after := pm.FreeBlocksByOrder(ZoneDMA32)
	if before != after {
		t.Fatalf("free lists did not return to seeded state:\nbefore %v\nafter  %v", before, after)
	}
	if err := pm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The page frame cache must be LIFO: the most recently freed frame is the
// first one handed to the next order-0 allocation on the same CPU.  This is
// the paper's central observation (Section V).
func TestPCPLIFOReuse(t *testing.T) {
	pm := newTestPM(t)
	a, _ := pm.AllocPages(0, 0)
	b, _ := pm.AllocPages(0, 0)
	c, _ := pm.AllocPages(0, 0)

	if err := pm.FreePages(0, a, 0); err != nil {
		t.Fatal(err)
	}
	if err := pm.FreePages(0, b, 0); err != nil {
		t.Fatal(err)
	}
	if err := pm.FreePages(0, c, 0); err != nil {
		t.Fatal(err)
	}

	got1, _ := pm.AllocPages(0, 0)
	got2, _ := pm.AllocPages(0, 0)
	got3, _ := pm.AllocPages(0, 0)
	if got1 != c || got2 != b || got3 != a {
		t.Fatalf("pcp not LIFO: freed [a=%d b=%d c=%d], got [%d %d %d]", a, b, c, got1, got2, got3)
	}
}

// A frame freed on CPU 0 must not be handed to CPU 1: the caches are
// per CPU, which is why the attacker must share the victim's CPU.
func TestPCPPerCPUIsolation(t *testing.T) {
	pm := newTestPM(t)
	p, _ := pm.AllocPages(0, 0)
	if err := pm.FreePages(0, p, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		q, err := pm.AllocPages(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if q == p {
			t.Fatalf("frame freed on CPU0 allocated on CPU1 after %d allocs", i)
		}
	}
	// Still sitting at the hot end of CPU0's cache.
	contents := pm.PCPContents(0, ZoneDMA32)
	if len(contents) == 0 || contents[len(contents)-1] != p {
		t.Fatalf("freed frame %d not at hot end of CPU0 cache: %v", p, contents)
	}
}

func TestPCPRefillBatch(t *testing.T) {
	pm := newTestPM(t)
	cfg := pm.Config()
	_, err := pm.AllocPages(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One refill happened, one frame handed out.
	if got := pm.PCPCount(0, ZoneDMA32); got != cfg.PCPBatch-1 {
		t.Fatalf("pcp count after first alloc = %d, want %d", got, cfg.PCPBatch-1)
	}
	if s := pm.Stats(ZoneDMA32); s.PCPRefills != 1 || s.PCPMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The next batch-1 allocations are pure hits.
	for i := 0; i < cfg.PCPBatch-1; i++ {
		if _, err := pm.AllocPages(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s := pm.Stats(ZoneDMA32); s.PCPHits != uint64(cfg.PCPBatch-1) {
		t.Fatalf("PCPHits = %d, want %d", s.PCPHits, cfg.PCPBatch-1)
	}
}

func TestPCPSpillAtHighWatermark(t *testing.T) {
	pm := newTestPM(t)
	cfg := pm.Config()
	var pages []PFN
	for i := 0; i < cfg.PCPHigh+1; i++ {
		p, err := pm.AllocPages(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	for _, p := range pages {
		if err := pm.FreePages(0, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s := pm.Stats(ZoneDMA32); s.PCPSpills == 0 {
		t.Fatal("expected a pcp spill after exceeding the high watermark")
	}
	if got := pm.PCPCount(0, ZoneDMA32); got > cfg.PCPHigh {
		t.Fatalf("pcp count %d exceeds high watermark %d", got, cfg.PCPHigh)
	}
	if err := pm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Spills must evict the cold end: after a spill, the hottest (most recently
// freed) frames must survive in the cache.
func TestPCPSpillKeepsHotEnd(t *testing.T) {
	pm := newTestPM(t)
	cfg := pm.Config()
	var pages []PFN
	for i := 0; i < cfg.PCPHigh+1; i++ {
		p, err := pm.AllocPages(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	for _, p := range pages {
		if err := pm.FreePages(0, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	hot := pages[len(pages)-1] // last freed = hottest
	got, err := pm.AllocPages(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != hot {
		t.Fatalf("hottest frame evicted by spill: got %d want %d", got, hot)
	}
}

func TestDrainCPU(t *testing.T) {
	pm := newTestPM(t)
	p, _ := pm.AllocPages(0, 0)
	if err := pm.FreePages(0, p, 0); err != nil {
		t.Fatal(err)
	}
	freeBefore := pm.FreePagesInZone(ZoneDMA32)
	n := pm.PCPCount(0, ZoneDMA32)
	if n == 0 {
		t.Fatal("expected cached frames before drain")
	}
	pm.DrainCPU(0)
	if pm.PCPCount(0, ZoneDMA32) != 0 {
		t.Fatal("drain left frames in the cache")
	}
	if got := pm.FreePagesInZone(ZoneDMA32); got != freeBefore+uint64(n) {
		t.Fatalf("free pages after drain = %d, want %d", got, freeBefore+uint64(n))
	}
	if err := pm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// After a drain the planted frame is gone from the cache: the next
	// allocation comes from the buddy allocator, not necessarily p.
}

func TestZoneFallback(t *testing.T) {
	pm := newTestPM(t)
	// Exhaust DMA32 with max-order allocations, then keep allocating: the
	// allocator must fall back to ZoneDMA.
	for {
		_, err := pm.AllocPages(0, MaxOrder)
		if err != nil {
			break
		}
	}
	sawDMA := false
	for i := 0; i < 64; i++ {
		p, err := pm.AllocPages(0, 4)
		if err != nil {
			break
		}
		if pm.ZoneOf(p) == ZoneDMA {
			sawDMA = true
			break
		}
	}
	if !sawDMA {
		t.Fatal("allocations never fell back to ZoneDMA")
	}
	if pm.Stats(ZoneDMA).Fallbacks == 0 {
		t.Fatal("fallback counter not incremented")
	}
}

func TestWatermarkBlocksAllocation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalBytes = 32 << 20
	cfg.MinWatermarkPages = 128
	pm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drain everything allocatable.
	var count uint64
	for {
		_, err := pm.AllocPages(0, 0)
		if err != nil {
			break
		}
		count++
	}
	// The reserve must hold in every present zone.
	for _, zt := range []ZoneType{ZoneDMA, ZoneDMA32} {
		if !pm.HasZone(zt) {
			continue
		}
		if free := pm.FreePagesInZone(zt); free < cfg.MinWatermarkPages {
			t.Fatalf("zone %v free %d below min watermark %d", zt, free, cfg.MinWatermarkPages)
		}
	}
	if count == 0 {
		t.Fatal("no allocations succeeded")
	}
}

func TestFreeErrors(t *testing.T) {
	pm := newTestPM(t)
	p, _ := pm.AllocPages(0, 1)

	if err := pm.FreePages(0, p, 0); !errors.Is(err, ErrBadFree) {
		t.Fatalf("wrong-order free: %v", err)
	}
	if err := pm.FreePages(0, p+1, 0); !errors.Is(err, ErrBadFree) {
		t.Fatalf("interior free: %v", err)
	}
	if err := pm.FreePages(0, p, 1); err != nil {
		t.Fatal(err)
	}
	if err := pm.FreePages(0, p, 1); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: %v", err)
	}
	if err := pm.FreePages(0, PFN(1<<40), 0); !errors.Is(err, ErrBadFree) {
		t.Fatalf("out-of-range free: %v", err)
	}
	if err := pm.FreePages(9, p, 0); err == nil {
		t.Fatal("bad cpu free accepted")
	}
	if _, err := pm.AllocPages(0, MaxOrder+1); err == nil {
		t.Fatal("order beyond MaxOrder accepted")
	}
	if _, err := pm.AllocPages(-1, 0); err == nil {
		t.Fatal("negative cpu accepted")
	}
}

// Property test: a random storm of allocations and frees never breaks the
// buddy invariants, never double-allocates a live frame, and returns the
// allocator to its seeded state once everything is freed and drained.
func TestRandomAllocFreeStorm(t *testing.T) {
	pm := newTestPM(t)
	rng := stats.NewRNG(12345)
	seeded := pm.FreeBlocksByOrder(ZoneDMA32)

	type block struct {
		p     PFN
		order int
		cpu   int
	}
	var live []block
	owned := make(map[PFN]bool)

	for step := 0; step < 5000; step++ {
		if rng.Bool(0.55) || len(live) == 0 {
			order := rng.Intn(5)
			cpu := rng.Intn(pm.Config().NumCPUs)
			p, err := pm.AllocPages(cpu, order)
			if err != nil {
				continue
			}
			for i := PFN(0); i < PFN(1)<<uint(order); i++ {
				if owned[p+i] {
					t.Fatalf("step %d: frame %d double-allocated", step, p+i)
				}
				owned[p+i] = true
			}
			live = append(live, block{p, order, cpu})
		} else {
			idx := rng.Intn(len(live))
			b := live[idx]
			if err := pm.FreePages(b.cpu, b.p, b.order); err != nil {
				t.Fatalf("step %d: free(%d,%d): %v", step, b.p, b.order, err)
			}
			for i := PFN(0); i < PFN(1)<<uint(b.order); i++ {
				delete(owned, b.p+i)
			}
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%500 == 0 {
			if err := pm.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	for _, b := range live {
		if err := pm.FreePages(b.cpu, b.p, b.order); err != nil {
			t.Fatal(err)
		}
	}
	for cpu := 0; cpu < pm.Config().NumCPUs; cpu++ {
		pm.DrainCPU(cpu)
	}
	if err := pm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	final := pm.FreeBlocksByOrder(ZoneDMA32)
	if seeded != final {
		t.Fatalf("allocator did not return to seeded state:\nseeded %v\nfinal  %v", seeded, final)
	}
}

func TestExternalFragmentation(t *testing.T) {
	pm := newTestPM(t)
	if f := pm.ExternalFragmentation(ZoneDMA32, MaxOrder); f > 0.01 {
		t.Fatalf("fresh zone fragmentation at max order = %f", f)
	}
	// Pin alternating order-0 pages to fragment the zone.
	var pages []PFN
	for i := 0; i < 2000; i++ {
		p, err := pm.AllocPages(0, 0)
		if err != nil {
			break
		}
		pages = append(pages, p)
	}
	for i, p := range pages {
		if i%2 == 0 {
			if err := pm.FreePages(0, p, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	pm.DrainCPU(0)
	if f := pm.ExternalFragmentation(ZoneDMA32, MaxOrder); f <= 0 {
		t.Fatalf("checkerboarded zone shows no fragmentation: %f", f)
	}
	if f := pm.ExternalFragmentation(ZoneDMA32, 0); f != 0 {
		t.Fatalf("order-0 fragmentation must be 0, got %f", f)
	}
}

func TestPCPContentsView(t *testing.T) {
	pm := newTestPM(t)
	p, _ := pm.AllocPages(0, 0)
	q, _ := pm.AllocPages(0, 0)
	pm.FreePages(0, p, 0)
	pm.FreePages(0, q, 0)
	got := pm.PCPContents(0, ZoneDMA32)
	if len(got) < 2 {
		t.Fatalf("pcp contents too short: %v", got)
	}
	if got[len(got)-1] != q || got[len(got)-2] != p {
		t.Fatalf("pcp order wrong: tail %v, want ...,%d,%d", got, p, q)
	}
	// Mutating the copy must not affect the allocator.
	got[0] = NilPFN
	if pm.PCPContents(0, ZoneDMA32)[0] == NilPFN {
		t.Fatal("PCPContents exposed internal state")
	}
}

func TestPFNHelpers(t *testing.T) {
	if PFN(3).Phys() != 3*PageSize {
		t.Fatal("PFN.Phys wrong")
	}
	if PFNOf(PageSize*7+123) != 7 {
		t.Fatal("PFNOf wrong")
	}
}

func TestZoneTypeString(t *testing.T) {
	if ZoneDMA.String() != "DMA" || ZoneDMA32.String() != "DMA32" || ZoneNormal.String() != "Normal" {
		t.Fatal("zone names wrong")
	}
	if ZoneType(9).String() == "" {
		t.Fatal("unknown zone must still render")
	}
}

func TestStringSummary(t *testing.T) {
	pm := newTestPM(t)
	s := pm.String()
	if s == "" {
		t.Fatal("empty summary")
	}
}
