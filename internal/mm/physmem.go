package mm

import (
	"fmt"
	"strings"
)

// Config sizes the physical memory manager.
type Config struct {
	// TotalBytes is the amount of managed physical memory.  Must be a
	// multiple of the page size.
	TotalBytes uint64
	// NumCPUs is the number of CPUs; each gets its own page frame cache per
	// zone.
	NumCPUs int
	// PCPBatch is the pcp refill/spill chunk size (Linux: ->batch).
	PCPBatch int
	// PCPHigh is the pcp capacity before spilling back to buddy (->high).
	PCPHigh int
	// PCPFIFO switches the page frame cache from Linux's LIFO (hot reuse)
	// to FIFO service.  Ablation knob: the ExplFrame steering primitive
	// depends on LIFO, so FIFO quantifies how much of the attack is due to
	// that one policy choice (experiment E14).
	PCPFIFO bool
	// DMALimit and DMA32Limit are the zone boundaries; defaults 16 MiB and
	// 4 GiB per Section III of the paper.
	DMALimit   uint64
	DMA32Limit uint64
	// MinWatermarkPages is the per-zone reserve below which allocations
	// fail (a simplified min watermark).
	MinWatermarkPages uint64
}

// DefaultConfig returns a 256 MiB, 2-CPU machine with Linux-like pcp sizing.
func DefaultConfig() Config {
	return Config{
		TotalBytes:        256 << 20,
		NumCPUs:           2,
		PCPBatch:          31, // Linux pcp batch for 4 KiB pages
		PCPHigh:           186,
		DMALimit:          16 << 20,
		DMA32Limit:        4 << 30,
		MinWatermarkPages: 32,
	}
}

// pcpList is one per-CPU page frame cache for one zone: a LIFO of order-0
// frames.  "This small software cache of recently deallocated (released)
// page frames are used by the Buddy allocator if the local CPU requests a
// small amount of memory" (Section IV).
type pcpList struct {
	frames []PFN // frames[len-1] is the hot (most recently freed) end
	batch  int
	high   int
}

// PhysMem is the machine-wide physical page allocator: zones with buddy
// allocators plus per-CPU page frame caches.
type PhysMem struct {
	cfg    Config
	frames []frameInfo
	zones  [numZones]*zone
	// pcp[cpu][zone]
	pcp [][]*pcpList
}

// New builds the allocator and seeds every zone's buddy free lists.
func New(cfg Config) (*PhysMem, error) {
	if cfg.TotalBytes == 0 || cfg.TotalBytes%PageSize != 0 {
		return nil, fmt.Errorf("mm: TotalBytes must be a positive multiple of %d", PageSize)
	}
	if cfg.NumCPUs <= 0 {
		return nil, fmt.Errorf("mm: NumCPUs must be positive")
	}
	if cfg.PCPBatch <= 0 || cfg.PCPHigh < cfg.PCPBatch {
		return nil, fmt.Errorf("mm: need 0 < PCPBatch <= PCPHigh")
	}
	totalPages := cfg.TotalBytes / PageSize
	pm := &PhysMem{
		cfg:    cfg,
		frames: make([]frameInfo, totalPages),
	}

	bounds := []struct {
		zt  ZoneType
		lo  uint64
		hi  uint64
		cap uint64
	}{
		{ZoneDMA, 0, cfg.DMALimit, 0},
		{ZoneDMA32, cfg.DMALimit, cfg.DMA32Limit, 0},
		{ZoneNormal, cfg.DMA32Limit, ^uint64(0), 0},
	}
	for _, b := range bounds {
		lo, hi := b.lo, b.hi
		if hi > cfg.TotalBytes {
			hi = cfg.TotalBytes
		}
		if lo >= hi {
			continue // zone not present on this machine
		}
		z := &zone{
			ztype:     b.zt,
			spanBase:  PFNOf(lo),
			spanEnd:   PFNOf(hi),
			min:       cfg.MinWatermarkPages,
			freeLists: make([]PFN, MaxOrder+1),
		}
		for i := range z.freeLists {
			z.freeLists[i] = NilPFN
		}
		pm.zones[b.zt] = z
		pm.seedZone(z)
	}

	pm.pcp = make([][]*pcpList, cfg.NumCPUs)
	for cpu := range pm.pcp {
		pm.pcp[cpu] = make([]*pcpList, numZones)
		for zt := range pm.pcp[cpu] {
			if pm.zones[zt] != nil {
				pm.pcp[cpu][zt] = &pcpList{batch: cfg.PCPBatch, high: cfg.PCPHigh}
			}
		}
	}
	return pm, nil
}

// Config returns the configuration the allocator was built with.
func (pm *PhysMem) Config() Config { return pm.cfg }

// TotalPages returns the number of managed frames.
func (pm *PhysMem) TotalPages() uint64 { return uint64(len(pm.frames)) }

// ZoneOf returns the zone containing the frame, or -1 if unmanaged.
func (pm *PhysMem) ZoneOf(p PFN) ZoneType {
	for zt, z := range pm.zones {
		if z != nil && z.contains(p) {
			return ZoneType(zt)
		}
	}
	return ZoneType(-1)
}

// HasZone reports whether the machine has the given zone.
func (pm *PhysMem) HasZone(zt ZoneType) bool { return pm.zones[zt] != nil }

// FreePages returns the total number of free pages in the zone (buddy only;
// pcp-cached frames are not counted free, matching NR_FREE_PAGES semantics).
func (pm *PhysMem) FreePagesInZone(zt ZoneType) uint64 {
	if pm.zones[zt] == nil {
		return 0
	}
	return pm.zones[zt].free
}

// ZoneSpan returns the [base, end) frame range of a zone.
func (pm *PhysMem) ZoneSpan(zt ZoneType) (base, end PFN) {
	z := pm.zones[zt]
	if z == nil {
		return 0, 0
	}
	return z.spanBase, z.spanEnd
}

// Stats returns a copy of the zone's counters.
func (pm *PhysMem) Stats(zt ZoneType) ZoneStats {
	if pm.zones[zt] == nil {
		return ZoneStats{}
	}
	return pm.zones[zt].stats
}

// watermarkOK reports whether taking 2^order pages keeps the zone above its
// minimum watermark.
func (z *zone) watermarkOK(order int) bool {
	need := uint64(1) << uint(order)
	return z.free >= need && z.free-need >= z.min
}

// AllocPages allocates a block of 2^order contiguous frames on behalf of the
// given CPU, preferring ZoneNormal and walking the zonelist downwards
// (Section IV: "the allocation function will try to get the page frames from
// other zones in order as maintained in zonelist").  Order-0 requests go
// through the CPU's page frame cache.
func (pm *PhysMem) AllocPages(cpu, order int) (PFN, error) {
	return pm.AllocPagesZone(cpu, order, pm.highestZone())
}

// highestZone returns the most general zone present on the machine.
func (pm *PhysMem) highestZone() ZoneType {
	for _, zt := range []ZoneType{ZoneNormal, ZoneDMA32, ZoneDMA} {
		if pm.zones[zt] != nil {
			return zt
		}
	}
	return ZoneDMA
}

// AllocPagesZone allocates with an explicit preferred zone.
func (pm *PhysMem) AllocPagesZone(cpu, order int, pref ZoneType) (PFN, error) {
	if cpu < 0 || cpu >= pm.cfg.NumCPUs {
		return NilPFN, fmt.Errorf("mm: bad cpu %d", cpu)
	}
	if order < 0 || order > MaxOrder {
		return NilPFN, fmt.Errorf("mm: bad order %d", order)
	}
	if order == 0 {
		return pm.allocOrder0(cpu, pref)
	}
	for _, zt := range zonelist(pref) {
		z := pm.zones[zt]
		if z == nil {
			continue
		}
		if !z.watermarkOK(order) {
			z.stats.FailedAllo++
			continue
		}
		if p := pm.allocFromZone(z, order); p != NilPFN {
			if zt != pref {
				z.stats.Fallbacks++
			}
			return p, nil
		}
	}
	return NilPFN, ErrNoMemory
}

// allocOrder0 serves a single-frame request from the CPU's page frame cache,
// refilling a batch from the buddy allocator on a miss.
func (pm *PhysMem) allocOrder0(cpu int, pref ZoneType) (PFN, error) {
	for _, zt := range zonelist(pref) {
		z := pm.zones[zt]
		if z == nil {
			continue
		}
		lst := pm.pcp[cpu][zt]
		if len(lst.frames) > 0 {
			var p PFN
			if pm.cfg.PCPFIFO {
				p = lst.frames[0] // ablation: oldest frame first
				lst.frames = append(lst.frames[:0], lst.frames[1:]...)
			} else {
				p = lst.frames[len(lst.frames)-1] // LIFO: hottest frame first
				lst.frames = lst.frames[:len(lst.frames)-1]
			}
			pm.frames[p].state = frameAllocated
			pm.frames[p].order = 0
			z.stats.PCPHits++
			return p, nil
		}
		// Miss: refill a batch from the buddy allocator.
		z.stats.PCPMisses++
		if !z.watermarkOK(0) {
			z.stats.FailedAllo++
			continue
		}
		refilled := 0
		for i := 0; i < lst.batch; i++ {
			if !z.watermarkOK(0) {
				break
			}
			p := pm.allocFromZone(z, 0)
			if p == NilPFN {
				break
			}
			pm.frames[p].state = frameInPCP
			pm.frames[p].cpu = int32(cpu)
			lst.frames = append(lst.frames, p)
			refilled++
		}
		if refilled == 0 {
			continue
		}
		z.stats.PCPRefills++
		if zt != pref {
			z.stats.Fallbacks++
		}
		// Refill pushed frames in buddy order; hand one out per policy.
		var p PFN
		if pm.cfg.PCPFIFO {
			p = lst.frames[0]
			lst.frames = append(lst.frames[:0], lst.frames[1:]...)
		} else {
			p = lst.frames[len(lst.frames)-1]
			lst.frames = lst.frames[:len(lst.frames)-1]
		}
		pm.frames[p].state = frameAllocated
		pm.frames[p].order = 0
		return p, nil
	}
	return NilPFN, ErrNoMemory
}

// FreePages returns a block to the allocator on behalf of the given CPU.
// Order-0 frees go to the CPU's page frame cache — this is the hook the
// attack depends on: the freed frame becomes the next frame handed to any
// process allocating on this CPU.
func (pm *PhysMem) FreePages(cpu int, p PFN, order int) error {
	if cpu < 0 || cpu >= pm.cfg.NumCPUs {
		return fmt.Errorf("mm: bad cpu %d", cpu)
	}
	if uint64(p) >= uint64(len(pm.frames)) {
		return fmt.Errorf("%w: frame %d out of range", ErrBadFree, p)
	}
	zt := pm.ZoneOf(p)
	if zt < 0 {
		return fmt.Errorf("%w: frame %d not managed", ErrBadFree, p)
	}
	z := pm.zones[zt]
	fi := &pm.frames[p]
	if fi.state != frameAllocated {
		return fmt.Errorf("%w: frame %d not allocated (state %d)", ErrBadFree, p, fi.state)
	}
	if fi.order == 0xFF {
		return fmt.Errorf("%w: frame %d interior to a larger block", ErrBadFree, p)
	}
	if int(fi.order) != order {
		return fmt.Errorf("%w: frame %d allocated order %d, freed order %d", ErrBadFree, p, fi.order, order)
	}
	if order == 0 {
		lst := pm.pcp[cpu][zt]
		fi.state = frameInPCP
		fi.cpu = int32(cpu)
		lst.frames = append(lst.frames, p)
		if len(lst.frames) > lst.high {
			pm.spillPCP(cpu, zt)
		}
		return nil
	}
	return pm.freeToZone(z, p, order)
}

// spillPCP releases one batch of the coldest pcp frames back to the buddy
// allocator, keeping the hot end intact (mirrors free_pcppages_bulk).
func (pm *PhysMem) spillPCP(cpu int, zt ZoneType) {
	z := pm.zones[zt]
	lst := pm.pcp[cpu][zt]
	n := lst.batch
	if n > len(lst.frames) {
		n = len(lst.frames)
	}
	for i := 0; i < n; i++ {
		p := lst.frames[i] // coldest entries sit at the front
		if err := pm.freeToZone(z, p, 0); err != nil {
			panic(fmt.Sprintf("mm: pcp spill corrupted: %v", err))
		}
	}
	lst.frames = append(lst.frames[:0], lst.frames[n:]...)
	z.stats.PCPSpills++
}

// DrainCPU releases every pcp frame of the CPU back to the buddy allocator.
// The kernel does this when a CPU goes idle/offline or under memory
// pressure; Section V's requirement that "the adversarial process must
// remain active" exists precisely because a drained cache loses the planted
// frame.
func (pm *PhysMem) DrainCPU(cpu int) {
	if cpu < 0 || cpu >= pm.cfg.NumCPUs {
		return
	}
	for zt := range pm.pcp[cpu] {
		lst := pm.pcp[cpu][zt]
		if lst == nil {
			continue
		}
		z := pm.zones[zt]
		for _, p := range lst.frames {
			if err := pm.freeToZone(z, p, 0); err != nil {
				panic(fmt.Sprintf("mm: drain corrupted: %v", err))
			}
		}
		lst.frames = lst.frames[:0]
	}
}

// PCPContents returns a copy of the CPU's page frame cache for a zone,
// coldest first.  Diagnostic view used by tests and cmd/memsim.
func (pm *PhysMem) PCPContents(cpu int, zt ZoneType) []PFN {
	if cpu < 0 || cpu >= pm.cfg.NumCPUs || pm.pcp[cpu][zt] == nil {
		return nil
	}
	out := make([]PFN, len(pm.pcp[cpu][zt].frames))
	copy(out, pm.pcp[cpu][zt].frames)
	return out
}

// PCPCount returns how many frames sit in the CPU's cache for the zone.
func (pm *PhysMem) PCPCount(cpu int, zt ZoneType) int {
	if cpu < 0 || cpu >= pm.cfg.NumCPUs || pm.pcp[cpu][zt] == nil {
		return 0
	}
	return len(pm.pcp[cpu][zt].frames)
}

// CheckInvariants walks every zone verifying the buddy structure:
// free-list entries are marked free at the right order, block extents do not
// overlap, and accounted free pages match the lists.  Tests and the fuzzing
// harness call it after every operation batch.
func (pm *PhysMem) CheckInvariants() error {
	for zt, z := range pm.zones {
		if z == nil {
			continue
		}
		seen := make(map[PFN]bool)
		var freePages uint64
		for order := 0; order <= MaxOrder; order++ {
			for p := z.freeLists[order]; p != NilPFN; p = pm.frames[p].next {
				if pm.frames[p].state != frameFreeHead {
					return fmt.Errorf("zone %v: list order %d frame %d not a free head", ZoneType(zt), order, p)
				}
				if int(pm.frames[p].order) != order {
					return fmt.Errorf("zone %v: frame %d order %d on list %d", ZoneType(zt), p, pm.frames[p].order, order)
				}
				size := PFN(1) << uint(order)
				if p+size > z.spanEnd {
					return fmt.Errorf("zone %v: block %d order %d exceeds span", ZoneType(zt), p, order)
				}
				if uint64(p-z.spanBase)&(uint64(size)-1) != 0 {
					return fmt.Errorf("zone %v: block %d misaligned for order %d", ZoneType(zt), p, order)
				}
				for i := PFN(0); i < size; i++ {
					if seen[p+i] {
						return fmt.Errorf("zone %v: frame %d in two free blocks", ZoneType(zt), p+i)
					}
					seen[p+i] = true
					if i > 0 && pm.frames[p+i].state != frameFreeTail {
						return fmt.Errorf("zone %v: interior frame %d of free block not tail", ZoneType(zt), p+i)
					}
				}
				freePages += uint64(size)
			}
		}
		if freePages != z.free {
			return fmt.Errorf("zone %v: accounted free %d != listed free %d", ZoneType(zt), z.free, freePages)
		}
	}
	return nil
}

// String renders a /proc/buddyinfo-style summary.
func (pm *PhysMem) String() string {
	var sb strings.Builder
	for zt, z := range pm.zones {
		if z == nil {
			continue
		}
		counts := pm.FreeBlocksByOrder(ZoneType(zt))
		fmt.Fprintf(&sb, "Zone %-7s span=[%d,%d) free=%d ", ZoneType(zt), z.spanBase, z.spanEnd, z.free)
		for _, c := range counts {
			fmt.Fprintf(&sb, "%d ", c)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
