package mm

import "fmt"

// MaxOrder is the largest buddy block order: 2^10 pages = 4 MiB blocks, the
// Linux default (MAX_ORDER-1 in kernel terms).
const MaxOrder = 10

// listPush inserts frame p at the head of the order list of zone z.
func (pm *PhysMem) listPush(z *zone, order int, p PFN) {
	fi := &pm.frames[p]
	fi.state = frameFreeHead
	fi.order = uint8(order)
	fi.prev = NilPFN
	fi.next = z.freeLists[order]
	if fi.next != NilPFN {
		pm.frames[fi.next].prev = p
	}
	z.freeLists[order] = p
}

// listRemove unlinks frame p from the order list of zone z.
func (pm *PhysMem) listRemove(z *zone, order int, p PFN) {
	fi := &pm.frames[p]
	if fi.prev != NilPFN {
		pm.frames[fi.prev].next = fi.next
	} else {
		z.freeLists[order] = fi.next
	}
	if fi.next != NilPFN {
		pm.frames[fi.next].prev = fi.prev
	}
	fi.prev, fi.next = NilPFN, NilPFN
}

// buddyOf returns the buddy of the block starting at p with the given order,
// using zone-relative frame arithmetic (the paper notes this address
// calculation is what makes the buddy scheme cheap).
func (z *zone) buddyOf(p PFN, order int) PFN {
	rel := uint64(p - z.spanBase)
	return z.spanBase + PFN(rel^(1<<uint(order)))
}

// allocFromZone takes a block of 2^order pages from z, splitting larger
// blocks as needed.  Returns NilPFN if the zone has no block big enough.
func (pm *PhysMem) allocFromZone(z *zone, order int) PFN {
	cur := order
	for cur <= MaxOrder && z.freeLists[cur] == NilPFN {
		cur++
	}
	if cur > MaxOrder {
		return NilPFN
	}
	p := z.freeLists[cur]
	pm.listRemove(z, cur, p)
	// Split down: each split frees the upper half at order cur-1.
	for cur > order {
		cur--
		upper := p + PFN(1<<uint(cur))
		pm.listPush(z, cur, upper)
		z.stats.Splits++
	}
	fi := &pm.frames[p]
	fi.state = frameAllocated
	fi.order = uint8(order)
	// Interior pages of the block are implicitly allocated; mark them so
	// stray frees are caught.
	for i := PFN(1); i < PFN(1)<<uint(order); i++ {
		pm.frames[p+i].state = frameAllocated
		pm.frames[p+i].order = 0xFF // interior marker
	}
	z.free -= 1 << uint(order)
	z.stats.Allocs++
	return p
}

// freeToZone returns the block at p (2^order pages) to z, coalescing with
// free buddies as far as possible ("the kernel will try to merge pairs of
// free buddy blocks", Section IV).
func (pm *PhysMem) freeToZone(z *zone, p PFN, order int) error {
	fi := &pm.frames[p]
	if fi.state != frameAllocated && fi.state != frameInPCP {
		return fmt.Errorf("%w: frame %d in state %d", ErrBadFree, p, fi.state)
	}
	if fi.state == frameAllocated && fi.order == 0xFF {
		return fmt.Errorf("%w: frame %d is interior to a larger block", ErrBadFree, p)
	}
	if fi.state == frameAllocated && int(fi.order) != order {
		return fmt.Errorf("%w: frame %d allocated at order %d, freed at order %d",
			ErrBadFree, p, fi.order, order)
	}
	origOrder := order
	for order < MaxOrder {
		buddy := z.buddyOf(p, order)
		if !z.contains(buddy) {
			break
		}
		bfi := &pm.frames[buddy]
		if bfi.state != frameFreeHead || int(bfi.order) != order {
			break
		}
		pm.listRemove(z, order, buddy)
		// The merged block starts at the lower of the two buddies.
		if buddy < p {
			p = buddy
		}
		order++
		z.stats.Coalesces++
	}
	pm.listPush(z, order, p)
	// Every page of the final block except the head is a free tail; this
	// covers the newly freed pages and demotes any absorbed buddy heads.
	for i := PFN(1); i < PFN(1)<<uint(order); i++ {
		pm.frames[p+i].state = frameFreeTail
	}
	// Only the newly freed pages increase the free count: absorbed buddies
	// were already accounted free.
	z.free += 1 << uint(origOrder)
	z.stats.Frees++
	return nil
}

// seedZone carves the zone's frame span into maximal aligned buddy blocks
// and pushes them on the free lists, the way the boot-time memblock release
// populates the buddy allocator.
func (pm *PhysMem) seedZone(z *zone) {
	p := z.spanBase
	for p < z.spanEnd {
		order := MaxOrder
		for order > 0 {
			size := PFN(1) << uint(order)
			aligned := (uint64(p-z.spanBase)&(uint64(size)-1) == 0)
			if aligned && p+size <= z.spanEnd {
				break
			}
			order--
		}
		pm.listPush(z, order, p)
		for i := PFN(1); i < PFN(1)<<uint(order); i++ {
			pm.frames[p+i].state = frameFreeTail
		}
		z.free += 1 << uint(order)
		p += PFN(1) << uint(order)
	}
}

// FreeBlocksByOrder returns, for each order 0..MaxOrder, how many free
// blocks the zone holds — the same view as /proc/buddyinfo.
func (pm *PhysMem) FreeBlocksByOrder(zt ZoneType) [MaxOrder + 1]uint64 {
	var out [MaxOrder + 1]uint64
	z := pm.zones[zt]
	if z == nil {
		return out
	}
	for order := 0; order <= MaxOrder; order++ {
		for p := z.freeLists[order]; p != NilPFN; p = pm.frames[p].next {
			out[order]++
		}
	}
	return out
}

// LargestFreeOrder returns the highest order with a free block in the zone,
// or -1 if the zone is exhausted.
func (pm *PhysMem) LargestFreeOrder(zt ZoneType) int {
	z := pm.zones[zt]
	if z == nil {
		return -1
	}
	for order := MaxOrder; order >= 0; order-- {
		if z.freeLists[order] != NilPFN {
			return order
		}
	}
	return -1
}

// ExternalFragmentation returns the classic fragmentation index for the zone
// at the given order: the fraction of free memory unusable for a 2^order
// request because it sits in smaller blocks.  0 means unfragmented.
func (pm *PhysMem) ExternalFragmentation(zt ZoneType, order int) float64 {
	z := pm.zones[zt]
	if z == nil || z.free == 0 {
		return 0
	}
	counts := pm.FreeBlocksByOrder(zt)
	var usable uint64
	for o := order; o <= MaxOrder; o++ {
		usable += counts[o] << uint(o)
	}
	return 1 - float64(usable)/float64(z.free)
}
