package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical prefixes")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	s1 := parent.Split()
	s2 := parent.Split()
	same := true
	for i := 0; i < 10; i++ {
		if s1.Uint64() != s2.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("split streams identical")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %f far from 0.5", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBytesFillsEverything(t *testing.T) {
	r := NewRNG(13)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 100} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 16 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
				}
			}
			if allZero {
				t.Fatalf("Bytes(%d) left buffer zero", n)
			}
		}
	}
}

func TestRNGGeometric(t *testing.T) {
	r := NewRNG(17)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(0.25))
	}
	// Mean of geometric (failures before success) is (1-p)/p = 3.
	if mean := sum / n; mean < 2.8 || mean > 3.2 {
		t.Fatalf("geometric mean %f, want ~3", mean)
	}
	if r.Geometric(1.5) != 0 {
		t.Fatal("p>=1 must return 0")
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	if p.Rate() != 0 {
		t.Fatal("empty proportion rate")
	}
	lo, hi := p.WilsonCI(1.96)
	if lo != 0 || hi != 1 {
		t.Fatal("empty proportion CI must be [0,1]")
	}
	for i := 0; i < 80; i++ {
		p.Observe(true)
	}
	for i := 0; i < 20; i++ {
		p.Observe(false)
	}
	if p.Rate() != 0.8 {
		t.Fatalf("rate = %f", p.Rate())
	}
	lo, hi = p.WilsonCI(1.96)
	if lo >= 0.8 || hi <= 0.8 || lo < 0.70 || hi > 0.88 {
		t.Fatalf("CI [%f,%f] implausible for 80/100", lo, hi)
	}
	if p.String() == "" {
		t.Fatal("empty string")
	}
}

// Wilson CI must always contain the point estimate and stay within [0,1].
func TestWilsonCIProperty(t *testing.T) {
	f := func(succ, extra uint8) bool {
		var p Proportion
		n := int(succ) + int(extra)
		if n == 0 {
			return true
		}
		for i := 0; i < int(succ); i++ {
			p.Observe(true)
		}
		for i := 0; i < int(extra); i++ {
			p.Observe(false)
		}
		lo, hi := p.WilsonCI(1.96)
		r := p.Rate()
		return lo >= 0 && hi <= 1 && lo <= r+1e-12 && hi >= r-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty summary must be all zeros")
	}
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Observe(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("summary wrong: %s", s.String())
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("median = %f", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 = %f", q)
	}
	if q := s.Quantile(1); q != 5 {
		t.Fatalf("q1 = %f", q)
	}
	want := math.Sqrt(2.5)
	if d := math.Abs(s.Std() - want); d > 1e-12 {
		t.Fatalf("std = %f want %f", s.Std(), want)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	h.Observe(-5) // clamps low
	h.Observe(99) // clamps high
	if h.Total() != 12 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Bins[0] != 2 || h.Bins[9] != 2 {
		t.Fatalf("clamping wrong: %v", h.Bins)
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Fatalf("bin center = %f", c)
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape accepted")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "x"}
	c.Inc()
	c.Add(4)
	if c.N != 5 {
		t.Fatalf("counter = %d", c.N)
	}
}

func TestLog2(t *testing.T) {
	if Log2(8) != 3 {
		t.Fatal("log2(8)")
	}
	if Log2(0) != 0 || Log2(-3) != 0 {
		t.Fatal("log2 of non-positive must be 0")
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(23)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), vals...)
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, len(vals))
	for _, v := range vals {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost in shuffle", i)
		}
	}
	_ = orig
}

func TestInt63NonNegative(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("negative Int63")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(31)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.29 || frac > 0.31 {
		t.Fatalf("Bool(0.3) rate %f", frac)
	}
}
