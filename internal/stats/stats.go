package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing event counter.
type Counter struct {
	Name string
	N    uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.N++ }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.N += n }

// Proportion summarises a Bernoulli experiment: k successes out of n trials.
type Proportion struct {
	Successes int
	Trials    int
}

// Observe records one trial.
func (p *Proportion) Observe(success bool) {
	p.Trials++
	if success {
		p.Successes++
	}
}

// Rate returns the empirical success probability, or 0 for no trials.
func (p Proportion) Rate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// WilsonCI returns the Wilson score interval for the proportion at the given
// z value (1.96 for 95% confidence).  The Wilson interval behaves sensibly at
// the 0 and 1 boundaries where the normal approximation fails, which matters
// for near-deterministic steering experiments.
func (p Proportion) WilsonCI(z float64) (lo, hi float64) {
	n := float64(p.Trials)
	if n == 0 {
		return 0, 1
	}
	phat := p.Rate()
	z2 := z * z
	den := 1 + z2/n
	center := (phat + z2/(2*n)) / den
	half := z / den * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String renders the proportion with its 95% Wilson interval.
func (p Proportion) String() string {
	lo, hi := p.WilsonCI(1.96)
	return fmt.Sprintf("%.3f [%.3f, %.3f] (n=%d)", p.Rate(), lo, hi, p.Trials)
}

// Summary accumulates scalar observations and reports moments and quantiles.
type Summary struct {
	vals   []float64
	sorted bool
}

// Observe records one value.
func (s *Summary) Observe(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// N returns the number of observations.
func (s *Summary) N() int { return len(s.vals) }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.vals {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Min returns the smallest observation.
func (s *Summary) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	min := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation.
func (s *Summary) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	max := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted observations.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.vals[idx]
}

// String renders mean, std, median and extrema.
func (s *Summary) String() string {
	return fmt.Sprintf("mean=%.3f std=%.3f p50=%.3f min=%.3f max=%.3f n=%d",
		s.Mean(), s.Std(), s.Quantile(0.5), s.Min(), s.Max(), s.N())
}

// Histogram counts observations into fixed-width bins over [Lo, Hi).  Values
// outside the range are clamped into the first/last bin so that totals are
// preserved.
type Histogram struct {
	Lo, Hi float64
	Bins   []uint64
	total  uint64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]uint64, n)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.total++
}

// Total returns the number of observed values.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + w*(float64(i)+0.5)
}

// String renders a compact ASCII sparkline of the distribution.
func (h *Histogram) String() string {
	marks := []rune(" .:-=+*#%@")
	var max uint64
	for _, b := range h.Bins {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%g..%g) n=%d |", h.Lo, h.Hi, h.total)
	for _, b := range h.Bins {
		idx := 0
		if max > 0 {
			idx = int(float64(b) / float64(max) * float64(len(marks)-1))
		}
		sb.WriteRune(marks[idx])
	}
	sb.WriteString("|")
	return sb.String()
}

// Log2 returns log base 2 of x, tolerating x <= 0 by returning 0; used for
// key-space entropy accounting where empty candidate sets mean "recovered".
func Log2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(x)
}
