// Package stats provides the small statistics toolkit used throughout the
// ExplFrame reproduction: a deterministic random number generator, histograms,
// counters, Bernoulli confidence intervals and summary statistics.
//
// Everything in the repository that needs randomness takes a *stats.RNG so
// that every experiment is reproducible from a single seed.
package stats

// RNG is a small, fast, deterministic pseudo random number generator based on
// the splitmix64 / xoshiro256** construction.  It is intentionally not
// math/rand so that the sequence is stable across Go releases; experiment
// tables in EXPERIMENTS.md depend on seed stability.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns the next output.  It is used
// to seed the xoshiro state from a single word.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given value.  Two generators
// with the same seed produce identical sequences.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new RNG derived from this one, advancing the parent.  Use
// it to give independent deterministic streams to sub-components.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// NewStream returns the index-th independent stream derived from a root
// seed.  Unlike Split, the derivation is keyed purely on (seed, index):
// stream k is the same generator no matter how many other streams exist or
// in which order they are created.  This is the primitive that lets a
// parallel trial harness hand every trial its own reproducible randomness
// regardless of worker count or scheduling order.
//
// The construction whitens the seed through one splitmix64 step, folds the
// index in with an odd multiplier (a bijection over uint64, so distinct
// indices of one seed can never collide), and then seeds the xoshiro state
// from the combined word exactly as NewRNG does.
func NewStream(seed, index uint64) *RNG {
	sm := seed
	splitmix64(&sm)
	sm ^= (index + 1) * 0xd1342543de82ef95
	r := &RNG{}
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// DeriveSeed returns a whitened sub-seed for the labelled component of a
// root seed.  Experiments use it to give each table row or scenario its own
// seed domain so that per-trial streams never collide across rows.
func DeriveSeed(seed, label uint64) uint64 {
	return NewStream(seed, label).Uint64()
}

// FNV64 returns the 64-bit FNV-1a digest of s — the repo's one string-hash
// primitive, shared by canonical-name hashing (scenario and machine specs)
// and name-keyed seed derivation in the experiment drivers.
func FNV64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit random integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> (8 * k))
		}
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of Bernoulli(p) failures before the first
// success.  Used for inter-arrival style workload generation.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		if p >= 1 {
			return 0
		}
		panic("stats: Geometric with p <= 0")
	}
	n := 0
	for !r.Bool(p) {
		n++
		if n > 1<<24 {
			return n // guard against pathological p values
		}
	}
	return n
}
