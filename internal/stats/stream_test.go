package stats

import "testing"

// Stream derivation must be a pure function of (seed, index): constructing
// the streams in any order, interleaved with anything, yields identical
// generators.
func TestNewStreamOrderInvariance(t *testing.T) {
	const seed = 42
	forward := make([][]uint64, 8)
	for i := range forward {
		r := NewStream(seed, uint64(i))
		for k := 0; k < 16; k++ {
			forward[i] = append(forward[i], r.Uint64())
		}
	}
	// Re-derive in reverse order with unrelated streams interleaved.
	for i := len(forward) - 1; i >= 0; i-- {
		NewStream(seed^0xdead, uint64(i)) // unrelated; must not matter
		r := NewStream(seed, uint64(i))
		for k := 0; k < 16; k++ {
			if got := r.Uint64(); got != forward[i][k] {
				t.Fatalf("stream %d output %d: %#x != %#x", i, k, got, forward[i][k])
			}
		}
	}
}

// Distinct indices of one seed must give distinct, non-overlapping-looking
// streams; distinct seeds must change every stream.
func TestNewStreamIndependence(t *testing.T) {
	const seed = 7
	const n = 1000
	firsts := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		v := NewStream(seed, uint64(i)).Uint64()
		if prev, dup := firsts[v]; dup {
			t.Fatalf("streams %d and %d share first output %#x", prev, i, v)
		}
		firsts[v] = i
	}
	// Adjacent streams must not be shifted copies of each other: compare a
	// window of stream 0 against stream 1 at several offsets.
	a, b := NewStream(seed, 0), NewStream(seed, 1)
	var av, bv [64]uint64
	for i := range av {
		av[i] = a.Uint64()
		bv[i] = b.Uint64()
	}
	for lag := 0; lag < 8; lag++ {
		match := 0
		for i := 0; i+lag < len(av); i++ {
			if av[i+lag] == bv[i] {
				match++
			}
		}
		if match > 0 {
			t.Fatalf("streams 0 and 1 share %d outputs at lag %d", match, lag)
		}
	}
	if NewStream(seed, 0).Uint64() == NewStream(seed+1, 0).Uint64() {
		t.Fatal("seed change did not change stream 0")
	}
}

// The index fold must separate index 0 from the plain seed path and keep
// bit-sparse indices (0, 1, 2, ...) well spread.
func TestNewStreamVsNewRNG(t *testing.T) {
	if NewStream(5, 0).Uint64() == NewRNG(5).Uint64() {
		t.Fatal("stream 0 aliases NewRNG of the same seed")
	}
}

// DeriveSeed must be stable and label-sensitive.
func TestDeriveSeed(t *testing.T) {
	a, b := DeriveSeed(9, 1), DeriveSeed(9, 1)
	if a != b {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(9, 1) == DeriveSeed(9, 2) {
		t.Fatal("DeriveSeed ignores the label")
	}
	if DeriveSeed(9, 1) == DeriveSeed(10, 1) {
		t.Fatal("DeriveSeed ignores the seed")
	}
}

// Uniformity smoke test: bits of the first outputs across streams should be
// roughly balanced (catches a catastrophically bad index fold).
func TestNewStreamBitBalance(t *testing.T) {
	const n = 4096
	var ones [64]int
	for i := 0; i < n; i++ {
		v := NewStream(123, uint64(i)).Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if c < n/4 || c > 3*n/4 {
			t.Fatalf("bit %d set in %d/%d first outputs", b, c, n)
		}
	}
}
