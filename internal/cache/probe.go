package cache

import (
	"fmt"
	"math"
	"sort"

	"explframe/internal/cipher/registry"
	"explframe/internal/stats"
)

// Probe technique names accepted by ProbeConfig.Technique (and the
// scenario layer's probe specs).
const (
	// TechPrimeProbe fills the monitored T-table sets with eviction sets
	// before each victim encryption and times the refill after — set
	// granularity, one observation per encryption.
	TechPrimeProbe = "prime-probe"
	// TechEvictReload evicts the monitored T-table lines and times a
	// reload of each — line granularity at round resolution, the
	// Flush+Reload-family shape for victims without shared clflush.
	TechEvictReload = "evict-reload"
	// TechPageCache probes the victim T-table page's OS page-cache
	// residency mincore-style — page granularity, an activity oracle
	// rather than a line oracle.
	TechPageCache = "page-cache"
)

// techniques maps the registered probe technique names.
var techniques = map[string]bool{
	TechPrimeProbe: true, TechEvictReload: true, TechPageCache: true,
}

// Techniques returns the registered probe technique names, sorted — the
// registry the trajectory coverage check and E18's rows are keyed on.
func Techniques() []string {
	out := make([]string, 0, len(techniques))
	for n := range techniques {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// KnownTechnique reports whether name is a registered probe technique.
func KnownTechnique(name string) bool { return techniques[name] }

// ProbeConfig tunes one cache-probe attack.
type ProbeConfig struct {
	// Technique selects the attacker primitive (TechPrimeProbe,
	// TechEvictReload or TechPageCache).
	Technique string
	// Budget is the measurement count: observed victim encryptions for
	// the line-granular techniques, probe windows for page-cache.
	Budget int
	// Noise is the per-measurement probability of background working-set
	// interference polluting a monitored set (or, for the line- and
	// page-granular observations, scaled to their smaller collision
	// surface).  Must lie in [0, 1).
	Noise float64
	// EvictionSet is the lines per eviction set; 0 means the geometry's
	// associativity.  Fewer lines than ways cannot evict a set.
	EvictionSet int
}

// TTableLayout describes the victim's in-memory T-table realisation of a
// registered cipher: the classic four widened lookup tables of a
// byte-oriented SPN, derived from the registry's S-box metadata.
type TTableLayout struct {
	// Tables is the number of parallel T-tables (4, AES-style: state byte
	// i reads table i mod 4).
	Tables int
	// EntryBytes is the widened entry size (4: one 32-bit T-table word
	// per S-box entry).
	EntryBytes int
	// TableBytes is the footprint of one table.
	TableBytes int
	// LinesPerTable is TableBytes / LineBytes — the attacker's resolution:
	// one observation distinguishes LinesPerTable values of S(p ^ k).
	LinesPerTable int
	// IdxPerLine is the number of table indices sharing one cache line;
	// the low log2(IdxPerLine) bits of p ^ k are invisible to a line
	// oracle.
	IdxPerLine int
	// IdxShift is log2(IdxPerLine): index >> IdxShift is the line.
	IdxShift uint
}

// LayoutFor derives the T-table layout a cipher's registry metadata
// implies for the given line size.  Only byte-oriented ciphers (EntryBits
// 8) have a multi-line T-table realisation; the 16-entry tables of the
// nibble ciphers fit inside a single cache line, where a line oracle
// learns nothing — that case returns an error, which scenario validation
// surfaces.
func LayoutFor(c registry.Cipher, lineBytes int) (TTableLayout, error) {
	const entryBytes = 4 // one 32-bit T-table word per S-box entry
	if c.EntryBits() != 8 {
		return TTableLayout{}, fmt.Errorf(
			"cache: %s's %d-entry %d-bit table occupies %d widened bytes — at most one %d-byte cache line, no line-granular leakage",
			c.Name(), c.TableLen(), c.EntryBits(), c.TableLen()*entryBytes, lineBytes)
	}
	tableBytes := c.TableLen() * entryBytes
	linesPerTable := tableBytes / lineBytes
	if linesPerTable < 2 {
		return TTableLayout{}, fmt.Errorf(
			"cache: %s's T-table (%d bytes) does not span two %d-byte cache lines",
			c.Name(), tableBytes, lineBytes)
	}
	idxPerLine := c.TableLen() / linesPerTable
	return TTableLayout{
		Tables:        4,
		EntryBytes:    entryBytes,
		TableBytes:    tableBytes,
		LinesPerTable: linesPerTable,
		IdxPerLine:    idxPerLine,
		IdxShift:      log2(idxPerLine),
	}, nil
}

// Observable reports whether the cipher's T-table realisation leaks at
// line granularity under the given line size — the check cache-probe
// scenario validation runs.
func Observable(c registry.Cipher, lineBytes int) error {
	_, err := LayoutFor(c, lineBytes)
	return err
}

// Result is one completed cache-probe attack.
type Result struct {
	// Technique is the primitive that ran.
	Technique string
	// Measurements is the number of probe measurements taken.
	Measurements int
	// EvictionSets is the number of eviction sets constructed (0 for
	// page-cache probing).
	EvictionSets int
	// Nibbles is the number of correctly recovered first-round key
	// nibbles (the high log2(LinesPerTable) bits of each key byte — the
	// part of p ^ k a line oracle can see).
	Nibbles int
	// NibbleTotal is the number of attackable nibbles (one per state
	// byte).
	NibbleTotal int
	// BytesLeaked is the information extracted, in bytes: recovered key
	// bits for the line-granular techniques, Shannon channel capacity
	// over the measurement budget for the page-cache activity channel.
	BytesLeaked float64
	// BitErrors counts the page-cache channel's flipped bits (0 for the
	// line-granular techniques).
	BitErrors int
}

// Attack is one configured cache-probe attack instance: a victim (random
// key, T-tables placed in simulated physical memory) and an attacker
// (eviction sets or page probes) sharing an LLC and page-cache model.
// Construction performs all set-up and allocation; Step runs exactly one
// measurement and is allocation-free on every technique, which is what
// lets machine.MeasureProbeLoops and BenchmarkPrimeProbe time the loop
// itself.
type Attack struct {
	view   CacheView
	llc    *LLC
	pc     *PageCache
	layout TTableLayout
	cfg    ProbeConfig
	rng    *stats.RNG

	blockSize int
	rounds    int
	key       []byte
	pt        []byte

	tableBase uint64
	lineBytes uint64
	targets   []uint64   // line 0 of each table — the monitored lines
	evsets    [][]uint64 // one eviction set per monitored line
	bgLines   []uint64   // one background-noise line per monitored set

	// counts/trials accumulate the per-(byte, nibble-value) hit
	// statistics the final argmax analysis reads, flattened byte-major.
	counts []uint32
	trials []uint32
	obs    []bool

	measurements int
	bitErrors    int
}

// attackerPoolBytes bounds the candidate pool eviction sets are built
// from: enough for dozens of congruent lines per (set, slice) on the
// default geometry, clamped so small machines keep room for the victim.
const attackerPoolBytes = 4 << 20

// NewAttack sets up one cache-probe attack of the cipher's T-tables as
// seen through the view, drawing the victim key and table placement from
// rng (the trial's private stream, so one (spec, trial) is one attack).
func NewAttack(v CacheView, c registry.Cipher, cfg ProbeConfig, rng *stats.RNG) (*Attack, error) {
	if !KnownTechnique(cfg.Technique) {
		return nil, fmt.Errorf("cache: unknown probe technique %q (known: %v)", cfg.Technique, Techniques())
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("cache: probe budget %d, want >= 1", cfg.Budget)
	}
	if cfg.Noise < 0 || cfg.Noise >= 1 {
		return nil, fmt.Errorf("cache: probe noise %g, want within [0, 1)", cfg.Noise)
	}
	g := v.CacheGeometry()
	evLines := cfg.EvictionSet
	if evLines == 0 {
		evLines = g.Ways
	}
	if evLines < g.Ways {
		return nil, fmt.Errorf("cache: eviction set of %d lines cannot evict a %d-way set", evLines, g.Ways)
	}
	layout, err := LayoutFor(c, g.LineBytes)
	if err != nil {
		return nil, err
	}

	total := v.Geometry().TotalBytes()
	pool := uint64(attackerPoolBytes)
	if pool > total/2 {
		pool = total / 2
	}
	span := uint64(layout.Tables * layout.TableBytes)
	if pool+span > total {
		return nil, fmt.Errorf("cache: DRAM geometry (%d bytes) too small for attacker pool and victim tables", total)
	}

	a := &Attack{
		view:      v,
		llc:       NewLLC(v),
		layout:    layout,
		cfg:       cfg,
		rng:       rng,
		blockSize: c.BlockSize(),
		rounds:    c.Rounds(),
		key:       make([]byte, c.KeyBytes()),
		pt:        make([]byte, c.BlockSize()),
		lineBytes: uint64(g.LineBytes),
		counts:    make([]uint32, c.BlockSize()*layout.LinesPerTable),
		trials:    make([]uint32, c.BlockSize()*layout.LinesPerTable),
		obs:       make([]bool, layout.Tables),
	}
	rng.Bytes(a.key)

	// The victim's tables land on a random page past the attacker pool —
	// ASLR at page granularity; the attacker is assumed to have resolved
	// the mapping (the eviction sets target wherever the tables sit).
	slots := int((total - pool - span) / PageBytes)
	a.tableBase = pool + uint64(rng.Intn(slots+1))*PageBytes

	if cfg.Technique == TechPageCache {
		a.pc = NewPageCache(total)
		return a, nil
	}
	a.targets = make([]uint64, layout.Tables)
	a.evsets = make([][]uint64, layout.Tables)
	a.bgLines = make([]uint64, layout.Tables)
	for t := 0; t < layout.Tables; t++ {
		a.targets[t] = a.tableBase + uint64(t*layout.TableBytes)
		set, slice := v.LineIndex(a.targets[t])
		// One extra congruent line beyond the eviction set models the
		// background working set that aliases into the monitored set.
		ev, err := BuildEvictionSet(v, 0, pool, set, slice, evLines+1)
		if err != nil {
			return nil, fmt.Errorf("cache: table %d: %w", t, err)
		}
		a.evsets[t] = ev[:evLines]
		a.bgLines[t] = ev[evLines]
	}
	return a, nil
}

// Step runs exactly one measurement: prime/evict, one victim encryption's
// table traffic (or one page-cache window), background noise, probe, and
// the statistics update.  It never allocates.
func (a *Attack) Step() {
	a.measurements++
	switch a.cfg.Technique {
	case TechPrimeProbe:
		a.stepPrimeProbe()
	case TechEvictReload:
		a.stepEvictReload()
	default:
		a.stepPageCache()
	}
}

// victimRound1 performs the first round's T-table reads: state byte i
// reads line (p_i ^ k_i) >> IdxShift of table i mod Tables — the accesses
// that leak the high nibble of each key byte.
func (a *Attack) victimRound1() {
	for i := 0; i < a.blockSize; i++ {
		line := (int(a.pt[i]) ^ int(a.key[i])) >> a.layout.IdxShift
		a.llc.Access(a.tableAddr(i%a.layout.Tables, line))
	}
}

// victimLaterRounds performs rounds 2..Rounds' table reads.  Their
// indices depend on full round-key mixing, so the model draws them
// uniformly — the self-noise that saturates the monitored lines and
// forces the attacker to average over many encryptions.
func (a *Attack) victimLaterRounds() {
	for r := 1; r < a.rounds; r++ {
		for i := 0; i < a.blockSize; i++ {
			a.llc.Access(a.tableAddr(i%a.layout.Tables, a.rng.Intn(a.layout.LinesPerTable)))
		}
	}
}

// tableAddr returns the physical address of a line of a table.
func (a *Attack) tableAddr(table, line int) uint64 {
	return a.tableBase + uint64(table*a.layout.TableBytes) + uint64(line)*a.lineBytes
}

func (a *Attack) stepPrimeProbe() {
	a.rng.Bytes(a.pt)
	for _, ev := range a.evsets {
		for _, pa := range ev {
			a.llc.Access(pa)
		}
	}
	a.victimRound1()
	a.victimLaterRounds()
	// Background working-set pressure aliasing into the monitored sets.
	for t := range a.bgLines {
		if a.rng.Float64() < a.cfg.Noise {
			a.llc.Access(a.bgLines[t])
		}
	}
	// Probe: any refill miss means something displaced an attacker line
	// from the monitored set since the prime.
	for t, ev := range a.evsets {
		touched := false
		for _, pa := range ev {
			if lat, _ := a.llc.Time(pa, a.rng); lat > LatencyThreshold {
				touched = true
			}
		}
		a.obs[t] = touched
	}
	a.accumulate()
}

func (a *Attack) stepEvictReload() {
	a.rng.Bytes(a.pt)
	for _, ev := range a.evsets {
		for _, pa := range ev {
			a.llc.Access(pa)
		}
	}
	a.victimRound1()
	// Background interference at line granularity: only traffic mapping
	// to the monitored line itself pollutes a reload, so the set-level
	// noise rate scales down by the line's share of the set.
	for t := range a.targets {
		if a.rng.Float64()*float64(a.layout.IdxPerLine) < a.cfg.Noise {
			a.llc.Access(a.targets[t])
		}
	}
	// Reload at round granularity: the spy polls continuously
	// (Flush+Reload-style temporal resolution), so the later rounds'
	// self-noise lands after the sample instead of inside it.
	for t, target := range a.targets {
		lat, _ := a.llc.Time(target, a.rng)
		a.obs[t] = lat <= LatencyThreshold
	}
	a.victimLaterRounds()
	a.accumulate()
}

func (a *Attack) stepPageCache() {
	// The page-cache probe is an activity oracle: each window the victim
	// either encrypts (touching its table page) or stays idle, and the
	// attacker reads the page's residency back mincore-style.  That is a
	// binary covert/side channel at page granularity.
	active := a.rng.Bool(0.5)
	a.pc.Evict(a.tableBase)
	a.rng.Bytes(a.pt)
	if active {
		a.pc.Touch(a.tableBase)
	}
	// Readahead and unrelated file traffic re-fault the page sometimes.
	if a.rng.Float64() < a.cfg.Noise {
		a.pc.Touch(a.tableBase)
	}
	resident := a.pc.Resident(a.tableBase)
	if resident != active {
		a.bitErrors++
	}
	if active {
		// The in-table nibble analysis still runs on active windows, but
		// a 4 KiB page holds entire tables: residency carries no line
		// information, so this stays at chance level — the honest
		// granularity gap between the page and line oracles.
		for t := range a.obs {
			a.obs[t] = resident
		}
		a.accumulate()
	}
}

// accumulate folds one measurement's observations into the per-(byte,
// nibble-value) statistics.
func (a *Attack) accumulate() {
	cells := a.layout.LinesPerTable
	for i := 0; i < a.blockSize; i++ {
		v := int(a.pt[i]) >> a.layout.IdxShift
		idx := i*cells + v
		a.trials[idx]++
		if a.obs[i%a.layout.Tables] {
			a.counts[idx]++
		}
	}
}

// Finish runs the first-round analysis over the accumulated statistics
// and returns the attack's result.  For each state byte the attacker
// picks the plaintext nibble whose measurements hit the monitored line 0
// most often; that nibble equals the key byte's high nibble, because
// p_i ^ k_i lands in line 0 exactly when their high nibbles agree.
func (a *Attack) Finish() Result {
	res := Result{
		Technique:    a.cfg.Technique,
		Measurements: a.measurements,
		EvictionSets: len(a.evsets),
		NibbleTotal:  a.blockSize,
		BitErrors:    a.bitErrors,
	}
	cells := a.layout.LinesPerTable
	for i := 0; i < a.blockSize; i++ {
		best := 0
		for v := 1; v < cells; v++ {
			// Cross-multiplied rate comparison keeps the argmax exact in
			// integers; ties keep the lowest value, deterministically.
			if uint64(a.counts[i*cells+v])*uint64(a.trials[i*cells+best]) >
				uint64(a.counts[i*cells+best])*uint64(a.trials[i*cells+v]) {
				best = v
			}
		}
		if best == int(a.key[i])>>a.layout.IdxShift {
			res.Nibbles++
		}
	}
	bitsPerNibble := int(8 - a.layout.IdxShift)
	if a.cfg.Technique == TechPageCache {
		// The page channel's yield is its Shannon capacity over the
		// budget: one bit per window through a binary symmetric channel
		// with the observed error rate.
		eps := float64(a.bitErrors) / float64(max(a.measurements, 1))
		res.BytesLeaked = float64(a.measurements) * bscCapacity(eps) / 8
	} else {
		res.BytesLeaked = float64(res.Nibbles*bitsPerNibble) / 8
	}
	return res
}

// Run executes the configured measurement budget and returns the result.
func (a *Attack) Run() Result {
	for i := 0; i < a.cfg.Budget; i++ {
		a.Step()
	}
	return a.Finish()
}

// bscCapacity returns the capacity, in bits per use, of a binary
// symmetric channel with crossover probability eps.
func bscCapacity(eps float64) float64 {
	if eps <= 0 || eps >= 1 {
		return 1
	}
	h := -eps*math.Log2(eps) - (1-eps)*math.Log2(1-eps)
	return math.Max(0, 1-h)
}
