package cache

import (
	"testing"

	"explframe/internal/dram"
)

// FuzzCacheViewRoundTrip pins the CacheView contract for every registered
// mapper x slice-hash combination on arbitrary physical addresses: the
// underlying mapper still round-trips through the view (CacheView extends
// AddressMapper, it must not perturb it), the (set, slice) is in range,
// and every address within one cache line lands in the same (set, slice).
func FuzzCacheViewRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(4095))
	f.Add(uint64(1 << 27))
	f.Add(^uint64(0))

	type combo struct {
		name string
		view *View
	}
	var views []combo
	for _, mn := range dram.MapperNames() {
		m, err := dram.NewNamedMapper(mn, dram.DefaultGeometry())
		if err != nil {
			f.Fatal(err)
		}
		for _, hn := range SliceHashNames() {
			v, err := NewView(m, DefaultGeometry(4), hn)
			if err != nil {
				f.Fatal(err)
			}
			views = append(views, combo{mn + "/" + hn, v})
		}
	}

	f.Fuzz(func(t *testing.T, pa uint64) {
		for _, c := range views {
			v := c.view
			g := v.CacheGeometry()
			in := pa % v.Geometry().TotalBytes()
			if got := v.ToPhys(v.ToDRAM(in)); got != in {
				t.Fatalf("%s: mapper round trip through the view broke: %#x -> %#x", c.name, in, got)
			}
			set, slice := v.LineIndex(pa)
			if set < 0 || set >= g.Sets || slice < 0 || slice >= g.Slices {
				t.Fatalf("%s: pa %#x -> (%d, %d) out of range", c.name, pa, set, slice)
			}
			s2, sl2 := v.LineIndex(pa &^ uint64(g.LineBytes-1))
			if s2 != set || sl2 != slice {
				t.Fatalf("%s: pa %#x disagrees with its line start: (%d,%d) vs (%d,%d)",
					c.name, pa, set, slice, s2, sl2)
			}
		}
	})
}
