// Package cache models the CPU cache hierarchy that ExplFrame's timing
// side channels observe: a deterministic set-associative last-level cache
// (configurable sets/ways/slices, pluggable slice hash, true-LRU
// replacement, hit/miss latencies drawn from the caller's stats stream)
// and a mincore-style OS page-cache residency model.
//
// The package layers a CacheView over the internal/dram AddressMapper:
// where the DRAM side of a physical address determines which rows disturb
// each other, the cache side determines which addresses collide in a
// cache set — the property eviction-set construction and the Prime+Probe
// and Evict+Reload attacker primitives (probe.go) are built on.  Like the
// mappers, slice hashes are a name-keyed registry so machines with
// different uncore designs (striped low-end parts, Intel-style XOR-folded
// slice selection) present differently shaped collision sets to the
// attacker while the victim's T-table layout stays fixed.
package cache

import (
	"fmt"
	"sort"

	"explframe/internal/dram"
)

// Geometry describes a set-associative last-level cache.  All dimensions
// must be powers of two so set and slice indices are bit fields of the
// line address, matching how real uncore hashes are reverse engineered.
type Geometry struct {
	// Sets is the number of cache sets per slice.
	Sets int `json:"sets"`
	// Ways is the associativity of each set.
	Ways int `json:"ways"`
	// Slices is the number of LLC slices (one per core on Intel parts).
	Slices int `json:"slices"`
	// LineBytes is the cache-line size.
	LineBytes int `json:"line_bytes"`
}

// DefaultGeometry returns the LLC model the scenario layer derives from a
// machine profile: 1024 sets x 8 ways of 64-byte lines, with one slice
// per CPU (rounded down to a power of two) — a 512 KiB-per-slice part in
// the proportions of the paper's testbed uncore.
func DefaultGeometry(cpus int) Geometry {
	slices := 1
	for slices*2 <= cpus {
		slices *= 2
	}
	return Geometry{Sets: 1024, Ways: 8, Slices: slices, LineBytes: 64}
}

// Validate reports whether the geometry is usable: every dimension
// positive and sets/slices/line size powers of two.
func (g Geometry) Validate() error {
	switch {
	case g.Sets <= 0, g.Ways <= 0, g.Slices <= 0, g.LineBytes <= 0:
		return fmt.Errorf("cache: geometry dimensions must be positive: %+v", g)
	}
	for _, v := range []int{g.Sets, g.Slices, g.LineBytes} {
		if v&(v-1) != 0 {
			return fmt.Errorf("cache: sets, slices and line size must be powers of two, got %d", v)
		}
	}
	return nil
}

// TotalBytes returns the capacity of the described cache.
func (g Geometry) TotalBytes() uint64 {
	return uint64(g.Sets) * uint64(g.Ways) * uint64(g.Slices) * uint64(g.LineBytes)
}

// Slice-hash kind names accepted by NewView (mirroring dram's mapper
// kinds).
const (
	// SliceStripe selects the slice from the line-address bits directly
	// above the set index — the banked layout of low-end uncores, where
	// contiguous physical ranges stripe across slices at set granularity.
	SliceStripe = "stripe"
	// SliceXOR selects the slice by XOR-folding every slice-width window
	// of the line address above the set index — the shape of the
	// reverse-engineered Intel slice-selection hashes, where large-stride
	// access patterns still scatter across slices.
	SliceXOR = "xor"
)

// sliceHashKinds maps kind names onto hash constructors.  "" aliases
// stripe so zero-valued configs keep a meaning, as with dram mappers.
var sliceHashKinds = map[string]func(g Geometry) func(line uint64) int{
	"":          stripeHash,
	SliceStripe: stripeHash,
	SliceXOR:    xorHash,
}

func stripeHash(g Geometry) func(line uint64) int {
	setBits := log2(g.Sets)
	mask := uint64(g.Slices - 1)
	return func(line uint64) int {
		return int((line >> setBits) & mask)
	}
}

func xorHash(g Geometry) func(line uint64) int {
	setBits := log2(g.Sets)
	sliceBits := log2(g.Slices)
	if sliceBits == 0 {
		return func(uint64) int { return 0 }
	}
	mask := uint64(g.Slices - 1)
	return func(line uint64) int {
		h := line >> setBits
		s := uint64(0)
		for h != 0 {
			s ^= h & mask
			h >>= sliceBits
		}
		return int(s)
	}
}

// SliceHashNames returns the registered slice-hash kind names, sorted.
func SliceHashNames() []string {
	out := make([]string, 0, len(sliceHashKinds)-1)
	for n := range sliceHashKinds {
		if n != "" {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// DefaultSliceHash pairs a dram mapper kind with the slice hash its
// machine class ships: the linear mapper's low-end parts stripe, the
// XOR-folded DDR4 parts hash slices the same way they hash banks.
func DefaultSliceHash(mapperName string) string {
	if mapperName == dram.MapperXORFold {
		return SliceXOR
	}
	return SliceStripe
}

// CacheView extends AddressMapper with the cache side of a physical
// address: which LLC set and slice a line lands in.  Implementations must
// keep LineIndex a pure function of the line address — every address
// within one cache line maps to exactly one (set, slice), pinned by
// FuzzCacheViewRoundTrip and TestCacheViewPartition for every registered
// mapper x slice-hash combination.
type CacheView interface {
	dram.AddressMapper
	// CacheGeometry returns the LLC geometry the view was built for.
	CacheGeometry() Geometry
	// SliceHash is the registered slice-hash kind the view uses.
	SliceHash() string
	// LineIndex maps a physical address to its LLC (set, slice).
	// Addresses beyond the DRAM geometry wrap, keeping the function total
	// for property tests, as with AddressMapper.ToDRAM.
	LineIndex(pa uint64) (set, slice int)
}

// View implements CacheView over any AddressMapper: the DRAM methods are
// forwarded, the cache methods are computed from the line address.
type View struct {
	dram.AddressMapper
	geo       Geometry
	hashName  string
	hash      func(line uint64) int
	lineBits  uint
	setMask   uint64
	totalMask uint64
}

// NewView builds the cache view of a mapper's address space under the
// given LLC geometry and slice-hash kind (the empty kind selects stripe).
func NewView(m dram.AddressMapper, g Geometry, sliceHash string) (*View, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ctor, ok := sliceHashKinds[sliceHash]
	if !ok {
		return nil, fmt.Errorf("cache: unknown slice hash %q (known: %v)", sliceHash, SliceHashNames())
	}
	total := m.Geometry().TotalBytes()
	if total < uint64(g.LineBytes) {
		return nil, fmt.Errorf("cache: DRAM geometry (%d bytes) smaller than one cache line", total)
	}
	name := sliceHash
	if name == "" {
		name = SliceStripe
	}
	return &View{
		AddressMapper: m,
		geo:           g,
		hashName:      name,
		hash:          ctor(g),
		lineBits:      log2(g.LineBytes),
		setMask:       uint64(g.Sets - 1),
		totalMask:     total - 1,
	}, nil
}

// CacheGeometry returns the LLC geometry the view was built for.
func (v *View) CacheGeometry() Geometry { return v.geo }

// SliceHash returns the registered slice-hash kind the view uses.
func (v *View) SliceHash() string { return v.hashName }

// LineIndex maps a physical address to its LLC (set, slice).
func (v *View) LineIndex(pa uint64) (set, slice int) {
	line := (pa & v.totalMask) >> v.lineBits
	return int(line & v.setMask), v.hash(line)
}

// lineTag returns the full line address — the tag the LLC model stores.
func (v *View) lineTag(pa uint64) uint64 {
	return (pa & v.totalMask) >> v.lineBits
}

// log2 returns floor(log2(v)) for a power-of-two v.
func log2(v int) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
