package cache

import (
	"errors"
	"fmt"
)

// ErrEvictionSet is the typed failure of BuildEvictionSet: the candidate
// pool ran out before the requested number of congruent lines was found.
// Callers distinguish it with errors.Is — it means the attacker's memory
// budget is too small for the cache geometry, not a programming error.
var ErrEvictionSet = errors.New("cache: eviction-set candidate pool exhausted")

// BuildEvictionSet scans the attacker's candidate pool [poolBase,
// poolBase+poolBytes) at line granularity, in address order, collecting
// physical addresses whose lines are congruent with the target (set,
// slice) under the view, until lines addresses are found.  The scan is
// deterministic — same view, same pool, same result — and always
// terminates: either with a full set or with an error wrapping
// ErrEvictionSet that reports how far it got.
func BuildEvictionSet(v CacheView, poolBase, poolBytes uint64, set, slice, lines int) ([]uint64, error) {
	if lines <= 0 {
		return nil, fmt.Errorf("cache: eviction set of %d lines requested, want >= 1", lines)
	}
	lineBytes := uint64(v.CacheGeometry().LineBytes)
	start := (poolBase + lineBytes - 1) &^ (lineBytes - 1)
	out := make([]uint64, 0, lines)
	for pa := start; pa+lineBytes <= poolBase+poolBytes; pa += lineBytes {
		s, sl := v.LineIndex(pa)
		if s != set || sl != slice {
			continue
		}
		out = append(out, pa)
		if len(out) == lines {
			return out, nil
		}
	}
	return nil, fmt.Errorf("cache: %d of %d congruent lines for set %d slice %d in a %d-byte pool: %w",
		len(out), lines, set, slice, poolBytes, ErrEvictionSet)
}
