package cache

import (
	"strings"
	"testing"

	"explframe/internal/cipher/registry"
	"explframe/internal/dram"
	"explframe/internal/stats"
)

func aesView(t *testing.T, mapperName string) *View {
	t.Helper()
	m, err := dram.NewNamedMapper(mapperName, dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(m, DefaultGeometry(2), DefaultSliceHash(mapperName))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLayoutFor(t *testing.T) {
	aes := registry.MustGet("aes-128")
	l, err := LayoutFor(aes, 64)
	if err != nil {
		t.Fatal(err)
	}
	if l.Tables != 4 || l.TableBytes != 1024 || l.LinesPerTable != 16 || l.IdxPerLine != 16 || l.IdxShift != 4 {
		t.Fatalf("AES layout = %+v", l)
	}
	// Nibble ciphers' 16-entry tables fit in one line: no layout.
	if err := Observable(registry.MustGet("present-80"), 64); err == nil {
		t.Fatal("present-80 T-table layout accepted")
	} else if !strings.Contains(err.Error(), "cache line") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
}

func TestNewAttackRejects(t *testing.T) {
	v := aesView(t, dram.MapperLinear)
	aes := registry.MustGet("aes-128")
	cases := []ProbeConfig{
		{Technique: "flush-reload", Budget: 64},
		{Technique: TechPrimeProbe, Budget: 0},
		{Technique: TechPrimeProbe, Budget: 64, Noise: 1.0},
		{Technique: TechPrimeProbe, Budget: 64, Noise: -0.1},
		{Technique: TechPrimeProbe, Budget: 64, EvictionSet: 3},
	}
	for _, cfg := range cases {
		if _, err := NewAttack(v, aes, cfg, stats.NewRNG(1)); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewAttack(v, registry.MustGet("present-80"),
		ProbeConfig{Technique: TechPrimeProbe, Budget: 64}, stats.NewRNG(1)); err == nil {
		t.Error("single-line T-table victim accepted")
	}
}

// TestAttackRecoversNibbles pins the headline property: under a generous
// measurement budget the line-granular techniques recover every
// first-round key nibble on both mappers, while page-cache probing stays
// at chance level (page granularity carries no line information).
func TestAttackRecoversNibbles(t *testing.T) {
	aes := registry.MustGet("aes-128")
	for _, mapper := range dram.MapperNames() {
		v := aesView(t, mapper)
		for _, tech := range []string{TechPrimeProbe, TechEvictReload} {
			budget := 4096
			if tech == TechEvictReload {
				budget = 512 // round-granular reloads converge much faster
			}
			a, err := NewAttack(v, aes, ProbeConfig{Technique: tech, Budget: budget, Noise: 0.05}, stats.NewRNG(7))
			if err != nil {
				t.Fatalf("%s/%s: %v", mapper, tech, err)
			}
			res := a.Run()
			if res.Nibbles != res.NibbleTotal || res.NibbleTotal != 16 {
				t.Errorf("%s/%s: recovered %d/%d nibbles", mapper, tech, res.Nibbles, res.NibbleTotal)
			}
			if res.EvictionSets != 4 || res.Measurements != budget {
				t.Errorf("%s/%s: result %+v", mapper, tech, res)
			}
			if want := float64(16*4) / 8; res.BytesLeaked != want {
				t.Errorf("%s/%s: bytes leaked %g, want %g", mapper, tech, res.BytesLeaked, want)
			}
		}
	}

	v := aesView(t, dram.MapperLinear)
	a, err := NewAttack(v, aes, ProbeConfig{Technique: TechPageCache, Budget: 2048, Noise: 0.05}, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	res := a.Run()
	if res.Nibbles > 4 {
		t.Errorf("page-cache probing recovered %d nibbles; page granularity should stay near chance", res.Nibbles)
	}
	if res.EvictionSets != 0 {
		t.Errorf("page-cache probing built %d eviction sets", res.EvictionSets)
	}
	// The activity channel still leaks: capacity-scaled bytes well above
	// the line techniques' 8-byte ceiling, with a small error rate.
	if res.BytesLeaked < 100 {
		t.Errorf("page-cache channel leaked %g bytes over %d windows", res.BytesLeaked, res.Measurements)
	}
	if rate := float64(res.BitErrors) / float64(res.Measurements); rate > 0.1 {
		t.Errorf("page-cache channel error rate %g", rate)
	}
}

// TestAttackStarvedBudget pins the budget axis E18 sweeps: at a starved
// budget Prime+Probe recovers only part of the key, strictly less than
// Evict+Reload's round-granular observations recover from the same
// number of measurements.
func TestAttackStarvedBudget(t *testing.T) {
	aes := registry.MustGet("aes-128")
	v := aesView(t, dram.MapperLinear)
	nibbles := func(tech string) int {
		a, err := NewAttack(v, aes, ProbeConfig{Technique: tech, Budget: 384, Noise: 0.05}, stats.NewRNG(11))
		if err != nil {
			t.Fatal(err)
		}
		return a.Run().Nibbles
	}
	pp, er := nibbles(TechPrimeProbe), nibbles(TechEvictReload)
	if pp >= 16 {
		t.Errorf("starved Prime+Probe recovered the full key (%d nibbles)", pp)
	}
	if er <= pp {
		t.Errorf("Evict+Reload (%d nibbles) not ahead of Prime+Probe (%d) when starved", er, pp)
	}
}

// TestAttackDeterminism pins that one (config, seed) is one attack:
// identical runs produce identical results.
func TestAttackDeterminism(t *testing.T) {
	aes := registry.MustGet("aes-128")
	run := func() Result {
		v := aesView(t, dram.MapperXORFold)
		a, err := NewAttack(v, aes, ProbeConfig{Technique: TechPrimeProbe, Budget: 256, Noise: 0.05}, stats.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		return a.Run()
	}
	if r1, r2 := run(), run(); r1 != r2 {
		t.Fatalf("identical runs diverged: %+v vs %+v", r1, r2)
	}
}

// TestStepSteadyStateAllocs pins the allocation-free probe loops at the
// package level; benchtab's -check-trajectory gate re-measures the same
// property per technique through machine.ProbeLoopSteadyStateAllocs.
func TestStepSteadyStateAllocs(t *testing.T) {
	aes := registry.MustGet("aes-128")
	for _, tech := range Techniques() {
		v := aesView(t, dram.MapperLinear)
		a, err := NewAttack(v, aes, ProbeConfig{Technique: tech, Budget: 1 << 20, Noise: 0.05}, stats.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			a.Step() // warm-up
		}
		if allocs := testing.AllocsPerRun(100, a.Step); allocs != 0 {
			t.Errorf("%s: %g allocs per Step, want 0", tech, allocs)
		}
	}
}
