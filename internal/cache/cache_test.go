package cache

import (
	"errors"
	"testing"

	"explframe/internal/dram"
)

// testViews builds a view per (mapper, slice-hash) combination over the
// default 256 MiB geometry — the cross product the CacheView contract is
// pinned on.
func testViews(t *testing.T) map[string]*View {
	t.Helper()
	views := make(map[string]*View)
	for _, mn := range dram.MapperNames() {
		m, err := dram.NewNamedMapper(mn, dram.DefaultGeometry())
		if err != nil {
			t.Fatalf("mapper %s: %v", mn, err)
		}
		for _, hn := range SliceHashNames() {
			v, err := NewView(m, DefaultGeometry(4), hn)
			if err != nil {
				t.Fatalf("view %s/%s: %v", mn, hn, err)
			}
			views[mn+"/"+hn] = v
		}
	}
	return views
}

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry(2).Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := []Geometry{
		{Sets: 0, Ways: 8, Slices: 2, LineBytes: 64},
		{Sets: 1024, Ways: 0, Slices: 2, LineBytes: 64},
		{Sets: 1000, Ways: 8, Slices: 2, LineBytes: 64},
		{Sets: 1024, Ways: 8, Slices: 3, LineBytes: 64},
		{Sets: 1024, Ways: 8, Slices: 2, LineBytes: 96},
	}
	for _, g := range bad {
		if g.Validate() == nil {
			t.Errorf("geometry %+v validated", g)
		}
	}
}

func TestDefaultGeometrySlices(t *testing.T) {
	for cpus, want := range map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 6: 4} {
		if got := DefaultGeometry(cpus).Slices; got != want {
			t.Errorf("DefaultGeometry(%d).Slices = %d, want %d", cpus, got, want)
		}
	}
}

func TestNewViewRejectsUnknownHash(t *testing.T) {
	m, _ := dram.NewMapper(dram.DefaultGeometry())
	if _, err := NewView(m, DefaultGeometry(2), "no-such-hash"); err == nil {
		t.Fatal("unknown slice hash accepted")
	}
}

func TestDefaultSliceHash(t *testing.T) {
	if got := DefaultSliceHash(dram.MapperLinear); got != SliceStripe {
		t.Errorf("linear mapper default hash = %q", got)
	}
	if got := DefaultSliceHash(dram.MapperXORFold); got != SliceXOR {
		t.Errorf("xor-fold mapper default hash = %q", got)
	}
}

// TestCacheViewPartition pins the CacheView contract: every physical
// address lands in exactly one in-range (set, slice), all addresses within
// a line agree, and a line-aligned scan reaches every (set, slice)
// combination — the property eviction-set construction relies on.
func TestCacheViewPartition(t *testing.T) {
	for name, v := range testViews(t) {
		g := v.CacheGeometry()
		seen := make([]int, g.Sets*g.Slices)
		lines := g.Sets * g.Slices * 4
		for l := 0; l < lines; l++ {
			pa := uint64(l * g.LineBytes)
			set, slice := v.LineIndex(pa)
			if set < 0 || set >= g.Sets || slice < 0 || slice >= g.Slices {
				t.Fatalf("%s: pa %#x -> (%d, %d) out of range", name, pa, set, slice)
			}
			s2, sl2 := v.LineIndex(pa + uint64(g.LineBytes-1))
			if s2 != set || sl2 != slice {
				t.Fatalf("%s: line %#x splits across (%d,%d)/(%d,%d)", name, pa, set, slice, s2, sl2)
			}
			seen[slice*g.Sets+set]++
		}
		for i, n := range seen {
			if n == 0 {
				t.Fatalf("%s: (set %d, slice %d) unreachable in a %d-line scan",
					name, i%g.Sets, i/g.Sets, lines)
			}
		}
	}
}

// TestCacheViewWraps pins LineIndex totality: addresses beyond the DRAM
// geometry wrap instead of indexing out of range, mirroring ToDRAM.
func TestCacheViewWraps(t *testing.T) {
	for name, v := range testViews(t) {
		total := v.Geometry().TotalBytes()
		s1, sl1 := v.LineIndex(42 * 64)
		s2, sl2 := v.LineIndex(total + 42*64)
		if s1 != s2 || sl1 != sl2 {
			t.Errorf("%s: wrap changed (%d,%d) -> (%d,%d)", name, s1, sl1, s2, sl2)
		}
	}
}

func TestLLCHitMissLRU(t *testing.T) {
	for name, v := range testViews(t) {
		c := NewLLC(v)
		g := v.CacheGeometry()
		set, slice := v.LineIndex(0)
		ev, err := BuildEvictionSet(v, 0, 8<<20, set, slice, g.Ways+1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Access(ev[0]) {
			t.Fatalf("%s: cold access hit", name)
		}
		if !c.Access(ev[0]) {
			t.Fatalf("%s: warm access missed", name)
		}
		// Fill the set with Ways fresh lines: the oldest (ev[0]) must be
		// the one evicted.
		for _, pa := range ev[1 : g.Ways+1] {
			c.Access(pa)
		}
		if c.Access(ev[0]) {
			t.Fatalf("%s: LRU line survived a full-set refill", name)
		}
		if !c.Access(ev[g.Ways]) {
			// ev[Ways] was the most recent line before ev[0]'s refill
			// evicted the then-LRU ev[1]; it must still be resident.
			t.Fatalf("%s: MRU line evicted", name)
		}
	}
}

func TestPageCache(t *testing.T) {
	p := NewPageCache(1 << 20)
	pa := uint64(5 * PageBytes)
	if p.Resident(pa) {
		t.Fatal("fresh page resident")
	}
	p.Touch(pa)
	if !p.Resident(pa) {
		t.Fatal("touched page not resident")
	}
	if p.Resident(pa + PageBytes) {
		t.Fatal("neighbour page resident")
	}
	p.Evict(pa)
	if p.Resident(pa) {
		t.Fatal("evicted page resident")
	}
	// Addresses wrap into the modeled memory, keeping the probe total.
	p.Touch(pa + 1<<20)
	if !p.Resident(pa) {
		t.Fatal("wrapped touch missed its page")
	}
}

// TestEvictionSetProperties pins the eviction-set contract: construction
// either returns exactly the requested number of distinct, congruent,
// line-aligned addresses, or fails with the typed ErrEvictionSet.
func TestEvictionSetProperties(t *testing.T) {
	for name, v := range testViews(t) {
		g := v.CacheGeometry()
		set, slice := v.LineIndex(uint64(123 * g.LineBytes))
		ev, err := BuildEvictionSet(v, 0, 16<<20, set, slice, g.Ways)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ev) != g.Ways {
			t.Fatalf("%s: %d lines, want %d", name, len(ev), g.Ways)
		}
		seen := make(map[uint64]bool)
		for _, pa := range ev {
			if pa%uint64(g.LineBytes) != 0 {
				t.Fatalf("%s: %#x not line-aligned", name, pa)
			}
			if seen[pa] {
				t.Fatalf("%s: duplicate line %#x", name, pa)
			}
			seen[pa] = true
			if s, sl := v.LineIndex(pa); s != set || sl != slice {
				t.Fatalf("%s: %#x lands in (%d, %d), want (%d, %d)", name, pa, s, sl, set, slice)
			}
		}

		// A pool smaller than one congruent line per set cannot fill any
		// eviction set: the typed error, not a hang or a short slice.
		_, err = BuildEvictionSet(v, 0, uint64(g.LineBytes), set, slice, g.Ways)
		if !errors.Is(err, ErrEvictionSet) {
			t.Fatalf("%s: starved pool returned %v, want ErrEvictionSet", name, err)
		}
	}
	v := testViews(t)["linear/stripe"]
	if _, err := BuildEvictionSet(v, 0, 1<<20, 0, 0, 0); err == nil {
		t.Fatal("zero-line eviction set accepted")
	}
}
