package cache

import "explframe/internal/stats"

// The latency model: a cache hit and a DRAM-backed miss are separated far
// enough that the per-access jitter drawn from the trial's stats stream
// never crosses the threshold — timing noise in this simulator comes from
// modeled contention (other victim accesses, background working sets),
// not from measurement error, which keeps trials reproducible.
const (
	// HitLatency is the base cycle cost of an LLC hit.
	HitLatency = 40
	// MissLatency is the base cycle cost of an LLC miss (DRAM fill).
	MissLatency = 180
	// LatencyJitter is the exclusive bound of the uniform per-access
	// jitter added to either base cost.
	LatencyJitter = 10
	// LatencyThreshold classifies a timed access: above is a miss.
	LatencyThreshold = 110
)

// LLC is the deterministic set-associative last-level cache model: fixed
// tag and age arrays indexed by (slice, set, way), true-LRU replacement
// via a monotonic per-cache clock.  Access and Time are allocation-free —
// the property BenchmarkPrimeProbe and the benchtab -check-trajectory
// gate hold the probe loops to.
type LLC struct {
	view CacheView
	geo  Geometry
	// tags holds the line address + 1 per way (0 = invalid way).
	tags []uint64
	// ages holds the LRU stamp per way.
	ages []uint64
	tick uint64

	// Hits and Misses count every Access/Time since construction.
	Hits, Misses uint64
}

// NewLLC builds an empty cache over the view's address space.
func NewLLC(v CacheView) *LLC {
	g := v.CacheGeometry()
	ways := g.Sets * g.Ways * g.Slices
	return &LLC{view: v, geo: g, tags: make([]uint64, ways), ages: make([]uint64, ways)}
}

// Access touches the line holding pa, reporting whether it hit.  On a
// miss the line is filled, evicting the set's LRU way.
func (c *LLC) Access(pa uint64) bool {
	set, slice := c.view.LineIndex(pa)
	tag := tagOf(c.view, pa) + 1
	base := (slice*c.geo.Sets + set) * c.geo.Ways
	c.tick++
	lru, lruAge := base, c.ages[base]
	for w := base; w < base+c.geo.Ways; w++ {
		if c.tags[w] == tag {
			c.ages[w] = c.tick
			c.Hits++
			return true
		}
		if c.tags[w] == 0 {
			// An invalid way is always the replacement victim.
			lru, lruAge = w, 0
		} else if c.ages[w] < lruAge {
			lru, lruAge = w, c.ages[w]
		}
	}
	c.tags[lru] = tag
	c.ages[lru] = c.tick
	c.Misses++
	return false
}

// Time performs Access and returns the modeled latency in cycles with the
// per-access jitter drawn from rng; hit reports the ground truth the
// latency encodes.  Compare the latency against LatencyThreshold the way
// a real attacker compares rdtsc deltas.
func (c *LLC) Time(pa uint64, rng *stats.RNG) (latency int, hit bool) {
	hit = c.Access(pa)
	if hit {
		return HitLatency + rng.Intn(LatencyJitter), true
	}
	return MissLatency + rng.Intn(LatencyJitter), false
}

// tagOf returns the full line address of pa under the view.  Views built
// by NewView expose it directly; foreign CacheView implementations fall
// back to the geometry arithmetic.
func tagOf(v CacheView, pa uint64) uint64 {
	if view, ok := v.(*View); ok {
		return view.lineTag(pa)
	}
	return pa / uint64(v.CacheGeometry().LineBytes)
}

// PageBytes is the OS page size the page-cache model (and the victim
// T-table placement) uses.
const PageBytes = 4096

// PageCache is the mincore-style OS page-cache residency model: a bitset
// over the machine's page frames.  It deliberately models only what the
// mincore/preadv2-style probes of "Page Cache Attacks" observe — is the
// page resident — with Touch/Evict as the victim-activity and
// attacker-eviction primitives.
type PageCache struct {
	bits  []uint64
	pages uint64

	// Touches and Evictions count the traffic since construction.
	Touches, Evictions uint64
}

// NewPageCache builds an all-evicted page cache over a memory of the
// given byte size.
func NewPageCache(totalBytes uint64) *PageCache {
	pages := (totalBytes + PageBytes - 1) / PageBytes
	return &PageCache{bits: make([]uint64, (pages+63)/64), pages: pages}
}

// page wraps pa into the modeled memory and returns its page frame number.
func (p *PageCache) page(pa uint64) uint64 {
	return (pa / PageBytes) % p.pages
}

// Touch marks pa's page resident — a victim access faulting the page in.
func (p *PageCache) Touch(pa uint64) {
	n := p.page(pa)
	p.bits[n/64] |= 1 << (n % 64)
	p.Touches++
}

// Evict drops pa's page from the cache — the attacker's working-set
// pressure forcing the page out.
func (p *PageCache) Evict(pa uint64) {
	n := p.page(pa)
	p.bits[n/64] &^= 1 << (n % 64)
	p.Evictions++
}

// Resident reports whether pa's page is cached — the mincore observation.
func (p *PageCache) Resident(pa uint64) bool {
	n := p.page(pa)
	return p.bits[n/64]&(1<<(n%64)) != 0
}
