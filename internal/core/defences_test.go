package core

import (
	"testing"

	"explframe/internal/dram"
	"explframe/internal/rowhammer"
)

// TRR must stop the pipeline at the template phase: no flips, no attack.
func TestAttackBlockedByTRR(t *testing.T) {
	cfg := fastConfig(1)
	cfg.Machine.FaultModel.TRR = dram.TRRConfig{Enabled: true, TrackerSize: 4, Threshold: 200}
	atk, err := NewAttack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SiteFound || rep.Phase != PhaseTemplate {
		t.Fatalf("TRR did not stop templating: %+v", rep)
	}
}

// Many-sided hammering with enough decoys must restore the full pipeline
// under the same TRR configuration (the TRRespass bypass end to end).
func TestAttackManySidedBypassesTRR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed many-sided sweep")
	}
	var succeeded bool
	for seed := uint64(1); seed <= 4 && !succeeded; seed++ {
		cfg := fastConfig(seed)
		cfg.Machine.FaultModel.TRR = dram.TRRConfig{Enabled: true, TrackerSize: 4, Threshold: 200}
		cfg.Hammer.Mode = rowhammer.ManySided
		cfg.Hammer.Decoys = 8
		atk, err := NewAttack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Success() {
			succeeded = true
		}
	}
	if !succeeded {
		t.Fatal("many-sided attack never bypassed TRR in 4 seeds")
	}
}

// ECC corrects the planted single-bit fault: even when templating and
// steering succeed, the victim's reads return the clean table, so no faulty
// ciphertexts appear.  (Templating itself still works: the attacker sees
// its own flips because two cells in a word are rare but the single flips
// are corrected too — so the attack normally dies earlier; accept either
// the template or rehammer phase as the stopping point.)
func TestAttackBlockedByECC(t *testing.T) {
	blocked := 0
	trials := uint64(3)
	if testing.Short() {
		trials = 1
	}
	for seed := uint64(1); seed <= trials; seed++ {
		cfg := fastConfig(seed)
		cfg.Machine.FaultModel.ECC = dram.ECCSecDed
		atk, err := NewAttack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Success() {
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatal("ECC never degraded the attack across seeds")
	}
}
