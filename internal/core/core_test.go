package core

import (
	"bytes"
	"testing"

	"explframe/internal/dram"
	"explframe/internal/kernel"
	"explframe/internal/rowhammer"
)

// fastConfig returns an attack configuration tuned for test speed: a small
// module with a dense weak-cell population and low thresholds.
func fastConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Machine.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
	cfg.Machine.FaultModel = dram.FaultModel{
		WeakCellDensity: 2e-4,
		BaseThreshold:   1500,
		ThresholdSpread: 0.5,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 20,
		FlipReliability: 1.0,
	}
	cfg.Hammer = rowhammer.Config{Mode: rowhammer.DoubleSided, PairHammerCount: 3000}
	cfg.AttackerMemory = 8 << 20
	cfg.Ciphertexts = 12000
	return cfg
}

// The headline result: the full ExplFrame pipeline recovers the AES key.
func TestEndToEndAESKeyRecovery(t *testing.T) {
	var succeeded bool
	for seed := uint64(1); seed <= 5 && !succeeded; seed++ {
		cfg := fastConfig(seed)
		atk, err := NewAttack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: phase=%s steering=%v fault=%v n=%d fail=%q",
			seed, rep.Phase, rep.SteeringHit, rep.FaultInjected, rep.CiphertextsUsed, rep.FailReason)
		if rep.Success() {
			succeeded = true
			if !bytes.Equal(rep.RecoveredKey, cfg.VictimKey) {
				t.Fatalf("recovered %x want %x", rep.RecoveredKey, cfg.VictimKey)
			}
			if !rep.SteeringHit || !rep.FaultInjected || !rep.SiteFound {
				t.Fatalf("success without full pipeline: %+v", rep)
			}
			if rep.CiphertextsUsed == 0 || rep.ResidualEntropy != 0 {
				t.Fatalf("analysis bookkeeping wrong: %+v", rep)
			}
		}
	}
	if !succeeded {
		t.Fatal("attack never succeeded in 5 seeds")
	}
}

// The attack must work with the table anywhere in the page: the usable-flip
// predicate tracks VictimTableOffset, so a table at the end of the page
// needs a flip in its 256-byte window there.
func TestEndToEndNonZeroTableOffset(t *testing.T) {
	var succeeded bool
	for seed := uint64(1); seed <= 5 && !succeeded; seed++ {
		cfg := fastConfig(seed)
		cfg.VictimTableOffset = 4096 - 256
		atk, err := NewAttack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.SiteFound {
			if rep.Site.ByteInPage < cfg.VictimTableOffset {
				t.Fatalf("seed %d: chosen site at offset %d outside the table window", seed, rep.Site.ByteInPage)
			}
		}
		if rep.Success() {
			succeeded = true
		}
	}
	if !succeeded {
		t.Fatal("attack with offset table never succeeded in 5 seeds")
	}
}

// Cross-CPU runs must fail at steering: the page frame cache is per CPU.
func TestCrossCPUDefeatsSteering(t *testing.T) {
	hits := 0
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := fastConfig(seed)
		cfg.VictimCPU = 1
		atk, err := NewAttack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.SteeringHit {
			hits++
		}
	}
	if hits > 0 {
		t.Fatalf("cross-CPU steering hit %d/3 times", hits)
	}
}

// A sleeping attacker loses the planted frame (Section V).
func TestSleepingAttackerFails(t *testing.T) {
	hits := 0
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := fastConfig(seed)
		cfg.AttackerSleeps = true
		atk, err := NewAttack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.SteeringHit {
			hits++
		}
	}
	if hits > 0 {
		t.Fatalf("sleeping attacker steered %d/3 times", hits)
	}
}

// A clean device (no weak cells) must stop at templating with a clear
// failure reason.
func TestCleanDeviceStopsAtTemplate(t *testing.T) {
	cfg := fastConfig(1)
	cfg.Machine.FaultModel.WeakCellDensity = 0
	atk, err := NewAttack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase != PhaseTemplate || rep.SiteFound || rep.FailReason == "" {
		t.Fatalf("unexpected report on clean device: %+v", rep)
	}
}

func TestSteeringTrialSameCPU(t *testing.T) {
	hits := 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		cfg := DefaultSteeringConfig()
		cfg.Seed = seed
		res, err := RunSteeringTrial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FirstPageHit {
			hits++
		}
	}
	// Same CPU, no noise, tiny request: Section V says "with a probability
	// of almost 1".
	if hits < trials*9/10 {
		t.Fatalf("steering hit only %d/%d undisturbed trials", hits, trials)
	}
}

func TestSteeringTrialCrossCPU(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		cfg := DefaultSteeringConfig()
		cfg.Seed = seed
		cfg.VictimCPU = 1
		res, err := RunSteeringTrial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FirstPageHit {
			t.Fatalf("seed %d: cross-CPU steering hit", seed)
		}
	}
}

func TestSteeringTrialHeavyNoiseDegrades(t *testing.T) {
	quiet, noisy := 0, 0
	trials := 15
	if testing.Short() {
		trials = 5
	}
	for seed := uint64(0); seed < uint64(trials); seed++ {
		cfg := DefaultSteeringConfig()
		cfg.Seed = seed
		res, err := RunSteeringTrial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FirstPageHit {
			quiet++
		}
		cfg.NoiseProcs = 4
		cfg.NoiseOps = 300
		res, err = RunSteeringTrial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FirstPageHit {
			noisy++
		}
	}
	if noisy >= quiet {
		t.Fatalf("noise did not degrade steering: quiet %d/%d vs noisy %d/%d", quiet, trials, noisy, trials)
	}
}

func TestSteeringTrialValidation(t *testing.T) {
	cfg := DefaultSteeringConfig()
	cfg.ReleasePages = 0
	if _, err := RunSteeringTrial(cfg); err == nil {
		t.Fatal("ReleasePages=0 accepted")
	}
	cfg = DefaultSteeringConfig()
	cfg.ReleasePages = cfg.AttackerPages + 1
	if _, err := RunSteeringTrial(cfg); err == nil {
		t.Fatal("ReleasePages>AttackerPages accepted")
	}
}

// Section V: "with a probability of almost 1, if the process requests for a
// few pages, the recently deallocated page frames will be reallocated".
func TestSelfReuseSmallRequests(t *testing.T) {
	frac, err := SelfReuseTrial(3, kernel.Config{}, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.99 {
		t.Fatalf("self reuse for small request = %f, want ~1", frac)
	}
}

// Requests far beyond the cache capacity must show partial reuse at most.
func TestSelfReuseLargeRequestsDegrade(t *testing.T) {
	mc := kernel.DefaultConfig()
	small, err := SelfReuseTrial(3, mc, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Free more than pcp-high so the cold end spills to the buddy, then
	// request a large block: some frames come from elsewhere.
	large, err := SelfReuseTrial(3, mc, 400, 400)
	if err != nil {
		t.Fatal(err)
	}
	if large > small {
		t.Fatalf("reuse should not improve with size: small=%f large=%f", small, large)
	}
}

func TestBaselineRandomSprayRarelyCorrupts(t *testing.T) {
	wins := 0
	const trials = 6
	for seed := uint64(0); seed < trials; seed++ {
		cfg := DefaultBaselineConfig(RandomSpray)
		base := fastConfig(seed)
		cfg.Machine = base.Machine
		cfg.Hammer = base.Hammer
		cfg.AttackerMemory = base.AttackerMemory
		cfg.Seed = seed
		res, err := RunBaselineTrial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TableCorrupted {
			wins++
		}
		if res.RequiredPrivilege != "none" {
			t.Fatal("spray baseline must be unprivileged")
		}
	}
	if wins == trials {
		t.Fatal("random spray succeeded every time; it should be unreliable")
	}
}

func TestBaselinePagemapReportsPrivilege(t *testing.T) {
	cfg := DefaultBaselineConfig(PagemapTargeted)
	base := fastConfig(1)
	cfg.Machine = base.Machine
	cfg.Hammer = base.Hammer
	cfg.AttackerMemory = base.AttackerMemory
	res, err := RunBaselineTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RequiredPrivilege != "CAP_SYS_ADMIN" {
		t.Fatalf("privilege = %q", res.RequiredPrivilege)
	}
}

func TestBaselineKindString(t *testing.T) {
	if RandomSpray.String() != "random-spray" || PagemapTargeted.String() != "pagemap-targeted" {
		t.Fatal("baseline names")
	}
}

// End-to-end PRESENT run: rarer usable flips (16-byte table) make this
// probabilistic, so accept any run reaching the steer phase but demand at
// least one full success across seeds.
func TestEndToEndPresent(t *testing.T) {
	if testing.Short() {
		t.Skip("long PRESENT sweep")
	}
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var succeeded bool
	for seed := uint64(1); seed <= 8 && !succeeded; seed++ {
		cfg := fastConfig(seed)
		cfg.VictimCipher = "present-80"
		cfg.VictimKey = key
		cfg.Ciphertexts = 3000
		atk, err := NewAttack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Success() {
			succeeded = true
			if !bytes.Equal(rep.RecoveredKey, key) {
				t.Fatalf("recovered %x want %x", rep.RecoveredKey, key)
			}
		}
	}
	if !succeeded {
		t.Fatal("PRESENT attack never succeeded in 8 seeds")
	}
}

// End-to-end run against the registry's third victim: the LILLIPUT-style
// cipher shares PRESENT's 16-byte table, so the same rare-usable-flip
// caveat applies.
func TestEndToEndLilliput(t *testing.T) {
	if testing.Short() {
		t.Skip("long LILLIPUT sweep")
	}
	key := []byte{11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	var succeeded bool
	for seed := uint64(1); seed <= 8 && !succeeded; seed++ {
		cfg := fastConfig(seed)
		cfg.VictimCipher = "lilliput-80"
		cfg.VictimKey = key
		cfg.Ciphertexts = 3000
		atk, err := NewAttack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Success() {
			succeeded = true
			if !bytes.Equal(rep.RecoveredKey, key) {
				t.Fatalf("recovered %x want %x", rep.RecoveredKey, key)
			}
		}
	}
	if !succeeded {
		t.Fatal("LILLIPUT attack never succeeded in 8 seeds")
	}
}

// An unregistered victim cipher must be rejected at construction.
func TestNewAttackRejectsUnknownCipher(t *testing.T) {
	cfg := fastConfig(1)
	cfg.VictimCipher = "rot13"
	if _, err := NewAttack(cfg); err == nil {
		t.Fatal("unknown cipher accepted")
	}
}
