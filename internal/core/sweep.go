package core

import (
	"context"

	"explframe/internal/harness"
	"explframe/internal/stats"
)

// This file provides the parallel Monte Carlo sweeps over the package's
// three trial kinds — full attacks, steering-only trials and prior-work
// baselines.  Each sweep runs on the harness worker pool with the
// determinism contract the experiment tables rely on: trial k's
// configuration seed is drawn from stats.NewStream(base.Seed, k), so the
// result slice is a pure function of the base configuration and trial
// count, independent of worker count and scheduling.  Execution knobs
// (worker count, cancellation) ride along as harness.Options and never
// influence the statistics.

// RunAttackTrials executes n independent end-to-end attack trials derived
// from base.  Each trial re-seeds a copy of base from its private stream
// (fresh weak cells, keys and noise per trial); mutate, when non-nil, can
// adjust the copy further (e.g. scenario knobs) before the run.  Results
// are ordered by trial index.
func RunAttackTrials(base Config, n int, mutate func(trial int, cfg *Config), opts ...harness.Option) ([]*Report, error) {
	return RunAttackTrialsContext(context.Background(), base, n, mutate, opts...)
}

// RunAttackTrialsContext is RunAttackTrials with cancellation: ctx stops the
// trial dispatch between trials and aborts in-flight attacks between phases
// (see Attack.RunContext), so a campaign cancel returns promptly even
// mid-analysis.
func RunAttackTrialsContext(ctx context.Context, base Config, n int, mutate func(trial int, cfg *Config), opts ...harness.Option) ([]*Report, error) {
	// Copy before appending: the caller's slice may be shared across
	// concurrent sweeps, and appending into spare capacity would race.
	opts = append(append(make([]harness.Option, 0, len(opts)+1), opts...), harness.WithContext(ctx))
	return harness.RunTrials(base.Seed, n, func(tr int, rng *stats.RNG) (*Report, error) {
		cfg := base
		cfg.Seed = rng.Uint64()
		if mutate != nil {
			mutate(tr, &cfg)
		}
		atk, err := NewAttack(cfg)
		if err != nil {
			return nil, err
		}
		return atk.RunContext(ctx)
	}, opts...)
}

// RunSteeringTrials executes n independent steering trials derived from
// base, re-seeding each copy from its trial stream.
func RunSteeringTrials(base SteeringConfig, n int, opts ...harness.Option) ([]*SteeringResult, error) {
	return harness.RunTrials(base.Seed, n, func(_ int, rng *stats.RNG) (*SteeringResult, error) {
		cfg := base
		cfg.Seed = rng.Uint64()
		return RunSteeringTrial(cfg)
	}, opts...)
}

// RunBaselineTrials executes n independent baseline trials derived from
// base, re-seeding each copy from its trial stream.
func RunBaselineTrials(base BaselineConfig, n int, opts ...harness.Option) ([]*BaselineResult, error) {
	return harness.RunTrials(base.Seed, n, func(_ int, rng *stats.RNG) (*BaselineResult, error) {
		cfg := base
		cfg.Seed = rng.Uint64()
		return RunBaselineTrial(cfg)
	}, opts...)
}
