package core

import (
	"explframe/internal/harness"
	"explframe/internal/stats"
)

// This file provides the parallel Monte Carlo sweeps over the package's
// three trial kinds — full attacks, steering-only trials and prior-work
// baselines.  Each sweep runs on the harness worker pool with the
// determinism contract the experiment tables rely on: trial k's
// configuration seed is drawn from stats.NewStream(base.Seed, k), so the
// result slice is a pure function of the base configuration and trial
// count, independent of worker count and scheduling.

// RunAttackTrials executes n independent end-to-end attack trials derived
// from base.  Each trial re-seeds a copy of base from its private stream
// (fresh weak cells, keys and noise per trial); mutate, when non-nil, can
// adjust the copy further (e.g. scenario knobs) before the run.  Results
// are ordered by trial index.
func RunAttackTrials(base Config, n int, mutate func(trial int, cfg *Config)) ([]*Report, error) {
	return harness.RunTrials(base.Seed, n, func(tr int, rng *stats.RNG) (*Report, error) {
		cfg := base
		cfg.Seed = rng.Uint64()
		if mutate != nil {
			mutate(tr, &cfg)
		}
		atk, err := NewAttack(cfg)
		if err != nil {
			return nil, err
		}
		return atk.Run()
	})
}

// RunSteeringTrials executes n independent steering trials derived from
// base, re-seeding each copy from its trial stream.
func RunSteeringTrials(base SteeringConfig, n int) ([]*SteeringResult, error) {
	return harness.RunTrials(base.Seed, n, func(_ int, rng *stats.RNG) (*SteeringResult, error) {
		cfg := base
		cfg.Seed = rng.Uint64()
		return RunSteeringTrial(cfg)
	})
}

// RunBaselineTrials executes n independent baseline trials derived from
// base, re-seeding each copy from its trial stream.
func RunBaselineTrials(base BaselineConfig, n int) ([]*BaselineResult, error) {
	return harness.RunTrials(base.Seed, n, func(_ int, rng *stats.RNG) (*BaselineResult, error) {
		cfg := base
		cfg.Seed = rng.Uint64()
		return RunBaselineTrial(cfg)
	})
}
