package core

import (
	"fmt"

	"explframe/internal/kernel"
	"explframe/internal/rowhammer"
	"explframe/internal/stats"
	"explframe/internal/trace"
	"explframe/internal/vm"
)

// BaselineKind selects a prior-work attack model for experiment E8.
type BaselineKind int

// The two baselines the paper positions ExplFrame against (Section VI):
// unprivileged spraying over a large address space, and pagemap-assisted
// targeting that needs CAP_SYS_ADMIN.
const (
	// RandomSpray: the attacker fills a large buffer and hammers blindly;
	// the victim's data is hit only if it happens to sit in a row adjacent
	// to attacker memory with a usable weak cell ("the bit flips, if any,
	// will be uncontrolled").
	RandomSpray BaselineKind = iota
	// PagemapTargeted: the attacker reads the victim frame's PFN from
	// pagemap (requires CAP_SYS_ADMIN since Linux 4.0) and double-sided
	// hammers exactly its neighbour rows.
	PagemapTargeted
)

// String names the baseline.
func (k BaselineKind) String() string {
	if k == PagemapTargeted {
		return "pagemap-targeted"
	}
	return "random-spray"
}

// BaselineConfig parameterises a baseline trial.
type BaselineConfig struct {
	Seed           uint64
	Machine        kernel.Config
	Hammer         rowhammer.Config
	Kind           BaselineKind
	AttackerMemory uint64
	CPU            int
	VictimCipher   string
	VictimKey      []byte
	VictimPages    int
}

// DefaultBaselineConfig mirrors the attack defaults.
func DefaultBaselineConfig(kind BaselineKind) BaselineConfig {
	ac := DefaultConfig()
	return BaselineConfig{
		Seed:           1,
		Machine:        ac.Machine,
		Hammer:         ac.Hammer,
		Kind:           kind,
		AttackerMemory: ac.AttackerMemory,
		CPU:            0,
		VictimCipher:   ac.VictimCipher,
		VictimKey:      ac.VictimKey,
		VictimPages:    ac.VictimRequestPages,
	}
}

// BaselineResult reports one baseline trial.
type BaselineResult struct {
	// TableCorrupted is the success criterion: the fault reached the
	// victim's S-box table.
	TableCorrupted bool
	CorruptIndex   int
	// NeighboursOwned reports whether the attacker mapped any page in a row
	// adjacent to the victim row (necessary for disturbance to reach it).
	NeighboursOwned bool
	// RequiredPrivilege notes what the model assumed.
	RequiredPrivilege string
}

// RunBaselineTrial executes one trial of the selected baseline.  The victim
// allocates first (no steering — that is the point of the comparison), then
// the attacker hammers.
//
// For tractability the spray baseline hammers only the attacker rows within
// disturbance range of the victim row; hammering the rest of the buffer
// cannot affect the outcome and is omitted.  The statistics are identical
// to the full sweep.
func RunBaselineTrial(cfg BaselineConfig) (*BaselineResult, error) {
	mc := cfg.Machine
	if mc.NumCPUs == 0 {
		mc = kernel.DefaultConfig()
	}
	mc.Seed = cfg.Seed
	m, err := kernel.NewMachine(mc)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0xba5e)
	_ = rng

	res := &BaselineResult{CorruptIndex: -1, RequiredPrivilege: "none"}
	if cfg.Kind == PagemapTargeted {
		res.RequiredPrivilege = "CAP_SYS_ADMIN"
	}

	// Victim first: its table page lands wherever the allocator puts it.
	victim, err := trace.SpawnVictim(m, cfg.CPU, cfg.VictimCipher, cfg.VictimKey, cfg.VictimPages, 0)
	if err != nil {
		return nil, err
	}
	vpa, ok := victim.Proc.Translate(victim.TablePage())
	if !ok {
		return nil, fmt.Errorf("core: victim table not resident")
	}

	// Attacker sprays its buffer.
	attacker, err := m.Spawn("attacker", cfg.CPU)
	if err != nil {
		return nil, err
	}
	if cfg.Kind == PagemapTargeted {
		attacker.CapSysAdmin = true
	}
	base, err := attacker.Mmap(cfg.AttackerMemory)
	if err != nil {
		return nil, err
	}
	if err := attacker.Touch(base, cfg.AttackerMemory); err != nil {
		return nil, err
	}
	engine := rowhammer.New(cfg.Hammer, m, attacker)

	// Locate attacker pages adjacent to the victim row.  The pagemap
	// attacker derives the victim row from the PFN it read; the spray
	// attacker hits those rows only as part of its blind sweep — either
	// way, only those hammer runs can corrupt the table.
	mapper := m.DRAM().Mapper()
	va := mapper.ToDRAM(vpa)
	bg := mapper.BankGroup(va)

	upperRow, upperOK := mapper.AdjacentRow(va.Row, -1)
	lowerRow, lowerOK := mapper.AdjacentRow(va.Row, +1)
	var upper, lower vm.VirtAddr
	for off := uint64(0); off < cfg.AttackerMemory; off += vm.PageSize {
		pva := base + vm.VirtAddr(off)
		pa, ok := attacker.Translate(pva)
		if !ok {
			continue
		}
		a := mapper.ToDRAM(pa)
		if mapper.BankGroup(a) != bg {
			continue
		}
		switch {
		case upperOK && a.Row == upperRow:
			upper = pva
		case lowerOK && a.Row == lowerRow:
			lower = pva
		}
	}
	if upper == 0 && lower == 0 {
		return res, nil // attacker owns no adjacent row; nothing can happen
	}
	res.NeighboursOwned = true

	switch {
	case upper != 0 && lower != 0:
		agg := rowhammer.Aggressors{VictimRow: va.Row, Bank: bg, Upper: upper, Lower: lower, Mode: rowhammer.DoubleSided}
		if err := engine.HammerDefault(agg); err != nil {
			return nil, err
		}
	default:
		// Single-sided with whichever neighbour is owned plus a far row.
		near := upper
		if near == 0 {
			near = lower
		}
		single := rowhammer.New(rowhammer.Config{Mode: rowhammer.SingleSided, PairHammerCount: cfg.Hammer.PairHammerCount}, m, attacker)
		agg, err := single.FindAggressors(near, base, cfg.AttackerMemory)
		if err != nil {
			return res, nil
		}
		// Re-target: hammer the near row (neighbour of the victim) and the
		// far conflict row.
		agg.Upper = near
		if err := single.Hammer(agg, cfg.Hammer.PairHammerCount); err != nil {
			return nil, err
		}
	}

	corrupted, idx, err := victim.TableCorrupted()
	if err != nil {
		return nil, err
	}
	res.TableCorrupted = corrupted
	res.CorruptIndex = idx
	return res, nil
}
