// Package core orchestrates the complete ExplFrame attack the paper
// describes, end to end on the simulated stack:
//
//  1. Template — the attacker fills a large mapping and Rowhammers its own
//     pages until it finds a reproducible bit flip whose page offset and
//     polarity would corrupt the victim's S-box table (Section VI).
//  2. Plant — the attacker munmaps the vulnerable page; the freed frame
//     lands hot in the CPU's page frame cache (Section V).
//  3. Wait — the attacker stays busy (sleeping would drain the cache) while
//     unrelated noise may churn the allocator.
//  4. Steer — the victim starts on the same CPU and its first-touched page
//     receives the planted frame with high probability.
//  5. Re-hammer — the attacker hammers the same aggressor rows again,
//     flipping the same cell, now under the victim's table.
//  6. Analyse — persistent fault analysis on the victim's faulty
//     ciphertexts recovers the key offline (reference [12]).
//
// The package also implements the two baselines the paper positions itself
// against (random spraying without steering, and pagemap-privileged
// targeting) for experiment E8.
package core

import (
	"explframe/internal/cipher/registry"
	"explframe/internal/kernel"
	"explframe/internal/machine"
	"explframe/internal/rowhammer"
)

// Config parameterises one attack run.
type Config struct {
	// Seed drives every stochastic component (weak cells, keys, noise).
	Seed uint64

	// Machine is the simulated hardware/kernel configuration.  The zero
	// value takes DefaultConfig's machine.
	Machine kernel.Config

	// Hammer configures the Rowhammer engine.
	Hammer rowhammer.Config

	// AttackerMemory is the size of the attacker's templating buffer.  The
	// paper uses ~1 GiB on an 8+ GiB host; the default scales that ratio to
	// the simulated module.
	AttackerMemory uint64

	// AttackerCPU and VictimCPU pin the two processes.  The attack requires
	// them equal; experiments set them apart to measure the failure mode.
	AttackerCPU int
	VictimCPU   int

	// VictimCipher names the victim cipher (any name or alias registered in
	// internal/cipher/registry, e.g. "aes-128", "present-80",
	// "lilliput-80"); VictimKey is its key.
	VictimCipher string
	VictimKey    []byte

	// VictimRequestPages is the size of the victim's single mmap request.
	// Small requests are served from the page frame cache (Section V:
	// "if the request for memory is small (a few pages)").
	VictimRequestPages int

	// VictimTableOffset is the byte offset of the S-box within the victim's
	// first page.
	VictimTableOffset int

	// NoiseProcs background processes run on the victim CPU and perform
	// NoiseOps allocation events between plant and steer.
	NoiseProcs int
	NoiseOps   int

	// AttackerSleeps makes the attacker go idle after planting, modelling
	// the mistake Section V warns about.
	AttackerSleeps bool

	// Ciphertexts bounds the number of faulty ciphertexts collected for
	// fault analysis.
	Ciphertexts int

	// CollectOnMiss forces ciphertext collection even when the fault
	// never reached the victim table (the attacker cannot observe that in
	// reality; experiments skip the pointless collection by default and
	// account the failure identically).
	CollectOnMiss bool
}

// ConfigForMachine assembles the attack defaults for a machine spec: the
// machine supplies the hardware/kernel layer plus the hammer, buffer and
// ciphertext sizing an end-to-end run on it needs; everything else takes
// the quiet same-CPU AES-128 baseline.  Every machine profile — built-in
// or registered by a caller — lowers onto core through this one function,
// so a scenario on the "ddr4" machine differs from one on "default" in
// exactly the fields the machine names.
func ConfigForMachine(ms machine.Spec, seed uint64) Config {
	return Config{
		Seed:    seed,
		Machine: ms.KernelConfig(seed),
		Hammer: rowhammer.Config{
			Mode:            rowhammer.DoubleSided,
			PairHammerCount: ms.Attack.HammerPairs,
		},
		AttackerMemory:     ms.Attack.AttackerMemory,
		AttackerCPU:        0,
		VictimCPU:          0,
		VictimCipher:       "aes-128",
		VictimKey:          []byte("explframe-victim"),
		VictimRequestPages: 4,
		VictimTableOffset:  0,
		NoiseProcs:         0,
		NoiseOps:           0,
		Ciphertexts:        ms.Attack.Ciphertexts,
	}
}

// DefaultConfig returns a configuration sized for the 256 MiB simulated
// module: attack parameters keep the same proportions as the paper's
// testbed while staying fast enough for parameter sweeps.  It is exactly
// the "default" machine profile lowered with seed 1.
func DefaultConfig() Config {
	return ConfigForMachine(machine.MustGet("default"), 1)
}

// DefaultVictimKey returns a deterministic demo key of the right length for
// the given cipher (DefaultConfig's AES key pattern, sized to KeyBytes).
func DefaultVictimKey(c registry.Cipher) []byte {
	pattern := []byte("explframe-victim")
	key := make([]byte, c.KeyBytes())
	for i := range key {
		key[i] = pattern[i%len(pattern)]
	}
	return key
}
