package core

import (
	"fmt"

	"explframe/internal/dram"
	"explframe/internal/kernel"
	"explframe/internal/mm"
	"explframe/internal/stats"
	"explframe/internal/trace"
	"explframe/internal/vm"
)

// SteeringConfig parameterises a steering-only trial: no hammering, purely
// the Section V page-frame-cache mechanics.  These trials are cheap, so the
// E2/E3/E11 parameter sweeps run thousands of them.
type SteeringConfig struct {
	Seed    uint64
	Machine kernel.Config

	AttackerCPU int
	VictimCPU   int

	// AttackerPages is the attacker's buffer size in pages.
	AttackerPages int
	// ReleasePages is how many pages the attacker munmaps ("unmaps one or
	// two pages and waits", Section V).
	ReleasePages int

	// NoiseProcs/NoiseOps model unrelated allocation churn on the victim
	// CPU between release and victim start.
	NoiseProcs int
	NoiseOps   int

	// AttackerSleeps models the inactive attacker of Section V.
	AttackerSleeps bool

	// VictimRequestPages is the size of the victim's request.
	VictimRequestPages int
}

// DefaultSteeringConfig mirrors the attack defaults on a 64 MiB machine —
// steering depends only on allocator state, so the smaller module keeps
// thousand-trial sweeps cheap without changing the statistics.
func DefaultSteeringConfig() SteeringConfig {
	mc := kernel.DefaultConfig()
	mc.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 8, Rows: 1024, RowBytes: 8192}
	return SteeringConfig{
		Seed:               1,
		Machine:            mc,
		AttackerPages:      1024,
		ReleasePages:       1,
		VictimRequestPages: 4,
	}
}

// SteeringResult reports where the released frames ended up.
type SteeringResult struct {
	// Planted holds the released frames, coldest first (the last entry was
	// unmapped last and sits hottest in the cache).
	Planted []mm.PFN
	// VictimPFNs are the frames backing the victim's pages in touch order.
	VictimPFNs []mm.PFN
	// FirstPageHit reports whether the victim's first-touched page received
	// the hottest planted frame — the precise steering the attack needs.
	FirstPageHit bool
	// PlantedReused counts how many planted frames ended up anywhere in the
	// victim's allocation.
	PlantedReused int
}

// RunSteeringTrial executes one plant-and-steer experiment.
func RunSteeringTrial(cfg SteeringConfig) (*SteeringResult, error) {
	if cfg.ReleasePages <= 0 || cfg.ReleasePages > cfg.AttackerPages {
		return nil, fmt.Errorf("core: bad ReleasePages %d", cfg.ReleasePages)
	}
	mc := cfg.Machine
	if mc.NumCPUs == 0 {
		mc = kernel.DefaultConfig()
	}
	mc.Seed = cfg.Seed
	m, err := kernel.NewMachine(mc)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x57ee7)

	attacker, err := m.Spawn("attacker", cfg.AttackerCPU)
	if err != nil {
		return nil, err
	}
	length := uint64(cfg.AttackerPages) * vm.PageSize
	base, err := attacker.Mmap(length)
	if err != nil {
		return nil, err
	}
	if err := attacker.Touch(base, length); err != nil {
		return nil, err
	}

	// Release ReleasePages distinct random pages; the last munmap is the
	// hottest cache entry.
	res := &SteeringResult{}
	perm := rng.Perm(cfg.AttackerPages)[:cfg.ReleasePages]
	for _, pi := range perm {
		va := base + vm.VirtAddr(pi)*vm.PageSize
		pa, ok := attacker.Translate(va)
		if !ok {
			return nil, fmt.Errorf("core: attacker page %d not resident", pi)
		}
		res.Planted = append(res.Planted, mm.PFNOf(pa))
		if err := attacker.Munmap(va, vm.PageSize); err != nil {
			return nil, err
		}
	}
	if cfg.AttackerSleeps {
		attacker.Sleep()
	}

	if cfg.NoiseProcs > 0 && cfg.NoiseOps > 0 {
		noise, err := trace.SpawnNoise(m, cfg.VictimCPU, cfg.NoiseProcs, rng.Split())
		if err != nil {
			return nil, err
		}
		if err := noise.Churn(cfg.NoiseOps); err != nil {
			return nil, err
		}
	}

	victim, err := m.Spawn("victim", cfg.VictimCPU)
	if err != nil {
		return nil, err
	}
	vlen := uint64(cfg.VictimRequestPages) * vm.PageSize
	vbase, err := victim.Mmap(vlen)
	if err != nil {
		return nil, err
	}
	for p := 0; p < cfg.VictimRequestPages; p++ {
		va := vbase + vm.VirtAddr(p)*vm.PageSize
		if err := victim.Store(va, byte(p)); err != nil {
			return nil, err
		}
		pa, _ := victim.Translate(va)
		res.VictimPFNs = append(res.VictimPFNs, mm.PFNOf(pa))
	}

	hot := res.Planted[len(res.Planted)-1]
	res.FirstPageHit = res.VictimPFNs[0] == hot
	planted := make(map[mm.PFN]bool, len(res.Planted))
	for _, p := range res.Planted {
		planted[p] = true
	}
	for _, p := range res.VictimPFNs {
		if planted[p] {
			res.PlantedReused++
		}
	}
	return res, nil
}

// SelfReuseTrial measures Section V's first observation: a process that
// frees `freed` pages and then requests `request` pages gets its own frames
// back "with a probability of almost 1" for small requests.  Returns the
// fraction of freed frames that came back.
func SelfReuseTrial(seed uint64, mc kernel.Config, freed, request int) (float64, error) {
	if mc.NumCPUs == 0 {
		mc = kernel.DefaultConfig()
	}
	mc.Seed = seed
	m, err := kernel.NewMachine(mc)
	if err != nil {
		return 0, err
	}
	p, err := m.Spawn("self", 0)
	if err != nil {
		return 0, err
	}
	// Map and touch a working set, free `freed` pages, then request anew.
	work := freed + 16
	base, err := p.Mmap(uint64(work) * vm.PageSize)
	if err != nil {
		return 0, err
	}
	if err := p.Touch(base, uint64(work)*vm.PageSize); err != nil {
		return 0, err
	}
	released := make(map[mm.PFN]bool, freed)
	for i := 0; i < freed; i++ {
		va := base + vm.VirtAddr(i)*vm.PageSize
		pa, _ := p.Translate(va)
		released[mm.PFNOf(pa)] = true
		if err := p.Munmap(va, vm.PageSize); err != nil {
			return 0, err
		}
	}
	nbase, err := p.Mmap(uint64(request) * vm.PageSize)
	if err != nil {
		return 0, err
	}
	got := 0
	for i := 0; i < request; i++ {
		va := nbase + vm.VirtAddr(i)*vm.PageSize
		if err := p.Store(va, 1); err != nil {
			return 0, err
		}
		pa, _ := p.Translate(va)
		if released[mm.PFNOf(pa)] {
			got++
		}
	}
	denom := freed
	if request < freed {
		denom = request
	}
	if denom == 0 {
		return 0, nil
	}
	return float64(got) / float64(denom), nil
}
