package core

import (
	"bytes"
	"testing"

	"explframe/internal/dram"
	"explframe/internal/rowhammer"
)

// Regression: at high weak-cell density the re-hammer can corrupt TWO table
// entries (collateral weak cells in the victim's row).  When both flips hit
// the same bit index the per-position ciphertext distributions are identical
// under the two key hypotheses, and only key-schedule disambiguation against
// a clean pair can finish the attack.  Seed 3 on this geometry reproduces
// exactly that degenerate double-fault.
func TestMultiFaultCollateralRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.Machine.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
	cfg.Machine.FaultModel.WeakCellDensity = 2e-4
	cfg.Machine.FaultModel.BaseThreshold = 1500
	cfg.Machine.FaultModel.ThresholdSpread = 0.5
	cfg.Hammer = rowhammer.Config{Mode: rowhammer.DoubleSided, PairHammerCount: 3200}
	cfg.AttackerMemory = 8 << 20

	atk, err := NewAttack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CorruptIndices) < 2 {
		t.Skipf("seed no longer produces a collateral double fault: %v", rep.CorruptIndices)
	}
	if !rep.Success() {
		t.Fatalf("multi-fault recovery failed: phase=%s fail=%q", rep.Phase, rep.FailReason)
	}
	if !bytes.Equal(rep.RecoveredKey, cfg.VictimKey) {
		t.Fatalf("recovered %x want %x", rep.RecoveredKey, cfg.VictimKey)
	}
}
