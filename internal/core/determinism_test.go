package core

import (
	"bytes"
	"testing"
)

// The whole attack is a pure function of its configuration: two runs with
// the same seed must produce identical reports, down to the frame numbers.
// This is what makes every number in EXPERIMENTS.md reproducible.
func TestAttackDeterminism(t *testing.T) {
	run := func() *Report {
		cfg := fastConfig(1)
		atk, err := NewAttack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Phase != b.Phase || a.SteeringHit != b.SteeringHit || a.FaultInjected != b.FaultInjected {
		t.Fatalf("phase outcomes diverged: %+v vs %+v", a, b)
	}
	if a.PlantedPFN != b.PlantedPFN || a.VictimTablePFN != b.VictimTablePFN {
		t.Fatalf("frame placement diverged: %d/%d vs %d/%d",
			a.PlantedPFN, a.VictimTablePFN, b.PlantedPFN, b.VictimTablePFN)
	}
	if a.Site.VA != b.Site.VA || a.Site.Bit != b.Site.Bit || a.Site.From != b.Site.From ||
		a.Site.Agg.VictimRow != b.Site.Agg.VictimRow || a.Site.Agg.Bank != b.Site.Agg.Bank {
		t.Fatalf("templated site diverged: %+v vs %+v", a.Site, b.Site)
	}
	if a.CiphertextsUsed != b.CiphertextsUsed || !bytes.Equal(a.RecoveredKey, b.RecoveredKey) {
		t.Fatalf("analysis diverged: %d/%x vs %d/%x",
			a.CiphertextsUsed, a.RecoveredKey, b.CiphertextsUsed, b.RecoveredKey)
	}
}

// Different seeds must explore different weak-cell layouts: the planted
// frame should not be constant across seeds (a constant would indicate the
// seed is ignored somewhere).
func TestAttackSeedSensitivity(t *testing.T) {
	pfns := map[uint64]bool{}
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := fastConfig(seed)
		atk, err := NewAttack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.SiteFound {
			pfns[uint64(rep.PlantedPFN)] = true
		}
	}
	if len(pfns) < 2 {
		t.Fatalf("planted frames identical across seeds: %v", pfns)
	}
}
