package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"explframe/internal/cipher/registry"
	"explframe/internal/fault/pfa"
	"explframe/internal/kernel"
	"explframe/internal/mm"
	"explframe/internal/rowhammer"
	"explframe/internal/stats"
	"explframe/internal/trace"
	"explframe/internal/vm"
)

// Phase names the attack stages for reporting.
type Phase string

// Attack phases in execution order.
const (
	PhaseSetup    Phase = "setup"
	PhaseTemplate Phase = "template"
	PhasePlant    Phase = "plant"
	PhaseSteer    Phase = "steer"
	PhaseRehammer Phase = "rehammer"
	PhaseAnalyse  Phase = "analyse"
	PhaseDone     Phase = "done"
)

// Report captures everything an attack run produced, phase by phase.
type Report struct {
	// Phase is the last phase reached (PhaseDone on full success).
	Phase Phase
	// FailReason is empty on success, otherwise why the run stopped.
	FailReason string

	// Template phase.
	FlipsTemplated int
	SiteFound      bool
	Site           rowhammer.FlipSite

	// Plant/steer phases.
	PlantedPFN     mm.PFN
	VictimTablePFN mm.PFN
	SteeringHit    bool

	// Re-hammer phase.
	FaultInjected bool
	CorruptIndex  int // first corrupted index in the S-box table
	// CorruptIndices lists every corrupted table entry: collateral weak
	// cells in the same row can add faults beyond the templated one, which
	// switches the analysis to the multi-fault recovery.
	CorruptIndices []int

	// Analysis phase.
	CiphertextsUsed int
	ResidualEntropy float64
	KeyRecovered    bool
	RecoveredKey    []byte

	// Engine counters.
	Hammer rowhammer.Stats
	// TemplateHammer is the engine-counter snapshot at the end of the
	// template phase: TemplateHammer.Activations is the activation cost of
	// finding the first usable flip — the time-to-first-fault proxy the
	// machine-profile comparison (E16) reports.
	TemplateHammer rowhammer.Stats
}

// Success reports whether the full pipeline succeeded.
func (r *Report) Success() bool { return r.Phase == PhaseDone && r.KeyRecovered }

// Attack owns one configured run.
type Attack struct {
	cfg    Config
	cipher registry.Cipher
	sbox   []byte // canonical table, cached (SBox() copies on every call)
	m      *kernel.Machine
	rng    *stats.RNG
}

// NewAttack builds the machine for a run.
func NewAttack(cfg Config) (*Attack, error) {
	if cfg.Machine.NumCPUs == 0 {
		cfg.Machine = kernel.DefaultConfig()
	}
	cfg.Machine.Seed = cfg.Seed
	cipher, ok := registry.Get(cfg.VictimCipher)
	if !ok {
		return nil, fmt.Errorf("core: unknown victim cipher %q (registered: %v)",
			cfg.VictimCipher, registry.Names())
	}
	m, err := kernel.NewMachine(cfg.Machine)
	if err != nil {
		return nil, err
	}
	if cfg.AttackerCPU >= m.NumCPUs() || cfg.VictimCPU >= m.NumCPUs() {
		return nil, fmt.Errorf("core: cpu out of range")
	}
	return &Attack{cfg: cfg, cipher: cipher, sbox: cipher.SBox(), m: m, rng: stats.NewRNG(cfg.Seed ^ 0xa77ac)}, nil
}

// Machine exposes the underlying machine for inspection.
func (a *Attack) Machine() *kernel.Machine { return a.m }

// usableFlip reports whether a templated flip would corrupt the victim's
// table: right page offset, a bit that reaches the cipher's datapath, and a
// polarity that changes the table byte the victim stores there.  The table
// contents are public (it is the cipher's standard S-box), so the attacker
// can evaluate this locally for any registered cipher.
func (a *Attack) usableFlip(f rowhammer.FlipSite) bool {
	off := a.cfg.VictimTableOffset
	if f.ByteInPage < off || f.ByteInPage >= off+a.cipher.TableLen() {
		return false
	}
	if int(f.Bit) >= a.cipher.EntryBits() {
		return false // stored bits above EntryBits never reach the datapath
	}
	entry := a.sbox[f.ByteInPage-off]
	return (entry>>f.Bit)&1 == f.From&1
}

// Run executes the full pipeline and always returns a report; err is
// reserved for simulator malfunctions, not attack failures (those are
// recorded in the report).
func (a *Attack) Run() (*Report, error) {
	return a.RunContext(context.Background())
}

// RunContext is Run with cancellation: ctx is checked between phases and
// inside the ciphertext-collection loop, so a campaign can abandon a run
// promptly.  On cancellation the report records the phase that was about to
// start and the returned error is ctx.Err().
func (a *Attack) RunContext(ctx context.Context) (*Report, error) {
	rep := &Report{Phase: PhaseSetup, CorruptIndex: -1}
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	// --- Setup: attacker process with a large touched mapping.
	attacker, err := a.m.Spawn("attacker", a.cfg.AttackerCPU)
	if err != nil {
		return rep, err
	}
	base, err := attacker.Mmap(a.cfg.AttackerMemory)
	if err != nil {
		return rep, err
	}
	if err := attacker.Touch(base, a.cfg.AttackerMemory); err != nil {
		return rep, err
	}
	engine := rowhammer.New(a.cfg.Hammer, a.m, attacker)

	// --- Template: hunt for a flip that would corrupt the victim table.
	rep.Phase = PhaseTemplate
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	site, all, found, err := engine.TemplateUntil(base, a.cfg.AttackerMemory, a.usableFlip)
	rep.FlipsTemplated = len(all)
	rep.Hammer = engine.Stats()
	rep.TemplateHammer = rep.Hammer
	if err != nil {
		return rep, err
	}
	if !found {
		rep.FailReason = "no usable flip in attacker region"
		return rep, nil
	}
	rep.SiteFound = true
	rep.Site = site

	// --- Plant: restore the page contents, then release the frame into
	// the page frame cache.  (The kernel will zero it on reallocation
	// anyway; the rewrite re-arms the weak cell.)
	rep.Phase = PhasePlant
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	pa, ok := attacker.Translate(site.PageVA)
	if !ok {
		return rep, fmt.Errorf("core: templated page not resident")
	}
	rep.PlantedPFN = mm.PFNOf(pa)
	if err := attacker.Munmap(site.PageVA, vm.PageSize); err != nil {
		return rep, err
	}
	if a.cfg.AttackerSleeps {
		attacker.Sleep()
	}

	// --- Interference window.
	if a.cfg.NoiseProcs > 0 && a.cfg.NoiseOps > 0 {
		noise, err := trace.SpawnNoise(a.m, a.cfg.VictimCPU, a.cfg.NoiseProcs, a.rng.Split())
		if err != nil {
			return rep, err
		}
		if err := noise.Churn(a.cfg.NoiseOps); err != nil {
			return rep, err
		}
	}

	// --- Steer: the victim allocates; its table page should receive the
	// planted frame.
	rep.Phase = PhaseSteer
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	victim, err := trace.SpawnVictim(a.m, a.cfg.VictimCPU, a.cfg.VictimCipher,
		a.cfg.VictimKey, a.cfg.VictimRequestPages, a.cfg.VictimTableOffset)
	if err != nil {
		return rep, err
	}
	vpa, ok := victim.Proc.Translate(victim.TablePage())
	if !ok {
		return rep, fmt.Errorf("core: victim table not resident")
	}
	rep.VictimTablePFN = mm.PFNOf(vpa)
	rep.SteeringHit = rep.VictimTablePFN == rep.PlantedPFN
	if a.cfg.AttackerSleeps {
		attacker.Wake() // resume for the re-hammer phase
	}

	// Known clean pair for key-schedule disambiguation and verification,
	// captured before the fault lands (the attacker can observe pre-attack
	// traffic).
	cleanPT := make([]byte, a.cipher.BlockSize())
	a.rng.Bytes(cleanPT)
	cleanCT, err := victim.Encrypt(cleanPT)
	if err != nil {
		return rep, err
	}

	// --- Re-hammer the same aggressors; the flip lands in whatever data
	// now occupies the planted frame.
	rep.Phase = PhaseRehammer
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if err := engine.HammerDefault(site.Agg); err != nil {
		return rep, err
	}
	rep.Hammer = engine.Stats()
	indices, values, err := victim.TableCorruptions()
	if err != nil {
		return rep, err
	}
	rep.FaultInjected = len(indices) > 0
	rep.CorruptIndices = indices
	rep.CorruptIndex = -1
	if len(indices) > 0 {
		rep.CorruptIndex = indices[0]
	}
	if !rep.FaultInjected && !a.cfg.CollectOnMiss {
		rep.FailReason = "fault did not reach the victim table"
		return rep, nil
	}

	// --- Analyse: collect faulty ciphertexts, run PFA.
	rep.Phase = PhaseAnalyse
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if err := a.analyse(ctx, rep, victim, indices, values, cleanPT, cleanCT); err != nil {
		return rep, err
	}
	if rep.KeyRecovered {
		rep.Phase = PhaseDone
	} else if rep.FailReason == "" {
		rep.FailReason = "fault analysis did not converge within the ciphertext budget"
	}
	return rep, nil
}

// analyse drives the known-fault PFA attack over the generic collector.
// The attacker knows which table entries flipped (templating enumerated the
// page's flippable bits), hence both the vanished output values
// y*_j = S_orig[v_j] and the values y'_j now stored there.  One fault uses
// the plain elimination attack; collateral extra faults switch to the
// multi-fault recovery, whose search depth the cipher's RecoverCost bounds.
func (a *Attack) analyse(ctx context.Context, rep *Report, victim *trace.Victim, indices []int, values []byte, cleanPT, cleanCT []byte) error {
	c := a.cipher
	collector := pfa.NewCollector(c)
	sb := a.sbox
	mask := byte(1<<uint(c.EntryBits()) - 1)

	var yStars, yPrimes []byte
	for j, idx := range indices {
		// Collateral re-hammer flips can land in stored bits above
		// EntryBits (usableFlip only vets the templated site): those leave
		// the S-box image intact, so they must not enter the fault
		// hypothesis — an extra y* the data cannot support would make the
		// analysis wrongly conclude "inconsistent".
		if values[j]&mask == sb[idx]&mask {
			continue
		}
		yStars = append(yStars, sb[idx]&mask)
		yPrimes = append(yPrimes, values[j]&mask)
	}
	if len(yStars) == 0 {
		if rep.FaultInjected {
			// Every corrupted bit is above the datapath width: the cipher
			// still computes with the canonical table and PFA has nothing
			// to observe.
			rep.FailReason = "corrupted table bits never reach the cipher datapath"
			return nil
		}
		// CollectOnMiss path: assume the templated site, which produces an
		// inconsistency once enough clean ciphertexts arrive.
		yStars = []byte{sb[rep.Site.ByteInPage-a.cfg.VictimTableOffset]}
		yPrimes = []byte{yStars[0] ^ (1 << uint(rep.Site.Bit))}
	}

	recoverKey := func() ([]byte, error) {
		if len(yStars) == 1 {
			return collector.RecoverMasterKnownFault(yStars[0], cleanPT, cleanCT)
		}
		// Multi-fault: frequency scoring resolves the XOR symmetry in the
		// common case; the clean pair settles the degenerate same-bit case
		// through the key schedule where the search budget allows.
		return collector.RecoverMasterMultiFaultWithPair(yStars, yPrimes, cleanPT, cleanCT)
	}

	// Check cadence scales with the cell alphabet: the 4-bit ciphers
	// converge in tens of ciphertexts, AES's 256-value cells in thousands.
	// The cadence doubles as the batch size: both values are multiples of
	// the bitsliced cores' 64-lane width, plaintexts are drawn in the same
	// order as the old per-block loop (encryption consumes no randomness),
	// and the recovery check still fires at every checkEvery boundary plus
	// the final budget point — so batching is invisible to the goldens.
	checkEvery := 64
	if c.EntryBits() >= 8 {
		checkEvery = 512
	}
	bs := c.BlockSize()
	ptBuf := make([]byte, checkEvery*bs)
	pts := make([][]byte, checkEvery)
	for i := range pts {
		pts[i] = ptBuf[i*bs : (i+1)*bs]
	}
	for n := 0; n < a.cfg.Ciphertexts; {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := checkEvery
		if rem := a.cfg.Ciphertexts - n; rem < chunk {
			chunk = rem
		}
		for i := 0; i < chunk; i++ {
			a.rng.Bytes(pts[i])
		}
		cts, err := victim.EncryptBatch(pts[:chunk])
		if err != nil {
			return err
		}
		if err := collector.ObserveBatch(cts); err != nil {
			return err
		}
		n += chunk
		master, err := recoverKey()
		if err != nil {
			if errors.Is(err, pfa.ErrUnderdetermined) {
				continue
			}
			if errors.Is(err, pfa.ErrInconsistent) {
				rep.FailReason = fmt.Sprintf("observations inconsistent with the %d-fault hypothesis", len(yStars))
				break
			}
			return err
		}
		rep.CiphertextsUsed = int(collector.N())
		rep.ResidualEntropy = collector.ResidualEntropy()
		rep.RecoveredKey = master
		rep.KeyRecovered = bytes.Equal(master, a.cfg.VictimKey)
		if !rep.KeyRecovered {
			rep.FailReason = "recovered key does not match victim key"
		}
		return nil
	}
	rep.CiphertextsUsed = int(collector.N())
	rep.ResidualEntropy = collector.ResidualEntropy()
	return nil
}
