package fault

import (
	"strings"
	"testing"

	"explframe/internal/stats"
)

func TestValidateAcceptsPresetsAndPinnedVariants(t *testing.T) {
	for _, p := range Presets() {
		if err := p.Model.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", p.Name, err)
		}
	}
	good := []Model{
		New(PreciseBit, WithPosition(0)),
		New(PreciseBit, WithPosition(63), WithRound(29)),
		New(Nibble, WithPosition(15)),
		New(PreciseByte, WithPosition(3), WithRound(9)),
		New(RandomBytes, WithWidth(8)),
	}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name(), err)
		}
	}
}

// TestValidateRejections drives every Validate clause, mirroring the
// scenario spec suite: each case names the substring the error must carry.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		m    Model
		want string
	}{
		{"zero value", Model{}, "kind: unknown"},
		{"unknown kind", Model{Kind: "laser", Position: Anywhere}, "kind: unknown"},
		{"negative round", New(PreciseBit, WithRound(-1)), "round: -1"},
		{"position below anywhere", New(Nibble, WithPosition(-2)), "position: -2"},
		{"random-bytes pinned position", Model{Kind: RandomBytes, Position: 0, Width: 1}, "fixed on kind random-bytes"},
		{"random-bytes zero width", Model{Kind: RandomBytes, Position: Anywhere}, "width: 0"},
		{"random-bytes negative width", New(RandomBytes, WithWidth(-2)), "width: -2"},
		{"width on precise-bit", New(PreciseBit, WithWidth(2)), "only random-bytes takes a width"},
		{"width on nibble", New(Nibble, WithWidth(1)), "only random-bytes takes a width"},
		{"width on precise-byte", New(PreciseByte, WithWidth(3)), "only random-bytes takes a width"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.m.Validate()
			if err == nil {
				t.Fatalf("Validate() accepted %+v", tc.m)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Validate must join independent violations rather than stop at the first.
func TestValidateJoinsErrors(t *testing.T) {
	m := Model{Kind: "laser", Round: -3, Position: -5}
	err := m.Validate()
	if err == nil {
		t.Fatal("triple-fault model accepted")
	}
	for _, want := range []string{"kind:", "round:", "position:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
}

func TestNameAndHash(t *testing.T) {
	cases := []struct {
		m    Model
		want string
	}{
		{New(PreciseBit), "precise-bit@any"},
		{New(PreciseBit, WithPosition(12)), "precise-bit@12"},
		{New(Nibble, WithRound(29)), "nibble@any+r29"},
		{New(PreciseByte, WithPosition(0)), "precise-byte@0"},
		{New(RandomBytes), "random-bytes@anyx1"},
		{New(RandomBytes, WithWidth(2)), "random-bytes@anyx2"},
	}
	seen := map[uint64]string{}
	for _, tc := range cases {
		if got := tc.m.Name(); got != tc.want {
			t.Errorf("Name() = %q want %q", got, tc.want)
		}
		h := tc.m.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %q and %q", prev, tc.m.Name())
		}
		seen[h] = tc.m.Name()
		if tc.m.Hash() != stats.FNV64(tc.m.Name()) {
			t.Errorf("%s: Hash is not FNV64(Name)", tc.m.Name())
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, p := range Presets() {
		data, err := p.Model.EncodeJSON()
		if err != nil {
			t.Fatalf("%s: encode: %v", p.Name, err)
		}
		back, err := DecodeSpec(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", p.Name, err)
		}
		if back != p.Model {
			t.Fatalf("%s: round-trip %+v != %+v", p.Name, back, p.Model)
		}
	}
}

func TestDecodeSpecRejectsUnknownFields(t *testing.T) {
	_, err := DecodeSpec([]byte(`{"kind":"nibble","position":-1,"widht":2}`))
	if err == nil || !strings.Contains(err.Error(), "widht") {
		t.Fatalf("typoed field accepted: %v", err)
	}
}

func TestLookupPreset(t *testing.T) {
	p, ok := LookupPreset("random-2byte")
	if !ok || p.Model.Width != 2 {
		t.Fatalf("LookupPreset(random-2byte) = %+v, %v", p, ok)
	}
	if _, ok := LookupPreset("nope"); ok {
		t.Fatal("unknown preset resolved")
	}
}

func TestDrawShapes(t *testing.T) {
	rng := stats.NewRNG(1)
	const block = 8
	for _, p := range Presets() {
		for trial := 0; trial < 50; trial++ {
			inj, err := p.Model.Draw(rng, block, 29)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			if inj.Round != 29 {
				t.Fatalf("%s: round %d, want the default 29", p.Name, inj.Round)
			}
			if len(inj.Mask) != block {
				t.Fatalf("%s: mask length %d", p.Name, len(inj.Mask))
			}
			nz := 0
			for _, b := range inj.Mask {
				if b != 0 {
					nz++
				}
			}
			switch p.Model.Kind {
			case PreciseBit:
				b := inj.Mask[inj.Position/8]
				if nz != 1 || b != 0x80>>uint(inj.Position%8) {
					t.Fatalf("%s: mask %x position %d", p.Name, inj.Mask, inj.Position)
				}
			case Nibble:
				b := inj.Mask[inj.Position/2]
				if inj.Position%2 == 0 {
					b >>= 4
				} else if b>>4 != 0 {
					t.Fatalf("%s: fault crossed into the high nibble: %x", p.Name, inj.Mask)
				}
				if nz != 1 || b&0xF == 0 {
					t.Fatalf("%s: mask %x position %d", p.Name, inj.Mask, inj.Position)
				}
			case PreciseByte:
				if nz != 1 || inj.Mask[inj.Position] == 0 {
					t.Fatalf("%s: mask %x position %d", p.Name, inj.Mask, inj.Position)
				}
			case RandomBytes:
				if nz != p.Model.Width || inj.Position != Anywhere {
					t.Fatalf("%s: %d faulted bytes (want %d), position %d", p.Name, nz, p.Model.Width, inj.Position)
				}
			}
		}
	}
}

func TestDrawPinnedChoices(t *testing.T) {
	rng := stats.NewRNG(2)
	inj, err := New(PreciseBit, WithPosition(9), WithRound(5)).Draw(rng, 8, 29)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Round != 5 || inj.Position != 9 || inj.Mask[1] != 0x40 {
		t.Fatalf("pinned draw: %+v", inj)
	}
	// A pinned precise-bit draw consumes no randomness at all, and a pinned
	// precise-byte draw consumes exactly one value draw — the compatibility
	// contract the historical golden tables rely on.
	a, b := stats.NewRNG(3), stats.NewRNG(3)
	if _, err := New(PreciseBit, WithPosition(0)).Draw(a, 16, 9); err != nil {
		t.Fatal(err)
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("pinned precise-bit draw consumed randomness")
	}
	a, b = stats.NewRNG(4), stats.NewRNG(4)
	inj, err = New(PreciseByte, WithPosition(2)).Draw(a, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	if want := byte(b.Intn(255) + 1); inj.Mask[2] != want {
		t.Fatalf("pinned precise-byte draw: mask %x want %x", inj.Mask[2], want)
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("pinned precise-byte draw consumed extra randomness")
	}
}

func TestDrawBoundsErrors(t *testing.T) {
	rng := stats.NewRNG(5)
	cases := []Model{
		New(PreciseBit, WithPosition(64)),
		New(Nibble, WithPosition(16)),
		New(PreciseByte, WithPosition(8)),
		New(RandomBytes, WithWidth(9)),
	}
	for _, m := range cases {
		if _, err := m.Draw(rng, 8, 29); err == nil {
			t.Errorf("%s: out-of-range draw accepted for an 8-byte block", m.Name())
		}
	}
	if _, err := (Model{Kind: "laser"}).Draw(rng, 8, 29); err == nil {
		t.Error("invalid model drew an injection")
	}
}

func TestDrawDeterminism(t *testing.T) {
	for _, p := range Presets() {
		a := stats.NewRNG(11)
		b := stats.NewRNG(11)
		for i := 0; i < 20; i++ {
			ia, err := p.Model.Draw(a, 16, 9)
			if err != nil {
				t.Fatal(err)
			}
			ib, _ := p.Model.Draw(b, 16, 9)
			if ia.Position != ib.Position || string(ia.Mask) != string(ib.Mask) {
				t.Fatalf("%s: same seed diverged at draw %d", p.Name, i)
			}
		}
	}
}
