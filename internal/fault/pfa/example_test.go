package pfa_test

import (
	"bytes"
	"fmt"

	"explframe/internal/cipher/aes"
	"explframe/internal/fault/pfa"
	"explframe/internal/stats"
)

// ExampleAESCollector is the offline half of the ExplFrame attack in
// miniature (the full walkthrough is examples/aes-key-recovery): a victim
// encrypts with an S-box carrying one Rowhammer-style bit flip, and the
// analyst recovers the AES-128 master key from ciphertexts alone plus the
// known flip location.
func ExampleAESCollector() {
	rng := stats.NewRNG(2024)

	// The victim's secret key, and the fault ExplFrame's templating step
	// promised: bit 5 of S-box entry 0xB7 flips.
	key := make([]byte, 16)
	rng.Bytes(key)
	ks, err := aes.Expand(key)
	if err != nil {
		panic(err)
	}
	table := aes.SBox()
	yStar := table[0xB7] // this S-box output value vanishes
	table[0xB7] ^= 1 << 5

	// The attacker passively observes ciphertexts of unknown plaintexts
	// until the missing-value analysis pins every key byte.
	collector := pfa.NewAESCollector()
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	for n := 1; ; n++ {
		rng.Bytes(pt)
		aes.EncryptBlock(ks, &table, ct, pt)
		if err := collector.Observe(ct); err != nil {
			panic(err)
		}
		if n%250 != 0 {
			continue
		}
		master, err := collector.RecoverMasterKnownFault(yStar)
		if err != nil {
			continue // not enough ciphertexts yet
		}
		fmt.Printf("recovered the master key after %d ciphertexts: %v\n", n, bytes.Equal(master[:], key))
		return
	}
	// Output: recovered the master key after 2500 ciphertexts: true
}
