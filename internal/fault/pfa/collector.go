package pfa

import (
	"fmt"

	"explframe/internal/cipher/registry"
	"explframe/internal/stats"
)

// Collector is the cipher-agnostic persistent-fault collector: it
// accumulates faulty ciphertexts of any registered cipher and recovers keys
// from the missing-value and frequency statistics of the cipher's
// last-round cells.
//
// The analysis only uses registry.Cipher metadata: LastRoundCells inverts
// the final linear layer, so cell i of every observation equals
// S(x_i) ^ k_i over the cipher's EntryBits-wide alphabet.  A single
// corrupted table entry removes one value y* = S_orig[v*] from the S-box
// image, so the value y* ^ k_i vanishes from cell i — and the corrupted
// entry's new value y' appears with doubled probability.  Everything else
// (alphabet size, cell count, last-round key assembly, master-key
// completion) comes from the interface, which is what lets one collector
// serve AES-128, PRESENT-80 and the LILLIPUT-style victim alike.
type Collector struct {
	c       registry.Cipher
	cells   int
	vals    int
	mask    byte
	seen    [][]bool
	count   [][]uint64
	n       uint64
	cellBuf []byte // scratch for LastRoundCells, keeps Observe allocation-free
}

// NewCollector returns an empty collector for the given cipher.
func NewCollector(c registry.Cipher) *Collector {
	cells := registry.Cells(c)
	vals := 1 << uint(c.EntryBits())
	col := &Collector{c: c, cells: cells, vals: vals, mask: byte(vals - 1), cellBuf: make([]byte, cells)}
	col.seen = make([][]bool, cells)
	col.count = make([][]uint64, cells)
	for i := range col.seen {
		col.seen[i] = make([]bool, vals)
		col.count[i] = make([]uint64, vals)
	}
	return col
}

// Cipher returns the cipher this collector attacks.
func (c *Collector) Cipher() registry.Cipher { return c.c }

// Observe records one ciphertext block.
func (c *Collector) Observe(ct []byte) error {
	if len(ct) != c.c.BlockSize() {
		return fmt.Errorf("pfa: %s ciphertext must be %d bytes, got %d", c.c.Name(), c.c.BlockSize(), len(ct))
	}
	c.c.LastRoundCells(c.cellBuf, ct)
	for i, cell := range c.cellBuf {
		c.seen[i][cell] = true
		c.count[i][cell]++
	}
	c.n++
	return nil
}

// ObserveBatch records a batch of ciphertext blocks in order — the
// counterpart of the registry's EncryptBatch for consumers that batch
// their faulty encryptions through the bitsliced cores.
func (c *Collector) ObserveBatch(cts [][]byte) error {
	for _, ct := range cts {
		if err := c.Observe(ct); err != nil {
			return err
		}
	}
	return nil
}

// N returns the number of observed ciphertexts.
func (c *Collector) N() uint64 { return c.n }

// Cells returns the number of last-round cell positions.
func (c *Collector) Cells() int { return c.cells }

// Missing returns the values never observed at cell position i.
func (c *Collector) Missing(i int) []byte {
	var out []byte
	for v := 0; v < c.vals; v++ {
		if !c.seen[i][v] {
			out = append(out, byte(v))
		}
	}
	return out
}

// MostFrequent returns the value observed most often at cell i and its
// count.  Under a single-entry fault it converges to y' ^ k_i.
func (c *Collector) MostFrequent(i int) (byte, uint64) {
	var best byte
	var bestN uint64
	for v := 0; v < c.vals; v++ {
		if c.count[i][v] > bestN {
			bestN = c.count[i][v]
			best = byte(v)
		}
	}
	return best, bestN
}

// ResidualEntropy returns the log2 of the remaining last-round-key space
// given the current observations: the product over cells of the number of
// still-possible key values (= missing values).  It reaches 0 when every
// cell has exactly one missing value.
func (c *Collector) ResidualEntropy() float64 {
	e := 0.0
	for i := 0; i < c.cells; i++ {
		e += stats.Log2(float64(len(c.Missing(i))))
	}
	return e
}

// missingCells returns the unique missing value of every cell, erroring
// while any cell is under- or over-determined.
func (c *Collector) missingCells() ([]byte, error) {
	miss := make([]byte, c.cells)
	for i := 0; i < c.cells; i++ {
		m := c.Missing(i)
		switch {
		case len(m) == 0:
			return nil, fmt.Errorf("%w: cell %d has no missing value", ErrInconsistent, i)
		case len(m) > 1:
			return nil, fmt.Errorf("%w: cell %d has %d candidates", ErrUnderdetermined, i, len(m))
		}
		miss[i] = m[0]
	}
	return miss, nil
}

// RecoverLastRoundKeyKnownFault recovers the last-round key when the
// attacker knows which S-box output value vanished (y*).  The ExplFrame
// attacker is in this position: templating told them exactly which bit of
// which byte flips, and the victim's table layout is public.
func (c *Collector) RecoverLastRoundKeyKnownFault(yStar byte) ([]byte, error) {
	miss, err := c.missingCells()
	if err != nil {
		return nil, err
	}
	cells := make([]byte, c.cells)
	for i, m := range miss {
		cells[i] = m ^ (yStar & c.mask)
	}
	return c.c.AssembleLastRoundKey(cells), nil
}

// RecoverMasterKnownFault completes the known-fault attack: last-round key
// via missing values, then the cipher's schedule completion.  The clean
// known pair resolves schedules the last round key does not determine and
// verifies the rest; ciphers whose schedule inverts uniquely accept a nil
// pair.
func (c *Collector) RecoverMasterKnownFault(yStar byte, plaintext, ciphertext []byte) ([]byte, error) {
	last, err := c.RecoverLastRoundKeyKnownFault(yStar)
	if err != nil {
		return nil, err
	}
	m, ok := c.c.RecoverMaster(last, plaintext, ciphertext)
	if !ok {
		return nil, fmt.Errorf("%w: schedule completion found no key matching the known pair", ErrInconsistent)
	}
	return m, nil
}

// RecoverMasterUnknownFault tries every possible vanished value, resolving
// each hypothesis against the clean known pair.
func (c *Collector) RecoverMasterUnknownFault(plaintext, ciphertext []byte) ([]byte, error) {
	miss, err := c.missingCells()
	if err != nil {
		return nil, err // underdetermined: more data, not more guesses
	}
	cells := make([]byte, c.cells)
	for y := 0; y < c.vals; y++ {
		for i, m := range miss {
			cells[i] = m ^ byte(y)
		}
		if master, ok := c.c.RecoverMaster(c.c.AssembleLastRoundKey(cells), plaintext, ciphertext); ok {
			return master, nil
		}
	}
	return nil, fmt.Errorf("%w: no vanished-value hypothesis matches the known pair", ErrInconsistent)
}

// RecoverLastRoundKeyML recovers the last-round key by maximum likelihood:
// under a single-entry fault S[v*] = y', the value y' ^ k_i appears with
// doubled probability at every cell, so the most frequent value reveals the
// key cell once the count gap is statistically significant.  yPrime is the
// corrupted entry's new value (the ExplFrame attacker knows it: y* with the
// templated bit flipped).  The estimate is returned together with its
// weakest cell's z-score; callers gate on confidence.
func (c *Collector) RecoverLastRoundKeyML(yPrime byte) (key []byte, minZ float64) {
	cells := make([]byte, c.cells)
	minZ = 1e18
	for i := 0; i < c.cells; i++ {
		var best, second uint64
		var bestV byte
		for v := 0; v < c.vals; v++ {
			n := c.count[i][v]
			if n > best {
				second = best
				best = n
				bestV = byte(v)
			} else if n > second {
				second = n
			}
		}
		cells[i] = bestV ^ (yPrime & c.mask)
		// z-score of the gap between the doubled value and the runner-up
		// under a Poisson approximation.
		var z float64
		if best > 0 {
			diff := float64(best) - float64(second)
			sd := sqrt(float64(best) + float64(second))
			if sd > 0 {
				z = diff / sd
			}
		}
		if z < minZ {
			minZ = z
		}
	}
	return c.c.AssembleLastRoundKey(cells), minZ
}

// sqrt is a dependency-light Newton square root (avoids importing math for
// one call site; the iteration converges in <8 steps for count-scale input).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 16; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// MultiFaultCandidates generalises the elimination attack to a table
// carrying several corrupted entries: yStars lists every vanished output
// value.  With m faults each cell misses exactly {y*_j ^ k_i}, which any of
// the m candidates {miss ^ y*_j} explains equally well — elimination alone
// therefore leaves m consistent candidates per cell.  The returned
// per-cell candidate sets feed the frequency-based disambiguation in
// RecoverLastRoundKeyMultiFault.
func (c *Collector) MultiFaultCandidates(yStars []byte) ([][]byte, error) {
	if len(yStars) == 0 {
		return nil, fmt.Errorf("%w: no fault values given", ErrInconsistent)
	}
	cands := make([][]byte, c.cells)
	for i := 0; i < c.cells; i++ {
		miss := c.Missing(i)
		if len(miss) < len(yStars) {
			return cands, fmt.Errorf("%w: cell %d misses %d values, expected %d",
				ErrInconsistent, i, len(miss), len(yStars))
		}
		if len(miss) > len(yStars) {
			return cands, fmt.Errorf("%w: cell %d has %d missing values for %d faults",
				ErrUnderdetermined, i, len(miss), len(yStars))
		}
		missSet := make(map[byte]bool, len(miss))
		for _, m := range miss {
			missSet[m] = true
		}
		seen := make(map[byte]bool)
		for _, m := range miss {
			for _, y := range yStars {
				k := m ^ (y & c.mask)
				if seen[k] {
					continue
				}
				consistent := true
				for _, yy := range yStars {
					if !missSet[(yy&c.mask)^k] {
						consistent = false
						break
					}
				}
				if consistent {
					seen[k] = true
					cands[i] = append(cands[i], k)
				}
			}
		}
		if len(cands[i]) == 0 {
			return cands, fmt.Errorf("%w: cell %d matches no key", ErrInconsistent, i)
		}
	}
	return cands, nil
}

// multiFaultScore sums the frequency counts the corrupted entries' new
// values y'_j would produce at cell i under key cell k.
func (c *Collector) multiFaultScore(i int, k byte, yPrimes []byte) uint64 {
	var s uint64
	for _, y := range yPrimes {
		s += c.count[i][(y&c.mask)^k]
	}
	return s
}

// RecoverLastRoundKeyMultiFault resolves the multi-fault candidate sets
// with frequency information: the corrupted entries now emit the values
// y'_j, so {y'_j ^ k_i} carry roughly doubled counts at every cell.
// yPrimes[j] must be the corrupted value of the entry whose original output
// was yStars[j] (the ExplFrame attacker knows both from templating).
func (c *Collector) RecoverLastRoundKeyMultiFault(yStars, yPrimes []byte) ([]byte, error) {
	if len(yStars) != len(yPrimes) {
		return nil, fmt.Errorf("%w: %d vanished values but %d corrupted values",
			ErrInconsistent, len(yStars), len(yPrimes))
	}
	cands, err := c.MultiFaultCandidates(yStars)
	if err != nil {
		return nil, err
	}
	cells := make([]byte, c.cells)
	for i := 0; i < c.cells; i++ {
		var bestK byte
		var bestScore uint64
		tie := false
		for _, k := range cands[i] {
			score := c.multiFaultScore(i, k, yPrimes)
			switch {
			case score > bestScore:
				bestScore, bestK, tie = score, k, false
			case score == bestScore:
				tie = true
			}
		}
		if tie && len(cands[i]) > 1 {
			return nil, fmt.Errorf("%w: cell %d frequency tie", ErrUnderdetermined, i)
		}
		cells[i] = bestK
	}
	return c.c.AssembleLastRoundKey(cells), nil
}

// RecoverMasterMultiFaultWithPair completes the multi-fault attack against
// a degenerate case frequency scoring cannot break: when every fault flips
// the same bit index, the per-cell ciphertext distributions are identical
// under the m candidate keys and only the key schedule can disambiguate.
// The function enumerates the per-cell candidates (frequency-ordered, so
// the common non-degenerate case exits on the first combination) and checks
// each schedule completion against one clean known pair.
//
// Enumeration is budgeted at ~2^20 schedule inversions via the cipher's
// RecoverCost: AES-128's cheap unique inversion affords the full 2^20
// combinations, while the 80-bit ciphers' 2^16-deep completions fall back
// to verifying only the frequency-best key (their degenerate same-bit case
// stays underdetermined, which the caller reports).
func (c *Collector) RecoverMasterMultiFaultWithPair(yStars, yPrimes, plaintext, ciphertext []byte) ([]byte, error) {
	if len(yStars) != len(yPrimes) {
		return nil, fmt.Errorf("%w: %d vanished values but %d corrupted values",
			ErrInconsistent, len(yStars), len(yPrimes))
	}
	cands, err := c.MultiFaultCandidates(yStars)
	if err != nil {
		return nil, err
	}
	// Order each cell's candidates by descending frequency score.
	budget := 1 << 20 / c.c.RecoverCost()
	if budget < 1 {
		budget = 1
	}
	total := 1
	affordable := true
	for i := 0; i < c.cells; i++ {
		list := cands[i]
		for a := 1; a < len(list); a++ {
			for b := a; b > 0 && c.multiFaultScore(i, list[b], yPrimes) > c.multiFaultScore(i, list[b-1], yPrimes); b-- {
				list[b], list[b-1] = list[b-1], list[b]
			}
		}
		if total *= len(list); total > budget {
			affordable = false
			total = budget + 1 // clamp so the product cannot overflow
		}
	}
	if !affordable {
		last, err := c.RecoverLastRoundKeyMultiFault(yStars, yPrimes)
		if err != nil {
			return nil, err
		}
		master, ok := c.c.RecoverMaster(last, plaintext, ciphertext)
		if !ok {
			return nil, fmt.Errorf("%w: frequency-ranked key fails the known pair (search cap reached)", ErrUnderdetermined)
		}
		return master, nil
	}
	idx := make([]int, c.cells)
	cells := make([]byte, c.cells)
	for {
		for i := range cells {
			cells[i] = cands[i][idx[i]]
		}
		if master, ok := c.c.RecoverMaster(c.c.AssembleLastRoundKey(cells), plaintext, ciphertext); ok {
			return master, nil
		}
		// Odometer increment over the candidate lists.
		pos := 0
		for pos < c.cells {
			idx[pos]++
			if idx[pos] < len(cands[pos]) {
				break
			}
			idx[pos] = 0
			pos++
		}
		if pos == c.cells {
			return nil, fmt.Errorf("%w: no combination matches the known pair", ErrInconsistent)
		}
	}
}
