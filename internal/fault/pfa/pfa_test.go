package pfa

import (
	"bytes"
	"errors"
	"testing"

	"explframe/internal/cipher/aes"
	"explframe/internal/cipher/present"
	"explframe/internal/stats"
)

// faultyAESStream produces n ciphertexts of random plaintexts under a
// cipher whose S-box entry vIdx has bit 'bit' flipped.
func faultyAESStream(t *testing.T, key []byte, vIdx int, bit uint8, n int, rng *stats.RNG, c *AESCollector) (yStar byte) {
	t.Helper()
	ks, err := aes.Expand(key)
	if err != nil {
		t.Fatal(err)
	}
	faulty := aes.SBox()
	yStar = faulty[vIdx]
	faulty[vIdx] ^= 1 << bit
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	for i := 0; i < n; i++ {
		rng.Bytes(pt)
		aes.EncryptBlock(ks, &faulty, ct, pt)
		if err := c.Observe(ct); err != nil {
			t.Fatal(err)
		}
	}
	return yStar
}

func TestAESKnownFaultRecovery(t *testing.T) {
	key := []byte("0123456789abcdef")
	rng := stats.NewRNG(7)
	c := NewAESCollector()
	yStar := faultyAESStream(t, key, 0x42, 3, 6000, rng, c)

	k10, err := c.RecoverLastRoundKeyKnownFault(yStar)
	if err != nil {
		t.Fatalf("recovery failed after %d ciphertexts: %v", c.N(), err)
	}
	ks, _ := aes.Expand(key)
	if k10 != ks.RoundKey(10) {
		t.Fatalf("recovered %x want %x", k10, ks.RoundKey(10))
	}

	master, err := c.RecoverMasterKnownFault(yStar)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(master[:], key) {
		t.Fatalf("master %x want %x", master, key)
	}
}

func TestAESUnknownFaultRecovery(t *testing.T) {
	key := []byte("fedcba9876543210")
	rng := stats.NewRNG(11)
	c := NewAESCollector()
	faultyAESStream(t, key, 0x99, 6, 6000, rng, c)

	// One clean known pair disambiguates the 256 candidates.
	ks, _ := aes.Expand(key)
	sb := aes.SBox()
	pt := []byte("known plaintext!")
	ct := make([]byte, 16)
	aes.EncryptBlock(ks, &sb, ct, pt)

	cands, err := c.CandidateKeysUnknownFault()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 256 {
		t.Fatalf("%d candidates", len(cands))
	}
	master, err := c.RecoverMasterUnknownFault(pt, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(master[:], key) {
		t.Fatalf("master %x want %x", master, key)
	}
}

func TestAESUnderdeterminedWithFewCiphertexts(t *testing.T) {
	key := []byte("0123456789abcdef")
	rng := stats.NewRNG(3)
	c := NewAESCollector()
	yStar := faultyAESStream(t, key, 0x10, 0, 40, rng, c)
	if _, err := c.RecoverLastRoundKeyKnownFault(yStar); !errors.Is(err, ErrUnderdetermined) {
		t.Fatalf("expected underdetermined, got %v", err)
	}
	if e := c.ResidualEntropy(); e <= 0 {
		t.Fatalf("residual entropy should be positive at n=40, got %f", e)
	}
}

// Residual entropy must be non-increasing in the number of ciphertexts and
// reach zero by the time recovery succeeds.
func TestAESEntropyMonotone(t *testing.T) {
	key := []byte("entropy-test-key")
	rng := stats.NewRNG(5)
	ks, _ := aes.Expand(key)
	faulty := aes.SBox()
	yStar := faulty[0x77]
	faulty[0x77] ^= 0x20

	c := NewAESCollector()
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	prev := 128.0
	for step := 0; step < 14; step++ {
		for i := 0; i < 500; i++ {
			rng.Bytes(pt)
			aes.EncryptBlock(ks, &faulty, ct, pt)
			c.Observe(ct)
		}
		e := c.ResidualEntropy()
		if e > prev+1e-9 {
			t.Fatalf("entropy increased: %f -> %f", prev, e)
		}
		prev = e
	}
	if prev != 0 {
		t.Fatalf("entropy %f after %d ciphertexts", prev, c.N())
	}
	if _, err := c.RecoverLastRoundKeyKnownFault(yStar); err != nil {
		t.Fatal(err)
	}
}

// A fault-free stream must be detected as inconsistent (no missing value).
func TestAESCleanStreamInconsistent(t *testing.T) {
	key := []byte("0123456789abcdef")
	ks, _ := aes.Expand(key)
	sb := aes.SBox()
	rng := stats.NewRNG(9)
	c := NewAESCollector()
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	for i := 0; i < 8000; i++ {
		rng.Bytes(pt)
		aes.EncryptBlock(ks, &sb, ct, pt)
		c.Observe(ct)
	}
	if _, err := c.RecoverLastRoundKeyKnownFault(0x63); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("expected inconsistent, got %v", err)
	}
}

func TestAESObserveRejectsBadLength(t *testing.T) {
	c := NewAESCollector()
	if err := c.Observe(make([]byte, 15)); err == nil {
		t.Fatal("short ciphertext accepted")
	}
}

func TestAESMostFrequentConvergesToDoubledValue(t *testing.T) {
	key := []byte("0123456789abcdef")
	ks, _ := aes.Expand(key)
	faulty := aes.SBox()
	yStar := faulty[0x42]
	faulty[0x42] ^= 0x08
	yPrime := faulty[0x42]

	rng := stats.NewRNG(13)
	c := NewAESCollector()
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	for i := 0; i < 20000; i++ {
		rng.Bytes(pt)
		aes.EncryptBlock(ks, &faulty, ct, pt)
		c.Observe(ct)
	}
	k10 := ks.RoundKey(10)
	hits := 0
	for i := 0; i < 16; i++ {
		mf, _ := c.MostFrequent(i)
		if mf == yPrime^k10[i] {
			hits++
		}
	}
	if hits < 12 { // statistical: allow a few positions to miss at n=20k
		t.Fatalf("most-frequent matched y'^k at only %d/16 positions", hits)
	}
	_ = yStar
}

func TestPresentKnownFaultRecovery(t *testing.T) {
	key := []byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef, 0x01, 0x23}
	ks, _ := present.Expand(key)
	faulty := present.SBox()
	yStar := faulty[0x5]
	faulty[0x5] ^= 0x2

	rng := stats.NewRNG(17)
	c := NewPresentCollector()
	for i := 0; i < 400; i++ {
		c.Observe(present.Encrypt(ks, &faulty, rng.Uint64()))
	}
	k32, err := c.RecoverLastRoundKeyKnownFault(yStar)
	if err != nil {
		t.Fatalf("after %d ciphertexts: %v", c.N(), err)
	}
	if k32 != ks.RoundKey(32) {
		t.Fatalf("K32 = %016x want %016x", k32, ks.RoundKey(32))
	}

	// Master key recovery with one clean known pair.
	sb := present.SBox()
	pt := uint64(0x1122334455667788)
	ct := present.Encrypt(ks, &sb, pt)
	master, err := c.RecoverMasterKnownFault(yStar, pt, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(master, key) {
		t.Fatalf("master %x want %x", master, key)
	}
}

func TestPresentUnknownFaultRecovery(t *testing.T) {
	key := []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22, 0x33, 0x44, 0x55}
	ks, _ := present.Expand(key)
	faulty := present.SBox()
	faulty[0xA] ^= 0x4

	rng := stats.NewRNG(23)
	c := NewPresentCollector()
	for i := 0; i < 400; i++ {
		c.Observe(present.Encrypt(ks, &faulty, rng.Uint64()))
	}
	sb := present.SBox()
	pt := uint64(0xfeedface)
	ct := present.Encrypt(ks, &sb, pt)
	master, err := c.RecoverMasterUnknownFault(pt, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(master, key) {
		t.Fatalf("master %x want %x", master, key)
	}
}

func TestPresentEntropyDecreases(t *testing.T) {
	key := make([]byte, 10)
	ks, _ := present.Expand(key)
	faulty := present.SBox()
	faulty[0x0] ^= 0x1

	rng := stats.NewRNG(29)
	c := NewPresentCollector()
	if e := c.ResidualEntropy(); e != 64 {
		t.Fatalf("empty collector entropy = %f, want 64", e)
	}
	for i := 0; i < 300; i++ {
		c.Observe(present.Encrypt(ks, &faulty, rng.Uint64()))
	}
	if e := c.ResidualEntropy(); e != 0 {
		t.Fatalf("entropy after 300 = %f", e)
	}
}

// PRESENT nibble positions see only 15 of 16 values under a fault; with few
// ciphertexts recovery must report underdetermined, not wrong keys.
func TestPresentUnderdetermined(t *testing.T) {
	key := make([]byte, 10)
	ks, _ := present.Expand(key)
	faulty := present.SBox()
	faulty[0x7] ^= 0x8
	c := NewPresentCollector()
	c.Observe(present.Encrypt(ks, &faulty, 1))
	if _, err := c.RecoverLastRoundKeyKnownFault(0); !errors.Is(err, ErrUnderdetermined) {
		t.Fatalf("expected underdetermined, got %v", err)
	}
}
