package pfa

import (
	"bytes"
	"errors"
	"testing"

	"explframe/internal/cipher/registry"
	"explframe/internal/stats"
)

// collectFaulty streams n faulty ciphertexts of cipher c into col and
// returns the vanished and corrupted entry values.
func collectFaulty(t *testing.T, c registry.Cipher, key []byte, entry, bit, n int, rng *stats.RNG, col *Collector) (yStar, yPrime byte) {
	t.Helper()
	inst, err := c.New(key)
	if err != nil {
		t.Fatal(err)
	}
	faulty := c.SBox()
	yStar = faulty[entry]
	faulty[entry] ^= byte(1 << uint(bit))
	yPrime = faulty[entry]
	pt := make([]byte, c.BlockSize())
	ct := make([]byte, c.BlockSize())
	for i := 0; i < n; i++ {
		rng.Bytes(pt)
		inst.Encrypt(faulty, ct, pt)
		if err := col.Observe(ct); err != nil {
			t.Fatal(err)
		}
	}
	return yStar, yPrime
}

// cleanPair returns one plaintext/ciphertext pair under the canonical
// table, the pre-fault traffic the attacker can observe.
func cleanPair(t *testing.T, c registry.Cipher, key []byte, rng *stats.RNG) (pt, ct []byte) {
	t.Helper()
	inst, err := c.New(key)
	if err != nil {
		t.Fatal(err)
	}
	pt = make([]byte, c.BlockSize())
	rng.Bytes(pt)
	ct = make([]byte, c.BlockSize())
	inst.Encrypt(c.SBox(), ct, pt)
	return pt, ct
}

// The generic collector must recover the master key of every registered
// cipher, known-fault and unknown-fault alike, with no cipher-specific
// code in the loop.
func TestGenericKnownAndUnknownFaultRecovery(t *testing.T) {
	for _, name := range registry.Names() {
		c := registry.MustGet(name)
		t.Run(name, func(t *testing.T) {
			rng := stats.NewRNG(31)
			key := make([]byte, c.KeyBytes())
			rng.Bytes(key)
			pt, ct := cleanPair(t, c, key, rng)

			col := NewCollector(c)
			entry := rng.Intn(c.TableLen())
			bit := rng.Intn(c.EntryBits())
			yStar, _ := collectFaulty(t, c, key, entry, bit, 40*c.TableLen(), rng, col)

			if col.Cells() != registry.Cells(c) {
				t.Fatalf("cells = %d", col.Cells())
			}
			if e := col.ResidualEntropy(); e != 0 {
				t.Fatalf("entropy %f after %d ciphertexts", e, col.N())
			}
			master, err := col.RecoverMasterKnownFault(yStar, pt, ct)
			if err != nil {
				t.Fatalf("known-fault recovery: %v", err)
			}
			if !bytes.Equal(master, key) {
				t.Fatalf("known-fault recovered %x want %x", master, key)
			}
			master, err = col.RecoverMasterUnknownFault(pt, ct)
			if err != nil {
				t.Fatalf("unknown-fault recovery: %v", err)
			}
			if !bytes.Equal(master, key) {
				t.Fatalf("unknown-fault recovered %x want %x", master, key)
			}
		})
	}
}

// Sparse observations must report underdetermined for every cipher, and a
// clean stream must be flagged inconsistent.
func TestGenericErrorTaxonomy(t *testing.T) {
	for _, name := range registry.Names() {
		c := registry.MustGet(name)
		t.Run(name, func(t *testing.T) {
			rng := stats.NewRNG(37)
			key := make([]byte, c.KeyBytes())
			rng.Bytes(key)

			col := NewCollector(c)
			collectFaulty(t, c, key, 0, 0, 2, rng, col)
			if _, err := col.RecoverLastRoundKeyKnownFault(0); !errors.Is(err, ErrUnderdetermined) {
				t.Fatalf("sparse data: %v", err)
			}

			clean := NewCollector(c)
			inst, _ := c.New(key)
			pt := make([]byte, c.BlockSize())
			ct := make([]byte, c.BlockSize())
			for i := 0; i < 60*c.TableLen(); i++ {
				rng.Bytes(pt)
				inst.Encrypt(c.SBox(), ct, pt)
				clean.Observe(ct)
			}
			if _, err := clean.RecoverLastRoundKeyKnownFault(0); !errors.Is(err, ErrInconsistent) {
				t.Fatalf("clean stream: %v", err)
			}
			if err := clean.Observe(make([]byte, c.BlockSize()+1)); err == nil {
				t.Fatal("bad ciphertext length accepted")
			}
		})
	}
}

// The ML path must converge for the nibble ciphers too.
func TestGenericMLRecovery(t *testing.T) {
	c := registry.MustGet("lilliput-80")
	rng := stats.NewRNG(41)
	key := make([]byte, c.KeyBytes())
	rng.Bytes(key)
	col := NewCollector(c)
	yStar, yPrime := collectFaulty(t, c, key, 0x9, 1, 3000, rng, col)

	last, z := col.RecoverLastRoundKeyML(yPrime)
	if z < 2 {
		t.Fatalf("z-score %.2f too low at n=3000", z)
	}
	want, err := col.RecoverLastRoundKeyKnownFault(yStar)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(last, want) {
		t.Fatalf("ML recovered %x, elimination %x", last, want)
	}
}

// Multi-fault recovery on a 4-bit cipher: two corrupted entries flipping
// different bit indices are resolved by frequency scoring plus one
// known-pair verification (the odometer budget excludes a 2^16-deep
// enumeration, so this exercises the frequency fallback).
func TestGenericMultiFaultNibbleCipher(t *testing.T) {
	c := registry.MustGet("present-80")
	rng := stats.NewRNG(43)
	key := make([]byte, c.KeyBytes())
	rng.Bytes(key)
	pt, ct := cleanPair(t, c, key, rng)

	inst, _ := c.New(key)
	faulty := c.SBox()
	yStars := []byte{faulty[0x2], faulty[0xB]}
	faulty[0x2] ^= 0x4
	faulty[0xB] ^= 0x1
	yPrimes := []byte{faulty[0x2], faulty[0xB]}

	col := NewCollector(c)
	block := make([]byte, c.BlockSize())
	out := make([]byte, c.BlockSize())
	for i := 0; i < 4000; i++ {
		rng.Bytes(block)
		inst.Encrypt(faulty, out, block)
		col.Observe(out)
	}
	cands, err := col.MultiFaultCandidates(yStars)
	if err != nil {
		t.Fatal(err)
	}
	for i, list := range cands {
		if len(list) != 2 {
			t.Fatalf("cell %d has %d candidates, want 2 (XOR symmetry)", i, len(list))
		}
	}
	master, err := col.RecoverMasterMultiFaultWithPair(yStars, yPrimes, pt, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(master, key) {
		t.Fatalf("multi-fault recovered %x want %x", master, key)
	}
}
