package pfa

import (
	"errors"
	"fmt"

	"explframe/internal/cipher/present"
	"explframe/internal/stats"
)

// PresentCollector accumulates faulty PRESENT ciphertexts.  The final round
// computes c = pLayer(S(x)) ^ K32, so
//
//	invPLayer(c) = S(x) ^ invPLayer(K32)
//
// nibble by nibble: with a single corrupted S-box entry, one of the 16
// possible values vanishes from every nibble position of invPLayer(c),
// revealing the corresponding nibble of invPLayer(K32).
type PresentCollector struct {
	seen  [16][16]bool
	count [16][16]uint64
	n     uint64
}

// NewPresentCollector returns an empty collector.
func NewPresentCollector() *PresentCollector { return &PresentCollector{} }

// Observe records one 64-bit ciphertext.
func (c *PresentCollector) Observe(ct uint64) {
	u := present.InvPLayer(ct)
	for i := 0; i < 16; i++ {
		n := (u >> uint(4*i)) & 0xF
		c.seen[i][n] = true
		c.count[i][n]++
	}
	c.n++
}

// N returns the number of observed ciphertexts.
func (c *PresentCollector) N() uint64 { return c.n }

// Missing returns the nibble values never observed at position i of the
// un-permuted ciphertext.
func (c *PresentCollector) Missing(i int) []byte {
	var out []byte
	for v := 0; v < 16; v++ {
		if !c.seen[i][v] {
			out = append(out, byte(v))
		}
	}
	return out
}

// ResidualEntropy returns log2 of the remaining K32 key space.
func (c *PresentCollector) ResidualEntropy() float64 {
	e := 0.0
	for i := 0; i < 16; i++ {
		e += stats.Log2(float64(len(c.Missing(i))))
	}
	return e
}

// RecoverLastRoundKeyKnownFault recovers K32 given the vanished S-box
// output value yStar (a 4-bit value).
func (c *PresentCollector) RecoverLastRoundKeyKnownFault(yStar byte) (uint64, error) {
	var kPrime uint64 // invPLayer(K32)
	for i := 0; i < 16; i++ {
		miss := c.Missing(i)
		switch {
		case len(miss) == 0:
			return 0, fmt.Errorf("%w: nibble %d has no missing value", ErrInconsistent, i)
		case len(miss) > 1:
			return 0, fmt.Errorf("%w: nibble %d has %d candidates", ErrUnderdetermined, i, len(miss))
		}
		kPrime |= uint64(miss[0]^(yStar&0xF)) << uint(4*i)
	}
	return present.PLayer(kPrime), nil
}

// RecoverMasterKnownFault completes the PRESENT-80 attack: K32 from the
// missing nibbles, then key-schedule inversion resolved against a known
// clean plaintext/ciphertext pair.
func (c *PresentCollector) RecoverMasterKnownFault(yStar byte, plaintext, ciphertext uint64) ([]byte, error) {
	k32, err := c.RecoverLastRoundKeyKnownFault(yStar)
	if err != nil {
		return nil, err
	}
	key, ok := present.RecoverMasterFromLastRound(k32, plaintext, ciphertext)
	if !ok {
		return nil, fmt.Errorf("%w: schedule inversion found no key matching the known pair", ErrInconsistent)
	}
	return key, nil
}

// RecoverMasterUnknownFault tries all 16 possible vanished values,
// resolving each against the known pair.
func (c *PresentCollector) RecoverMasterUnknownFault(plaintext, ciphertext uint64) ([]byte, error) {
	for y := byte(0); y < 16; y++ {
		key, err := c.RecoverMasterKnownFault(y, plaintext, ciphertext)
		if err == nil {
			return key, nil
		}
		if !errors.Is(err, ErrInconsistent) {
			return nil, err // underdetermined: more data, not more guesses
		}
	}
	return nil, fmt.Errorf("%w: no vanished-value hypothesis matches", ErrInconsistent)
}
