package pfa

import (
	"explframe/internal/cipher/registry"
)

// PresentCollector accumulates faulty PRESENT ciphertexts; it is the
// generic Collector specialised to PRESENT-80 with uint64 block signatures.
// The final round computes c = pLayer(S(x)) ^ K32, so
//
//	invPLayer(c) = S(x) ^ invPLayer(K32)
//
// nibble by nibble: with a single corrupted S-box entry, one of the 16
// possible values vanishes from every nibble position of invPLayer(c),
// revealing the corresponding nibble of invPLayer(K32).
type PresentCollector struct {
	g *Collector
}

// NewPresentCollector returns an empty collector.
func NewPresentCollector() *PresentCollector {
	return &PresentCollector{g: NewCollector(registry.MustGet("present-80"))}
}

// Observe records one 64-bit ciphertext.
func (c *PresentCollector) Observe(ct uint64) {
	c.g.Observe(u64Bytes(ct)) //nolint:errcheck // length is correct by construction
}

// N returns the number of observed ciphertexts.
func (c *PresentCollector) N() uint64 { return c.g.N() }

// Missing returns the nibble values never observed at position i of the
// un-permuted ciphertext.
func (c *PresentCollector) Missing(i int) []byte { return c.g.Missing(i) }

// ResidualEntropy returns log2 of the remaining K32 key space.
func (c *PresentCollector) ResidualEntropy() float64 { return c.g.ResidualEntropy() }

// RecoverLastRoundKeyKnownFault recovers K32 given the vanished S-box
// output value yStar (a 4-bit value).
func (c *PresentCollector) RecoverLastRoundKeyKnownFault(yStar byte) (uint64, error) {
	last, err := c.g.RecoverLastRoundKeyKnownFault(yStar)
	if err != nil {
		return 0, err
	}
	var k32 uint64
	for _, b := range last {
		k32 = k32<<8 | uint64(b)
	}
	return k32, nil
}

// RecoverMasterKnownFault completes the PRESENT-80 attack: K32 from the
// missing nibbles, then key-schedule inversion resolved against a known
// clean plaintext/ciphertext pair.
func (c *PresentCollector) RecoverMasterKnownFault(yStar byte, plaintext, ciphertext uint64) ([]byte, error) {
	return c.g.RecoverMasterKnownFault(yStar, u64Bytes(plaintext), u64Bytes(ciphertext))
}

// RecoverMasterUnknownFault tries all 16 possible vanished values,
// resolving each against the known pair.
func (c *PresentCollector) RecoverMasterUnknownFault(plaintext, ciphertext uint64) ([]byte, error) {
	return c.g.RecoverMasterUnknownFault(u64Bytes(plaintext), u64Bytes(ciphertext))
}

func u64Bytes(v uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}
