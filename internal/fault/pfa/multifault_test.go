package pfa

import (
	"errors"
	"testing"

	"explframe/internal/cipher/aes"
	"explframe/internal/stats"
)

// TestMLRecovery verifies the maximum-likelihood variant converges to the
// right key with a confident z-score.
func TestMLRecovery(t *testing.T) {
	key := []byte("ml-recovery-key!")
	ks, _ := aes.Expand(key)
	faulty := aes.SBox()
	faulty[0x3c] ^= 0x10
	yPrime := faulty[0x3c]

	rng := stats.NewRNG(41)
	c := NewAESCollector()
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	for i := 0; i < 25000; i++ {
		rng.Bytes(pt)
		aes.EncryptBlock(ks, &faulty, ct, pt)
		c.Observe(ct)
	}
	got, z := c.RecoverLastRoundKeyML(yPrime)
	if z < 2 {
		t.Fatalf("z-score %.2f too low at n=25000", z)
	}
	if got != ks.RoundKey(10) {
		t.Fatalf("ML recovered %x want %x", got, ks.RoundKey(10))
	}
}

// With very few ciphertexts the ML estimate must carry a low z-score, so
// callers know not to trust it.
func TestMLLowConfidenceEarly(t *testing.T) {
	key := []byte("ml-early-key-123")
	ks, _ := aes.Expand(key)
	faulty := aes.SBox()
	faulty[0x11] ^= 0x01
	yPrime := faulty[0x11]

	rng := stats.NewRNG(43)
	c := NewAESCollector()
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	for i := 0; i < 100; i++ {
		rng.Bytes(pt)
		aes.EncryptBlock(ks, &faulty, ct, pt)
		c.Observe(ct)
	}
	if _, z := c.RecoverLastRoundKeyML(yPrime); z > 3 {
		t.Fatalf("implausibly confident z=%.2f at n=100", z)
	}
}

// Two simultaneous S-box faults: elimination leaves two candidates per
// position; the frequency pass resolves them.
func TestMultiFaultRecovery(t *testing.T) {
	key := []byte("multifault-key-1")
	ks, _ := aes.Expand(key)
	faulty := aes.SBox()
	yStars := []byte{faulty[0x20], faulty[0x85]}
	faulty[0x20] ^= 0x40
	faulty[0x85] ^= 0x02
	yPrimes := []byte{faulty[0x20], faulty[0x85]}

	rng := stats.NewRNG(47)
	c := NewAESCollector()
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	for i := 0; i < 30000; i++ {
		rng.Bytes(pt)
		aes.EncryptBlock(ks, &faulty, ct, pt)
		c.Observe(ct)
	}

	cands, err := c.MultiFaultCandidates(yStars)
	if err != nil {
		t.Fatal(err)
	}
	k10 := ks.RoundKey(10)
	for i := 0; i < 16; i++ {
		if len(cands[i]) != 2 {
			t.Fatalf("position %d has %d candidates, want 2 (XOR symmetry)", i, len(cands[i]))
		}
		found := false
		for _, k := range cands[i] {
			if k == k10[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("true key byte eliminated at position %d", i)
		}
	}

	got, err := c.RecoverLastRoundKeyMultiFault(yStars, yPrimes)
	if err != nil {
		t.Fatal(err)
	}
	if got != k10 {
		t.Fatalf("multi-fault recovered %x want %x", got, k10)
	}
	master := aes.RecoverMasterFromLastRound(got)
	if string(master[:]) != string(key) {
		t.Fatalf("master %x want %x", master, key)
	}
}

func TestMultiFaultErrors(t *testing.T) {
	c := NewAESCollector()
	if _, err := c.MultiFaultCandidates(nil); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("empty yStars: %v", err)
	}
	// Too few ciphertexts: more missing values than faults.
	key := []byte("multifault-key-2")
	ks, _ := aes.Expand(key)
	faulty := aes.SBox()
	faulty[0x01] ^= 0x04
	yStar := []byte{aes.SBox()[0x01]}
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	aes.EncryptBlock(ks, &faulty, ct, pt)
	c.Observe(ct)
	if _, err := c.MultiFaultCandidates(yStar); !errors.Is(err, ErrUnderdetermined) {
		t.Fatalf("sparse data: %v", err)
	}
	if _, err := c.RecoverLastRoundKeyMultiFault([]byte{1, 2}, []byte{3}); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("length mismatch: %v", err)
	}
}

// Single-fault input must reduce MultiFaultCandidates to the plain
// elimination result.
func TestMultiFaultReducesToSingle(t *testing.T) {
	key := []byte("single-as-multi!")
	ks, _ := aes.Expand(key)
	faulty := aes.SBox()
	yStar := faulty[0x7a]
	faulty[0x7a] ^= 0x80

	rng := stats.NewRNG(53)
	c := NewAESCollector()
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	for i := 0; i < 8000; i++ {
		rng.Bytes(pt)
		aes.EncryptBlock(ks, &faulty, ct, pt)
		c.Observe(ct)
	}
	cands, err := c.MultiFaultCandidates([]byte{yStar})
	if err != nil {
		t.Fatal(err)
	}
	single, err := c.RecoverLastRoundKeyKnownFault(yStar)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if len(cands[i]) != 1 || cands[i][0] != single[i] {
			t.Fatalf("position %d: multi %v vs single %#x", i, cands[i], single[i])
		}
	}
}
