// Package pfa implements Persistent Fault Analysis (Zhang et al., TCHES
// 2018 — reference [12] of the paper): offline key recovery from
// ciphertexts produced by a cipher whose S-box table carries a persistent
// fault, exactly the state a Rowhammer flip in the victim's table page
// leaves behind.
//
// The core observation, for any SPN whose final round computes
// ct = L(S(x)) ^ K with a GF(2)-linear L: inverting L cell-wise gives
//
//	cell_i(invL(ct)) = S(x_i) ^ k_i
//
// If S-box entry v* is corrupted from y* = S_orig[v*] to some y' != y*, the
// value y* vanishes from the S-box image, so cell i never takes the value
// y* ^ k_i; conversely y' appears with doubled probability.  Observing
// enough ciphertexts, the missing value at each cell reveals the
// corresponding last-round key cell.
//
// The Collector runs this analysis over any cipher registered in
// internal/cipher/registry; AESCollector and PresentCollector are
// compatibility wrappers that pin the cipher and keep the historical
// fixed-size signatures.
package pfa

import (
	"errors"

	"explframe/internal/cipher/registry"
)

// Errors returned by the recovery functions.
var (
	// ErrUnderdetermined reports that some cell position still has more
	// than one missing value: more ciphertexts are needed.
	ErrUnderdetermined = errors.New("pfa: key underdetermined, need more ciphertexts")
	// ErrInconsistent reports observations incompatible with the assumed
	// persistent S-box fault (e.g. no missing value at some position).
	ErrInconsistent = errors.New("pfa: observations inconsistent with the fault hypothesis")
)

// AESCollector accumulates faulty AES ciphertexts; it is the generic
// Collector specialised to AES-128 with [16]byte key signatures.
type AESCollector struct {
	g *Collector
}

// NewAESCollector returns an empty collector.
func NewAESCollector() *AESCollector {
	return &AESCollector{g: NewCollector(registry.MustGet("aes-128"))}
}

// Observe records one 16-byte ciphertext.
func (c *AESCollector) Observe(ct []byte) error { return c.g.Observe(ct) }

// N returns the number of observed ciphertexts.
func (c *AESCollector) N() uint64 { return c.g.N() }

// Missing returns the values never observed at byte position i.
func (c *AESCollector) Missing(i int) []byte { return c.g.Missing(i) }

// MostFrequent returns the value observed most often at position i and its
// count.  Under a single-entry fault it converges to y' ^ k10[i].
func (c *AESCollector) MostFrequent(i int) (byte, uint64) { return c.g.MostFrequent(i) }

// ResidualEntropy returns the log2 of the remaining key-space size for the
// last round key given the current observations.
func (c *AESCollector) ResidualEntropy() float64 { return c.g.ResidualEntropy() }

// RecoverLastRoundKeyKnownFault recovers the AES last-round key when the
// attacker knows which S-box output value vanished (y*).
func (c *AESCollector) RecoverLastRoundKeyKnownFault(yStar byte) ([16]byte, error) {
	var key [16]byte
	last, err := c.g.RecoverLastRoundKeyKnownFault(yStar)
	if err != nil {
		return key, err
	}
	copy(key[:], last)
	return key, nil
}

// CandidateKeysUnknownFault returns the 256 last-round-key candidates when
// the vanished value y* is unknown: each choice of y* yields one key.  The
// caller disambiguates with a known plaintext/ciphertext pair or the key
// schedule.  An error is returned while any position is underdetermined.
func (c *AESCollector) CandidateKeysUnknownFault() ([][16]byte, error) {
	miss, err := c.g.missingCells()
	if err != nil {
		return nil, err
	}
	keys := make([][16]byte, 256)
	for y := 0; y < 256; y++ {
		for i := 0; i < 16; i++ {
			keys[y][i] = miss[i] ^ byte(y)
		}
	}
	return keys, nil
}

// RecoverLastRoundKeyML recovers the last round key by maximum likelihood
// from the corrupted entry's new value yPrime; see Collector.
func (c *AESCollector) RecoverLastRoundKeyML(yPrime byte) (key [16]byte, minZ float64) {
	last, minZ := c.g.RecoverLastRoundKeyML(yPrime)
	copy(key[:], last)
	return key, minZ
}

// MultiFaultCandidates generalises the elimination attack to a table
// carrying several corrupted entries; see Collector.MultiFaultCandidates.
func (c *AESCollector) MultiFaultCandidates(yStars []byte) ([16][]byte, error) {
	var out [16][]byte
	cands, err := c.g.MultiFaultCandidates(yStars)
	copy(out[:], cands)
	return out, err
}

// RecoverLastRoundKeyMultiFault resolves the multi-fault candidate sets
// with frequency information; see Collector.RecoverLastRoundKeyMultiFault.
func (c *AESCollector) RecoverLastRoundKeyMultiFault(yStars, yPrimes []byte) ([16]byte, error) {
	var key [16]byte
	last, err := c.g.RecoverLastRoundKeyMultiFault(yStars, yPrimes)
	if err != nil {
		return key, err
	}
	copy(key[:], last)
	return key, nil
}

// RecoverMasterMultiFaultWithPair completes the multi-fault attack for
// AES-128, resolving the degenerate same-bit case against one clean known
// pair; see Collector.RecoverMasterMultiFaultWithPair.
func (c *AESCollector) RecoverMasterMultiFaultWithPair(yStars, yPrimes, plaintext, ciphertext []byte) ([16]byte, error) {
	var key [16]byte
	master, err := c.g.RecoverMasterMultiFaultWithPair(yStars, yPrimes, plaintext, ciphertext)
	if err != nil {
		return key, err
	}
	copy(key[:], master)
	return key, nil
}

// RecoverMasterKnownFault completes the attack for AES-128: last-round key
// via missing values, then key-schedule inversion to the master key.
func (c *AESCollector) RecoverMasterKnownFault(yStar byte) ([16]byte, error) {
	var key [16]byte
	master, err := c.g.RecoverMasterKnownFault(yStar, nil, nil)
	if err != nil {
		return key, err
	}
	copy(key[:], master)
	return key, nil
}

// RecoverMasterUnknownFault disambiguates the 256 unknown-fault candidates
// with one known plaintext/ciphertext pair encrypted under the *clean*
// cipher (e.g. captured before the fault was planted).
func (c *AESCollector) RecoverMasterUnknownFault(plaintext, ciphertext []byte) ([16]byte, error) {
	var key [16]byte
	master, err := c.g.RecoverMasterUnknownFault(plaintext, ciphertext)
	if err != nil {
		return key, err
	}
	copy(key[:], master)
	return key, nil
}
