// Package pfa implements Persistent Fault Analysis (Zhang et al., TCHES
// 2018 — reference [12] of the paper) for AES and PRESENT: offline key
// recovery from ciphertexts produced by a cipher whose S-box table carries a
// persistent single-entry fault, exactly the state a Rowhammer flip in the
// victim's table page leaves behind.
//
// The core observation for AES: the final round computes
//
//	c[i] = S[state[shift(i)]] ^ k10[i]
//
// If S-box entry v* is corrupted from y* = S_orig[v*] to some y' != y*, the
// value y* vanishes from the S-box image, so ciphertext byte i never takes
// the value y* ^ k10[i]; conversely y' appears with doubled probability.
// Observing enough ciphertexts, the missing value at each byte position
// reveals the corresponding last-round key byte.
package pfa

import (
	"errors"
	"fmt"

	"explframe/internal/cipher/aes"
	"explframe/internal/stats"
)

// AESCollector accumulates faulty AES ciphertexts and exposes the
// missing-value and frequency statistics the attack needs.
type AESCollector struct {
	seen  [16][256]bool
	count [16][256]uint64
	n     uint64
}

// NewAESCollector returns an empty collector.
func NewAESCollector() *AESCollector { return &AESCollector{} }

// Observe records one 16-byte ciphertext.
func (c *AESCollector) Observe(ct []byte) error {
	if len(ct) != aes.BlockSize {
		return fmt.Errorf("pfa: ciphertext must be %d bytes, got %d", aes.BlockSize, len(ct))
	}
	for i, b := range ct {
		c.seen[i][b] = true
		c.count[i][b]++
	}
	c.n++
	return nil
}

// N returns the number of observed ciphertexts.
func (c *AESCollector) N() uint64 { return c.n }

// Missing returns the values never observed at byte position i.
func (c *AESCollector) Missing(i int) []byte {
	var out []byte
	for v := 0; v < 256; v++ {
		if !c.seen[i][v] {
			out = append(out, byte(v))
		}
	}
	return out
}

// MostFrequent returns the value observed most often at position i and its
// count.  Under a single-entry fault it converges to y' ^ k10[i].
func (c *AESCollector) MostFrequent(i int) (byte, uint64) {
	var best byte
	var bestN uint64
	for v := 0; v < 256; v++ {
		if c.count[i][v] > bestN {
			bestN = c.count[i][v]
			best = byte(v)
		}
	}
	return best, bestN
}

// ResidualEntropy returns the log2 of the remaining key-space size for the
// last round key given the current observations: the product over positions
// of the number of still-possible key bytes (= missing values).  It reaches
// 0 when every position has exactly one missing value.
func (c *AESCollector) ResidualEntropy() float64 {
	e := 0.0
	for i := 0; i < 16; i++ {
		e += stats.Log2(float64(len(c.Missing(i))))
	}
	return e
}

// Errors returned by the recovery functions.
var (
	// ErrUnderdetermined reports that some byte position still has more
	// than one missing value: more ciphertexts are needed.
	ErrUnderdetermined = errors.New("pfa: key underdetermined, need more ciphertexts")
	// ErrInconsistent reports observations incompatible with a single
	// persistent S-box fault (e.g. no missing value at some position).
	ErrInconsistent = errors.New("pfa: observations inconsistent with a single-entry fault")
)

// RecoverLastRoundKeyKnownFault recovers the AES last-round key when the
// attacker knows which S-box output value vanished (y*).  The ExplFrame
// attacker is in this position: templating told them exactly which bit of
// which byte flips, and the victim's table layout is public, so
// y* = S_orig[v*] is known.
func (c *AESCollector) RecoverLastRoundKeyKnownFault(yStar byte) ([16]byte, error) {
	var key [16]byte
	for i := 0; i < 16; i++ {
		miss := c.Missing(i)
		switch {
		case len(miss) == 0:
			return key, fmt.Errorf("%w: position %d has no missing value", ErrInconsistent, i)
		case len(miss) > 1:
			return key, fmt.Errorf("%w: position %d has %d candidates", ErrUnderdetermined, i, len(miss))
		}
		key[i] = miss[0] ^ yStar
	}
	return key, nil
}

// CandidateKeysUnknownFault returns the 256 last-round-key candidates when
// the vanished value y* is unknown: each choice of y* yields one key.  The
// caller disambiguates with a known plaintext/ciphertext pair or the key
// schedule.  An error is returned while any position is underdetermined.
func (c *AESCollector) CandidateKeysUnknownFault() ([][16]byte, error) {
	var miss [16]byte
	for i := 0; i < 16; i++ {
		m := c.Missing(i)
		switch {
		case len(m) == 0:
			return nil, fmt.Errorf("%w: position %d has no missing value", ErrInconsistent, i)
		case len(m) > 1:
			return nil, fmt.Errorf("%w: position %d has %d candidates", ErrUnderdetermined, i, len(m))
		}
		miss[i] = m[0]
	}
	keys := make([][16]byte, 256)
	for y := 0; y < 256; y++ {
		for i := 0; i < 16; i++ {
			keys[y][i] = miss[i] ^ byte(y)
		}
	}
	return keys, nil
}

// RecoverLastRoundKeyML recovers the last round key by maximum likelihood:
// under a single-entry fault S[v*] = y', the value y' ^ k10[i] appears with
// doubled probability at every position, so the most frequent value reveals
// the key byte once the count gap is statistically significant.  yPrime is
// the corrupted entry's new value (the ExplFrame attacker knows it: y* with
// the templated bit flipped).  The estimate is returned together with its
// weakest position's z-score; callers gate on confidence.
func (c *AESCollector) RecoverLastRoundKeyML(yPrime byte) (key [16]byte, minZ float64) {
	minZ = 1e18
	for i := 0; i < 16; i++ {
		var best, second uint64
		var bestV byte
		for v := 0; v < 256; v++ {
			n := c.count[i][v]
			if n > best {
				second = best
				best = n
				bestV = byte(v)
			} else if n > second {
				second = n
			}
		}
		key[i] = bestV ^ yPrime
		// z-score of the gap between the doubled value and the runner-up
		// under a Poisson approximation.
		var z float64
		if best > 0 {
			diff := float64(best) - float64(second)
			sd := sqrt(float64(best) + float64(second))
			if sd > 0 {
				z = diff / sd
			}
		}
		if z < minZ {
			minZ = z
		}
	}
	return key, minZ
}

// sqrt is a dependency-light Newton square root (avoids importing math for
// one call site; the iteration converges in <8 steps for count-scale input).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 16; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// MultiFaultCandidates generalises the elimination attack to a table
// carrying several corrupted entries: yStars lists every vanished output
// value.  With m faults each position misses exactly {y*_j ^ k_i}, which
// any of the m candidates {miss ^ y*_j} explains equally well — elimination
// alone therefore leaves m consistent candidates per position (m^16 keys).
// The returned per-position candidate sets feed the frequency-based
// disambiguation in RecoverLastRoundKeyMultiFault.
func (c *AESCollector) MultiFaultCandidates(yStars []byte) ([16][]byte, error) {
	var cands [16][]byte
	if len(yStars) == 0 {
		return cands, fmt.Errorf("%w: no fault values given", ErrInconsistent)
	}
	for i := 0; i < 16; i++ {
		miss := c.Missing(i)
		if len(miss) < len(yStars) {
			return cands, fmt.Errorf("%w: position %d misses %d values, expected %d",
				ErrInconsistent, i, len(miss), len(yStars))
		}
		if len(miss) > len(yStars) {
			return cands, fmt.Errorf("%w: position %d has %d missing values for %d faults",
				ErrUnderdetermined, i, len(miss), len(yStars))
		}
		missSet := make(map[byte]bool, len(miss))
		for _, m := range miss {
			missSet[m] = true
		}
		seen := make(map[byte]bool)
		for _, m := range miss {
			for _, y := range yStars {
				k := m ^ y
				if seen[k] {
					continue
				}
				consistent := true
				for _, yy := range yStars {
					if !missSet[yy^k] {
						consistent = false
						break
					}
				}
				if consistent {
					seen[k] = true
					cands[i] = append(cands[i], k)
				}
			}
		}
		if len(cands[i]) == 0 {
			return cands, fmt.Errorf("%w: position %d matches no key", ErrInconsistent, i)
		}
	}
	return cands, nil
}

// RecoverLastRoundKeyMultiFault resolves the multi-fault candidate sets
// with frequency information: the corrupted entries now emit the values
// y'_j, so {y'_j ^ k_i} carry roughly doubled counts at every position.
// yPrimes[j] must be the corrupted value of the entry whose original output
// was yStars[j] (the ExplFrame attacker knows both from templating).
func (c *AESCollector) RecoverLastRoundKeyMultiFault(yStars, yPrimes []byte) ([16]byte, error) {
	var key [16]byte
	if len(yStars) != len(yPrimes) {
		return key, fmt.Errorf("%w: %d vanished values but %d corrupted values",
			ErrInconsistent, len(yStars), len(yPrimes))
	}
	cands, err := c.MultiFaultCandidates(yStars)
	if err != nil {
		return key, err
	}
	for i := 0; i < 16; i++ {
		var bestK byte
		var bestScore uint64
		tie := false
		for _, k := range cands[i] {
			var score uint64
			for _, y := range yPrimes {
				score += c.count[i][y^k]
			}
			switch {
			case score > bestScore:
				bestScore, bestK, tie = score, k, false
			case score == bestScore:
				tie = true
			}
		}
		if tie && len(cands[i]) > 1 {
			return key, fmt.Errorf("%w: position %d frequency tie", ErrUnderdetermined, i)
		}
		key[i] = bestK
	}
	return key, nil
}

// RecoverMasterMultiFaultWithPair completes the multi-fault attack for
// AES-128 against a degenerate case frequency scoring cannot break: when
// every fault flips the same bit index, the per-position ciphertext
// distributions are identical under the m candidate keys and only the key
// schedule can disambiguate.  The function enumerates the per-position
// candidates (frequency-ordered, so the common non-degenerate case exits on
// the first combination) and checks each key-schedule inversion against one
// clean known pair.  The combination space is capped at 2^20.
func (c *AESCollector) RecoverMasterMultiFaultWithPair(yStars, yPrimes, plaintext, ciphertext []byte) ([16]byte, error) {
	var master [16]byte
	if len(yStars) != len(yPrimes) {
		return master, fmt.Errorf("%w: %d vanished values but %d corrupted values",
			ErrInconsistent, len(yStars), len(yPrimes))
	}
	cands, err := c.MultiFaultCandidates(yStars)
	if err != nil {
		return master, err
	}
	// Order each position's candidates by descending frequency score.
	total := 1
	for i := 0; i < 16; i++ {
		score := func(k byte) uint64 {
			var s uint64
			for _, y := range yPrimes {
				s += c.count[i][y^k]
			}
			return s
		}
		list := cands[i]
		for a := 1; a < len(list); a++ {
			for b := a; b > 0 && score(list[b]) > score(list[b-1]); b-- {
				list[b], list[b-1] = list[b-1], list[b]
			}
		}
		total *= len(list)
		if total > 1<<20 {
			return master, fmt.Errorf("%w: %d key combinations exceed the search cap", ErrUnderdetermined, total)
		}
	}
	sb := aes.SBox()
	var idx [16]int
	ctBuf := make([]byte, 16)
	for {
		var k10 [16]byte
		for i := 0; i < 16; i++ {
			k10[i] = cands[i][idx[i]]
		}
		m := aes.RecoverMasterFromLastRound(k10)
		if ks, err := aes.Expand(m[:]); err == nil {
			aes.EncryptBlock(ks, &sb, ctBuf, plaintext)
			match := true
			for i := range ctBuf {
				if ctBuf[i] != ciphertext[i] {
					match = false
					break
				}
			}
			if match {
				return m, nil
			}
		}
		// Odometer increment over the candidate lists.
		pos := 0
		for pos < 16 {
			idx[pos]++
			if idx[pos] < len(cands[pos]) {
				break
			}
			idx[pos] = 0
			pos++
		}
		if pos == 16 {
			return master, fmt.Errorf("%w: no combination matches the known pair", ErrInconsistent)
		}
	}
}

// RecoverMasterKnownFault completes the attack for AES-128: last-round key
// via missing values, then key-schedule inversion to the master key.
func (c *AESCollector) RecoverMasterKnownFault(yStar byte) ([16]byte, error) {
	k10, err := c.RecoverLastRoundKeyKnownFault(yStar)
	if err != nil {
		return [16]byte{}, err
	}
	return aes.RecoverMasterFromLastRound(k10), nil
}

// RecoverMasterUnknownFault disambiguates the 256 unknown-fault candidates
// with one known plaintext/ciphertext pair encrypted under the *clean*
// cipher (e.g. captured before the fault was planted).
func (c *AESCollector) RecoverMasterUnknownFault(plaintext, ciphertext []byte) ([16]byte, error) {
	cands, err := c.CandidateKeysUnknownFault()
	if err != nil {
		return [16]byte{}, err
	}
	sb := aes.SBox()
	for _, k10 := range cands {
		master := aes.RecoverMasterFromLastRound(k10)
		ks, err := aes.Expand(master[:])
		if err != nil {
			continue
		}
		var ct [16]byte
		aes.EncryptBlock(ks, &sb, ct[:], plaintext)
		match := true
		for i := range ct {
			if ct[i] != ciphertext[i] {
				match = false
				break
			}
		}
		if match {
			return master, nil
		}
	}
	return [16]byte{}, fmt.Errorf("%w: no candidate matches the known pair", ErrInconsistent)
}
