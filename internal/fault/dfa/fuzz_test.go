package dfa_test

import (
	"bytes"
	"errors"
	"testing"

	"explframe/internal/cipher/registry"
	"explframe/internal/fault"
	"explframe/internal/fault/dfa"
	"explframe/internal/stats"
)

// FuzzDFARecover drives every registered analyzer with honestly collected
// pairs under arbitrary keys and checks the recovery invariants: honest
// pairs can never contradict their own fault model (ErrNoCandidates), and
// whenever the analysis pins a unique key, the completed master must
// re-encrypt fresh known vectors exactly like the victim.  Run with:
// go test -fuzz=FuzzDFARecover ./internal/fault/dfa
func FuzzDFARecover(f *testing.F) {
	f.Add(uint64(1), []byte{})
	f.Add(uint64(42), []byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF})
	f.Fuzz(func(t *testing.T, seed uint64, keyMat []byte) {
		for _, name := range dfa.Names() {
			c := registry.MustGet(name)
			a := dfa.MustGet(name)
			rng := stats.NewStream(seed, stats.FNV64(name))
			key := make([]byte, c.KeyBytes())
			rng.Bytes(key)
			for i := 0; i < len(key) && i < len(keyMat); i++ {
				key[i] = keyMat[i]
			}
			inst, err := c.New(key)
			if err != nil {
				t.Fatal(err)
			}
			table := c.SBox()

			// A fixed budget of precise-byte faults, cycled over the byte
			// positions so every key group gets constrained.
			pairs := make([]dfa.Pair, 0, 12)
			pt := make([]byte, c.BlockSize())
			for n := 0; n < cap(pairs); n++ {
				m := fault.New(fault.PreciseByte, fault.WithPosition(n%c.BlockSize()))
				rng.Bytes(pt)
				p, err := dfa.CollectPair(c, inst, table, pt, m, rng)
				if err != nil {
					t.Fatalf("%s: collect: %v", name, err)
				}
				pairs = append(pairs, p)
			}
			res, err := a.Analyze(pairs, fault.New(fault.PreciseByte))
			if err != nil {
				if errors.Is(err, dfa.ErrNoCandidates) {
					t.Fatalf("%s: honest pairs contradicted their own fault model", name)
				}
				t.Fatalf("%s: analyze: %v", name, err)
			}
			if res.KeySpaceBits < 0 {
				t.Fatalf("%s: negative key space %f", name, res.KeySpaceBits)
			}
			if !res.Unique {
				continue // a starved corner; uniqueness is not guaranteed
			}
			if !bytes.Equal(res.Master, key) {
				t.Fatalf("%s: unique but wrong master %x (want %x)", name, res.Master, key)
			}
			// The decisive check: the recovered master must behave like the
			// victim key on vectors the analysis never saw.
			recovered, err := c.New(res.Master)
			if err != nil {
				t.Fatalf("%s: recovered master rejected: %v", name, err)
			}
			want := make([]byte, c.BlockSize())
			got := make([]byte, c.BlockSize())
			for v := 0; v < 2; v++ {
				rng.Bytes(pt)
				inst.Encrypt(c.SBox(), want, pt)
				recovered.Encrypt(c.SBox(), got, pt)
				if !bytes.Equal(want, got) {
					t.Fatalf("%s: recovered master diverges on a fresh vector", name)
				}
			}
		}
	})
}
