package dfa_test

import (
	"bytes"
	"fmt"

	"explframe/internal/cipher/registry"
	"explframe/internal/fault"
	"explframe/internal/fault/dfa"
	"explframe/internal/stats"
)

// ExampleAnalyzer is the examples/dfa-lilliput walkthrough in miniature: a
// round-29 nibble fault on the LILLIPUT-style SPN, collected and analysed
// entirely through the registry — swap the cipher name and fault model and
// the same loop runs any registered analyzer's ladder.
func ExampleAnalyzer() {
	c := registry.MustGet("lilliput-80")
	analyzer := dfa.MustGet("lilliput-80")
	rng := stats.NewRNG(7)

	key := make([]byte, c.KeyBytes())
	rng.Bytes(key)
	inst, err := c.New(key)
	if err != nil {
		panic(err)
	}
	table := c.SBox()

	// One rung of the ladder: a transient fault in one nibble, anywhere in
	// the round-29 state.
	m := fault.New(fault.Nibble)
	var pairs []dfa.Pair
	pt := make([]byte, c.BlockSize())
	for n := 1; n <= 48; n++ {
		rng.Bytes(pt)
		p, err := dfa.CollectPair(c, inst, table, pt, m, rng)
		if err != nil {
			panic(err)
		}
		pairs = append(pairs, p)
		res, err := analyzer.Analyze(pairs, m)
		if err != nil {
			panic(err)
		}
		if res.Unique {
			fmt.Printf("unique master key after %d pairs, correct: %v\n", n, bytes.Equal(res.Master, key))
			return
		}
	}
	fmt.Println("budget exhausted")
	// Output: unique master key after 27 pairs, correct: true
}
