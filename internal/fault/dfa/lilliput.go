package dfa

import (
	"fmt"
	"math/bits"

	"explframe/internal/cipher/lilliput"
	"explframe/internal/cipher/registry"
	"explframe/internal/fault"
)

// This file is the round-29 ladder analyzer for the LILLIPUT-style SPN,
// after "From Precise to Random: A Systematic DFA of LILLIPUT" (PAPERS.md).
//
// A transient fault delta at the entry of round 29 passes AddRoundKey
// unchanged, so the round-29 S-box sees input difference d_j at each
// faulted nibble j and emits some output difference e_j.  PLayer scatters
// the four bits of e_j into four distinct nibbles of the round-30 S-box
// input (13 is invertible mod 64), so with u = InvPLayer(ct) and k' =
// InvPLayer(K31), each affected nibble m satisfies
//
//	InvS(u_m ^ k'_m) ^ InvS(u*_m ^ k'_m) == mask_m
//
// where mask_m collects the e-bits PLayer routed into nibble m.  The
// analyzer enumerates every fault hypothesis the model leaves open —
// which nibbles were hit and with what S-output difference — requires the
// hypothesis to light exactly the observed affected set, and intersects
// the per-nibble key candidates across pairs.  More precision (a pinned
// bit, a DDT-filtered input difference, a known position) means fewer
// hypotheses, tighter candidate sets, and fewer pairs to a unique key:
// the precise-to-random ladder.
var (
	// lilInvS is a package copy of the inverse S-box.
	lilInvS = lilliput.InvSBox()
	// lilTargets[j][b] is where PLayer sends bit b of source nibble j:
	// uint64 bit 4j+b lands at 13*(4j+b) mod 64.
	lilTargets [16][4]struct{ nib, bit int }
	// lilTMask[j][e] is the set of target nibbles (as a 16-bit mask) lit by
	// source nibble j emitting S-output difference e.
	lilTMask [16][16]uint16
	// lilSpan[by] is the widest target set reachable from uint64 byte by
	// (source nibbles 2by and 2by+1) — a cheap byte-subset prefilter.
	lilSpan [8]uint16
	// lilDDT[d][e] counts S-box input/output difference transitions; a
	// precise-bit fault pins d and filters e through it.
	lilDDT [16][16]int
)

func init() {
	for j := 0; j < 16; j++ {
		for b := 0; b < 4; b++ {
			p := (13 * (4*j + b)) & 63
			lilTargets[j][b] = struct{ nib, bit int }{p / 4, p % 4}
		}
		for e := 0; e < 16; e++ {
			var m uint16
			for b := 0; b < 4; b++ {
				if e>>uint(b)&1 != 0 {
					m |= 1 << uint(lilTargets[j][b].nib)
				}
			}
			lilTMask[j][e] = m
		}
	}
	for by := 0; by < 8; by++ {
		lilSpan[by] = lilTMask[2*by][0xF] | lilTMask[2*by+1][0xF]
	}
	sb := lilliput.SBox()
	for x := byte(0); x < 16; x++ {
		for d := byte(0); d < 16; d++ {
			lilDDT[d][sb[x]^sb[x^d]]++
		}
	}
	Register(lilliputAnalyzer{})
}

// lilliputAnalyzer is the ladder analyzer registered for "lilliput-80".
type lilliputAnalyzer struct{}

// Cipher returns the analyzed cipher's registry name.
func (lilliputAnalyzer) Cipher() string { return "lilliput-80" }

// DefaultRound is 29 (Rounds-1): the fault must precede exactly two S-box
// layers for the differential above to hold.
func (lilliputAnalyzer) DefaultRound() int { return lilliput.Rounds - 1 }

// Ladder lists the supported models strongest-first: the paper's
// precise-to-random descent.
func (lilliputAnalyzer) Ladder() []fault.Model {
	return []fault.Model{
		fault.New(fault.PreciseBit),
		fault.New(fault.Nibble),
		fault.New(fault.PreciseByte),
		fault.New(fault.RandomBytes),
		fault.New(fault.RandomBytes, fault.WithWidth(2)),
	}
}

// Supports accepts the whole ladder up to 2-byte random faults at round 29;
// wider faults leave too many hypotheses for the differential to bite.
func (lilliputAnalyzer) Supports(m fault.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.Kind == fault.RandomBytes && m.Width > 2 {
		return fmt.Errorf("%w: a %d-byte random fault leaves too many round-%d hypotheses; lilliput-80 supports width <= 2", ErrUnsupportedModel, m.Width, lilliput.Rounds-1)
	}
	if m.Round != 0 && m.Round != lilliput.Rounds-1 {
		return fmt.Errorf("%w: the ladder equations hold at round %d only, not round %d", ErrUnsupportedModel, lilliput.Rounds-1, m.Round)
	}
	return nil
}

// Analyze intersects per-nibble candidate masks for k' = InvPLayer(K31)
// over the pairs, then assembles K31 and completes the master key from the
// first pair's known plaintext.  When the space is small but not yet a
// single point, it finishes by enumerating the remaining combinations
// against that plaintext — the usual DFA end-game.
func (a lilliputAnalyzer) Analyze(pairs []Pair, m fault.Model) (*Result, error) {
	if err := a.Supports(m); err != nil {
		return nil, err
	}
	var sets [16]uint16
	for i := range sets {
		sets[i] = 0xFFFF
	}
	for pi := range pairs {
		if err := lilConstrain(&sets, pairs[pi], m); err != nil {
			return nil, fmt.Errorf("pair %d: %w", pi, err)
		}
	}
	res := &Result{Remaining: make([]float64, 16)}
	unique := true
	var cells [16]byte
	for i, s := range sets {
		n := bits.OnesCount16(s)
		res.Remaining[i] = float64(n)
		if n == 1 {
			cells[i] = byte(bits.TrailingZeros16(s))
		} else {
			unique = false
		}
	}
	res.KeySpaceBits = spaceBits(res.Remaining)
	c := registry.MustGet("lilliput-80")
	if !unique {
		// The DFA end-game: once the differential has squeezed the space
		// down to a handful of combinations, enumerate them against the
		// known plaintext instead of waiting for more faults.
		if lilCombos(&sets) <= lilMaxEnumerate && len(pairs) > 0 && pairs[0].Plaintext != nil {
			if master, k31 := lilEnumerate(&sets, c, pairs[0]); master != nil {
				res.LastRoundKey = k31
				res.Master = master
				res.Unique = true
				for i := range res.Remaining {
					res.Remaining[i] = 1
				}
				res.KeySpaceBits = 0
			}
		}
		return res, nil
	}
	res.LastRoundKey = c.AssembleLastRoundKey(cells[:])
	res.Unique = true
	if len(pairs) > 0 && pairs[0].Plaintext != nil {
		if master, ok := c.RecoverMaster(res.LastRoundKey, pairs[0].Plaintext, pairs[0].Correct); ok {
			res.Master = master
		}
	}
	return res, nil
}

// lilMaxEnumerate bounds the end-game enumeration: each candidate costs one
// RecoverMaster call (2^16 schedule inversions).
const lilMaxEnumerate = 16

// lilCombos counts candidate combinations across nibbles, saturating just
// above the enumeration bound.
func lilCombos(sets *[16]uint16) int {
	total := 1
	for _, s := range sets {
		total *= bits.OnesCount16(s)
		if total > lilMaxEnumerate {
			return total
		}
	}
	return total
}

// lilEnumerate tests every candidate cell combination against the pair's
// known plaintext and returns the first verified master key and K31.
func lilEnumerate(sets *[16]uint16, c registry.Cipher, p Pair) (master, k31 []byte) {
	var cells [16]byte
	var rec func(i int) ([]byte, []byte)
	rec = func(i int) ([]byte, []byte) {
		if i == 16 {
			key := c.AssembleLastRoundKey(cells[:])
			if m, ok := c.RecoverMaster(key, p.Plaintext, p.Correct); ok {
				return m, key
			}
			return nil, nil
		}
		for k := byte(0); k < 16; k++ {
			if sets[i]>>uint(k)&1 == 0 {
				continue
			}
			cells[i] = k
			if m, key := rec(i + 1); m != nil {
				return m, key
			}
		}
		return nil, nil
	}
	return rec(0)
}

// lilCand is the per-nibble key candidate mask: bit k is set when key
// nibble k solves InvS(u ^ k) ^ InvS(u* ^ k) == d.
func lilCand(u, us, d byte) uint16 {
	var m uint16
	for k := byte(0); k < 16; k++ {
		if lilInvS[(u^k)&0xF]^lilInvS[(us^k)&0xF] == d {
			m |= 1 << uint(k)
		}
	}
	return m
}

// lilConstrain folds one pair's constraints into the per-nibble candidate
// sets, enumerating every fault hypothesis the model leaves open.
func lilConstrain(sets *[16]uint16, p Pair, m fault.Model) error {
	if len(p.Correct) < lilliput.BlockSize || len(p.Faulty) < lilliput.BlockSize {
		return fmt.Errorf("dfa: lilliput-80 pair needs %d-byte ciphertexts", lilliput.BlockSize)
	}
	u := lilliput.InvPLayer(lilGetU64(p.Correct))
	us := lilliput.InvPLayer(lilGetU64(p.Faulty))
	var un, usn [16]byte
	var affected uint16 // the observed affected nibble set D
	for i := 0; i < 16; i++ {
		un[i] = byte(u >> uint(4*i) & 0xF)
		usn[i] = byte(us >> uint(4*i) & 0xF)
		if un[i] != usn[i] {
			affected |= 1 << uint(i)
		}
	}
	if affected == 0 {
		return fmt.Errorf("%w: fault produced an identical ciphertext", ErrNoCandidates)
	}
	// Candidate masks per (affected nibble, input difference), shared by
	// every hypothesis.
	var candTab [16][16]uint16
	for i := 0; i < 16; i++ {
		if affected>>uint(i)&1 == 0 {
			continue
		}
		for d := 1; d < 16; d++ {
			candTab[i][d] = lilCand(un[i], usn[i], byte(d))
		}
	}
	// Union per-nibble candidates over hypotheses that (a) light exactly
	// the affected set and (b) admit a key for every affected nibble.
	var got [16]uint16
	any := false
	emit := func(assigns [][2]byte) {
		var nibMask [16]byte
		var cover uint16
		for _, as := range assigns {
			j, e := int(as[0]), as[1]
			cover |= lilTMask[j][e]
			for b := 0; b < 4; b++ {
				if e>>uint(b)&1 != 0 {
					t := lilTargets[j][b]
					nibMask[t.nib] |= 1 << uint(t.bit)
				}
			}
		}
		if cover != affected {
			return
		}
		var cand [16]uint16
		for i := 0; i < 16; i++ {
			if affected>>uint(i)&1 == 0 {
				continue
			}
			cand[i] = candTab[i][nibMask[i]]
			if cand[i] == 0 {
				return // hypothesis admits no key at nibble i: impossible
			}
		}
		any = true
		for i := 0; i < 16; i++ {
			got[i] |= cand[i]
		}
	}
	// enumBytes enumerates per-byte S-output difference assignments for a
	// chosen set of uint64 byte indices, every chosen byte faulted
	// (non-zero) and no difference lighting a nibble outside the affected
	// set.
	enumBytes := func(byteSet []int) {
		assigns := make([][2]byte, 0, 2*len(byteSet))
		var rec func(i int)
		rec = func(i int) {
			if i == len(byteSet) {
				emit(assigns)
				return
			}
			j0 := byte(2 * byteSet[i])
			j1 := j0 + 1
			for e0 := byte(0); e0 < 16; e0++ {
				if e0 != 0 && lilTMask[j0][e0]&^affected != 0 {
					continue
				}
				for e1 := byte(0); e1 < 16; e1++ {
					if e0|e1 == 0 {
						continue
					}
					if e1 != 0 && lilTMask[j1][e1]&^affected != 0 {
						continue
					}
					n := len(assigns)
					if e0 != 0 {
						assigns = append(assigns, [2]byte{j0, e0})
					}
					if e1 != 0 {
						assigns = append(assigns, [2]byte{j1, e1})
					}
					rec(i + 1)
					assigns = assigns[:n]
				}
			}
		}
		rec(0)
	}
	switch m.Kind {
	case fault.PreciseBit:
		// Byte-form bit p is uint64 bit 63-p; the input difference at the
		// source nibble is pinned, so the DDT filters the output difference.
		if p.Position < 0 || p.Position >= 8*lilliput.BlockSize {
			return fmt.Errorf("dfa: pair fault bit position %d out of range", p.Position)
		}
		bit := 63 - p.Position
		j, b := bit/4, bit%4
		d := byte(1) << uint(b)
		for e := byte(1); e < 16; e++ {
			if lilDDT[d][e] == 0 {
				continue
			}
			emit([][2]byte{{byte(j), e}})
		}
	case fault.Nibble:
		// Byte-form nibble i is uint64 nibble 15-i; the input difference is
		// unknown, so every non-zero output difference is a hypothesis.
		if p.Position < 0 || p.Position >= 2*lilliput.BlockSize {
			return fmt.Errorf("dfa: pair fault nibble position %d out of range", p.Position)
		}
		j := byte(15 - p.Position)
		for e := byte(1); e < 16; e++ {
			emit([][2]byte{{j, e}})
		}
	case fault.PreciseByte:
		// Byte-form byte B is uint64 byte 7-B; either or both of its
		// nibbles may carry a difference.
		if p.Position < 0 || p.Position >= lilliput.BlockSize {
			return fmt.Errorf("dfa: pair fault byte position %d out of range", p.Position)
		}
		enumBytes([]int{7 - p.Position})
	case fault.RandomBytes:
		// Position unknown: enumerate every Width-subset of bytes whose
		// reachable targets span the affected set.
		width := m.Width
		chosen := make([]int, 0, width)
		var choose func(start, left int)
		choose = func(start, left int) {
			if left == 0 {
				span := uint16(0)
				for _, by := range chosen {
					span |= lilSpan[by]
				}
				if affected&^span != 0 {
					return
				}
				enumBytes(chosen)
				return
			}
			for by := start; by <= 8-left; by++ {
				chosen = append(chosen, by)
				choose(by+1, left-1)
				chosen = chosen[:len(chosen)-1]
			}
		}
		choose(0, width)
	default:
		return fmt.Errorf("%w: kind %q", ErrUnsupportedModel, m.Kind)
	}
	if !any {
		return fmt.Errorf("%w: no fault hypothesis explains the affected nibbles", ErrNoCandidates)
	}
	for i := 0; i < 16; i++ {
		if affected>>uint(i)&1 == 0 {
			continue
		}
		sets[i] &= got[i]
		if sets[i] == 0 {
			return fmt.Errorf("%w: nibble %d", ErrNoCandidates, i)
		}
	}
	return nil
}

// lilGetU64 converts the big-endian byte-form block to the uint64 state.
func lilGetU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
