package dfa

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"explframe/internal/cipher/aes"
	"explframe/internal/cipher/registry"
	"explframe/internal/fault"
	"explframe/internal/stats"
)

// collectAES builds pairs covering all four columns: state bytes 0..3 at
// the entry of round 9 land in the four distinct MixColumns columns.
func collectAES(t *testing.T, key []byte, perColumn int, rng *stats.RNG) []Pair {
	t.Helper()
	c := registry.MustGet("aes-128")
	inst, err := c.New(key)
	if err != nil {
		t.Fatal(err)
	}
	table := c.SBox()
	var pairs []Pair
	pt := make([]byte, 16)
	for fb := 0; fb < 4; fb++ {
		m := fault.New(fault.PreciseByte, fault.WithPosition(fb))
		for n := 0; n < perColumn; n++ {
			rng.Bytes(pt)
			p, err := CollectPair(c, inst, table, pt, m, rng)
			if err != nil {
				t.Fatal(err)
			}
			pairs = append(pairs, p)
		}
	}
	return pairs
}

// collectModel draws budget pairs for one cipher under one model.
func collectModel(t *testing.T, cipher string, key []byte, m fault.Model, budget int, rng *stats.RNG) []Pair {
	t.Helper()
	c := registry.MustGet(cipher)
	inst, err := c.New(key)
	if err != nil {
		t.Fatal(err)
	}
	table := c.SBox()
	pairs := make([]Pair, 0, budget)
	pt := make([]byte, c.BlockSize())
	for n := 0; n < budget; n++ {
		rng.Bytes(pt)
		p, err := CollectPair(c, inst, table, pt, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, p)
	}
	return pairs
}

func TestRegistryHasBuiltinAnalyzers(t *testing.T) {
	names := Names()
	for _, want := range []string{"aes-128", "lilliput-80"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() = %v, missing %q", names, want)
		}
	}
	// Cipher aliases resolve through the cipher registry.
	if _, ok := Get("aes"); !ok {
		t.Fatal("alias aes did not resolve to the aes-128 analyzer")
	}
	if _, ok := Get("present-80"); ok {
		t.Fatal("present-80 has no analyzer but Get succeeded")
	}
	for _, a := range []Analyzer{MustGet("aes-128"), MustGet("lilliput-80")} {
		if len(a.Ladder()) == 0 {
			t.Fatalf("%s: empty ladder", a.Cipher())
		}
		for _, m := range a.Ladder() {
			if err := a.Supports(m); err != nil {
				t.Fatalf("%s: ladder model %s unsupported: %v", a.Cipher(), m.Name(), err)
			}
		}
	}
}

func TestAESRecoverWithTwoPairsPerColumn(t *testing.T) {
	key := []byte("dfa-test-key-128")
	rng := stats.NewRNG(42)
	pairs := collectAES(t, key, 2, rng)

	res, err := MustGet("aes-128").Analyze(pairs, fault.New(fault.PreciseByte))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !res.Unique {
		t.Fatalf("result not unique (remaining %v)", res.Remaining)
	}
	ks, _ := aes.Expand(key)
	k10 := ks.RoundKey(10)
	if !bytes.Equal(res.LastRoundKey, k10[:]) {
		t.Fatalf("K10 = %x want %x", res.LastRoundKey, k10)
	}
	if !bytes.Equal(res.Master, key) {
		t.Fatalf("master = %x want %x", res.Master, key)
	}
	if res.KeySpaceBits != 0 {
		t.Fatalf("unique result reports %v residual bits", res.KeySpaceBits)
	}
}

// One pair per column must narrow the key space but typically not to
// uniqueness: the result should report small per-column candidate counts.
func TestAESOnePairPerColumnNarrowsButInsufficient(t *testing.T) {
	key := []byte("dfa-test-key-two")
	rng := stats.NewRNG(7)
	pairs := collectAES(t, key, 1, rng)

	res, err := MustGet("aes-128").Analyze(pairs, fault.New(fault.PreciseByte))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if res.Unique {
		// Uniqueness with one pair happens occasionally; accept but verify.
		if !bytes.Equal(res.Master, key) {
			t.Fatalf("unique but wrong: %x", res.Master)
		}
		return
	}
	for c, n := range res.Remaining {
		if n == 0 {
			t.Fatalf("column %d has no candidates", c)
		}
		if n > 100000 {
			t.Fatalf("column %d barely narrowed: %v candidates", c, n)
		}
	}
	if res.KeySpaceBits <= 0 || res.KeySpaceBits >= 128 {
		t.Fatalf("KeySpaceBits = %v, want in (0, 128)", res.KeySpaceBits)
	}
}

// An untouched column must report its full 256^4 candidate space, so the
// key-space size is honest rather than a hard-coded estimate.
func TestAESUntouchedColumnReportsFullSpace(t *testing.T) {
	key := []byte("untouched-key-12")
	c := registry.MustGet("aes-128")
	inst, err := c.New(key)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(11)
	pt := make([]byte, 16)
	rng.Bytes(pt)
	p, err := CollectPair(c, inst, c.SBox(), pt, fault.New(fault.PreciseByte, fault.WithPosition(0)), rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MustGet("aes-128").Analyze([]Pair{p}, fault.New(fault.PreciseByte))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if res.Unique {
		t.Fatal("one pair cannot pin four columns")
	}
	full := 0
	for _, n := range res.Remaining {
		if n == float64(1<<32) {
			full++
		}
	}
	if full != 3 {
		t.Fatalf("%d columns report the full 2^32 space, want 3 (remaining %v)", full, res.Remaining)
	}
	if res.KeySpaceBits <= 96 || res.KeySpaceBits > 128 {
		t.Fatalf("KeySpaceBits = %v, want in (96, 128]", res.KeySpaceBits)
	}
}

// The true key must always survive the intersection, whatever the pair set.
func TestAESTrueKeyAlwaysSurvives(t *testing.T) {
	key := []byte("survival-key-123")
	ks, _ := aes.Expand(key)
	k10 := ks.RoundKey(10)
	rng := stats.NewRNG(19)

	for trial := 0; trial < 5; trial++ {
		pairs := collectAES(t, key, 1, rng)
		for c := 0; c < 4; c++ {
			for _, p := range pairs {
				cand := columnCandidates(p, c)
				if cand == nil {
					continue
				}
				var q quad
				for r := 0; r < 4; r++ {
					q[r] = k10[columnPositions[c][r]]
				}
				if !cand[q] {
					t.Fatalf("trial %d: true quadruple eliminated from column %d", trial, c)
				}
			}
		}
	}
}

func TestAESPairsWithoutFaultCarryNoInformation(t *testing.T) {
	key := []byte("nofault-key-1234")
	ks, _ := aes.Expand(key)
	sb := aes.SBox()
	ct := make([]byte, 16)
	pt := []byte("some plaintext!!")
	aes.EncryptBlock(ks, &sb, ct, pt)
	p := Pair{Correct: ct, Faulty: append([]byte(nil), ct...)} // identical: no fault
	for col := 0; col < 4; col++ {
		if cand := columnCandidates(p, col); cand != nil {
			t.Fatalf("fault-free pair constrained column %d", col)
		}
	}
	res, err := MustGet("aes-128").Analyze([]Pair{p}, fault.New(fault.PreciseByte))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if res.Unique || res.KeySpaceBits != 128 {
		t.Fatalf("fault-free pair narrowed the space: unique=%v bits=%v", res.Unique, res.KeySpaceBits)
	}
}

// Garbage pairs (random unrelated ciphertexts) should usually violate the
// fault model once intersected with genuine pairs.
func TestAESModelViolationDetected(t *testing.T) {
	key := []byte("violation-key-12")
	rng := stats.NewRNG(23)
	pairs := collectAES(t, key, 2, rng)

	garbage := Pair{Correct: make([]byte, 16), Faulty: make([]byte, 16)}
	rng.Bytes(garbage.Correct)
	rng.Bytes(garbage.Faulty)
	mixed := append(pairs, garbage)

	res, err := MustGet("aes-128").Analyze(mixed, fault.New(fault.PreciseByte))
	if err == nil {
		_ = res // the garbage happened to be consistent; fine
		return
	}
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAESSupportsRejections(t *testing.T) {
	a := MustGet("aes-128")
	wide := fault.New(fault.RandomBytes, fault.WithWidth(2))
	if err := a.Supports(wide); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("2-byte random fault accepted: %v", err)
	}
	early := fault.New(fault.PreciseByte, fault.WithRound(5))
	if err := a.Supports(early); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("round-5 fault accepted: %v", err)
	}
	invalid := fault.Model{Kind: "laser"}
	if err := a.Supports(invalid); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := a.Analyze(nil, wide); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("Analyze skipped the Supports gate: %v", err)
	}
}

func TestCollectPairFaultPropagatesToFourBytes(t *testing.T) {
	key := []byte("prop-key-1234567")
	c := registry.MustGet("aes-128")
	inst, err := c.New(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 16)
	rng := stats.NewRNG(3)
	p, err := CollectPair(c, inst, c.SBox(), pt, fault.New(fault.PreciseByte, fault.WithPosition(0)), rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.Position != 0 {
		t.Fatalf("Position = %d want 0", p.Position)
	}
	if !bytes.Equal(p.Plaintext, pt) {
		t.Fatalf("Plaintext = %x want %x", p.Plaintext, pt)
	}
	nd := 0
	for i := range p.Correct {
		if p.Correct[i] != p.Faulty[i] {
			nd++
		}
	}
	// A round-9 single-byte fault spreads to exactly one column = 4 bytes.
	if nd != 4 {
		t.Fatalf("fault affected %d ciphertext bytes, want 4", nd)
	}
}

func TestCollectPairUnknownRound(t *testing.T) {
	c := registry.MustGet("present-80") // no analyzer registered
	inst, err := c.New(make([]byte, 10))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	_, err = CollectPair(c, inst, c.SBox(), make([]byte, 8), fault.New(fault.PreciseByte), rng)
	if err == nil || !strings.Contains(err.Error(), "no registered analyzer") {
		t.Fatalf("want missing-analyzer error, got %v", err)
	}
	// A model that pins its round needs no analyzer.
	m := fault.New(fault.PreciseByte, fault.WithRound(30))
	if _, err := CollectPair(c, inst, c.SBox(), make([]byte, 8), m, rng); err != nil {
		t.Fatalf("pinned-round collection failed: %v", err)
	}
}

// lilliputRecover drives the full ladder loop for one model: collect pairs
// until the analysis pins every nibble or the budget runs out.
func lilliputRecover(t *testing.T, key []byte, m fault.Model, budget int, rng *stats.RNG) (*Result, int) {
	t.Helper()
	a := MustGet("lilliput-80")
	c := registry.MustGet("lilliput-80")
	inst, err := c.New(key)
	if err != nil {
		t.Fatal(err)
	}
	table := c.SBox()
	var pairs []Pair
	pt := make([]byte, 8)
	for n := 1; n <= budget; n++ {
		rng.Bytes(pt)
		p, err := CollectPair(c, inst, table, pt, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, p)
		res, err := a.Analyze(pairs, m)
		if err != nil {
			t.Fatalf("pair %d: %v", n, err)
		}
		if res.Unique {
			return res, n
		}
	}
	res, err := a.Analyze(pairs, m)
	if err != nil {
		t.Fatal(err)
	}
	return res, budget
}

func TestLilliputLadderRecoversKey(t *testing.T) {
	key := []byte("lil-dfa-80")
	a := MustGet("lilliput-80")
	for _, m := range a.Ladder() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			if testing.Short() && m.Kind == fault.RandomBytes {
				t.Skip("random-fault hypothesis sweep is slow")
			}
			rng := stats.NewRNG(stats.FNV64(m.Name()))
			res, used := lilliputRecover(t, key, m, 40, rng)
			if !res.Unique {
				t.Fatalf("no unique key within 40 pairs (%.1f bits left)", res.KeySpaceBits)
			}
			if !bytes.Equal(res.Master, key) {
				t.Fatalf("master = %x want %x (after %d pairs)", res.Master, key, used)
			}
			t.Logf("%s: unique after %d pairs", m.Name(), used)
		})
	}
}

// Precision must never hurt: at a fixed small budget, the precise-bit model
// cannot leave a larger key space than the nibble model on the same seed.
func TestLilliputPrecisionMonotoneAtSmallBudget(t *testing.T) {
	key := []byte("ladder-key")
	const budget = 2
	bitsFor := func(m fault.Model) float64 {
		rng := stats.NewRNG(99)
		pairs := collectModel(t, "lilliput-80", key, m, budget, rng)
		res, err := MustGet("lilliput-80").Analyze(pairs, m)
		if err != nil {
			t.Fatal(err)
		}
		return res.KeySpaceBits
	}
	precise := bitsFor(fault.New(fault.PreciseBit))
	nibble := bitsFor(fault.New(fault.Nibble))
	if precise > nibble {
		t.Fatalf("precise-bit left %.1f bits > nibble's %.1f at the same budget", precise, nibble)
	}
}

func TestLilliputTrueKeySurvivesEveryModel(t *testing.T) {
	key := []byte("truth-key1")
	c := registry.MustGet("lilliput-80")
	a := MustGet("lilliput-80")
	inst, err := c.New(key)
	if err != nil {
		t.Fatal(err)
	}
	// The true k' nibble values every candidate set must contain.
	ctProbe := make([]byte, 8)
	inst.Encrypt(c.SBox(), ctProbe, make([]byte, 8))
	ladder := a.Ladder()
	if testing.Short() {
		ladder = ladder[:3]
	}
	for _, m := range ladder {
		rng := stats.NewRNG(stats.FNV64("survive-" + m.Name()))
		pairs := collectModel(t, "lilliput-80", key, m, 12, rng)
		res, err := a.Analyze(pairs, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Unique && !bytes.Equal(res.Master, key) {
			t.Fatalf("%s: converged to the wrong key %x", m.Name(), res.Master)
		}
		if !res.Unique {
			for i, n := range res.Remaining {
				if n == 0 {
					t.Fatalf("%s: nibble %d lost all candidates", m.Name(), i)
				}
			}
		}
	}
}

func TestLilliputSupportsRejections(t *testing.T) {
	a := MustGet("lilliput-80")
	wide := fault.New(fault.RandomBytes, fault.WithWidth(3))
	if err := a.Supports(wide); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("3-byte random fault accepted: %v", err)
	}
	early := fault.New(fault.Nibble, fault.WithRound(10))
	if err := a.Supports(early); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("round-10 fault accepted: %v", err)
	}
}

func TestLilliputGarbagePairRejected(t *testing.T) {
	key := []byte("garbage-ki")
	m := fault.New(fault.Nibble)
	rng := stats.NewRNG(5)
	pairs := collectModel(t, "lilliput-80", key, m, 8, rng)
	garbage := Pair{Correct: make([]byte, 8), Faulty: make([]byte, 8), Position: 0}
	rng.Bytes(garbage.Correct)
	rng.Bytes(garbage.Faulty)
	_, err := MustGet("lilliput-80").Analyze(append(pairs, garbage), m)
	if err == nil {
		return // consistent by luck; fine
	}
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSpaceBits(t *testing.T) {
	if b := spaceBits([]float64{16, 16, 1}); math.Abs(b-8) > 1e-12 {
		t.Fatalf("spaceBits = %v want 8", b)
	}
	if b := spaceBits(nil); b != 0 {
		t.Fatalf("spaceBits(nil) = %v want 0", b)
	}
}
