package dfa

import (
	"errors"
	"testing"

	"explframe/internal/cipher/aes"
	"explframe/internal/stats"
)

// collect builds pairs covering all four columns: state bytes 0..3 at the
// entry of round 9 land in the four distinct MixColumns columns.
func collect(t *testing.T, key []byte, perColumn int, rng *stats.RNG) []Pair {
	t.Helper()
	ks, err := aes.Expand(key)
	if err != nil {
		t.Fatal(err)
	}
	sb := aes.SBox()
	var pairs []Pair
	pt := make([]byte, 16)
	for fb := 0; fb < 4; fb++ {
		for n := 0; n < perColumn; n++ {
			rng.Bytes(pt)
			delta := byte(rng.Intn(255) + 1)
			pairs = append(pairs, CollectPair(ks, &sb, pt, fb, delta))
		}
	}
	return pairs
}

func TestRecoverWithTwoPairsPerColumn(t *testing.T) {
	key := []byte("dfa-test-key-128")
	rng := stats.NewRNG(42)
	pairs := collect(t, key, 2, rng)

	res, err := Recover(pairs)
	if err != nil {
		t.Fatalf("recover: %v (remaining %v)", err, res.Remaining)
	}
	if !res.Unique {
		t.Fatal("result not unique")
	}
	ks, _ := aes.Expand(key)
	if res.K10 != ks.RoundKey(10) {
		t.Fatalf("K10 = %x want %x", res.K10, ks.RoundKey(10))
	}
	var want [16]byte
	copy(want[:], key)
	if res.Master != want {
		t.Fatalf("master = %x want %x", res.Master, key)
	}
}

// One pair per column must narrow the key space but typically not to
// uniqueness: the attack should report ErrNeedMorePairs with small
// remaining-candidate counts.
func TestOnePairPerColumnNarrowsButInsufficient(t *testing.T) {
	key := []byte("dfa-test-key-two")
	rng := stats.NewRNG(7)
	pairs := collect(t, key, 1, rng)

	res, err := Recover(pairs)
	if err == nil {
		// Uniqueness with one pair happens occasionally; accept but verify.
		ks, _ := aes.Expand(key)
		if res.K10 != ks.RoundKey(10) {
			t.Fatalf("unique but wrong: %x", res.K10)
		}
		return
	}
	if !errors.Is(err, ErrNeedMorePairs) {
		t.Fatalf("unexpected error: %v", err)
	}
	for c, n := range res.Remaining {
		if n == 0 {
			t.Fatalf("column %d has no candidates", c)
		}
		if n > 100000 {
			t.Fatalf("column %d barely narrowed: %d candidates", c, n)
		}
	}
}

// The true key must always survive the intersection, whatever the pair set.
func TestTrueKeyAlwaysSurvives(t *testing.T) {
	key := []byte("survival-key-123")
	ks, _ := aes.Expand(key)
	k10 := ks.RoundKey(10)
	rng := stats.NewRNG(19)

	for trial := 0; trial < 5; trial++ {
		pairs := collect(t, key, 1, rng)
		for c := 0; c < 4; c++ {
			for _, p := range pairs {
				cand := columnCandidates(p, c)
				if cand == nil {
					continue
				}
				var q quad
				for r := 0; r < 4; r++ {
					q[r] = k10[columnPositions[c][r]]
				}
				if !cand[q] {
					t.Fatalf("trial %d: true quadruple eliminated from column %d", trial, c)
				}
			}
		}
	}
}

func TestPairsWithoutFaultCarryNoInformation(t *testing.T) {
	key := []byte("nofault-key-1234")
	ks, _ := aes.Expand(key)
	sb := aes.SBox()
	var c [16]byte
	pt := []byte("some plaintext!!")
	aes.EncryptBlock(ks, &sb, c[:], pt)
	p := Pair{Correct: c, Faulty: c} // identical: no fault
	for col := 0; col < 4; col++ {
		if cand := columnCandidates(p, col); cand != nil {
			t.Fatalf("fault-free pair constrained column %d", col)
		}
	}
	if _, err := Recover([]Pair{p}); !errors.Is(err, ErrNeedMorePairs) {
		t.Fatalf("expected need-more-pairs, got %v", err)
	}
}

// Garbage pairs (random unrelated ciphertexts) should usually violate the
// fault model once intersected with genuine pairs.
func TestModelViolationDetected(t *testing.T) {
	key := []byte("violation-key-12")
	rng := stats.NewRNG(23)
	pairs := collect(t, key, 2, rng)

	// Corrupt one pair completely.
	var garbage Pair
	rng.Bytes(garbage.Correct[:])
	rng.Bytes(garbage.Faulty[:])
	mixed := append(pairs, garbage)

	_, err := Recover(mixed)
	if err == nil {
		return // the garbage happened to be consistent; fine
	}
	if !errors.Is(err, ErrNoCandidates) && !errors.Is(err, ErrNeedMorePairs) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCollectPairFaultPropagatesToFourBytes(t *testing.T) {
	key := []byte("prop-key-1234567")
	ks, _ := aes.Expand(key)
	sb := aes.SBox()
	pt := make([]byte, 16)
	p := CollectPair(ks, &sb, pt, 0, 0x5A)
	nd := 0
	for i := range p.Correct {
		if p.Correct[i] != p.Faulty[i] {
			nd++
		}
	}
	// A round-9 single-byte fault spreads to exactly one column = 4 bytes.
	if nd != 4 {
		t.Fatalf("fault affected %d ciphertext bytes, want 4", nd)
	}
}
