// Package dfa implements classical differential fault analysis on AES-128
// in the Piret–Quisquater model: a transient single-byte fault injected at
// the input of round 9 (between the MixColumns of rounds 8 and 9).
//
// It serves as the baseline the paper's persistent-fault route is compared
// against (experiment E9): DFA needs only ~2 correct/faulty ciphertext pairs
// but demands a precisely timed, precisely located transient fault — which
// Rowhammer cannot deliver — whereas PFA needs thousands of ciphertexts but
// only one persistent bit flip anywhere in the S-box table, which is exactly
// what ExplFrame produces.
package dfa

import (
	"errors"
	"fmt"

	"explframe/internal/cipher/aes"
)

// Pair is one correct/faulty ciphertext pair for the same plaintext.
type Pair struct {
	Correct [16]byte
	Faulty  [16]byte
}

// mixCoeff[r][i] is the MixColumns coefficient multiplying a fault in row r
// as it lands in row i of the column: column 'r' of the MixColumns matrix.
var mixCoeff = [4][4]byte{
	{0x02, 0x01, 0x01, 0x03},
	{0x03, 0x02, 0x01, 0x01},
	{0x01, 0x03, 0x02, 0x01},
	{0x01, 0x01, 0x03, 0x02},
}

// gfMul is GF(2^8) multiplication modulo the AES polynomial.
func gfMul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// invSbox is a package copy of the inverse S-box.
var invSbox = aes.InvSBox()

// columnPositions[c] lists the ciphertext byte indices whose final-round
// inputs come from MixColumns column c of round 9: state indices 4c..4c+3
// routed through the last ShiftRows.
var columnPositions [4][4]int

func init() {
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			columnPositions[c][r] = aes.InvShiftRowsIndex(4*c + r)
		}
	}
}

// Errors returned by the attack.
var (
	// ErrNeedMorePairs reports that the candidate sets are not yet unique.
	ErrNeedMorePairs = errors.New("dfa: key bytes not yet unique, need more fault pairs")
	// ErrNoCandidates reports pairs inconsistent with the fault model.
	ErrNoCandidates = errors.New("dfa: no key candidates survive, pairs violate the fault model")
)

// quad is a candidate for the 4 last-round key bytes of one column.
type quad [4]byte

// columnCandidates computes the set of key quadruples for column c
// consistent with one pair: there must exist a fault row r and a
// post-SubBytes fault value eps such that every byte difference matches the
// MixColumns pattern.
func columnCandidates(p Pair, c int) map[quad]bool {
	pos := columnPositions[c]
	// A pair constrains column c only if it shows a difference there.
	diff := false
	for _, i := range pos {
		if p.Correct[i] != p.Faulty[i] {
			diff = true
			break
		}
	}
	if !diff {
		return nil // no information about this column
	}
	out := make(map[quad]bool)
	for r := 0; r < 4; r++ {
		for eps := 1; eps < 256; eps++ {
			// Expected input difference at each row of the column.
			var want [4]byte
			for i := 0; i < 4; i++ {
				want[i] = gfMul(byte(eps), mixCoeff[r][i])
			}
			// Per-byte key candidates solving
			//   S^-1(c ^ k) ^ S^-1(c* ^ k) == want[row].
			var perByte [4][]byte
			ok := true
			for row := 0; row < 4; row++ {
				i := pos[row]
				a, b := p.Correct[i], p.Faulty[i]
				var ks []byte
				for k := 0; k < 256; k++ {
					if invSbox[a^byte(k)]^invSbox[b^byte(k)] == want[row] {
						ks = append(ks, byte(k))
					}
				}
				if len(ks) == 0 {
					ok = false
					break
				}
				perByte[row] = ks
			}
			if !ok {
				continue
			}
			for _, k0 := range perByte[0] {
				for _, k1 := range perByte[1] {
					for _, k2 := range perByte[2] {
						for _, k3 := range perByte[3] {
							out[quad{k0, k1, k2, k3}] = true
						}
					}
				}
			}
		}
	}
	return out
}

// Result reports the outcome of a recovery attempt.
type Result struct {
	// K10 is the recovered last round key (valid when Unique).
	K10 [16]byte
	// Master is the inverted AES-128 master key (valid when Unique).
	Master [16]byte
	// Unique reports whether every column converged to one candidate.
	Unique bool
	// Remaining[c] is the number of candidate quadruples left per column.
	Remaining [4]int
}

// Recover runs the attack over the pairs, intersecting per-column candidate
// sets.  Pairs whose fault landed in other columns contribute nothing to a
// column, so mixed-position pair sets work.
func Recover(pairs []Pair) (Result, error) {
	var res Result
	var sets [4]map[quad]bool
	for _, p := range pairs {
		for c := 0; c < 4; c++ {
			cand := columnCandidates(p, c)
			if cand == nil {
				continue
			}
			if sets[c] == nil {
				sets[c] = cand
				continue
			}
			for q := range sets[c] {
				if !cand[q] {
					delete(sets[c], q)
				}
			}
		}
	}
	unique := true
	for c := 0; c < 4; c++ {
		if sets[c] == nil {
			res.Remaining[c] = 4 * 255 * 256 // untouched column: order of full space
			unique = false
			continue
		}
		res.Remaining[c] = len(sets[c])
		if len(sets[c]) == 0 {
			return res, fmt.Errorf("%w: column %d", ErrNoCandidates, c)
		}
		if len(sets[c]) > 1 {
			unique = false
		}
	}
	if !unique {
		return res, ErrNeedMorePairs
	}
	for c := 0; c < 4; c++ {
		for q := range sets[c] {
			for r := 0; r < 4; r++ {
				res.K10[columnPositions[c][r]] = q[r]
			}
		}
	}
	res.Unique = true
	res.Master = aes.RecoverMasterFromLastRound(res.K10)
	return res, nil
}

// CollectPair produces one correct/faulty ciphertext pair for a random
// plaintext under the Piret–Quisquater fault model: a transient fault of
// value delta on state byte faultByte at the entry of round 9.
func CollectPair(ks *aes.Schedule, sb *[256]byte, pt []byte, faultByte int, delta byte) Pair {
	var p Pair
	var c, f [16]byte
	aes.EncryptBlock(ks, sb, c[:], pt)
	aes.EncryptBlockWithFault(ks, sb, f[:], pt, 9, faultByte, delta)
	p.Correct, p.Faulty = c, f
	return p
}
