// Package dfa implements differential fault analysis behind a per-cipher
// Analyzer registry, mirroring how internal/fault/pfa runs one collector
// over every victim in internal/cipher/registry.
//
// An Analyzer owns the differential equations of one cipher's final rounds
// and evaluates them under a declarative fault.Model — the precise-to-random
// ladder of "From Precise to Random: A Systematic DFA of LILLIPUT"
// (PAPERS.md).  The built-in analyzers are the classical Piret–Quisquater
// attack on AES-128 (aes.go) and the round-29 ladder analysis of the
// LILLIPUT-style SPN (lilliput.go); adding one means implementing Analyzer
// and calling Register, exactly like adding a victim cipher.
//
// DFA serves as the baseline the paper's persistent-fault route is compared
// against (experiments E9 and E17): DFA needs only a handful of
// correct/faulty ciphertext pairs but demands a precisely timed transient
// fault — which Rowhammer cannot deliver, and which the ladder shows
// degrading as precision drops — whereas PFA needs thousands of ciphertexts
// but only one persistent bit flip anywhere in the S-box table, which is
// exactly what ExplFrame produces.
package dfa

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"explframe/internal/cipher/registry"
	"explframe/internal/fault"
	"explframe/internal/stats"
)

// Pair is one correct/faulty ciphertext pair for the same plaintext.
type Pair struct {
	// Plaintext is the (known) plaintext both ciphertexts encrypt; analyzers
	// that cannot invert the key schedule from the last round key alone use
	// it to complete the master key.  It may be nil, which skips completion.
	Plaintext []byte
	// Correct and Faulty are the fault-free and faulted ciphertexts.
	Correct, Faulty []byte
	// Position reports where the injected fault landed, in the fault
	// model's units (bit, nibble or byte index over the byte-form block),
	// for the "precise" kinds whose position is known to the attacker —
	// fault.Anywhere when the model hides it (random-bytes).
	Position int
}

// Result reports the outcome of one Analyze call.
type Result struct {
	// LastRoundKey is the recovered final-round key in the cipher's byte
	// form (valid when Unique).
	LastRoundKey []byte
	// Master is the completed master key (valid when Unique; nil when the
	// cipher needs a known plaintext the pairs did not carry).
	Master []byte
	// Unique reports whether the analysis pinned a single key: every key
	// group converged to one candidate, or the analyzer finished a tiny
	// residual space by enumerating it against a known plaintext.
	Unique bool
	// Remaining[g] is the exact number of last-round-key candidates still
	// standing in independent key group g (a MixColumns column quadruple
	// for AES, one 4-bit nibble for the 64-bit SPNs).  Groups the pairs
	// never constrained report their full space — 256^4 for an AES column,
	// 16 for a nibble — so the product over groups is always the true
	// surviving key-space size.
	Remaining []float64
	// KeySpaceBits is log2 of that product: the surviving last-round-key
	// space in bits, the ladder's figure of merit.
	KeySpaceBits float64
}

// ErrNoCandidates reports pairs inconsistent with the fault model: some key
// group has no surviving candidate.
var ErrNoCandidates = errors.New("dfa: no key candidates survive, pairs violate the fault model")

// ErrUnsupportedModel reports a fault model outside what an analyzer's
// differential equations cover.
var ErrUnsupportedModel = errors.New("dfa: fault model unsupported by this analyzer")

// Analyzer owns one cipher's differential fault equations.
type Analyzer interface {
	// Cipher is the canonical registry name of the cipher analyzed.
	Cipher() string
	// DefaultRound is the canonical 1-based fault round the analysis
	// targets — the round a fault.Model with Round 0 lands in.
	DefaultRound() int
	// Supports reports whether the analyzer's equations cover the model
	// (nil) or why not (wrapping ErrUnsupportedModel).
	Supports(m fault.Model) error
	// Ladder returns the supported fault models strongest-first — the rows
	// of a precise-to-random key-space table.
	Ladder() []fault.Model
	// Analyze intersects the key constraints of the pairs, all collected
	// under model m, and reports the surviving key space.  A non-unique
	// outcome is a Result with Unique false, not an error; errors mean the
	// model is unsupported or the pairs contradict it.
	Analyze(pairs []Pair, m fault.Model) (*Result, error)
}

var (
	mu        sync.RWMutex
	analyzers = map[string]Analyzer{}
)

// Register adds an analyzer under its cipher's canonical name.  It panics
// on duplicates — registration conflicts are programming errors.
func Register(a Analyzer) {
	mu.Lock()
	defer mu.Unlock()
	key := strings.ToLower(a.Cipher())
	if _, dup := analyzers[key]; dup {
		panic(fmt.Sprintf("dfa: analyzer for %q registered twice", a.Cipher()))
	}
	analyzers[key] = a
}

// Get looks an analyzer up by its cipher's name or alias.
func Get(cipher string) (Analyzer, bool) {
	key := strings.ToLower(cipher)
	if c, ok := registry.Get(cipher); ok {
		key = strings.ToLower(c.Name())
	}
	mu.RLock()
	defer mu.RUnlock()
	a, ok := analyzers[key]
	return a, ok
}

// MustGet is Get for registered-by-construction names; it panics on a miss.
func MustGet(cipher string) Analyzer {
	a, ok := Get(cipher)
	if !ok {
		panic(fmt.Sprintf("dfa: no analyzer registered for cipher %q", cipher))
	}
	return a
}

// Names returns the cipher names with a registered analyzer, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(analyzers))
	for n := range analyzers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CollectPair produces one correct/faulty ciphertext pair for plaintext pt
// under the fault model: it draws the model's unpinned choices from rng,
// encrypts pt cleanly and with the drawn transient fault, and records the
// fault position when the model exposes it.  The model's Round 0 resolves
// to the registered analyzer's DefaultRound.  The draw order — position
// first when unpinned, then fault values — is pinned by the golden tables.
func CollectPair(c registry.Cipher, inst registry.Instance, table, pt []byte, m fault.Model, rng *stats.RNG) (Pair, error) {
	round := m.Round
	if round == 0 {
		a, ok := Get(c.Name())
		if !ok {
			return Pair{}, fmt.Errorf("dfa: model %s pins no round and cipher %q has no registered analyzer", m.Name(), c.Name())
		}
		round = a.DefaultRound()
	}
	inj, err := m.Draw(rng, c.BlockSize(), round)
	if err != nil {
		return Pair{}, err
	}
	p := Pair{
		Plaintext: append([]byte(nil), pt[:c.BlockSize()]...),
		Correct:   make([]byte, c.BlockSize()),
		Faulty:    make([]byte, c.BlockSize()),
		Position:  inj.Position,
	}
	inst.Encrypt(table, p.Correct, pt)
	inst.EncryptWithFault(table, p.Faulty, pt, inj.Round, inj.Mask)
	return p, nil
}

// CollectPairs produces n correct/faulty pairs under the fault model,
// batching all encryptions through the Instance batch API (bitsliced for
// full 64-lane chunks of the built-in ciphers).  Each pair's randomness is
// drawn exactly as n sequential rng.Bytes-plaintext + CollectPair calls
// would draw it — plaintext first, then the model's unpinned choices —
// which is the order the golden tables pin; only the encryptions move to
// the end, and they consume no randomness.
func CollectPairs(c registry.Cipher, inst registry.Instance, table []byte, n int, m fault.Model, rng *stats.RNG) ([]Pair, error) {
	round := m.Round
	if round == 0 {
		a, ok := Get(c.Name())
		if !ok {
			return nil, fmt.Errorf("dfa: model %s pins no round and cipher %q has no registered analyzer", m.Name(), c.Name())
		}
		round = a.DefaultRound()
	}
	bs := c.BlockSize()
	pairs := make([]Pair, n)
	pts := make([][]byte, n)
	correct := make([][]byte, n)
	faulty := make([][]byte, n)
	masks := make([][]byte, n)
	for i := 0; i < n; i++ {
		pt := make([]byte, bs)
		rng.Bytes(pt)
		inj, err := m.Draw(rng, bs, round)
		if err != nil {
			return nil, err
		}
		pairs[i] = Pair{
			Plaintext: pt,
			Correct:   make([]byte, bs),
			Faulty:    make([]byte, bs),
			Position:  inj.Position,
		}
		pts[i] = pt
		correct[i] = pairs[i].Correct
		faulty[i] = pairs[i].Faulty
		masks[i] = inj.Mask
	}
	inst.EncryptBatch(table, correct, pts)
	inst.EncryptWithFaultBatch(table, faulty, pts, round, masks)
	return pairs, nil
}

// spaceBits folds per-group candidate counts into the surviving key-space
// size in bits.
func spaceBits(remaining []float64) float64 {
	bits := 0.0
	for _, r := range remaining {
		if r > 0 {
			bits += math.Log2(r)
		}
	}
	return bits
}
