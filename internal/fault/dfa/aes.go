package dfa

import (
	"fmt"

	"explframe/internal/cipher/aes"
	"explframe/internal/fault"
)

// This file is the Piret–Quisquater analyzer for AES-128: a transient fault
// confined to one state byte at the input of round 9 (between the
// MixColumns of rounds 8 and 9) constrains the four last-round key bytes of
// one MixColumns column, and two well-placed faults per column pin the key.
// The equations enumerate every fault row and value, so they never consume
// the fault's position — which is why the whole single-byte ladder
// (precise-bit through a width-1 random byte) collapses onto the same
// analysis and key-space curve for AES.

// mixCoeff[r][i] is the MixColumns coefficient multiplying a fault in row r
// as it lands in row i of the column: column 'r' of the MixColumns matrix.
var mixCoeff = [4][4]byte{
	{0x02, 0x01, 0x01, 0x03},
	{0x03, 0x02, 0x01, 0x01},
	{0x01, 0x03, 0x02, 0x01},
	{0x01, 0x01, 0x03, 0x02},
}

// gfMul is GF(2^8) multiplication modulo the AES polynomial.
func gfMul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// invSbox is a package copy of the inverse S-box.
var invSbox = aes.InvSBox()

// columnPositions[c] lists the ciphertext byte indices whose final-round
// inputs come from MixColumns column c of round 9: state indices 4c..4c+3
// routed through the last ShiftRows.
var columnPositions [4][4]int

// aesColumnSpace is the full candidate space of one unconstrained column
// quadruple: 256^4 last-round key byte combinations.
const aesColumnSpace = float64(1 << 32)

func init() {
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			columnPositions[c][r] = aes.InvShiftRowsIndex(4*c + r)
		}
	}
	Register(aesAnalyzer{})
}

// quad is a candidate for the 4 last-round key bytes of one column.
type quad [4]byte

// columnCandidates computes the set of key quadruples for column c
// consistent with one pair: there must exist a fault row r and a
// post-SubBytes fault value eps such that every byte difference matches the
// MixColumns pattern.
func columnCandidates(p Pair, c int) map[quad]bool {
	pos := columnPositions[c]
	// A pair constrains column c only if it shows a difference there.
	diff := false
	for _, i := range pos {
		if p.Correct[i] != p.Faulty[i] {
			diff = true
			break
		}
	}
	if !diff {
		return nil // no information about this column
	}
	out := make(map[quad]bool)
	for r := 0; r < 4; r++ {
		for eps := 1; eps < 256; eps++ {
			// Expected input difference at each row of the column.
			var want [4]byte
			for i := 0; i < 4; i++ {
				want[i] = gfMul(byte(eps), mixCoeff[r][i])
			}
			// Per-byte key candidates solving
			//   S^-1(c ^ k) ^ S^-1(c* ^ k) == want[row].
			var perByte [4][]byte
			ok := true
			for row := 0; row < 4; row++ {
				i := pos[row]
				a, b := p.Correct[i], p.Faulty[i]
				var ks []byte
				for k := 0; k < 256; k++ {
					if invSbox[a^byte(k)]^invSbox[b^byte(k)] == want[row] {
						ks = append(ks, byte(k))
					}
				}
				if len(ks) == 0 {
					ok = false
					break
				}
				perByte[row] = ks
			}
			if !ok {
				continue
			}
			for _, k0 := range perByte[0] {
				for _, k1 := range perByte[1] {
					for _, k2 := range perByte[2] {
						for _, k3 := range perByte[3] {
							out[quad{k0, k1, k2, k3}] = true
						}
					}
				}
			}
		}
	}
	return out
}

// aesAnalyzer is the Piret–Quisquater analyzer registered for "aes-128".
type aesAnalyzer struct{}

// Cipher returns the analyzed cipher's registry name.
func (aesAnalyzer) Cipher() string { return "aes-128" }

// DefaultRound is 9: the fault must land between the MixColumns of rounds
// 8 and 9 for the equations to hold.
func (aesAnalyzer) DefaultRound() int { return 9 }

// Ladder lists the supported models strongest-first.  The rungs are flat
// for AES — the analysis never uses the position, so every byte-confined
// fault yields the same key-space curve.
func (aesAnalyzer) Ladder() []fault.Model {
	return []fault.Model{
		fault.New(fault.PreciseBit),
		fault.New(fault.Nibble),
		fault.New(fault.PreciseByte),
		fault.New(fault.RandomBytes),
	}
}

// Supports accepts any fault confined to a single state byte at round 9;
// wider random faults can straddle two MixColumns columns, outside the
// single-fault equations.
func (aesAnalyzer) Supports(m fault.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.Kind == fault.RandomBytes && m.Width > 1 {
		return fmt.Errorf("%w: a %d-byte random fault can straddle MixColumns columns; aes-128 needs a single-byte-confined fault", ErrUnsupportedModel, m.Width)
	}
	if m.Round != 0 && m.Round != 9 {
		return fmt.Errorf("%w: the Piret-Quisquater equations hold at round 9 only, not round %d", ErrUnsupportedModel, m.Round)
	}
	return nil
}

// Analyze intersects per-column candidate sets over the pairs.  Pairs whose
// fault landed in other columns contribute nothing to a column, so
// mixed-position pair sets work.
func (a aesAnalyzer) Analyze(pairs []Pair, m fault.Model) (*Result, error) {
	if err := a.Supports(m); err != nil {
		return nil, err
	}
	var sets [4]map[quad]bool
	for _, p := range pairs {
		for c := 0; c < 4; c++ {
			cand := columnCandidates(p, c)
			if cand == nil {
				continue
			}
			if sets[c] == nil {
				sets[c] = cand
				continue
			}
			for q := range sets[c] {
				if !cand[q] {
					delete(sets[c], q)
				}
			}
		}
	}
	res := &Result{Remaining: make([]float64, 4)}
	unique := true
	for c := 0; c < 4; c++ {
		switch {
		case sets[c] == nil:
			res.Remaining[c] = aesColumnSpace // untouched column: full space
			unique = false
		case len(sets[c]) == 0:
			return nil, fmt.Errorf("%w: column %d", ErrNoCandidates, c)
		default:
			res.Remaining[c] = float64(len(sets[c]))
			if len(sets[c]) > 1 {
				unique = false
			}
		}
	}
	res.KeySpaceBits = spaceBits(res.Remaining)
	if !unique {
		return res, nil
	}
	var k10 [16]byte
	for c := 0; c < 4; c++ {
		for q := range sets[c] {
			for r := 0; r < 4; r++ {
				k10[columnPositions[c][r]] = q[r]
			}
		}
	}
	master := aes.RecoverMasterFromLastRound(k10)
	res.LastRoundKey = append([]byte(nil), k10[:]...)
	res.Master = append([]byte(nil), master[:]...)
	res.Unique = true
	return res, nil
}
