// Package fault makes transient fault models first-class values, the way
// internal/machine did for machines and internal/scenario did for
// scenarios.  A Model declares what a fault-injection campaign assumes the
// attacker can do — which round the fault lands in, how much of the block
// it disturbs (a bit, a nibble, a byte, or several random bytes) and
// whether the position is known — as plain serializable data with
// functional options (New, With), joined-field validation (Validate),
// canonical naming and hashing (Name, Hash) and strict lossless JSON
// (EncodeJSON, DecodeSpec).
//
// The catalogue in Presets is the precise-to-random ladder of "From
// Precise to Random: A Systematic DFA of LILLIPUT" (PAPERS.md): the same
// differential analysis run under progressively weaker fault assumptions,
// measuring how much key space survives each step down.  Models say
// nothing about any one cipher: Draw renders a model into a concrete
// Injection (round + XOR mask over the byte-form block) for whatever block
// size the victim has, and registry.Instance.EncryptWithFault applies it.
package fault

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"explframe/internal/stats"
)

// The fault-model kinds, ordered from the strongest attacker assumption to
// the weakest.  "Precise" kinds pin the fault position per pair (the
// attacker knows where the fault landed, even when the position itself is
// drawn at random); RandomBytes pins nothing.
const (
	// PreciseBit flips exactly one known bit of the round input.
	PreciseBit = "precise-bit"
	// Nibble disturbs one known 4-bit nibble with an unknown nonzero value.
	Nibble = "nibble"
	// PreciseByte disturbs one known byte with an unknown nonzero value.
	PreciseByte = "precise-byte"
	// RandomBytes disturbs Width unknown distinct bytes with unknown
	// nonzero values — the weakest, Rowhammer-shaped end of the ladder.
	RandomBytes = "random-bytes"
)

// Anywhere is the Position value meaning "drawn uniformly per pair":
// for the precise kinds the drawn position is still reported to the
// analyzer (fault templating tells the attacker where it landed), for
// RandomBytes it stays hidden.
const Anywhere = -1

// Model declares one transient fault model.  The zero value is not a valid
// model; build Models with New/With so defaults stay in one place.
//
// Positions index the byte-form block big-endian: bit p lives in byte p/8
// at mask 0x80>>(p%8), nibble i is the high half of byte i/2 when i is
// even, and bytes are plain indices.  Round 0 means "the analyzer's
// canonical round" — the deepest round its differential equations reach.
type Model struct {
	// Kind is PreciseBit, Nibble, PreciseByte or RandomBytes.
	Kind string `json:"kind"`
	// Round is the 1-based round the fault lands at the entry of; 0 defers
	// to the analyzer's canonical round for the target cipher.
	Round int `json:"round,omitempty"`
	// Position fixes the fault position in Kind units (bit, nibble or byte
	// index); Anywhere draws it uniformly per pair.  RandomBytes requires
	// Anywhere.
	Position int `json:"position"`
	// Width is the number of distinct faulted bytes; only RandomBytes
	// takes one (>= 1).
	Width int `json:"width,omitempty"`
}

// Option mutates a Model under construction.
type Option func(*Model)

// New builds a Model of the given kind with the position drawn per pair
// (Anywhere) at the analyzer's canonical round, and applies opts.
// RandomBytes defaults to one faulted byte.
func New(kind string, opts ...Option) Model {
	m := Model{Kind: kind, Position: Anywhere}
	if kind == RandomBytes {
		m.Width = 1
	}
	return m.With(opts...)
}

// With returns a copy of m with opts applied.
func (m Model) With(opts ...Option) Model {
	for _, opt := range opts {
		opt(&m)
	}
	return m
}

// WithRound pins the fault to the entry of a specific 1-based round.
func WithRound(r int) Option { return func(m *Model) { m.Round = r } }

// WithPosition fixes the fault position (in the kind's units).
func WithPosition(p int) Option { return func(m *Model) { m.Position = p } }

// WithWidth sets the RandomBytes faulted-byte count.
func WithWidth(w int) Option { return func(m *Model) { m.Width = w } }

// kinds lists the accepted Kind strings.
var kinds = map[string]bool{
	PreciseBit: true, Nibble: true, PreciseByte: true, RandomBytes: true,
}

// Validate checks every field and returns all violations joined into one
// error (errors.Join), so a fault spec with three mistakes reports three
// mistakes.  Position bounds depend on the victim's block size and are
// checked by Draw.
func (m Model) Validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if !kinds[m.Kind] {
		fail("kind: unknown %q (want %s)", m.Kind, strings.Join(KindNames(), ", "))
	}
	if m.Round < 0 {
		fail("round: %d, want >= 0 (0 = analyzer's canonical round)", m.Round)
	}
	if m.Position < Anywhere {
		fail("position: %d, want >= -1 (-1 = drawn per pair)", m.Position)
	}
	switch m.Kind {
	case RandomBytes:
		if m.Position != Anywhere {
			fail("position: %d fixed on kind random-bytes (random positions are the model; want -1)", m.Position)
		}
		if m.Width < 1 {
			fail("width: %d, want >= 1 faulted bytes", m.Width)
		}
	default:
		if m.Width != 0 {
			fail("width: %d set on kind %q (only random-bytes takes a width)", m.Width, m.Kind)
		}
	}
	return errors.Join(errs...)
}

// KindNames returns the accepted kinds in ladder order.
func KindNames() []string {
	return []string{PreciseBit, Nibble, PreciseByte, RandomBytes}
}

// Name returns the canonical model name: kind, position (or "any"), the
// RandomBytes width, and any pinned round.  Two models are the same fault
// assumption iff their Names are equal.
func (m Model) Name() string {
	var b strings.Builder
	b.WriteString(m.Kind)
	if m.Position >= 0 {
		fmt.Fprintf(&b, "@%d", m.Position)
	} else {
		b.WriteString("@any")
	}
	if m.Kind == RandomBytes {
		fmt.Fprintf(&b, "x%d", m.Width)
	}
	if m.Round > 0 {
		fmt.Fprintf(&b, "+r%d", m.Round)
	}
	return b.String()
}

// Hash returns a 64-bit FNV-1a digest of the canonical Name — stable
// across processes, usable for dedup and per-model seed derivation.
func (m Model) Hash() uint64 { return stats.FNV64(m.Name()) }

// Injection is one concrete rendering of a Model: the round and the XOR
// mask EncryptWithFault applies to the byte-form block at its entry.
type Injection struct {
	// Round is the resolved 1-based round.
	Round int
	// Mask is the block-sized difference XORed into the round input.
	Mask []byte
	// Position is the drawn position in the model's units when the kind
	// pins it (the analyzer is told where the fault landed); Anywhere for
	// RandomBytes.
	Position int
}

// Draw renders the model into one Injection for a blockBytes-sized victim,
// drawing any unpinned choices (position, fault value) from rng.
// defaultRound substitutes for Round 0.  The draw order is part of the
// golden-table contract: position first (when Anywhere), then one value
// draw per faulted unit.
func (m Model) Draw(rng *stats.RNG, blockBytes, defaultRound int) (Injection, error) {
	if err := m.Validate(); err != nil {
		return Injection{}, err
	}
	round := m.Round
	if round == 0 {
		round = defaultRound
	}
	inj := Injection{Round: round, Mask: make([]byte, blockBytes), Position: m.Position}
	switch m.Kind {
	case PreciseBit:
		if inj.Position == Anywhere {
			inj.Position = rng.Intn(8 * blockBytes)
		} else if inj.Position >= 8*blockBytes {
			return Injection{}, fmt.Errorf("fault: bit position %d outside a %d-byte block", inj.Position, blockBytes)
		}
		inj.Mask[inj.Position/8] = 0x80 >> uint(inj.Position%8)
	case Nibble:
		if inj.Position == Anywhere {
			inj.Position = rng.Intn(2 * blockBytes)
		} else if inj.Position >= 2*blockBytes {
			return Injection{}, fmt.Errorf("fault: nibble position %d outside a %d-byte block", inj.Position, blockBytes)
		}
		d := byte(rng.Intn(15) + 1)
		if inj.Position%2 == 0 {
			d <<= 4
		}
		inj.Mask[inj.Position/2] = d
	case PreciseByte:
		if inj.Position == Anywhere {
			inj.Position = rng.Intn(blockBytes)
		} else if inj.Position >= blockBytes {
			return Injection{}, fmt.Errorf("fault: byte position %d outside a %d-byte block", inj.Position, blockBytes)
		}
		inj.Mask[inj.Position] = byte(rng.Intn(255) + 1)
	case RandomBytes:
		if m.Width > blockBytes {
			return Injection{}, fmt.Errorf("fault: width %d exceeds the %d-byte block", m.Width, blockBytes)
		}
		for k := 0; k < m.Width; k++ {
			p := rng.Intn(blockBytes)
			for inj.Mask[p] != 0 {
				p = rng.Intn(blockBytes)
			}
			inj.Mask[p] = byte(rng.Intn(255) + 1)
		}
	}
	return inj, nil
}

// Preset is a named, documented fault model the CLI can list and describe
// — one rung of the precise-to-random ladder.
type Preset struct {
	// Name is the CLI handle.
	Name string
	// Description is the one-line catalogue entry `explframe list` prints.
	Description string
	// Model is the fault model itself.
	Model Model
}

// Presets returns the built-in ladder, strongest assumption first.  Every
// entry validates; the fault package tests pin that.
func Presets() []Preset {
	return []Preset{
		{
			Name:        "precise-bit",
			Description: "one known bit flips at the target round (laser-class control)",
			Model:       New(PreciseBit),
		},
		{
			Name:        "nibble",
			Description: "one known nibble takes an unknown nonzero difference",
			Model:       New(Nibble),
		},
		{
			Name:        "precise-byte",
			Description: "one known byte takes an unknown nonzero difference (Piret-Quisquater)",
			Model:       New(PreciseByte),
		},
		{
			Name:        "random-byte",
			Description: "one unknown byte takes an unknown difference (glitch-class control)",
			Model:       New(RandomBytes),
		},
		{
			Name:        "random-2byte",
			Description: "two unknown bytes take unknown differences (weakest rung)",
			Model:       New(RandomBytes, WithWidth(2)),
		},
	}
}

// LookupPreset resolves a preset by name.
func LookupPreset(name string) (Preset, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

// EncodeJSON renders the model as indented JSON, round-tripping losslessly
// through DecodeSpec.
func (m Model) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeSpec parses one fault model from JSON.  Unknown fields are
// rejected so a typoed knob fails loudly instead of silently running a
// different fault campaign.
func DecodeSpec(data []byte) (Model, error) {
	var m Model
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Model{}, fmt.Errorf("fault: decode model: %w", err)
	}
	return m, nil
}

// LoadSpec reads one fault model from a JSON file.
func LoadSpec(path string) (Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Model{}, fmt.Errorf("fault: %w", err)
	}
	return DecodeSpec(data)
}
