// Package kernel glues the simulated hardware (internal/dram) to the memory
// management stack (internal/mm, internal/vm) behind a process/syscall
// façade: Spawn, Mmap, Munmap, memory access with demand paging, sleep/wake
// with the per-CPU page frame cache drain semantics the paper's attack
// depends on.
package kernel

import (
	"errors"
	"fmt"

	"explframe/internal/dram"
	"explframe/internal/mm"
	"explframe/internal/stats"
	"explframe/internal/vm"
)

// Pid identifies a process.
type Pid int

// ProcState is the scheduling state of a process.
type ProcState int

// Process states.  The distinction matters because Section V requires the
// attacker to "remain active rather than going into inactive state
// (sleeping)": when every process on a CPU sleeps, the kernel drains that
// CPU's page frame cache and the planted frame escapes to the buddy
// allocator.
const (
	StateRunning ProcState = iota
	StateSleeping
	StateExited
)

// Config assembles a machine.
type Config struct {
	Geometry   dram.Geometry
	FaultModel dram.FaultModel
	// Mapper names the DRAM address-mapper kind (see dram.MapperNames);
	// empty selects the linear mapper, preserving historical behaviour.
	Mapper   string
	NumCPUs  int
	PCPBatch int
	PCPHigh  int
	// PCPFIFO is the page-frame-cache policy ablation knob (see mm.Config).
	PCPFIFO bool
	// MinWatermarkPages is passed through to the physical allocator.
	MinWatermarkPages uint64
	// Seed drives weak-cell placement and any stochastic kernel behaviour.
	Seed uint64
	// DrainOnIdle enables the pcp drain when a CPU has no runnable process.
	// Defaults to true in DefaultConfig; E11 flips it to isolate the effect.
	DrainOnIdle bool
}

// DefaultConfig returns a 2-CPU machine backed by the default 256 MiB DRAM
// geometry and fault model.
func DefaultConfig() Config {
	return Config{
		Geometry:          dram.DefaultGeometry(),
		FaultModel:        dram.DefaultFaultModel(),
		NumCPUs:           2,
		PCPBatch:          31,
		PCPHigh:           186,
		MinWatermarkPages: 32,
		Seed:              1,
		DrainOnIdle:       true,
	}
}

// Errors returned by the kernel layer.
var (
	// ErrSegv reports an access outside every VMA.
	ErrSegv = errors.New("kernel: segmentation fault")
	// ErrExited reports a syscall on a dead process.
	ErrExited = errors.New("kernel: process has exited")
)

// Machine is one simulated computer.
type Machine struct {
	cfg   Config
	dev   *dram.Device
	phys  *mm.PhysMem
	procs map[Pid]*Process
	cpus  []*cpu
	next  Pid
	rng   *stats.RNG
}

type cpu struct {
	id       int
	runnable map[Pid]bool
}

// NewMachine builds the DRAM device, physical allocator and CPUs.
func NewMachine(cfg Config) (*Machine, error) {
	mapper, err := dram.NewNamedMapper(cfg.Mapper, cfg.Geometry)
	if err != nil {
		return nil, err
	}
	dev, err := dram.NewDeviceWithMapper(mapper, cfg.FaultModel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pmCfg := mm.Config{
		TotalBytes:        cfg.Geometry.TotalBytes(),
		NumCPUs:           cfg.NumCPUs,
		PCPBatch:          cfg.PCPBatch,
		PCPHigh:           cfg.PCPHigh,
		PCPFIFO:           cfg.PCPFIFO,
		DMALimit:          16 << 20,
		DMA32Limit:        4 << 30,
		MinWatermarkPages: cfg.MinWatermarkPages,
	}
	phys, err := mm.New(pmCfg)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		dev:   dev,
		phys:  phys,
		procs: make(map[Pid]*Process),
		rng:   stats.NewRNG(cfg.Seed ^ 0x6b65726e656c), // "kernel"
		next:  1,
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		m.cpus = append(m.cpus, &cpu{id: i, runnable: make(map[Pid]bool)})
	}
	return m, nil
}

// DRAM exposes the memory device (the attacker-visible hardware).
func (m *Machine) DRAM() *dram.Device { return m.dev }

// Phys exposes the physical allocator for inspection (tests, cmd/memsim).
func (m *Machine) Phys() *mm.PhysMem { return m.phys }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// RNG returns the machine's deterministic random stream.
func (m *Machine) RNG() *stats.RNG { return m.rng }

// NumCPUs returns the CPU count.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// Process is one simulated process pinned to a CPU.
type Process struct {
	pid     Pid
	name    string
	cpuID   int
	state   ProcState
	as      *vm.AddressSpace
	m       *Machine
	touched uint64 // demand faults served
	// CapSysAdmin grants access to pagemap PFN queries (Section VI: "since
	// Linux 4.0, only users with the CAP_SYS_ADMIN capability can get
	// PFNs").
	CapSysAdmin bool

	// hammerAddrs is HammerLoop's translated-address scratch buffer, kept
	// on the process so repeated hammer bursts (the attack's steady state)
	// allocate nothing.
	hammerAddrs []dram.Addr
}

// Spawn creates a running process pinned to the given CPU.
func (m *Machine) Spawn(name string, cpuID int) (*Process, error) {
	if cpuID < 0 || cpuID >= len(m.cpus) {
		return nil, fmt.Errorf("kernel: no cpu %d", cpuID)
	}
	p := &Process{
		pid:   m.next,
		name:  name,
		cpuID: cpuID,
		state: StateRunning,
		as:    vm.NewAddressSpace(),
		m:     m,
	}
	m.next++
	m.procs[p.pid] = p
	m.cpus[cpuID].runnable[p.pid] = true
	return p, nil
}

// Pid returns the process id.
func (p *Process) Pid() Pid { return p.pid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// CPU returns the CPU the process is pinned to.
func (p *Process) CPU() int { return p.cpuID }

// State returns the scheduling state.
func (p *Process) State() ProcState { return p.state }

// AddressSpace exposes the process's VMAs and page table for inspection.
func (p *Process) AddressSpace() *vm.AddressSpace { return p.as }

// DemandFaults returns how many demand-paging faults the process has taken.
func (p *Process) DemandFaults() uint64 { return p.touched }

// Sleep marks the process inactive.  If that leaves the CPU with no
// runnable process the kernel drains the CPU's page frame cache — the
// behaviour that forces the paper's attacker to busy-wait.
func (p *Process) Sleep() {
	if p.state == StateExited {
		return
	}
	p.state = StateSleeping
	c := p.m.cpus[p.cpuID]
	delete(c.runnable, p.pid)
	if p.m.cfg.DrainOnIdle && len(c.runnable) == 0 {
		p.m.phys.DrainCPU(p.cpuID)
	}
}

// Wake marks the process runnable again.
func (p *Process) Wake() {
	if p.state == StateExited {
		return
	}
	p.state = StateRunning
	p.m.cpus[p.cpuID].runnable[p.pid] = true
}

// Exit terminates the process, unmapping every VMA and releasing all frames
// to the CPU's page frame cache / buddy allocator.
func (p *Process) Exit() {
	if p.state == StateExited {
		return
	}
	for _, v := range p.as.VMAs() {
		_ = p.Munmap(v.Start, v.Len())
	}
	p.state = StateExited
	c := p.m.cpus[p.cpuID]
	delete(c.runnable, p.pid)
	delete(p.m.procs, p.pid)
	if p.m.cfg.DrainOnIdle && len(c.runnable) == 0 {
		p.m.phys.DrainCPU(p.cpuID)
	}
}

// Mmap creates an anonymous mapping of length bytes and returns its base
// address.  No physical frames are allocated until the pages are touched.
func (p *Process) Mmap(length uint64) (vm.VirtAddr, error) {
	if p.state == StateExited {
		return 0, ErrExited
	}
	return p.as.Map(0, length, vm.ProtRead|vm.ProtWrite)
}

// MmapAt is Mmap with an address hint.
func (p *Process) MmapAt(hint vm.VirtAddr, length uint64) (vm.VirtAddr, error) {
	if p.state == StateExited {
		return 0, ErrExited
	}
	return p.as.Map(hint, length, vm.ProtRead|vm.ProtWrite)
}

// Munmap removes [addr, addr+length).  Present frames are freed on the
// process's CPU: order-0 frees land in the per-CPU page frame cache, which
// is the planting primitive of the attack.
func (p *Process) Munmap(addr vm.VirtAddr, length uint64) error {
	if p.state == StateExited {
		return ErrExited
	}
	var freeErr error
	err := p.as.Unmap(addr, length, func(_ vm.VirtAddr, pte vm.PTE) {
		if e := p.m.phys.FreePages(p.cpuID, pte.PFN, 0); e != nil && freeErr == nil {
			freeErr = e
		}
	})
	if err != nil {
		return err
	}
	return freeErr
}

// fault serves a demand-paging fault for the page containing va: a fresh
// order-0 frame is allocated through the CPU's page frame cache, zeroed,
// and mapped.
func (p *Process) fault(va vm.VirtAddr) (vm.PTE, error) {
	area, ok := p.as.FindVMA(va)
	if !ok {
		return vm.PTE{}, fmt.Errorf("%w at %#x", ErrSegv, uint64(va))
	}
	pfn, err := p.m.phys.AllocPages(p.cpuID, 0)
	if err != nil {
		return vm.PTE{}, err
	}
	// The kernel hands out zeroed pages.  Zeroing bypasses the activation
	// model: it is a streaming store whose row pressure is irrelevant to
	// the attack statistics and would otherwise dominate simulation cost.
	p.m.dev.FillNoActivate(pfn.Phys(), vm.PageSize, 0)
	writable := area.Prot&vm.ProtWrite != 0
	if err := p.as.PT.Map(va.PageBase(), pfn, writable); err != nil {
		// Unreachable unless the page table is corrupted; surface loudly.
		return vm.PTE{}, err
	}
	p.touched++
	pte, _ := p.as.PT.Lookup(va)
	return pte, nil
}

// translate resolves va to a physical address, faulting the page in on
// first touch.
func (p *Process) translate(va vm.VirtAddr) (uint64, error) {
	if p.state == StateExited {
		return 0, ErrExited
	}
	if pa, ok := p.as.PT.Translate(va); ok {
		return pa, nil
	}
	if _, err := p.fault(va); err != nil {
		return 0, err
	}
	pa, _ := p.as.PT.Translate(va)
	return pa, nil
}

// Load reads one byte from the process's address space.  The access
// reaches DRAM (the simulation behaves as if the line was flushed, which is
// the state a Rowhammer loop maintains).
func (p *Process) Load(va vm.VirtAddr) (byte, error) {
	pa, err := p.translate(va)
	if err != nil {
		return 0, err
	}
	return p.m.dev.Read(pa), nil
}

// Store writes one byte.
func (p *Process) Store(va vm.VirtAddr, v byte) error {
	pa, err := p.translate(va)
	if err != nil {
		return err
	}
	p.m.dev.Write(pa, v)
	return nil
}

// ReadBytes copies n bytes starting at va.  The first byte of each page
// goes through the activation model; the rest of the page is bulk-copied,
// matching a cache-line-granular burst rather than per-byte activations.
func (p *Process) ReadBytes(va vm.VirtAddr, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := p.ReadBytesInto(va, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadBytesInto is ReadBytes into a caller-provided buffer, for hot paths
// (flip probing) that reuse one buffer across many reads and must not
// allocate per call.
func (p *Process) ReadBytesInto(va vm.VirtAddr, out []byte) error {
	n := len(out)
	for i := 0; i < n; {
		pageEnd := int(uint64(va.PageBase()) + vm.PageSize - uint64(va))
		chunk := n - i
		if chunk > pageEnd {
			chunk = pageEnd
		}
		pa, err := p.translate(va)
		if err != nil {
			return err
		}
		p.m.dev.Read(pa) // one activation per page touch
		p.m.dev.ReadRangeNoActivate(pa, out[i:i+chunk])
		i += chunk
		va += vm.VirtAddr(chunk)
	}
	return nil
}

// WriteBytes stores data starting at va, with the same activation
// granularity as ReadBytes.
func (p *Process) WriteBytes(va vm.VirtAddr, data []byte) error {
	for i := 0; i < len(data); {
		pageEnd := int(uint64(va.PageBase()) + vm.PageSize - uint64(va))
		chunk := len(data) - i
		if chunk > pageEnd {
			chunk = pageEnd
		}
		pa, err := p.translate(va)
		if err != nil {
			return err
		}
		p.m.dev.Read(pa) // open the row once
		p.m.dev.WriteRangeNoActivate(pa, data[i:i+chunk])
		i += chunk
		va += vm.VirtAddr(chunk)
	}
	return nil
}

// Touch demand-faults every page in [va, va+length) by writing its first
// byte, the way the paper's attacker must "store some data into the
// allocated pages".
func (p *Process) Touch(va vm.VirtAddr, length uint64) error {
	for off := uint64(0); off < length; off += vm.PageSize {
		if err := p.Store(va+vm.VirtAddr(off), 1); err != nil {
			return err
		}
	}
	return nil
}

// Hammer performs one activation of the row backing va without reading data
// through the cache model; it is the CLFLUSH+load primitive.
func (p *Process) Hammer(va vm.VirtAddr) error {
	pa, err := p.translate(va)
	if err != nil {
		return err
	}
	p.m.dev.ActivateRow(pa)
	return nil
}

// HammerLoop issues rounds of activations cycling through vas in order —
// the access-flush-access loop.  Each address is translated once up front
// into a scratch buffer reused across calls; the activation sequence is
// identical to calling Hammer per address per round, without re-walking the
// page table and mapper millions of times, and steady-state hammering
// allocates nothing (the zero-alloc contract BENCH_trajectory.json pins).
func (p *Process) HammerLoop(vas []vm.VirtAddr, rounds int) error {
	if cap(p.hammerAddrs) < len(vas) {
		p.hammerAddrs = make([]dram.Addr, len(vas))
	}
	addrs := p.hammerAddrs[:len(vas)]
	for i, va := range vas {
		pa, err := p.translate(va)
		if err != nil {
			return err
		}
		addrs[i] = p.m.dev.Mapper().ToDRAM(pa)
	}
	for r := 0; r < rounds; r++ {
		for _, a := range addrs {
			p.m.dev.ActivateAddr(a)
		}
	}
	return nil
}

// Translate resolves a virtual address without faulting; ok is false for
// untouched pages.
func (p *Process) Translate(va vm.VirtAddr) (uint64, bool) {
	if p.state == StateExited {
		return 0, false
	}
	return p.as.PT.Translate(va)
}

// PagemapPFN mimics /proc/pid/pagemap: it returns the PFN backing va, but
// only for CAP_SYS_ADMIN processes ("since Linux 4.0, only users with the
// CAP_SYS_ADMIN capability can get PFNs", Section VI).
func (p *Process) PagemapPFN(va vm.VirtAddr) (mm.PFN, error) {
	if !p.CapSysAdmin {
		return 0, errors.New("kernel: pagemap requires CAP_SYS_ADMIN")
	}
	pte, ok := p.as.PT.Lookup(va)
	if !ok {
		return 0, fmt.Errorf("%w: page %#x not present", ErrSegv, uint64(va))
	}
	return pte.PFN, nil
}

// Processes returns the live processes, for inspection.
func (m *Machine) Processes() []*Process {
	out := make([]*Process, 0, len(m.procs))
	for _, p := range m.procs {
		out = append(out, p)
	}
	return out
}
