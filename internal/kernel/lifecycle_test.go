package kernel

import (
	"testing"

	"explframe/internal/dram"
	"explframe/internal/mm"
	"explframe/internal/stats"
	"explframe/internal/vm"
)

// A storm of process lifecycles and memory operations must never leak or
// double-account a frame: when every process has exited and the caches are
// drained, every page is free again and the buddy structure is intact.
func TestProcessLifecycleStorm(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 8, Rows: 1024, RowBytes: 8192}
	cfg.NumCPUs = 4
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := m.Phys().TotalPages()
	rng := stats.NewRNG(77)

	type mapping struct {
		va    vm.VirtAddr
		pages int
	}
	type procState struct {
		p    *Process
		maps []mapping
	}
	var procs []*procState

	for step := 0; step < 4000; step++ {
		switch {
		case len(procs) == 0 || (len(procs) < 12 && rng.Bool(0.15)):
			p, err := m.Spawn("storm", rng.Intn(cfg.NumCPUs))
			if err != nil {
				t.Fatal(err)
			}
			procs = append(procs, &procState{p: p})
		case rng.Bool(0.05):
			i := rng.Intn(len(procs))
			procs[i].p.Exit()
			procs[i] = procs[len(procs)-1]
			procs = procs[:len(procs)-1]
		case rng.Bool(0.1):
			i := rng.Intn(len(procs))
			if procs[i].p.State() == StateRunning {
				procs[i].p.Sleep()
			} else {
				procs[i].p.Wake()
			}
		default:
			i := rng.Intn(len(procs))
			ps := procs[i]
			if len(ps.maps) > 0 && rng.Bool(0.45) {
				j := rng.Intn(len(ps.maps))
				mp := ps.maps[j]
				if err := ps.p.Munmap(mp.va, uint64(mp.pages)*vm.PageSize); err != nil {
					t.Fatalf("step %d: munmap: %v", step, err)
				}
				ps.maps[j] = ps.maps[len(ps.maps)-1]
				ps.maps = ps.maps[:len(ps.maps)-1]
				continue
			}
			pages := 1 + rng.Intn(8)
			va, err := ps.p.Mmap(uint64(pages) * vm.PageSize)
			if err != nil {
				continue // transient OOM under pressure is fine
			}
			if err := ps.p.Touch(va, uint64(pages)*vm.PageSize); err != nil {
				// OOM mid-touch: release what we got and move on.
				_ = ps.p.Munmap(va, uint64(pages)*vm.PageSize)
				continue
			}
			ps.maps = append(ps.maps, mapping{va, pages})
		}
		if step%1000 == 0 {
			if err := m.Phys().CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}

	for _, ps := range procs {
		if err := ps.p.AddressSpace().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		ps.p.Exit()
	}
	for cpu := 0; cpu < cfg.NumCPUs; cpu++ {
		m.Phys().DrainCPU(cpu)
	}
	if err := m.Phys().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var free uint64
	for _, zt := range []mm.ZoneType{mm.ZoneDMA, mm.ZoneDMA32, mm.ZoneNormal} {
		free += m.Phys().FreePagesInZone(zt)
	}
	if free != total {
		t.Fatalf("leaked frames: %d free of %d after all exits", free, total)
	}
}
