package kernel

import (
	"errors"
	"testing"

	"explframe/internal/dram"
	"explframe/internal/mm"
	"explframe/internal/vm"
)

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 8, Rows: 1024, RowBytes: 8192}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestSpawnAndPin(t *testing.T) {
	m := newTestMachine(t)
	p, err := m.Spawn("proc", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CPU() != 1 || p.State() != StateRunning || p.Name() != "proc" {
		t.Fatalf("unexpected process: %+v", p)
	}
	if _, err := m.Spawn("bad", 5); err == nil {
		t.Fatal("spawn on missing cpu accepted")
	}
	if len(m.Processes()) != 1 {
		t.Fatalf("Processes() = %d entries", len(m.Processes()))
	}
}

func TestDemandPaging(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Spawn("a", 0)
	base, err := p.Mmap(8 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// No frames allocated yet.
	if p.DemandFaults() != 0 || p.AddressSpace().PT.MappedPages() != 0 {
		t.Fatal("mmap allocated frames eagerly")
	}
	if err := p.Store(base, 0xAB); err != nil {
		t.Fatal(err)
	}
	if p.DemandFaults() != 1 {
		t.Fatalf("faults = %d, want 1", p.DemandFaults())
	}
	v, err := p.Load(base)
	if err != nil || v != 0xAB {
		t.Fatalf("Load = %v, %v", v, err)
	}
	// Untouched page reads as zero after faulting in.
	v, err = p.Load(base + 3*vm.PageSize)
	if err != nil || v != 0 {
		t.Fatalf("untouched page = %v, %v", v, err)
	}
	if p.DemandFaults() != 2 {
		t.Fatalf("faults = %d, want 2", p.DemandFaults())
	}
}

func TestSegfaultOutsideVMA(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Spawn("a", 0)
	if _, err := p.Load(0xdead000); !errors.Is(err, ErrSegv) {
		t.Fatalf("expected segv, got %v", err)
	}
	if err := p.Store(0xdead000, 1); !errors.Is(err, ErrSegv) {
		t.Fatalf("expected segv, got %v", err)
	}
}

func TestReadWriteBytesAcrossPages(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Spawn("a", 0)
	base, _ := p.Mmap(4 * vm.PageSize)
	data := make([]byte, 3*vm.PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	start := base + vm.VirtAddr(vm.PageSize/2) // straddle page boundaries
	if err := p.WriteBytes(start, data); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadBytes(start, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

// Munmap must push the freed frame into the CPU's page frame cache, and a
// subsequent small allocation on the same CPU must reuse it.  This is the
// paper's Section V observation end to end at the kernel API level.
func TestMunmapFeedsPageFrameCache(t *testing.T) {
	m := newTestMachine(t)
	attacker, _ := m.Spawn("attacker", 0)
	base, _ := attacker.Mmap(16 * vm.PageSize)
	if err := attacker.Touch(base, 16*vm.PageSize); err != nil {
		t.Fatal(err)
	}
	target := base + 5*vm.PageSize
	pa, ok := attacker.Translate(target)
	if !ok {
		t.Fatal("target not mapped")
	}
	targetPFN := mm.PFNOf(pa)

	if err := attacker.Munmap(target, vm.PageSize); err != nil {
		t.Fatal(err)
	}
	// Frame sits at the hot end of CPU0's cache.
	zt := m.Phys().ZoneOf(targetPFN)
	contents := m.Phys().PCPContents(0, zt)
	if len(contents) == 0 || contents[len(contents)-1] != targetPFN {
		t.Fatalf("freed frame %d not hottest in cache: %v", targetPFN, contents)
	}

	victim, _ := m.Spawn("victim", 0)
	vbase, _ := victim.Mmap(vm.PageSize)
	if err := victim.Store(vbase, 1); err != nil {
		t.Fatal(err)
	}
	vpa, _ := victim.Translate(vbase)
	if mm.PFNOf(vpa) != targetPFN {
		t.Fatalf("victim got frame %d, want attacker's released frame %d", mm.PFNOf(vpa), targetPFN)
	}
}

// A victim on a different CPU must not receive the released frame.
func TestCrossCPUNoSteering(t *testing.T) {
	m := newTestMachine(t)
	attacker, _ := m.Spawn("attacker", 0)
	base, _ := attacker.Mmap(4 * vm.PageSize)
	attacker.Touch(base, 4*vm.PageSize)
	pa, _ := attacker.Translate(base)
	targetPFN := mm.PFNOf(pa)
	attacker.Munmap(base, vm.PageSize)

	victim, _ := m.Spawn("victim", 1)
	vbase, _ := victim.Mmap(vm.PageSize)
	victim.Store(vbase, 1)
	vpa, _ := victim.Translate(vbase)
	if mm.PFNOf(vpa) == targetPFN {
		t.Fatal("cross-CPU allocation received the released frame")
	}
}

// Sleeping the only runnable process on a CPU drains its page frame cache:
// the planted frame escapes to the buddy allocator (Section V's "must
// remain active" requirement).
func TestSleepDrainsPCP(t *testing.T) {
	m := newTestMachine(t)
	attacker, _ := m.Spawn("attacker", 0)
	base, _ := attacker.Mmap(4 * vm.PageSize)
	attacker.Touch(base, 4*vm.PageSize)
	attacker.Munmap(base, vm.PageSize)

	if m.Phys().PCPCount(0, mm.ZoneDMA32) == 0 {
		t.Fatal("expected cached frames before sleep")
	}
	attacker.Sleep()
	if got := m.Phys().PCPCount(0, mm.ZoneDMA32); got != 0 {
		t.Fatalf("cache not drained on idle: %d frames", got)
	}
	attacker.Wake()
	if attacker.State() != StateRunning {
		t.Fatal("wake failed")
	}
}

// With another runnable process on the CPU, sleeping must not drain.
func TestSleepWithCompanyKeepsPCP(t *testing.T) {
	m := newTestMachine(t)
	attacker, _ := m.Spawn("attacker", 0)
	_, _ = m.Spawn("other", 0)
	base, _ := attacker.Mmap(4 * vm.PageSize)
	attacker.Touch(base, 4*vm.PageSize)
	attacker.Munmap(base, vm.PageSize)

	n := m.Phys().PCPCount(0, mm.ZoneDMA32)
	attacker.Sleep()
	if got := m.Phys().PCPCount(0, mm.ZoneDMA32); got != n {
		t.Fatalf("cache drained despite runnable company: %d -> %d", n, got)
	}
}

func TestDrainOnIdleDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 8, Rows: 1024, RowBytes: 8192}
	cfg.DrainOnIdle = false
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := m.Spawn("a", 0)
	base, _ := p.Mmap(4 * vm.PageSize)
	p.Touch(base, 4*vm.PageSize)
	p.Munmap(base, vm.PageSize)
	n := m.Phys().PCPCount(0, mm.ZoneDMA32)
	p.Sleep()
	if got := m.Phys().PCPCount(0, mm.ZoneDMA32); got != n {
		t.Fatalf("cache drained with DrainOnIdle=false: %d -> %d", n, got)
	}
}

func TestExitReleasesEverything(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Spawn("a", 0)
	base, _ := p.Mmap(64 * vm.PageSize)
	p.Touch(base, 64*vm.PageSize)
	p.Exit()
	if p.State() != StateExited {
		t.Fatal("state after exit")
	}
	if len(m.Processes()) != 0 {
		t.Fatal("process list not empty after exit")
	}
	if _, err := p.Mmap(vm.PageSize); !errors.Is(err, ErrExited) {
		t.Fatalf("mmap after exit: %v", err)
	}
	if _, err := p.Load(base); !errors.Is(err, ErrExited) {
		t.Fatalf("load after exit: %v", err)
	}
	if err := m.Phys().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPagemapRequiresCapSysAdmin(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Spawn("a", 0)
	base, _ := p.Mmap(vm.PageSize)
	p.Store(base, 1)
	if _, err := p.PagemapPFN(base); err == nil {
		t.Fatal("unprivileged pagemap access allowed")
	}
	p.CapSysAdmin = true
	pfn, err := p.PagemapPFN(base)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := p.Translate(base)
	if pfn != mm.PFNOf(pa) {
		t.Fatalf("pagemap pfn %d != translate pfn %d", pfn, mm.PFNOf(pa))
	}
	if _, err := p.PagemapPFN(base + vm.PageSize); err == nil {
		t.Fatal("pagemap of non-present page succeeded")
	}
}

func TestHammerActivatesRows(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Spawn("a", 0)
	const pages = 64
	base, _ := p.Mmap(pages * vm.PageSize)
	p.Touch(base, pages*vm.PageSize)

	// Find two mapped pages in the same bank but different rows: only a
	// row conflict causes an activation, so adjacent frames inside one
	// 8 KiB row would show nothing.
	mapper := m.DRAM().Mapper()
	var a, b vm.VirtAddr
	found := false
outer:
	for i := 0; i < pages && !found; i++ {
		for j := i + 1; j < pages; j++ {
			pai, _ := p.Translate(base + vm.VirtAddr(i)*vm.PageSize)
			paj, _ := p.Translate(base + vm.VirtAddr(j)*vm.PageSize)
			ai, aj := mapper.ToDRAM(pai), mapper.ToDRAM(paj)
			if mapper.BankGroup(ai) == mapper.BankGroup(aj) && ai.Row != aj.Row {
				a = base + vm.VirtAddr(i)*vm.PageSize
				b = base + vm.VirtAddr(j)*vm.PageSize
				found = true
				break outer
			}
		}
	}
	if !found {
		t.Skip("no same-bank different-row page pair in this mapping")
	}
	before := m.DRAM().Stats().Activations
	for i := 0; i < 100; i++ {
		p.Hammer(a)
		p.Hammer(b)
	}
	if got := m.DRAM().Stats().Activations - before; got < 199 {
		t.Fatalf("expected ~200 activations from row conflicts, got %d", got)
	}
	if err := p.Hammer(0xdead0000); err == nil {
		t.Fatal("hammer outside VMA accepted")
	}
}

func TestTouchFaultsEveryPage(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Spawn("a", 0)
	base, _ := p.Mmap(16 * vm.PageSize)
	if err := p.Touch(base, 16*vm.PageSize); err != nil {
		t.Fatal(err)
	}
	if p.AddressSpace().PT.MappedPages() != 16 {
		t.Fatalf("mapped pages = %d, want 16", p.AddressSpace().PT.MappedPages())
	}
	if err := p.AddressSpace().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMmapAtHint(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Spawn("a", 0)
	hint := vm.VirtAddr(0x5000_0000_0000)
	got, err := p.MmapAt(hint, vm.PageSize)
	if err != nil || got != hint {
		t.Fatalf("MmapAt = %#x, %v", uint64(got), err)
	}
}
