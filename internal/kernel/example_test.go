package kernel_test

import (
	"fmt"

	"explframe/internal/kernel"
	"explframe/internal/mm"
	"explframe/internal/vm"
)

// ExampleMachine walks the Section V steering primitive against the kernel
// API (the full scenario tour is examples/allocator-steering): the attacker
// maps and touches a buffer, releases one chosen frame into its CPU's page
// frame cache, stays active, and the victim's next small allocation on the
// same CPU receives exactly that frame.
func ExampleMachine() {
	m, err := kernel.NewMachine(kernel.DefaultConfig())
	if err != nil {
		panic(err)
	}
	attacker, err := m.Spawn("attacker", 0)
	if err != nil {
		panic(err)
	}

	// Map, touch ("the program must store some data into the allocated
	// pages"), pick a page, release it.
	const pages = 64
	base, err := attacker.Mmap(pages * vm.PageSize)
	if err != nil {
		panic(err)
	}
	if err := attacker.Touch(base, pages*vm.PageSize); err != nil {
		panic(err)
	}
	target := base + 17*vm.PageSize
	pa, _ := attacker.Translate(target)
	planted := mm.PFNOf(pa)
	if err := attacker.Munmap(target, vm.PageSize); err != nil {
		panic(err)
	}

	// The victim arrives on the same CPU and touches one fresh page: the
	// LIFO page frame cache hands it the planted frame.
	victim, err := m.Spawn("victim", 0)
	if err != nil {
		panic(err)
	}
	vbase, err := victim.Mmap(vm.PageSize)
	if err != nil {
		panic(err)
	}
	if err := victim.Store(vbase, 0xAA); err != nil {
		panic(err)
	}
	vpa, _ := victim.Translate(vbase)
	fmt.Println("victim received the planted frame:", mm.PFNOf(vpa) == planted)
	// Output: victim received the planted frame: true
}
