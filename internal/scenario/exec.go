package scenario

import (
	"bytes"
	"context"
	"fmt"

	"explframe/internal/cipher/registry"
	"explframe/internal/core"
	"explframe/internal/dram"
	"explframe/internal/fault"
	"explframe/internal/fault/dfa"
	"explframe/internal/fault/pfa"
	"explframe/internal/harness"
	"explframe/internal/rowhammer"
	"explframe/internal/stats"
)

// hammerMode maps a HammerSpec.Mode string onto the engine's enum.
func hammerMode(mode string) rowhammer.Mode {
	switch mode {
	case "single-sided":
		return rowhammer.SingleSided
	case "many-sided":
		return rowhammer.ManySided
	default:
		return rowhammer.DoubleSided
	}
}

// AttackConfig lowers an Attack-kind spec onto core.Config.  The machine —
// a registered profile or an inline spec — supplies the hardware and every
// sizing default; the spec's non-zero fields override exactly the knobs
// they name, so a spec built from options equals the hand-mutated config
// the drivers used to assemble.
func (s Spec) AttackConfig() (core.Config, error) {
	c, ok := registry.Get(s.cipherName())
	if !ok {
		return core.Config{}, fmt.Errorf("scenario: unknown cipher %q", s.cipherName())
	}
	ms, err := s.MachineSpec()
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.ConfigForMachine(ms, s.Seed)
	cfg.VictimCipher = c.Name()
	cfg.VictimKey = core.DefaultVictimKey(c)
	cfg.NoiseProcs = s.Noise.Procs
	cfg.NoiseOps = s.Noise.Ops
	cfg.AttackerSleeps = s.Attacker.Sleeps
	if s.Attacker.CrossCPU {
		cfg.VictimCPU = 1
	}
	if s.Attacker.NoIdleDrain {
		cfg.Machine.DrainOnIdle = false
	}
	if s.PCP == PCPFIFO {
		cfg.Machine.PCPFIFO = true
	}
	if s.Victim.RequestPages > 0 {
		cfg.VictimRequestPages = s.Victim.RequestPages
	}
	if s.Ciphertexts > 0 {
		cfg.Ciphertexts = s.Ciphertexts
	}
	if s.Hammer.Mode != "" {
		cfg.Hammer.Mode = hammerMode(s.Hammer.Mode)
	}
	cfg.Hammer.Decoys = s.Hammer.Decoys
	if s.Hammer.Pairs > 0 {
		cfg.Hammer.PairHammerCount = s.Hammer.Pairs
	}
	if s.Defences.TRR {
		cfg.Machine.FaultModel.TRR = dram.TRRConfig{
			Enabled: true, TrackerSize: s.trrTracker(), Threshold: s.trrThreshold(),
		}
	}
	if s.Defences.ECC {
		cfg.Machine.FaultModel.ECC = dram.ECCSecDed
	}
	return cfg, nil
}

// SteeringConfig lowers a Steering-kind spec onto core.SteeringConfig (the
// Section V mechanics only; hammer and defence axes do not apply).
func (s Spec) SteeringConfig() core.SteeringConfig {
	cfg := core.DefaultSteeringConfig()
	cfg.Seed = s.Seed
	cfg.NoiseProcs = s.Noise.Procs
	cfg.NoiseOps = s.Noise.Ops
	cfg.AttackerSleeps = s.Attacker.Sleeps
	if s.Attacker.CrossCPU {
		cfg.VictimCPU = 1
	}
	if s.Attacker.NoIdleDrain {
		cfg.Machine.DrainOnIdle = false
	}
	if s.PCP == PCPFIFO {
		cfg.Machine.PCPFIFO = true
	}
	if s.Victim.RequestPages > 0 {
		cfg.VictimRequestPages = s.Victim.RequestPages
	}
	return cfg
}

// BaselineConfig lowers a Baseline-kind spec onto core.BaselineConfig.  The
// machine, hammer and buffer come from the spec's attack lowering, so a
// baseline spec is the paired comparison of the attack spec with the same
// seed and profile.
func (s Spec) BaselineConfig() (core.BaselineConfig, error) {
	kind := core.RandomSpray
	if s.BaselineModel == "pagemap-targeted" {
		kind = core.PagemapTargeted
	}
	ac, err := s.AttackConfig()
	if err != nil {
		return core.BaselineConfig{}, err
	}
	bc := core.DefaultBaselineConfig(kind)
	bc.Seed = ac.Seed
	bc.Machine = ac.Machine
	bc.Hammer = ac.Hammer
	bc.AttackerMemory = ac.AttackerMemory
	bc.VictimCipher = ac.VictimCipher
	bc.VictimKey = ac.VictimKey
	bc.VictimPages = ac.VictimRequestPages
	return bc, nil
}

// PFATrial is one crypto-only persistent-fault trial outcome.
type PFATrial struct {
	// RecoveredAt is the ciphertext count at which the last-round key
	// became unique (-1 if the budget ran out first).
	RecoveredAt int
	// MasterOK reports whether the completed master key matched the
	// victim's.
	MasterOK bool
}

// pfaBudget resolves the PFA ciphertext budget: 25 observations per S-box
// value (the coupon-collector scaling) unless the spec overrides it.
func (s Spec) pfaBudget(c registry.Cipher) int {
	if s.Budget > 0 {
		return s.Budget
	}
	return 25 * (1 << uint(c.EntryBits()))
}

// runPFATrial executes one PFA-kind trial: random key, one random
// single-bit S-box fault, known-fault recovery via the cipher-agnostic
// collector, master-key completion verified against the true key.  The
// draw order is pinned by the E15 golden table: faulty encryptions run in
// registry.BatchLanes-wide batches (bitsliced for the built-in ciphers)
// with the chunk's plaintexts pre-drawn in the old per-block order, and
// recovery is still checked after every single observation so RecoveredAt
// stays exact.  Plaintexts drawn past the recovery point are discarded
// with the trial's private rng, which no later draw reads.
func runPFATrial(c registry.Cipher, budget int, rng *stats.RNG) (PFATrial, error) {
	out := PFATrial{RecoveredAt: -1}
	key := make([]byte, c.KeyBytes())
	rng.Bytes(key)
	inst, err := c.New(key)
	if err != nil {
		return out, err
	}
	// Clean pair, captured before the fault lands.
	cleanPT := make([]byte, c.BlockSize())
	rng.Bytes(cleanPT)
	cleanCT := make([]byte, c.BlockSize())
	inst.Encrypt(c.SBox(), cleanCT, cleanPT)

	faulty := c.SBox()
	v := rng.Intn(c.TableLen())
	yStar := faulty[v]
	faulty[v] ^= byte(1 << uint(rng.Intn(c.EntryBits())))

	col := pfa.NewCollector(c)
	bs := c.BlockSize()
	buf := make([]byte, 2*registry.BatchLanes*bs)
	pts := make([][]byte, registry.BatchLanes)
	cts := make([][]byte, registry.BatchLanes)
	for i := range pts {
		pts[i] = buf[i*bs : (i+1)*bs]
		cts[i] = buf[(registry.BatchLanes+i)*bs : (registry.BatchLanes+i+1)*bs]
	}
	for n := 0; n < budget; {
		k := registry.BatchLanes
		if rem := budget - n; rem < k {
			k = rem
		}
		for i := 0; i < k; i++ {
			rng.Bytes(pts[i])
		}
		inst.EncryptBatch(faulty, cts[:k], pts[:k])
		for i := 0; i < k; i++ {
			if err := col.Observe(cts[i]); err != nil {
				return out, err
			}
			if _, err := col.RecoverLastRoundKeyKnownFault(yStar); err == nil {
				out.RecoveredAt = n + i + 1
				master, err := col.RecoverMasterKnownFault(yStar, cleanPT, cleanCT)
				out.MasterOK = err == nil && bytes.Equal(master, key)
				return out, nil
			}
		}
		n += k
	}
	return out, nil
}

// DFATrial is one crypto-only differential-fault trial outcome.
type DFATrial struct {
	// RecoveredAt is the correct/faulty pair count at which the key space
	// collapsed to the single true key (-1 if the budget ran out first).
	RecoveredAt int
	// MasterOK reports whether the completed master key matched the
	// victim's.
	MasterOK bool
	// KeySpaceBits is the surviving last-round-key space, in bits, when the
	// trial stopped — 0 on recovery, the ladder's figure of merit when the
	// budget ran out.
	KeySpaceBits float64
}

// dfaBudget resolves the DFA pair budget: 16 pairs unless the spec
// overrides it.
func (s Spec) dfaBudget() int {
	if s.Budget > 0 {
		return s.Budget
	}
	return 16
}

// runDFATrial executes one DFA-kind trial: random key, a full budget of
// correct/faulty pairs collected through the batched dfa.CollectPairs
// (same per-pair draw order as the old one-at-a-time loop, so the E17
// golden holds), then re-analysed pair by pair until the analyzer pins a
// unique key or the budget runs out.  Pairs collected past the recovery
// point are discarded with the trial's private rng.  Master-key
// completion is verified against the true key.
func runDFATrial(c registry.Cipher, a dfa.Analyzer, m fault.Model, budget int, rng *stats.RNG) (DFATrial, error) {
	out := DFATrial{RecoveredAt: -1}
	key := make([]byte, c.KeyBytes())
	rng.Bytes(key)
	inst, err := c.New(key)
	if err != nil {
		return out, err
	}
	table := c.SBox()
	pairs, err := dfa.CollectPairs(c, inst, table, budget, m, rng)
	if err != nil {
		return out, err
	}
	for n := 1; n <= budget; n++ {
		res, err := a.Analyze(pairs[:n], m)
		if err != nil {
			return out, err
		}
		out.KeySpaceBits = res.KeySpaceBits
		if res.Unique {
			out.RecoveredAt = n
			out.MasterOK = res.Master != nil && bytes.Equal(res.Master, key)
			break
		}
	}
	return out, nil
}

// Result carries one executed scenario: the spec it ran plus the per-trial
// outcomes of whichever pipeline the kind selected (the other slices stay
// nil).
type Result struct {
	// Spec is the scenario that produced this result.
	Spec Spec
	// Attack holds Attack-kind per-trial reports.
	Attack []*core.Report
	// Steering holds Steering-kind per-trial results.
	Steering []*core.SteeringResult
	// Baseline holds Baseline-kind per-trial results.
	Baseline []*core.BaselineResult
	// PFA holds PFA-kind per-trial outcomes.
	PFA []PFATrial
	// DFA holds DFA-kind per-trial outcomes.
	DFA []DFATrial
	// CacheProbe holds CacheProbe-kind per-trial outcomes.
	CacheProbe []CacheProbeTrial
}

// AttackStats aggregates Attack-kind trials per phase.
type AttackStats struct {
	// Site, Steer, Fault and Key are the per-phase success proportions
	// (usable flip templated, frame steered, fault planted, key recovered).
	Site, Steer, Fault, Key stats.Proportion
	// Ciphertexts summarises the analysis cost of the successful trials.
	Ciphertexts stats.Summary
}

// AttackStats folds the attack reports into per-phase proportions.
func (r *Result) AttackStats() AttackStats {
	var a AttackStats
	for _, rep := range r.Attack {
		a.Site.Observe(rep.SiteFound)
		a.Steer.Observe(rep.SteeringHit)
		a.Fault.Observe(rep.FaultInjected)
		a.Key.Observe(rep.Success())
		if rep.Success() {
			a.Ciphertexts.Observe(float64(rep.CiphertextsUsed))
		}
	}
	return a
}

// SteeringStats aggregates Steering-kind trials.
type SteeringStats struct {
	// FirstPage is the precise-steering success proportion (victim's first
	// touched page received the hottest planted frame).
	FirstPage stats.Proportion
	// PlantedReused summarises how many planted frames surfaced anywhere
	// in the victim's allocation.
	PlantedReused stats.Summary
}

// SteeringStats folds the steering results.
func (r *Result) SteeringStats() SteeringStats {
	var s SteeringStats
	for _, res := range r.Steering {
		s.FirstPage.Observe(res.FirstPageHit)
		s.PlantedReused.Observe(float64(res.PlantedReused))
	}
	return s
}

// BaselineStats aggregates Baseline-kind trials.
type BaselineStats struct {
	// Corrupted is the success proportion (fault reached the victim table).
	Corrupted stats.Proportion
	// NeighboursOwned counts trials where the attacker mapped a row
	// adjacent to the victim row.
	NeighboursOwned int
}

// BaselineStats folds the baseline results.
func (r *Result) BaselineStats() BaselineStats {
	var b BaselineStats
	for _, res := range r.Baseline {
		b.Corrupted.Observe(res.TableCorrupted)
		if res.NeighboursOwned {
			b.NeighboursOwned++
		}
	}
	return b
}

// PFAStats aggregates PFA-kind trials.
type PFAStats struct {
	// Recovered and MasterOK are the last-round-key and master-key success
	// proportions.
	Recovered, MasterOK stats.Proportion
	// Ciphertexts summarises the observations needed by successful trials.
	Ciphertexts stats.Summary
}

// PFAStats folds the PFA trial outcomes.
func (r *Result) PFAStats() PFAStats {
	var p PFAStats
	for _, tr := range r.PFA {
		p.Recovered.Observe(tr.RecoveredAt > 0)
		p.MasterOK.Observe(tr.MasterOK)
		if tr.RecoveredAt > 0 {
			p.Ciphertexts.Observe(float64(tr.RecoveredAt))
		}
	}
	return p
}

// DFAStats aggregates DFA-kind trials.
type DFAStats struct {
	// Recovered and MasterOK are the unique-key and master-key success
	// proportions.
	Recovered, MasterOK stats.Proportion
	// Pairs summarises the correct/faulty pairs needed by successful trials.
	Pairs stats.Summary
	// KeySpaceBits summarises the surviving key space across all trials —
	// zero when every trial recovered, the precision penalty otherwise.
	KeySpaceBits stats.Summary
}

// DFAStats folds the DFA trial outcomes.
func (r *Result) DFAStats() DFAStats {
	var d DFAStats
	for _, tr := range r.DFA {
		d.Recovered.Observe(tr.RecoveredAt > 0)
		d.MasterOK.Observe(tr.MasterOK)
		if tr.RecoveredAt > 0 {
			d.Pairs.Observe(float64(tr.RecoveredAt))
		}
		d.KeySpaceBits.Observe(tr.KeySpaceBits)
	}
	return d
}

// Run validates spec and executes its trials on the harness pool,
// honouring ctx: cancellation stops the trial dispatch and aborts attack
// pipelines between phases, returning promptly with an error carrying
// ctx.Err().  Execution options (harness.WithWorkers) never affect the
// statistics — one (spec, seed) produces one result at any parallelism.
// Run is RunResumable with nothing checkpointed; every kind's per-trial
// body lives in the spec's trialRunner.
func Run(ctx context.Context, spec Spec, opts ...harness.Option) (*Result, error) {
	return RunResumable(ctx, spec, nil, nil, opts...)
}
