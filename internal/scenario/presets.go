package scenario

import (
	"explframe/internal/cache"
	"explframe/internal/fault"
)

// Preset is a named, documented scenario the CLI can list, describe and run
// without a spec file.
type Preset struct {
	// Name is the CLI handle (explframe run -scenario <name> also resolves
	// presets).
	Name string
	// Description is the one-line catalogue entry `explframe list` prints.
	Description string
	// Spec is the scenario itself.
	Spec Spec
}

// Presets returns the built-in scenario catalogue, in display order.  Every
// entry validates; TestPresetsValid pins that.
func Presets() []Preset {
	return []Preset{
		{
			Name:        "baseline",
			Description: "quiet same-CPU AES-128 attack on the default 256 MiB module",
			Spec:        New(WithLabel("baseline")),
		},
		{
			Name:        "present",
			Description: "the baseline attack against a PRESENT-80 victim",
			Spec:        New(WithLabel("present"), WithCipher("present-80")),
		},
		{
			Name:        "lilliput",
			Description: "the baseline attack against a LILLIPUT-80 victim",
			Spec:        New(WithLabel("lilliput"), WithCipher("lilliput-80")),
		},
		{
			Name:        "ddr4-aes",
			Description: "the baseline attack on the ddr4 machine (XOR-folded bank function)",
			Spec:        New(WithLabel("ddr4-aes"), WithProfile("ddr4")),
		},
		{
			Name:        "server-aes",
			Description: "the baseline attack on the 1 GiB server-1g machine (slower cells)",
			Spec:        New(WithLabel("server-aes"), WithProfile("server-1g")),
		},
		{
			Name:        "noisy",
			Description: "attack under allocator churn: 2 noise processes, 150 events",
			Spec:        New(WithLabel("noisy"), WithNoise(2, 150)),
		},
		{
			Name:        "cross-cpu",
			Description: "victim pinned to another CPU — expected to defeat steering",
			Spec:        New(WithLabel("cross-cpu"), WithCrossCPU()),
		},
		{
			Name:        "sleeping",
			Description: "attacker sleeps after planting — the Section V mistake",
			Spec:        New(WithLabel("sleeping"), WithSleepingAttacker()),
		},
		{
			Name:        "trr",
			Description: "double-sided hammering against TRR(track=4,thr=300)",
			Spec:        New(WithLabel("trr"), WithTRR(0, 0)),
		},
		{
			Name:        "trrespass",
			Description: "many-sided hammering (8 decoys) bypassing the TRR tracker",
			Spec:        New(WithLabel("trrespass"), WithTRR(0, 0), WithManySided(8)),
		},
		{
			Name:        "ecc",
			Description: "attack against SEC-DED ECC correcting single-bit faults",
			Spec:        New(WithLabel("ecc"), WithECC()),
		},
		{
			Name:        "fifo",
			Description: "steering sweep with the pcp ablated to FIFO (40 trials)",
			Spec:        New(WithLabel("fifo"), WithKind(Steering), WithPCPFIFO(), WithTrials(40)),
		},
		{
			Name:        "steer",
			Description: "steering-only sweep, quiet same-CPU (40 trials)",
			Spec:        New(WithLabel("steer"), WithKind(Steering), WithTrials(40)),
		},
		{
			Name:        "pfa-aes",
			Description: "crypto-only PFA on AES-128 (16 trials, no DRAM simulation)",
			Spec:        New(WithLabel("pfa-aes"), WithKind(PFA), WithTrials(16)),
		},
		{
			Name:        "dfa-aes",
			Description: "Piret-Quisquater DFA on AES-128 under precise-byte faults (12 trials)",
			Spec: New(WithLabel("dfa-aes"),
				WithFaultModel(fault.New(fault.PreciseByte)), WithTrials(12)),
		},
		{
			Name:        "dfa-lilliput",
			Description: "round-29 nibble-fault DFA on LILLIPUT-80, 40-pair budget (8 trials)",
			Spec: New(WithLabel("dfa-lilliput"), WithCipher("lilliput-80"),
				WithFaultModel(fault.New(fault.Nibble)), WithTrials(8), WithBudget(40)),
		},
		{
			Name:        "prime-probe",
			Description: "LLC Prime+Probe on AES T-tables, default machine, 4096 measurements (4 trials)",
			Spec: New(WithLabel("prime-probe"), WithProbe(cache.TechPrimeProbe),
				WithProbeNoise(0.05), WithTrials(4)),
		},
		{
			Name:        "evict-reload",
			Description: "Evict+Reload of the AES T-table lines at round resolution, 1024 measurements (4 trials)",
			Spec: New(WithLabel("evict-reload"), WithProbe(cache.TechEvictReload),
				WithProbeNoise(0.05), WithBudget(1024), WithTrials(4)),
		},
		{
			Name:        "page-cache",
			Description: "mincore-style page-cache probing of the victim's table page, 2048 windows (4 trials)",
			Spec: New(WithLabel("page-cache"), WithProbe(cache.TechPageCache),
				WithProbeNoise(0.05), WithBudget(2048), WithTrials(4)),
		},
		{
			Name:        "ddr4-prime-probe",
			Description: "Prime+Probe on the ddr4 machine: XOR-folded slice hash, 4 slices (4 trials)",
			Spec: New(WithLabel("ddr4-prime-probe"), WithProfile("ddr4"),
				WithProbe(cache.TechPrimeProbe), WithProbeNoise(0.05), WithTrials(4)),
		},
		{
			Name:        "spray",
			Description: "prior-work baseline: blind spraying on the fast module (12 trials)",
			Spec: New(WithLabel("spray"), WithProfile(ProfileFast),
				WithBaseline("random-spray"), WithTrials(12)),
		},
		{
			Name:        "pagemap",
			Description: "prior-work baseline: pagemap-targeted hammering (12 trials)",
			Spec: New(WithLabel("pagemap"), WithProfile(ProfileFast),
				WithBaseline("pagemap-targeted"), WithTrials(12)),
		},
	}
}

// CachePresets returns the CacheProbe-kind subset of the catalogue — the
// section `explframe list` prints under its own heading.
func CachePresets() []Preset {
	var out []Preset
	for _, p := range Presets() {
		if p.Spec.Kind == CacheProbe {
			out = append(out, p)
		}
	}
	return out
}

// LookupPreset resolves a preset by name.
func LookupPreset(name string) (Preset, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}
