package scenario

import (
	"reflect"
	"strings"
	"testing"

	"explframe/internal/cache"
	"explframe/internal/fault"
	"explframe/internal/machine"
)

// grid of representative specs used by the round-trip and hash tests.
func sampleSpecs() []Spec {
	return []Spec{
		New(),
		New(WithLabel("noisy row"), WithNoise(2, 150), WithTrials(10), WithSeed(42)),
		New(WithProfile(ProfileFast), WithCipher("present-80"), WithCrossCPU()),
		New(WithTRR(4, 300), WithManySided(8), WithHammerPairs(6400)),
		New(WithECC(), WithSleepingAttacker(), WithCiphertexts(4000)),
		New(WithKind(Steering), WithPCPFIFO(), WithVictimPages(16), WithNoIdleDrain(), WithTrials(25)),
		New(WithProfile(ProfileFast), WithBaseline("pagemap-targeted"), WithTrials(12)),
		New(WithKind(PFA), WithCipher("lilliput-80"), WithBudget(500), WithTrials(16)),
		New(WithKind(DFA), WithTrials(8)),
		New(WithFaultModel(fault.New(fault.PreciseByte)), WithTrials(8)),
		New(WithCipher("lilliput-80"), WithFaultModel(fault.New(fault.Nibble, fault.WithPosition(3))), WithBudget(40), WithTrials(4)),
		New(WithProfile("ddr4"), WithTrials(4)),
		New(WithMachine(machine.MustGet("server-1g")), WithCipher("present-80")),
		New(WithMachine(machine.New("", machine.WithTRR(4, 300))), WithTrials(2)),
		New(WithProbe(cache.TechPrimeProbe), WithProbeNoise(0.05), WithTrials(2)),
		New(WithProbe(cache.TechEvictReload), WithEvictionSet(12), WithBudget(512), WithTrials(2)),
		New(WithProfile("ddr4"), WithProbe(cache.TechPageCache), WithTrials(2)),
	}
}

// Specs must survive JSON encode/decode byte- and value-losslessly:
// decode(encode(s)) == s and re-encoding is byte-identical (idempotence).
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, s := range sampleSpecs() {
		data, err := s.EncodeJSON()
		if err != nil {
			t.Fatalf("%s: encode: %v", s.Name(), err)
		}
		back, err := DecodeSpec(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", s.Name(), err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%s: round trip changed the spec:\n in: %+v\nout: %+v", s.Name(), s, back)
		}
		again, err := back.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(again) {
			t.Errorf("%s: re-encoding is not byte-identical:\n%s\nvs\n%s", s.Name(), data, again)
		}
	}
}

// A typoed field in a scenario file must fail the decode, not silently run
// a different scenario.
func TestDecodeSpecRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"kind":"attack","seed":1,"trials":1,"cihper":"aes"}`)); err == nil {
		t.Fatal("unknown field decoded without error")
	}
}

// The Validate rejection table: every entry must fail with a message
// naming the offending field, and multiple violations must all surface in
// one joined error.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"unknown kind", New(WithKind("exploit")), "kind"},
		{"unknown profile", New(WithProfile("huge")), "profile"},
		{"profile and inline machine", New(WithMachine(machine.MustGet("fast"))).With(func(s *Spec) { s.Profile = ProfileFast }), "pick one"},
		{"invalid inline machine", New(WithMachine(machine.New("", machine.WithCPUs(0)))), "machine"},
		{"zero trials", New(WithTrials(0)), "trials"},
		{"negative trials", New(WithTrials(-3)), "trials"},
		{"unknown cipher", New(WithCipher("des-56")), "cipher"},
		{"unknown hammer mode", New(WithHammerMode("quad-sided")), "hammer.mode"},
		{"decoys without many-sided", New().With(func(s *Spec) { s.Hammer.Decoys = 8 }), "many-sided"},
		{"negative decoys", New(WithManySided(-1)), "decoys"},
		{"negative pairs", New(WithHammerPairs(0)).With(func(s *Spec) { s.Hammer.Pairs = -5 }), "pairs"},
		{"trr geometry without trr", New().With(func(s *Spec) { s.Defences.TRRTracker = 4 }), "trr is false"},
		{"negative noise", New().With(func(s *Spec) { s.Noise.Ops = -1 }), "noise"},
		{"negative victim pages", New(WithVictimPages(-4)), "victim.request_pages"},
		{"negative ciphertext budget", New(WithCiphertexts(-1)), "ciphertexts"},
		{"negative pfa budget", New(WithKind(PFA), WithBudget(-10)), "budget"},
		{"unknown pcp", New().With(func(s *Spec) { s.PCP = "random" }), "pcp"},
		{"baseline without model", New(WithKind(Baseline)), "baseline"},
		{"unknown baseline model", New(WithBaseline("rowpress")), "baseline"},
		{"baseline model on attack kind", New().With(func(s *Spec) { s.BaselineModel = "random-spray" }), "baseline"},
		{"dfa without analyzer", New(WithKind(DFA), WithCipher("present-80")), "no DFA analyzer"},
		{"invalid fault model", New(WithFaultModel(fault.Model{Kind: "laser", Position: fault.Anywhere})), "kind: unknown"},
		{"unsupported fault model", New(WithFaultModel(fault.New(fault.RandomBytes, fault.WithWidth(5)))), "fault"},
		{"fault model on attack kind", New().With(func(s *Spec) { m := fault.New(fault.PreciseBit); s.Fault = &m }), "only kind dfa"},
		{"cache-probe without probe", New(WithKind(CacheProbe)), "probe: required"},
		{"unknown probe technique", New(WithProbe("flush-reload")), "probe.technique"},
		{"probe noise at one", New(WithProbe(cache.TechPrimeProbe), WithProbeNoise(1.0)), "probe.noise"},
		{"negative probe noise", New(WithProbe(cache.TechPrimeProbe), WithProbeNoise(-0.1)), "probe.noise"},
		{"undersized eviction set", New(WithProbe(cache.TechPrimeProbe), WithEvictionSet(3)), "probe.eviction_set"},
		{"unobservable probe victim", New(WithProbe(cache.TechEvictReload), WithCipher("present-80")), "cache line"},
		{"probe on attack kind", New().With(func(s *Spec) { s.Probe = &ProbeSpec{Technique: cache.TechPrimeProbe} }), "only kind cache-probe"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: validated cleanly", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// The machine axis: profile names resolve through the registry, an inline
// spec that copies a registered profile lowers onto the identical
// core.Config, and the machine identity enters the canonical Name.
func TestMachineResolution(t *testing.T) {
	if ms, err := New().MachineSpec(); err != nil || ms.Name != "default" {
		t.Fatalf("default resolution = %+v, %v", ms, err)
	}
	byProfile := New(WithProfile("fast"), WithSeed(9))
	inline := New(WithMachine(machine.MustGet("fast")), WithSeed(9))
	a, err := byProfile.AttackConfig()
	if err != nil {
		t.Fatal(err)
	}
	b, err := inline.AttackConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("inline copy of a profile lowers differently:\n%+v\nvs\n%+v", a, b)
	}
	if name := byProfile.Name(); !strings.Contains(name, ":fast") {
		t.Errorf("profile missing from canonical name %q", name)
	}
	if name := inline.Name(); !strings.Contains(name, ":fast") {
		t.Errorf("inline machine identity missing from canonical name %q", name)
	}
	anon := New(WithMachine(machine.New("", machine.WithCPUs(8))))
	if name := anon.Name(); !strings.Contains(name, ":custom-") {
		t.Errorf("anonymous machine handle missing from canonical name %q", name)
	}
	// Two inline machines sharing a label but differing in configuration
	// are different scenarios: Name/Hash must not collide, or Dedup would
	// silently drop one.
	x := New(WithMachine(machine.New("my-dimm", machine.WithCPUs(2))))
	y := New(WithMachine(machine.New("my-dimm", machine.WithCPUs(8))))
	if x.Name() == y.Name() || x.Hash() == y.Hash() {
		t.Errorf("same-named inline machines collide: %q vs %q", x.Name(), y.Name())
	}
	if _, err := New(WithProfile("missing-machine")).AttackConfig(); err == nil {
		t.Error("AttackConfig resolved an unregistered profile")
	}
	if got := New(WithProfile("ddr4")).MachineName(); got != "ddr4" {
		t.Errorf("MachineName = %q", got)
	}
}

// All violations must surface at once (errors.Join), so a broken scenario
// file reports every mistake in one pass.
func TestValidateJoinsAllErrors(t *testing.T) {
	s := New(WithKind("exploit"), WithTrials(-1), WithCipher("des-56"))
	err := s.Validate()
	if err == nil {
		t.Fatal("expected errors")
	}
	for _, want := range []string{"kind", "trials", "cipher"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q misses the %q violation", err, want)
		}
	}
}

// Valid specs — including every preset and every sample — must validate.
func TestValidAccepted(t *testing.T) {
	for _, s := range sampleSpecs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
	for _, p := range Presets() {
		if err := p.Spec.Validate(); err != nil {
			t.Errorf("preset %s: %v", p.Name, err)
		}
		if p.Name == "" || p.Description == "" {
			t.Errorf("preset %+v missing name/description", p)
		}
	}
}

// Preset names must be unique and resolvable.
func TestPresetLookup(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Presets() {
		if seen[p.Name] {
			t.Fatalf("duplicate preset %q", p.Name)
		}
		seen[p.Name] = true
		got, ok := LookupPreset(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("LookupPreset(%q) = %+v, %v", p.Name, got, ok)
		}
	}
	if _, ok := LookupPreset("no-such-preset"); ok {
		t.Fatal("LookupPreset invented a preset")
	}
}

// Name must be canonical: label-independent, alias-normalising, and
// distinct across semantically different specs; Hash must follow Name.
func TestNameAndHash(t *testing.T) {
	a := New(WithLabel("row one"), WithNoise(2, 150))
	b := New(WithLabel("row two"), WithNoise(2, 150))
	if a.Name() != b.Name() || a.Hash() != b.Hash() {
		t.Fatal("Label leaked into the canonical name/hash")
	}
	aliased := New(WithCipher("aes"))
	canonical := New(WithCipher("aes-128"))
	if aliased.Name() != canonical.Name() {
		t.Fatalf("alias not normalised: %q vs %q", aliased.Name(), canonical.Name())
	}
	seen := map[uint64]string{}
	for _, s := range sampleSpecs() {
		h := s.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %q and %q", prev, s.Name())
		}
		seen[h] = s.Name()
	}
	probe := New(WithProbe(cache.TechPrimeProbe), WithProbeNoise(0.05), WithEvictionSet(12))
	if name := probe.Name(); !strings.Contains(name, "cache-probe") ||
		!strings.Contains(name, "+probe=prime-probe@0.05") || !strings.Contains(name, "+evset=12") {
		t.Errorf("probe fields missing from canonical name %q", name)
	}
	if New().Title() != New().Name() {
		t.Fatal("Title without label should fall back to Name")
	}
	if s := New(WithLabel("x")); s.Title() != "x" {
		t.Fatal("Title should prefer the label")
	}
}
