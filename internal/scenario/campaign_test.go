package scenario

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"explframe/internal/harness"
)

// Grid must enumerate the cross product in row-major order with the last
// axis varying fastest.
func TestGrid(t *testing.T) {
	base := New(WithKind(Steering), WithTrials(5))
	specs := Grid(base,
		[]Option{WithVictimPages(1), WithVictimPages(4)},
		[]Option{WithSeed(1), WithSeed(2), WithSeed(3)},
	)
	if len(specs) != 6 {
		t.Fatalf("grid size = %d, want 6", len(specs))
	}
	wantPages := []int{1, 1, 1, 4, 4, 4}
	wantSeeds := []uint64{1, 2, 3, 1, 2, 3}
	for i, s := range specs {
		if s.Victim.RequestPages != wantPages[i] || s.Seed != wantSeeds[i] {
			t.Fatalf("cell %d = pages %d seed %d", i, s.Victim.RequestPages, s.Seed)
		}
	}
	if got := Grid(base); len(got) != 1 || got[0].Name() != base.Name() {
		t.Fatal("axis-free grid should be the base spec alone")
	}
}

// Dedup must drop semantically identical specs (Label differences do not
// make two specs distinct) while preserving first-seen order.
func TestCampaignDedup(t *testing.T) {
	c := Campaign{Name: "d", Specs: []Spec{
		New(WithLabel("a")),
		New(WithLabel("b")), // same scenario as "a"
		New(WithSeed(2)),
	}}
	out := c.Dedup()
	if len(out.Specs) != 2 {
		t.Fatalf("dedup kept %d specs, want 2", len(out.Specs))
	}
	if out.Specs[0].Label != "a" || out.Specs[1].Seed != 2 {
		t.Fatalf("dedup changed order: %+v", out.Specs)
	}
}

// Campaign.Validate must name the failing spec by index and title.
func TestCampaignValidate(t *testing.T) {
	c := Campaign{Name: "bad", Specs: []Spec{New(), New(WithCipher("des-56"))}}
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "spec 1") {
		t.Fatalf("error does not locate the bad spec: %v", err)
	}
	empty := Campaign{Name: "empty"}
	if empty.Validate() == nil {
		t.Fatal("empty campaign validated")
	}
}

// A campaign run must emit a start and a done event per spec, in spec
// order when specs run serially, and return results in spec order.
func TestCampaignRunEvents(t *testing.T) {
	c := Campaign{Name: "events", Specs: []Spec{
		New(WithKind(Steering), WithTrials(3), WithSeed(1)),
		New(WithKind(Steering), WithTrials(3), WithSeed(2)),
	}}
	var events []Event
	results, err := c.Run(context.Background(), WithProgress(func(e Event) { events = append(events, e) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for i, res := range results {
		if res == nil || res.Spec.Seed != c.Specs[i].Seed {
			t.Fatalf("result %d out of order: %+v", i, res)
		}
	}
	if len(events) != 4 {
		t.Fatalf("%d events, want 4", len(events))
	}
	wantDone := []bool{false, true, false, true}
	wantIdx := []int{0, 0, 1, 1}
	for i, e := range events {
		if e.Done != wantDone[i] || e.Index != wantIdx[i] || e.Total != 2 {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.Done && (e.Result == nil || e.Err != nil) {
			t.Fatalf("done event %d missing result: %+v", i, e)
		}
	}
}

// WithEventChannel must deliver the same events through a channel.
func TestCampaignEventChannel(t *testing.T) {
	c := Campaign{Name: "chan", Specs: []Spec{New(WithKind(Steering), WithTrials(2))}}
	ch := make(chan Event, 8)
	if _, err := c.Run(context.Background(), WithEventChannel(ch)); err != nil {
		t.Fatal(err)
	}
	close(ch)
	n := 0
	for range ch {
		n++
	}
	if n != 2 {
		t.Fatalf("%d channel events, want 2", n)
	}
}

// Cancelling mid-campaign must stop later specs from starting and carry
// ctx.Err() out of Run.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := Campaign{Name: "cancel", Specs: []Spec{
		New(WithKind(Steering), WithTrials(2)),
		New(WithKind(Steering), WithTrials(2), WithSeed(2)),
		New(WithKind(Steering), WithTrials(2), WithSeed(3)),
	}}
	started := 0
	_, err := c.Run(ctx, WithProgress(func(e Event) {
		if !e.Done {
			started++
			cancel() // cancel as soon as the first spec starts
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if started == len(c.Specs) {
		t.Fatal("cancellation did not stop later specs from starting")
	}
}

// Parallel specs share one trial-options slice; Run must copy it before
// appending its context option, or concurrent specs race on the spare
// capacity of the backing array (caught under -race).
func TestCampaignParallelSpecsShareTrialOptions(t *testing.T) {
	var specs []Spec
	for i := uint64(1); i <= 6; i++ {
		specs = append(specs, New(WithKind(Steering), WithTrials(3), WithSeed(i)))
	}
	c := Campaign{Name: "parallel", Specs: specs}
	// Five options leave the accumulated slice with spare capacity
	// (len 5, cap 8), the exact shape that raced before the copy.
	noop := func(int) harness.Option { return harness.WithWorkers(1) }
	results, err := c.Run(context.Background(), WithSpecWorkers(4),
		WithTrialOptions(noop(0), noop(1), noop(2), noop(3), noop(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil || res.Spec.Seed != specs[i].Seed {
			t.Fatalf("result %d wrong under parallel specs: %+v", i, res)
		}
	}
}

// LoadCampaign must accept both shapes: a campaign object and a bare spec
// (wrapped as a one-spec campaign).
func TestLoadCampaignShapes(t *testing.T) {
	dir := t.TempDir()

	camp := Campaign{Name: "file-campaign", Specs: []Spec{New(), New(WithSeed(2))}}
	data, err := camp.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	campPath := filepath.Join(dir, "campaign.json")
	if err := os.WriteFile(campPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCampaign(campPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "file-campaign" || len(got.Specs) != 2 {
		t.Fatalf("campaign loaded as %+v", got)
	}

	spec := New(WithLabel("solo"), WithNoise(2, 150))
	data, err = spec.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCampaign(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Specs) != 1 || got.Name != "solo" || got.Specs[0].Noise.Procs != 2 {
		t.Fatalf("spec loaded as %+v", got)
	}

	if _, err := LoadCampaign(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
