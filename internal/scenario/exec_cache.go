package scenario

import (
	"fmt"

	"explframe/internal/cache"
	"explframe/internal/cipher/registry"
	"explframe/internal/dram"
	"explframe/internal/machine"
	"explframe/internal/stats"
)

// DefaultProbeBudget is the CacheProbe measurement budget a zero Budget
// inherits: enough encryptions for Prime+Probe to recover the full
// first-round key on the default machine with margin.
const DefaultProbeBudget = 4096

// probeBudget resolves the CacheProbe measurement budget.
func (s Spec) probeBudget() int {
	if s.Budget > 0 {
		return s.Budget
	}
	return DefaultProbeBudget
}

// probeConfig lowers the spec's probe fields onto the cache layer's
// config.
func (s Spec) probeConfig() cache.ProbeConfig {
	return cache.ProbeConfig{
		Technique:   s.Probe.Technique,
		Budget:      s.probeBudget(),
		Noise:       s.Probe.Noise,
		EvictionSet: s.Probe.EvictionSet,
	}
}

// CacheProbeTrial is one cache-probe trial outcome.
type CacheProbeTrial struct {
	// Nibbles is the number of correctly recovered first-round key
	// nibbles out of NibbleTotal.
	Nibbles int
	// NibbleTotal is the number of attackable nibbles (one per state
	// byte).
	NibbleTotal int
	// BytesLeaked is the information extracted: recovered key bits for
	// the line-granular techniques, channel capacity over the budget for
	// the page-cache activity channel.
	BytesLeaked float64
	// Measurements is the probe measurements taken.
	Measurements int
	// EvictionSets is the eviction sets constructed (0 for page-cache).
	EvictionSets int
	// BitErrors is the page-cache channel's flipped bits (0 otherwise).
	BitErrors int
}

// runCacheProbeTrial executes one CacheProbe-kind trial: the machine's
// mapper viewed through the scenario's derived LLC geometry and the
// mapper's default slice hash, one cache.Attack per trial with the
// victim key and table placement drawn from the trial's private stream.
func runCacheProbeTrial(c registry.Cipher, ms machine.Spec, g cache.Geometry, cfg cache.ProbeConfig, rng *stats.RNG) (CacheProbeTrial, error) {
	mapper, err := dram.NewNamedMapper(ms.MapperName(), ms.Geometry)
	if err != nil {
		return CacheProbeTrial{}, fmt.Errorf("scenario: %w", err)
	}
	view, err := cache.NewView(mapper, g, cache.DefaultSliceHash(ms.MapperName()))
	if err != nil {
		return CacheProbeTrial{}, err
	}
	atk, err := cache.NewAttack(view, c, cfg, rng)
	if err != nil {
		return CacheProbeTrial{}, err
	}
	res := atk.Run()
	return CacheProbeTrial{
		Nibbles:      res.Nibbles,
		NibbleTotal:  res.NibbleTotal,
		BytesLeaked:  res.BytesLeaked,
		Measurements: res.Measurements,
		EvictionSets: res.EvictionSets,
		BitErrors:    res.BitErrors,
	}, nil
}

// CacheProbeStats aggregates CacheProbe-kind trials.
type CacheProbeStats struct {
	// FullKey is the proportion of trials recovering every attackable
	// nibble.
	FullKey stats.Proportion
	// Nibbles summarises the recovered nibbles per trial.
	Nibbles stats.Summary
	// BytesLeaked summarises the extracted information per trial.
	BytesLeaked stats.Summary
	// BitErrorRate summarises the page-cache channel's per-trial error
	// rate (empty for the line-granular techniques).
	BitErrorRate stats.Summary
}

// CacheProbeStats folds the cache-probe trial outcomes.
func (r *Result) CacheProbeStats() CacheProbeStats {
	var c CacheProbeStats
	for _, tr := range r.CacheProbe {
		c.FullKey.Observe(tr.NibbleTotal > 0 && tr.Nibbles == tr.NibbleTotal)
		c.Nibbles.Observe(float64(tr.Nibbles))
		c.BytesLeaked.Observe(tr.BytesLeaked)
		if tr.EvictionSets == 0 && tr.Measurements > 0 {
			c.BitErrorRate.Observe(float64(tr.BitErrors) / float64(tr.Measurements))
		}
	}
	return c
}
