package scenario

import (
	"fmt"

	"explframe/internal/report"
)

// CampaignTable renders one row per scenario with the kind-appropriate
// headline success metric — the table `explframe sweep` prints for
// campaigns and the one the service persists into the report store when a
// campaign completes.  Nil results (failed specs) are skipped.  Because
// every cell is computed from the deterministic per-trial outcomes, the
// rendered table is byte-identical however the campaign was executed —
// one shot, any worker count, or resumed from a checkpoint.
func CampaignTable(name string, results []*Result) *report.Table {
	t := &report.Table{
		ID:    "campaign",
		Title: fmt.Sprintf("campaign %s: headline success per scenario", name),
		Claim: "declarative scenario grid executed through internal/scenario",
		Columns: []report.Column{
			{Name: "scenario"}, {Name: "kind"}, {Name: "trials"},
			{Name: "success", Unit: "fraction"}, {Name: "detail"},
		},
	}
	for _, res := range results {
		if res == nil {
			continue
		}
		spec := res.Spec
		var rate float64
		var detail string
		switch spec.Kind {
		case Attack:
			st := res.AttackStats()
			rate = st.Key.Rate()
			detail = fmt.Sprintf("site %.2f steer %.2f fault %.2f", st.Site.Rate(), st.Steer.Rate(), st.Fault.Rate())
		case Steering:
			st := res.SteeringStats()
			rate = st.FirstPage.Rate()
			detail = fmt.Sprintf("planted reused mean %.2f", st.PlantedReused.Mean())
		case Baseline:
			st := res.BaselineStats()
			rate = st.Corrupted.Rate()
			detail = fmt.Sprintf("neighbours owned %d/%d", st.NeighboursOwned, st.Corrupted.Trials)
		case PFA:
			st := res.PFAStats()
			rate = st.MasterOK.Rate()
			detail = fmt.Sprintf("last-round recovered %.2f", st.Recovered.Rate())
		case DFA:
			st := res.DFAStats()
			rate = st.MasterOK.Rate()
			detail = fmt.Sprintf("keyspace mean %.1f bits", st.KeySpaceBits.Mean())
		case CacheProbe:
			st := res.CacheProbeStats()
			rate = st.FullKey.Rate()
			detail = fmt.Sprintf("nibbles mean %.1f, leaked mean %.1f B", st.Nibbles.Mean(), st.BytesLeaked.Mean())
		}
		t.AddRow(report.Str(spec.Title()), report.Str(string(spec.Kind)),
			report.Int(spec.Trials), report.Float(rate, 3), report.Str(detail))
	}
	return t
}
