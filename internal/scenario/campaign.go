package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"explframe/internal/harness"
	"explframe/internal/stats"
)

// Campaign is a named grid of scenarios executed as one unit — the shape of
// every multi-row experiment table and of sweep files on disk.
type Campaign struct {
	// Name labels the campaign (table IDs, file names, progress lines).
	Name string `json:"name"`
	// Specs are the member scenarios, run in declaration order.
	Specs []Spec `json:"specs"`
}

// Grid builds a spec per combination of the given option axes applied to
// base: one axis contributes one option to every combination, and the
// cross product enumerates in row-major order (the last axis varies
// fastest).  An empty axis is skipped.
func Grid(base Spec, axes ...[]Option) []Spec {
	specs := []Spec{base}
	for _, axis := range axes {
		if len(axis) == 0 {
			continue
		}
		next := make([]Spec, 0, len(specs)*len(axis))
		for _, s := range specs {
			for _, opt := range axis {
				next = append(next, s.With(opt))
			}
		}
		specs = next
	}
	return specs
}

// Validate checks every member spec and joins the failures, each prefixed
// with its index and title.
func (c *Campaign) Validate() error {
	var errs []error
	if len(c.Specs) == 0 {
		errs = append(errs, errors.New("campaign has no specs"))
	}
	for i, s := range c.Specs {
		if err := s.Validate(); err != nil {
			errs = append(errs, fmt.Errorf("spec %d (%s): %w", i, s.Title(), err))
		}
	}
	return errors.Join(errs...)
}

// Dedup returns a copy of the campaign with semantically duplicate specs
// removed (same canonical Hash; first occurrence wins), the guard sweep
// frontends use before fanning out an expensive grid.
func (c *Campaign) Dedup() Campaign {
	seen := make(map[uint64]bool, len(c.Specs))
	out := Campaign{Name: c.Name}
	for _, s := range c.Specs {
		h := s.Hash()
		if seen[h] {
			continue
		}
		seen[h] = true
		out.Specs = append(out.Specs, s)
	}
	return out
}

// Event reports campaign progress: one event when a spec starts (Result
// nil, Done false), one when it finishes (Done true, Result or Err set),
// and — with WithTrialEvents — one per completed trial in between (Trial
// >= 0, Outcome set).  SpecHash and Trial make every event self-identifying:
// a consumer can attribute it to exactly one (spec, trial) without holding
// the campaign, which is what the service journal keys checkpoints on.
type Event struct {
	// Index and Total locate the spec within the campaign.
	Index, Total int
	// Spec is the scenario the event concerns.
	Spec Spec
	// SpecHash is Spec.Hash(), the canonical identity the checkpoint
	// journal and stream consumers key on.
	SpecHash uint64
	// Trial is the completed trial's index for trial-level events, -1 for
	// spec-level start and finish events.
	Trial int
	// Outcome is the completed trial's result (trial-level events only).
	Outcome *TrialOutcome
	// Result is the outcome (finish events of successful specs only).
	Result *Result
	// Err is the failure (finish events of failed specs only).
	Err error
	// Done distinguishes finish events from start events.  Trial-level
	// events always carry Done true (the trial is complete).
	Done bool
}

// CampaignOption adjusts one Campaign.Run call.
type CampaignOption func(*campaignOpts)

type campaignOpts struct {
	progress    func(Event)
	specWorkers int
	trialOpts   []harness.Option
	trialEvents bool
	checkpoint  Checkpoint
}

// WithProgress registers a progress callback.  Events are delivered
// serialized (never concurrently), but with parallel specs their order may
// interleave across specs — use Event.Index to attribute them.
func WithProgress(fn func(Event)) CampaignOption {
	return func(o *campaignOpts) { o.progress = fn }
}

// WithEventChannel delivers progress events to ch instead of a callback.
// The channel is not closed by Run; sends block, so give it capacity or
// drain it concurrently.
func WithEventChannel(ch chan<- Event) CampaignOption {
	return func(o *campaignOpts) { o.progress = func(e Event) { ch <- e } }
}

// WithSpecWorkers runs up to n member specs concurrently (default 1:
// specs run in order, each parallelizing its own trials).  Results are
// unaffected — the determinism contract holds per spec.
func WithSpecWorkers(n int) CampaignOption {
	return func(o *campaignOpts) {
		if n > 0 {
			o.specWorkers = n
		}
	}
}

// WithTrialOptions forwards harness options (e.g. harness.WithWorkers) to
// every member spec's trial pool.
func WithTrialOptions(opts ...harness.Option) CampaignOption {
	return func(o *campaignOpts) { o.trialOpts = append(o.trialOpts, opts...) }
}

// WithTrialEvents emits one additional progress event per computed trial
// (Trial >= 0, Outcome set) between each spec's start and finish events —
// the per-trial stream the campaign service journals and serves.  Trials
// merged from a checkpoint are not re-emitted, so a journal fed by these
// events records each trial exactly once across interrupted runs.
func WithTrialEvents() CampaignOption {
	return func(o *campaignOpts) { o.trialEvents = true }
}

// WithCheckpoint resumes the campaign from previously completed trials,
// keyed by spec hash then trial index.  Checkpointed trials are merged
// into the results without recomputing; because trial k only ever draws
// from its private stream, the folded results — and the tables rendered
// from them — are byte-identical to an uninterrupted run.
func WithCheckpoint(cp Checkpoint) CampaignOption {
	return func(o *campaignOpts) { o.checkpoint = cp }
}

// Run validates the campaign and fans its specs out through the harness,
// honouring ctx mid-campaign: once cancelled, no further spec starts,
// running specs abort between phases, and the error carries ctx.Err().
// Results come back in spec order; a failed spec leaves a nil slot and its
// error joined into the returned error, so one broken scenario does not
// discard the rest of the grid.
func (c *Campaign) Run(ctx context.Context, opts ...CampaignOption) ([]*Result, error) {
	o := campaignOpts{specWorkers: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("campaign %q: %w", c.Name, err)
	}

	var mu sync.Mutex
	emit := func(e Event) {
		if o.progress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		o.progress(e)
	}

	// The spec fan-out rides the same harness as the trials beneath it; the
	// per-spec rng stream is unused because each spec carries its own seed.
	results, err := harness.RunTrials(0, len(c.Specs), func(i int, _ *stats.RNG) (*Result, error) {
		spec := c.Specs[i]
		hash := spec.Hash()
		emit(Event{Index: i, Total: len(c.Specs), Spec: spec, SpecHash: hash, Trial: -1})
		var onTrial func(int, TrialOutcome)
		if o.trialEvents {
			onTrial = func(t int, out TrialOutcome) {
				emit(Event{Index: i, Total: len(c.Specs), Spec: spec, SpecHash: hash, Trial: t, Outcome: &out, Done: true})
			}
		}
		res, err := RunResumable(ctx, spec, o.checkpoint[hash], onTrial, o.trialOpts...)
		emit(Event{Index: i, Total: len(c.Specs), Spec: spec, SpecHash: hash, Trial: -1, Result: res, Err: err, Done: true})
		if err != nil {
			return nil, fmt.Errorf("spec %d (%s): %w", i, spec.Title(), err)
		}
		return res, nil
	}, harness.WithWorkers(o.specWorkers), harness.WithContext(ctx))
	if err != nil {
		return results, fmt.Errorf("campaign %q: %w", c.Name, err)
	}
	return results, nil
}

// EncodeJSON renders the campaign as indented JSON.
func (c *Campaign) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeCampaign parses a campaign from JSON, rejecting unknown fields.
func DecodeCampaign(data []byte) (Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Campaign{}, fmt.Errorf("scenario: decode campaign: %w", err)
	}
	return c, nil
}

// ParseCampaign parses either accepted scenario shape from raw JSON: a
// campaign object ({"name", "specs"}) or a single spec, which is wrapped
// as a one-spec campaign named after its title.  The CLI's file loader and
// the service's submit endpoint share it, so both frontends accept exactly
// the same strict JSON.
func ParseCampaign(data []byte) (Campaign, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return Campaign{}, fmt.Errorf("scenario: %w", err)
	}
	if _, isCampaign := probe["specs"]; isCampaign {
		return DecodeCampaign(data)
	}
	spec, err := DecodeSpec(data)
	if err != nil {
		return Campaign{}, err
	}
	return Campaign{Name: spec.Title(), Specs: []Spec{spec}}, nil
}

// LoadCampaign reads a scenario file in either ParseCampaign shape.
func LoadCampaign(path string) (Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Campaign{}, fmt.Errorf("scenario: %w", err)
	}
	c, err := ParseCampaign(data)
	if err != nil {
		return Campaign{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return c, nil
}
