package scenario

import (
	"context"
	"encoding/json"
	"reflect"
	"sort"
	"sync"
	"testing"

	"explframe/internal/harness"
)

// resumeSpecs are cheap substrate-free specs covering both registry-driven
// kinds, the fixtures resume equivalence is asserted over.
func resumeSpecs() []Spec {
	return []Spec{
		New(WithKind(PFA), WithCipher("present-80"), WithTrials(6), WithSeed(11)),
		New(WithKind(DFA), WithTrials(5), WithSeed(7)),
	}
}

// Resuming from a partial checkpoint must fold to exactly the results of an
// uninterrupted run — the determinism contract extended across process
// restarts — and must recompute only the missing trials.
func TestRunResumableMatchesFullRun(t *testing.T) {
	for _, spec := range resumeSpecs() {
		ref, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}

		// First pass: capture every outcome through onTrial.
		captured := make(map[int]TrialOutcome)
		res, err := RunResumable(context.Background(), spec, nil, func(trial int, out TrialOutcome) {
			captured[trial] = out
		}, harness.WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("%s: RunResumable without checkpoint diverged from Run", spec.Name())
		}
		if len(captured) != spec.Trials {
			t.Fatalf("%s: onTrial fired %d times, want %d", spec.Name(), len(captured), spec.Trials)
		}

		// Second pass: seed a partial checkpoint (trials 0 and 2) and assert
		// only the remainder recomputes, with an identical folded result.
		partial := map[int]TrialOutcome{0: captured[0], 2: captured[2]}
		var recomputed []int
		res2, err := RunResumable(context.Background(), spec, partial, func(trial int, out TrialOutcome) {
			recomputed = append(recomputed, trial)
			if !reflect.DeepEqual(out, captured[trial]) {
				t.Fatalf("%s: trial %d outcome changed on resume", spec.Name(), trial)
			}
		}, harness.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res2, ref) {
			t.Fatalf("%s: resumed result diverged from uninterrupted run", spec.Name())
		}
		sort.Ints(recomputed)
		want := []int{1, 3, 4}
		if spec.Trials == 6 {
			want = []int{1, 3, 4, 5}
		}
		if !reflect.DeepEqual(recomputed, want) {
			t.Fatalf("%s: recomputed trials %v, want %v", spec.Name(), recomputed, want)
		}
	}
}

// A fully checkpointed spec must fold without computing anything.
func TestRunResumableFullyCheckpointed(t *testing.T) {
	spec := resumeSpecs()[0]
	ref, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	full := make(map[int]TrialOutcome)
	if _, err := RunResumable(context.Background(), spec, nil, func(trial int, out TrialOutcome) {
		full[trial] = out
	}); err != nil {
		t.Fatal(err)
	}
	res, err := RunResumable(context.Background(), spec, full, func(trial int, _ TrialOutcome) {
		t.Fatalf("trial %d recomputed despite full checkpoint", trial)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatal("fully checkpointed fold diverged")
	}
}

// Checkpoint entries outside the trial range or of the wrong kind must be
// rejected before any trial runs.
func TestRunResumableRejectsBadCheckpoint(t *testing.T) {
	spec := resumeSpecs()[0]
	outOfRange := map[int]TrialOutcome{spec.Trials: {PFA: &PFATrial{}}}
	if _, err := RunResumable(context.Background(), spec, outOfRange, nil); err == nil {
		t.Fatal("out-of-range checkpoint entry accepted")
	}
	wrongKind := map[int]TrialOutcome{0: {DFA: &DFATrial{}}}
	if _, err := RunResumable(context.Background(), spec, wrongKind, nil); err == nil {
		t.Fatal("wrong-kind checkpoint entry accepted")
	}
}

// TrialOutcome must survive a JSON round-trip bit-exactly: the journal
// substitutes decoded outcomes for recomputation, so any lossy field would
// break byte-identical resume.
func TestTrialOutcomeJSONRoundTrip(t *testing.T) {
	for _, spec := range resumeSpecs() {
		var outs []TrialOutcome
		if _, err := RunResumable(context.Background(), spec, nil, func(_ int, out TrialOutcome) {
			outs = append(outs, out)
		}); err != nil {
			t.Fatal(err)
		}
		for i, out := range outs {
			data, err := json.Marshal(out)
			if err != nil {
				t.Fatal(err)
			}
			var back TrialOutcome
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out, back) {
				t.Fatalf("%s trial %d: outcome not JSON round-trip stable", spec.Name(), i)
			}
		}
	}
}

// Checkpoint.Add and Trials must key by (hash, trial) with last-add-wins.
func TestCheckpointAccounting(t *testing.T) {
	cp := make(Checkpoint)
	cp.Add(1, 0, TrialOutcome{})
	cp.Add(1, 1, TrialOutcome{})
	cp.Add(1, 1, TrialOutcome{}) // duplicate: replaces, not double-counts
	cp.Add(2, 0, TrialOutcome{})
	if got := cp.Trials(); got != 3 {
		t.Fatalf("Trials() = %d, want 3", got)
	}
}

// WithTrialEvents must emit one self-identifying event per computed trial,
// and WithCheckpoint must suppress events for merged trials, so a journal
// fed by these events records each trial exactly once across restarts.
func TestCampaignTrialEvents(t *testing.T) {
	camp := Campaign{Name: "resume-events", Specs: resumeSpecs()}
	var mu sync.Mutex
	type key struct {
		hash  uint64
		trial int
	}
	seen := make(map[key]int)
	cp := make(Checkpoint)
	var outs []TrialOutcome
	_, err := camp.Run(context.Background(), WithTrialEvents(),
		WithProgress(func(e Event) {
			mu.Lock()
			defer mu.Unlock()
			if e.Trial < 0 {
				return
			}
			if e.Outcome == nil || !e.Done {
				t.Errorf("trial event without outcome or done: %+v", e)
				return
			}
			if e.SpecHash != e.Spec.Hash() {
				t.Errorf("event hash %016x != spec hash %016x", e.SpecHash, e.Spec.Hash())
			}
			seen[key{e.SpecHash, e.Trial}]++
			cp.Add(e.SpecHash, e.Trial, *e.Outcome)
			outs = append(outs, *e.Outcome)
		}))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range camp.Specs {
		total += s.Trials
	}
	if len(seen) != total {
		t.Fatalf("saw %d distinct trial events, want %d", len(seen), total)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("trial %+v emitted %d times", k, n)
		}
	}

	// Re-run against the full checkpoint: results identical, zero new events.
	ref, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run(context.Background(), WithTrialEvents(), WithCheckpoint(cp),
		WithProgress(func(e Event) {
			if e.Trial >= 0 {
				t.Errorf("trial event %d emitted despite full checkpoint", e.Trial)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatal("checkpointed campaign diverged from uninterrupted run")
	}
}

// Matches must pair each populated arm with its kind and reject the rest.
func TestTrialOutcomeMatches(t *testing.T) {
	cases := []struct {
		out  TrialOutcome
		kind Kind
	}{
		{TrialOutcome{PFA: &PFATrial{}}, PFA},
		{TrialOutcome{DFA: &DFATrial{}}, DFA},
	}
	for _, c := range cases {
		if !c.out.Matches(c.kind) {
			t.Fatalf("outcome %+v should match %v", c.out, c.kind)
		}
		if c.out.Matches(Steering) {
			t.Fatalf("outcome %+v matched the wrong kind", c.out)
		}
	}
	if (TrialOutcome{}).Matches(PFA) {
		t.Fatal("empty outcome matched a kind")
	}
}
