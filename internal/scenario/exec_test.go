package scenario

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"explframe/internal/core"
	"explframe/internal/dram"
	"explframe/internal/fault"
	"explframe/internal/harness"
	"explframe/internal/rowhammer"
)

// fastAttackConfig reproduces, by hand, the ProfileFast machine exactly as
// the pre-registry lowering hardcoded it.  It exists only as the reference
// for TestAttackConfigMatchesHandMutation: if the registered "fast" profile
// ever drifts from these numbers, every end-to-end golden table drifts
// with it, and this fixture is what catches the change at unit scope.
func fastAttackConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Machine.Seed = seed
	cfg.Machine.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 1024, RowBytes: 8192}
	cfg.Machine.FaultModel = dram.FaultModel{
		WeakCellDensity: 2e-4,
		BaseThreshold:   1500,
		ThresholdSpread: 0.5,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 20,
		FlipReliability: 0.98,
	}
	cfg.Hammer = rowhammer.Config{Mode: rowhammer.DoubleSided, PairHammerCount: 3200}
	cfg.AttackerMemory = 8 << 20
	cfg.Ciphertexts = 12000
	return cfg
}

// The spec lowering must equal the hand-mutated config the drivers and the
// legacy CLI used to assemble — that equality is what keeps the golden
// tables byte-identical across the API redesign.
func TestAttackConfigMatchesHandMutation(t *testing.T) {
	spec := New(WithProfile(ProfileFast), WithSeed(77), WithTrials(10),
		WithNoise(2, 150), WithTRR(0, 0), WithManySided(8))
	got, err := spec.AttackConfig()
	if err != nil {
		t.Fatal(err)
	}

	want := fastAttackConfig(77)
	want.NoiseProcs = 2
	want.NoiseOps = 150
	want.Machine.FaultModel.TRR = dram.TRRConfig{Enabled: true, TrackerSize: 4, Threshold: 300}
	want.Hammer.Mode = rowhammer.ManySided
	want.Hammer.Decoys = 8
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lowered config diverged:\n got: %+v\nwant: %+v", got, want)
	}

	// The default profile must lower to core.DefaultConfig + the same
	// mutations cmd/explframe's legacy flags performed.
	spec = New(WithSeed(5), WithCrossCPU(), WithSleepingAttacker(), WithECC(), WithCiphertexts(9000))
	got, err = spec.AttackConfig()
	if err != nil {
		t.Fatal(err)
	}
	want = core.DefaultConfig()
	want.Seed = 5
	want.Machine.Seed = 5
	want.VictimCPU = 1
	want.AttackerSleeps = true
	want.Machine.FaultModel.ECC = dram.ECCSecDed
	want.Ciphertexts = 9000
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("default-profile lowering diverged:\n got: %+v\nwant: %+v", got, want)
	}
}

// Steering lowering mirrors core.DefaultSteeringConfig with the spec's
// knobs applied.
func TestSteeringConfigLowering(t *testing.T) {
	spec := New(WithKind(Steering), WithSeed(9), WithTrials(25),
		WithSleepingAttacker(), WithNoIdleDrain(), WithPCPFIFO(), WithVictimPages(16))
	got := spec.SteeringConfig()
	want := core.DefaultSteeringConfig()
	want.Seed = 9
	want.AttackerSleeps = true
	want.Machine.DrainOnIdle = false
	want.Machine.PCPFIFO = true
	want.VictimRequestPages = 16
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("steering lowering diverged:\n got: %+v\nwant: %+v", got, want)
	}
}

// Baseline lowering pairs the baseline with the attack spec of the same
// seed/profile: same machine, hammer and buffer.
func TestBaselineConfigLowering(t *testing.T) {
	spec := New(WithProfile(ProfileFast), WithSeed(3), WithBaseline("pagemap-targeted"), WithTrials(12))
	got, err := spec.BaselineConfig()
	if err != nil {
		t.Fatal(err)
	}
	ac := fastAttackConfig(3)
	if got.Kind != core.PagemapTargeted {
		t.Fatalf("kind = %v", got.Kind)
	}
	if !reflect.DeepEqual(got.Machine, ac.Machine) || !reflect.DeepEqual(got.Hammer, ac.Hammer) ||
		got.AttackerMemory != ac.AttackerMemory || got.Seed != 3 {
		t.Fatalf("baseline not paired with its attack config: %+v", got)
	}
}

// Run on an invalid spec must fail fast without executing anything.
func TestRunRejectsInvalidSpec(t *testing.T) {
	_, err := Run(context.Background(), New(WithCipher("des-56")))
	if err == nil {
		t.Fatal("invalid spec ran")
	}
}

// A cancelled context must surface promptly from Run with ctx.Err(), even
// for a spec whose full execution would take far longer than the test.
func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first trial starts
	spec := New(WithProfile(ProfileFast), WithTrials(64))
	start := time.Now()
	_, err := Run(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Run took %v", elapsed)
	}
}

// Mid-flight cancellation: cancel after a deadline while trials run; Run
// must return with ctx.Err() without draining the remaining trials.
func TestRunCancelsMidCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real attack trials")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	spec := New(WithProfile(ProfileFast), WithTrials(500))
	start := time.Now()
	_, err := Run(ctx, spec, harness.WithWorkers(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v — not prompt", elapsed)
	}
}

// A PFA-kind run must execute without the DRAM substrate and recover keys,
// and its stats must be worker-invariant.
func TestRunPFAKind(t *testing.T) {
	spec := New(WithKind(PFA), WithCipher("present-80"), WithTrials(4), WithSeed(11))
	ref, err := Run(context.Background(), spec, harness.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	st := ref.PFAStats()
	if st.Recovered.Trials != 4 {
		t.Fatalf("trials = %d", st.Recovered.Trials)
	}
	if st.MasterOK.Successes == 0 {
		t.Fatal("no PFA trial recovered the master key")
	}
	par, err := Run(context.Background(), spec, harness.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.PFA, par.PFA) {
		t.Fatal("PFA results depend on worker count")
	}
}

// A DFA-kind run must execute without the DRAM substrate, recover master
// keys through the registered analyzer, and stay worker-invariant.
func TestRunDFAKind(t *testing.T) {
	spec := New(WithFaultModel(fault.New(fault.PreciseByte)), WithTrials(4), WithSeed(7))
	ref, err := Run(context.Background(), spec, harness.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	st := ref.DFAStats()
	if st.Recovered.Trials != 4 {
		t.Fatalf("trials = %d", st.Recovered.Trials)
	}
	if st.MasterOK.Successes != st.Recovered.Successes || st.MasterOK.Successes == 0 {
		t.Fatalf("master completion lags recovery: %+v", st)
	}
	par, err := Run(context.Background(), spec, harness.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.DFA, par.DFA) {
		t.Fatal("DFA results depend on worker count")
	}
}

// The DFA fault model resolves to the analyzer ladder's strongest rung when
// the spec leaves it nil, and the explicit model enters the canonical name.
func TestDFAFaultModelResolution(t *testing.T) {
	if m := New(WithKind(DFA)).FaultModel(); m.Kind != fault.PreciseBit {
		t.Fatalf("nil fault on dfa kind resolved to %s, want the ladder head", m.Name())
	}
	s := New(WithFaultModel(fault.New(fault.Nibble)), WithCipher("lilliput-80"))
	if m := s.FaultModel(); m.Kind != fault.Nibble {
		t.Fatalf("explicit fault model lost: %s", m.Name())
	}
	if name := s.Name(); !strings.Contains(name, "+fault=nibble@any") || !strings.Contains(name, "dfa:lilliput-80") {
		t.Fatalf("canonical name %q misses the fault model or cipher", name)
	}
}

// A Steering-kind run aggregates first-page hits; quiet same-CPU steering
// is near deterministic.
func TestRunSteeringKind(t *testing.T) {
	spec := New(WithKind(Steering), WithTrials(10), WithSeed(2))
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st := res.SteeringStats()
	if st.FirstPage.Trials != 10 {
		t.Fatalf("trials = %d", st.FirstPage.Trials)
	}
	if st.FirstPage.Rate() < 0.8 {
		t.Fatalf("quiet same-CPU steering rate = %f", st.FirstPage.Rate())
	}
}
