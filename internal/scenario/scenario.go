// Package scenario makes ExplFrame evaluation scenarios first-class values.
//
// A Spec declares one scenario — victim cipher, deployed defences, hammer
// strategy, allocator noise, attacker behaviour, ciphertext budget, pcp
// policy and trial count — as plain serializable data.  Specs are built with
// functional options (New, With), validated with joined field errors
// (Validate), named and hashed canonically for dedup and golden keys
// (Name, Hash), and round-trip losslessly through JSON so they can live in
// files next to the code that runs them.
//
// On top of the declarative layer sits context-aware execution: Run
// executes one spec's trials on the deterministic harness pool, and
// Campaign fans a named grid of specs out through internal/harness with
// cancellation and progress events.  Every frontend — cmd/explframe, the
// E6/E8/E11/E13/E15 experiment drivers, future service endpoints —
// constructs the same Spec values and shares one execution path, so the
// statistics a scenario produces are fixed by (spec, seed) alone.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"explframe/internal/cache"
	"explframe/internal/cipher/registry"
	"explframe/internal/fault"
	"explframe/internal/fault/dfa"
	"explframe/internal/machine"
	"explframe/internal/stats"
)

// Kind selects which trial pipeline a Spec drives.
type Kind string

// The five scenario kinds, one per trial pipeline in internal/core,
// internal/fault/pfa and internal/fault/dfa.
const (
	// Attack runs the full pipeline: template → plant → steer → re-hammer
	// → persistent fault analysis.
	Attack Kind = "attack"
	// Steering runs the Section V page-frame-cache mechanics only (no
	// hammering) — cheap enough for thousand-trial sweeps.
	Steering Kind = "steering"
	// Baseline runs a prior-work attack model (random spraying or
	// pagemap-assisted targeting) for comparison tables.
	Baseline Kind = "baseline"
	// PFA runs the crypto-only persistent-fault key recovery: a random
	// single-bit S-box fault and ciphertext collection, no simulated DRAM.
	PFA Kind = "pfa"
	// DFA runs the crypto-only differential-fault key recovery: transient
	// faults drawn from a declarative fault.Model, analysed by the cipher's
	// registered dfa.Analyzer — the baseline the persistent route is
	// compared against.
	DFA Kind = "dfa"
	// CacheProbe runs a cache-timing side channel from internal/cache:
	// Prime+Probe or Evict+Reload against the victim's T-table lines, or
	// mincore-style page-cache probing of the victim's table page, on the
	// machine's LLC model.
	CacheProbe Kind = "cache-probe"
)

// Profile selects the simulated machine the scenario runs on: any name in
// the internal/machine registry ("explframe list -machines" prints them).
type Profile string

// Handles for the two historical machine profiles.  The set is open —
// these constants are convenience names for the registry entries the
// golden tables pin, not an enumeration.
const (
	// ProfileDefault is the 256 MiB module of core.DefaultConfig — the
	// paper-proportioned setting cmd/explframe uses.
	ProfileDefault Profile = "default"
	// ProfileFast is the small, vulnerable 32 MiB module the end-to-end
	// experiment tables (E6/E8/E13) use so every trial stays ~1 s.
	ProfileFast Profile = "fast"
)

// HammerSpec declares the Rowhammer strategy.  Zero values inherit the
// profile's defaults (double-sided at the profile's pair count).
type HammerSpec struct {
	// Mode is "", "single-sided", "double-sided" or "many-sided".
	Mode string `json:"mode,omitempty"`
	// Decoys is the tracker-thrashing row count; requires many-sided mode.
	Decoys int `json:"decoys,omitempty"`
	// Pairs overrides the activation pairs per hammer run (0 = profile
	// default).
	Pairs int `json:"pairs,omitempty"`
}

// DefenceSpec declares the deployed DRAM mitigations.
type DefenceSpec struct {
	// TRR enables target-row-refresh with the given tracker geometry.
	TRR bool `json:"trr,omitempty"`
	// TRRTracker is the TRR tracker size (0 = 4, the E13 setting).
	TRRTracker int `json:"trr_tracker,omitempty"`
	// TRRThreshold is the TRR refresh threshold (0 = 300).
	TRRThreshold int `json:"trr_threshold,omitempty"`
	// ECC enables SEC-DED correction on reads.
	ECC bool `json:"ecc,omitempty"`
}

// NoiseSpec declares unrelated allocation churn on the victim CPU between
// plant and steer.
type NoiseSpec struct {
	// Procs is the number of background noise processes.
	Procs int `json:"procs,omitempty"`
	// Ops is the number of allocation events the noise performs.
	Ops int `json:"ops,omitempty"`
}

// AttackerSpec declares the attacker's scheduling behaviour.
type AttackerSpec struct {
	// Sleeps sends the attacker idle after planting — the mistake Section V
	// warns about.
	Sleeps bool `json:"sleeps,omitempty"`
	// CrossCPU pins the victim to a different CPU than the attacker.
	CrossCPU bool `json:"cross_cpu,omitempty"`
	// NoIdleDrain disables the kernel's pcp drain on CPU idle — the E11
	// ablation, equivalent to a busy peer process keeping the CPU awake.
	NoIdleDrain bool `json:"no_idle_drain,omitempty"`
}

// VictimSpec declares the victim process's allocation shape.
type VictimSpec struct {
	// RequestPages is the size of the victim's single mmap request
	// (0 = the 4-page default).
	RequestPages int `json:"request_pages,omitempty"`
}

// ProbeSpec declares a CacheProbe-kind scenario's attacker primitive and
// tuning.  Zero values inherit the cache layer's defaults (an eviction set
// per monitored line at the LLC's associativity, no background noise).
type ProbeSpec struct {
	// Technique selects the primitive: "prime-probe", "evict-reload" or
	// "page-cache" (cache.Techniques lists them).
	Technique string `json:"technique"`
	// Noise is the per-measurement probability of background working-set
	// interference in [0, 1).
	Noise float64 `json:"noise,omitempty"`
	// EvictionSet is the lines per eviction set (0 = the LLC's
	// associativity; fewer than the associativity cannot evict a set).
	EvictionSet int `json:"eviction_set,omitempty"`
}

// PCP policies for the page-frame-cache ablation.
const (
	// PCPLIFO is Linux's policy — the one the steering primitive exploits.
	PCPLIFO = "lifo"
	// PCPFIFO is the ablated policy of experiment E14.
	PCPFIFO = "fifo"
)

// Spec declares one scenario.  The zero value of every optional field means
// "inherit the profile default", so a Spec serializes to exactly the knobs
// the scenario turns.  Build Specs with New/With rather than struct
// literals so defaults stay in one place.
type Spec struct {
	// Label is an optional human-readable name (table row captions).  It is
	// ignored by Name, Hash and Validate: two specs differing only in Label
	// are the same scenario.
	Label string `json:"label,omitempty"`
	// Kind selects the trial pipeline; New defaults it to Attack.
	Kind Kind `json:"kind"`
	// Profile names the simulated machine in the internal/machine
	// registry; New defaults it to ProfileDefault.  Steering and PFA kinds
	// ignore the machine axis (no attack-scale DRAM simulation runs).
	Profile Profile `json:"profile,omitempty"`
	// Machine is an optional inline machine spec, the file-local
	// alternative to naming a registered profile; setting both is a
	// validation error.
	Machine *machine.Spec `json:"machine,omitempty"`
	// Seed drives every stochastic component of every trial.
	Seed uint64 `json:"seed"`
	// Trials is the number of independent trials Run executes.
	Trials int `json:"trials"`

	// Cipher names the victim (any name or alias registered in
	// internal/cipher/registry); "" means aes-128.
	Cipher string `json:"cipher,omitempty"`

	// Hammer, Defences, Noise, Attacker and Victim declare the scenario
	// axes; their zero values inherit the profile defaults.
	Hammer   HammerSpec   `json:"hammer"`
	Defences DefenceSpec  `json:"defences"`
	Noise    NoiseSpec    `json:"noise"`
	Attacker AttackerSpec `json:"attacker"`
	Victim   VictimSpec   `json:"victim"`

	// Ciphertexts bounds the faulty ciphertexts collected for fault
	// analysis (0 = profile default).
	Ciphertexts int `json:"ciphertexts,omitempty"`
	// PCP is the page-frame-cache policy: "", PCPLIFO or PCPFIFO.
	PCP string `json:"pcp,omitempty"`
	// BaselineModel selects the prior-work model for Kind Baseline:
	// "random-spray" or "pagemap-targeted".
	BaselineModel string `json:"baseline,omitempty"`
	// Budget bounds the ciphertexts of a PFA-kind trial (0 = 25 per
	// S-box value, the coupon-collector scaling), the correct/faulty
	// pairs of a DFA-kind trial (0 = 16), or the probe measurements of a
	// CacheProbe-kind trial (0 = 4096).
	Budget int `json:"budget,omitempty"`
	// Fault is the transient fault model of a DFA-kind trial; nil inherits
	// the strongest rung of the cipher analyzer's ladder.
	Fault *fault.Model `json:"fault,omitempty"`
	// Probe is the attacker primitive of a CacheProbe-kind trial; it is
	// required on that kind and forbidden on every other.
	Probe *ProbeSpec `json:"probe,omitempty"`
}

// Option mutates a Spec under construction.
type Option func(*Spec)

// New builds a Spec from the baseline scenario — a quiet same-CPU AES-128
// attack, one trial, seed 1, on the default machine — and applies opts.
func New(opts ...Option) Spec {
	s := Spec{
		Kind:    Attack,
		Profile: ProfileDefault,
		Seed:    1,
		Trials:  1,
		Cipher:  "aes-128",
	}
	return s.With(opts...)
}

// With returns a copy of s with opts applied — the grid-building idiom:
// one base spec, per-row variations.
func (s Spec) With(opts ...Option) Spec {
	for _, opt := range opts {
		opt(&s)
	}
	return s
}

// WithLabel sets the human-readable caption.
func WithLabel(label string) Option { return func(s *Spec) { s.Label = label } }

// WithKind selects the trial pipeline.
func WithKind(k Kind) Option { return func(s *Spec) { s.Kind = k } }

// WithProfile selects the simulated machine by registry name, clearing any
// inline machine spec.
func WithProfile(p Profile) Option {
	return func(s *Spec) {
		s.Profile = p
		s.Machine = nil
	}
}

// WithMachine runs the scenario on an inline machine spec (no registration
// needed), clearing any named profile.
func WithMachine(ms machine.Spec) Option {
	return func(s *Spec) {
		s.Machine = &ms
		s.Profile = ""
	}
}

// WithSeed sets the root seed.
func WithSeed(seed uint64) Option { return func(s *Spec) { s.Seed = seed } }

// WithTrials sets the trial count.
func WithTrials(n int) Option { return func(s *Spec) { s.Trials = n } }

// WithCipher names the victim cipher.
func WithCipher(name string) Option { return func(s *Spec) { s.Cipher = name } }

// WithTRR deploys target-row-refresh with the given tracker size and
// refresh threshold (0, 0 selects the 4/300 E13 setting).
func WithTRR(tracker, threshold int) Option {
	return func(s *Spec) {
		s.Defences.TRR = true
		s.Defences.TRRTracker = tracker
		s.Defences.TRRThreshold = threshold
	}
}

// WithECC deploys SEC-DED correction.
func WithECC() Option { return func(s *Spec) { s.Defences.ECC = true } }

// WithHammerMode sets the hammer strategy ("single-sided", "double-sided",
// "many-sided").
func WithHammerMode(mode string) Option { return func(s *Spec) { s.Hammer.Mode = mode } }

// WithManySided switches to many-sided hammering with n decoy rows — the
// TRRespass-style tracker bypass.
func WithManySided(decoys int) Option {
	return func(s *Spec) {
		s.Hammer.Mode = "many-sided"
		s.Hammer.Decoys = decoys
	}
}

// WithHammerPairs overrides the activation pairs per hammer run.
func WithHammerPairs(n int) Option { return func(s *Spec) { s.Hammer.Pairs = n } }

// WithNoise runs procs background processes performing ops allocation
// events on the victim CPU between plant and steer.
func WithNoise(procs, ops int) Option {
	return func(s *Spec) {
		s.Noise.Procs = procs
		s.Noise.Ops = ops
	}
}

// WithSleepingAttacker makes the attacker go idle after planting.
func WithSleepingAttacker() Option { return func(s *Spec) { s.Attacker.Sleeps = true } }

// WithCrossCPU pins the victim to a different CPU.
func WithCrossCPU() Option { return func(s *Spec) { s.Attacker.CrossCPU = true } }

// WithNoIdleDrain disables the pcp drain on CPU idle (E11 ablation).
func WithNoIdleDrain() Option { return func(s *Spec) { s.Attacker.NoIdleDrain = true } }

// WithVictimPages sets the victim's mmap request size in pages.
func WithVictimPages(n int) Option { return func(s *Spec) { s.Victim.RequestPages = n } }

// WithCiphertexts bounds the faulty ciphertexts collected for analysis.
func WithCiphertexts(n int) Option { return func(s *Spec) { s.Ciphertexts = n } }

// WithPCPFIFO ablates the page frame cache to FIFO service order.
func WithPCPFIFO() Option { return func(s *Spec) { s.PCP = PCPFIFO } }

// WithBaseline selects a Baseline-kind prior-work model ("random-spray" or
// "pagemap-targeted") and sets the kind accordingly.
func WithBaseline(model string) Option {
	return func(s *Spec) {
		s.Kind = Baseline
		s.BaselineModel = model
	}
}

// WithBudget bounds a PFA-kind trial's ciphertext budget or a DFA-kind
// trial's pair budget.
func WithBudget(n int) Option { return func(s *Spec) { s.Budget = n } }

// WithFaultModel selects a DFA-kind scenario under the given transient
// fault model, the way WithBaseline selects its kind.
func WithFaultModel(m fault.Model) Option {
	return func(s *Spec) {
		s.Kind = DFA
		s.Fault = &m
	}
}

// WithProbe selects a CacheProbe-kind scenario under the given probe
// technique (see cache.Techniques), the way WithBaseline selects its kind.
func WithProbe(technique string) Option {
	return func(s *Spec) {
		s.Kind = CacheProbe
		s.Probe = &ProbeSpec{Technique: technique}
	}
}

// WithProbeNoise sets a CacheProbe-kind scenario's background-interference
// probability; apply it after WithProbe.
func WithProbeNoise(p float64) Option {
	return func(s *Spec) {
		if s.Probe == nil {
			s.Probe = &ProbeSpec{}
		}
		s.Probe.Noise = p
	}
}

// WithEvictionSet sets a CacheProbe-kind scenario's lines per eviction
// set; apply it after WithProbe.
func WithEvictionSet(lines int) Option {
	return func(s *Spec) {
		if s.Probe == nil {
			s.Probe = &ProbeSpec{}
		}
		s.Probe.EvictionSet = lines
	}
}

// hammerModes lists the accepted HammerSpec.Mode strings.
var hammerModes = map[string]bool{
	"": true, "single-sided": true, "double-sided": true, "many-sided": true,
}

// baselineModels lists the accepted BaselineModel strings.
var baselineModels = map[string]bool{
	"random-spray": true, "pagemap-targeted": true,
}

// Validate checks every field and returns all violations joined into one
// error (errors.Join), so a config file with three mistakes reports three
// mistakes.
func (s Spec) Validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	switch s.Kind {
	case Attack, Steering, Baseline, PFA, DFA, CacheProbe:
	default:
		fail("kind: unknown %q (want attack, steering, baseline, pfa, dfa or cache-probe)", s.Kind)
	}
	if s.Machine != nil {
		if s.Profile != "" {
			fail("profile: %q and an inline machine are both set (pick one)", s.Profile)
		}
		if err := s.Machine.Validate(); err != nil {
			fail("machine: %w", err)
		}
	} else if s.Profile != "" {
		if _, ok := machine.Get(string(s.Profile)); !ok {
			fail("profile: unknown machine %q (registered: %s)", s.Profile, strings.Join(machine.Names(), ", "))
		}
	}
	if s.Trials <= 0 {
		fail("trials: %d, want >= 1", s.Trials)
	}
	if s.Kind != Steering { // every other kind (known or not) names a victim
		if _, ok := registry.Get(s.cipherName()); !ok {
			fail("cipher: unknown %q (registered: %s)", s.cipherName(), strings.Join(registry.Names(), ", "))
		}
	}
	if !hammerModes[s.Hammer.Mode] {
		fail("hammer.mode: unknown %q (want single-sided, double-sided or many-sided)", s.Hammer.Mode)
	}
	if s.Hammer.Decoys < 0 {
		fail("hammer.decoys: %d, want >= 0", s.Hammer.Decoys)
	}
	if s.Hammer.Decoys > 0 && s.Hammer.Mode != "many-sided" {
		fail("hammer.decoys: %d decoy rows need many-sided mode (got %q)", s.Hammer.Decoys, s.Hammer.Mode)
	}
	if s.Hammer.Pairs < 0 {
		fail("hammer.pairs: %d, want >= 0", s.Hammer.Pairs)
	}
	if s.Defences.TRRTracker < 0 || s.Defences.TRRThreshold < 0 {
		fail("defences: negative TRR tracker/threshold (%d, %d)", s.Defences.TRRTracker, s.Defences.TRRThreshold)
	}
	if (s.Defences.TRRTracker > 0 || s.Defences.TRRThreshold > 0) && !s.Defences.TRR {
		fail("defences: TRR tracker/threshold set but trr is false")
	}
	if s.Noise.Procs < 0 || s.Noise.Ops < 0 {
		fail("noise: negative procs/ops (%d, %d)", s.Noise.Procs, s.Noise.Ops)
	}
	if s.Victim.RequestPages < 0 {
		fail("victim.request_pages: %d, want >= 0", s.Victim.RequestPages)
	}
	if s.Ciphertexts < 0 {
		fail("ciphertexts: %d, want >= 0", s.Ciphertexts)
	}
	if s.Budget < 0 {
		fail("budget: %d, want >= 0", s.Budget)
	}
	switch s.PCP {
	case "", PCPLIFO, PCPFIFO:
	default:
		fail("pcp: unknown policy %q (want lifo or fifo)", s.PCP)
	}
	if s.Kind == Baseline {
		if !baselineModels[s.BaselineModel] {
			fail("baseline: unknown model %q (want random-spray or pagemap-targeted)", s.BaselineModel)
		}
	} else if s.BaselineModel != "" {
		fail("baseline: model %q set on kind %q (only kind baseline uses it)", s.BaselineModel, s.Kind)
	}
	if s.Kind == DFA {
		a, ok := dfa.Get(s.cipherName())
		if !ok {
			fail("cipher: no DFA analyzer registered for %q (have: %s)", s.CipherName(), strings.Join(dfa.Names(), ", "))
		}
		if s.Fault != nil {
			if err := s.Fault.Validate(); err != nil {
				fail("fault: %w", err)
			} else if ok {
				if err := a.Supports(*s.Fault); err != nil {
					fail("fault: %w", err)
				}
			}
		}
	} else if s.Fault != nil {
		fail("fault: model %q set on kind %q (only kind dfa uses it)", s.Fault.Name(), s.Kind)
	}
	if s.Kind == CacheProbe {
		if s.Probe == nil {
			fail("probe: required for kind cache-probe (technique: one of %s)", strings.Join(cache.Techniques(), ", "))
		} else {
			if !cache.KnownTechnique(s.Probe.Technique) {
				fail("probe.technique: unknown %q (want %s)", s.Probe.Technique, strings.Join(cache.Techniques(), ", "))
			}
			if s.Probe.Noise < 0 || s.Probe.Noise >= 1 {
				fail("probe.noise: %g, want within [0, 1)", s.Probe.Noise)
			}
			g := s.cacheGeometry()
			if s.Probe.EvictionSet != 0 && s.Probe.EvictionSet < g.Ways {
				fail("probe.eviction_set: %d lines cannot evict a %d-way set (0 inherits the associativity)",
					s.Probe.EvictionSet, g.Ways)
			}
			if c, ok := registry.Get(s.cipherName()); ok {
				if err := cache.Observable(c, g.LineBytes); err != nil {
					fail("cipher: %w", err)
				}
			}
		}
	} else if s.Probe != nil {
		fail("probe: technique %q set on kind %q (only kind cache-probe uses it)", s.Probe.Technique, s.Kind)
	}
	return errors.Join(errs...)
}

// cacheGeometry derives the LLC geometry of the machine the scenario runs
// on (the scenario-layer policy: cache shape follows the machine's CPU
// count, so machine specs stay unchanged and their hashes stable).
func (s Spec) cacheGeometry() cache.Geometry {
	cpus := 2
	if ms, err := s.MachineSpec(); err == nil && ms.CPUs > 0 {
		cpus = ms.CPUs
	}
	return cache.DefaultGeometry(cpus)
}

// MachineSpec resolves the machine the scenario runs on: the inline spec
// when present, otherwise the registered profile (ProfileDefault when the
// field is empty).
func (s Spec) MachineSpec() (machine.Spec, error) {
	if s.Machine != nil {
		return *s.Machine, nil
	}
	name := string(s.Profile)
	if name == "" {
		name = string(ProfileDefault)
	}
	ms, ok := machine.Get(name)
	if !ok {
		return machine.Spec{}, fmt.Errorf("scenario: unknown machine profile %q (registered: %s)",
			name, strings.Join(machine.Names(), ", "))
	}
	return ms, nil
}

// MachineName returns the canonical name of the machine the scenario runs
// on — the registered profile name, or the inline spec's derived handle.
func (s Spec) MachineName() string {
	if s.Machine != nil {
		return s.Machine.CanonicalName()
	}
	if s.Profile == "" {
		return string(ProfileDefault)
	}
	return string(s.Profile)
}

// FaultModel resolves the fault model a DFA-kind scenario runs under: the
// explicit Fault when set, otherwise the strongest rung of the cipher
// analyzer's ladder.
func (s Spec) FaultModel() fault.Model {
	if s.Fault != nil {
		return *s.Fault
	}
	if a, ok := dfa.Get(s.cipherName()); ok {
		if l := a.Ladder(); len(l) > 0 {
			return l[0]
		}
	}
	return fault.New(fault.PreciseByte)
}

// cipherName resolves the cipher default.
func (s Spec) cipherName() string {
	if s.Cipher == "" {
		return "aes-128"
	}
	return s.Cipher
}

// CipherName returns the victim cipher's canonical registry name, resolving
// the aes-128 default and any alias; an unknown name comes back verbatim
// (Validate reports it).
func (s Spec) CipherName() string {
	if c, ok := registry.Get(s.cipherName()); ok {
		return c.Name()
	}
	return s.cipherName()
}

// Name returns the canonical scenario name: a compact, deterministic
// encoding of every semantic field (Label excluded).  Two specs are the
// same scenario iff their Names are equal, which makes Name usable as a
// dedup and golden-table key.
func (s Spec) Name() string {
	var b strings.Builder
	b.WriteString(string(s.Kind))
	if s.Machine != nil {
		// An inline machine is identified by content, not label: two specs
		// embedding same-named but differently-configured machines must not
		// collide (Dedup would silently drop one).  Anonymous machines
		// already derive a hash handle; named ones get the hash appended.
		if s.Machine.Name == "" {
			fmt.Fprintf(&b, ":%s", s.Machine.CanonicalName())
		} else {
			fmt.Fprintf(&b, ":%s#%08x", s.Machine.Name, uint32(s.Machine.Hash()))
		}
	} else if p := s.Profile; p != "" && p != ProfileDefault {
		fmt.Fprintf(&b, ":%s", p)
	}
	if s.Kind == Attack || s.Kind == PFA || s.Kind == Baseline || s.Kind == DFA || s.Kind == CacheProbe {
		fmt.Fprintf(&b, ":%s", s.CipherName())
	}
	if s.Kind == Baseline {
		fmt.Fprintf(&b, ":%s", s.BaselineModel)
	}
	fmt.Fprintf(&b, ":seed%d:x%d", s.Seed, s.Trials)
	if m := s.Hammer.Mode; m != "" && m != "double-sided" {
		fmt.Fprintf(&b, "+%s", m)
	}
	if s.Hammer.Decoys > 0 {
		fmt.Fprintf(&b, "(%d)", s.Hammer.Decoys)
	}
	if s.Hammer.Pairs > 0 {
		fmt.Fprintf(&b, "+pairs=%d", s.Hammer.Pairs)
	}
	if s.Defences.TRR {
		fmt.Fprintf(&b, "+trr(%d,%d)", s.trrTracker(), s.trrThreshold())
	}
	if s.Defences.ECC {
		b.WriteString("+ecc")
	}
	if s.Noise.Procs > 0 {
		fmt.Fprintf(&b, "+noise(%d,%d)", s.Noise.Procs, s.Noise.Ops)
	}
	if s.Attacker.Sleeps {
		b.WriteString("+sleep")
	}
	if s.Attacker.CrossCPU {
		b.WriteString("+cross-cpu")
	}
	if s.Attacker.NoIdleDrain {
		b.WriteString("+no-idle-drain")
	}
	if s.Victim.RequestPages > 0 {
		fmt.Fprintf(&b, "+pages=%d", s.Victim.RequestPages)
	}
	if s.Ciphertexts > 0 {
		fmt.Fprintf(&b, "+cts=%d", s.Ciphertexts)
	}
	if s.PCP == PCPFIFO {
		b.WriteString("+fifo")
	}
	if s.Budget > 0 {
		fmt.Fprintf(&b, "+budget=%d", s.Budget)
	}
	if s.Fault != nil {
		fmt.Fprintf(&b, "+fault=%s", s.Fault.Name())
	}
	if s.Probe != nil {
		fmt.Fprintf(&b, "+probe=%s", s.Probe.Technique)
		if s.Probe.Noise > 0 {
			fmt.Fprintf(&b, "@%g", s.Probe.Noise)
		}
		if s.Probe.EvictionSet > 0 {
			fmt.Fprintf(&b, "+evset=%d", s.Probe.EvictionSet)
		}
	}
	return b.String()
}

// Title returns the Label when set, the canonical Name otherwise — the
// string table rows and progress lines display.
func (s Spec) Title() string {
	if s.Label != "" {
		return s.Label
	}
	return s.Name()
}

// trrTracker resolves the TRR tracker-size default (the E13 setting).
func (s Spec) trrTracker() int {
	if s.Defences.TRRTracker > 0 {
		return s.Defences.TRRTracker
	}
	return 4
}

// trrThreshold resolves the TRR threshold default (the E13 setting).
func (s Spec) trrThreshold() int {
	if s.Defences.TRRThreshold > 0 {
		return s.Defences.TRRThreshold
	}
	return 300
}

// Hash returns a 64-bit FNV-1a digest of the canonical Name — stable
// across processes, usable for dedup and cache keys.
func (s Spec) Hash() uint64 { return stats.FNV64(s.Name()) }

// EncodeJSON renders the spec as indented JSON.  Only the knobs the
// scenario turns appear (zero-valued fields are omitted), so the encoding
// round-trips losslessly: DecodeSpec(EncodeJSON(s)) == s.
func (s Spec) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeSpec parses one spec from JSON.  Unknown fields are rejected so a
// typoed knob in a scenario file fails loudly instead of silently running
// the wrong scenario.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode spec: %w", err)
	}
	return s, nil
}

// LoadSpec reads one spec from a JSON file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return DecodeSpec(data)
}
