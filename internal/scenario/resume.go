package scenario

import (
	"context"
	"fmt"

	"explframe/internal/cipher/registry"
	"explframe/internal/core"
	"explframe/internal/fault/dfa"
	"explframe/internal/harness"
	"explframe/internal/stats"
)

// TrialOutcome is the serializable result of one trial of any scenario
// kind: exactly one field is non-nil, selected by the spec's Kind.  It is
// the unit of the campaign service's checkpoint journal — a journaled
// outcome substitutes byte-for-byte for recomputing the trial, because
// trial k draws only from its private stats.NewStream(seed, k) stream.
type TrialOutcome struct {
	// Attack holds an Attack-kind trial's phase-by-phase report.
	Attack *core.Report `json:"attack,omitempty"`
	// Steering holds a Steering-kind trial's plant-and-steer result.
	Steering *core.SteeringResult `json:"steering,omitempty"`
	// Baseline holds a Baseline-kind trial's prior-work result.
	Baseline *core.BaselineResult `json:"baseline,omitempty"`
	// PFA holds a PFA-kind trial's key-recovery outcome.
	PFA *PFATrial `json:"pfa,omitempty"`
	// DFA holds a DFA-kind trial's key-recovery outcome.
	DFA *DFATrial `json:"dfa,omitempty"`
	// CacheProbe holds a CacheProbe-kind trial's leakage outcome.
	CacheProbe *CacheProbeTrial `json:"cache_probe,omitempty"`
}

// Matches reports whether the outcome's populated arm agrees with kind —
// the guard a checkpoint consumer runs before substituting a journaled
// outcome for a recomputation.
func (o TrialOutcome) Matches(kind Kind) bool {
	switch kind {
	case Attack:
		return o.Attack != nil
	case Steering:
		return o.Steering != nil
	case Baseline:
		return o.Baseline != nil
	case PFA:
		return o.PFA != nil
	case DFA:
		return o.DFA != nil
	case CacheProbe:
		return o.CacheProbe != nil
	}
	return false
}

// Checkpoint maps spec hash -> trial index -> completed outcome: the
// resume state a campaign journal replays into Campaign.Run so completed
// trials are merged instead of recomputed.
type Checkpoint map[uint64]map[int]TrialOutcome

// Add records one completed trial.
func (cp Checkpoint) Add(specHash uint64, trial int, out TrialOutcome) {
	m := cp[specHash]
	if m == nil {
		m = make(map[int]TrialOutcome)
		cp[specHash] = m
	}
	m[trial] = out
}

// Trials returns the total number of checkpointed trials.
func (cp Checkpoint) Trials() int {
	n := 0
	for _, m := range cp {
		n += len(m)
	}
	return n
}

// trialRunner builds the per-trial function of spec's kind.  Every kind's
// body is the exact per-trial work the historical batch runners performed
// (config re-seeded from the trial stream, then one pipeline run), so the
// outcome of trial k is a pure function of (spec, k) — the property both
// the golden tables and checkpoint resume depend on.
func (s Spec) trialRunner(ctx context.Context) (func(trial int, rng *stats.RNG) (TrialOutcome, error), error) {
	switch s.Kind {
	case Attack:
		cfg, err := s.AttackConfig()
		if err != nil {
			return nil, err
		}
		return func(_ int, rng *stats.RNG) (TrialOutcome, error) {
			c := cfg
			c.Seed = rng.Uint64()
			atk, err := core.NewAttack(c)
			if err != nil {
				return TrialOutcome{}, err
			}
			rep, err := atk.RunContext(ctx)
			if err != nil {
				return TrialOutcome{}, err
			}
			return TrialOutcome{Attack: rep}, nil
		}, nil
	case Steering:
		cfg := s.SteeringConfig()
		return func(_ int, rng *stats.RNG) (TrialOutcome, error) {
			c := cfg
			c.Seed = rng.Uint64()
			res, err := core.RunSteeringTrial(c)
			if err != nil {
				return TrialOutcome{}, err
			}
			return TrialOutcome{Steering: res}, nil
		}, nil
	case Baseline:
		cfg, err := s.BaselineConfig()
		if err != nil {
			return nil, err
		}
		return func(_ int, rng *stats.RNG) (TrialOutcome, error) {
			c := cfg
			c.Seed = rng.Uint64()
			res, err := core.RunBaselineTrial(c)
			if err != nil {
				return TrialOutcome{}, err
			}
			return TrialOutcome{Baseline: res}, nil
		}, nil
	case PFA:
		c := registry.MustGet(s.cipherName())
		budget := s.pfaBudget(c)
		return func(_ int, rng *stats.RNG) (TrialOutcome, error) {
			tr, err := runPFATrial(c, budget, rng)
			if err != nil {
				return TrialOutcome{}, err
			}
			return TrialOutcome{PFA: &tr}, nil
		}, nil
	case DFA:
		c := registry.MustGet(s.cipherName())
		a := dfa.MustGet(c.Name())
		m := s.FaultModel()
		budget := s.dfaBudget()
		return func(_ int, rng *stats.RNG) (TrialOutcome, error) {
			tr, err := runDFATrial(c, a, m, budget, rng)
			if err != nil {
				return TrialOutcome{}, err
			}
			return TrialOutcome{DFA: &tr}, nil
		}, nil
	case CacheProbe:
		c := registry.MustGet(s.cipherName())
		ms, err := s.MachineSpec()
		if err != nil {
			return nil, err
		}
		g := s.cacheGeometry()
		cfg := s.probeConfig()
		return func(_ int, rng *stats.RNG) (TrialOutcome, error) {
			tr, err := runCacheProbeTrial(c, ms, g, cfg, rng)
			if err != nil {
				return TrialOutcome{}, err
			}
			return TrialOutcome{CacheProbe: &tr}, nil
		}, nil
	}
	return nil, fmt.Errorf("scenario: no trial runner for kind %q", s.Kind)
}

// foldOutcomes assembles the kind-typed Result from per-trial outcomes in
// trial order.
func foldOutcomes(spec Spec, outs []TrialOutcome) *Result {
	res := &Result{Spec: spec}
	for _, o := range outs {
		switch spec.Kind {
		case Attack:
			res.Attack = append(res.Attack, o.Attack)
		case Steering:
			res.Steering = append(res.Steering, o.Steering)
		case Baseline:
			res.Baseline = append(res.Baseline, o.Baseline)
		case PFA:
			res.PFA = append(res.PFA, *o.PFA)
		case DFA:
			res.DFA = append(res.DFA, *o.DFA)
		case CacheProbe:
			res.CacheProbe = append(res.CacheProbe, *o.CacheProbe)
		}
	}
	return res
}

// RunResumable is Run with checkpoint resume and per-trial progress: trials
// present in completed are merged into the result without recomputing (their
// rng streams are never drawn from, so the remaining trials are unaffected),
// and onTrial is invoked — serialized, in completion order — for every trial
// actually computed this call, with its outcome.  Merged trials never reach
// onTrial, so a journal fed by it records each trial exactly once across any
// number of interrupted runs.  The folded Result is byte-identical to an
// uninterrupted Run at any split, worker count or resume point.
func RunResumable(ctx context.Context, spec Spec, completed map[int]TrialOutcome, onTrial func(trial int, out TrialOutcome), opts ...harness.Option) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Title(), err)
	}
	for i, out := range completed {
		if i < 0 || i >= spec.Trials {
			return nil, fmt.Errorf("scenario %q: checkpointed trial %d out of range [0,%d)", spec.Title(), i, spec.Trials)
		}
		if !out.Matches(spec.Kind) {
			return nil, fmt.Errorf("scenario %q: checkpointed trial %d does not carry a %s outcome", spec.Title(), i, spec.Kind)
		}
	}
	run, err := spec.trialRunner(ctx)
	if err != nil {
		return nil, err
	}

	outs := make([]TrialOutcome, spec.Trials)
	computed := make([]bool, spec.Trials)
	// Copy before appending: the caller's slice may be shared across
	// parallel campaign specs, and appending into spare capacity would race.
	opts = append(append(make([]harness.Option, 0, len(opts)+2), opts...),
		harness.WithContext(ctx),
		harness.WithTrialDone(func(i int) {
			if computed[i] && onTrial != nil {
				onTrial(i, outs[i])
			}
		}))
	all, err := harness.RunTrials(spec.Seed, spec.Trials, func(i int, rng *stats.RNG) (TrialOutcome, error) {
		if out, ok := completed[i]; ok {
			return out, nil
		}
		out, err := run(i, rng)
		if err != nil {
			return TrialOutcome{}, err
		}
		outs[i] = out
		computed[i] = true
		return out, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return foldOutcomes(spec, all), nil
}
