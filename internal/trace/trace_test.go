package trace

import (
	"bytes"
	"testing"

	"explframe/internal/cipher/aes"
	"explframe/internal/cipher/lilliput"
	"explframe/internal/cipher/present"
	"explframe/internal/cipher/registry"
	"explframe/internal/dram"
	"explframe/internal/kernel"
	"explframe/internal/stats"
	"explframe/internal/vm"
)

func testMachine(t *testing.T) *kernel.Machine {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.Geometry = dram.Geometry{Channels: 1, DIMMs: 1, Ranks: 1, Banks: 4, Rows: 512, RowBytes: 8192}
	m, err := kernel.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAESVictimEncryptsCorrectly(t *testing.T) {
	m := testMachine(t)
	key := []byte("victim-aes-key-0")
	v, err := SpawnVictim(m, 0, "aes-128", key, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("plaintext block!")
	got, err := v.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	// Reference with the pure implementation.
	ks, _ := aes.Expand(key)
	sb := aes.SBox()
	want := make([]byte, 16)
	aes.EncryptBlock(ks, &sb, want, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("victim ciphertext %x != reference %x", got, want)
	}
	if !bytes.Equal(v.Key(), key) {
		t.Fatal("key accessor")
	}
	if _, err := v.Encrypt(make([]byte, 8)); err == nil {
		t.Fatal("wrong block size accepted")
	}
}

func TestPresentVictimEncryptsCorrectly(t *testing.T) {
	m := testMachine(t)
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	v, err := SpawnVictim(m, 0, "present", key, 2, 0) // alias resolves
	if err != nil {
		t.Fatal(err)
	}
	if v.Cipher.Name() != "present-80" {
		t.Fatalf("victim cipher %q", v.Cipher.Name())
	}
	pt := []byte{0, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}
	got, err := v.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	ks, _ := present.Expand(key)
	sb := present.SBox()
	want := make([]byte, 8)
	present.EncryptBlock(ks, &sb, want, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("victim %x != reference %x", got, want)
	}
}

func TestLilliputVictimEncryptsCorrectly(t *testing.T) {
	m := testMachine(t)
	key := []byte{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	v, err := SpawnVictim(m, 0, "lilliput-80", key, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	got, err := v.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	ks, _ := lilliput.Expand(key)
	sb := lilliput.SBox()
	want := make([]byte, 8)
	lilliput.EncryptBlock(ks, &sb, want, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("victim %x != reference %x", got, want)
	}
}

// Corrupting the victim's in-memory table must change ciphertexts and be
// reported by TableCorrupted.
func TestVictimTableCorruption(t *testing.T) {
	m := testMachine(t)
	key := []byte("victim-aes-key-1")
	v, err := SpawnVictim(m, 0, "aes-128", key, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, idx, err := v.TableCorrupted()
	if err != nil || ok || idx != -1 {
		t.Fatalf("fresh table reported corrupted: %v %d %v", ok, idx, err)
	}

	pt := []byte("plaintext block!")
	before, _ := v.Encrypt(pt)

	// Flip one bit of table entry 0x42 directly in victim memory.
	cur, err := v.Proc.Load(v.tableVA + 0x42)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Proc.Store(v.tableVA+0x42, cur^0x08); err != nil {
		t.Fatal(err)
	}

	ok, idx, err = v.TableCorrupted()
	if err != nil || !ok || idx != 0x42 {
		t.Fatalf("corruption not detected: %v %d %v", ok, idx, err)
	}
	after, _ := v.Encrypt(pt)
	if bytes.Equal(before, after) {
		t.Fatal("corrupted table produced identical ciphertext (entry unused is astronomically unlikely over full rounds)")
	}
}

func TestSpawnVictimValidation(t *testing.T) {
	m := testMachine(t)
	if _, err := SpawnVictim(m, 0, "rot13", []byte("victim-aes-key-0"), 4, 0); err == nil {
		t.Fatal("unknown cipher accepted")
	}
	if _, err := SpawnVictim(m, 0, "aes-128", []byte("shortkey"), 4, 0); err == nil {
		t.Fatal("bad key accepted")
	}
	if _, err := SpawnVictim(m, 0, "aes-128", []byte("victim-aes-key-0"), 0, 0); err == nil {
		t.Fatal("zero pages accepted")
	}
	if _, err := SpawnVictim(m, 0, "aes-128", []byte("victim-aes-key-0"), 4, vm.PageSize-100); err == nil {
		t.Fatal("table overflowing the page accepted")
	}
	if _, err := SpawnVictim(m, 9, "aes-128", []byte("victim-aes-key-0"), 4, 0); err == nil {
		t.Fatal("bad cpu accepted")
	}
}

func TestVictimTouchesTablePageFirst(t *testing.T) {
	m := testMachine(t)
	// Plant a frame at the hot end of CPU0's cache, then spawn the victim:
	// its table page must receive that frame.
	p, _ := m.Spawn("planter", 0)
	base, _ := p.Mmap(4 * vm.PageSize)
	p.Touch(base, 4*vm.PageSize)
	pa, _ := p.Translate(base + vm.PageSize)
	p.Munmap(base+vm.PageSize, vm.PageSize)

	v, err := SpawnVictim(m, 0, "aes-128", []byte("victim-aes-key-2"), 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	vpa, ok := v.Proc.Translate(v.TablePage())
	if !ok {
		t.Fatal("table not resident")
	}
	if vpa>>12 != pa>>12 {
		t.Fatalf("table page frame %d, want planted %d", vpa>>12, pa>>12)
	}
}

// Every registered cipher must be spawnable and detect its own table
// corruptions through the registry metadata alone.
func TestAllRegisteredCiphersSpawn(t *testing.T) {
	for _, name := range registry.Names() {
		c := registry.MustGet(name)
		m := testMachine(t)
		key := make([]byte, c.KeyBytes())
		for i := range key {
			key[i] = byte(i + 1)
		}
		v, err := SpawnVictim(m, 0, name, key, 2, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		last := c.TableLen() - 1
		cur, _ := v.Proc.Load(v.tableVA + vm.VirtAddr(last))
		if err := v.Proc.Store(v.tableVA+vm.VirtAddr(last), cur^0x01); err != nil {
			t.Fatal(err)
		}
		idx, vals, err := v.TableCorruptions()
		if err != nil || len(idx) != 1 || idx[0] != last {
			t.Fatalf("%s: corruption at %v (%v), want [%d]", name, idx, err, last)
		}
		if vals[0] != cur^0x01 {
			t.Fatalf("%s: corrupted value %#x", name, vals[0])
		}
	}
}

func TestNoiseChurn(t *testing.T) {
	m := testMachine(t)
	rng := stats.NewRNG(1)
	no, err := SpawnNoise(m, 0, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := no.Churn(500); err != nil {
		t.Fatal(err)
	}
	if err := m.Phys().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	no.Exit()
	if err := m.Phys().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Churn with zero processes is a no-op.
	empty, _ := SpawnNoise(m, 0, 0, rng)
	if err := empty.Churn(10); err != nil {
		t.Fatal(err)
	}
}
