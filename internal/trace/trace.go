// Package trace provides the workload actors the experiments run against
// the simulated kernel: crypto victims that keep an S-box table in a
// steerable page, and background noise processes whose allocation churn
// pollutes the per-CPU page frame cache.
//
// Victims are cipher-agnostic: any cipher registered in
// internal/cipher/registry can be spawned by name, and all table handling
// (size, canonical contents, corruption detection) flows through the
// registry metadata.
package trace

import (
	"fmt"

	"explframe/internal/cipher/registry"
	"explframe/internal/kernel"
	"explframe/internal/stats"
	"explframe/internal/vm"
)

// Victim is a process that performs encryptions with an S-box table held in
// its own (simulated) memory — the data the ExplFrame attack corrupts.
type Victim struct {
	Proc   *kernel.Process
	Cipher registry.Cipher

	inst    registry.Instance
	tableVA vm.VirtAddr
	key     []byte
}

// SpawnVictim creates a victim process running the named registered cipher
// on the given CPU and allocates its working memory: requestPages pages
// obtained with one mmap, with the page holding the S-box table touched
// first (so the hottest page-frame-cache frame backs the table — the
// paper's steering target).  tableOffset is the byte offset of the table
// within that first page.
func SpawnVictim(m *kernel.Machine, cpu int, cipherName string, key []byte, requestPages int, tableOffset int) (*Victim, error) {
	c, ok := registry.Get(cipherName)
	if !ok {
		return nil, fmt.Errorf("trace: unknown cipher %q (registered: %v)", cipherName, registry.Names())
	}
	if requestPages <= 0 {
		return nil, fmt.Errorf("trace: requestPages must be positive")
	}
	if tableOffset < 0 || tableOffset+c.TableLen() > vm.PageSize {
		return nil, fmt.Errorf("trace: table at offset %d does not fit a page", tableOffset)
	}
	inst, err := c.New(key)
	if err != nil {
		return nil, err
	}
	proc, err := m.Spawn("victim", cpu)
	if err != nil {
		return nil, err
	}
	v := &Victim{Proc: proc, Cipher: c, inst: inst, key: append([]byte(nil), key...)}

	base, err := proc.Mmap(uint64(requestPages) * vm.PageSize)
	if err != nil {
		return nil, err
	}
	v.tableVA = base + vm.VirtAddr(tableOffset)

	// First touch allocates the table page — this is the allocation the
	// attack steers.  Remaining pages are touched afterwards.
	if err := proc.WriteBytes(v.tableVA, c.SBox()); err != nil {
		return nil, err
	}
	for p := 1; p < requestPages; p++ {
		if err := proc.Store(base+vm.VirtAddr(p)*vm.PageSize, byte(p)); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// TablePage returns the base virtual address of the page holding the table.
func (v *Victim) TablePage() vm.VirtAddr { return v.tableVA.PageBase() }

// Key returns the victim's secret key (for experiment verification only).
func (v *Victim) Key() []byte { return append([]byte(nil), v.key...) }

// loadTable reads the S-box from victim memory, as a table-driven
// implementation does implicitly on every lookup; reloading per encryption
// is what makes a DRAM fault persistent across ciphertexts.
func (v *Victim) loadTable() ([]byte, error) {
	return v.Proc.ReadBytes(v.tableVA, v.Cipher.TableLen())
}

// Encrypt encrypts one block (Cipher.BlockSize bytes) with the in-memory
// table and returns the ciphertext.
func (v *Victim) Encrypt(pt []byte) ([]byte, error) {
	if len(pt) != v.Cipher.BlockSize() {
		return nil, fmt.Errorf("trace: %s plaintext must be %d bytes, got %d",
			v.Cipher.Name(), v.Cipher.BlockSize(), len(pt))
	}
	table, err := v.loadTable()
	if err != nil {
		return nil, err
	}
	ct := make([]byte, v.Cipher.BlockSize())
	v.inst.Encrypt(table, ct, pt)
	return ct, nil
}

// EncryptBatch encrypts len(pts) blocks through the instance's batch path
// (bitsliced in full 64-lane chunks for the built-in ciphers) and returns
// the ciphertexts in order.  The table is read from victim memory once per
// batch: reads are side-effect-free and the planted faults are persistent,
// so a batch sees exactly the table every per-block Encrypt in its place
// would have seen.
func (v *Victim) EncryptBatch(pts [][]byte) ([][]byte, error) {
	bs := v.Cipher.BlockSize()
	for _, pt := range pts {
		if len(pt) != bs {
			return nil, fmt.Errorf("trace: %s plaintext must be %d bytes, got %d",
				v.Cipher.Name(), bs, len(pt))
		}
	}
	table, err := v.loadTable()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, len(pts)*bs)
	cts := make([][]byte, len(pts))
	for i := range cts {
		cts[i] = buf[i*bs : (i+1)*bs]
	}
	v.inst.EncryptBatch(table, cts, pts)
	return cts, nil
}

// TableCorrupted reports whether the in-memory table deviates from the
// canonical one, and at which byte index.
func (v *Victim) TableCorrupted() (bool, int, error) {
	idx, _, err := v.TableCorruptions()
	if err != nil {
		return false, 0, err
	}
	if len(idx) == 0 {
		return false, -1, nil
	}
	return true, idx[0], nil
}

// TableCorruptions returns every corrupted table index together with the
// byte values currently stored there.  The ExplFrame attacker derives the
// same information from templating (it knows every flippable bit of the
// planted page and the public table layout); experiments read it directly.
func (v *Victim) TableCorruptions() (indices []int, values []byte, err error) {
	raw, err := v.loadTable()
	if err != nil {
		return nil, nil, err
	}
	want := v.Cipher.SBox()
	for i := range raw {
		if raw[i] != want[i] {
			indices = append(indices, i)
			values = append(values, raw[i])
		}
	}
	return indices, values, nil
}

// Noise is a set of background processes that churn memory on one CPU,
// polluting its page frame cache the way unrelated system activity does.
type Noise struct {
	procs []*kernel.Process
	rng   *stats.RNG
	live  [][]vm.VirtAddr // outstanding single-page mappings per process
}

// SpawnNoise creates n noise processes pinned to the CPU.
func SpawnNoise(m *kernel.Machine, cpu, n int, rng *stats.RNG) (*Noise, error) {
	no := &Noise{rng: rng}
	for i := 0; i < n; i++ {
		p, err := m.Spawn(fmt.Sprintf("noise%d", i), cpu)
		if err != nil {
			return nil, err
		}
		no.procs = append(no.procs, p)
		no.live = append(no.live, nil)
	}
	return no, nil
}

// Churn performs ops random allocation events across the noise processes:
// each event either maps and touches a page or unmaps a previously mapped
// one.  This is the traffic that can consume or bury a planted frame.
func (no *Noise) Churn(ops int) error {
	if len(no.procs) == 0 {
		return nil
	}
	for i := 0; i < ops; i++ {
		pi := no.rng.Intn(len(no.procs))
		p := no.procs[pi]
		if len(no.live[pi]) > 0 && no.rng.Bool(0.5) {
			// Unmap a random outstanding page.
			li := no.rng.Intn(len(no.live[pi]))
			va := no.live[pi][li]
			if err := p.Munmap(va, vm.PageSize); err != nil {
				return err
			}
			no.live[pi][li] = no.live[pi][len(no.live[pi])-1]
			no.live[pi] = no.live[pi][:len(no.live[pi])-1]
			continue
		}
		va, err := p.Mmap(vm.PageSize)
		if err != nil {
			return err
		}
		if err := p.Store(va, byte(i)); err != nil {
			return err
		}
		no.live[pi] = append(no.live[pi], va)
	}
	return nil
}

// Exit terminates all noise processes.
func (no *Noise) Exit() {
	for _, p := range no.procs {
		p.Exit()
	}
}
