package report

import (
	"strings"
	"testing"
)

// JSON must round-trip through the typed model losslessly for rendering
// purposes: results.json -> FromJSON -> Markdown has to equal the Markdown
// rendered from the original table, including recomputed verdicts.
func TestJSONRoundTripToMarkdown(t *testing.T) {
	tb := demo()
	tb.Expect(Expectation{Metric: "beta rate reaches 1", Row: 1, Col: 2, Paper: 1.0, Tol: 0.05,
		PaperText: "~1", Source: "Sec. T"})
	tb.Expect(Expectation{Metric: "pooled mean", Row: -1, Col: -1, Direct: 3.5, Paper: 4, Tol: 0.25})
	tb.Expect(Qualitative("mechanism claim", "no figure", "Sec. Q"))

	data, err := JSON(tb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}

	wantMD, err := Markdown(tb)
	if err != nil {
		t.Fatal(err)
	}
	gotMD, err := Markdown(back)
	if err != nil {
		t.Fatal(err)
	}
	if gotMD != wantMD {
		t.Errorf("markdown drifted across the JSON round-trip:\n--- original ---\n%s--- round-tripped ---\n%s", wantMD, gotMD)
	}

	wantText, _ := Text(tb)
	gotText, err := Text(back)
	if err != nil {
		t.Fatal(err)
	}
	if gotText != wantText {
		t.Errorf("text drifted across the JSON round-trip:\n%s\nvs\n%s", wantText, gotText)
	}

	// And the re-serialised JSON is stable (verdicts recomputed, not copied).
	data2, err := JSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(data) {
		t.Errorf("JSON not idempotent:\n%s\nvs\n%s", data, data2)
	}
}

func TestFromJSONRejectsGarbage(t *testing.T) {
	if _, err := FromJSON([]byte("{not json")); err == nil {
		t.Error("FromJSON accepted malformed JSON")
	}
	// Structurally valid JSON, structurally invalid table (ragged row).
	ragged := `{"id":"EX","title":"t","columns":[{"name":"a"},{"name":"b"}],"rows":[[{"kind":"int","text":"1","value":1}]]}`
	if _, err := FromJSON([]byte(ragged)); err == nil || !strings.Contains(err.Error(), "row 0") {
		t.Errorf("FromJSON(ragged) = %v, want arity error", err)
	}
}
