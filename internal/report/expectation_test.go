package report

import (
	"math"
	"testing"
)

// scoreTable builds a one-row table with the given observed value and one
// expectation against it.
func scoreTable(observed float64, e Expectation) (*Table, Expectation) {
	t := &Table{ID: "EX", Columns: Cols("metric", "value")}
	t.AddRow(Str("m"), Float(observed, 3))
	if e.Row == 0 {
		e.Col = 1
	}
	t.Expect(e)
	return t, e
}

func TestScoreVerdicts(t *testing.T) {
	cases := []struct {
		name     string
		observed float64
		e        Expectation
		want     Verdict
	}{
		{"exact", 0.95, Expectation{Metric: "m", Paper: 0.95, Tol: 0.05}, VerdictMatch},
		{"boundary is a match despite float rounding", 1.0, Expectation{Metric: "m", Paper: 0.95, Tol: 0.05}, VerdictMatch},
		{"within 2x tol", 1.05, Expectation{Metric: "m", Paper: 0.95, Tol: 0.05}, VerdictNear},
		{"beyond 2x tol", 1.2, Expectation{Metric: "m", Paper: 0.95, Tol: 0.05}, VerdictDivergent},
		{"zero tolerance, equal", 1.0, Expectation{Metric: "m", Paper: 1.0, Tol: 0}, VerdictMatch},
		{"zero tolerance, any deviation diverges (no near band)", 1.001, Expectation{Metric: "m", Paper: 1.0, Tol: 0}, VerdictDivergent},
		{"missing paper value", 0.5, Expectation{Metric: "m", Paper: NoPaperValue}, VerdictUnscored},
	}
	for _, tc := range cases {
		tb, _ := scoreTable(tc.observed, tc.e)
		scored, err := tb.Score()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(scored) != 1 || scored[0].Verdict != tc.want {
			t.Errorf("%s: verdict = %v, want %v", tc.name, scored[0].Verdict, tc.want)
		}
	}
}

// A Row of -1 scores the Direct value — summary metrics (means, pooled
// rates) that no single cell holds.
func TestScoreDirectObserved(t *testing.T) {
	tb := &Table{ID: "EX", Columns: Cols("a")}
	tb.AddRow(Str("text only"))
	tb.Expect(Expectation{Metric: "mean", Row: -1, Col: -1, Direct: 2271, Paper: 2000, Tol: 250})
	scored, err := tb.Score()
	if err != nil {
		t.Fatal(err)
	}
	if scored[0].Observed != 2271 || scored[0].Verdict != VerdictNear {
		t.Errorf("direct scoring = %+v", scored[0])
	}
}

// A qualitative expectation never scores, and a NaN observation against a
// real paper value is divergent (the metric failed to materialise), not a
// silent skip.
func TestScoreEdgeValues(t *testing.T) {
	q := Qualitative("mechanism", "no figure", "Sec. IV")
	if q.Row != -1 || !math.IsNaN(q.Paper) {
		t.Fatalf("Qualitative() = %+v", q)
	}
	tb := &Table{ID: "EX", Columns: Cols("a")}
	tb.AddRow(Str("x"))
	tb.Expect(q)
	tb.Expect(Expectation{Metric: "vanished", Row: -1, Col: -1, Direct: math.NaN(), Paper: 1, Tol: 0.5})
	scored, err := tb.Score()
	if err != nil {
		t.Fatal(err)
	}
	if scored[0].Verdict != VerdictUnscored {
		t.Errorf("qualitative verdict = %v", scored[0].Verdict)
	}
	if scored[1].Verdict != VerdictDivergent {
		t.Errorf("NaN observation verdict = %v, want divergent", scored[1].Verdict)
	}
}

func TestVerdictBadges(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictMatch:     "✅ match",
		VerdictNear:      "🟡 near",
		VerdictDivergent: "❌ divergent",
		VerdictUnscored:  "⚪ n/a",
	} {
		if v.Badge() != want {
			t.Errorf("Badge(%v) = %q", v, v.Badge())
		}
	}
}
