package report

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// CSV renders the table's series as RFC 4180 CSV: one header record (column
// names, units appended in parentheses) followed by the rows' canonical
// text.  Claim, notes and expectations are metadata, not series, and are
// carried by the Markdown/JSON renderers instead.
func CSV(t *Table) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Name
		if c.Unit != "" {
			header[i] = fmt.Sprintf("%s (%s)", c.Name, c.Unit)
		}
	}
	if err := w.Write(header); err != nil {
		return "", err
	}
	rec := make([]string, len(t.Columns))
	for _, row := range t.Rows {
		for i, c := range row {
			rec[i] = c.Text
		}
		if err := w.Write(rec); err != nil {
			return "", err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", err
	}
	return sb.String(), nil
}
