package report

import "fmt"

// Format names one of the pluggable renderers, as selected by the CLIs'
// -format flag.
type Format string

// The four supported output formats.
const (
	FormatText     Format = "text"
	FormatMarkdown Format = "md"
	FormatCSV      Format = "csv"
	FormatJSON     Format = "json"
)

// Formats lists every supported format name, for flag help strings.
func Formats() []Format {
	return []Format{FormatText, FormatMarkdown, FormatCSV, FormatJSON}
}

// ParseFormat validates a -format flag value.
func ParseFormat(s string) (Format, error) {
	for _, f := range Formats() {
		if s == string(f) {
			return f, nil
		}
	}
	return "", fmt.Errorf("report: unknown format %q (want text, md, csv or json)", s)
}

// Render dispatches the table to the named renderer.
func Render(t *Table, f Format) (string, error) {
	switch f {
	case FormatText:
		return Text(t)
	case FormatMarkdown:
		return Markdown(t)
	case FormatCSV:
		return CSV(t)
	case FormatJSON:
		b, err := JSON(t)
		if err != nil {
			return "", err
		}
		return string(b) + "\n", nil
	default:
		return "", fmt.Errorf("report: unknown format %q", f)
	}
}
