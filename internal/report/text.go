package report

import (
	"fmt"
	"strings"
)

// Text renders the table as aligned plain text — byte-identical to the
// historical experiments.Table.Render output, which is what the golden
// snapshots under internal/experiments/testdata/golden pin.  Expectations
// are deliberately not rendered here: they were introduced after the
// goldens were frozen and belong to the Markdown/JSON views.
func Text(t *Table) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c.Name)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c.Text) > widths[i] {
				widths[i] = len(c.Text)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Headers())
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		texts := make([]string, len(row))
		for i, c := range row {
			texts[i] = c.Text
		}
		line(texts)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "   note: %s\n", n)
	}
	return sb.String(), nil
}
