package report

import (
	"fmt"
	"math"
)

// NoPaperValue marks an expectation as qualitative: the paper states the
// claim but reports no number to compare against, so scoring yields
// VerdictUnscored instead of a match/divergent call.
var NoPaperValue = math.NaN()

// Expectation records what the source paper (or the cited literature)
// reports for one metric of a table, so the table can self-score against
// the reproduction.
type Expectation struct {
	// Metric names the compared quantity, e.g. "steering success, quiet
	// same-CPU".
	Metric string
	// Row and Col address the observed cell.  Row == -1 means the metric
	// is a summary not present in any single cell and Direct holds the
	// observed value instead.
	Row, Col int
	// Direct is the observed value when Row == -1.
	Direct float64
	// Paper is the value the paper reports; NoPaperValue (NaN) marks a
	// qualitative claim with no number attached.
	Paper float64
	// PaperText is the quotable form of the paper's figure, e.g. ">95%"
	// or "~2000 ciphertexts".
	PaperText string
	// Tol is the absolute deviation |observed-Paper| still scored as a
	// match; up to 2x Tol scores "near", beyond that "divergent".  A zero
	// tolerance demands exact equality.
	Tol float64
	// Source cites where the paper states the value, e.g. "Sec. V".
	Source string
}

// Qualitative builds an unscored expectation for a claim the paper makes
// without a number.
func Qualitative(metric, paperText, source string) Expectation {
	return Expectation{Metric: metric, Row: -1, Col: -1, Direct: math.NaN(),
		Paper: NoPaperValue, PaperText: paperText, Source: source}
}

// validate checks the expectation's cell address against the table.
func (e Expectation) validate(t *Table, idx int) error {
	if e.Metric == "" {
		return fmt.Errorf("report: table %s expectation %d has no metric", t.ID, idx)
	}
	if e.Row < 0 {
		return nil
	}
	if e.Row >= len(t.Rows) {
		return fmt.Errorf("report: table %s expectation %q addresses row %d of %d",
			t.ID, e.Metric, e.Row, len(t.Rows))
	}
	if e.Col < 0 || e.Col >= len(t.Columns) {
		return fmt.Errorf("report: table %s expectation %q addresses column %d of %d",
			t.ID, e.Metric, e.Col, len(t.Columns))
	}
	if !t.Rows[e.Row][e.Col].Numeric() {
		return fmt.Errorf("report: table %s expectation %q addresses non-numeric cell (%d,%d) %q",
			t.ID, e.Metric, e.Row, e.Col, t.Rows[e.Row][e.Col].Text)
	}
	return nil
}

// Verdict is the outcome of scoring one expectation.
type Verdict string

// The four verdicts an expectation can score.
const (
	// VerdictMatch: the observed value is within tolerance of the paper's.
	VerdictMatch Verdict = "match"
	// VerdictNear: within twice the tolerance — the right ballpark.
	VerdictNear Verdict = "near"
	// VerdictDivergent: the reproduction disagrees with the paper.
	VerdictDivergent Verdict = "divergent"
	// VerdictUnscored: the paper gives no number (qualitative claim).
	VerdictUnscored Verdict = "n/a"
)

// Badge returns the verdict's Markdown badge for the results book.
func (v Verdict) Badge() string {
	switch v {
	case VerdictMatch:
		return "✅ match"
	case VerdictNear:
		return "🟡 near"
	case VerdictDivergent:
		return "❌ divergent"
	default:
		return "⚪ n/a"
	}
}

// ScoredExpectation pairs an expectation with the value observed in the
// table and the verdict of comparing the two.
type ScoredExpectation struct {
	Expectation
	// Observed is the reproduced value (NaN for qualitative claims).
	Observed float64
	// Verdict classifies |Observed-Paper| against the tolerance.
	Verdict Verdict
}

// Score resolves every expectation's observed value and classifies it
// against the paper's.  It fails on malformed cell addresses (a driver bug)
// rather than mis-scoring.
func (t *Table) Score() ([]ScoredExpectation, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	scored := make([]ScoredExpectation, 0, len(t.Expectations))
	for _, e := range t.Expectations {
		obs := e.Direct
		if e.Row >= 0 {
			obs = t.Rows[e.Row][e.Col].Value
		}
		scored = append(scored, ScoredExpectation{
			Expectation: e,
			Observed:    obs,
			Verdict:     score(obs, e.Paper, e.Tol),
		})
	}
	return scored, nil
}

// score classifies one observation against a paper value and tolerance.
// The boundaries get a relative epsilon so a deviation of exactly one
// tolerance (1.00 vs 0.95±0.05) is a match rather than falling to "near"
// on float rounding; a zero tolerance still demands equality to within
// that epsilon.
func score(observed, paper, tol float64) Verdict {
	if math.IsNaN(paper) {
		return VerdictUnscored
	}
	if math.IsNaN(observed) {
		return VerdictDivergent
	}
	eps := 1e-9 * math.Max(1, math.Abs(paper))
	d := math.Abs(observed - paper)
	switch {
	case d <= tol+eps:
		return VerdictMatch
	case d <= 2*tol+eps:
		return VerdictNear
	default:
		return VerdictDivergent
	}
}
