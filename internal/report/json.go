package report

import (
	"encoding/json"
	"fmt"
	"math"
)

// jsonTable is the wire form of a Table.  Expectations are serialised in
// scored form (observed value and verdict included) so docs/results.json is
// self-contained for downstream tooling; FromJSON recomputes verdicts from
// the model, never trusting the stored ones.
type jsonTable struct {
	ID           string            `json:"id"`
	Title        string            `json:"title"`
	Claim        string            `json:"claim,omitempty"`
	Columns      []jsonColumn      `json:"columns"`
	Rows         [][]jsonCell      `json:"rows"`
	Notes        []string          `json:"notes,omitempty"`
	Expectations []jsonExpectation `json:"expectations,omitempty"`
}

type jsonColumn struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
}

type jsonCell struct {
	Kind  string   `json:"kind"`
	Text  string   `json:"text"`
	Value *float64 `json:"value,omitempty"`
}

type jsonExpectation struct {
	Metric    string   `json:"metric"`
	Row       int      `json:"row"`
	Col       int      `json:"col"`
	Paper     *float64 `json:"paper"` // null = qualitative claim
	PaperText string   `json:"paper_text,omitempty"`
	Tol       float64  `json:"tol"`
	Source    string   `json:"source,omitempty"`
	Observed  *float64 `json:"observed"` // null = nothing to score
	Verdict   string   `json:"verdict"`
}

// optFloat boxes a float for JSON, mapping NaN to null.
func optFloat(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// unboxFloat inverts optFloat.
func unboxFloat(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// JSON renders the table, its typed cells and its scored expectations as
// indented JSON.
func JSON(t *Table) ([]byte, error) {
	scored, err := t.Score()
	if err != nil {
		return nil, err
	}
	jt := jsonTable{
		ID:      t.ID,
		Title:   t.Title,
		Claim:   t.Claim,
		Columns: make([]jsonColumn, len(t.Columns)),
		Rows:    make([][]jsonCell, len(t.Rows)),
		Notes:   t.Notes,
	}
	for i, c := range t.Columns {
		jt.Columns[i] = jsonColumn{Name: c.Name, Unit: c.Unit}
	}
	for ri, row := range t.Rows {
		jr := make([]jsonCell, len(row))
		for ci, c := range row {
			jc := jsonCell{Kind: c.Kind.String(), Text: c.Text}
			if c.Numeric() {
				jc.Value = optFloat(c.Value)
			}
			jr[ci] = jc
		}
		jt.Rows[ri] = jr
	}
	for _, s := range scored {
		jt.Expectations = append(jt.Expectations, jsonExpectation{
			Metric:    s.Metric,
			Row:       s.Row,
			Col:       s.Col,
			Paper:     optFloat(s.Paper),
			PaperText: s.PaperText,
			Tol:       s.Tol,
			Source:    s.Source,
			Observed:  optFloat(s.Observed),
			Verdict:   string(s.Verdict),
		})
	}
	return json.MarshalIndent(jt, "", "  ")
}

// FromJSON reconstructs a Table from JSON's wire form, so rendered results
// round-trip back into the typed model (results.json -> Table -> Markdown).
// Stored verdicts are discarded; Score recomputes them.
func FromJSON(data []byte) (*Table, error) {
	var jt jsonTable
	if err := json.Unmarshal(data, &jt); err != nil {
		return nil, fmt.Errorf("report: decoding table: %w", err)
	}
	t := &Table{
		ID:      jt.ID,
		Title:   jt.Title,
		Claim:   jt.Claim,
		Columns: make([]Column, len(jt.Columns)),
		Notes:   jt.Notes,
	}
	for i, c := range jt.Columns {
		t.Columns[i] = Column{Name: c.Name, Unit: c.Unit}
	}
	for _, jr := range jt.Rows {
		row := make([]Cell, len(jr))
		for ci, jc := range jr {
			row[ci] = Cell{Kind: kindFromString(jc.Kind), Text: jc.Text, Value: unboxFloat(jc.Value)}
			if !row[ci].Numeric() {
				row[ci].Value = 0
			}
		}
		t.Rows = append(t.Rows, row)
	}
	for _, je := range jt.Expectations {
		e := Expectation{
			Metric:    je.Metric,
			Row:       je.Row,
			Col:       je.Col,
			Paper:     unboxFloat(je.Paper),
			PaperText: je.PaperText,
			Tol:       je.Tol,
			Source:    je.Source,
		}
		if e.Row < 0 {
			e.Direct = unboxFloat(je.Observed)
		}
		t.Expectations = append(t.Expectations, e)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
