// Package report is the structured results layer of the reproduction: a
// typed table model (cells carry a kind and a numeric value alongside their
// canonical text, columns carry units), paper-expectation annotations that
// score each table against the numbers the source paper reports, and
// pluggable renderers (aligned text, GitHub Markdown, CSV, JSON).
//
// Every experiment driver in internal/experiments builds a *Table; the text
// renderer reproduces the historical Render() output byte-for-byte so the
// golden snapshots under internal/experiments/testdata/golden stay stable,
// while the Markdown and JSON renderers feed the generated results book
// under docs/ (see cmd/report).
package report

import (
	"fmt"
	"math"
	"strconv"
)

// Kind classifies what a cell holds, which renderers use for alignment and
// machine-readable output.
type Kind uint8

// The three cell kinds: free text, integers, and fixed-precision floats.
const (
	KindString Kind = iota
	KindInt
	KindFloat
)

// String returns the JSON name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return "string"
	}
}

// kindFromString inverts Kind.String; unknown names fall back to string.
func kindFromString(s string) Kind {
	switch s {
	case "int":
		return KindInt
	case "float":
		return KindFloat
	default:
		return KindString
	}
}

// Cell is one table entry.  Text is the canonical rendering (what the text
// and CSV renderers print, and what the golden snapshots pin); Value carries
// the numeric payload for numeric kinds so expectations and downstream
// tooling never re-parse formatted strings.
type Cell struct {
	Kind  Kind
	Text  string
	Value float64
}

// Numeric reports whether the cell carries a usable numeric value.
func (c Cell) Numeric() bool { return c.Kind == KindInt || c.Kind == KindFloat }

// Str builds a free-text cell.
func Str(s string) Cell { return Cell{Kind: KindString, Text: s} }

// Strf builds a free-text cell from a format string.
func Strf(format string, args ...any) Cell { return Str(fmt.Sprintf(format, args...)) }

// Int builds an integer cell.
func Int(n int) Cell {
	return Cell{Kind: KindInt, Text: strconv.Itoa(n), Value: float64(n)}
}

// Uint builds an integer cell from an unsigned value (DRAM row counts,
// activation totals).
func Uint(n uint64) Cell {
	return Cell{Kind: KindInt, Text: strconv.FormatUint(n, 10), Value: float64(n)}
}

// Float builds a float cell rendered with the given number of decimals.
func Float(v float64, prec int) Cell {
	return Cell{Kind: KindFloat, Text: strconv.FormatFloat(v, 'f', prec, 64), Value: v}
}

// Frac builds a "num/den" cell whose numeric value is the ratio, so
// reproduction counts like 9/10 stay machine-readable.
func Frac(num, den int) Cell {
	v := math.NaN()
	if den != 0 {
		v = float64(num) / float64(den)
	}
	return Cell{Kind: KindFloat, Text: fmt.Sprintf("%d/%d", num, den), Value: v}
}

// Dash is the conventional empty cell ("-") for metrics with no observation.
func Dash() Cell { return Str("-") }

// Column is one table column: a name (the historical header string) and an
// optional unit rendered by the Markdown and CSV renderers.
type Column struct {
	Name string
	Unit string
}

// Cols builds unit-less columns from header names.
func Cols(names ...string) []Column {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n}
	}
	return cols
}

// Table is one experiment's typed result set.
type Table struct {
	// ID is the experiment identifier (e.g. "E3").
	ID string
	// Title is a short experiment name.
	Title string
	// Claim quotes or paraphrases the paper sentence the experiment tests.
	Claim string
	// Columns and Rows hold the tabular series; every row must have
	// exactly len(Columns) cells (renderers reject violations).
	Columns []Column
	Rows    [][]Cell
	// Notes carries caveats (trial counts, seeds, model parameters).
	Notes []string
	// Expectations records the paper's reported values for this table's
	// metrics; Score compares them against the observed cells.
	Expectations []Expectation
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...Cell) { t.Rows = append(t.Rows, cells) }

// Expect appends one expectation annotation.
func (t *Table) Expect(e Expectation) { t.Expectations = append(t.Expectations, e) }

// Headers returns the column names, the shape the historical string model
// exposed.
func (t *Table) Headers() []string {
	hs := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		hs[i] = c.Name
	}
	return hs
}

// Validate checks the structural invariants every renderer relies on: a
// non-empty ID and column set, and row arity matching the column count (the
// historical renderer silently mis-indexed on wider rows).
func (t *Table) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("report: table has no ID")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("report: table %s has no columns", t.ID)
	}
	for ri, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("report: table %s row %d has %d cells for %d columns",
				t.ID, ri, len(row), len(t.Columns))
		}
	}
	for ei, e := range t.Expectations {
		if err := e.validate(t, ei); err != nil {
			return err
		}
	}
	return nil
}

// Render formats the table as aligned text, the historical signature kept
// for the golden snapshots and benchtab's default output.  Structural errors
// (which Text reports properly) are rendered inline: callers that care must
// use Text.
func (t *Table) Render() string {
	s, err := Text(t)
	if err != nil {
		return fmt.Sprintf("!! %v\n", err)
	}
	return s
}
