package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestBuildBook(t *testing.T) {
	t1 := demo()
	t1.Expect(Expectation{Metric: "beta rate", Row: 1, Col: 2, Paper: 1.0, Tol: 0.05})
	t1.Expect(Qualitative("mechanism", "no figure", "Sec. Q"))
	t2 := &Table{ID: "E99", Title: "second table", Columns: Cols("x")}
	t2.AddRow(Int(1))
	t2.Expect(Expectation{Metric: "way off", Row: 0, Col: 0, Paper: 100, Tol: 1})

	book, err := BuildBook(7, []*Table{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"seed 7",
		"## Summary",
		"| [EX](#ex--demo-table) | demo table | 2 |",
		"✅ match ×1 · ⚪ n/a ×1",
		"❌ divergent ×1",
		"Overall: ✅ match ×1 · ❌ divergent ×1 · ⚪ n/a ×1.",
		"## EX · demo table",
		"## E99 · second table",
	} {
		if !strings.Contains(book.Markdown, want) {
			t.Errorf("book markdown missing %q:\n%s", want, book.Markdown)
		}
	}

	var decoded struct {
		Seed        uint64            `json:"seed"`
		Experiments []json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(book.JSON), &decoded); err != nil {
		t.Fatalf("book JSON invalid: %v", err)
	}
	if decoded.Seed != 7 || len(decoded.Experiments) != 2 {
		t.Fatalf("book JSON = seed %d, %d experiments", decoded.Seed, len(decoded.Experiments))
	}
	// Each experiment entry round-trips into the model.
	back, err := FromJSON(decoded.Experiments[0])
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != "EX" {
		t.Errorf("round-tripped id = %q", back.ID)
	}

	// A book over an invalid table propagates the error.
	bad := &Table{ID: "B", Columns: Cols("a")}
	bad.AddRow(Int(1), Int(2))
	if _, err := BuildBook(1, []*Table{bad}); err == nil {
		t.Error("BuildBook accepted an invalid table")
	}
}

func TestAnchor(t *testing.T) {
	cases := map[string]string{
		"E1 · buddy allocator: splits, coalesces, fragmentation under churn": "e1--buddy-allocator-splits-coalesces-fragmentation-under-churn",
		"E3 · attacker→victim frame steering success rate":                   "e3--attackervictim-frame-steering-success-rate",
		// GitHub's slugger keeps '-' and '_': the hyphens in "self-reuse"
		// and "single- vs double-sided" survive into the anchor.
		"E2 · page frame cache self-reuse probability vs request size": "e2--page-frame-cache-self-reuse-probability-vs-request-size",
		"E4 · bit flips vs hammer count, single- vs double-sided":      "e4--bit-flips-vs-hammer-count-single--vs-double-sided",
	}
	for in, want := range cases {
		if got := anchor(in); got != want {
			t.Errorf("anchor(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFirstDiff(t *testing.T) {
	if d := FirstDiff("a\nb\n", "a\nb\n"); d != "" {
		t.Errorf("equal inputs diff = %q", d)
	}
	if d := FirstDiff("a\nb\n", "a\nc\n"); !strings.Contains(d, "line 2") {
		t.Errorf("diff = %q, want line 2", d)
	}
	if d := FirstDiff("a\n", "a\nb\n"); !strings.Contains(d, "line 2") {
		t.Errorf("diff = %q, want line 2 (trailing content)", d)
	}
	if d := FirstDiff("a", "a\na"); !strings.Contains(d, "line counts differ") {
		t.Errorf("diff = %q, want line-count message", d)
	}
}
