package report

import (
	"math"
	"strings"
	"testing"
)

// demo builds a small valid table used across the renderer tests.
func demo() *Table {
	t := &Table{
		ID:    "EX",
		Title: "demo table",
		Claim: "a claim with a | pipe",
		Columns: []Column{
			{Name: "name"}, {Name: "count"}, {Name: "rate", Unit: "fraction"},
		},
		Notes: []string{"first note"},
	}
	t.AddRow(Str("alpha"), Int(3), Float(0.25, 2))
	t.AddRow(Str("beta"), Int(41), Float(1, 3))
	return t
}

func TestCellConstructors(t *testing.T) {
	cases := []struct {
		cell     Cell
		kind     Kind
		text     string
		value    float64
		hasValue bool
	}{
		{Str("x"), KindString, "x", 0, false},
		{Strf("n=%d", 7), KindString, "n=7", 0, false},
		{Int(-12), KindInt, "-12", -12, true},
		{Uint(1 << 40), KindInt, "1099511627776", 1 << 40, true},
		{Float(0.0749, 2), KindFloat, "0.07", 0.0749, true},
		{Float(2509.4, 0), KindFloat, "2509", 2509.4, true},
		{Frac(9, 10), KindFloat, "9/10", 0.9, true},
		{Dash(), KindString, "-", 0, false},
	}
	for _, c := range cases {
		if c.cell.Kind != c.kind || c.cell.Text != c.text {
			t.Errorf("cell %+v: want kind %v text %q", c.cell, c.kind, c.text)
		}
		if c.hasValue != c.cell.Numeric() {
			t.Errorf("cell %+v: Numeric() = %v", c.cell, c.cell.Numeric())
		}
		if c.hasValue && math.Abs(c.cell.Value-c.value) > 1e-12 {
			t.Errorf("cell %+v: want value %v", c.cell, c.value)
		}
	}
	if v := Frac(1, 0); !math.IsNaN(v.Value) {
		t.Errorf("Frac(1,0) value = %v, want NaN", v.Value)
	}
}

// The historical renderer silently indexed past its width table when a row
// was wider than the headers; the typed model must reject arity mismatches
// from every renderer.
func TestValidateRowArity(t *testing.T) {
	tb := demo()
	tb.AddRow(Str("gamma"), Int(1)) // one cell short
	if err := tb.Validate(); err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("Validate() = %v, want row-arity error", err)
	}
	if _, err := Text(tb); err == nil {
		t.Error("Text accepted a ragged table")
	}
	if _, err := Markdown(tb); err == nil {
		t.Error("Markdown accepted a ragged table")
	}
	if _, err := CSV(tb); err == nil {
		t.Error("CSV accepted a ragged table")
	}
	if _, err := JSON(tb); err == nil {
		t.Error("JSON accepted a ragged table")
	}
	// The legacy Render shim cannot return an error; it must surface the
	// problem in-band rather than panicking or truncating.
	if out := tb.Render(); !strings.Contains(out, "row 2") {
		t.Errorf("Render() hid the arity error: %q", out)
	}

	wide := demo()
	wide.Rows[0] = append(wide.Rows[0], Str("extra"))
	if err := wide.Validate(); err == nil {
		t.Error("Validate accepted a row wider than the columns")
	}
}

func TestValidateExpectationAddresses(t *testing.T) {
	for _, tc := range []struct {
		name string
		e    Expectation
	}{
		{"row out of range", Expectation{Metric: "m", Row: 9, Col: 1, Paper: 1}},
		{"col out of range", Expectation{Metric: "m", Row: 0, Col: 7, Paper: 1}},
		{"negative col with row", Expectation{Metric: "m", Row: 0, Col: -1, Paper: 1}},
		{"non-numeric cell", Expectation{Metric: "m", Row: 0, Col: 0, Paper: 1}},
		{"no metric", Expectation{Row: -1, Col: -1, Paper: 1}},
	} {
		tb := demo()
		tb.Expect(tc.e)
		if err := tb.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.e)
		}
	}
}

func TestFormats(t *testing.T) {
	for _, f := range Formats() {
		got, err := ParseFormat(string(f))
		if err != nil || got != f {
			t.Errorf("ParseFormat(%q) = %v, %v", f, got, err)
		}
		out, err := Render(demo(), f)
		if err != nil || out == "" {
			t.Errorf("Render(%v) = %q, %v", f, out, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted xml")
	}
	if _, err := Render(demo(), Format("xml")); err == nil {
		t.Error("Render accepted an unknown format")
	}
}

// Text must reproduce the historical layout: two-space gutters, %-*s
// padding (trailing spaces included), dashed separator, claim and note
// prefixes.
func TestTextLayout(t *testing.T) {
	out, err := Text(demo())
	if err != nil {
		t.Fatal(err)
	}
	want := "== EX: demo table\n" +
		"   claim: a claim with a | pipe\n" +
		"name   count  rate \n" +
		"-----  -----  -----\n" +
		"alpha  3      0.25 \n" +
		"beta   41     1.000\n" +
		"   note: first note\n"
	if out != want {
		t.Errorf("text layout drifted:\ngot:\n%q\nwant:\n%q", out, want)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := &Table{
		ID:      "EX",
		Columns: []Column{{Name: "a,b"}, {Name: "c", Unit: "ms"}},
	}
	tb.AddRow(Str("x,y"), Int(1))
	out, err := CSV(tb)
	if err != nil {
		t.Fatal(err)
	}
	want := "\"a,b\",c (ms)\n\"x,y\",1\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestMarkdownEscapesAndAlignment(t *testing.T) {
	tb := demo()
	tb.AddRow(Str("with|pipe"), Int(0), Dash())
	md, err := Markdown(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, `with\|pipe`) {
		t.Errorf("pipe not escaped:\n%s", md)
	}
	// count and rate are numeric (rate includes a "-" placeholder, still
	// numeric); name is text.
	if !strings.Contains(md, "| :--- | ---: | ---: |") {
		t.Errorf("alignment row wrong:\n%s", md)
	}
	if !strings.Contains(md, "rate (fraction)") {
		t.Errorf("unit missing from header:\n%s", md)
	}
}
