package report

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// storeTable builds a small valid table for store round-trips.
func storeTable(id string) *Table {
	t := &Table{
		ID:    id,
		Title: "store round-trip",
		Claim: "persisted tables reload bit-exactly",
		Columns: []Column{
			{Name: "scenario"}, {Name: "rate", Unit: "fraction"},
		},
	}
	t.AddRow(Str("pfa:present-80"), Float(0.875, 3))
	t.AddRow(Str("dfa:klein-64"), Float(1.0/3.0, 3))
	return t
}

// Save/Load must round-trip through FromJSON validation, and LoadBytes must
// return exactly what a fresh Save of an equal table would produce — the
// byte-identity surface the service resume tests compare.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	want := storeTable("c-1")
	if err := s.Save("c-1", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("c-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("loaded table diverged:\n got %+v\nwant %+v", got, want)
	}
	raw, err := s.LoadBytes("c-1")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := JSON(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, append(wantJSON, '\n')) {
		t.Fatal("stored bytes are not the canonical JSON rendering")
	}

	// Save is a replace: a second save under the same id wins atomically.
	repl := storeTable("c-1")
	repl.Title = "replaced"
	if err := s.Save("c-1", repl); err != nil {
		t.Fatal(err)
	}
	got, err = s.Load("c-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "replaced" {
		t.Fatalf("replacement lost: %q", got.Title)
	}
}

// List returns stored ids sorted, skipping temp droppings and non-JSON files.
func TestStoreList(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"zeta", "alpha", "mid"} {
		if err := s.Save(id, storeTable(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), ".hidden.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "mid", "zeta"}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("List() = %v, want %v", ids, want)
	}
}

// Ids that would escape the store directory are rejected on every surface,
// and corrupt stored files fail Load's validation loudly.
func TestStoreRejectsBadInput(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", ".", "..", "a/b", `a\b`} {
		if err := s.Save(id, storeTable("x")); err == nil {
			t.Fatalf("Save accepted id %q", id)
		}
		if _, err := s.Load(id); err == nil {
			t.Fatalf("Load accepted id %q", id)
		}
	}
	if _, err := NewStore(""); err == nil {
		t.Fatal("NewStore accepted an empty directory")
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "bad.json"), []byte(`{"id":""}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("bad"); err == nil {
		t.Fatal("Load accepted a table FromJSON rejects")
	}
	if _, err := s.Load("absent"); err == nil {
		t.Fatal("Load of a missing id succeeded")
	}
}
