package report

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store persists rendered tables as JSON files under one directory — the
// same wire shape as docs/results.json, so everything that reads the
// results book reads service-persisted campaign tables too.  Saves are
// atomic (write-to-temp then rename), and every load runs the table back
// through FromJSON's validation, so a corrupt file fails loudly instead of
// feeding a malformed table downstream.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) the store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("report: store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("report: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps an id onto its file, rejecting ids that would escape the store.
func (s *Store) path(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || id == "." || id == ".." {
		return "", fmt.Errorf("report: store id %q is not a plain name", id)
	}
	return filepath.Join(s.dir, id+".json"), nil
}

// Save persists t under id, atomically replacing any previous table.
func (s *Store) Save(id string, t *Table) error {
	path, err := s.path(id)
	if err != nil {
		return err
	}
	data, err := JSON(t)
	if err != nil {
		return fmt.Errorf("report: store save %q: %w", id, err)
	}
	tmp, err := os.CreateTemp(s.dir, "."+id+".tmp-*")
	if err != nil {
		return fmt.Errorf("report: store save %q: %w", id, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("report: store save %q: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("report: store save %q: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("report: store save %q: %w", id, err)
	}
	return nil
}

// Load reads the table stored under id back through FromJSON validation.
func (s *Store) Load(id string) (*Table, error) {
	data, err := s.LoadBytes(id)
	if err != nil {
		return nil, err
	}
	t, err := FromJSON(data)
	if err != nil {
		return nil, fmt.Errorf("report: store load %q: %w", id, err)
	}
	return t, nil
}

// LoadBytes reads the stored JSON verbatim — the byte-identity surface the
// resume tests compare.
func (s *Store) LoadBytes(id string) ([]byte, error) {
	path, err := s.path(id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("report: store load %q: %w", id, err)
	}
	return data, nil
}

// List returns the stored ids, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("report: store list: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(ids)
	return ids, nil
}
