package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Markdown renders the table as GitHub-flavoured Markdown: the claim as a
// quote, the series as a pipe table (numeric columns right-aligned, units in
// the header), notes as bullets, and the scored paper expectations as a
// badge table.
func Markdown(t *Table) (string, error) {
	scored, err := t.Score()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s · %s\n\n", t.ID, mdEscape(t.Title))
	if t.Claim != "" {
		fmt.Fprintf(&sb, "> **Claim.** %s\n\n", mdEscape(t.Claim))
	}

	sb.WriteString("|")
	for _, c := range t.Columns {
		h := c.Name
		if c.Unit != "" {
			h = fmt.Sprintf("%s (%s)", c.Name, c.Unit)
		}
		fmt.Fprintf(&sb, " %s |", mdEscape(h))
	}
	sb.WriteString("\n|")
	for ci := range t.Columns {
		if columnNumeric(t, ci) {
			sb.WriteString(" ---: |")
		} else {
			sb.WriteString(" :--- |")
		}
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		sb.WriteString("|")
		for _, c := range row {
			fmt.Fprintf(&sb, " %s |", mdEscape(c.Text))
		}
		sb.WriteString("\n")
	}

	if len(t.Notes) > 0 {
		sb.WriteString("\n")
		for _, n := range t.Notes {
			fmt.Fprintf(&sb, "- %s\n", mdEscape(n))
		}
	}

	if len(scored) > 0 {
		sb.WriteString("\n**Paper expectations**\n\n")
		sb.WriteString("| metric | paper | observed | verdict |\n")
		sb.WriteString("| :--- | :--- | ---: | :--- |\n")
		for _, s := range scored {
			fmt.Fprintf(&sb, "| %s | %s | %s | %s |\n",
				mdEscape(s.Metric), mdEscape(paperLabel(s.Expectation)),
				mdEscape(observedLabel(s)), s.Verdict.Badge())
		}
	}
	return sb.String(), nil
}

// columnNumeric reports whether column ci should be right-aligned: every
// cell is numeric, allowing the conventional "-" placeholder.
func columnNumeric(t *Table, ci int) bool {
	any := false
	for _, row := range t.Rows {
		c := row[ci]
		if c.Numeric() {
			any = true
		} else if c.Text != "-" {
			return false
		}
	}
	return any
}

// paperLabel formats the paper side of an expectation row.
func paperLabel(e Expectation) string {
	label := e.PaperText
	if label == "" {
		label = formatValue(e.Paper)
	}
	if e.Source != "" {
		label += " (" + e.Source + ")"
	}
	return label
}

// observedLabel formats the observed side of an expectation row.
func observedLabel(s ScoredExpectation) string {
	if s.Verdict == VerdictUnscored {
		return "—"
	}
	return formatValue(s.Observed)
}

// formatValue renders a float compactly (integers without decimals).
func formatValue(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// mdEscape neutralises the characters that would break a Markdown table
// cell.
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}
