package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"explframe/internal/stats"
)

// Results must come back ordered by trial index at any worker count, and
// must be identical across worker counts (the determinism contract).
func TestRunTrialsOrderedAndWorkerInvariant(t *testing.T) {
	const seed, n = 99, 64
	fn := func(trial int, rng *stats.RNG) ([2]uint64, error) {
		return [2]uint64{uint64(trial), rng.Uint64()}, nil
	}
	ref, err := RunTrials(seed, n, fn, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ref {
		if r[0] != uint64(i) {
			t.Fatalf("result %d carries trial id %d", i, r[0])
		}
		if want := stats.NewStream(seed, uint64(i)).Uint64(); r[1] != want {
			t.Fatalf("trial %d rng not NewStream(seed, %d)", i, i)
		}
	}
	for _, workers := range []int{2, 4, 7, runtime.NumCPU() + 3} {
		got, err := RunTrials(seed, n, fn, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d diverged at trial %d: %v != %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// Failed trials must be reported with their index, joined in trial order,
// while successful trials still return their results.
func TestRunTrialsErrorAggregation(t *testing.T) {
	boom := errors.New("boom")
	res, err := RunTrials(1, 10, func(trial int, _ *stats.RNG) (int, error) {
		if trial%3 == 0 {
			return 0, fmt.Errorf("t%d: %w", trial, boom)
		}
		return trial * 10, nil
	}, WithWorkers(4))
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("joined error lost the cause: %v", err)
	}
	var te *TrialError
	if !errors.As(err, &te) || te.Trial != 0 {
		t.Fatalf("first wrapped error should be trial 0, got %+v", te)
	}
	for i, v := range res {
		if i%3 == 0 && v != 0 {
			t.Fatalf("failed trial %d returned %d", i, v)
		}
		if i%3 != 0 && v != i*10 {
			t.Fatalf("trial %d result %d", i, v)
		}
	}
}

// Every trial must run exactly once, even with more workers than trials.
func TestRunTrialsEachTrialOnce(t *testing.T) {
	const n = 37
	var counts [n]atomic.Int64
	_, err := RunTrials(5, n, func(trial int, _ *stats.RNG) (struct{}, error) {
		counts[trial].Add(1)
		return struct{}{}, nil
	}, WithWorkers(64))
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("trial %d ran %d times", i, c)
		}
	}
}

// Zero and negative trial counts are no-ops.
func TestRunTrialsEmpty(t *testing.T) {
	res, err := RunTrials(1, 0, func(int, *stats.RNG) (int, error) { return 0, nil })
	if err != nil || res != nil {
		t.Fatalf("n=0: %v %v", res, err)
	}
	res, err = RunTrials(1, -3, func(int, *stats.RNG) (int, error) { return 0, nil })
	if err != nil || res != nil {
		t.Fatalf("n<0: %v %v", res, err)
	}
}

// A cancelled context must stop the dispatch promptly: the returned error
// carries ctx.Err(), unstarted trials carry TrialErrors wrapping it, and
// trials that did run keep their results.
func TestRunTrialsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 50
	ran := 0
	res, err := RunTrials(3, n, func(trial int, _ *stats.RNG) (int, error) {
		ran++
		if trial == 4 {
			cancel()
		}
		return trial + 1, nil
	}, WithWorkers(1), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not carry context.Canceled: %v", err)
	}
	if ran >= n {
		t.Fatalf("cancellation did not stop the dispatch (%d/%d trials ran)", ran, n)
	}
	for i := 0; i <= 4; i++ {
		if res[i] != i+1 {
			t.Fatalf("completed trial %d lost its result: %d", i, res[i])
		}
	}
	var te *TrialError
	if !errors.As(err, &te) {
		t.Fatal("unstarted trials should surface as TrialErrors")
	}
}

// A context cancelled before the call must return at once, not run anything.
func TestRunTrialsContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunTrials(1, 1000, func(int, *stats.RNG) (int, error) {
		time.Sleep(50 * time.Millisecond)
		return 0, nil
	}, WithWorkers(2), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-cancelled run took %v", elapsed)
	}
}

// WithWorkers must be call-local: two interleaved calls with different
// worker counts produce identical results and never read each other's size.
func TestWithWorkersIsCallLocal(t *testing.T) {
	fn := func(trial int, rng *stats.RNG) (uint64, error) { return rng.Uint64(), nil }
	a, err := RunTrials(11, 32, fn, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrials(11, 32, fn, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d diverged across call-local worker counts", i)
		}
	}
}

// Workers tracks GOMAXPROCS now that the global override is gone.
func TestWorkersTracksGOMAXPROCS(t *testing.T) {
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", Workers(), runtime.GOMAXPROCS(0))
	}
}

// Proportion must aggregate exactly the per-trial outcomes.
func TestProportion(t *testing.T) {
	p, err := Proportion(7, 40, func(trial int, _ *stats.RNG) (bool, error) {
		return trial%4 == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Trials != 40 || p.Successes != 10 {
		t.Fatalf("proportion = %d/%d", p.Successes, p.Trials)
	}
}

// The pool is exercised with heavy concurrent traffic so `go test -race`
// covers the result/error slices and the index counter.
func TestRunTrialsRaceStress(t *testing.T) {
	for round := 0; round < 8; round++ {
		res, err := RunTrials(uint64(round), 200,
			func(trial int, rng *stats.RNG) (uint64, error) {
				sum := uint64(0)
				for k := 0; k < 100; k++ {
					sum += rng.Uint64()
				}
				return sum, nil
			}, WithWorkers(runtime.NumCPU()*2+2))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 200 {
			t.Fatalf("round %d: %d results", round, len(res))
		}
	}
}

// WithTrialDone must fire exactly once per trial with calls serialized
// (never concurrent), after the trial's result slot is written, on success
// and failure alike.
func TestWithTrialDone(t *testing.T) {
	const n = 60
	boom := errors.New("boom")
	var inCallback atomic.Int64
	seen := make(map[int]int)
	res, err := RunTrials(4, n, func(trial int, _ *stats.RNG) (int, error) {
		if trial%5 == 0 {
			return 0, fmt.Errorf("t%d: %w", trial, boom)
		}
		return trial * 2, nil
	}, WithWorkers(8), WithTrialDone(func(trial int) {
		if inCallback.Add(1) != 1 {
			t.Error("trial-done callbacks ran concurrently")
		}
		seen[trial]++ // map write is safe only because calls are serialized
		inCallback.Add(-1)
	}))
	if !errors.Is(err, boom) {
		t.Fatalf("expected aggregated failure, got %v", err)
	}
	if len(seen) != n {
		t.Fatalf("callback covered %d trials, want %d", len(seen), n)
	}
	for trial, count := range seen {
		if count != 1 {
			t.Fatalf("trial %d fired %d callbacks", trial, count)
		}
		if trial%5 != 0 && res[trial] != trial*2 {
			t.Fatalf("trial %d callback fired before its result landed", trial)
		}
	}
}
