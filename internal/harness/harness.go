// Package harness is the deterministic parallel trial engine behind the
// E1–E16 experiment tables, the Monte Carlo sweeps in internal/core and the
// scenario campaigns in internal/scenario.
//
// Every experiment in this repository is a loop of independent trials whose
// statistics regenerate a table from the paper's evaluation.  RunTrials runs
// that loop on a worker pool while keeping the determinism contract the
// tables depend on: trial k draws its randomness from stats.NewStream(seed,
// k), a derivation keyed purely on the root seed and the trial index — never
// on worker count, scheduling order, or what other trials did.  One seed
// therefore produces byte-identical tables at any parallelism, which is what
// makes fault-injection statistics comparable across runs and machines.
//
// Execution knobs are per-call options (WithWorkers, WithContext), so two
// concurrent callers can never perturb each other's pool size.
//
// Results come back ordered by trial index and per-trial failures are
// aggregated (first error wins for the error value; all are preserved via
// errors.Join), so callers keep simple sequential-looking aggregation code.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"explframe/internal/stats"
)

// Workers returns the default worker count: runtime.GOMAXPROCS(0) at call
// time.  Callers needing a specific pool size pass WithWorkers.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// Option adjusts one RunTrials call without touching process state.
type Option func(*runOpts)

type runOpts struct {
	workers   int
	ctx       context.Context
	trialDone func(trial int)
}

// WithWorkers sets the pool size for this call only.  n <= 0 keeps the
// GOMAXPROCS default.  The trial results are identical at any worker count;
// only wall time changes.
func WithWorkers(n int) Option {
	return func(o *runOpts) {
		if n > 0 {
			o.workers = n
		}
	}
}

// WithContext makes the call cancellable: once ctx is done, no further
// trials start, already-running trials finish, and the returned error
// includes ctx.Err().  Trials that never ran carry a TrialError wrapping
// ctx.Err(), so partial aggregates cannot be mistaken for complete ones.
func WithContext(ctx context.Context) Option {
	return func(o *runOpts) {
		if ctx != nil {
			o.ctx = ctx
		}
	}
}

// WithTrialDone registers fn, invoked once per trial immediately after the
// trial returns (success or failure) with the results slice already holding
// its outcome.  Calls are serialized — never concurrent — but arrive in
// completion order, not trial order, when the pool is parallel.  This is
// the per-trial progress surface the campaign service checkpoints ride on.
func WithTrialDone(fn func(trial int)) Option {
	return func(o *runOpts) { o.trialDone = fn }
}

// TrialError wraps a failure of one trial with its index.
type TrialError struct {
	Trial int
	Err   error
}

// Error implements error.
func (e *TrialError) Error() string { return fmt.Sprintf("trial %d: %v", e.Trial, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TrialError) Unwrap() error { return e.Err }

// TrialFunc runs one trial.  rng is the trial's private deterministic
// stream; fn must draw all randomness from it (or from seeds derived from
// it) and must not share mutable state with other trials.
type TrialFunc[T any] func(trial int, rng *stats.RNG) (T, error)

// RunTrials executes n independent trials on a worker pool and returns their
// results ordered by trial index.  Trial k's rng is stats.NewStream(seed,
// k), so the result slice is a pure function of (seed, n, fn) — identical at
// any worker count.
//
// If any trial fails, the returned error joins every per-trial failure (as
// *TrialError, in trial order) and the results of failed trials are the
// zero value of T; results of successful trials are still returned.  With
// WithContext, cancellation surfaces as ctx.Err() joined into the error.
func RunTrials[T any](seed uint64, n int, fn TrialFunc[T], opts ...Option) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	o := runOpts{ctx: context.Background()}
	for _, opt := range opts {
		opt(&o)
	}
	workers := o.workers
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)

	var doneMu sync.Mutex
	run := func(i int) {
		if o.ctx.Err() != nil {
			errs[i] = o.ctx.Err()
			return
		}
		results[i], errs[i] = fn(i, stats.NewStream(seed, uint64(i)))
		if o.trialDone != nil {
			doneMu.Lock()
			o.trialDone(i)
			doneMu.Unlock()
		}
	}

	if workers == 1 {
		// Serial fast path: no goroutine or scheduling overhead, same
		// derivation, so it doubles as the reference for determinism tests.
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := o.ctx.Err(); err != nil {
		return results, errors.Join(err, joinTrialErrors(errs))
	}
	return results, joinTrialErrors(errs)
}

// joinTrialErrors wraps the non-nil entries as TrialErrors in trial order.
func joinTrialErrors(errs []error) error {
	var wrapped []error
	for i, err := range errs {
		if err != nil {
			wrapped = append(wrapped, &TrialError{Trial: i, Err: err})
		}
	}
	return errors.Join(wrapped...)
}

// Proportion runs n Bernoulli trials and folds the outcomes into a
// stats.Proportion, the aggregation most experiment tables need.
func Proportion(seed uint64, n int, fn func(trial int, rng *stats.RNG) (bool, error), opts ...Option) (stats.Proportion, error) {
	var p stats.Proportion
	oks, err := RunTrials(seed, n, fn, opts...)
	if err != nil {
		return p, err
	}
	for _, ok := range oks {
		p.Observe(ok)
	}
	return p, nil
}
