package vm

import (
	"errors"
	"testing"
	"testing/quick"

	"explframe/internal/mm"
)

func TestVirtAddrHelpers(t *testing.T) {
	v := VirtAddr(0x7f00_0000_1234)
	if v.PageBase() != 0x7f00_0000_1000 {
		t.Fatalf("PageBase = %#x", uint64(v.PageBase()))
	}
	if v.Offset() != 0x234 {
		t.Fatalf("Offset = %#x", v.Offset())
	}
	if v.VPN() != 0x7f00_0000_1234>>12 {
		t.Fatalf("VPN = %#x", v.VPN())
	}
}

func TestPageTableMapLookupUnmap(t *testing.T) {
	pt := NewPageTable()
	va := VirtAddr(0x7f12_3456_7000)
	if err := pt.Map(va, 42, true); err != nil {
		t.Fatal(err)
	}
	pte, ok := pt.Lookup(va + 0x123)
	if !ok || pte.PFN != 42 || !pte.Writable {
		t.Fatalf("Lookup = %+v, %v", pte, ok)
	}
	pa, ok := pt.Translate(va + 0x123)
	if !ok || pa != 42*PageSize+0x123 {
		t.Fatalf("Translate = %#x, %v", pa, ok)
	}
	if pt.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d", pt.MappedPages())
	}
	pfn, ok := pt.Unmap(va)
	if !ok || pfn != 42 {
		t.Fatalf("Unmap = %d, %v", pfn, ok)
	}
	if _, ok := pt.Lookup(va); ok {
		t.Fatal("lookup after unmap succeeded")
	}
	if pt.MappedPages() != 0 {
		t.Fatalf("MappedPages after unmap = %d", pt.MappedPages())
	}
}

func TestPageTableDoubleMapRejected(t *testing.T) {
	pt := NewPageTable()
	va := VirtAddr(0x1000)
	if err := pt.Map(va, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(va+0x10, 2, true); err == nil {
		t.Fatal("double map of same page accepted")
	}
}

func TestPageTableCanonicalLimit(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(MaxUserAddr, 1, true); err == nil {
		t.Fatal("map beyond canonical range accepted")
	}
	if _, ok := pt.Lookup(MaxUserAddr + 12345); ok {
		t.Fatal("lookup beyond canonical range succeeded")
	}
}

func TestPageTableWalkOrderAndCompleteness(t *testing.T) {
	pt := NewPageTable()
	vas := []VirtAddr{0x0, 0x7f00_0000_0000, 0x1000, 0x7fff_ffff_f000, 0x40_0000_0000}
	for i, va := range vas {
		if err := pt.Map(va, mm.PFN(i+1), false); err != nil {
			t.Fatal(err)
		}
	}
	var got []VirtAddr
	pt.Walk(func(va VirtAddr, pte PTE) { got = append(got, va) })
	if len(got) != len(vas) {
		t.Fatalf("walk visited %d pages, want %d", len(got), len(vas))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("walk out of order: %#x before %#x", uint64(got[i-1]), uint64(got[i]))
		}
	}
}

// Property: translate(map(va)) recovers pfn*PageSize+offset for arbitrary
// canonical addresses.
func TestPageTableTranslateProperty(t *testing.T) {
	pt := NewPageTable()
	used := map[uint64]bool{}
	f := func(raw uint64, pfn uint32, off uint16) bool {
		va := VirtAddr(raw % uint64(MaxUserAddr)).PageBase()
		if used[uint64(va)] {
			return true // skip duplicate pages; double-map is tested elsewhere
		}
		used[uint64(va)] = true
		if err := pt.Map(va, mm.PFN(pfn), true); err != nil {
			return false
		}
		o := uint64(off) % PageSize
		pa, ok := pt.Translate(va + VirtAddr(o))
		return ok && pa == mm.PFN(pfn).Phys()+o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceMapFindUnmap(t *testing.T) {
	as := NewAddressSpace()
	start, err := as.Map(0, 16*PageSize, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := as.FindVMA(start + 5*PageSize)
	if !ok || v.Start != start || v.Pages() != 16 {
		t.Fatalf("FindVMA = %+v, %v", v, ok)
	}
	if _, ok := as.FindVMA(start - 1); ok {
		t.Fatal("FindVMA found area before start")
	}
	if err := as.Unmap(start, 16*PageSize, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := as.FindVMA(start); ok {
		t.Fatal("area survives unmap")
	}
}

func TestAddressSpaceHintHonoured(t *testing.T) {
	as := NewAddressSpace()
	hint := VirtAddr(0x6000_0000_0000)
	start, err := as.Map(hint, 4*PageSize, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if start != hint {
		t.Fatalf("hint not honoured: got %#x", uint64(start))
	}
	// Occupied hint falls back to search.
	start2, err := as.Map(hint, 4*PageSize, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if start2 == hint {
		t.Fatal("overlapping hint accepted")
	}
}

func TestAddressSpaceMapsDoNotOverlap(t *testing.T) {
	as := NewAddressSpace()
	for i := 0; i < 50; i++ {
		if _, err := as.Map(0, PageSize*uint64(1+i%7), ProtRead); err != nil {
			t.Fatal(err)
		}
	}
	if err := as.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Unmapping the middle of an area must split it into two areas (munmap
// semantics).
func TestAddressSpaceUnmapSplits(t *testing.T) {
	as := NewAddressSpace()
	start, err := as.Map(0, 10*PageSize, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	mid := start + 4*PageSize
	if err := as.Unmap(mid, 2*PageSize, nil); err != nil {
		t.Fatal(err)
	}
	vmas := as.VMAs()
	if len(vmas) != 2 {
		t.Fatalf("expected 2 areas after middle unmap, got %v", vmas)
	}
	if vmas[0].Start != start || vmas[0].End != mid {
		t.Fatalf("left area wrong: %v", vmas[0])
	}
	if vmas[1].Start != mid+2*PageSize || vmas[1].End != start+10*PageSize {
		t.Fatalf("right area wrong: %v", vmas[1])
	}
	if err := as.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceUnmapReleasesFrames(t *testing.T) {
	as := NewAddressSpace()
	start, _ := as.Map(0, 4*PageSize, ProtRead|ProtWrite)
	for i := 0; i < 4; i++ {
		if err := as.PT.Map(start+VirtAddr(i)*PageSize, mm.PFN(100+i), true); err != nil {
			t.Fatal(err)
		}
	}
	var released []mm.PFN
	if err := as.Unmap(start, 4*PageSize, func(_ VirtAddr, pte PTE) {
		released = append(released, pte.PFN)
	}); err != nil {
		t.Fatal(err)
	}
	if len(released) != 4 {
		t.Fatalf("released %d frames, want 4", len(released))
	}
	if as.PT.MappedPages() != 0 {
		t.Fatal("PTEs survive unmap")
	}
}

func TestAddressSpaceUnmapErrors(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Unmap(0x1000, PageSize, nil); !errors.Is(err, ErrNoVMA) {
		t.Fatalf("unmap of nothing: %v", err)
	}
	if err := as.Unmap(0x1001, PageSize, nil); !errors.Is(err, ErrBadRange) {
		t.Fatalf("misaligned unmap: %v", err)
	}
	if err := as.Unmap(0x1000, 0, nil); !errors.Is(err, ErrBadRange) {
		t.Fatalf("zero-length unmap: %v", err)
	}
	if _, err := as.Map(0, 123, ProtRead); !errors.Is(err, ErrBadRange) {
		t.Fatalf("unaligned map length: %v", err)
	}
}

func TestAddressSpaceMappedBytes(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0, 3*PageSize, ProtRead)
	as.Map(0, 5*PageSize, ProtRead)
	if got := as.MappedBytes(); got != 8*PageSize {
		t.Fatalf("MappedBytes = %d", got)
	}
}
