package vm

import (
	"errors"
	"fmt"
	"sort"
)

// Prot describes VMA permissions.
type Prot uint8

// Permission bits, mirroring PROT_READ / PROT_WRITE.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
)

// VMA is one virtual memory area: a half-open [Start, End) page-aligned
// range with uniform permissions.
type VMA struct {
	Start VirtAddr
	End   VirtAddr
	Prot  Prot
}

// Len returns the byte length of the area.
func (v VMA) Len() uint64 { return uint64(v.End - v.Start) }

// Pages returns the number of pages the area spans.
func (v VMA) Pages() uint64 { return v.Len() / PageSize }

// Contains reports whether the address falls inside the area.
func (v VMA) Contains(va VirtAddr) bool { return va >= v.Start && va < v.End }

// String formats the area as its half-open address range and protection.
func (v VMA) String() string {
	return fmt.Sprintf("[%#x,%#x) prot=%d", uint64(v.Start), uint64(v.End), v.Prot)
}

// Errors returned by the address space layer.
var (
	// ErrNoVMA reports an access or unmap outside every mapped area — the
	// moral equivalent of SIGSEGV.
	ErrNoVMA = errors.New("vm: address not covered by a VMA")
	// ErrBadRange reports misaligned or empty ranges.
	ErrBadRange = errors.New("vm: bad range")
	// ErrNoSpace reports address space exhaustion.
	ErrNoSpace = errors.New("vm: no free address range")
)

// mmapBase is where search for free ranges begins, loosely mirroring the
// x86-64 mmap area.
const mmapBase = VirtAddr(0x7f00_0000_0000)

// AddressSpace owns a process's VMAs and page table.
type AddressSpace struct {
	vmas []VMA // sorted by Start, non-overlapping
	PT   *PageTable
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{PT: NewPageTable()}
}

// VMAs returns a copy of the current areas, sorted by start address.
func (as *AddressSpace) VMAs() []VMA {
	out := make([]VMA, len(as.vmas))
	copy(out, as.vmas)
	return out
}

// FindVMA returns the area containing va.
func (as *AddressSpace) FindVMA(va VirtAddr) (VMA, bool) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > va })
	if i < len(as.vmas) && as.vmas[i].Contains(va) {
		return as.vmas[i], true
	}
	return VMA{}, false
}

// checkRange validates a page-aligned, non-empty, canonical range.
func checkRange(start VirtAddr, length uint64) error {
	if length == 0 || length%PageSize != 0 {
		return fmt.Errorf("%w: length %d", ErrBadRange, length)
	}
	if uint64(start)%PageSize != 0 {
		return fmt.Errorf("%w: start %#x not page aligned", ErrBadRange, uint64(start))
	}
	if start >= MaxUserAddr || uint64(start)+length > uint64(MaxUserAddr) {
		return fmt.Errorf("%w: beyond canonical user range", ErrBadRange)
	}
	return nil
}

// Map creates a new VMA of the given length and returns its start address.
// If hint is non-zero and the range is free it is honoured, otherwise the
// first free range at or after mmapBase is used.
func (as *AddressSpace) Map(hint VirtAddr, length uint64, prot Prot) (VirtAddr, error) {
	if length == 0 || length%PageSize != 0 {
		return 0, fmt.Errorf("%w: length %d", ErrBadRange, length)
	}
	start := hint
	if start == 0 || uint64(start)%PageSize != 0 || !as.rangeFree(start, length) {
		var ok bool
		start, ok = as.findFree(length)
		if !ok {
			return 0, ErrNoSpace
		}
	}
	if err := checkRange(start, length); err != nil {
		return 0, err
	}
	v := VMA{Start: start, End: start + VirtAddr(length), Prot: prot}
	as.insert(v)
	return start, nil
}

// rangeFree reports whether [start, start+length) overlaps no VMA.
func (as *AddressSpace) rangeFree(start VirtAddr, length uint64) bool {
	end := start + VirtAddr(length)
	for _, v := range as.vmas {
		if start < v.End && v.Start < end {
			return false
		}
	}
	return true
}

// findFree locates the lowest free range of the given length at or after
// mmapBase.
func (as *AddressSpace) findFree(length uint64) (VirtAddr, bool) {
	cur := mmapBase
	for _, v := range as.vmas {
		if v.End <= cur {
			continue
		}
		if v.Start >= cur+VirtAddr(length) {
			break
		}
		cur = v.End
	}
	if cur+VirtAddr(length) > MaxUserAddr {
		return 0, false
	}
	return cur, true
}

// insert adds a VMA keeping the slice sorted.
func (as *AddressSpace) insert(v VMA) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start >= v.Start })
	as.vmas = append(as.vmas, VMA{})
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
}

// Unmap removes [start, start+length) from the address space, splitting
// VMAs that partially overlap (munmap semantics: unmapping the middle of an
// area leaves two areas).  The removed range's present pages are unmapped
// from the page table and their frames reported to release so the caller can
// return them to the physical allocator.
func (as *AddressSpace) Unmap(start VirtAddr, length uint64, release func(VirtAddr, PTE)) error {
	if err := checkRange(start, length); err != nil {
		return err
	}
	end := start + VirtAddr(length)
	covered := false
	var next []VMA
	for _, v := range as.vmas {
		switch {
		case v.End <= start || v.Start >= end:
			next = append(next, v)
		default:
			covered = true
			if v.Start < start {
				next = append(next, VMA{Start: v.Start, End: start, Prot: v.Prot})
			}
			if v.End > end {
				next = append(next, VMA{Start: end, End: v.End, Prot: v.Prot})
			}
		}
	}
	if !covered {
		return fmt.Errorf("%w: unmap [%#x,%#x)", ErrNoVMA, uint64(start), uint64(end))
	}
	sort.Slice(next, func(i, j int) bool { return next[i].Start < next[j].Start })
	as.vmas = next
	for va := start; va < end; va += PageSize {
		if pte, ok := as.PT.Lookup(va); ok {
			as.PT.Unmap(va)
			if release != nil {
				release(va, pte)
			}
		}
	}
	return nil
}

// MappedBytes returns the total bytes covered by VMAs.
func (as *AddressSpace) MappedBytes() uint64 {
	var n uint64
	for _, v := range as.vmas {
		n += v.Len()
	}
	return n
}

// CheckInvariants verifies the VMA list is sorted and non-overlapping and
// that every present PTE falls inside some VMA.
func (as *AddressSpace) CheckInvariants() error {
	for i := 1; i < len(as.vmas); i++ {
		if as.vmas[i-1].End > as.vmas[i].Start {
			return fmt.Errorf("vm: VMAs overlap: %v and %v", as.vmas[i-1], as.vmas[i])
		}
	}
	var err error
	as.PT.Walk(func(va VirtAddr, pte PTE) {
		if _, ok := as.FindVMA(va); !ok && err == nil {
			err = fmt.Errorf("vm: PTE at %#x outside every VMA", uint64(va))
		}
	})
	return err
}
