package vm

import (
	"testing"

	"explframe/internal/mm"
	"explframe/internal/stats"
)

// A random storm of map/unmap operations (including partial unmaps that
// split areas) must keep the address space invariants: sorted,
// non-overlapping VMAs and no PTE outside a VMA.
func TestAddressSpaceStorm(t *testing.T) {
	as := NewAddressSpace()
	rng := stats.NewRNG(31337)

	type area struct {
		start VirtAddr
		pages int
	}
	var live []area
	nextPFN := mm.PFN(1)

	for step := 0; step < 5000; step++ {
		switch {
		case len(live) == 0 || rng.Bool(0.5):
			pages := 1 + rng.Intn(16)
			start, err := as.Map(0, uint64(pages)*PageSize, ProtRead|ProtWrite)
			if err != nil {
				t.Fatalf("step %d: map: %v", step, err)
			}
			// Fault in a random subset of pages.
			for p := 0; p < pages; p++ {
				if rng.Bool(0.6) {
					if err := as.PT.Map(start+VirtAddr(p)*PageSize, nextPFN, true); err != nil {
						t.Fatalf("step %d: pt map: %v", step, err)
					}
					nextPFN++
				}
			}
			live = append(live, area{start, pages})
		default:
			i := rng.Intn(len(live))
			a := live[i]
			// Unmap a random sub-range, possibly splitting the area.
			off := rng.Intn(a.pages)
			n := 1 + rng.Intn(a.pages-off)
			err := as.Unmap(a.start+VirtAddr(off)*PageSize, uint64(n)*PageSize, nil)
			if err != nil {
				t.Fatalf("step %d: unmap: %v", step, err)
			}
			// Track the remains as up to two areas.
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if off > 0 {
				live = append(live, area{a.start, off})
			}
			if off+n < a.pages {
				live = append(live, area{a.start + VirtAddr(off+n)*PageSize, a.pages - off - n})
			}
		}
		if step%500 == 0 {
			if err := as.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Tear everything down; the space must end empty.
	for _, a := range live {
		if err := as.Unmap(a.start, uint64(a.pages)*PageSize, nil); err != nil {
			t.Fatal(err)
		}
	}
	if as.MappedBytes() != 0 || as.PT.MappedPages() != 0 {
		t.Fatalf("space not empty: %d bytes, %d pages", as.MappedBytes(), as.PT.MappedPages())
	}
	if err := as.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
