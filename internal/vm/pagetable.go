// Package vm implements the virtual memory side of the simulated kernel:
// x86-64 style 4-level page tables and per-process virtual memory areas
// (VMAs) with demand paging hooks.
//
// The paper's attack flows through this layer twice: the attacker's
// mmap/munmap calls create and release the physical frames that seed the
// page frame cache, and the victim's first touch of its crypto table page is
// the demand fault that pulls the poisoned frame back in ("the program must
// store some data into the allocated pages, otherwise the physical page
// frames will not be allocated", Section V).
package vm

import (
	"fmt"

	"explframe/internal/mm"
)

// VirtAddr is a virtual address in a process address space.
type VirtAddr uint64

// PageShift / PageSize mirror the physical page size.
const (
	PageShift = mm.PageShift
	PageSize  = mm.PageSize
)

// VPN returns the virtual page number of the address.
func (v VirtAddr) VPN() uint64 { return uint64(v) >> PageShift }

// PageBase returns the address rounded down to its page base.
func (v VirtAddr) PageBase() VirtAddr { return v &^ (PageSize - 1) }

// Offset returns the offset of the address within its page.
func (v VirtAddr) Offset() uint64 { return uint64(v) & (PageSize - 1) }

// levels and index bits of the 4-level x86-64 paging structure.
const (
	ptLevels    = 4
	ptIndexBits = 9
	ptFanout    = 1 << ptIndexBits
	// vaBits is the canonical 48-bit user address width.
	vaBits = ptLevels*ptIndexBits + PageShift
	// MaxUserAddr is one past the largest mappable user address.
	MaxUserAddr = VirtAddr(1) << vaBits
)

// PTE is a page table entry.
type PTE struct {
	PFN      mm.PFN
	Present  bool
	Writable bool
}

// ptNode is one 512-entry paging structure; leaf nodes hold PTEs, interior
// nodes hold children.
type ptNode struct {
	children [ptFanout]*ptNode // interior levels
	ptes     []PTE             // allocated lazily at the leaf level
}

// PageTable is a 4-level radix page table.
type PageTable struct {
	root  *ptNode
	nodes int // paging structures allocated, for accounting
	leafs int // mapped (present) PTE count
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{root: &ptNode{}, nodes: 1}
}

// indices splits a virtual address into its four paging-structure indices,
// most significant level first.
func indices(va VirtAddr) [ptLevels]int {
	var idx [ptLevels]int
	vpn := va.VPN()
	for l := ptLevels - 1; l >= 0; l-- {
		idx[l] = int(vpn & (ptFanout - 1))
		vpn >>= ptIndexBits
	}
	return idx
}

// walk returns the leaf node and final index for va, allocating intermediate
// structures when create is set.
func (pt *PageTable) walk(va VirtAddr, create bool) (*ptNode, int) {
	if va >= MaxUserAddr {
		return nil, 0
	}
	idx := indices(va)
	n := pt.root
	for l := 0; l < ptLevels-1; l++ {
		next := n.children[idx[l]]
		if next == nil {
			if !create {
				return nil, 0
			}
			next = &ptNode{}
			n.children[idx[l]] = next
			pt.nodes++
		}
		n = next
	}
	if n.ptes == nil {
		if !create {
			return nil, 0
		}
		n.ptes = make([]PTE, ptFanout)
	}
	return n, idx[ptLevels-1]
}

// Map installs a translation for the page containing va.  Mapping an already
// present page is an error — the kernel layer never remaps silently.
func (pt *PageTable) Map(va VirtAddr, pfn mm.PFN, writable bool) error {
	if va >= MaxUserAddr {
		return fmt.Errorf("vm: address %#x beyond canonical range", uint64(va))
	}
	leaf, i := pt.walk(va, true)
	if leaf.ptes[i].Present {
		return fmt.Errorf("vm: page %#x already mapped", uint64(va.PageBase()))
	}
	leaf.ptes[i] = PTE{PFN: pfn, Present: true, Writable: writable}
	pt.leafs++
	return nil
}

// Unmap removes the translation for the page containing va, returning the
// frame it pointed to.  ok is false if the page was not mapped.
func (pt *PageTable) Unmap(va VirtAddr) (mm.PFN, bool) {
	leaf, i := pt.walk(va, false)
	if leaf == nil || !leaf.ptes[i].Present {
		return 0, false
	}
	pfn := leaf.ptes[i].PFN
	leaf.ptes[i] = PTE{}
	pt.leafs--
	return pfn, true
}

// Lookup returns the PTE for the page containing va.
func (pt *PageTable) Lookup(va VirtAddr) (PTE, bool) {
	leaf, i := pt.walk(va, false)
	if leaf == nil || !leaf.ptes[i].Present {
		return PTE{}, false
	}
	return leaf.ptes[i], true
}

// Translate converts a virtual address to a physical address.
func (pt *PageTable) Translate(va VirtAddr) (uint64, bool) {
	pte, ok := pt.Lookup(va)
	if !ok {
		return 0, false
	}
	return pte.PFN.Phys() + va.Offset(), true
}

// MappedPages returns the number of present leaf translations.
func (pt *PageTable) MappedPages() int { return pt.leafs }

// StructureCount returns the number of paging structures allocated.
func (pt *PageTable) StructureCount() int { return pt.nodes }

// Walk visits every present translation in ascending virtual address order.
func (pt *PageTable) Walk(visit func(va VirtAddr, pte PTE)) {
	var rec func(n *ptNode, level int, vpnPrefix uint64)
	rec = func(n *ptNode, level int, vpnPrefix uint64) {
		if n == nil {
			return
		}
		if level == ptLevels-1 {
			if n.ptes == nil {
				return
			}
			for i, pte := range n.ptes {
				if pte.Present {
					vpn := vpnPrefix<<ptIndexBits | uint64(i)
					visit(VirtAddr(vpn<<PageShift), pte)
				}
			}
			return
		}
		for i, c := range n.children {
			if c != nil {
				rec(c, level+1, vpnPrefix<<ptIndexBits|uint64(i))
			}
		}
	}
	rec(pt.root, 0, 0)
}
