module explframe

go 1.22
