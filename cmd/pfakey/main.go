// pfakey demonstrates offline persistent fault analysis: it simulates a
// victim encrypting under a single-bit S-box fault, then recovers the key
// from ciphertexts alone, reporting the residual key entropy as data
// accumulates.  It runs over any cipher registered in the cipher registry.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"explframe/internal/cipher/registry"
	"explframe/internal/fault/pfa"
	"explframe/internal/stats"
)

func main() {
	seed := flag.Uint64("seed", 1, "key/plaintext seed")
	cipher := flag.String("cipher", "aes",
		fmt.Sprintf("cipher, any registered name or alias (%s)", strings.Join(registry.Names(), ", ")))
	entry := flag.Int("entry", 0x42, "S-box entry index to fault (reduced mod the table length)")
	bit := flag.Int("bit", 3, "bit to flip in the entry (reduced mod the entry width)")
	budget := flag.Int("budget", 8000, "maximum ciphertexts")
	known := flag.Bool("known-fault", true, "attacker knows the faulted entry (ExplFrame's position)")
	flag.Parse()

	c, ok := registry.Get(*cipher)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cipher %q; registered: %s\n", *cipher, strings.Join(registry.Names(), ", "))
		os.Exit(2)
	}

	rng := stats.NewRNG(*seed)
	key := make([]byte, c.KeyBytes())
	rng.Bytes(key)
	inst, err := c.New(key)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	faulty := c.SBox()
	v := mod(*entry, c.TableLen())
	yStar := faulty[v]
	faulty[v] ^= 1 << uint(mod(*bit, c.EntryBits()))
	fmt.Printf("%s victim, fault: S[%#02x] %#02x -> %#02x\n", c.Name(), v, yStar, faulty[v])

	// A clean pair (pre-attack traffic) for schedule completion and for the
	// unknown-fault path.
	cleanPT := make([]byte, c.BlockSize())
	rng.Bytes(cleanPT)
	cleanCT := make([]byte, c.BlockSize())
	inst.Encrypt(c.SBox(), cleanCT, cleanPT)

	col := pfa.NewCollector(c)
	pt := make([]byte, c.BlockSize())
	ct := make([]byte, c.BlockSize())
	// Progress and recovery cadence scale with the cell alphabet.
	report, check := 25, 25
	if c.EntryBits() >= 8 {
		report, check = 500, 250
	}
	for n := 1; n <= *budget; n++ {
		rng.Bytes(pt)
		inst.Encrypt(faulty, ct, pt)
		if err := col.Observe(ct); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if n%report == 0 {
			fmt.Printf("  n=%5d residual entropy %6.1f bits\n", n, col.ResidualEntropy())
		}
		if n%check != 0 {
			continue
		}
		var master []byte
		if *known {
			master, err = col.RecoverMasterKnownFault(yStar, cleanPT, cleanCT)
		} else {
			master, err = col.RecoverMasterUnknownFault(cleanPT, cleanCT)
		}
		if err == nil {
			fmt.Printf("\nkey recovered after %d ciphertexts: %x\n", n, master)
			if !bytes.Equal(master, key) {
				fmt.Println("MISMATCH with victim key!")
				os.Exit(1)
			}
			fmt.Println("matches the victim key.")
			return
		}
	}
	fmt.Printf("\nnot recovered within %d ciphertexts (entropy %.1f bits)\n", *budget, col.ResidualEntropy())
	os.Exit(1)
}

// mod is the non-negative remainder (Go's % keeps the dividend's sign, so
// a negative flag value would index out of range or shift into oblivion).
func mod(x, n int) int { return ((x % n) + n) % n }
